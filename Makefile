# C²-Bound reproduction — convenience targets.

GO ?= go

.PHONY: all build vet lint lint-json lint-suppressions test test-short race race-heavy check bench bench-json bench-engine bench-families bench-obs bench-server bench-tenants bench-cluster serve figures figures-full examples cover fuzz-short clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-specific static analysis (see DESIGN.md §8 and §13): the twelve
# c2vet analyzers — floatguard, errwrap, ctxflow, httpctx, outboundctx,
# ctxsleep, enginepath, batchpar, paramdomain and the interprocedural
# detguard, atomicguard and leakcheck — over every package. Exit 1 means findings,
# exit 2 means the packages did not load or type-check.
lint:
	$(GO) run ./cmd/c2vet ./...

# The same findings as one stable JSON document (CI artifact).
lint-json:
	$(GO) run ./cmd/c2vet -json ./... > c2vet.json

# Audit `//lint:allow` comments: list directives that suppress nothing.
lint-suppressions:
	$(GO) run ./cmd/c2vet -suppressions ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The concurrency-heavy packages under the race detector with
# first-race-aborts semantics: a race here fails fast and loud instead
# of scrolling past in a full-suite log. CI runs this as its own job.
race-heavy:
	GORACE=halt_on_error=1 $(GO) test -race ./internal/engine ./internal/server ./internal/obs ./internal/dse

# The full pre-merge gate: build, vet, the c2vet analyzers (findings and
# stale suppressions), tests, and the race detector.
check: build vet lint lint-suppressions test race

# One iteration of every figure/table benchmark with its headline metric.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run XXX .

# Engine throughput (cold vs warm memo cache) as JSON for trend tracking.
bench-json:
	$(GO) run ./cmd/enginebench -out BENCH_engine.json

# Batched vs scalar dispatch: the same sweep on both engine paths, with
# bit-identity verified and allocations per point recorded (see
# DESIGN.md §12). Fails if any value differs by a single bit.
bench-engine:
	$(GO) run ./cmd/enginebench -batch -out BENCH_engine.json

# Every registered model family on the per-request scalar path vs the
# compiled batched path, bit-identity verified per family (see
# DESIGN.md §14). Fails if any family's values diverge by a single bit.
bench-families:
	$(GO) run ./cmd/enginebench -families -out BENCH_families.json

# Observability cost: the same benchmark with the tracer and metrics
# registry disabled vs enabled, side by side (see DESIGN.md §9).
bench-obs:
	$(GO) run ./cmd/enginebench -per 5 -rounds 5 -obs BENCH_obs.json

# HTTP serving path: concurrent clients batching through a loopback
# c2bound server, cold vs warm shared cache (see DESIGN.md §10).
bench-server:
	$(GO) run ./cmd/enginebench -server -per 4 -rounds 3 -clients 8 -out BENCH_server.json

# Multi-tenant isolation: a flooder tenant saturates the admission gate
# while a trickler sends 1 req/s; fails if the trickler is ever shed
# (see DESIGN.md §11).
bench-tenants:
	$(GO) run ./cmd/enginebench -tenants -clients 16 -duration 10s -out BENCH_tenants.json

# Distributed tier: 1..3 real c2bound-server processes sharing a
# consistent-hash ring, one full catalog sweep each — shard balance,
# warm hit-rate vs peer count and fan-out latency (see DESIGN.md §15).
# Fails on shard imbalance over 15% or a non-increasing warm hit rate.
bench-cluster:
	$(GO) run ./cmd/enginebench -cluster -cluster-peers 3 -per 4 -out BENCH_cluster.json

# Run the evaluation service locally on :8080.
serve:
	$(GO) run ./cmd/c2bound-server -addr :8080

figures:
	$(GO) run ./cmd/figures

# Paper-scale DSE: 10 values per dimension (10^6 configurations).
figures-full:
	$(GO) run ./cmd/figures -full -only fig12

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/scaling
	$(GO) run ./examples/scheduling
	$(GO) run ./examples/detector
	$(GO) run ./examples/energy
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/dse

cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# A quick shake of every fuzz target (one target per go test invocation).
fuzz-short:
	$(GO) test -run XXX -fuzz FuzzNewton1D -fuzztime 10s ./internal/solve
	$(GO) test -run XXX -fuzz FuzzNelderMead -fuzztime 10s ./internal/solve
	$(GO) test -run XXX -fuzz FuzzAnalyze -fuzztime 10s ./internal/camat
	$(GO) test -run XXX -fuzz FuzzSerializeIdempotent -fuzztime 10s ./internal/camat

clean:
	$(GO) clean ./...
