# C²-Bound reproduction — convenience targets.

GO ?= go

.PHONY: all build vet test test-short race check bench bench-json figures figures-full examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The full pre-merge gate: build, vet, tests, and the race detector.
check: build vet test race

# One iteration of every figure/table benchmark with its headline metric.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run XXX .

# Engine throughput (cold vs warm memo cache) as JSON for trend tracking.
bench-json:
	$(GO) run ./cmd/enginebench -out BENCH_engine.json

figures:
	$(GO) run ./cmd/figures

# Paper-scale DSE: 10 values per dimension (10^6 configurations).
figures-full:
	$(GO) run ./cmd/figures -full -only fig12

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/scaling
	$(GO) run ./examples/scheduling
	$(GO) run ./examples/detector
	$(GO) run ./examples/energy
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/dse

cover:
	$(GO) test -short -cover ./internal/...

clean:
	$(GO) clean ./...
