// Command c2bound-server serves the C²-Bound evaluation stack over HTTP:
// single-point evaluation, NDJSON batches, server-side streaming sweeps,
// the full APS flow, and the asynchronous /v1/jobs resource, all against
// one shared memoizing engine (see internal/server, DESIGN.md §10–11).
//
// Usage:
//
//	c2bound-server [-addr :8080] [-workers n] [-cache n]
//	               [-max-concurrent n] [-max-queue n]
//	               [-timeout 30s] [-max-timeout 5m]
//	               [-checkpoint-dir dir] [-trace out.json]
//	               [-tenants tenants.json] [-job-dir dir]
//	               [-drain-timeout 30s]
//
// -tenants names a JSON file ({"tenants":[{name, key, weight, ...}]})
// declaring per-tenant API keys, fair-share weights, quotas and rate
// limits; SIGHUP re-reads it and swaps the table without dropping live
// work. -job-dir enables /v1/jobs with durable records there; jobs found
// running after a crash are adopted and resumed from their checkpoints.
//
// On SIGINT/SIGTERM the server drains: /readyz flips to 503, in-flight
// requests finish (or are cancelled after -drain-timeout, which lets
// checkpointed sweeps and jobs flush their state), then the listener
// closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("c2bound-server: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "engine worker bound (0: GOMAXPROCS)")
	cache := flag.Int("cache", 0, "engine memo cache size (0: default, -1: off)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admitted work requests at once (0: engine workers)")
	maxQueue := flag.Int("max-queue", 0, fmt.Sprintf("queued work requests before shedding (0: %d x max-concurrent)", server.DefaultMaxQueueFactor))
	timeout := flag.Duration("timeout", server.DefaultTimeout, "default per-request evaluation deadline")
	maxTimeout := flag.Duration("max-timeout", server.DefaultMaxTimeout, "largest client-requested ?timeout_ms")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for sweep checkpoints (empty: checkpointing off)")
	tenantsPath := flag.String("tenants", "", "tenant table JSON (empty: open single-tenant mode; SIGHUP reloads)")
	jobDir := flag.String("job-dir", "", "directory for durable /v1/jobs records (empty: jobs off)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON on exit")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight work on shutdown")
	flag.Parse()

	if err := run(*addr, *workers, *cache, *maxConcurrent, *maxQueue,
		*timeout, *maxTimeout, *checkpointDir, *tenantsPath, *jobDir,
		*tracePath, *drainTimeout); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, workers, cache, maxConcurrent, maxQueue int,
	timeout, maxTimeout time.Duration, checkpointDir, tenantsPath, jobDir,
	tracePath string, drainTimeout time.Duration) error {
	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer(0)
	}
	if checkpointDir != "" {
		if err := os.MkdirAll(checkpointDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}

	srv := server.New(server.Options{
		Workers:       workers,
		CacheSize:     cache,
		MaxConcurrent: maxConcurrent,
		MaxQueue:      maxQueue,
		Timeout:       timeout,
		MaxTimeout:    maxTimeout,
		CheckpointDir: checkpointDir,
		JobDir:        jobDir,
		Tracer:        tracer,
	})
	if tenantsPath != "" {
		if err := loadTenants(srv, tenantsPath); err != nil {
			return err
		}
		log.Printf("tenants: %s", strings.Join(srv.TenantNames(), ", "))
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP swaps the tenant table in place; a broken file logs and
	// keeps the old table, so a bad edit cannot take the service down.
	if tenantsPath != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := loadTenants(srv, tenantsPath); err != nil {
					log.Printf("tenants reload: %v (keeping previous table)", err)
					continue
				}
				log.Printf("tenants reloaded: %s", strings.Join(srv.TenantNames(), ", "))
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (workers=%d, endpoints: evaluate, batch, sweep, aps, jobs)", addr, srv.Engine().Workers())
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("draining (up to %v)...", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Flip /readyz and drain the work plane first so load balancers stop
	// routing before the listener disappears; forced cancellation lets
	// checkpointed sweeps flush state.
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("forced drain: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("listener close: %v", err)
	}
	if tracePath != "" {
		if err := writeTrace(tracePath, tracer); err != nil {
			log.Printf("trace: %v", err)
		}
	}
	log.Printf("%s", srv.Engine().Stats().String())
	return <-errCh
}

// loadTenants reads the tenant file and swaps it into the server.
func loadTenants(srv *server.Server, path string) error {
	cfgs, err := server.LoadTenantsFile(path)
	if err != nil {
		return fmt.Errorf("tenants: %w", err)
	}
	if err := srv.SetTenants(cfgs); err != nil {
		return fmt.Errorf("tenants: %w", err)
	}
	return nil
}

// writeTrace dumps the tracer's spans as Chrome trace_event JSON.
func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
