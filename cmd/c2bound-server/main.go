// Command c2bound-server serves the C²-Bound evaluation stack over HTTP:
// single-point evaluation, NDJSON batches, server-side streaming sweeps
// and the full APS flow, all against one shared memoizing engine (see
// internal/server and DESIGN.md §10).
//
// Usage:
//
//	c2bound-server [-addr :8080] [-workers n] [-cache n]
//	               [-max-concurrent n] [-max-queue n]
//	               [-timeout 30s] [-max-timeout 5m]
//	               [-checkpoint-dir dir] [-trace out.json]
//	               [-drain-timeout 30s]
//
// On SIGINT/SIGTERM the server drains: /readyz flips to 503, in-flight
// requests finish (or are cancelled after -drain-timeout, which lets
// checkpointed sweeps flush their state), then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("c2bound-server: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "engine worker bound (0: GOMAXPROCS)")
	cache := flag.Int("cache", 0, "engine memo cache size (0: default, -1: off)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admitted work requests at once (0: engine workers)")
	maxQueue := flag.Int("max-queue", 0, fmt.Sprintf("queued work requests before shedding (0: %d x max-concurrent)", server.DefaultMaxQueueFactor))
	timeout := flag.Duration("timeout", server.DefaultTimeout, "default per-request evaluation deadline")
	maxTimeout := flag.Duration("max-timeout", server.DefaultMaxTimeout, "largest client-requested ?timeout_ms")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for sweep checkpoints (empty: checkpointing off)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON on exit")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight work on shutdown")
	flag.Parse()

	if err := run(*addr, *workers, *cache, *maxConcurrent, *maxQueue,
		*timeout, *maxTimeout, *checkpointDir, *tracePath, *drainTimeout); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, workers, cache, maxConcurrent, maxQueue int,
	timeout, maxTimeout time.Duration, checkpointDir, tracePath string,
	drainTimeout time.Duration) error {
	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer(0)
	}
	if checkpointDir != "" {
		if err := os.MkdirAll(checkpointDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}

	srv := server.New(server.Options{
		Workers:       workers,
		CacheSize:     cache,
		MaxConcurrent: maxConcurrent,
		MaxQueue:      maxQueue,
		Timeout:       timeout,
		MaxTimeout:    maxTimeout,
		CheckpointDir: checkpointDir,
		Tracer:        tracer,
	})

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (workers=%d, endpoints: evaluate, batch, sweep, aps)", addr, srv.Engine().Workers())
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("draining (up to %v)...", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Flip /readyz and drain the work plane first so load balancers stop
	// routing before the listener disappears; forced cancellation lets
	// checkpointed sweeps flush state.
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("forced drain: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("listener close: %v", err)
	}
	if tracePath != "" {
		if err := writeTrace(tracePath, tracer); err != nil {
			log.Printf("trace: %v", err)
		}
	}
	log.Printf("%s", srv.Engine().Stats().String())
	return <-errCh
}

// writeTrace dumps the tracer's spans as Chrome trace_event JSON.
func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
