// Command c2bound-server serves the C²-Bound evaluation stack over HTTP:
// single-point evaluation, NDJSON batches, server-side streaming sweeps,
// the full APS flow, and the asynchronous /v1/jobs resource, all against
// one shared memoizing engine (see internal/server, DESIGN.md §10–11).
//
// Usage:
//
//	c2bound-server [-addr :8080] [-workers n] [-cache n]
//	               [-max-concurrent n] [-max-queue n]
//	               [-timeout 30s] [-max-timeout 5m]
//	               [-checkpoint-dir dir] [-trace out.json]
//	               [-tenants tenants.json] [-job-dir dir]
//	               [-peers peers.json] [-peer-self name]
//	               [-cache-snapshot cache.snap]
//	               [-drain-timeout 30s]
//
// -tenants names a JSON file ({"tenants":[{name, key, weight, ...}]})
// declaring per-tenant API keys, fair-share weights, quotas and rate
// limits; SIGHUP re-reads it and swaps the table without dropping live
// work. -job-dir enables /v1/jobs with durable records there; jobs found
// running after a crash are adopted and resumed from their checkpoints.
//
// -peers joins the process to a cluster (DESIGN.md §15): the JSON
// membership table ({"self":..., "peers":[{name, url}]}) builds a
// consistent-hash ring over the peers, remote-owned points travel to
// their owner's cache, and sweeps are partitioned by ownership.
// -peer-self overrides the file's "self" so every peer can share one
// table. SIGHUP re-reads the table too (membership changes move only the
// affected ring shard). -cache-snapshot persists the memo cache to disk
// on drain and restores it on startup, so a restarted peer comes back
// warm instead of re-earning its shard.
//
// On SIGINT/SIGTERM the server drains: /readyz flips to 503, in-flight
// requests finish (or are cancelled after -drain-timeout, which lets
// checkpointed sweeps and jobs flush their state), then the listener
// closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
)

// runConfig carries the parsed flag set into run.
type runConfig struct {
	addr          string
	workers       int
	cache         int
	maxConcurrent int
	maxQueue      int
	timeout       time.Duration
	maxTimeout    time.Duration
	checkpointDir string
	tenantsPath   string
	jobDir        string
	peersPath     string
	peerSelf      string
	snapshotPath  string
	tracePath     string
	drainTimeout  time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("c2bound-server: ")

	var cfg runConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.workers, "workers", 0, "engine worker bound (0: GOMAXPROCS)")
	flag.IntVar(&cfg.cache, "cache", 0, "engine memo cache size (0: default, -1: off)")
	flag.IntVar(&cfg.maxConcurrent, "max-concurrent", 0, "admitted work requests at once (0: engine workers)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, fmt.Sprintf("queued work requests before shedding (0: %d x max-concurrent)", server.DefaultMaxQueueFactor))
	flag.DurationVar(&cfg.timeout, "timeout", server.DefaultTimeout, "default per-request evaluation deadline")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", server.DefaultMaxTimeout, "largest client-requested ?timeout_ms")
	flag.StringVar(&cfg.checkpointDir, "checkpoint-dir", "", "directory for sweep checkpoints (empty: checkpointing off)")
	flag.StringVar(&cfg.tenantsPath, "tenants", "", "tenant table JSON (empty: open single-tenant mode; SIGHUP reloads)")
	flag.StringVar(&cfg.jobDir, "job-dir", "", "directory for durable /v1/jobs records (empty: jobs off)")
	flag.StringVar(&cfg.peersPath, "peers", "", "cluster membership JSON (empty: standalone; SIGHUP reloads)")
	flag.StringVar(&cfg.peerSelf, "peer-self", "", "override the membership file's self name")
	flag.StringVar(&cfg.snapshotPath, "cache-snapshot", "", "memo-cache snapshot file: restored on startup, written on drain")
	flag.StringVar(&cfg.tracePath, "trace", "", "write a Chrome trace_event JSON on exit")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "grace period for in-flight work on shutdown")
	flag.Parse()

	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

func run(cfg runConfig) error {
	var tracer *obs.Tracer
	if cfg.tracePath != "" {
		tracer = obs.NewTracer(0)
	}
	if cfg.checkpointDir != "" {
		if err := os.MkdirAll(cfg.checkpointDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}

	// One registry serves the server_*, engine_* and cluster_*
	// instruments, so /metrics shows the whole stack.
	metrics := obs.NewRegistry()
	var cl *cluster.Cluster
	if cfg.peersPath != "" {
		pcfg, err := loadPeers(cfg.peersPath, cfg.peerSelf)
		if err != nil {
			return err
		}
		cl, err = cluster.New(pcfg, cluster.Options{Metrics: metrics, Tracer: tracer})
		if err != nil {
			return fmt.Errorf("peers: %w", err)
		}
		log.Printf("cluster: self=%s, %d peers", cl.Self(), len(cl.PeerNames())+1)
	}

	srv := server.New(server.Options{
		Workers:       cfg.workers,
		CacheSize:     cfg.cache,
		MaxConcurrent: cfg.maxConcurrent,
		MaxQueue:      cfg.maxQueue,
		Timeout:       cfg.timeout,
		MaxTimeout:    cfg.maxTimeout,
		CheckpointDir: cfg.checkpointDir,
		JobDir:        cfg.jobDir,
		Cluster:       cl,
		Tracer:        tracer,
		Metrics:       metrics,
	})
	if cfg.tenantsPath != "" {
		if err := loadTenants(srv, cfg.tenantsPath); err != nil {
			return err
		}
		log.Printf("tenants: %s", strings.Join(srv.TenantNames(), ", "))
	}
	if cfg.snapshotPath != "" {
		n, err := srv.Engine().LoadSnapshot(cfg.snapshotPath)
		switch {
		case err == nil:
			log.Printf("cache snapshot: restored %d entries from %s", n, cfg.snapshotPath)
		case os.IsNotExist(err):
			log.Printf("cache snapshot: %s absent, starting cold", cfg.snapshotPath)
		default:
			// A corrupt snapshot must not take the service down: the load
			// is all-or-nothing, so the cache is simply cold.
			log.Printf("cache snapshot: %v (starting cold)", err)
		}
	}

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cl != nil {
		stopProber := cl.StartProber(ctx)
		defer stopProber()
	}

	// SIGHUP swaps the tenant table and the cluster membership in place;
	// a broken file logs and keeps the old table, so a bad edit cannot
	// take the service down.
	if cfg.tenantsPath != "" || cfg.peersPath != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if cfg.tenantsPath != "" {
					if err := loadTenants(srv, cfg.tenantsPath); err != nil {
						log.Printf("tenants reload: %v (keeping previous table)", err)
					} else {
						log.Printf("tenants reloaded: %s", strings.Join(srv.TenantNames(), ", "))
					}
				}
				if cfg.peersPath != "" {
					pcfg, err := loadPeers(cfg.peersPath, cfg.peerSelf)
					if err == nil {
						err = cl.SetPeers(pcfg)
					}
					if err != nil {
						log.Printf("peers reload: %v (keeping previous membership)", err)
					} else {
						log.Printf("peers reloaded: %d peers", len(cl.PeerNames())+1)
					}
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (workers=%d, endpoints: evaluate, batch, sweep, aps, jobs)", cfg.addr, srv.Engine().Workers())
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("draining (up to %v)...", cfg.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	// Flip /readyz and drain the work plane first so load balancers stop
	// routing before the listener disappears; forced cancellation lets
	// checkpointed sweeps flush state.
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("forced drain: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("listener close: %v", err)
	}
	if cfg.snapshotPath != "" {
		// After the drain, so the snapshot carries the final cache state.
		if n, err := srv.Engine().SaveSnapshot(cfg.snapshotPath); err != nil {
			log.Printf("cache snapshot: %v", err)
		} else {
			log.Printf("cache snapshot: wrote %d entries to %s", n, cfg.snapshotPath)
		}
	}
	if cfg.tracePath != "" {
		if err := writeTrace(cfg.tracePath, tracer); err != nil {
			log.Printf("trace: %v", err)
		}
	}
	log.Printf("%s", srv.Engine().Stats().String())
	return <-errCh
}

// loadPeers reads the membership table, applying the -peer-self override.
func loadPeers(path, self string) (cluster.Config, error) {
	cfg, err := cluster.LoadPeersFile(path)
	if err != nil {
		return cluster.Config{}, fmt.Errorf("peers: %w", err)
	}
	if self != "" {
		cfg.Self = self
	}
	return cfg, nil
}

// loadTenants reads the tenant file and swaps it into the server.
func loadTenants(srv *server.Server, path string) error {
	cfgs, err := server.LoadTenantsFile(path)
	if err != nil {
		return fmt.Errorf("tenants: %w", err)
	}
	if err := srv.SetTenants(cfgs); err != nil {
		return fmt.Errorf("tenants: %w", err)
	}
	return nil
}

// writeTrace dumps the tracer's spans as Chrome trace_event JSON.
func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
