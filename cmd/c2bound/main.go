// Command c2bound solves the C²-Bound analytic optimization for an
// application profile on a chip budget and prints the recommended design:
// core count, silicon split, and the model's view of the memory system at
// the optimum.
//
// Usage:
//
//	c2bound [-app fluidanimate|tmm|stencil|fft] [-area mm2] [-fseq f]
//	        [-fmem f] [-conc C] [-gorder b] [-maxn n] [-timeout d]
//	        [-sweep per] [-checkpoint file] [-resume]
//	        [-workers n] [-cache n] [-trace out.json] [-metrics]
//	        [-cpuprofile out.pprof]
//
// Observability: -trace writes a Chrome trace_event JSON of the run's
// span hierarchy, -metrics prints the metrics registry snapshot on exit,
// and -cpuprofile records a pprof CPU profile.
//
// Flags override the preset profile's fields, so one command answers
// "what if this application had concurrency 8?" style questions.
//
// With -sweep the command additionally brute-forces the per-values-per-
// dimension reduced design space with the analytic evaluator; -checkpoint
// and -resume make that sweep restartable, and -timeout bounds the whole
// run (a timed-out sweep saves its partial state before exiting).
//
// The optimizer and the sweep share one evaluation engine: objective
// probes and sweep points are memoized together. -workers bounds the
// engine's parallelism, -cache its memo capacity (0 = default, negative =
// disable); an engine statistics line is printed on exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	c2bound "repro"
	"repro/internal/dse"
	"repro/internal/obs"
)

func main() {
	appName := flag.String("app", "fluidanimate", "application preset: fluidanimate, tmm, stencil, fft")
	area := flag.Float64("area", 0, "total chip area in mm² (0: default 400)")
	fseq := flag.Float64("fseq", -1, "sequential fraction override")
	fmem := flag.Float64("fmem", -1, "memory access frequency override")
	conc := flag.Float64("conc", 0, "pin the data-access concurrency C (C_H = C_M = C)")
	gorder := flag.Float64("gorder", -1, "g(N) = N^b growth exponent override")
	maxn := flag.Int("maxn", 0, "largest core count to consider")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	sweepPer := flag.Int("sweep", 0, "also sweep the reduced space with this many values per dimension")
	checkpoint := flag.String("checkpoint", "", "save sweep state to this JSON file")
	resume := flag.Bool("resume", false, "skip points already recorded in -checkpoint")
	workers := flag.Int("workers", 0, "evaluation parallelism (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0, "engine memo-cache capacity (0 = default, negative = disable)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
	metricsOut := flag.Bool("metrics", false, "print the metrics registry snapshot on exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var tracer *c2bound.Tracer
	if *traceOut != "" {
		tracer = c2bound.NewTracer(0)
		ctx = obs.ContextWithTracer(ctx, tracer)
		defer func() {
			if err := tracer.WriteChromeTraceFile(*traceOut); err != nil {
				log.Printf("trace: %v", err)
				return
			}
			fmt.Printf("trace: %d spans written to %s (%d dropped)\n",
				tracer.Len(), *traceOut, tracer.Dropped())
		}()
	}
	var metrics *c2bound.Metrics
	if *metricsOut {
		metrics = c2bound.NewMetrics()
		ctx = obs.ContextWithMetrics(ctx, metrics)
		defer func() {
			fmt.Println("\nmetrics:")
			if err := metrics.WriteText(os.Stdout); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
	}
	if *cpuProfile != "" {
		stopProf, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			if err := stopProf(); err != nil {
				log.Printf("cpuprofile: %v", err)
			}
		}()
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *resume && *checkpoint == "" {
		log.Fatal("-resume requires -checkpoint")
	}

	var app c2bound.App
	switch *appName {
	case "fluidanimate":
		app = c2bound.FluidanimateApp()
	case "tmm":
		app = c2bound.TMMApp()
	case "stencil":
		app = c2bound.StencilApp()
	case "fft":
		app = c2bound.FFTApp()
	default:
		fmt.Fprintf(os.Stderr, "unknown application %q\n", *appName)
		flag.Usage()
		os.Exit(2)
	}
	if *fseq >= 0 {
		app.Fseq = *fseq
	}
	if *fmem >= 0 {
		app.Fmem = *fmem
	}
	if *conc >= 1 {
		app = app.WithConcurrency(*conc)
	}
	if *gorder >= 0 {
		app.G = c2bound.PowerLaw(*gorder)
		app.GOrder = *gorder
	}

	cfg := c2bound.DefaultChip()
	if *area > 0 {
		cfg.TotalArea = *area
	}

	// One engine serves the optimizer and the optional sweep: objective
	// probes and sweep points share its memo cache and worker pool.
	eng := c2bound.NewEngine(c2bound.EngineOptions{
		Workers: *workers, CacheSize: *cacheSize, Tracer: tracer, Metrics: metrics,
	})
	defer func() { fmt.Println(eng.Stats()) }()

	m := c2bound.Model{Chip: cfg, App: app}
	res, err := c2bound.Optimize(ctx, m,
		c2bound.WithEngine(eng),
		c2bound.WithTracer(tracer),
		c2bound.WithMetrics(metrics),
		c2bound.WithOptimize(c2bound.OptimizeOptions{MaxN: *maxn}))
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}

	fmt.Printf("application       : %s (fseq=%.3g fmem=%.3g C_H=%.3g C_M=%.3g g~N^%.3g)\n",
		app.Name, app.Fseq, app.Fmem, app.CH, app.CM, app.GOrder)
	fmt.Printf("chip budget       : %.4g mm² (%.4g mm² fixed)\n", cfg.TotalArea, cfg.FixedArea)
	fmt.Printf("regime            : %v\n", res.Regime)
	fmt.Printf("optimal design    : %v\n", res.Design)
	fmt.Printf("  per-core caches : L1 %.4g KB, L2 slice %.4g KB\n",
		cfg.L1SizeKB(res.Design), cfg.L2SizeKB(res.Design))
	fmt.Printf("  on-chip capacity: %.4g MB\n", cfg.OnChipCapacityKB(res.Design)/1024)
	fmt.Printf("model at optimum  : CPI_exe=%.3f C-AMAT=%.3f (C=%.2f) CPI=%.3f\n",
		res.Eval.CPIExe, res.Eval.CAMAT, res.Eval.C, res.Eval.CPI)
	fmt.Printf("  L1 MR=%.4f  L2 MR=%.4f  loaded mem latency=%.1f cycles (ρ=%.2f)\n",
		res.Eval.L1MR, res.Eval.L2MR, res.Eval.MemLat, res.Eval.Rho)
	fmt.Printf("objective         : T=%.6g, W=%.6g, W/T=%.6g\n",
		res.Eval.Time, res.Eval.Work, res.Eval.Throughput)
	fmt.Printf("solver            : %s after %d objective evaluations\n", res.Method, res.Evaluations)

	if *sweepPer > 0 {
		runSweep(ctx, m, cfg, eng, *sweepPer, *checkpoint, *resume)
	}
}

// runSweep brute-forces the reduced design space with the analytic
// evaluator, optionally checkpointing so an interrupted run can resume.
func runSweep(ctx context.Context, m c2bound.Model, cfg c2bound.ChipConfig, eng *c2bound.Engine, per int, checkpoint string, resume bool) {
	space, err := dse.ReducedSpace(cfg, per)
	if err != nil {
		log.Fatalf("sweep space: %v", err)
	}
	fmt.Printf("\nsweeping %d analytic design points...\n", space.Size())
	start := time.Now()
	values, rep, err := dse.SweepCtx(ctx, &dse.ModelEvaluator{Model: m}, space, nil, dse.SweepOptions{
		Engine:         eng,
		CheckpointPath: checkpoint,
		Resume:         resume,
	})
	fmt.Printf("sweep: %d/%d evaluated (%d resumed, %d from cache, %d retries, %d failed, %d pending) in %v\n",
		len(rep.Completed), rep.Total, rep.Resumed, rep.CacheHits, rep.Retries, len(rep.Failed), len(rep.Pending),
		time.Since(start).Round(time.Millisecond))
	if err != nil {
		if checkpoint != "" {
			fmt.Printf("sweep interrupted; rerun with -resume to continue\n")
		}
		log.Fatalf("sweep: %v", err)
	}
	idx, best := dse.Best(values)
	if idx < 0 {
		log.Fatal("sweep: no feasible design point")
	}
	p := space.Point(idx)
	fmt.Printf("sweep optimum     : A0=%.3g A1=%.3g A2=%.3g mm², N=%.0f cores, issue=%g, ROB=%.0f (T=%.6g)\n",
		p[0], p[1], p[2], p[3], p[4], p[5], best)
}
