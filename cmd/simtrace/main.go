// Command simtrace runs the many-core simulator on a synthetic workload
// and prints the measured statistics: CPI, cache behaviour, the C-AMAT
// decomposition from the per-core HCD/MCD detectors, and the per-layer
// APC values.
//
// Usage:
//
//	simtrace [-workload name] [-cores n] [-ws bytes] [-refs n]
//	         [-gap g] [-issue w] [-rob n] [-l1 KB] [-l2 KB] [-seed s]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	c2bound "repro"
)

func main() {
	workload := flag.String("workload", "fluidanimate", "workload: "+strings.Join(c2bound.Workloads(), ", "))
	cores := flag.Int("cores", 4, "number of cores")
	ws := flag.Uint64("ws", 8<<20, "working set bytes")
	refs := flag.Int("refs", 50000, "memory references per core")
	gap := flag.Float64("gap", 2, "mean compute instructions between references")
	issue := flag.Int("issue", 4, "issue width")
	rob := flag.Int("rob", 128, "ROB entries")
	l1 := flag.Int("l1", 32, "L1 size KB")
	l2 := flag.Int("l2", 2048, "shared L2 size KB")
	seed := flag.Uint64("seed", 1, "trace seed")
	flag.Parse()

	cfg := c2bound.DefaultMachine(*cores)
	cfg.Core.IssueWidth = *issue
	cfg.Core.ROB = *rob
	cfg.L1.SizeKB = *l1
	cfg.L2.SizeKB = *l2

	res, err := c2bound.RunWorkload(cfg, *workload, *ws, *gap, *refs, *seed)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	fmt.Printf("machine   : %d cores, %d-wide, ROB %d, L1 %dKB, L2 %dKB\n",
		*cores, *issue, *rob, *l1, *l2)
	fmt.Printf("workload  : %s, %s working set, %d refs/core, fmem≈%.2f\n",
		*workload, byteSize(*ws), *refs, 1/(1+*gap))
	fmt.Printf("cycles    : %d (slowest core)\n", res.Cycles)
	fmt.Printf("CPI       : %.4f over %d instructions (%d memory accesses)\n",
		res.CPI, res.Instructions, res.MemAccesses)
	fmt.Printf("L1        : MR=%.4f merges=%d writebacks=%d avg latency=%.1f\n",
		res.L1Stats.MissRate(), res.L1Stats.MSHRMerges, res.L1Stats.Writebacks, res.L1Stats.AvgLatency())
	fmt.Printf("L2        : MR=%.4f accesses=%d\n", res.L2Stats.MissRate(), res.L2Stats.Accesses)
	fmt.Printf("DRAM      : accesses=%d row-hit rate=%.3f\n",
		res.DRAMStats.Accesses(), res.DRAMStats.RowHitRate())
	p := res.L1Params
	fmt.Printf("AMAT      : %.3f cycles (H=%.0f MR=%.4f AMP=%.2f)\n", p.AMAT(), p.H, p.MR, p.AMP)
	fmt.Printf("C-AMAT    : %.3f cycles (C_H=%.3f C_M=%.3f pMR=%.4f pAMP=%.2f)\n",
		p.CAMAT(), p.CH, p.CM, p.PMR, p.PAMP)
	fmt.Printf("C         : %.3f (data access concurrency)\n", p.Concurrency())
	fmt.Printf("APC       : L1=%.4f LLC=%.4f mem=%.4f\n", res.APCL1, res.APCL2, res.APCMem)
}

func byteSize(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}
