// Command aps runs the complete Analysis-Plus-Simulation flow of Fig. 6
// for a named workload: (1) characterize the application on the simulator
// with the C-AMAT detector, (2) solve the C²-Bound analytic optimization,
// (3) simulate only the issue-width × ROB slice at the analytic design
// point, and report the chosen configuration together with the simulation
// budget spent.
//
// Usage:
//
//	aps [-workload name] [-ws bytes] [-refs n] [-per k] [-fseq f]
//	    [-radius r] [-truth] [-timeout d] [-checkpoint file] [-resume]
//	    [-workers n] [-cache n] [-trace out.json] [-metrics]
//	    [-cpuprofile out.pprof]
//
// Observability: -trace writes a Chrome trace_event JSON of the run's
// span hierarchy (load it in chrome://tracing or Perfetto), -metrics
// prints the metrics registry snapshot on exit (its engine_* counters
// match the engine statistics line exactly), and -cpuprofile records a
// pprof CPU profile.
//
// With -truth the full design space is also swept to ground-truth the APS
// design (expensive: per^6 simulations). -timeout bounds the whole run;
// when it fires, whatever was evaluated so far is reported (and saved to
// the -checkpoint file, if given, from where a later -resume run picks the
// sweep back up).
//
// One evaluation engine serves the whole command: the analytic optimizer,
// the APS slice and the -truth sweep share its memo cache, so every slice
// configuration APS already simulated is served from cache during the
// truth sweep. -workers bounds the engine's parallelism and -cache its
// memo capacity (0 = default, negative = disable); an engine statistics
// line is printed on exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/aps"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/obs"
)

func main() {
	workload := flag.String("workload", "fluidanimate", "workload to design for")
	ws := flag.Uint64("ws", 8<<20, "working set bytes")
	refs := flag.Int("refs", 8000, "references per characterization/DSE simulation")
	per := flag.Int("per", 4, "design-space values per dimension (10 = paper scale)")
	fseq := flag.Float64("fseq", 0.05, "sequential fraction (from the app's structure)")
	radius := flag.Int("radius", 0, "extra neighborhood radius around the analytic point")
	truth := flag.Bool("truth", false, "also brute-force the space to measure APS error")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	checkpoint := flag.String("checkpoint", "", "periodically save sweep state to this JSON file")
	resume := flag.Bool("resume", false, "skip configurations already recorded in -checkpoint")
	workers := flag.Int("workers", 0, "simulation parallelism (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0, "engine memo-cache capacity (0 = default, negative = disable)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
	metricsOut := flag.Bool("metrics", false, "print the metrics registry snapshot on exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
		ctx = obs.ContextWithTracer(ctx, tracer)
		defer func() {
			if err := tracer.WriteChromeTraceFile(*traceOut); err != nil {
				log.Printf("trace: %v", err)
				return
			}
			fmt.Printf("trace: %d spans written to %s (%d dropped)\n",
				tracer.Len(), *traceOut, tracer.Dropped())
		}()
	}
	var metrics *obs.Registry
	if *metricsOut {
		metrics = obs.NewRegistry()
		ctx = obs.ContextWithMetrics(ctx, metrics)
		defer func() {
			fmt.Println("\nmetrics:")
			if err := metrics.WriteText(os.Stdout); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
	}
	if *cpuProfile != "" {
		stopProf, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			if err := stopProf(); err != nil {
				log.Printf("cpuprofile: %v", err)
			}
		}()
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *resume && *checkpoint == "" {
		log.Fatal("-resume requires -checkpoint")
	}

	start := time.Now()

	// Step 1: characterization (Fig. 6 lines 1-3).
	fmt.Printf("[1/3] characterizing %q with the C-AMAT detector...\n", *workload)
	app, err := aps.CharacterizeCtx(ctx, aps.CharacterizeOptions{
		Workload: *workload, WSBytes: *ws, Refs: *refs, Fseq: *fseq, Seed: 17,
	})
	if err != nil {
		log.Fatalf("characterize: %v", err)
	}
	fmt.Printf("      fmem=%.3f C_H=%.2f C_M=%.2f pMR/MR=%.2f pAMP/AMP=%.2f g~N^%.2g\n",
		app.Fmem, app.CH, app.CM, app.PMRRatio, app.PAMPRatio, app.GOrder)

	// The DSE compares fixed-size execution times, so the model used for
	// the analytic phase carries g = 1 (the workload does not grow with
	// the configuration under test).
	app.G = func(float64) float64 { return 1 }
	app.GOrder = 0
	m := core.Model{Chip: chip.DefaultConfig(), App: app}

	space, err := dse.ReducedSpace(m.Chip, *per)
	if err != nil {
		log.Fatalf("space: %v", err)
	}
	eval, err := dse.NewSimEvaluator(m.Chip, *workload, *ws, 2, *refs, 17)
	if err != nil {
		log.Fatalf("evaluator: %v", err)
	}

	// One engine for the whole command: APS and the optional truth sweep
	// share its cache, so -truth never re-simulates the APS slice.
	eng := engine.New(engine.Options{Workers: *workers, CacheSize: *cacheSize, Tracer: tracer, Metrics: metrics})
	defer func() { fmt.Println(eng.Stats()) }()

	// Steps 2-3: analytic optimization + simulated slice.
	fmt.Printf("[2/3] solving the C²-Bound optimization and snapping onto the %d-point grid...\n", space.Size())
	opts := aps.Options{Engine: eng, Radius: *radius, Optimize: core.Options{MaxN: 64}}
	opts.Sweep.CheckpointPath = *checkpoint
	opts.Sweep.Resume = *resume
	res, err := aps.RunCtx(ctx, m, space, eval, opts)
	if err != nil {
		reportSweep(res.Report)
		log.Fatalf("aps: %v", err)
	}
	fmt.Printf("[3/3] simulated %d configurations (analytic phase scored %d grid points).\n",
		res.Simulations, res.AnalyticPoints)
	reportSweep(res.Report)
	fmt.Println()

	p := res.BestPoint
	fmt.Printf("chosen design: A0=%.3g A1=%.3g A2=%.3g mm², N=%.0f cores, issue=%[5]g, ROB=%.0f\n",
		p[0], p[1], p[2], p[3], p[4], p[5])
	fmt.Printf("simulated time: %.0f cycles\n", res.BestValue)
	if res.Simulations > 0 {
		fmt.Printf("design space: %d points; APS explored %d (%.1fx reduction)\n",
			res.SpaceSize, res.Simulations, float64(res.SpaceSize)/float64(res.Simulations))
	} else {
		fmt.Printf("design space: %d points; every slice point restored from checkpoint\n", res.SpaceSize)
	}

	if *truth {
		fmt.Printf("\nbrute-forcing all %d configurations for ground truth...\n", space.Size())
		truthOpts := dse.SweepOptions{Engine: eng, Resume: *resume}
		if *checkpoint != "" {
			truthOpts.CheckpointPath = *checkpoint + ".truth"
		}
		values, rep, err := dse.SweepCtx(ctx, eval, space, nil, truthOpts)
		if err != nil {
			reportSweep(rep)
			log.Fatalf("truth sweep: %v", err)
		}
		reportSweep(rep)
		relErr, err := aps.RelativeError(res.BestValue, values)
		if err != nil {
			log.Fatalf("relative error: %v", err)
		}
		fmt.Printf("APS design is within %.2f%% of the true optimum (paper: 5.96%%)\n", 100*relErr)
	}
	fmt.Printf("\nwall time: %v\n", time.Since(start).Round(time.Millisecond))
}

// reportSweep prints the resilience summary of a simulated sweep when
// anything noteworthy happened (retries, failures, cancellation, resume).
func reportSweep(rep dse.SweepReport) {
	if rep.Total == 0 {
		return
	}
	if rep.Retries > 0 || rep.Resumed > 0 || rep.CacheHits > 0 || len(rep.Failed) > 0 || rep.Canceled {
		fmt.Printf("      sweep: %d/%d evaluated (%d resumed, %d from cache, %d retries, %d failed, %d pending)\n",
			len(rep.Completed), rep.Total, rep.Resumed, rep.CacheHits, rep.Retries, len(rep.Failed), len(rep.Pending))
	}
	for _, f := range rep.Failed {
		fmt.Printf("      index %d failed after %d attempts: %s\n", f.Index, f.Attempts, f.Err)
	}
	if rep.Canceled {
		fmt.Printf("      sweep interrupted; rerun with -resume to continue\n")
	}
}
