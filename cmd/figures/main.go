// Command figures regenerates every table and figure of the paper's
// evaluation section and prints them as aligned text tables (or CSV with
// -csv). The default scale finishes in well under a minute; -full raises
// the DSE experiment to the paper's 10⁶-point design space (minutes).
//
// Usage:
//
//	figures [-only fig8,fig12,...] [-csv] [-full] [-refs n] [-per k]
//	        [-workers n] [-cache n]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/tablefmt"
)

func main() {
	only := flag.String("only", "", "comma-separated subset: fig1,table1,fig2,fig7,fig8,…,fig13,aps,regime,baselines,concurrency,validate,asym,pareto,prefetch,adapt,interference,xmodel")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	full := flag.Bool("full", false, "paper-scale DSE (10 values per dimension → 10^6 configurations)")
	refs := flag.Int("refs", 0, "workload references per simulation (0: default)")
	per := flag.Int("per", 0, "design-space values per dimension (0: default 3; -full forces 10)")
	workers := flag.Int("workers", 0, "simulation parallelism (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0, "engine memo-cache capacity (0 = default, negative = disable)")
	flag.Parse()

	sc := experiments.Scale{TotalRefs: *refs, SpacePer: *per, Workers: *workers, CacheSize: *cacheSize}
	if *full {
		sc.SpacePer = 10
		if sc.TotalRefs == 0 {
			sc.TotalRefs = 1000
		}
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(f))] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	type genFunc func() (*tablefmt.Table, error)
	gens := map[string]genFunc{
		"fig1": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.Fig1Demo()
			return tb, err
		},
		"table1": func() (*tablefmt.Table, error) { return experiments.Table1G(), nil },
		"fig2": func() (*tablefmt.Table, error) {
			cases, err := experiments.Fig2Illustration(16, 4, 0.05, 0.4, 0.5, 6)
			if err != nil {
				return nil, err
			}
			return experiments.Fig2Table(cases), nil
		},
		"fig7": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.Fig7CoreAllocation()
			return tb, err
		},
		"fig8": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.Fig8()
			return tb, err
		},
		"fig9": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.Fig9()
			return tb, err
		},
		"fig10": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.Fig10()
			return tb, err
		},
		"fig11": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.Fig11()
			return tb, err
		},
		"fig12": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.Fig12SimulationCounts(sc)
			return tb, err
		},
		"fig13": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.Fig13APC(sc)
			return tb, err
		},
		"aps": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.APSAccuracy(sc)
			return tb, err
		},
		"regime": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.AblationRegimeSplit(nil)
			return tb, err
		},
		"baselines": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.AblationBaselines()
			return tb, err
		},
		"concurrency": func() (*tablefmt.Table, error) {
			return experiments.AblationConcurrencySensitivity(nil)
		},
		"validate": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.CrossValidate(sc, 24)
			return tb, err
		},
		"asym": func() (*tablefmt.Table, error) {
			return experiments.AsymmetricComparison(nil)
		},
		"pareto": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.EnergyPareto()
			return tb, err
		},
		"prefetch": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.PrefetchAblation(sc)
			return tb, err
		},
		"adapt": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.PhaseAdaptation(sc)
			return tb, err
		},
		"interference": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.CoScheduleInterference(sc)
			return tb, err
		},
		"xmodel": func() (*tablefmt.Table, error) {
			tb, _, err := experiments.CrossModel(sc)
			return tb, err
		},
	}
	order := []string{"fig1", "table1", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "aps", "regime", "baselines", "concurrency",
		"validate", "asym", "pareto", "prefetch", "adapt", "interference", "xmodel"}

	// Reject unknown names early.
	for name := range selected {
		if _, ok := gens[name]; !ok {
			known := make([]string, 0, len(gens))
			for k := range gens {
				known = append(known, k)
			}
			sort.Strings(known)
			log.Fatalf("unknown figure %q (known: %s)", name, strings.Join(known, ", "))
		}
	}

	for _, name := range order {
		if !want(name) {
			continue
		}
		start := time.Now()
		tb, err := gens[name]()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if *csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb.String())
		}
		if d := time.Since(start); d > time.Second && !*csv {
			fmt.Printf("(%s generated in %v)\n\n", name, d.Round(time.Millisecond))
		}
	}
}
