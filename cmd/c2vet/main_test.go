package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeModule materializes a throwaway module under t.TempDir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpvet\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// dirtyModule has findings from two analyzers across two packages,
// arranged so neither load order (dependencies first: z before a) nor
// suite order (ctxsleep before floatguard) matches position order — the
// output being position-sorted is therefore an actual sort, not luck.
func dirtyModule(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"a/a.go": `package a

import (
	"context"
	"time"

	"tmpvet/z"
)

func cmp(x, y float64) bool { return x != y }

func wait(ctx context.Context) {
	time.Sleep(time.Millisecond)
	_ = z.Equal(1, 2)
}
`,
		"z/z.go": `package z

func Equal(a, b float64) bool { return a == b }
`,
	})
}

func TestExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer

	// Findings exit 1.
	if code := run([]string{"-dir", dirtyModule(t), "./..."}, &stdout, &stderr); code != 1 {
		t.Errorf("dirty module: exit %d, want 1\nstderr: %s", code, stderr.String())
	}

	// A module that does not type-check exits 2, not 1: CI must tell a
	// broken run from a failing one.
	broken := writeModule(t, map[string]string{
		"b/b.go": "package b\n\nfunc f() int { return undefinedName }\n",
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-dir", broken, "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("broken module: exit %d, want 2\nstderr: %s", code, stderr.String())
	}

	// A clean module exits 0.
	clean := writeModule(t, map[string]string{
		"c/c.go": "package c\n\nfunc Twice(n int) int { return 2 * n }\n",
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-dir", clean, "./..."}, &stdout, &stderr); code != 0 {
		t.Errorf("clean module: exit %d, want 0\nstderr: %s", code, stderr.String())
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dirtyModule(t), "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(lines), stdout.String())
	}
	wantOrder := []string{
		"a.go:10", // floatguard, earlier line, later-running analyzer
		"a.go:13", // ctxsleep, later line, earlier-running analyzer
		"z.go:3",  // z loads first (dependency) but sorts last
	}
	for i, frag := range wantOrder {
		if !strings.Contains(lines[i], frag) {
			t.Errorf("line %d = %q, want it to contain %q", i, lines[i], frag)
		}
	}
}

// TestJSONRoundTrip is the acceptance check for -json: the bytes on
// stdout, decoded with encoding/json and re-encoded, reproduce
// themselves exactly, and the findings arrive position-sorted with
// module-relative paths.
func TestJSONRoundTrip(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dirtyModule(t), "-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	var report analysis.Report
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("output is not one JSON report: %v\n%s", err, stdout.String())
	}
	var again bytes.Buffer
	if err := report.Write(&again); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), again.Bytes()) {
		t.Errorf("round trip changed the bytes:\n%s\n%s", stdout.Bytes(), again.Bytes())
	}
	if report.Version != analysis.ReportVersion {
		t.Errorf("version = %q, want %q", report.Version, analysis.ReportVersion)
	}
	wantFiles := []string{"a/a.go", "a/a.go", "z/z.go"}
	for i, f := range report.Findings {
		if i < len(wantFiles) && f.File != wantFiles[i] {
			t.Errorf("finding %d file = %q, want %q", i, f.File, wantFiles[i])
		}
	}
	if len(report.Findings) != 3 {
		t.Errorf("got %d findings, want 3", len(report.Findings))
	}
}

func TestSuppressionsAudit(t *testing.T) {
	// One live allow (it suppresses the Sleep), one dead allow on a line
	// with nothing to suppress, one naming a check that does not exist.
	dir := writeModule(t, map[string]string{
		"s/s.go": `package s

import (
	"context"
	"time"
)

func wait(ctx context.Context) {
	time.Sleep(time.Millisecond) //lint:allow ctxsleep fixed pacing demanded by the protocol
}

func calm() {
	_ = context.Background //lint:allow ctxsleep nothing here sleeps
	_ = time.Now //lint:allow nosuchcheck typo of a real name
}
`,
	})

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "-suppressions", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (stale allows present)\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "s.go:13") || !strings.Contains(out, "stale //lint:allow ctxsleep: suppresses nothing") {
		t.Errorf("audit missed the dead ctxsleep allow:\n%s", out)
	}
	if !strings.Contains(out, "s.go:14") || !strings.Contains(out, "stale //lint:allow nosuchcheck: names no active analyzer") {
		t.Errorf("audit missed the unknown-analyzer allow:\n%s", out)
	}
	if strings.Contains(out, "s.go:9") {
		t.Errorf("audit flagged the live allow:\n%s", out)
	}

	// Without -suppressions the suppressed finding stays silent: exit 0.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-dir", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Errorf("suppressed module: exit %d, want 0\nstdout: %s", code, stdout.String())
	}
}
