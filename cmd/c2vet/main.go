// Command c2vet is the repository's domain-aware static-analysis suite:
// a multichecker over the twelve analyzers under internal/analysis that
// encode C²-Bound's cross-cutting invariants — floating-point hygiene
// (floatguard), error-chain wrapping and no library panics (errwrap),
// the cancellation contract (ctxflow), request-scoped contexts in HTTP
// handlers (httpctx), context-less outbound HTTP calls in library code
// (outboundctx), no blind time.Sleep in cancellable or serving-layer
// code (ctxsleep), engine-routed evaluation (enginepath), paired
// batch/scalar evaluator methods (batchpar), documented parameter
// domains (paramdomain), determinism of evaluation and checkpoint paths
// (detguard), atomic-field and lock-copy hygiene (atomicguard) and
// goroutine termination (leakcheck). detguard and atomicguard are
// interprocedural: facts exported while analysing a package are consumed
// when its dependents are analysed, so packages are processed in
// dependency order.
//
// Usage:
//
//	c2vet [-disable name[,name]] [-list] [-json] [-suppressions] [-dir d] [packages]
//
// Packages default to ./..., findings print as file:line:col: [analyzer]
// message sorted by position, and the exit status is 1 when any finding
// survives the `//lint:allow <analyzer> <reason>` suppressions and 2 when
// the packages fail to load or type-check. -json emits the same findings
// as a machine-readable report (one JSON object, stable field and finding
// order) for CI artifacts. -suppressions audits the allow comments
// themselves, listing directives that suppress nothing so dead ones can
// be removed. `make lint` (and CI) run it alongside go vet.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicguard"
	"repro/internal/analysis/batchpar"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/ctxsleep"
	"repro/internal/analysis/detguard"
	"repro/internal/analysis/enginepath"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/floatguard"
	"repro/internal/analysis/httpctx"
	"repro/internal/analysis/leakcheck"
	"repro/internal/analysis/outboundctx"
	"repro/internal/analysis/paramdomain"
)

// suite is every analyzer c2vet runs, in output order.
var suite = []*analysis.Analyzer{
	ctxflow.Analyzer,
	enginepath.Analyzer,
	batchpar.Analyzer,
	httpctx.Analyzer,
	outboundctx.Analyzer,
	ctxsleep.Analyzer,
	errwrap.Analyzer,
	floatguard.Analyzer,
	paramdomain.Analyzer,
	detguard.Analyzer,
	atomicguard.Analyzer,
	leakcheck.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind an exit code: 0 clean, 1 findings (or
// stale suppressions in -suppressions mode), 2 load/type error or bad
// usage. Tests drive it directly.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("c2vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON report on stdout")
	suppressions := fs.Bool("suppressions", false, "audit //lint:allow comments instead of reporting findings")
	dir := fs.String("dir", ".", "module directory to load packages from")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	skip := map[string]bool{}
	for _, name := range strings.Split(*disable, ",") {
		if name != "" {
			skip[name] = true
		}
	}
	var active []*analysis.Analyzer
	for _, a := range suite {
		if !skip[a.Name] {
			active = append(active, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir := *dir
	if moduleDir == "." {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "c2vet:", err)
			return 2
		}
		moduleDir = wd
	}
	pkgs, err := analysis.Load(moduleDir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "c2vet:", err)
		return 2
	}
	diags, stale, err := analysis.Run(active, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "c2vet:", err)
		return 2
	}

	if *suppressions {
		analysis.PrintStale(stdout, pkgs, stale)
		if len(stale) > 0 {
			fmt.Fprintf(stderr, "c2vet: %d stale suppression(s)\n", len(stale))
			return 1
		}
		return 0
	}

	if *jsonOut {
		if len(pkgs) > 0 {
			report := analysis.NewReport(moduleDir, pkgs[0].Fset, diags)
			if err := report.Write(stdout); err != nil {
				fmt.Fprintln(stderr, "c2vet:", err)
				return 2
			}
		}
	} else {
		analysis.Print(stdout, pkgs, diags)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "c2vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
