// Command c2vet is the repository's domain-aware static-analysis suite:
// a multichecker over the eight analyzers under internal/analysis that
// encode C²-Bound's cross-cutting invariants — floating-point hygiene
// (floatguard), error-chain wrapping and no library panics (errwrap),
// the cancellation contract (ctxflow), request-scoped contexts in HTTP
// handlers (httpctx), no blind time.Sleep in cancellable or serving-layer
// code (ctxsleep), engine-routed evaluation (enginepath), paired
// batch/scalar evaluator methods (batchpar) and documented parameter
// domains (paramdomain).
//
// Usage:
//
//	c2vet [-disable name[,name]] [-list] [packages]
//
// Packages default to ./..., findings print as file:line:col: [analyzer]
// message, and the exit status is 1 when any finding survives the
// `//lint:allow <analyzer> <reason>` suppressions. `make lint` (and CI)
// run it alongside go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/batchpar"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/ctxsleep"
	"repro/internal/analysis/enginepath"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/floatguard"
	"repro/internal/analysis/httpctx"
	"repro/internal/analysis/paramdomain"
)

// suite is every analyzer c2vet runs, in output order.
var suite = []*analysis.Analyzer{
	ctxflow.Analyzer,
	enginepath.Analyzer,
	batchpar.Analyzer,
	httpctx.Analyzer,
	ctxsleep.Analyzer,
	errwrap.Analyzer,
	floatguard.Analyzer,
	paramdomain.Analyzer,
}

func main() {
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	skip := map[string]bool{}
	for _, name := range strings.Split(*disable, ",") {
		if name != "" {
			skip[name] = true
		}
	}
	var active []*analysis.Analyzer
	for _, a := range suite {
		if !skip[a.Name] {
			active = append(active, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(active, pkgs)
	if err != nil {
		fatal(err)
	}
	analysis.Print(os.Stdout, pkgs, diags)
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "c2vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// fatal prints the error and exits with a status distinct from "findings
// present", so CI can tell a broken run from a failing one.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "c2vet:", err)
	os.Exit(2)
}
