package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chip"
	"repro/internal/cluster"
	"repro/internal/dse"
	"repro/internal/server"
)

// clusterRun is one peer-count row of -cluster mode: the same tmm
// catalog sweep driven through a real multi-process cluster, cold then
// warm, with the communication term broken out the way Yavits, Morad &
// Ginosar bolt it onto Amdahl's law — useful work (evaluations) vs. the
// fan-out hop (peer exchanges and their wall time).
type clusterRun struct {
	Peers        int `json:"peers"`
	CachePerPeer int `json:"cache_per_peer"`
	// ColdSeconds/WarmSeconds are coordinator wall times for one full
	// sweep of the space.
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	// WarmHitRate is the warm sweep's aggregate cache-hit fraction. The
	// per-peer cache is sized below the space, so a single node cannot
	// hold the sweep and the rate climbs with aggregate capacity.
	WarmHitRate float64 `json:"warm_hit_rate"`
	// Shards are the cold-pass evaluation counts per peer (ring shard
	// sizes measured end-to-end), and ImbalancePct the largest relative
	// deviation from the even split.
	Shards       []int   `json:"shard_points"`
	ImbalancePct float64 `json:"shard_imbalance_pct"`
	// Routing counters from the coordinator's /metrics.
	LocalPoints    uint64 `json:"local_points"`
	RemotePoints   uint64 `json:"remote_points"`
	FallbackPoints uint64 `json:"fallback_points"`
	// RemoteHitRate is the remote-owned share of a warm batch pass that
	// the owners answered from cache.
	RemoteHitRate float64 `json:"remote_hit_rate"`
	// The comm term: peer exchanges issued by the coordinator, their
	// total wall seconds and the mean per-exchange latency.
	PeerExchanges uint64  `json:"peer_exchanges"`
	CommSeconds   float64 `json:"comm_seconds_total"`
	FanoutAvgMS   float64 `json:"fanout_avg_ms"`
}

// clusterReport is the JSON document written by -cluster.
type clusterReport struct {
	App          string       `json:"app"`
	Space        int          `json:"space_points"`
	VirtualNodes int          `json:"vnodes"`
	Runs         []clusterRun `json:"runs"`
}

// runClusterBench builds cmd/c2bound-server once, then for each peer
// count 1..maxPeers spawns that many real server processes sharing one
// peers.json, drives a full tmm catalog sweep through the first peer
// (cold, then warm, then a warm batch pass for the remote-hit story)
// and collects shard balance and fan-out latency from the per-peer
// /healthz and /metrics endpoints. The run fails if the shard imbalance
// exceeds 15%, if the warm hit rate does not rise with peer count, or
// if any point took the local-fallback path (nothing failed, so nothing
// may have degraded).
func runClusterBench(out string, per, maxPeers int) {
	if maxPeers < 1 {
		maxPeers = 1
	}
	rep, err := clusterBench(per, maxPeers)
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	writeJSON(out, rep)
	for _, r := range rep.Runs {
		fmt.Printf("cluster: %d peers, cold %.2fs, warm %.2fs, warm hits %.0f%%, imbalance %.1f%%, fanout %.1fms avg\n",
			r.Peers, r.ColdSeconds, r.WarmSeconds, 100*r.WarmHitRate, r.ImbalancePct, r.FanoutAvgMS)
	}
	fmt.Printf("cluster: %d points over 1..%d peers → %s\n", rep.Space, maxPeers, out)
}

func clusterBench(per, maxPeers int) (clusterReport, error) {
	space, err := dse.ReducedSpace(chip.DefaultConfig(), per)
	if err != nil {
		return clusterReport{}, fmt.Errorf("space: %w", err)
	}
	size := space.Size()
	// Size each peer's cache below the whole space but above one ring
	// shard: a lone peer thrashes its LRU on every pass, while any
	// multi-peer split fits shard-per-peer, so aggregate capacity (the
	// thing the cluster adds) is what moves the warm hit rate.
	cachePer := size * 4 / 5

	tmp, err := os.MkdirTemp("", "enginebench-cluster-")
	if err != nil {
		return clusterReport{}, err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "c2bound-server")
	if msg, err := exec.Command("go", "build", "-o", bin, "./cmd/c2bound-server").CombinedOutput(); err != nil {
		return clusterReport{}, fmt.Errorf("building c2bound-server: %w\n%s", err, msg)
	}

	rep := clusterReport{App: "tmm", Space: size, VirtualNodes: cluster.DefaultVirtualNodes}
	for n := 1; n <= maxPeers; n++ {
		run, err := clusterRunOnce(tmp, bin, space, per, n, cachePer)
		if err != nil {
			return clusterReport{}, fmt.Errorf("%d peers: %w", n, err)
		}
		rep.Runs = append(rep.Runs, run)
	}

	// The acceptance gates: balanced shards, no silent degradation, and
	// warm capacity that actually scales out.
	for _, r := range rep.Runs {
		if r.Peers > 1 && r.ImbalancePct > 15 {
			return clusterReport{}, fmt.Errorf("%d peers: shard imbalance %.1f%% exceeds 15%% — the ring's vnode count is too low", r.Peers, r.ImbalancePct)
		}
		if r.FallbackPoints != 0 {
			return clusterReport{}, fmt.Errorf("%d peers: %d points took the local-compute fallback with no failure injected", r.Peers, r.FallbackPoints)
		}
	}
	for i := 1; i < len(rep.Runs); i++ {
		if rep.Runs[i].WarmHitRate < rep.Runs[i-1].WarmHitRate {
			return clusterReport{}, fmt.Errorf("warm hit rate fell from %.2f (%d peers) to %.2f (%d peers) — aggregate cache capacity is not scaling out",
				rep.Runs[i-1].WarmHitRate, rep.Runs[i-1].Peers, rep.Runs[i].WarmHitRate, rep.Runs[i].Peers)
		}
	}
	if last := rep.Runs[len(rep.Runs)-1]; len(rep.Runs) > 1 && last.WarmHitRate <= rep.Runs[0].WarmHitRate {
		return clusterReport{}, fmt.Errorf("warm hit rate did not increase with peer count (%.2f at 1 peer, %.2f at %d)",
			rep.Runs[0].WarmHitRate, last.WarmHitRate, last.Peers)
	}
	return rep, nil
}

// peerProc is one spawned server process.
type peerProc struct {
	name string
	base string
	cmd  *exec.Cmd
}

// clusterRunOnce spawns an n-peer cluster, measures one cold and one
// warm sweep plus a warm batch pass, and tears the processes down.
func clusterRunOnce(tmp, bin string, space dse.Space, per, n, cachePer int) (run clusterRun, err error) {
	procs, err := spawnCluster(tmp, bin, n, cachePer)
	defer stopCluster(procs)
	if err != nil {
		return run, err
	}
	client := &http.Client{}
	coordinator := procs[0].base

	run = clusterRun{Peers: n, CachePerPeer: cachePer}

	before := make([]uint64, n)
	for i, p := range procs {
		if before[i], err = peerEvaluations(client, p.base); err != nil {
			return run, err
		}
	}

	coldStart := time.Now()
	coldRep, err := driveSweep(client, coordinator, per)
	if err != nil {
		return run, fmt.Errorf("cold sweep: %w", err)
	}
	run.ColdSeconds = time.Since(coldStart).Seconds()
	if len(coldRep.Pending) != 0 || len(coldRep.Failed) != 0 {
		return run, fmt.Errorf("cold sweep incomplete: %d pending, %d failed", len(coldRep.Pending), len(coldRep.Failed))
	}

	// Shard sizes: where the cold pass's evaluations actually landed.
	total := 0
	for i, p := range procs {
		after, err := peerEvaluations(client, p.base)
		if err != nil {
			return run, err
		}
		shard := int(after - before[i])
		run.Shards = append(run.Shards, shard)
		total += shard
	}
	if total < coldRep.Total {
		return run, fmt.Errorf("cold pass evaluated %d of %d points", total, coldRep.Total)
	}
	mean := float64(total) / float64(n)
	for _, s := range run.Shards {
		if dev := 100 * math.Abs(float64(s)-mean) / mean; dev > run.ImbalancePct {
			run.ImbalancePct = dev
		}
	}

	warmStart := time.Now()
	warmRep, err := driveSweep(client, coordinator, per)
	if err != nil {
		return run, fmt.Errorf("warm sweep: %w", err)
	}
	run.WarmSeconds = time.Since(warmStart).Seconds()
	run.WarmHitRate = float64(warmRep.CacheHits) / float64(warmRep.Total)

	// A warm batch pass exercises the point-routing path (peer-eval
	// exchanges) over space points the owners now hold, isolating the
	// remote-hit story from the sweep partitioner.
	batchN := space.Size()
	if batchN > 1024 {
		batchN = 1024
	}
	points := make([][]float64, batchN)
	for i := range points {
		points[i] = space.Point(i)
	}
	mBefore, err := clusterMetrics(client, coordinator)
	if err != nil {
		return run, err
	}
	if err := postClusterBatch(client, coordinator, points); err != nil {
		return run, fmt.Errorf("warm batch: %w", err)
	}
	m, err := clusterMetrics(client, coordinator)
	if err != nil {
		return run, err
	}

	run.LocalPoints = m["cluster_local_points_total"]
	run.RemotePoints = m["cluster_remote_points_total"]
	run.FallbackPoints = m["cluster_fallback_points_total"]
	run.PeerExchanges = m["cluster_peer_requests_total"]
	run.CommSeconds = math.Float64frombits(m["cluster_peer_seconds_sum_bits"])
	if c := m["cluster_peer_seconds_count"]; c > 0 {
		run.FanoutAvgMS = 1000 * run.CommSeconds / float64(c)
	}
	if remote := m["cluster_remote_points_total"] - mBefore["cluster_remote_points_total"]; remote > 0 {
		hits := m["cluster_remote_hits_total"] - mBefore["cluster_remote_hits_total"]
		run.RemoteHitRate = float64(hits) / float64(remote)
	}
	return run, nil
}

// spawnCluster reserves n loopback ports, writes the shared peers.json
// and starts one server process per peer, waiting until every /readyz
// answers 200.
func spawnCluster(tmp, bin string, n, cachePer int) ([]peerProc, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	cfg := cluster.Config{}
	for i, addr := range addrs {
		cfg.Peers = append(cfg.Peers, cluster.PeerConfig{
			Name: fmt.Sprintf("bench-%d", i),
			URL:  "http://" + addr,
		})
	}
	peersPath := filepath.Join(tmp, fmt.Sprintf("peers-%d.json", n))
	data, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(peersPath, data, 0o644); err != nil {
		return nil, err
	}

	procs := make([]peerProc, 0, n)
	for i, addr := range addrs {
		cmd := exec.Command(bin,
			"-addr", addr,
			"-peers", peersPath,
			"-peer-self", cfg.Peers[i].Name,
			"-cache", strconv.Itoa(cachePer),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return procs, fmt.Errorf("starting peer %d: %w", i, err)
		}
		procs = append(procs, peerProc{name: cfg.Peers[i].Name, base: "http://" + addr, cmd: cmd})
	}
	client := &http.Client{Timeout: time.Second}
	for _, p := range procs {
		if err := waitReady(client, p.base, 15*time.Second); err != nil {
			return procs, fmt.Errorf("peer %s: %w", p.name, err)
		}
	}
	return procs, nil
}

// stopCluster terminates the peer processes gracefully, escalating to
// SIGKILL if a drain hangs.
func stopCluster(procs []peerProc) {
	for _, p := range procs {
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
	}
	for _, p := range procs {
		done := make(chan struct{})
		go func(c *exec.Cmd) {
			_ = c.Wait()
			close(done)
		}(p.cmd)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = p.cmd.Process.Kill()
			<-done
		}
	}
}

// waitReady polls /readyz until it answers 200.
func waitReady(client *http.Client, base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("not ready after %v: %w", patience, err)
			}
			return fmt.Errorf("not ready after %v", patience)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// driveSweep runs one full tmm catalog sweep through a peer and returns
// the final report.
func driveSweep(client *http.Client, base string, per int) (dse.SweepReport, error) {
	body, err := json.Marshal(server.SweepRequest{
		Model: server.ModelSpec{App: "tmm"},
		Space: server.SpaceSpec{Per: per},
	})
	if err != nil {
		return dse.SweepReport{}, err
	}
	resp, err := client.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return dse.SweepReport{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return dse.SweepReport{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var result server.SweepResult
	sawResult := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		if !bytes.Contains(sc.Bytes(), []byte(`"result"`)) {
			continue
		}
		var frame server.SweepResult
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			return dse.SweepReport{}, err
		}
		if frame.Type == "result" {
			result, sawResult = frame, true
		}
	}
	if err := sc.Err(); err != nil {
		return dse.SweepReport{}, err
	}
	if !sawResult {
		return dse.SweepReport{}, fmt.Errorf("no result frame")
	}
	if result.Error != nil {
		return dse.SweepReport{}, fmt.Errorf("sweep error: %s", result.Error.Message)
	}
	return result.Report, nil
}

// postClusterBatch routes one warm batch through the coordinator.
func postClusterBatch(client *http.Client, base string, points [][]float64) error {
	body, err := json.Marshal(server.BatchRequest{
		Model:  server.ModelSpec{App: "tmm"},
		Points: points,
	})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/evaluate:batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var summary server.BatchSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"done"`)) {
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if summary.Errors != 0 {
		return fmt.Errorf("%d points failed", summary.Errors)
	}
	return nil
}

// peerEvaluations reads one peer's cumulative evaluation count from
// /readyz (the engine snapshot is part of the tool contract).
func peerEvaluations(client *http.Client, base string) (uint64, error) {
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var health struct {
		Engine struct {
			Stats struct {
				Evaluations uint64 `json:"evaluations"`
			} `json:"stats"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return 0, err
	}
	return health.Engine.Stats.Evaluations, nil
}

// clusterMetrics scrapes the cluster_* series from a peer's /metrics
// text exposition. Counter values are returned directly; the float
// cluster_peer_seconds_sum is stashed under a "_bits" key so one map
// carries both.
func clusterMetrics(client *http.Client, base string) (map[string]uint64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]uint64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "cluster_") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue
		}
		if name == "cluster_peer_seconds_sum" {
			f, err := strconv.ParseFloat(value, 64)
			if err == nil {
				out["cluster_peer_seconds_sum_bits"] = math.Float64bits(f)
			}
			continue
		}
		n, err := strconv.ParseUint(value, 10, 64)
		if err == nil {
			out[name] = n
		}
	}
	return out, sc.Err()
}
