package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/chip"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/server"
)

// serverReport is the JSON document of -server mode: the same cold/warm
// cache story as the in-process benchmark, but measured through the full
// HTTP path — JSON decoding, admission control, NDJSON streaming — with
// many concurrent clients sharing one engine.
type serverReport struct {
	Space        int          `json:"space_points"`
	Clients      int          `json:"clients"`
	Rounds       int          `json:"rounds"`
	Workers      int          `json:"workers"`
	ColdEvalsSec float64      `json:"cold_evals_per_sec"`
	WarmEvalsSec float64      `json:"warm_evals_per_sec"`
	Speedup      float64      `json:"warm_over_cold"`
	Cold         engine.Stats `json:"cold_stats"`
	Warm         engine.Stats `json:"warm_stats"`
	Server       server.Stats `json:"server_stats"`
}

// runServerBench loads the HTTP serving path: a local c2bound server on a
// loopback listener, `clients` concurrent clients splitting the reduced
// space into batch requests. The cold pass computes every point; warm
// passes re-request the same points and must be served from the shared
// engine cache across all clients.
func runServerBench(out string, per, rounds, workers, clients int) {
	if clients < 1 {
		clients = 1
	}
	srv := server.New(server.Options{
		Workers:       workers,
		MaxConcurrent: clients,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv}
	go func() {
		_ = httpSrv.Serve(ln)
	}()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	space, err := dse.ReducedSpace(chip.DefaultConfig(), per)
	if err != nil {
		log.Fatalf("space: %v", err)
	}
	points := make([][]float64, space.Size())
	for i := range points {
		points[i] = space.Point(i)
	}
	chunks := splitChunks(points, clients)

	pass := func() time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, len(chunks))
		for _, chunk := range chunks {
			wg.Add(1)
			go func(chunk [][]float64) {
				defer wg.Done()
				client := &http.Client{} // fresh transport: a distinct client
				if err := postBatch(client, base, chunk); err != nil {
					errs <- err
				}
			}(chunk)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			log.Fatalf("batch: %v", err)
		}
		return time.Since(start)
	}

	coldDur := pass()
	coldStats := srv.Engine().Stats()

	var warmDur time.Duration
	for i := 0; i < rounds; i++ {
		warmDur += pass()
	}
	warmStats := srv.Engine().Stats().Delta(coldStats)
	if warmStats.CacheHits < uint64(space.Size()*rounds) {
		log.Fatalf("warm passes hit the cache %d times, want ≥ %d — the shared-cache story is broken",
			warmStats.CacheHits, space.Size()*rounds)
	}

	rep := serverReport{
		Space:        space.Size(),
		Clients:      clients,
		Rounds:       rounds,
		Workers:      srv.Engine().Workers(),
		ColdEvalsSec: float64(space.Size()) / coldDur.Seconds(),
		WarmEvalsSec: float64(space.Size()*rounds) / warmDur.Seconds(),
		Cold:         coldStats,
		Warm:         warmStats,
		Server:       srv.Stats(),
	}
	if rep.ColdEvalsSec > 0 {
		rep.Speedup = rep.WarmEvalsSec / rep.ColdEvalsSec
	}
	writeJSON(out, rep)
	fmt.Printf("server: %d clients, cold %.0f evals/s, warm %.0f evals/s (%.1fx) → %s\n",
		clients, rep.ColdEvalsSec, rep.WarmEvalsSec, rep.Speedup, out)
}

// splitChunks partitions points into at most n contiguous chunks.
func splitChunks(points [][]float64, n int) [][][]float64 {
	if n > len(points) {
		n = len(points)
	}
	chunks := make([][][]float64, 0, n)
	base, rem := len(points)/n, len(points)%n
	start := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		chunks = append(chunks, points[start:start+size])
		start += size
	}
	return chunks
}

// postBatch sends one evaluate:batch request and consumes the NDJSON
// stream, verifying every point came back.
func postBatch(client *http.Client, base string, points [][]float64) error {
	body, err := json.Marshal(server.BatchRequest{
		Model:  server.ModelSpec{App: "fluidanimate"},
		Points: points,
	})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/evaluate:batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	results := 0
	var summary server.BatchSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"done"`)) {
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				return fmt.Errorf("summary: %w", err)
			}
			continue
		}
		results++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if results != len(points) {
		return fmt.Errorf("got %d results for %d points", results, len(points))
	}
	if summary.Errors != 0 {
		return fmt.Errorf("%d points failed", summary.Errors)
	}
	return nil
}
