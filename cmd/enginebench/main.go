// Command enginebench measures the evaluation engine's throughput with a
// cold and a warm memo cache and writes the result as JSON (for CI trend
// tracking). The workload is the deterministic analytic ModelEvaluator
// over a reduced design space: the cold pass computes every point, the
// warm pass re-requests the same points and should be served almost
// entirely from cache.
//
// Usage:
//
//	enginebench [-out file] [-per k] [-rounds n] [-workers n]
//	            [-batch] [-families] [-obs file] [-server] [-tenants]
//	            [-cluster] [-cluster-peers n] [-clients n] [-duration d]
//	            [-trace out.json] [-metrics] [-cpuprofile out.pprof]
//
// With -batch the command runs the benchmark twice — once with the
// engine's batched dispatch disabled (scalar per-point path) and once
// with it enabled — verifies the two sweeps produce bit-identical
// values, and writes both reports plus the batch-over-scalar speedups
// and allocations per point (typically to BENCH_engine.json via
// `make bench-engine`). The run fails if any value differs by a single
// bit.
//
// With -families the command benchmarks every registered model family
// through the family-generic path: for each family it measures the cold
// scalar per-point rate (memoization disabled, batched dispatch
// disabled), the cold batched rate through the family's compiled kernel,
// and the warm cache-hit rate, verifying the scalar and batched sweeps
// are bit-identical before writing the per-family table (typically to
// BENCH_families.json via `make bench-families`). Small family spaces
// are re-swept until each measurement covers a comparable number of
// evaluations, so the rates are commensurable across families.
//
// With -server the command instead load-tests the HTTP serving path: it
// starts an in-process c2bound server on a loopback listener and drives
// it with -clients concurrent HTTP clients batching the space through
// POST /v1/evaluate:batch, cold then warm, writing the report (typically
// to BENCH_server.json via `make bench-server`).
//
// With -tenants the command runs the adversarial multi-tenant scenario:
// a flooder tenant saturates the admission gate with -clients concurrent
// clients for -duration while a trickler tenant sends one request per
// second, and the report records whether the trickler's tail latency and
// shed count survived the flood (typically to BENCH_tenants.json via
// `make bench-tenants`). The run fails if the trickler is ever shed.
//
// With -cluster the command measures the distributed tier end-to-end:
// it builds cmd/c2bound-server, spawns 1..-cluster-peers real server
// processes sharing one peers.json membership table, drives the full
// tmm catalog sweep through the first peer (cold, warm, then a warm
// batch pass) and records ring shard balance, the aggregate warm
// hit-rate as capacity scales out, and the fan-out hop's latency — the
// communication term — into the report (typically BENCH_cluster.json
// via `make bench-cluster`). The run fails on shard imbalance over 15%,
// on any un-triggered local fallback, or if the warm hit rate does not
// rise with peer count.
//
// With -obs the command instead runs the benchmark twice — once with
// observability disabled (nil tracer and registry) and once with a live
// tracer and metrics registry attached — and writes both reports plus
// the relative overhead to the given JSON file. This is the
// "observability is near-free when off" acceptance measurement.
//
// Observability of the benchmark itself: -trace writes a Chrome
// trace_event JSON of the run, -metrics prints the registry snapshot on
// exit, and -cpuprofile records a pprof CPU profile.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/obs"
)

// report is the JSON document written to -out.
type report struct {
	Space        int     `json:"space_points"`
	Rounds       int     `json:"rounds"`
	Workers      int     `json:"workers"`
	ColdEvalsSec float64 `json:"cold_evals_per_sec"`
	WarmEvalsSec float64 `json:"warm_evals_per_sec"`
	Speedup      float64 `json:"warm_over_cold"`
	// ColdAllocsPerPoint / WarmAllocsPerPoint are heap allocations per
	// design point (only measured in -batch mode).
	ColdAllocsPerPoint float64      `json:"cold_allocs_per_point,omitempty"`
	WarmAllocsPerPoint float64      `json:"warm_allocs_per_point,omitempty"`
	Cold               engine.Stats `json:"cold_stats"`
	Warm               engine.Stats `json:"warm_stats"`
}

// batchReport is the JSON document written by -batch: the same sweep on
// the scalar and the batched engine path, the batch-over-scalar
// speedups, and the bit-identity verdict.
type batchReport struct {
	Scalar       report  `json:"scalar"`
	Batched      report  `json:"batched"`
	ColdSpeedup  float64 `json:"batched_over_scalar_cold"`
	WarmSpeedup  float64 `json:"batched_over_scalar_warm"`
	BitIdentical bool    `json:"bit_identical"`
}

// familyReport is one model family's row in -families mode.
type familyReport struct {
	Family string `json:"family"`
	// Space is the benchmarked design count: the family's own grids, or
	// the densified bench grid when those hold too few points to time.
	Space         int     `json:"space_points"`
	ScalarColdSec float64 `json:"scalar_cold_evals_per_sec"`
	BatchColdSec  float64 `json:"batched_cold_evals_per_sec"`
	ColdSpeedup   float64 `json:"batched_over_scalar_cold"`
	WarmEvalsSec  float64 `json:"warm_evals_per_sec"`
	BitIdentical  bool    `json:"bit_identical"`
}

// familiesReport is the JSON document written by -families.
type familiesReport struct {
	App      string         `json:"app"`
	Rounds   int            `json:"rounds"`
	Workers  int            `json:"workers"`
	Families []familyReport `json:"families"`
}

// obsReport is the JSON document written by -obs: the same benchmark run
// with observability off and on, and the relative cost of turning it on.
type obsReport struct {
	Disabled        report  `json:"disabled"`
	Enabled         report  `json:"enabled"`
	ColdOverheadPct float64 `json:"cold_overhead_pct"`
	WarmOverheadPct float64 `json:"warm_overhead_pct"`
	Spans           uint64  `json:"spans_recorded"`
	SpansDropped    uint64  `json:"spans_dropped"`
}

func main() {
	out := flag.String("out", "BENCH_engine.json", "output JSON path")
	per := flag.Int("per", 4, "design-space values per dimension")
	rounds := flag.Int("rounds", 3, "warm passes over the space")
	workers := flag.Int("workers", 0, "engine parallelism (0 = GOMAXPROCS)")
	batchMode := flag.Bool("batch", false, "run the scalar-vs-batched dispatch comparison (verifies bit-identical values)")
	familiesMode := flag.Bool("families", false, "benchmark every registered model family (cold scalar vs cold batched vs warm, bit-identity verified)")
	obsOut := flag.String("obs", "", "run disabled-vs-enabled observability comparison and write it to this JSON file")
	serverMode := flag.Bool("server", false, "benchmark the HTTP serving path (c2bound-server) instead of the in-process engine")
	tenantsMode := flag.Bool("tenants", false, "run the adversarial flooder-vs-trickler fair-share scenario")
	clusterMode := flag.Bool("cluster", false, "benchmark the multi-process cluster tier (spawns real c2bound-server processes)")
	peerCount := flag.Int("cluster-peers", 3, "largest peer count in -cluster mode (measures 1..n)")
	clients := flag.Int("clients", 8, "concurrent HTTP clients in -server and -tenants modes")
	duration := flag.Duration("duration", 10*time.Second, "flood length in -tenants mode")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
	metricsOut := flag.Bool("metrics", false, "print the metrics registry snapshot on exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		stopProf, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			if err := stopProf(); err != nil {
				log.Printf("cpuprofile: %v", err)
			}
		}()
	}

	if *batchMode {
		runBatchCompare(*out, *per, *rounds, *workers)
		return
	}
	if *familiesMode {
		runFamiliesBench(*out, *per, *rounds, *workers)
		return
	}
	if *obsOut != "" {
		runCompare(*obsOut, *per, *rounds, *workers)
		return
	}
	if *serverMode {
		runServerBench(*out, *per, *rounds, *workers, *clients)
		return
	}
	if *tenantsMode {
		runTenantBench(*out, *workers, *clients, *duration)
		return
	}
	if *clusterMode {
		runClusterBench(*out, *per, *peerCount)
		return
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
		defer func() {
			if err := tracer.WriteChromeTraceFile(*traceOut); err != nil {
				log.Printf("trace: %v", err)
				return
			}
			fmt.Printf("trace: %d spans written to %s (%d dropped)\n",
				tracer.Len(), *traceOut, tracer.Dropped())
		}()
	}
	var metrics *obs.Registry
	if *metricsOut {
		metrics = obs.NewRegistry()
		defer func() {
			fmt.Println("\nmetrics:")
			if err := metrics.WriteText(os.Stdout); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
	}

	rep := runBench(*per, *rounds, *workers, tracer, metrics)
	writeJSON(*out, rep)
	fmt.Printf("cold: %.0f evals/s, warm: %.0f evals/s (%.1fx), %s → %s\n",
		rep.ColdEvalsSec, rep.WarmEvalsSec, rep.Speedup, rep.Warm, *out)
}

// runBench runs one cold pass and -rounds warm passes on a fresh engine
// carrying the given (possibly nil) tracer and registry.
func runBench(per, rounds, workers int, tracer *obs.Tracer, metrics *obs.Registry) report {
	rep, _ := runBenchPath(per, rounds, workers, false, false, tracer, metrics)
	return rep
}

// runBenchPath is runBench with the dispatch path pinned (scalar when
// disableBatch) and optional allocation metering; it also returns the
// cold sweep's values so -batch can compare the two paths bit for bit.
func runBenchPath(per, rounds, workers int, disableBatch, meterAllocs bool, tracer *obs.Tracer, metrics *obs.Registry) (report, []float64) {
	m := core.Model{Chip: chip.DefaultConfig(), App: core.FluidanimateApp()}
	space, err := dse.ReducedSpace(m.Chip, per)
	if err != nil {
		log.Fatalf("space: %v", err)
	}
	eval := &dse.ModelEvaluator{Model: m}
	eng := engine.New(engine.Options{Workers: workers, Tracer: tracer, Metrics: metrics, DisableBatch: disableBatch})
	ctx := context.Background()
	ctx = obs.ContextWithTracer(ctx, tracer)
	ctx = obs.ContextWithMetrics(ctx, metrics)

	sweep := func() []float64 {
		values, _, err := dse.SweepCtx(ctx, eval, space, nil, dse.SweepOptions{Engine: eng})
		if err != nil {
			log.Fatalf("sweep: %v", err)
		}
		return values
	}
	mallocs := func() uint64 {
		if !meterAllocs {
			return 0
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.Mallocs
	}

	// Cold pass: every point computed.
	allocs0 := mallocs()
	start := time.Now()
	values := sweep()
	coldDur := time.Since(start)
	coldAllocs := mallocs() - allocs0
	coldStats := eng.Stats()

	// Warm passes: the same points, served from cache.
	allocs0 = mallocs()
	start = time.Now()
	for i := 0; i < rounds; i++ {
		sweep()
	}
	warmDur := time.Since(start)
	warmAllocs := mallocs() - allocs0
	warmStats := eng.Stats().Delta(coldStats)

	rep := report{
		Space:        space.Size(),
		Rounds:       rounds,
		Workers:      eng.Workers(),
		ColdEvalsSec: float64(space.Size()) / coldDur.Seconds(),
		WarmEvalsSec: float64(space.Size()*rounds) / warmDur.Seconds(),
		Cold:         coldStats,
		Warm:         warmStats,
	}
	if rep.ColdEvalsSec > 0 {
		rep.Speedup = rep.WarmEvalsSec / rep.ColdEvalsSec
	}
	if meterAllocs && space.Size() > 0 {
		rep.ColdAllocsPerPoint = float64(coldAllocs) / float64(space.Size())
		rep.WarmAllocsPerPoint = float64(warmAllocs) / float64(space.Size()*rounds)
	}
	return rep, values
}

// runBatchCompare measures the batched dispatch against the scalar
// per-point path on identical sweeps and verifies the values agree bit
// for bit before writing the comparison (the BENCH_engine.json gate).
func runBatchCompare(out string, per, rounds, workers int) {
	fmt.Println("pass 1/2: batched dispatch disabled (scalar per-point path)...")
	scalar, scalarVals := runBenchPath(per, rounds, workers, true, true, nil, nil)

	fmt.Println("pass 2/2: batched dispatch enabled...")
	batched, batchedVals := runBenchPath(per, rounds, workers, false, true, nil, nil)

	cmp := batchReport{Scalar: scalar, Batched: batched, BitIdentical: true}
	if len(scalarVals) != len(batchedVals) {
		log.Fatalf("value lengths diverge: scalar %d, batched %d", len(scalarVals), len(batchedVals))
	}
	for i := range scalarVals {
		if math.Float64bits(scalarVals[i]) != math.Float64bits(batchedVals[i]) {
			log.Fatalf("bit mismatch at point %d: scalar %v (%016x), batched %v (%016x)",
				i, scalarVals[i], math.Float64bits(scalarVals[i]),
				batchedVals[i], math.Float64bits(batchedVals[i]))
		}
	}
	if scalar.ColdEvalsSec > 0 {
		cmp.ColdSpeedup = batched.ColdEvalsSec / scalar.ColdEvalsSec
	}
	if scalar.WarmEvalsSec > 0 {
		cmp.WarmSpeedup = batched.WarmEvalsSec / scalar.WarmEvalsSec
	}
	writeJSON(out, cmp)
	fmt.Printf("scalar : cold %.0f, warm %.0f evals/s (%.2f / %.2f allocs per point)\n",
		scalar.ColdEvalsSec, scalar.WarmEvalsSec, scalar.ColdAllocsPerPoint, scalar.WarmAllocsPerPoint)
	fmt.Printf("batched: cold %.0f, warm %.0f evals/s (%.2f / %.2f allocs per point)\n",
		batched.ColdEvalsSec, batched.WarmEvalsSec, batched.ColdAllocsPerPoint, batched.WarmAllocsPerPoint)
	fmt.Printf("speedup: cold %.1fx, warm %.1fx, bit-identical → %s\n", cmp.ColdSpeedup, cmp.WarmSpeedup, out)
}

// familyBenchSpace returns the sweep space for one family's benchmark:
// the family's own subsampled grids when they already carry at least
// `floor` designs, otherwise a denser in-domain grid (linearly spaced
// over each dimension's [Lo, Hi]) so every family's cold measurement
// averages over a comparable number of evaluations instead of drowning
// a four-point space in per-sweep overhead.
func familyBenchSpace(m model.Model, per, floor int) (dse.Space, error) {
	space, err := dse.SpaceFor(m, per)
	if err != nil {
		return dse.Space{}, err
	}
	if space.Size() >= floor {
		return space, nil
	}
	ms := m.Space()
	dims := ms.Dims()
	// k = ceil(floor^(1/dims)): the per-dimension resolution that reaches
	// the floor.
	k := 1
	for {
		total := 1
		for i := 0; i < dims; i++ {
			total *= k
		}
		if total >= floor {
			break
		}
		k++
	}
	params := make([]dse.Param, dims)
	for i, p := range ms.Params {
		n := len(p.Grid)
		if n < k {
			n = k
		}
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = p.Lo + (p.Hi-p.Lo)*float64(j)/float64(n-1)
		}
		params[i] = dse.Param{Name: p.Name, Values: vals}
	}
	return dse.NewSpace(params...)
}

// runFamiliesBench measures each registered model family on the three
// engine paths and verifies the scalar and batched values agree bit for
// bit. "Scalar cold" is the point-at-a-time client path — resolve the
// model, build a fresh evaluator, dispatch one point — which is the
// exact cost profile of a POST /v1/evaluate request (the server resolves
// per request). "Batched cold" resolves the model once and streams the
// whole plane through the compiled kernel on a fresh engine. "Warm"
// re-streams the plane against the populated memo cache. Cold passes
// take the best of a few fresh-engine runs so the rates are not noise
// from one scheduler hiccup.
func runFamiliesBench(out string, per, rounds, workers int) {
	cfg := model.Config{Chip: chip.DefaultConfig(), App: core.FluidanimateApp()}
	ctx := context.Background()
	rep := familiesReport{App: "fluidanimate", Rounds: rounds}

	// The minimum designs per cold measurement: the c2bound space at the
	// same subsampling.
	floor := 1
	for i := 0; i < 6; i++ {
		floor *= per
	}
	// scalarCap bounds the slow per-request pass; the rate is per point,
	// so a subsample of the same plane measures the same thing.
	const scalarCap = 4096

	for _, name := range model.Names() {
		m, err := model.New(name, cfg)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		space, err := familyBenchSpace(m, per, floor)
		if err != nil {
			log.Fatalf("%s space: %v", name, err)
		}
		size := space.Size()
		points := make([][]float64, size)
		for i := range points {
			points[i] = space.Point(i)
		}

		// Scalar cold: the per-request path over a bounded subsample.
		sub := points
		if len(sub) > scalarCap {
			sub = sub[:scalarCap]
		}
		scalarVals := make([]float64, len(sub))
		scalarRate := 0.0
		for r := 0; r < 2; r++ {
			eng := engine.New(engine.Options{Workers: workers, DisableBatch: true})
			start := time.Now()
			for i, p := range sub {
				rm, err := model.New(name, cfg)
				if err != nil {
					log.Fatalf("%s: %v", name, err)
				}
				v, err := eng.Evaluate(ctx, dse.NewFamilyEvaluator(rm), p)
				if err != nil {
					log.Fatalf("%s scalar point %d: %v", name, i, err)
				}
				scalarVals[i] = v
			}
			if rate := float64(len(sub)) / time.Since(start).Seconds(); rate > scalarRate {
				scalarRate = rate
			}
		}

		// Batched cold: the whole plane, one resolved model, fresh engine.
		ev := dse.NewFamilyEvaluator(m)
		batchVals := make([]float64, size)
		batchRate := 0.0
		var eng *engine.Engine
		for r := 0; r < 3; r++ {
			e := engine.New(engine.Options{Workers: workers})
			start := time.Now()
			if err := e.EvaluateBatch(ctx, ev, points, batchVals); err != nil {
				log.Fatalf("%s batch: %v", name, err)
			}
			if rate := float64(size) / time.Since(start).Seconds(); rate > batchRate {
				batchRate = rate
			}
			eng = e
		}
		for i := range sub {
			if math.Float64bits(scalarVals[i]) != math.Float64bits(batchVals[i]) {
				log.Fatalf("%s: bit mismatch at point %d: scalar %v (%016x), batched %v (%016x)",
					name, i, scalarVals[i], math.Float64bits(scalarVals[i]),
					batchVals[i], math.Float64bits(batchVals[i]))
			}
		}

		// Warm passes: the last batched engine already holds every point.
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := eng.EvaluateBatch(ctx, ev, points, batchVals); err != nil {
				log.Fatalf("%s warm: %v", name, err)
			}
		}
		warmRate := float64(size*rounds) / time.Since(start).Seconds()

		fr := familyReport{
			Family:        name,
			Space:         size,
			ScalarColdSec: scalarRate,
			BatchColdSec:  batchRate,
			WarmEvalsSec:  warmRate,
			BitIdentical:  true,
		}
		if scalarRate > 0 {
			fr.ColdSpeedup = batchRate / scalarRate
		}
		rep.Workers = eng.Workers()
		rep.Families = append(rep.Families, fr)
		fmt.Printf("%-10s %6d pts  scalar %9.0f/s  batched %10.0f/s (%5.1fx)  warm %11.0f/s\n",
			name, size, scalarRate, batchRate, fr.ColdSpeedup, warmRate)
	}
	writeJSON(out, rep)
	fmt.Printf("%d families, bit-identical scalar/batched values → %s\n", len(rep.Families), out)
}

// runCompare measures the cost of observability: the same benchmark with
// tracer and registry nil, then live, reported side by side.
func runCompare(out string, per, rounds, workers int) {
	fmt.Println("pass 1/2: observability disabled (nil tracer, nil registry)...")
	disabled := runBench(per, rounds, workers, nil, nil)

	fmt.Println("pass 2/2: observability enabled (live tracer + registry)...")
	tracer := obs.NewTracer(0)
	metrics := obs.NewRegistry()
	enabled := runBench(per, rounds, workers, tracer, metrics)

	cmp := obsReport{
		Disabled:     disabled,
		Enabled:      enabled,
		Spans:        tracer.Recorded(),
		SpansDropped: tracer.Dropped(),
	}
	if enabled.ColdEvalsSec > 0 {
		cmp.ColdOverheadPct = 100 * (disabled.ColdEvalsSec/enabled.ColdEvalsSec - 1)
	}
	if enabled.WarmEvalsSec > 0 {
		cmp.WarmOverheadPct = 100 * (disabled.WarmEvalsSec/enabled.WarmEvalsSec - 1)
	}
	writeJSON(out, cmp)
	fmt.Printf("disabled: cold %.0f, warm %.0f evals/s\n", disabled.ColdEvalsSec, disabled.WarmEvalsSec)
	fmt.Printf("enabled : cold %.0f, warm %.0f evals/s (%d spans, %d dropped)\n",
		enabled.ColdEvalsSec, enabled.WarmEvalsSec, cmp.Spans, cmp.SpansDropped)
	fmt.Printf("overhead: cold %+.1f%%, warm %+.1f%% → %s\n", cmp.ColdOverheadPct, cmp.WarmOverheadPct, out)
}

// writeJSON marshals v with indentation and writes it to path.
func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
}
