// Command enginebench measures the evaluation engine's throughput with a
// cold and a warm memo cache and writes the result as JSON (for CI trend
// tracking). The workload is the deterministic analytic ModelEvaluator
// over a reduced design space: the cold pass computes every point, the
// warm pass re-requests the same points and should be served almost
// entirely from cache.
//
// Usage:
//
//	enginebench [-out file] [-per k] [-rounds n] [-workers n]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
)

// report is the JSON document written to -out.
type report struct {
	Space        int          `json:"space_points"`
	Rounds       int          `json:"rounds"`
	Workers      int          `json:"workers"`
	ColdEvalsSec float64      `json:"cold_evals_per_sec"`
	WarmEvalsSec float64      `json:"warm_evals_per_sec"`
	Speedup      float64      `json:"warm_over_cold"`
	Cold         engine.Stats `json:"cold_stats"`
	Warm         engine.Stats `json:"warm_stats"`
}

func main() {
	out := flag.String("out", "BENCH_engine.json", "output JSON path")
	per := flag.Int("per", 4, "design-space values per dimension")
	rounds := flag.Int("rounds", 3, "warm passes over the space")
	workers := flag.Int("workers", 0, "engine parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	m := core.Model{Chip: chip.DefaultConfig(), App: core.FluidanimateApp()}
	space, err := dse.ReducedSpace(m.Chip, *per)
	if err != nil {
		log.Fatalf("space: %v", err)
	}
	eval := &dse.ModelEvaluator{Model: m}
	eng := engine.New(engine.Options{Workers: *workers})
	ctx := context.Background()

	sweep := func() {
		if _, _, err := dse.SweepCtx(ctx, eval, space, nil, dse.SweepOptions{Engine: eng}); err != nil {
			log.Fatalf("sweep: %v", err)
		}
	}

	// Cold pass: every point computed.
	start := time.Now()
	sweep()
	coldDur := time.Since(start)
	coldStats := eng.Stats()

	// Warm passes: the same points, served from cache.
	start = time.Now()
	for i := 0; i < *rounds; i++ {
		sweep()
	}
	warmDur := time.Since(start)
	warmStats := eng.Stats().Delta(coldStats)

	rep := report{
		Space:        space.Size(),
		Rounds:       *rounds,
		Workers:      eng.Workers(),
		ColdEvalsSec: float64(space.Size()) / coldDur.Seconds(),
		WarmEvalsSec: float64(space.Size()**rounds) / warmDur.Seconds(),
		Cold:         coldStats,
		Warm:         warmStats,
	}
	if rep.ColdEvalsSec > 0 {
		rep.Speedup = rep.WarmEvalsSec / rep.ColdEvalsSec
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("cold: %.0f evals/s, warm: %.0f evals/s (%.1fx), %s → %s\n",
		rep.ColdEvalsSec, rep.WarmEvalsSec, rep.Speedup, warmStats, *out)
}
