// Command enginebench measures the evaluation engine's throughput with a
// cold and a warm memo cache and writes the result as JSON (for CI trend
// tracking). The workload is the deterministic analytic ModelEvaluator
// over a reduced design space: the cold pass computes every point, the
// warm pass re-requests the same points and should be served almost
// entirely from cache.
//
// Usage:
//
//	enginebench [-out file] [-per k] [-rounds n] [-workers n]
//	            [-obs file] [-server] [-tenants] [-clients n] [-duration d]
//	            [-trace out.json] [-metrics] [-cpuprofile out.pprof]
//
// With -server the command instead load-tests the HTTP serving path: it
// starts an in-process c2bound server on a loopback listener and drives
// it with -clients concurrent HTTP clients batching the space through
// POST /v1/evaluate:batch, cold then warm, writing the report (typically
// to BENCH_server.json via `make bench-server`).
//
// With -tenants the command runs the adversarial multi-tenant scenario:
// a flooder tenant saturates the admission gate with -clients concurrent
// clients for -duration while a trickler tenant sends one request per
// second, and the report records whether the trickler's tail latency and
// shed count survived the flood (typically to BENCH_tenants.json via
// `make bench-tenants`). The run fails if the trickler is ever shed.
//
// With -obs the command instead runs the benchmark twice — once with
// observability disabled (nil tracer and registry) and once with a live
// tracer and metrics registry attached — and writes both reports plus
// the relative overhead to the given JSON file. This is the
// "observability is near-free when off" acceptance measurement.
//
// Observability of the benchmark itself: -trace writes a Chrome
// trace_event JSON of the run, -metrics prints the registry snapshot on
// exit, and -cpuprofile records a pprof CPU profile.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/obs"
)

// report is the JSON document written to -out.
type report struct {
	Space        int          `json:"space_points"`
	Rounds       int          `json:"rounds"`
	Workers      int          `json:"workers"`
	ColdEvalsSec float64      `json:"cold_evals_per_sec"`
	WarmEvalsSec float64      `json:"warm_evals_per_sec"`
	Speedup      float64      `json:"warm_over_cold"`
	Cold         engine.Stats `json:"cold_stats"`
	Warm         engine.Stats `json:"warm_stats"`
}

// obsReport is the JSON document written by -obs: the same benchmark run
// with observability off and on, and the relative cost of turning it on.
type obsReport struct {
	Disabled        report  `json:"disabled"`
	Enabled         report  `json:"enabled"`
	ColdOverheadPct float64 `json:"cold_overhead_pct"`
	WarmOverheadPct float64 `json:"warm_overhead_pct"`
	Spans           uint64  `json:"spans_recorded"`
	SpansDropped    uint64  `json:"spans_dropped"`
}

func main() {
	out := flag.String("out", "BENCH_engine.json", "output JSON path")
	per := flag.Int("per", 4, "design-space values per dimension")
	rounds := flag.Int("rounds", 3, "warm passes over the space")
	workers := flag.Int("workers", 0, "engine parallelism (0 = GOMAXPROCS)")
	obsOut := flag.String("obs", "", "run disabled-vs-enabled observability comparison and write it to this JSON file")
	serverMode := flag.Bool("server", false, "benchmark the HTTP serving path (c2bound-server) instead of the in-process engine")
	tenantsMode := flag.Bool("tenants", false, "run the adversarial flooder-vs-trickler fair-share scenario")
	clients := flag.Int("clients", 8, "concurrent HTTP clients in -server and -tenants modes")
	duration := flag.Duration("duration", 10*time.Second, "flood length in -tenants mode")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
	metricsOut := flag.Bool("metrics", false, "print the metrics registry snapshot on exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		stopProf, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			if err := stopProf(); err != nil {
				log.Printf("cpuprofile: %v", err)
			}
		}()
	}

	if *obsOut != "" {
		runCompare(*obsOut, *per, *rounds, *workers)
		return
	}
	if *serverMode {
		runServerBench(*out, *per, *rounds, *workers, *clients)
		return
	}
	if *tenantsMode {
		runTenantBench(*out, *workers, *clients, *duration)
		return
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
		defer func() {
			if err := tracer.WriteChromeTraceFile(*traceOut); err != nil {
				log.Printf("trace: %v", err)
				return
			}
			fmt.Printf("trace: %d spans written to %s (%d dropped)\n",
				tracer.Len(), *traceOut, tracer.Dropped())
		}()
	}
	var metrics *obs.Registry
	if *metricsOut {
		metrics = obs.NewRegistry()
		defer func() {
			fmt.Println("\nmetrics:")
			if err := metrics.WriteText(os.Stdout); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
	}

	rep := runBench(*per, *rounds, *workers, tracer, metrics)
	writeJSON(*out, rep)
	fmt.Printf("cold: %.0f evals/s, warm: %.0f evals/s (%.1fx), %s → %s\n",
		rep.ColdEvalsSec, rep.WarmEvalsSec, rep.Speedup, rep.Warm, *out)
}

// runBench runs one cold pass and -rounds warm passes on a fresh engine
// carrying the given (possibly nil) tracer and registry.
func runBench(per, rounds, workers int, tracer *obs.Tracer, metrics *obs.Registry) report {
	m := core.Model{Chip: chip.DefaultConfig(), App: core.FluidanimateApp()}
	space, err := dse.ReducedSpace(m.Chip, per)
	if err != nil {
		log.Fatalf("space: %v", err)
	}
	eval := &dse.ModelEvaluator{Model: m}
	eng := engine.New(engine.Options{Workers: workers, Tracer: tracer, Metrics: metrics})
	ctx := context.Background()
	ctx = obs.ContextWithTracer(ctx, tracer)
	ctx = obs.ContextWithMetrics(ctx, metrics)

	sweep := func() {
		if _, _, err := dse.SweepCtx(ctx, eval, space, nil, dse.SweepOptions{Engine: eng}); err != nil {
			log.Fatalf("sweep: %v", err)
		}
	}

	// Cold pass: every point computed.
	start := time.Now()
	sweep()
	coldDur := time.Since(start)
	coldStats := eng.Stats()

	// Warm passes: the same points, served from cache.
	start = time.Now()
	for i := 0; i < rounds; i++ {
		sweep()
	}
	warmDur := time.Since(start)
	warmStats := eng.Stats().Delta(coldStats)

	rep := report{
		Space:        space.Size(),
		Rounds:       rounds,
		Workers:      eng.Workers(),
		ColdEvalsSec: float64(space.Size()) / coldDur.Seconds(),
		WarmEvalsSec: float64(space.Size()*rounds) / warmDur.Seconds(),
		Cold:         coldStats,
		Warm:         warmStats,
	}
	if rep.ColdEvalsSec > 0 {
		rep.Speedup = rep.WarmEvalsSec / rep.ColdEvalsSec
	}
	return rep
}

// runCompare measures the cost of observability: the same benchmark with
// tracer and registry nil, then live, reported side by side.
func runCompare(out string, per, rounds, workers int) {
	fmt.Println("pass 1/2: observability disabled (nil tracer, nil registry)...")
	disabled := runBench(per, rounds, workers, nil, nil)

	fmt.Println("pass 2/2: observability enabled (live tracer + registry)...")
	tracer := obs.NewTracer(0)
	metrics := obs.NewRegistry()
	enabled := runBench(per, rounds, workers, tracer, metrics)

	cmp := obsReport{
		Disabled:     disabled,
		Enabled:      enabled,
		Spans:        tracer.Recorded(),
		SpansDropped: tracer.Dropped(),
	}
	if enabled.ColdEvalsSec > 0 {
		cmp.ColdOverheadPct = 100 * (disabled.ColdEvalsSec/enabled.ColdEvalsSec - 1)
	}
	if enabled.WarmEvalsSec > 0 {
		cmp.WarmOverheadPct = 100 * (disabled.WarmEvalsSec/enabled.WarmEvalsSec - 1)
	}
	writeJSON(out, cmp)
	fmt.Printf("disabled: cold %.0f, warm %.0f evals/s\n", disabled.ColdEvalsSec, disabled.WarmEvalsSec)
	fmt.Printf("enabled : cold %.0f, warm %.0f evals/s (%d spans, %d dropped)\n",
		enabled.ColdEvalsSec, enabled.WarmEvalsSec, cmp.Spans, cmp.SpansDropped)
	fmt.Printf("overhead: cold %+.1f%%, warm %+.1f%% → %s\n", cmp.ColdOverheadPct, cmp.WarmOverheadPct, out)
}

// writeJSON marshals v with indentation and writes it to path.
func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
}
