package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chip"
	"repro/internal/dse"
	"repro/internal/server"
)

// tenantLatency summarizes one tenant's view of a bench phase.
type tenantLatency struct {
	Requests int     `json:"requests"`
	Shed     int     `json:"shed_429"`
	Errors   int     `json:"errors"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// tenantReport is the JSON document of -tenants mode: an adversarial
// two-tenant scenario proving fair-share isolation. A flooder tenant
// saturates the admission gate while a trickler sends one request per
// second; the report compares the trickler's latency against its
// unloaded baseline and records how much flooder traffic was shed.
type tenantReport struct {
	Workers        int           `json:"workers"`
	MaxConcurrent  int           `json:"max_concurrent"`
	FlooderClients int           `json:"flooder_clients"`
	DurationSec    float64       `json:"duration_sec"`
	Baseline       tenantLatency `json:"trickler_unloaded"`
	Trickler       tenantLatency `json:"trickler_loaded"`
	Flooder        tenantLatency `json:"flooder"`
	P99Ratio       float64       `json:"trickler_p99_over_baseline"`
	Server         server.Stats  `json:"server_stats"`
}

// runTenantBench starts a loopback server with two tenants — a flooder
// holding most of the concurrency quota and a small queue bound, and a
// trickler with guaranteed headroom — then measures whether the
// trickler's tail latency survives the flood. Every request carries a
// fresh simulator seed so the shared cache cannot absorb the load.
func runTenantBench(out string, workers, clients int, dur time.Duration) {
	if clients < 1 {
		clients = 1
	}
	const maxConc = 8
	srv := server.New(server.Options{
		Workers:       workers,
		MaxConcurrent: maxConc,
		MaxQueue:      64,
		Tenants: []server.TenantConfig{
			{
				Name:          "flooder",
				Key:           "bench-flooder",
				Weight:        1,
				MaxConcurrent: maxConc - 2, // the trickler always has headroom
				MaxQueue:      4,           // small bound: excess flood is shed, not parked
				RatePerSec:    1e6,         // never rate-limited; sheds come from the queue
			},
			{
				Name:       "trickler",
				Key:        "bench-trickler",
				Weight:     1,
				RatePerSec: 10,
				Burst:      10,
			},
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv}
	go func() {
		_ = httpSrv.Serve(ln)
	}()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	space, err := dse.ReducedSpace(chip.DefaultConfig(), 3)
	if err != nil {
		log.Fatalf("space: %v", err)
	}
	point := space.Point(0)
	var seed atomic.Uint64 // unique per request: distinct fingerprint, no cache hits

	evalOnce := func(client *http.Client, key string) (time.Duration, int, error) {
		body, err := json.Marshal(server.EvaluateRequest{
			Model:     server.ModelSpec{App: "tmm"},
			Evaluator: server.EvaluatorSpec{Kind: "sim", Seed: seed.Add(1)},
			Point:     point,
		})
		if err != nil {
			return 0, 0, err
		}
		req, err := http.NewRequest(http.MethodPost, base+"/v1/evaluate", bytes.NewReader(body))
		if err != nil {
			return 0, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-API-Key", key)
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			return 0, 0, err
		}
		defer resp.Body.Close()
		var sink json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&sink)
		return time.Since(start), resp.StatusCode, nil
	}

	trickle := func(client *http.Client, n int, gap time.Duration) tenantLatency {
		var lat []time.Duration
		res := tenantLatency{}
		tick := time.NewTicker(gap)
		defer tick.Stop()
		for i := 0; i < n; i++ {
			d, status, err := evalOnce(client, "bench-trickler")
			res.Requests++
			switch {
			case err != nil:
				res.Errors++
			case status == http.StatusTooManyRequests:
				res.Shed++
			case status != http.StatusOK:
				res.Errors++
			default:
				lat = append(lat, d)
			}
			if i < n-1 {
				<-tick.C
			}
		}
		res.P50MS = millis(pctile(lat, 0.50))
		res.P99MS = millis(pctile(lat, 0.99))
		return res
	}

	samples := int(dur / time.Second)
	if samples < 5 {
		samples = 5
	}

	fmt.Printf("phase 1/2: trickler baseline on an idle server (%d requests)...\n", samples)
	baseline := trickle(&http.Client{}, samples, 100*time.Millisecond)

	fmt.Printf("phase 2/2: %d flooder clients vs trickler at 1 req/s for %s...\n", clients, dur)
	deadline := time.Now().Add(dur)
	var (
		floodMu  sync.Mutex
		floodLat []time.Duration
		flood    tenantLatency
		wg       sync.WaitGroup
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for time.Now().Before(deadline) {
				d, status, err := evalOnce(client, "bench-flooder")
				floodMu.Lock()
				flood.Requests++
				switch {
				case err != nil:
					flood.Errors++
				case status == http.StatusTooManyRequests:
					flood.Shed++
				case status != http.StatusOK:
					flood.Errors++
				default:
					floodLat = append(floodLat, d)
				}
				floodMu.Unlock()
			}
		}()
	}
	loaded := trickle(&http.Client{}, samples, time.Second)
	wg.Wait()
	flood.P50MS = millis(pctile(floodLat, 0.50))
	flood.P99MS = millis(pctile(floodLat, 0.99))

	if loaded.Shed > 0 {
		log.Fatalf("isolation broken: the trickler was shed %d times under flood", loaded.Shed)
	}
	if loaded.Errors > 0 || baseline.Errors > 0 {
		log.Fatalf("trickler requests failed (baseline %d, loaded %d errors)", baseline.Errors, loaded.Errors)
	}

	rep := tenantReport{
		Workers:        srv.Engine().Workers(),
		MaxConcurrent:  maxConc,
		FlooderClients: clients,
		DurationSec:    dur.Seconds(),
		Baseline:       baseline,
		Trickler:       loaded,
		Flooder:        flood,
		Server:         srv.Stats(),
	}
	if rep.Baseline.P99MS > 0 {
		rep.P99Ratio = rep.Trickler.P99MS / rep.Baseline.P99MS
	}
	writeJSON(out, rep)
	fmt.Printf("trickler: p99 %.1fms unloaded → %.1fms under flood (%.2fx), 0 shed\n",
		rep.Baseline.P99MS, rep.Trickler.P99MS, rep.P99Ratio)
	fmt.Printf("flooder : %d requests, %d shed (429), p99 %.1fms → %s\n",
		flood.Requests, flood.Shed, flood.P99MS, out)
}

// pctile returns the q-quantile (0..1] of the samples by the
// nearest-rank method; zero when there are no samples.
func pctile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// millis converts a duration to float milliseconds for the report.
func millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
