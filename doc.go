// Package c2bound is a Go implementation of C²-Bound — the capacity- and
// concurrency-driven analytical model for many-core design of Liu & Sun
// (SC'15) — together with every substrate the paper's evaluation depends
// on: the C-AMAT concurrent-latency model and its online detector, Sun-Ni
// memory-bounded speedup, a Pollack's-rule chip cost model, a trace-driven
// many-core simulator (OoO cores, non-blocking caches, mesh NoC,
// bank/row-buffer DRAM), the APC per-layer metric, prior-art baselines
// (Hill-Marty, Sun-Chen, Cassidy-Andreou, ANN predictive DSE) and the APS
// (Analysis-Plus-Simulation) design-space-exploration flow.
//
// The package is a facade: it re-exports the library's primary types and
// entry points so downstream users import only this path. The
// implementation lives in internal/ subpackages, one per subsystem.
//
// # Quick start
//
//	// Measure C-AMAT on the paper's Fig. 1 trace.
//	an, _ := c2bound.Analyze(c2bound.Fig1Trace())
//	fmt.Println(an.Params().CAMAT()) // 1.6
//
//	// Solve the C²-Bound optimization for an application profile
//	// (context-first v2 API; options attach engines and observability).
//	m := c2bound.Model{Chip: c2bound.DefaultChip(), App: c2bound.FluidanimateApp()}
//	res, _ := c2bound.Optimize(ctx, m)
//	fmt.Println(res.Design, res.Regime)
//
//	// Run the many-core simulator and read back measured C-AMAT/APC.
//	sims, _ := c2bound.RunWorkload(c2bound.DefaultMachine(8), "fluidanimate", 8<<20, 2, 50000, 1)
//	fmt.Println(sims.L1Params, sims.APCL1, sims.APCL2, sims.APCMem)
//
// See examples/ for complete programs and DESIGN.md for the experiment
// index.
package c2bound
