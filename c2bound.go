package c2bound

import (
	"context"

	"repro/internal/aps"
	"repro/internal/baselines"
	"repro/internal/camat"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/robust"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/speedup"
	"repro/internal/trace"
)

// C-AMAT: the concurrent latency model (§II-A).
type (
	// CAMATParams holds H, MR, AMP, C_H, C_M, pMR and pAMP for one cache
	// level and evaluates AMAT, C-AMAT, C and APC.
	CAMATParams = camat.Params
	// Access is one memory access of a timing trace.
	Access = camat.Access
	// Analysis is the exact cycle-level accounting of a trace.
	Analysis = camat.Analysis
	// Phase is a maximal constant-concurrency interval.
	Phase = camat.Phase
	// Detector is the online HCD/MCD C-AMAT analyzer of Fig. 4.
	Detector = detector.Detector
)

// Analyze performs the exact cycle-level C-AMAT sweep over a trace.
func Analyze(trace []Access) (Analysis, error) { return camat.Analyze(trace) }

// SerializeTrace removes all concurrency from a trace (AMAT's sequential
// special case).
func SerializeTrace(tr []Access) []Access { return camat.Serialize(tr) }

// Fig1Trace returns the five-access demonstration trace of the paper's
// Fig. 1 (AMAT = 3.8, C-AMAT = 1.6).
func Fig1Trace() []Access { return camat.Fig1Trace() }

// NewDetector builds an online C-AMAT detector (one per monitored cache).
func NewDetector() *Detector { return detector.New() }

// Speedup laws (§II-B).
type (
	// ScaleFunc is the problem-size scale function g(N).
	ScaleFunc = speedup.ScaleFunc
	// Table1Row is one row of the paper's Table I.
	Table1Row = speedup.Table1Row
)

// Amdahl, Gustafson and SunNi evaluate the three speedup laws; FixedSize,
// Linear and PowerLaw build the corresponding g(N); GFromComplexity
// derives g(N) numerically from computation and memory complexity.
func Amdahl(fseq, n float64) float64 { return speedup.Amdahl(fseq, n) }

// Gustafson returns the scaled speedup fseq + (1−fseq)·N.
func Gustafson(fseq, n float64) float64 { return speedup.Gustafson(fseq, n) }

// SunNi returns the memory-bounded speedup of Eq. 4.
func SunNi(fseq float64, g ScaleFunc, n float64) float64 { return speedup.SunNi(fseq, g, n) }

// FixedSize returns g(N) = 1 (Amdahl's special case).
func FixedSize() ScaleFunc { return speedup.FixedSize() }

// Linear returns g(N) = N (Gustafson's special case).
func Linear() ScaleFunc { return speedup.Linear() }

// PowerLaw returns g(N) = N^b.
func PowerLaw(b float64) ScaleFunc { return speedup.PowerLaw(b) }

// GFromComplexity derives g(N) from W(n) and M(n) at base dimension n0.
func GFromComplexity(compute, memory func(float64) float64, n0 float64) (ScaleFunc, error) {
	return speedup.FromComplexity(compute, memory, n0)
}

// Table1 returns the executable Table I rows.
func Table1(fftBaseN float64) []Table1Row { return speedup.Table1(fftBaseN) }

// Chip cost model (Eq. 11 and Eq. 12).
type (
	// ChipConfig is the silicon budget, geometry and memory latencies.
	ChipConfig = chip.Config
	// Design is one (N, A0, A1, A2) design point.
	Design = chip.Design
	// Pollack holds the Eq. 11 constants.
	Pollack = chip.Pollack
	// MissRateCurve is the power-law miss-rate-vs-capacity model.
	MissRateCurve = chip.MissRateCurve
)

// DefaultChip returns the paper-like chip configuration used throughout
// the experiments.
func DefaultChip() ChipConfig { return chip.DefaultConfig() }

// The C²-Bound model itself (§III).
type (
	// App is an application profile (measured parameters).
	App = core.App
	// Model couples a chip with an application.
	Model = core.Model
	// Eval is one evaluated design point (all Eq. 7-10 intermediates).
	Eval = core.Eval
	// OptimizeResult is the solved design.
	OptimizeResult = core.Result
	// OptimizeOptions bounds the optimization search.
	OptimizeOptions = core.Options
	// Regime is the §III-C case split.
	Regime = core.Regime
	// Allocation is a per-application core assignment (Fig. 7).
	Allocation = core.Allocation
)

// Regime values.
const (
	MinimizeTime       = core.MinimizeTime
	MaximizeThroughput = core.MaximizeThroughput
)

// Preset application profiles used in the paper's case studies.
func TMMApp() App { return core.TMMApp() }

// StencilApp is a linear-scaling streaming profile.
func StencilApp() App { return core.StencilApp() }

// FFTApp carries the Table I FFT scaling.
func FFTApp() App { return core.FFTApp() }

// FluidanimateApp mimics the PARSEC benchmark of the APS validation.
func FluidanimateApp() App { return core.FluidanimateApp() }

// AllocateCores divides a chip's cores among co-scheduled applications by
// marginal C²-Bound utility (the Fig. 7 case study).
func AllocateCores(cfg ChipConfig, apps []App, totalCores int) ([]Allocation, error) {
	return core.AllocateCores(cfg, apps, totalCores)
}

// Simulator (the GEM5+DRAMSim2 substitute).
type (
	// MachineConfig describes the simulated many-core machine.
	MachineConfig = sim.Config
	// SimResult carries cycles, CPI, per-layer APC and measured C-AMAT.
	SimResult = sim.Result
	// Ref is one memory reference of a workload trace.
	Ref = trace.Ref
	// Generator produces deterministic reference streams.
	Generator = trace.Generator
)

// DefaultMachine returns the paper-like simulated machine with n cores.
func DefaultMachine(cores int) MachineConfig { return sim.DefaultConfig(cores) }

// RunMachine simulates one trace per core.
func RunMachine(cfg MachineConfig, traces [][]Ref) (*SimResult, error) { return sim.Run(cfg, traces) }

// RunWorkload simulates a named synthetic workload (see Workloads).
func RunWorkload(cfg MachineConfig, workload string, wsBytes uint64, meanGap float64, refsPerCore int, seed uint64) (*SimResult, error) {
	return sim.RunWorkload(cfg, workload, wsBytes, meanGap, refsPerCore, seed)
}

// Workloads lists the synthetic workload generators.
func Workloads() []string { return trace.Workloads() }

// NewGenerator builds a workload generator by name.
func NewGenerator(name string, wsBytes uint64, meanGap float64, seed uint64) (Generator, error) {
	return trace.ByName(name, wsBytes, meanGap, seed)
}

// TakeRefs drains n references from a generator.
func TakeRefs(g Generator, n int) []Ref { return trace.Take(g, n) }

// Design space exploration and APS (§III-D, §IV).
type (
	// DesignSpace is a Cartesian parameter grid.
	DesignSpace = dse.Space
	// SpaceParam is one grid dimension.
	SpaceParam = dse.Param
	// Evaluator scores configurations (lower is better).
	Evaluator = dse.Evaluator
	// EvaluatorFunc adapts a plain function.
	EvaluatorFunc = dse.EvaluatorFunc
	// SimEvaluator scores configurations with the simulator.
	SimEvaluator = dse.SimEvaluator
	// APSOptions tunes the APS flow.
	APSOptions = aps.Options
	// APSResult is the APS outcome, including the simulation count.
	APSResult = aps.Result
	// ANNSearch is the predictive-modelling DSE baseline (ref [2]).
	ANNSearch = aps.ANNSearch
)

// PaperSpace returns the 10⁶-point §IV design space for the chip budget.
//
// Deprecated: use FamilyDesignSpace(m, 0) with a BuildModel c2bound
// model — the family-generic form of the same grids, which also serves
// every other registered family.
func PaperSpace(cfg ChipConfig) (DesignSpace, error) { return dse.PaperSpace(cfg) }

// ReducedSpace subsamples PaperSpace to per values per dimension.
//
// Deprecated: use FamilyDesignSpace(m, per) with a BuildModel c2bound
// model — the family-generic form of the same grids, which also serves
// every other registered family.
func ReducedSpace(cfg ChipConfig, per int) (DesignSpace, error) { return dse.ReducedSpace(cfg, per) }

// NewSimEvaluator builds a simulator-backed evaluator for a fixed-size
// workload of totalRefs references.
func NewSimEvaluator(cfg ChipConfig, workload string, wsBytes uint64, meanGap float64, totalRefs int, seed uint64) (*SimEvaluator, error) {
	return dse.NewSimEvaluator(cfg, workload, wsBytes, meanGap, totalRefs, seed)
}

// SweepSpace brute-forces a space in parallel (the ground-truth path).
//
// Deprecated: use Sweep, the context-first form with retries,
// checkpoint/resume and observability (adapt plain evaluators with
// AdaptEvaluator).
func SweepSpace(e Evaluator, s DesignSpace, workers int) []float64 {
	//lint:allow ctxflow deliberate non-ctx convenience wrapper; use Sweep for cancellation
	return dse.Sweep(context.Background(), e, s, workers)
}

// Resilient exploration (cancellation, retries, checkpoint/resume).
type (
	// CtxEvaluator is a context-aware, fallible evaluator; SimEvaluator
	// implements it, and AdaptEvaluator lifts a plain Evaluator.
	CtxEvaluator = dse.CtxEvaluator
	// SweepOptions tunes the resilient sweep: workers, retry policy,
	// timeout, and checkpoint/resume.
	SweepOptions = dse.SweepOptions
	// SweepReport is the structured outcome of a resilient sweep:
	// completed/failed/pending indices, retry counts and wall time.
	SweepReport = dse.SweepReport
	// RetryPolicy bounds re-attempts of transiently failing evaluations
	// (exponential backoff with jitter).
	RetryPolicy = robust.RetryPolicy
	// SweepCheckpoint is the JSON sweep-state snapshot written by
	// checkpointed sweeps.
	SweepCheckpoint = dse.Checkpoint
)

// Evaluation engine: the shared memoizing, metered evaluation service.
type (
	// Engine owns the worker pool, the LRU memo cache, in-flight
	// deduplication and the retry/panic-isolation machinery. One engine
	// can serve the analytic optimizer, DSE sweeps and APS concurrently;
	// OptimizeOptions.Engine, SweepOptions.Engine and APSOptions.Engine
	// attach it.
	Engine = engine.Engine
	// EngineOptions configures a new engine (workers, cache capacity,
	// retry policy).
	EngineOptions = engine.Options
	// EngineStats is a snapshot of the engine's counters: requests, raw
	// evaluations, cache hits, dedups, retries, panics and evaluator wall
	// time.
	EngineStats = engine.Stats
)

// NewEngine builds an evaluation engine.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// Batched evaluation (DESIGN.md §12): compiled analytic kernels and the
// plane-at-a-time evaluator contract the engine dispatches in chunks.
type (
	// CompiledModel is a Model with every point-independent
	// subexpression folded (Model.Compile); TimeAt/TimeWorkAt evaluate a
	// design allocation-free and bit-identical to Model.Evaluate.
	CompiledModel = core.Compiled
	// BatchEvaluator is the batched evaluator contract: one call scores
	// a whole plane of points. The engine detects it on EvaluateStream
	// and switches to chunked dispatch; implementers must also keep the
	// scalar EvaluateCtx (enforced by the c2vet batchpar analyzer).
	BatchEvaluator = engine.BatchEvaluator
	// BatchFunc adapts a fingerprinted scalar function plus a batched
	// kernel to BatchEvaluator, for ad-hoc batched objectives.
	BatchFunc = engine.BatchFunc
)

// HTTP evaluation service (DESIGN.md §10).
type (
	// Server is the zero-dependency HTTP façade over one shared Engine:
	// single-point evaluation, NDJSON batches, server-side streaming
	// sweeps and the full APS flow, with admission control, per-request
	// deadlines and graceful drain. It implements http.Handler.
	Server = server.Server
	// ServerOptions configures a new Server (engine sharing, admission
	// bounds, timeouts, checkpoint directory, model catalog).
	ServerOptions = server.Options
	// ServerStats is the server's own counter snapshot, reported by
	// /readyz beside the engine snapshot.
	ServerStats = server.Stats
	// ModelCatalog is the server-side registry of named models; requests
	// reference entries by name so the memo cache is shared across
	// clients.
	ModelCatalog = server.Catalog
	// TenantConfig declares one tenant of the service: API key,
	// fair-share weight, concurrency quota and token-bucket rate limit
	// (DESIGN.md §11). ServerOptions.Tenants installs the table;
	// Server.SetTenants swaps it at runtime.
	TenantConfig = server.TenantConfig
	// Job is the persisted and reported record of one /v1/jobs
	// submission: a durable, tenant-scoped background sweep or APS run
	// that resumes from its own checkpoint across restarts.
	Job = server.Job
	// JobProgress is a running job's poll-time heartbeat.
	JobProgress = server.JobProgress
)

// LoadTenantsFile reads a tenant table from a JSON file of the form
// {"tenants": [...]} — the same file the server CLI's -tenants flag
// names and SIGHUP re-reads.
func LoadTenantsFile(path string) ([]TenantConfig, error) {
	return server.LoadTenantsFile(path)
}

// NewServer builds the HTTP evaluation service.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// NewModelCatalog returns the catalog of the paper's case-study
// application profiles (tmm, stencil, fft, fluidanimate) over the
// default chip.
func NewModelCatalog() *ModelCatalog { return server.DefaultCatalog() }

// AdaptEvaluator lifts a plain Evaluator to the context-aware interface.
func AdaptEvaluator(e Evaluator) CtxEvaluator { return dse.WithContext(e) }

// SweepSpaceCtx is SweepSpace with cancellation, deadlines, retries,
// panic isolation and optional checkpoint/resume. Partial results and
// the report are valid even when the returned error is non-nil.
//
// Deprecated: use Sweep, the functional-options form of the same call.
func SweepSpaceCtx(ctx context.Context, e CtxEvaluator, s DesignSpace, opts SweepOptions) ([]float64, SweepReport, error) {
	return dse.SweepCtx(ctx, e, s, nil, opts)
}

// RunAPSCtx executes the Analysis-Plus-Simulation flow with struct
// options: cancellation propagates into the analytic scan and every
// simulator invocation, and the simulated slice retries transient
// failures per opts.Sweep.Retry.
//
// Deprecated: use RunAPS, the functional-options form of the same call.
func RunAPSCtx(ctx context.Context, m Model, space DesignSpace, eval CtxEvaluator, opts APSOptions) (APSResult, error) {
	return aps.RunCtx(ctx, m, space, eval, opts)
}

// Baselines (§VI).

// HillMartySymmetric returns the symmetric-multicore Amdahl speedup.
func HillMartySymmetric(fseq, n, r float64) (float64, error) {
	return baselines.HillMartySymmetric(fseq, n, r)
}

// HillMartyAsymmetric returns the asymmetric-multicore speedup.
func HillMartyAsymmetric(fseq, n, r float64) (float64, error) {
	return baselines.HillMartyAsymmetric(fseq, n, r)
}

// HillMartyDynamic returns the dynamic-multicore speedup.
func HillMartyDynamic(fseq, n, r float64) (float64, error) {
	return baselines.HillMartyDynamic(fseq, n, r)
}

// SunChen returns the memory-bounded multicore speedup of Sun & Chen.
func SunChen(fseq, n, r float64, g ScaleFunc) (float64, error) {
	return baselines.SunChen(fseq, n, r, g)
}

// CassidyAndreou returns the AMAT-augmented Amdahl execution time.
func CassidyAndreou(cpiExe, fmem, amat, fseq float64, n int) (float64, error) {
	return baselines.CassidyAndreou(cpiExe, fmem, amat, fseq, n)
}
