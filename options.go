package c2bound

import (
	"context"
	"time"

	"repro/internal/aps"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Observability (the v2 façade's tracing and metrics surface).
type (
	// Tracer records hierarchical spans into a lock-free ring buffer and
	// exports them as Chrome trace_event JSON (load the file in
	// chrome://tracing or Perfetto). A nil *Tracer is a valid disabled
	// tracer.
	Tracer = obs.Tracer
	// TraceSpan is one recorded span.
	TraceSpan = obs.Span
	// TraceAttr is one key/value span annotation.
	TraceAttr = obs.Attr
	// Metrics is a registry of atomic counters, gauges and histograms
	// with a text exposition (WriteText). A nil *Metrics is a valid
	// disabled registry.
	Metrics = obs.Registry
)

// NewTracer builds a span tracer with the given ring capacity (≤0 picks
// the 64Ki default).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// runConfig is the consolidated configuration behind the v2 entry
// points. The With* options below mutate it; each entry point lowers it
// onto the specific option structs of the internal layers.
type runConfig struct {
	engine       *Engine
	tracer       *Tracer
	metrics      *Metrics
	workers      int
	cache        int
	retry        RetryPolicy
	timeout      time.Duration
	checkpoint   string
	every        int
	resume       bool
	radius       int
	metric       aps.Metric
	optimize     OptimizeOptions
	disableBatch bool
}

// Option configures a v2 entry point (Sweep, RunAPS, Optimize).
type Option func(*runConfig)

// WithEngine routes every evaluation through a shared engine, so
// overlapping work across calls (an APS run after a ground-truth sweep)
// reuses the memo cache. The engine's worker bound and retry policy win
// over WithWorkers/WithRetry. A shared engine resolves its instruments
// once at construction — pass the same tracer/registry in EngineOptions
// to see its evaluations in the call's trace and metrics.
func WithEngine(e *Engine) Option { return func(c *runConfig) { c.engine = e } }

// WithTracer records spans for the call (and attaches the tracer to the
// context, so nested layers and private engines inherit it).
func WithTracer(t *Tracer) Option { return func(c *runConfig) { c.tracer = t } }

// WithMetrics mirrors the call's counters into r (engine_*, dse_*,
// aps_*, sim_* instruments; see DESIGN.md §9 for the naming scheme).
func WithMetrics(r *Metrics) Option { return func(c *runConfig) { c.metrics = r } }

// WithWorkers bounds evaluation parallelism (≤0: GOMAXPROCS). Ignored
// when WithEngine is set.
func WithWorkers(n int) Option { return func(c *runConfig) { c.workers = n } }

// WithBatch toggles the engine's chunked dispatch for batch-capable
// evaluators (BatchEvaluator implementers). It is on by default;
// WithBatch(false) pins the scalar per-point path — the two produce
// bit-identical values, so this exists for differential testing and
// benchmarking, not correctness. Ignored when WithEngine is set (the
// engine's own setting wins).
func WithBatch(on bool) Option { return func(c *runConfig) { c.disableBatch = !on } }

// WithCacheSize gives the call a private memoizing engine of the given
// capacity in entries (0 picks the engine default; ignored when
// WithEngine supplies one). Without this option Sweep runs uncached —
// indices within one sweep are unique — while RunAPS and Optimize still
// share a private per-call cache.
func WithCacheSize(n int) Option { return func(c *runConfig) { c.cache = n } }

// WithRetry re-attempts failing or panicking evaluations under p.
// Ignored when WithEngine is set (the engine's policy wins).
func WithRetry(p RetryPolicy) Option { return func(c *runConfig) { c.retry = p } }

// WithTimeout bounds the call's wall time; it stacks with any deadline
// the context already carries.
func WithTimeout(d time.Duration) Option { return func(c *runConfig) { c.timeout = d } }

// WithCheckpoint persists sweep progress to path (atomic rename) every
// `every` completed evaluations (≤0 picks the default cadence), so an
// interrupted exploration can resume.
func WithCheckpoint(path string, every int) Option {
	return func(c *runConfig) { c.checkpoint, c.every = path, every }
}

// WithResume restores completed indices from the WithCheckpoint file
// before sweeping, skipping everything it already covers.
func WithResume() Option { return func(c *runConfig) { c.resume = true } }

// WithRadius widens the APS simulated neighborhood around the analytic
// optimum in the A0/A1/A2/N dimensions (0 reproduces the paper's
// issue×ROB-only slice).
func WithRadius(r int) Option { return func(c *runConfig) { c.radius = r } }

// WithThroughputMetric switches the APS objective from execution time to
// time-per-work (the paper's case-I throughput target). The evaluator
// must measure the same quantity.
func WithThroughputMetric() Option { return func(c *runConfig) { c.metric = aps.MetricTimePerWork } }

// WithOptimize forwards bounds to the analytic optimizer (MaxN,
// MinPerCore, MinArea).
func WithOptimize(opts OptimizeOptions) Option {
	return func(c *runConfig) { c.optimize = opts }
}

func newRunConfig(opts []Option) runConfig {
	var c runConfig
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// context attaches the configured tracer and registry to ctx, the
// channel every internal layer reads them from.
func (c *runConfig) context(ctx context.Context) context.Context {
	ctx = obs.ContextWithTracer(ctx, c.tracer)
	ctx = obs.ContextWithMetrics(ctx, c.metrics)
	return ctx
}

// engineFor resolves the call's engine: the shared one when supplied, a
// private memoizing engine when WithCacheSize asked for one, nil
// otherwise (the internal layers then build their own defaults).
func (c *runConfig) engineFor() *Engine {
	if c.engine != nil {
		return c.engine
	}
	if c.cache != 0 {
		return engine.New(engine.Options{
			Workers:      c.workers,
			CacheSize:    c.cache,
			Retry:        c.retry,
			Tracer:       c.tracer,
			Metrics:      c.metrics,
			DisableBatch: c.disableBatch,
		})
	}
	return nil
}

// Sweep brute-forces every point of a space through the hardened
// evaluation pipeline — cancellation, retries, panic isolation, optional
// checkpoint/resume and observability — and returns the dense value
// slice (NaN for unevaluated entries) with the structured report.
// Partial results are valid even when the returned error is non-nil.
// This is the v2 ground-truth path; SweepSpace and SweepSpaceCtx are its
// deprecated precursors.
func Sweep(ctx context.Context, e CtxEvaluator, s DesignSpace, opts ...Option) ([]float64, SweepReport, error) {
	c := newRunConfig(opts)
	return dse.SweepCtx(c.context(ctx), e, s, nil, dse.SweepOptions{
		Engine:          c.engineFor(),
		Workers:         c.workers,
		Retry:           c.retry,
		Timeout:         c.timeout,
		CheckpointPath:  c.checkpoint,
		CheckpointEvery: c.every,
		Resume:          c.resume,
		DisableBatch:    c.disableBatch,
	})
}

// RunAPS executes the Analysis-Plus-Simulation flow: solve the analytic
// C²-Bound optimization, snap it onto the grid, then simulate only the
// remaining microarchitectural slice. Cancellation propagates into the
// analytic scan and every simulator invocation; WithCheckpoint/WithResume
// make the simulated phase restartable. RunAPSCtx is the deprecated
// struct-options form.
func RunAPS(ctx context.Context, m Model, space DesignSpace, eval CtxEvaluator, opts ...Option) (APSResult, error) {
	c := newRunConfig(opts)
	return aps.RunCtx(c.context(ctx), m, space, eval, aps.Options{
		Engine:   c.engineFor(),
		Radius:   c.radius,
		Workers:  c.workers,
		Metric:   c.metric,
		Optimize: c.optimize,
		Sweep: dse.SweepOptions{
			Retry:           c.retry,
			Timeout:         c.timeout,
			CheckpointPath:  c.checkpoint,
			CheckpointEvery: c.every,
			Resume:          c.resume,
			DisableBatch:    c.disableBatch,
		},
	})
}

// Optimize solves the analytic C²-Bound problem for the model — no
// simulation — honouring the context's cancellation and the configured
// engine/observability. Model.Optimize and Model.OptimizeCtx remain for
// direct use; this is the options-first v2 form.
func Optimize(ctx context.Context, m Model, opts ...Option) (OptimizeResult, error) {
	c := newRunConfig(opts)
	optOpts := c.optimize
	if optOpts.Engine == nil {
		optOpts.Engine = c.engineFor()
	}
	return m.OptimizeCtx(c.context(ctx), optOpts)
}
