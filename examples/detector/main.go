// Command detector shows the HCD/MCD C-AMAT analyzer (the paper's Fig. 4
// hardware) measuring live parameters on the simulated machine, and how
// those parameters feed the C²-Bound model: it runs three workloads with
// very different concurrency behaviour and prints the measured C-AMAT
// decomposition for each.
package main

import (
	"fmt"
	"log"

	c2bound "repro"
)

func main() {
	cfg := c2bound.DefaultMachine(1)
	type row struct {
		workload string
		ws       uint64
		note     string
	}
	rows := []row{
		{"stream", 16 << 20, "sequential streaming: hardware prefetch-like spatial locality, high MLP"},
		{"pchase", 16 << 20, "dependent pointer chase: every load waits for the previous one, C collapses"},
		{"tiledmm", 2 << 20, "tiled matrix multiply: cache-resident tiles, few misses"},
	}
	for _, r := range rows {
		res, err := c2bound.RunWorkload(cfg, r.workload, r.ws, 2, 30000, 11)
		if err != nil {
			log.Fatalf("%s: %v", r.workload, err)
		}
		p := res.L1Params
		fmt.Printf("== %s ==\n%s\n", r.workload, r.note)
		fmt.Printf("CPI = %.3f\n", res.CPI)
		fmt.Printf("AMAT   = %7.2f cycles   (H=%.0f, MR=%.3f, AMP=%.1f)\n", p.AMAT(), p.H, p.MR, p.AMP)
		fmt.Printf("C-AMAT = %7.2f cycles   (C_H=%.2f, C_M=%.2f, pMR=%.3f, pAMP=%.1f)\n",
			p.CAMAT(), p.CH, p.CM, p.PMR, p.PAMP)
		fmt.Printf("C = AMAT/C-AMAT = %.2f\n", p.Concurrency())
		fmt.Printf("decomposition check: H/C_H + pMR·pAMP/C_M = %.4f = ActiveCycles/Accesses = %.4f\n\n",
			p.CAMAT(), res.L1Aggregate.CAMATDirect())
	}
	fmt.Println("The detector's output is exactly what the paper's Fig. 4 hardware")
	fmt.Println("collects online; these parameters are the characterization input of APS.")
}
