// Command dse runs the paper's §IV design-space-exploration experiment
// end to end on a reduced space: a ground-truth brute-force sweep of the
// simulator, the APS (Analysis-Plus-Simulation) flow, and the ANN
// predictive baseline, then prints the Fig. 12 simulation-count comparison
// and the APS accuracy. Pass -per 4 (or more) for a larger space; -per 10
// is the paper's full 10⁶-point space and takes minutes.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
)

func main() {
	per := flag.Int("per", 3, "design-space values per dimension (10 = paper scale)")
	refs := flag.Int("refs", 4000, "workload references per simulation")
	flag.Parse()

	sc := experiments.Scale{SpacePer: *per, TotalRefs: *refs}
	start := time.Now()
	tb, data, err := experiments.Fig12SimulationCounts(sc)
	if err != nil {
		log.Fatalf("fig12: %v", err)
	}
	fmt.Println(tb.String())
	fmt.Printf("APS explored %d of %d configurations — a %.0fx reduction (paper: 10^6 → 10^2).\n",
		data.APSSims, data.SpaceSize, float64(data.SpaceSize)/float64(data.APSSims))
	fmt.Printf("APS design is within %.2f%% of the true optimum (paper: 5.96%%).\n", 100*data.APSRelErr)
	if data.ANNSims > 0 {
		fmt.Printf("APS used %.1f%% of the ANN baseline's simulations (paper: 16.3%%).\n",
			100*data.APSShareOfANN)
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}
