// Command energy demonstrates the §VII multi-objective extension of
// C²-Bound: the same application and chip optimized for execution time,
// total energy, energy-delay product and ED²P, plus the time/energy
// Pareto frontier a designer would choose from.
package main

import (
	"context"
	"fmt"
	"log"

	c2bound "repro"
)

func main() {
	app := c2bound.FluidanimateApp()
	app.Fseq = 0.1
	app.G = c2bound.FixedSize() // fixed problem: the race-to-idle setting
	app.GOrder = 0
	m := c2bound.Model{Chip: c2bound.DefaultChip(), App: app}
	pm := c2bound.DefaultPowerModel()

	timeRes, err := c2bound.Optimize(context.Background(), m,
		c2bound.WithOptimize(c2bound.OptimizeOptions{MaxN: 64}))
	if err != nil {
		log.Fatalf("time optimize: %v", err)
	}
	timeE, err := m.EvaluateEnergy(timeRes.Design, pm)
	if err != nil {
		log.Fatalf("time energy eval: %v", err)
	}
	fmt.Println("== Single-objective optima ==")
	fmt.Printf("%-12s %-34s T=%.4g  E=%.4g  EDP=%.4g\n",
		"min-time", timeRes.Design.String(), timeE.Time, timeE.Energy, timeE.EDP)
	for _, obj := range []c2bound.EnergyObjective{c2bound.MinEnergy, c2bound.MinEDP, c2bound.MinED2P} {
		d, e, err := m.OptimizeEnergy(pm, obj, c2bound.OptimizeOptions{MaxN: 64})
		if err != nil {
			log.Fatalf("%v: %v", obj, err)
		}
		fmt.Printf("%-12s %-34s T=%.4g  E=%.4g  EDP=%.4g\n",
			obj.String(), d.String(), e.Time, e.Energy, e.EDP)
	}

	frontier, err := m.ParetoFrontier(pm, c2bound.OptimizeOptions{MaxN: 64})
	if err != nil {
		log.Fatalf("pareto: %v", err)
	}
	fmt.Println("\n== Time/energy Pareto frontier ==")
	fmt.Printf("%-6s %-8s %-12s %-12s\n", "N", "A0", "time", "energy")
	for _, p := range frontier {
		fmt.Printf("%-6d %-8.3g %-12.4g %-12.4g\n", p.Design.N, p.Design.CoreArea, p.Time, p.Energy)
	}
	fmt.Println("\nThe energy optimum leaves silicon dark and runs slower (race-to-idle does")
	fmt.Println("not pay when leakage is low); EDP balances the two; ED²P hugs the time optimum.")
}
