// Command adaptive demonstrates C²-Bound used online, as §IV-§V of the
// paper describes: an application alternating between a cache-friendly
// and a cache-hostile phase is monitored with the HCD/MCD counters on the
// simulator; whenever the measured C-AMAT parameters drift, the
// controller re-solves the analytic optimization and reconfigures the
// (virtual) chip. The run prints each window's decision and the benefit
// over locking in the first phase's design.
package main

import (
	"fmt"
	"log"

	c2bound "repro"
)

func main() {
	chipCfg := c2bound.DefaultChip()
	base := c2bound.FluidanimateApp()
	base.G = c2bound.PowerLaw(0.5)
	base.GOrder = 0.5

	ctl := c2bound.AdaptController{
		Chip:     chipCfg,
		Base:     base,
		Optimize: c2bound.OptimizeOptions{MaxN: 64},
	}

	probe := c2bound.DefaultMachine(4)
	type phase struct {
		workload string
		ws       uint64
	}
	sequence := []phase{
		{"tiledmm", 2 << 20}, {"tiledmm", 2 << 20},
		{"random", 64 << 20}, {"random", 64 << 20},
		{"tiledmm", 2 << 20},
	}
	fmt.Println("window  phase     change reconf  design")
	for i, p := range sequence {
		res, err := c2bound.RunWorkload(probe, p.workload, p.ws, 2, 8000, uint64(100+i))
		if err != nil {
			log.Fatalf("window %d: %v", i, err)
		}
		w := c2bound.WindowStats{
			Instructions: res.Instructions,
			Accesses:     res.MemAccesses,
			Params:       res.L1Params,
			L1MR:         res.L1Params.MR,
			L2MR:         res.L2Stats.MissRate(),
			L1CapKB:      float64(probe.L1.SizeKB),
			L2CapKB:      float64(probe.L2.SizeKB),
		}
		dec, err := ctl.Step(w)
		if err != nil {
			log.Fatalf("controller step %d: %v", i, err)
		}
		fmt.Printf("%-7d %-9s %-6v %-7v %v\n", i+1, p.workload, dec.PhaseChange, dec.Reconfigured, dec.Design)
	}
	fmt.Printf("\n%d reconfigurations over %d windows.\n", ctl.Reconfigurations(), ctl.Windows())
	fmt.Println("Cache-friendly phases get many small cores; the cache-hostile phase")
	fmt.Println("gets few cores with large caches — the paper's g(N) vs O(N) rule, live.")
}
