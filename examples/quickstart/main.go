// Command quickstart walks the three core uses of the library in one
// short program: measuring C-AMAT on a trace (the paper's Fig. 1 worked
// example), solving the C²-Bound optimization for an application profile,
// and validating the analytic picture against the many-core simulator.
package main

import (
	"context"
	"fmt"
	"log"

	c2bound "repro"
)

func main() {
	ctx := context.Background()
	// 1. C-AMAT on the paper's five-access demonstration trace.
	an, err := c2bound.Analyze(c2bound.Fig1Trace())
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	p := an.Params()
	fmt.Println("== C-AMAT (Fig. 1 trace) ==")
	fmt.Printf("AMAT   = %.3f cycles (paper: 3.8)\n", p.AMAT())
	fmt.Printf("C-AMAT = %.3f cycles (paper: 1.6)\n", p.CAMAT())
	fmt.Printf("C      = %.3f (concurrency)\n", p.Concurrency())
	fmt.Printf("C_H=%.2f C_M=%.2f pMR=%.2f pAMP=%.2f\n\n", p.CH, p.CM, p.PMR, p.PAMP)

	// 2. Solve the C²-Bound design optimization for a fluidanimate-like
	// application on a 400 mm² chip (the context-first v2 entry point).
	m := c2bound.Model{Chip: c2bound.DefaultChip(), App: c2bound.FluidanimateApp()}
	res, err := c2bound.Optimize(ctx, m)
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}
	fmt.Println("== C²-Bound optimization ==")
	fmt.Printf("regime: %v (g grows %s linearly)\n", res.Regime,
		map[bool]string{true: "at least", false: "slower than"}[res.Regime == c2bound.MaximizeThroughput])
	fmt.Printf("optimal design: %v\n", res.Design)
	fmt.Printf("C-AMAT at optimum: %.3f (C = %.2f), CPI = %.3f\n",
		res.Eval.CAMAT, res.Eval.C, res.Eval.CPI)
	fmt.Printf("throughput W/T: %.4g  (solver: %s, %d objective evaluations)\n\n",
		res.Eval.Throughput, res.Method, res.Evaluations)

	// 3. Cross-check with the trace-driven many-core simulator: run the
	// synthetic fluidanimate workload and read the detector's measured
	// C-AMAT parameters.
	sims, err := c2bound.RunWorkload(c2bound.DefaultMachine(8), "fluidanimate", 8<<20, 2, 20000, 1)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	fmt.Println("== Simulator cross-check (8 cores, fluidanimate) ==")
	fmt.Printf("CPI = %.3f over %d instructions\n", sims.CPI, sims.Instructions)
	fmt.Printf("measured L1 %v\n", sims.L1Params)
	fmt.Printf("APC per layer: L1=%.4f LLC=%.4f mem=%.4f\n", sims.APCL1, sims.APCL2, sims.APCMem)
	fmt.Printf("per-core APC = 1/C-AMAT identity: %.4f = %.4f\n",
		1/sims.L1Aggregate.CAMATDirect(), 1/sims.L1Params.CAMAT())
}
