// Command scaling regenerates the paper's memory-bounded scaling study
// (Figs. 8-11): problem size W, execution time T and throughput W/T as
// the core count grows to 1000 under data-access concurrency C ∈ {1,4,8},
// at two memory access frequencies. It prints the four tables and the
// headline observations the paper draws from them.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/tablefmt"
)

func main() {
	type figFunc func() (*tablefmt.Table, []experiments.ScalingPoint, error)
	figs := []struct {
		name string
		gen  figFunc
	}{
		{"Fig. 8", experiments.Fig8},
		{"Fig. 9", experiments.Fig9},
		{"Fig. 10", experiments.Fig10},
		{"Fig. 11", experiments.Fig11},
	}
	for _, fig := range figs {
		tb, pts, err := fig.gen()
		if err != nil {
			log.Fatalf("%s: %v", fig.name, err)
		}
		fmt.Println(tb.String())
		switch fig.name {
		case "Fig. 8":
			concurrencySpeedup(pts)
		case "Fig. 10":
			throughputKnee(pts)
		}
	}
}

// concurrencySpeedup prints the paper's headline observation from Fig. 8:
// the speedup that memory concurrency alone delivers at fixed N = 1000.
func concurrencySpeedup(pts []experiments.ScalingPoint) {
	at := map[float64]experiments.ScalingPoint{}
	for _, p := range pts {
		if p.N == 1000 {
			at[p.C] = p
		}
	}
	fmt.Printf("At N=1000: T(C=1)/T(C=4) = %.2f, T(C=1)/T(C=8) = %.2f\n",
		at[1].T/at[4].T, at[1].T/at[8].T)
	fmt.Println("→ improving data access concurrency alone yields large speedups at fixed core count.")
	fmt.Println()
}

// throughputKnee prints the Fig. 10 observation: without memory
// concurrency about one hundred cores saturate throughput, while higher C
// keeps improving to a later optimum.
func throughputKnee(pts []experiments.ScalingPoint) {
	best := map[float64]experiments.ScalingPoint{}
	for _, p := range pts {
		if p.WT > best[p.C].WT {
			best[p.C] = p
		}
	}
	for _, c := range experiments.PaperConcurrencies() {
		b := best[c]
		fmt.Printf("C=%g: best W/T = %.4g at N = %d\n", c, b.WT, b.N)
	}
	fmt.Println("→ higher memory concurrency raises the throughput optimum and pushes it to more cores.")
	fmt.Println()
}
