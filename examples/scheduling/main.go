// Command scheduling demonstrates the Fig. 7 use of C²-Bound by software:
// dividing a many-core chip among co-scheduled applications according to
// their sequential fraction and memory concurrency. Applications that
// barely benefit from extra cores (large f_seq, C ≈ 1) receive few;
// highly parallel, high-concurrency applications absorb the rest.
package main

import (
	"fmt"
	"log"

	c2bound "repro"
)

func main() {
	cfg := c2bound.DefaultChip()

	// Three applications spanning the Fig. 7 spectrum, built from the
	// stencil profile by varying f_seq and the concurrency level.
	seqHeavy := c2bound.StencilApp()
	seqHeavy.Name = "app1: sequential-heavy"
	seqHeavy.Fseq = 0.4
	seqHeavy = seqHeavy.WithConcurrency(1)
	seqHeavy.G = c2bound.FixedSize()
	seqHeavy.GOrder = 0

	parallel := c2bound.StencilApp()
	parallel.Name = "app2: parallel+concurrent"
	parallel.Fseq = 0.005
	parallel = parallel.WithConcurrency(8)
	parallel.G = c2bound.Linear()
	parallel.GOrder = 1

	middle := c2bound.StencilApp()
	middle.Name = "app3: in-between"
	middle.Fseq = 0.08
	middle = middle.WithConcurrency(3)
	middle.G = c2bound.PowerLaw(0.5)
	middle.GOrder = 0.5

	for _, total := range []int{16, 64, 256} {
		allocs, err := c2bound.AllocateCores(cfg, []c2bound.App{seqHeavy, parallel, middle}, total)
		if err != nil {
			log.Fatalf("allocate %d cores: %v", total, err)
		}
		fmt.Printf("== %d cores ==\n", total)
		for _, al := range allocs {
			fmt.Printf("%-26s f_seq=%.3f C=%g → %3d cores (speedup %.2f)\n",
				al.App.Name, al.App.Fseq, al.App.CH, al.Cores, al.Speedup)
		}
		fmt.Println()
	}
	fmt.Println("The sequential-heavy application saturates after a handful of cores;")
	fmt.Println("the low-f_seq, high-concurrency application productively absorbs the rest.")
}
