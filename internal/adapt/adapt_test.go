package adapt

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/speedup"
)

// windowFor builds a measurement window consistent with an application
// profile evaluated at the probe design.
func windowFor(t *testing.T, app core.App, cfg chip.Config) WindowStats {
	t.Helper()
	d := chip.Design{N: 4, CoreArea: 4, L1Area: 1, L2Area: 4}
	m := core.Model{Chip: cfg, App: app}
	e, err := m.Evaluate(d)
	if err != nil {
		t.Fatalf("probe evaluate: %v", err)
	}
	return WindowStats{
		Instructions: 100000,
		Accesses:     uint64(100000 * app.Fmem),
		Params:       m.CamatParams(e),
		L1MR:         e.L1MR,
		L2MR:         e.L2MR,
		L1CapKB:      cfg.L1SizeKB(d),
		L2CapKB:      cfg.L2SizeKB(d),
	}
}

func baseApp() core.App {
	app := core.FluidanimateApp()
	app.G = speedup.PowerLaw(0.5)
	app.GOrder = 0.5
	return app
}

func TestWindowValidate(t *testing.T) {
	cfg := chip.DefaultConfig()
	good := windowFor(t, baseApp(), cfg)
	if err := good.Validate(); err != nil {
		t.Fatalf("good window rejected: %v", err)
	}
	bad := good
	bad.Instructions = 0
	if err := bad.Validate(); err == nil {
		t.Error("empty window accepted")
	}
	bad = good
	bad.Accesses = bad.Instructions + 1
	if err := bad.Validate(); err == nil {
		t.Error("accesses > instructions accepted")
	}
	bad = good
	bad.L1CapKB = 0
	if err := bad.Validate(); err == nil {
		t.Error("missing capacity accepted")
	}
	bad = good
	bad.Params.CH = 0.1
	if err := bad.Validate(); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestPhaseDetector(t *testing.T) {
	cfg := chip.DefaultConfig()
	appA := baseApp()
	appB := baseApp().WithConcurrency(8)
	appB.L1Miss.Base *= 6 // very different locality
	wA := windowFor(t, appA, cfg)
	wB := windowFor(t, appB, cfg)

	var pd PhaseDetector
	if !pd.Observe(wA) {
		t.Fatal("first window is not a new phase")
	}
	if pd.Observe(wA) {
		t.Fatal("identical window flagged as phase change")
	}
	if !pd.Observe(wB) {
		t.Fatal("distinct phase not detected")
	}
	if pd.Observe(wB) {
		t.Fatal("stable new phase flagged again")
	}
	if !pd.Observe(wA) {
		t.Fatal("return to phase A not detected")
	}
}

func TestControllerReconfiguresAcrossPhases(t *testing.T) {
	cfg := chip.DefaultConfig()
	appA := baseApp() // cache-friendly phase
	appB := baseApp().WithConcurrency(8)
	appB.L1Miss.Base = 0.4
	appB.L2Miss.Base = 0.8

	ctl := Controller{Chip: cfg, Base: baseApp(), Optimize: core.Options{MaxN: 64}}
	wA := windowFor(t, appA, cfg)
	wB := windowFor(t, appB, cfg)

	// Phase pattern A A B B A A.
	var designs []chip.Design
	for i, w := range []WindowStats{wA, wA, wB, wB, wA, wA} {
		dec, err := ctl.Step(w)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		designs = append(designs, dec.Design)
		if err := cfg.CheckFeasible(dec.Design); err != nil {
			t.Fatalf("step %d: infeasible design: %v", i, err)
		}
	}
	if ctl.Reconfigurations() < 2 {
		t.Fatalf("only %d reconfigurations across 3 phase changes", ctl.Reconfigurations())
	}
	if ctl.Windows() != 6 {
		t.Fatalf("windows = %d", ctl.Windows())
	}
	// Stable windows keep the design.
	if designs[0] != designs[1] || designs[2] != designs[3] {
		t.Fatal("design changed within a stable phase")
	}
	// The two phases get different designs.
	if designs[1] == designs[2] {
		t.Fatal("phase change did not change the design")
	}
}

func TestControllerSuppressesMarginalSwitches(t *testing.T) {
	cfg := chip.DefaultConfig()
	app := baseApp()
	ctl := Controller{Chip: cfg, Base: app, Optimize: core.Options{MaxN: 64}, MinGain: 0.5}
	w := windowFor(t, app, cfg)
	if _, err := ctl.Step(w); err != nil {
		t.Fatalf("step: %v", err)
	}
	// A mildly different phase: detector fires, but the 50% gain bar
	// blocks the switch.
	app2 := app
	app2.L1Miss.Base *= 1.8
	w2 := windowFor(t, app2, cfg)
	dec, err := ctl.Step(w2)
	if err != nil {
		t.Fatalf("step 2: %v", err)
	}
	if dec.Reconfigured {
		t.Fatal("marginal phase change triggered a reconfiguration despite MinGain")
	}
	if ctl.Reconfigurations() != 1 {
		t.Fatalf("reconfigs = %d", ctl.Reconfigurations())
	}
}

func TestControllerRejectsBadWindow(t *testing.T) {
	ctl := Controller{Chip: chip.DefaultConfig(), Base: baseApp()}
	if _, err := ctl.Step(WindowStats{}); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestControllerDerivesProfileFromCounters(t *testing.T) {
	cfg := chip.DefaultConfig()
	app := baseApp().WithConcurrency(6)
	ctl := Controller{Chip: cfg, Base: baseApp(), Optimize: core.Options{MaxN: 32}}
	w := windowFor(t, app, cfg)
	dec, err := ctl.Step(w)
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	// The derived profile must carry the measured concurrency and fmem.
	if dec.App.CH < 5.9 || dec.App.CH > 6.1 {
		t.Fatalf("derived C_H = %v, want ≈6", dec.App.CH)
	}
	wantFmem := float64(w.Accesses) / float64(w.Instructions)
	if dec.App.Fmem != wantFmem {
		t.Fatalf("derived fmem = %v, want %v", dec.App.Fmem, wantFmem)
	}
	if err := dec.App.Validate(); err != nil {
		t.Fatalf("derived profile invalid: %v", err)
	}
}
