// Package adapt implements the online use of C²-Bound the paper
// describes in §IV and §V: applications move between processor-bound and
// memory-bound behaviour phase by phase, so "reconfigurable hardware or
// management software (for scheduling, partitioning and allocating) is
// called for to achieve the dynamic matching between application and
// underlying hardware". A PhaseDetector watches the lightweight HCD/MCD
// counters for drift in the measured C-AMAT parameters; a Controller
// re-solves the analytic optimization whenever a new phase appears and
// emits the reconfiguration decisions.
package adapt

import (
	"fmt"
	"math"

	"repro/internal/camat"
	"repro/internal/chip"
	"repro/internal/core"
)

// WindowStats is what the lightweight counters deliver per measurement
// interval: the C-AMAT parameter set from the detector plus the cache
// miss rates needed to refit the capacity curves.
type WindowStats struct {
	Instructions uint64
	Accesses     uint64
	Params       camat.Params
	L1MR         float64 // at L1CapKB
	L2MR         float64 // at L2CapKB
	L1CapKB      float64
	L2CapKB      float64
}

// Validate checks a window.
func (w WindowStats) Validate() error {
	if w.Instructions == 0 || w.Accesses == 0 {
		return fmt.Errorf("adapt: empty window")
	}
	if w.Accesses > w.Instructions {
		return fmt.Errorf("adapt: %d accesses exceed %d instructions", w.Accesses, w.Instructions)
	}
	if w.L1CapKB <= 0 || w.L2CapKB <= 0 {
		return fmt.Errorf("adapt: missing capacity context")
	}
	return w.Params.Validate()
}

// PhaseDetector flags a phase change when the measured C-AMAT or miss
// rate drifts beyond Threshold (relative) from the current phase's
// reference window.
type PhaseDetector struct {
	// Threshold is the relative drift that opens a new phase (default 0.3).
	Threshold float64

	ref     WindowStats
	started bool
}

// Observe feeds one window; it reports whether a new phase begins (the
// first window always does) and updates the reference on change.
func (pd *PhaseDetector) Observe(w WindowStats) bool {
	th := pd.Threshold
	if th <= 0 {
		th = 0.3
	}
	if !pd.started {
		pd.started = true
		pd.ref = w
		return true
	}
	drift := func(now, ref float64) float64 {
		if ref == 0 { //lint:allow floatguard exact zero guards the division below
			if now == 0 { //lint:allow floatguard exact zero distinguishes 0/0 from x/0
				return 0
			}
			return math.Inf(1)
		}
		return math.Abs(now-ref) / math.Abs(ref)
	}
	changed := drift(w.Params.CAMAT(), pd.ref.Params.CAMAT()) > th ||
		drift(w.L1MR, pd.ref.L1MR) > th ||
		drift(w.Params.Concurrency(), pd.ref.Params.Concurrency()) > th
	if changed {
		pd.ref = w
	}
	return changed
}

// Decision is one controller step's outcome.
type Decision struct {
	Window       int
	PhaseChange  bool
	Reconfigured bool
	Design       chip.Design
	App          core.App // the profile derived for the current phase
}

// Controller turns window measurements into reconfiguration decisions.
// Base supplies the fields counters cannot observe (f_seq, g(N), IC0);
// everything else is refit from each phase's first window.
type Controller struct {
	Chip     chip.Config
	Base     core.App
	Detector PhaseDetector
	Optimize core.Options
	// MinGain suppresses reconfigurations whose predicted improvement is
	// below this relative margin (default 0.02): switching has real cost.
	MinGain float64

	current     chip.Design
	currentTime float64 // predicted time of current design under current phase
	haveDesign  bool
	windows     int
	reconfigs   int
}

// Reconfigurations returns how many times the controller switched designs.
func (c *Controller) Reconfigurations() int { return c.reconfigs }

// Windows returns how many windows the controller has consumed.
func (c *Controller) Windows() int { return c.windows }

// appFromWindow refits the phase profile from measured counters.
func (c *Controller) appFromWindow(w WindowStats) core.App {
	app := c.Base
	app.Fmem = float64(w.Accesses) / float64(w.Instructions)
	app.CH = math.Max(1, w.Params.CH)
	app.CM = math.Max(1, w.Params.CM)
	if w.Params.MR > 0 {
		app.PMRRatio = math.Min(1, w.Params.PMR/w.Params.MR)
	}
	if w.Params.AMP > 0 {
		app.PAMPRatio = w.Params.PAMP / w.Params.AMP
	}
	// Single-point capacity refit: keep the base curve's exponent, move
	// the curve through the measured (capacity, miss rate) point.
	l1 := c.Base.L1Miss
	l1.Base = math.Max(w.L1MR, 1e-5)
	l1.RefKB = w.L1CapKB
	app.L1Miss = l1
	l2 := c.Base.L2Miss
	l2.Base = math.Max(w.L2MR, 1e-5)
	l2.RefKB = w.L2CapKB
	app.L2Miss = l2
	return app
}

// Step consumes one measurement window and returns the decision. The
// returned design is always the controller's current recommendation.
func (c *Controller) Step(w WindowStats) (Decision, error) {
	if err := w.Validate(); err != nil {
		return Decision{}, err
	}
	c.windows++
	dec := Decision{Window: c.windows}

	changed := c.Detector.Observe(w)
	dec.PhaseChange = changed
	app := c.appFromWindow(w)
	dec.App = app
	if !changed && c.haveDesign {
		dec.Design = c.current
		return dec, nil
	}
	m := core.Model{Chip: c.Chip, App: app}
	res, err := m.Optimize(c.Optimize)
	if err != nil {
		return Decision{}, fmt.Errorf("adapt: reoptimize: %w", err)
	}
	minGain := c.MinGain
	if minGain <= 0 {
		minGain = 0.02
	}
	if c.haveDesign {
		// Would the new design beat the current one under the new phase
		// by enough to justify switching?
		curTime := m.TimeAt(c.current)
		if !(res.Eval.Time < curTime*(1-minGain)) {
			dec.Design = c.current
			c.currentTime = curTime
			return dec, nil
		}
	}
	c.current = res.Design
	c.currentTime = res.Eval.Time
	c.haveDesign = true
	c.reconfigs++
	dec.Reconfigured = true
	dec.Design = c.current
	return dec, nil
}
