package robust

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrInjected marks a fault injected by FaultyEvaluator; the retry layer
// treats it like any other transient evaluator failure.
var ErrInjected = errors.New("robust: injected transient fault")

// FaultyEvaluator is a fault-injection harness: it wraps an evaluator and
// makes each call fail, panic or stall with configurable probabilities
// drawn from a seeded RNG. Faults are transient — a retried call redraws —
// so a sweep with retries must converge to exactly the fault-free result,
// which is what the resilience tests assert.
type FaultyEvaluator struct {
	Inner Evaluator
	// PFail, PPanic and PStall are the per-call probabilities of returning
	// ErrInjected, panicking, and sleeping StallFor before evaluating.
	// They are checked in that order against a single uniform draw, so
	// their sum must stay ≤ 1.
	PFail, PPanic, PStall float64
	// StallFor is how long a stalled call sleeps (default 10ms). The stall
	// respects context cancellation.
	StallFor time.Duration

	rng *RNG

	calls, failures, panics, stalls atomic.Int64
}

// NewFaulty builds a harness around inner with a deterministic seed.
func NewFaulty(inner Evaluator, seed uint64) *FaultyEvaluator {
	return &FaultyEvaluator{Inner: inner, StallFor: 10 * time.Millisecond, rng: NewRNG(seed)}
}

// EvaluateCtx implements Evaluator, injecting faults ahead of the inner
// evaluator.
func (f *FaultyEvaluator) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	f.calls.Add(1)
	u := f.rng.Float64()
	switch {
	case u < f.PFail:
		f.failures.Add(1)
		return 0, fmt.Errorf("%w (point %v)", ErrInjected, point)
	case u < f.PFail+f.PPanic:
		f.panics.Add(1)
		panic(fmt.Sprintf("robust: injected panic (point %v)", point))
	case u < f.PFail+f.PPanic+f.PStall:
		f.stalls.Add(1)
		stall := f.StallFor
		if stall <= 0 {
			stall = 10 * time.Millisecond
		}
		if !sleep(ctx, stall) {
			return 0, ctx.Err()
		}
	}
	return f.Inner.EvaluateCtx(ctx, point)
}

// Counts reports how many calls were made and how many faults of each
// kind were injected.
func (f *FaultyEvaluator) Counts() (calls, failures, panics, stalls int64) {
	return f.calls.Load(), f.failures.Load(), f.panics.Load(), f.stalls.Load()
}
