package robust

import (
	"context"
	"errors"
	"time"
)

// RetryPolicy bounds how a transiently failing operation is re-attempted:
// exponential backoff starting at BaseDelay, capped at MaxDelay, with a
// uniform jitter fraction to decorrelate concurrent workers. The zero
// value selects the defaults documented on each field.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 3). A value of 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 1ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 250ms).
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay drawn uniformly at random
	// (default 0.5): delay' = delay × (1 − Jitter + Jitter·U[0,2)).
	Jitter float64
}

// DefaultRetry returns the policy used by the sweep pipeline when the
// caller leaves the zero value.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 250 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetry()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = d.Jitter
	}
	return p
}

// Delay returns the jittered backoff before attempt number `attempt`
// (attempt 1 is the first retry). rng may be nil to disable jitter.
func (p RetryPolicy) Delay(attempt int, rng *RNG) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if rng != nil && p.Jitter > 0 {
		d *= 1 - p.Jitter + p.Jitter*2*rng.Float64()
	}
	return time.Duration(d)
}

// Do runs op until it succeeds, the attempt budget is exhausted, or the
// context is done. It returns the number of attempts made and the last
// error (nil on success). Context errors are never retried: cancellation
// must propagate within one evaluator call.
func (p RetryPolicy) Do(ctx context.Context, rng *RNG, op func(ctx context.Context) error) (int, error) {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return attempt - 1, err
		}
		err = op(ctx)
		if err == nil {
			return attempt, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			return attempt, err
		}
		if attempt >= p.MaxAttempts {
			return attempt, err
		}
		if !sleep(ctx, p.Delay(attempt, rng)) {
			// Cancelled mid-backoff: surface the context error so callers
			// classify this as cancellation, not an evaluation failure.
			return attempt, ctx.Err()
		}
	}
}

// sleep waits for d or until ctx is done, reporting whether the full
// delay elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Budget tracks a wall-clock allowance for a long-running stage; it backs
// the --timeout plumbing of the CLIs and the deadline accounting in sweep
// reports.
type Budget struct {
	start time.Time
	limit time.Duration
}

// StartBudget begins tracking; limit ≤ 0 means unlimited.
func StartBudget(limit time.Duration) *Budget {
	return &Budget{start: time.Now(), limit: limit}
}

// Elapsed returns the wall time consumed so far.
func (b *Budget) Elapsed() time.Duration { return time.Since(b.start) }

// Remaining returns the allowance left, clamped at zero once the budget
// is exceeded. An unlimited budget reports the maximum duration.
func (b *Budget) Remaining() time.Duration {
	if b.limit <= 0 {
		return time.Duration(1<<63 - 1)
	}
	if r := b.limit - b.Elapsed(); r > 0 {
		return r
	}
	return 0
}

// Exceeded reports whether the allowance ran out.
func (b *Budget) Exceeded() bool { return b.limit > 0 && b.Elapsed() >= b.limit }

// Context derives a context that is cancelled when the budget runs out
// (or never, for an unlimited budget).
func (b *Budget) Context(parent context.Context) (context.Context, context.CancelFunc) {
	if b.limit <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithDeadline(parent, b.start.Add(b.limit))
}
