package robust

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRetryDoSucceedsAfterTransients(t *testing.T) {
	rng := NewRNG(1)
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	calls := 0
	attempts, err := p.Do(context.Background(), rng, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if attempts != 3 || calls != 3 {
		t.Fatalf("attempts = %d, calls = %d, want 3", attempts, calls)
	}
}

func TestRetryDoExhaustsBudget(t *testing.T) {
	rng := NewRNG(2)
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	boom := errors.New("always broken")
	attempts, err := p.Do(context.Background(), rng, func(context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the operation's last error", err)
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
}

func TestRetryDoNeverRetriesContextErrors(t *testing.T) {
	rng := NewRNG(3)
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Microsecond}
	calls := 0
	ctx, cancel := context.WithCancel(context.Background())
	attempts, err := p.Do(ctx, rng, func(context.Context) error {
		calls++
		cancel()
		return context.Canceled
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if attempts != 1 || calls != 1 {
		t.Fatalf("context error was retried: attempts=%d calls=%d", attempts, calls)
	}
}

func TestRetryDoCancelDuringBackoff(t *testing.T) {
	rng := NewRNG(4)
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Do(ctx, rng, func(context.Context) error { return errors.New("transient") })
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not return promptly after cancel during backoff")
	}
}

func TestRetryDelayBoundedAndJittered(t *testing.T) {
	rng := NewRNG(5)
	p := DefaultRetry()
	for attempt := 1; attempt < 20; attempt++ {
		d := p.Delay(attempt, rng)
		if d < 0 || d > 2*p.MaxDelay {
			t.Fatalf("delay(%d) = %v outside [0, 2·max]", attempt, d)
		}
	}
	// With zero jitter the schedule is deterministic and capped.
	flat := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Multiplier: 2, Jitter: 0, MaxAttempts: 10}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	for i, w := range want {
		if d := flat.Delay(i+1, rng); d != w {
			t.Fatalf("delay(%d) = %v, want %v", i+1, d, w)
		}
	}
}

func TestGuardIsolatesPanics(t *testing.T) {
	e := Guard(EvaluatorFunc(func(context.Context, []float64) (float64, error) {
		panic("kaboom")
	}))
	v, err := e.EvaluateCtx(context.Background(), nil)
	if !math.IsNaN(v) {
		t.Fatalf("value = %v, want NaN", v)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic not preserved: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("Error() = %q does not mention the panic value", pe.Error())
	}
}

func TestGuardPassesThroughResults(t *testing.T) {
	e := Guard(EvaluatorFunc(func(_ context.Context, p []float64) (float64, error) {
		return p[0] * 2, nil
	}))
	v, err := e.EvaluateCtx(context.Background(), []float64{21})
	if err != nil || v != 42 {
		t.Fatalf("got (%v, %v), want (42, nil)", v, err)
	}
}

func TestFaultyEvaluatorInjectsAtConfiguredRate(t *testing.T) {
	inner := EvaluatorFunc(func(_ context.Context, p []float64) (float64, error) { return p[0], nil })
	f := NewFaulty(inner, 99)
	f.PFail = 0.3
	const n = 5000
	fails := 0
	for i := 0; i < n; i++ {
		_, err := f.EvaluateCtx(context.Background(), []float64{1})
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			fails++
		}
	}
	rate := float64(fails) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("observed failure rate %.3f, want ≈ 0.30", rate)
	}
	calls, failures, panics, stalls := f.Counts()
	if calls != n || failures != int64(fails) || panics != 0 || stalls != 0 {
		t.Fatalf("counts = (%d, %d, %d, %d)", calls, failures, panics, stalls)
	}
}

func TestFaultyEvaluatorPanicsAndGuardComposition(t *testing.T) {
	inner := EvaluatorFunc(func(context.Context, []float64) (float64, error) { return 7, nil })
	f := NewFaulty(inner, 7)
	f.PPanic = 1 // every call panics
	guarded := Guard(f)
	_, err := guarded.EvaluateCtx(context.Background(), nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("guarded faulty evaluator returned %v, want *PanicError", err)
	}
	if _, _, panics, _ := f.Counts(); panics != 1 {
		t.Fatalf("panics = %d, want 1", panics)
	}
}

func TestFaultyEvaluatorStallRespectsContext(t *testing.T) {
	inner := EvaluatorFunc(func(context.Context, []float64) (float64, error) { return 1, nil })
	f := NewFaulty(inner, 11)
	f.PStall = 1
	f.StallFor = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := f.EvaluateCtx(ctx, nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stalled call returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled call ignored cancellation")
	}
}

func TestRNGDeterministicAndConcurrencySafe(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	r := NewRNG(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if f := r.Float64(); f < 0 || f >= 1 {
					t.Errorf("Float64 out of range: %v", f)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestBudgetAccounting(t *testing.T) {
	b := StartBudget(time.Hour)
	if b.Exceeded() {
		t.Fatal("fresh hour budget already exceeded")
	}
	if b.Remaining() <= 0 || b.Remaining() > time.Hour {
		t.Fatalf("Remaining = %v", b.Remaining())
	}
	if b.Elapsed() < 0 {
		t.Fatalf("Elapsed = %v", b.Elapsed())
	}
	tiny := StartBudget(time.Nanosecond)
	time.Sleep(time.Millisecond)
	if !tiny.Exceeded() || tiny.Remaining() != 0 {
		t.Fatalf("nanosecond budget not exhausted: remaining=%v", tiny.Remaining())
	}
	ctx, cancel := tiny.Context(context.Background())
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("exhausted budget's context not done")
	}
}
