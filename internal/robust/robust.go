// Package robust provides the resilience primitives behind the
// long-running exploration pipeline (the §IV design-space sweep and the
// APS flow): bounded retry with exponential backoff and jitter, wall-clock
// budget tracking, a panic-isolating evaluator wrapper, and a seeded
// fault-injection harness used to test all of the above. The package is
// generic — it knows nothing about the design space or the simulator —
// so every layer of the pipeline (dse, aps, sim-backed evaluators) can
// share one policy vocabulary.
package robust

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
)

// Evaluator is a context-aware, fallible design-point evaluator: the
// resilient counterpart of dse.Evaluator. Implementations must be safe
// for concurrent use. A returned error marks a fault (retryable unless it
// wraps the context's error); an infeasible-but-valid configuration
// should instead return +Inf with a nil error so it is scored, not
// retried.
type Evaluator interface {
	EvaluateCtx(ctx context.Context, point []float64) (float64, error)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(ctx context.Context, point []float64) (float64, error)

// EvaluateCtx implements Evaluator.
func (f EvaluatorFunc) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	return f(ctx, point)
}

// PanicError is a recovered evaluator panic, preserved with its stack so
// sweep reports can attribute crashes to individual design points.
type PanicError struct {
	Value interface{}
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("robust: evaluator panicked: %v", e.Value)
}

// Guard wraps an evaluator so that panics during evaluation are isolated
// into a returned *PanicError instead of tearing down the whole sweep.
func Guard(e Evaluator) Evaluator {
	return EvaluatorFunc(func(ctx context.Context, point []float64) (v float64, err error) {
		defer func() {
			if r := recover(); r != nil {
				v = math.NaN()
				err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		return e.EvaluateCtx(ctx, point)
	})
}

// RNG is a splitmix64 generator, safe for concurrent use. It backs the
// jittered backoff delays and the fault-injection draws, keeping both
// deterministic for a fixed seed (up to goroutine scheduling).
type RNG struct {
	mu    sync.Mutex
	state uint64
}

// NewRNG seeds a generator; a zero seed selects a fixed nonzero constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.mu.Lock()
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}
