package aps

import (
	"context"
	"math"
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/dse"
)

func testSetup(t *testing.T, per int) (core.Model, dse.Space, dse.Evaluator) {
	t.Helper()
	m := core.Model{Chip: chip.DefaultConfig(), App: core.FluidanimateApp()}
	space, err := dse.ReducedSpace(m.Chip, per)
	if err != nil {
		t.Fatalf("ReducedSpace: %v", err)
	}
	return m, space, &dse.ModelEvaluator{Model: m}
}

func TestRunBasic(t *testing.T) {
	m, space, eval := testSetup(t, 4)
	res, err := Run(m, space, eval, Options{Optimize: core.Options{MaxN: 64}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Simulations <= 0 {
		t.Fatal("no simulations recorded")
	}
	// Paper flow: only issue×ROB simulated → per² simulations.
	if res.Simulations != 16 {
		t.Fatalf("simulations = %d, want 4² = 16", res.Simulations)
	}
	if res.SpaceSize != space.Size() {
		t.Fatalf("space size = %d", res.SpaceSize)
	}
	if math.IsInf(res.BestValue, 1) {
		t.Fatal("best value infinite")
	}
	if len(res.BestPoint) != 6 {
		t.Fatalf("best point dims = %d", len(res.BestPoint))
	}
	// The snapped coordinates must be feasible.
	p := space.PointAt(res.Snapped)
	d := chip.Design{N: int(p[3] + 0.5), CoreArea: p[0], L1Area: p[1], L2Area: p[2]}
	if err := m.Chip.CheckFeasible(d); err != nil {
		t.Fatalf("snapped point infeasible: %v", err)
	}
}

func TestRunNarrowsSpace(t *testing.T) {
	// The headline claim: APS reduces the explored space by ~4 orders of
	// magnitude (10⁶ → ~10²). On the reduced space the same ratio is
	// size/per⁴.
	m, space, eval := testSetup(t, 4)
	res, err := Run(m, space, eval, Options{Optimize: core.Options{MaxN: 64}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	reduction := float64(res.SpaceSize) / float64(res.Simulations)
	if reduction < 100 {
		t.Fatalf("space reduction only %vx", reduction)
	}
}

func TestRunCloseToGroundTruth(t *testing.T) {
	// On the analytic evaluator, APS's chosen design should be within a
	// modest factor of the global optimum of the full sweep.
	m, space, eval := testSetup(t, 3)
	truth := dse.Sweep(context.Background(), eval, space, 0)
	res, err := Run(m, space, eval, Options{Optimize: core.Options{MaxN: 64}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	relErr, err := RelativeError(res.BestValue, truth)
	if err != nil {
		t.Fatalf("RelativeError: %v", err)
	}
	if relErr < 0 {
		t.Fatalf("APS better than ground truth best: %v", relErr)
	}
	if relErr > 0.5 {
		t.Fatalf("APS error %.3f vs ground truth too large", relErr)
	}
}

func TestRunWithRadius(t *testing.T) {
	m, space, eval := testSetup(t, 3)
	res0, err := Run(m, space, eval, Options{Optimize: core.Options{MaxN: 64}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res1, err := Run(m, space, eval, Options{Radius: 1, Optimize: core.Options{MaxN: 64}})
	if err != nil {
		t.Fatalf("Run radius=1: %v", err)
	}
	if res1.Simulations <= res0.Simulations {
		t.Fatalf("radius did not widen the slice: %d vs %d", res1.Simulations, res0.Simulations)
	}
	if res1.BestValue > res0.BestValue {
		t.Fatalf("wider search found worse design: %v vs %v", res1.BestValue, res0.BestValue)
	}
}

func TestRunRejectsWrongSpace(t *testing.T) {
	m, _, eval := testSetup(t, 3)
	bad, err := dse.NewSpace(dse.Param{Name: "x", Values: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, bad, eval, Options{}); err == nil {
		t.Fatal("space without paper dims accepted")
	}
}

func TestRelativeError(t *testing.T) {
	truth := []float64{5, 3, 4}
	got, err := RelativeError(3.3, truth)
	if err != nil {
		t.Fatalf("RelativeError: %v", err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("rel err = %v, want 0.1", got)
	}
	if _, err := RelativeError(1, []float64{math.Inf(1)}); err == nil {
		t.Error("no finite truth accepted")
	}
	if _, err := RelativeError(1, []float64{0}); err == nil {
		t.Error("zero optimum accepted")
	}
}

func TestANNSearchReachesTarget(t *testing.T) {
	_, space, eval := testSetup(t, 3)
	truth := dse.Sweep(context.Background(), eval, space, 0)
	search := &ANNSearch{
		Space: space, Truth: truth, Seed: 11,
		ChunkSize: 30, Epochs: 200, MaxSims: space.Size(),
	}
	res, err := search.Run(0.10)
	if err != nil {
		t.Fatalf("ANN search failed: %v", err)
	}
	if res.AchievedErr > 0.10 {
		t.Fatalf("achieved error %v above target", res.AchievedErr)
	}
	if res.Simulations <= 0 || res.Simulations > space.Size() {
		t.Fatalf("simulations = %d", res.Simulations)
	}
	if res.Rounds < 1 {
		t.Fatal("no rounds recorded")
	}
}

func TestANNSearchValidation(t *testing.T) {
	_, space, _ := testSetup(t, 3)
	s := &ANNSearch{Space: space, Truth: []float64{1, 2}}
	if _, err := s.Run(0.1); err == nil {
		t.Fatal("truth length mismatch accepted")
	}
	s = &ANNSearch{Space: space, Truth: make([]float64, space.Size())}
	for i := range s.Truth {
		s.Truth[i] = math.Inf(1)
	}
	if _, err := s.Run(0.1); err == nil {
		t.Fatal("all-infinite truth accepted")
	}
}

func TestANNNeedsMoreSimsThanAPS(t *testing.T) {
	// The paper's Fig. 12 relationship on the reduced space: APS's
	// simulation count is below the ANN baseline's at matched error.
	m, space, eval := testSetup(t, 3)
	truth := dse.Sweep(context.Background(), eval, space, 0)
	apsRes, err := Run(m, space, eval, Options{Optimize: core.Options{MaxN: 64}})
	if err != nil {
		t.Fatalf("APS: %v", err)
	}
	apsErr, err := RelativeError(apsRes.BestValue, truth)
	if err != nil {
		t.Fatalf("RelativeError: %v", err)
	}
	target := apsErr
	if target < 0.02 {
		target = 0.02
	}
	search := &ANNSearch{Space: space, Truth: truth, Seed: 5, ChunkSize: 30, Epochs: 200}
	annRes, err := search.Run(target)
	if err != nil {
		t.Logf("ANN did not reach target %v: %v (sims=%d)", target, err, annRes.Simulations)
	}
	if annRes.Simulations <= apsRes.Simulations {
		t.Fatalf("ANN (%d sims) did not need more than APS (%d)", annRes.Simulations, apsRes.Simulations)
	}
}
