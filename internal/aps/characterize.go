package aps

import (
	"context"
	"fmt"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/speedup"
)

// CharacterizeOptions configures the measurement runs of the APS
// characterization step (Fig. 6, lines 1-3).
type CharacterizeOptions struct {
	Workload string
	WSBytes  uint64
	MeanGap  float64
	Refs     int // references per probe run
	Seed     uint64
	Cores    int // probe machine size (default 4)

	// Fseq cannot be observed from single-program traces; it comes from
	// the application's parallel structure (development manual or
	// compiler, per §III-D). Defaults to 0.05.
	Fseq float64
	// GOrder sets the workload's g(N) growth order; when zero it is
	// looked up from the workload name via Table I (tiledmm → 1.5,
	// stencil/fft → 1, everything else → 1).
	GOrder float64
}

// Characterize measures an application profile on the simulated machine,
// exactly as the paper's tool chain does with the Fig. 4 detector: one
// probe run collects fmem, C_H, C_M, pMR/MR and pAMP/AMP from the C-AMAT
// analyzer, and two further runs at different cache capacities fit the
// miss-rate-versus-capacity power law for each level.
func Characterize(opts CharacterizeOptions) (core.App, error) {
	//lint:allow ctxflow deliberate non-ctx convenience wrapper over CharacterizeCtx
	return CharacterizeCtx(context.Background(), opts)
}

// CharacterizeCtx is Characterize with cancellation and observability:
// the context's deadline propagates into each probe simulation, and a
// context-carried tracer records an aps.characterize span with one
// aps.probe child per measurement run.
func CharacterizeCtx(ctx context.Context, opts CharacterizeOptions) (core.App, error) {
	if opts.Workload == "" {
		return core.App{}, fmt.Errorf("aps: characterize needs a workload")
	}
	if opts.WSBytes == 0 {
		opts.WSBytes = 8 << 20
	}
	if opts.Refs <= 0 {
		opts.Refs = 20000
	}
	if opts.Cores <= 0 {
		opts.Cores = 4
	}
	if opts.Fseq == 0 { //lint:allow floatguard exact zero is the unset-field sentinel
		opts.Fseq = 0.05
	}
	if opts.MeanGap <= 0 {
		opts.MeanGap = 2
	}

	tr := obs.TracerFrom(ctx)
	ctx, charSp := tr.Start(ctx, "aps.characterize", obs.S("workload", opts.Workload))
	defer charSp.Finish()

	run := func(l1KB, l2KB int) (*sim.Result, error) {
		cfg := sim.DefaultConfig(opts.Cores)
		cfg.L1.SizeKB = l1KB
		cfg.L2.SizeKB = l2KB
		probeCtx, probeSp := tr.Start(ctx, "aps.probe",
			obs.I("l1_kb", int64(l1KB)), obs.I("l2_kb", int64(l2KB)))
		res, err := sim.RunWorkloadCtx(probeCtx, cfg, opts.Workload, opts.WSBytes, opts.MeanGap, opts.Refs, opts.Seed)
		if err != nil {
			probeSp.Annotate(obs.S("error", err.Error()))
		}
		probeSp.Finish()
		return res, err
	}

	// Probe 1: reference configuration; source of the concurrency and
	// frequency parameters.
	base, err := run(32, 2048)
	if err != nil {
		return core.App{}, fmt.Errorf("aps: characterization probe: %w", err)
	}
	p := base.L1Params
	app := core.App{
		Name: opts.Workload,
		Fseq: opts.Fseq,
		Fmem: float64(base.MemAccesses) / float64(base.Instructions),
		// The detector cannot see compute overlap; a conservative zero
		// keeps the model pessimistic.
		Overlap: 0,
		CH:      maxf(1, p.CH),
		CM:      maxf(1, p.CM),
		IC0:     float64(base.Instructions),
	}
	if p.MR > 0 {
		app.PMRRatio = clamp01(p.PMR / p.MR)
	} else {
		app.PMRRatio = 1
	}
	if p.AMP > 0 {
		app.PAMPRatio = p.PAMP / p.AMP
	} else {
		app.PAMPRatio = 1
	}

	// Probes 2-3: refit the capacity curves. L1 at 8 KB vs the base
	// 32 KB; L2 at 256 KB vs the base 2 MB.
	smallL1, err := run(8, 2048)
	if err != nil {
		return core.App{}, fmt.Errorf("aps: L1 capacity probe: %w", err)
	}
	smallL2, err := run(32, 256)
	if err != nil {
		return core.App{}, fmt.Errorf("aps: L2 capacity probe: %w", err)
	}
	app.L1Miss = fitOrFlat(8, smallL1.L1Params.MR, 32, base.L1Params.MR)
	app.L2Miss = fitOrFlat(256, smallL2.L2Stats.MissRate(), 2048, base.L2Stats.MissRate())

	order := opts.GOrder
	if order == 0 { //lint:allow floatguard exact zero is the unset-field sentinel
		order = defaultGOrder(opts.Workload)
	}
	app.G = speedup.PowerLaw(order)
	app.GOrder = order

	if err := app.Validate(); err != nil {
		return core.App{}, fmt.Errorf("aps: characterized profile invalid: %w", err)
	}
	return app, nil
}

// fitOrFlat fits the power-law curve through two measured points, falling
// back to a flat curve at the base measurement when the fit is degenerate
// (equal or non-monotone miss rates, e.g. a working set far larger than
// both capacities).
func fitOrFlat(size1 float64, mr1 float64, size2 float64, mr2 float64) chip.MissRateCurve {
	if mr1 <= 0 {
		mr1 = 1e-4
	}
	if mr2 <= 0 {
		mr2 = 1e-4
	}
	curve, err := chip.FitMissRate(size1, mr1, size2, mr2)
	if err != nil {
		return chip.MissRateCurve{Base: mr2, RefKB: size2, Alpha: 0, Floor: 0}
	}
	curve.Floor = mr2 / 50
	return curve
}

// defaultGOrder maps workload names onto their Table I scaling orders.
func defaultGOrder(workload string) float64 {
	switch workload {
	case "tiledmm":
		return 1.5
	case "fluidanimate":
		return 1.2
	case "pchase", "random":
		return 0.5
	default: // stencil, stream, fft: linear-class workloads
		return 1
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
