package aps

import (
	"context"
	"fmt"

	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/obs"
)

// ModelOptions tunes a family-generic grid optimization.
type ModelOptions struct {
	// Engine is the shared evaluation service; nil builds a private one.
	// Runs against a shared engine reuse every memoized point keyed by
	// the family-qualified fingerprint.
	Engine *engine.Engine
	// Per subsamples the family's default grids to at most this many
	// values per dimension (≤ 0: full grids).
	Per int
	// Workers bounds sweep parallelism (≤0: GOMAXPROCS). Ignored when
	// Engine is set.
	Workers int
	// Sweep tunes resilience: retry policy, timeout, checkpointing.
	Sweep dse.SweepOptions
}

// ModelResult is the outcome of a family-generic grid optimization.
type ModelResult struct {
	Space     dse.Space
	BestIdx   int
	BestPoint []float64
	BestValue float64
	SpaceSize int
	// Report is the resilience accounting of the sweep.
	Report dse.SweepReport
	// Engine is the engine counter delta across this run.
	Engine engine.Stats
}

// RunModel optimizes any registered model family over its declared
// design space. It is the family-generic sibling of Run: the C²-Bound
// family keeps the full APS flow (analytic KKT solve plus simulated
// slice) because only it carries the analytic machinery; every family
// gets the engine-batched exhaustive grid scan this entry point runs.
func RunModel(m model.Model, opts ModelOptions) (ModelResult, error) {
	//lint:allow ctxflow deliberate non-ctx convenience wrapper over RunModelCtx
	return RunModelCtx(context.Background(), m, opts)
}

// RunModelCtx is RunModel with cancellation and resilience. The whole
// grid rides the engine's batched path through the family's compiled
// kernel; a repeated run on a shared engine re-reads the scan from
// cache.
func RunModelCtx(ctx context.Context, m model.Model, opts ModelOptions) (ModelResult, error) {
	space, err := dse.SpaceFor(m, opts.Per)
	if err != nil {
		return ModelResult{}, err
	}

	tr := obs.TracerFrom(ctx)
	obs.MetricsFrom(ctx).Counter("aps_model_runs_total").Add(1)
	ctx, runSp := tr.Start(ctx, "aps.run-model", obs.I("space_size", int64(space.Size())))
	defer runSp.Finish()

	eng := opts.Engine
	if eng == nil {
		eng = engine.New(engine.Options{
			Workers:      opts.Workers,
			Retry:        opts.Sweep.Retry,
			Tracer:       tr,
			Metrics:      obs.MetricsFrom(ctx),
			DisableBatch: opts.Sweep.DisableBatch,
		})
	}
	stats0 := eng.Stats()

	sweepOpts := opts.Sweep
	if sweepOpts.Workers == 0 {
		sweepOpts.Workers = opts.Workers
	}
	sweepOpts.Engine = eng
	values, report, sweepErr := dse.SweepCtx(ctx, dse.NewFamilyEvaluator(m), space, nil, sweepOpts)
	bestIdx, bestVal := dse.Best(values)
	res := ModelResult{
		Space:     space,
		BestIdx:   bestIdx,
		SpaceSize: space.Size(),
		Report:    report,
		Engine:    eng.Stats().Delta(stats0),
	}
	if bestIdx >= 0 {
		res.BestPoint = space.Point(bestIdx)
		res.BestValue = bestVal
	}
	if sweepErr != nil {
		return res, fmt.Errorf("aps: model grid scan interrupted (%d/%d evaluated): %w",
			len(report.Completed), report.Total, sweepErr)
	}
	if bestIdx < 0 {
		return res, fmt.Errorf("aps: no feasible configuration for %s", m.Fingerprint())
	}
	return res, nil
}
