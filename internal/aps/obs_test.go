package aps

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/obs"
)

// TestEngineMetricsBitExact runs APS twice on one instrumented engine (a
// cold pass and a warm, cache-served pass) and demands that every engine
// counter mirrored into the metrics registry equals the corresponding
// engine.Stats field exactly — the dual-increment sites must never
// drift.
func TestEngineMetricsBitExact(t *testing.T) {
	m := core.Model{Chip: chip.DefaultConfig(), App: core.FluidanimateApp()}
	space, err := dse.ReducedSpace(m.Chip, 3)
	if err != nil {
		t.Fatalf("ReducedSpace: %v", err)
	}

	tr := obs.NewTracer(1 << 13)
	reg := obs.NewRegistry()
	eng := engine.New(engine.Options{Workers: 2, Tracer: tr, Metrics: reg})
	ctx := obs.ContextWithMetrics(obs.ContextWithTracer(context.Background(), tr), reg)

	eval := &dse.ModelEvaluator{Model: m}
	opts := Options{Engine: eng, Optimize: core.Options{MaxN: 64}}
	if _, err := RunCtx(ctx, m, space, eval, opts); err != nil {
		t.Fatalf("cold APS run: %v", err)
	}
	warm, err := RunCtx(ctx, m, space, eval, opts)
	if err != nil {
		t.Fatalf("warm APS run: %v", err)
	}
	if warm.Engine.CacheHits == 0 {
		t.Fatalf("warm run hit the cache 0 times: %+v", warm.Engine)
	}

	st := eng.Stats()
	for _, c := range []struct {
		metric string
		want   uint64
	}{
		{"engine_requests_total", st.Requests},
		{"engine_evaluations_total", st.Evaluations},
		{"engine_cache_hits_total", st.CacheHits},
		{"engine_cache_misses_total", st.CacheMisses},
		{"engine_dedups_total", st.Dedups},
		{"engine_panics_total", st.Panics},
		{"engine_retries_total", st.Retries},
		{"engine_failures_total", st.Failures},
		{"engine_evictions_total", st.Evictions},
	} {
		if got := reg.Counter(c.metric).Value(); got != c.want {
			t.Errorf("%s = %d, engine.Stats says %d", c.metric, got, c.want)
		}
	}
	if got := reg.Gauge("engine_inflight").Value(); got != 0 {
		t.Errorf("engine_inflight = %d after the runs, want 0", got)
	}
	if got := reg.Histogram("engine_eval_seconds", nil).Count(); got != st.Evaluations {
		t.Errorf("engine_eval_seconds count = %d, want every raw evaluation (%d)", got, st.Evaluations)
	}

	// The staged spans must be present and the export loadable.
	names := map[string]int{}
	for _, sp := range tr.Snapshot() {
		names[sp.Name]++
	}
	for _, want := range []string{"aps.run", "aps.optimize", "aps.grid-snap", "aps.slice", "dse.sweep", "dse.batch", "engine.eval"} {
		if names[want] == 0 {
			t.Errorf("missing span %q (have %v)", want, names)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not load: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace export")
	}
}
