package aps

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
)

func testModelWithApp(app core.App) core.Model {
	return core.Model{Chip: chip.DefaultConfig(), App: app}
}

func optimizeOpts() core.Options { return core.Options{MaxN: 64} }

func TestCharacterizeFluidanimate(t *testing.T) {
	app, err := Characterize(CharacterizeOptions{
		Workload: "fluidanimate", WSBytes: 4 << 20, Refs: 8000, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	if err := app.Validate(); err != nil {
		t.Fatalf("profile invalid: %v", err)
	}
	// fmem must reflect the generator's mean gap of 2: ≈ 1/3.
	if app.Fmem < 0.2 || app.Fmem > 0.5 {
		t.Fatalf("fmem = %v, want ≈ 1/3", app.Fmem)
	}
	// Concurrency parameters must show real overlap on this machine.
	if app.CM <= 1 {
		t.Fatalf("C_M = %v, want > 1 (MSHRs provide MLP)", app.CM)
	}
	// Miss rate curves must be monotone nonincreasing in capacity.
	if app.L1Miss.At(8) < app.L1Miss.At(64) {
		t.Fatalf("L1 curve not decreasing: %v vs %v", app.L1Miss.At(8), app.L1Miss.At(64))
	}
	if app.GOrder != 1.2 {
		t.Fatalf("fluidanimate g order = %v", app.GOrder)
	}
}

func TestCharacterizeDefaultsAndErrors(t *testing.T) {
	if _, err := Characterize(CharacterizeOptions{}); err == nil {
		t.Fatal("missing workload accepted")
	}
	if _, err := Characterize(CharacterizeOptions{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	// Defaults fill: tiny refs still work.
	app, err := Characterize(CharacterizeOptions{Workload: "stencil", Refs: 2000, WSBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Characterize stencil: %v", err)
	}
	if app.Fseq != 0.05 {
		t.Fatalf("default fseq = %v", app.Fseq)
	}
	if app.GOrder != 1 {
		t.Fatalf("stencil g order = %v", app.GOrder)
	}
}

func TestCharacterizeGOrderOverride(t *testing.T) {
	app, err := Characterize(CharacterizeOptions{
		Workload: "stream", Refs: 2000, WSBytes: 1 << 20, GOrder: 0.7, Fseq: 0.2,
	})
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	if app.GOrder != 0.7 || app.Fseq != 0.2 {
		t.Fatalf("overrides not applied: %v %v", app.GOrder, app.Fseq)
	}
}

func TestCharacterizedProfileDrivesOptimization(t *testing.T) {
	// End-to-end: the measured profile must be directly usable by the
	// C²-Bound optimizer.
	app, err := Characterize(CharacterizeOptions{
		Workload: "tiledmm", WSBytes: 2 << 20, Refs: 6000, Seed: 5,
	})
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	m := testModelWithApp(app)
	res, err := m.Optimize(optimizeOpts())
	if err != nil {
		t.Fatalf("Optimize on measured profile: %v", err)
	}
	if res.Design.N < 1 {
		t.Fatalf("degenerate design %v", res.Design)
	}
}

func TestDefaultGOrders(t *testing.T) {
	cases := map[string]float64{
		"tiledmm": 1.5, "fluidanimate": 1.2, "pchase": 0.5,
		"random": 0.5, "stencil": 1, "stream": 1, "fft": 1,
	}
	for w, want := range cases {
		if got := defaultGOrder(w); got != want {
			t.Errorf("defaultGOrder(%s) = %v, want %v", w, got, want)
		}
	}
}

func TestFitOrFlatFallback(t *testing.T) {
	// Equal miss rates (working set ≫ both capacities): flat curve.
	c := fitOrFlat(8, 0.9, 32, 0.9)
	if c.Alpha != 0 {
		t.Fatalf("flat fallback alpha = %v", c.Alpha)
	}
	if c.At(1000) != 0.9 {
		t.Fatalf("flat curve At = %v", c.At(1000))
	}
	// Proper fit.
	c = fitOrFlat(8, 0.4, 32, 0.2)
	if c.Alpha <= 0 {
		t.Fatalf("fit alpha = %v", c.Alpha)
	}
	// Zero rates are floored rather than rejected.
	c = fitOrFlat(8, 0, 32, 0)
	if c.At(16) <= 0 {
		t.Fatal("zero-rate fallback broken")
	}
}
