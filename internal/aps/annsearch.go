package aps

import (
	"fmt"
	"math"

	"repro/internal/ann"
	"repro/internal/dse"
)

// ANNSearch reproduces the predictive-modelling DSE baseline (Ïpek et
// al., the paper's reference [2]): train a neural network on a growing
// sample of simulated configurations, predict the whole space, simulate
// the predicted best, and stop when the achieved design is within
// targetErr of the true optimum. It returns the total number of
// simulations spent (training samples plus probe simulations), which the
// paper reports as 613 for fluidanimate at APS's 5.96% accuracy.
type ANNSearch struct {
	Space dse.Space
	Eval  dse.Evaluator
	// Truth is the ground-truth value per flat index (from a full sweep);
	// it is used only to *score* candidate designs, never to guide the
	// search.
	Truth []float64

	Seed      uint64
	ChunkSize int // samples added per round (default 25)
	MaxSims   int // give-up budget (default space size)
	Hidden    int // network width (default 16)
	Epochs    int // training epochs per round (default 400)
	Workers   int
}

// ANNResult reports the baseline's outcome.
type ANNResult struct {
	Simulations int     // total simulator invocations
	AchievedErr float64 // relative error of the final chosen design
	BestIdx     int
	Rounds      int
}

// Run executes the search until the target error is reached or the
// budget is exhausted (in which case it returns the best achieved state
// together with an error).
func (s *ANNSearch) Run(targetErr float64) (ANNResult, error) {
	size := s.Space.Size()
	if size == 0 || len(s.Truth) != size {
		return ANNResult{}, fmt.Errorf("aps: ANN search needs ground truth for all %d points", size)
	}
	if s.ChunkSize <= 0 {
		s.ChunkSize = 25
	}
	if s.MaxSims <= 0 {
		s.MaxSims = size
	}
	if s.Hidden <= 0 {
		s.Hidden = 16
	}
	if s.Epochs <= 0 {
		s.Epochs = 400
	}
	_, trueBest := dse.Best(s.Truth)
	if math.IsInf(trueBest, 1) {
		return ANNResult{}, fmt.Errorf("aps: ground truth has no finite optimum")
	}

	rng := s.Seed*0x9e3779b97f4a7c15 + 0xdeadbeef
	next := func(n uint64) uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return (z ^ (z >> 31)) % n
	}

	sampled := map[int]bool{}
	var X [][]float64
	var y []float64
	sims := 0
	// With a nil evaluator the search replays the ground-truth values —
	// the common case when a full sweep already ran and re-simulating
	// sampled points would waste time. Simulation *counting* is identical.
	simulate := func(idx int) float64 {
		sims++
		if s.Eval != nil {
			//lint:allow enginepath the ANN baseline meters raw simulator invocations; memoization would distort the paper's Fig. 12 budget comparison
			return s.Eval.Evaluate(s.Space.Point(idx))
		}
		return s.Truth[idx]
	}

	res := ANNResult{BestIdx: -1, AchievedErr: math.Inf(1)}
	for round := 1; sims+s.ChunkSize <= s.MaxSims; round++ {
		// Draw a fresh deterministic sample chunk.
		for added := 0; added < s.ChunkSize && len(sampled) < size; {
			idx := int(next(uint64(size)))
			if sampled[idx] {
				continue
			}
			sampled[idx] = true
			v := simulate(idx)
			if math.IsInf(v, 1) {
				continue // infeasible points are not trainable
			}
			X = append(X, s.Space.Point(idx))
			y = append(y, v)
			added++
		}
		if len(X) < 4 {
			continue
		}
		net, err := ann.New(ann.Config{
			Inputs: s.Space.Dims(), Hidden: s.Hidden, Epochs: s.Epochs,
			Seed: s.Seed + uint64(round),
		})
		if err != nil {
			return res, err
		}
		if err := net.Train(X, y); err != nil {
			return res, err
		}
		// Predict the whole space, simulate the predicted best.
		bestIdx := -1
		bestPred := math.Inf(1)
		for idx := 0; idx < size; idx++ {
			p, err := net.Predict(s.Space.Point(idx))
			if err != nil {
				return res, err
			}
			if p < bestPred {
				bestPred = p
				bestIdx = idx
			}
		}
		achieved := simulate(bestIdx)
		relErr := (achieved - trueBest) / trueBest
		if relErr < res.AchievedErr {
			res.AchievedErr = relErr
			res.BestIdx = bestIdx
		}
		res.Rounds = round
		res.Simulations = sims
		if res.AchievedErr <= targetErr {
			return res, nil
		}
	}
	return res, fmt.Errorf("aps: ANN search exhausted %d simulations at error %.4g (target %.4g)",
		res.Simulations, res.AchievedErr, targetErr)
}
