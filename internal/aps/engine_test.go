package aps

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
)

// TestWarmEngineReusesSweepResults is the acceptance criterion of the
// engine refactor: an APS run on an engine pre-warmed by a full
// ground-truth sweep of the same space must spend strictly fewer raw
// evaluations than a cold run, serve its simulated slice entirely from
// cache, and still report the bit-identical optimum.
func TestWarmEngineReusesSweepResults(t *testing.T) {
	m, space, _ := testSetup(t, 3)
	// ModelEvaluator implements CtxEvaluator and Fingerprinter directly,
	// so the sweep and the APS slice memoize under one key space.
	eval := &dse.ModelEvaluator{Model: m}
	ctx := context.Background()
	opts := Options{Optimize: core.Options{MaxN: 64}}

	// Cold: fresh engine, nothing cached.
	opts.Engine = engine.New(engine.Options{})
	cold, err := RunCtx(ctx, m, space, eval, opts)
	if err != nil {
		t.Fatalf("cold RunCtx: %v", err)
	}
	// The analytic phases memoize within the run, but no slice point can
	// be served from cache on a fresh engine.
	if cold.Report.CacheHits != 0 {
		t.Fatalf("cold sweep hit the cache %d times", cold.Report.CacheHits)
	}
	if cold.Simulations != 9 {
		t.Fatalf("cold simulations = %d, want 3² = 9", cold.Simulations)
	}

	// Warm: fresh engine, full sweep first, then APS on the same engine.
	warmEng := engine.New(engine.Options{})
	all := make([]int, space.Size())
	for i := range all {
		all[i] = i
	}
	if _, _, err := dse.SweepCtx(ctx, eval, space, all, dse.SweepOptions{Engine: warmEng}); err != nil {
		t.Fatalf("priming sweep: %v", err)
	}
	opts.Engine = warmEng
	warm, err := RunCtx(ctx, m, space, eval, opts)
	if err != nil {
		t.Fatalf("warm RunCtx: %v", err)
	}

	// Strictly fewer raw evaluations: the slice is served from cache, the
	// analytic phases cost the same either way.
	if warm.Engine.Evaluations >= cold.Engine.Evaluations {
		t.Fatalf("warm run spent %d raw evaluations, cold spent %d",
			warm.Engine.Evaluations, cold.Engine.Evaluations)
	}
	if warm.Engine.CacheHits == 0 {
		t.Fatal("warm run recorded no cache hits")
	}
	if warm.Simulations != 0 {
		t.Fatalf("warm run claims %d fresh simulations, want 0", warm.Simulations)
	}
	// Bit-identical optimum: cache reuse must not perturb the result.
	if warm.BestIdx != cold.BestIdx {
		t.Fatalf("best index diverged: warm %d vs cold %d", warm.BestIdx, cold.BestIdx)
	}
	if math.Float64bits(warm.BestValue) != math.Float64bits(cold.BestValue) {
		t.Fatalf("best value diverged: warm %x vs cold %x", warm.BestValue, cold.BestValue)
	}
}

// TestPrivateEngineSharesCacheWithinRun checks the nil-Engine path: the
// run-private engine still memoizes, so the optimizer's repeated probes
// of one design are deduplicated within a single APS invocation.
func TestPrivateEngineSharesCacheWithinRun(t *testing.T) {
	m, space, _ := testSetup(t, 3)
	eval := &dse.ModelEvaluator{Model: m}
	res, err := RunCtx(context.Background(), m, space, eval, Options{Optimize: core.Options{MaxN: 64}})
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if res.Engine.Requests == 0 || res.Engine.Evaluations == 0 {
		t.Fatalf("engine stats empty: %+v", res.Engine)
	}
	if res.Engine.CacheHits == 0 {
		t.Fatalf("optimizer probes never hit the run-private cache: %+v", res.Engine)
	}
}
