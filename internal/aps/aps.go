// Package aps implements the paper's Analysis-Plus-Simulation algorithm
// (Fig. 6): characterize the application, solve the C²-Bound analytic
// optimization for the fundamental parameters (A0, A1, A2, N), then
// simulate only the small remaining slice of the design space (issue
// width × ROB, optionally a ±radius neighborhood of the analytic point)
// to fix the microarchitectural parameters. It also hosts the ANN
// search baseline (Ïpek et al.) the paper compares simulation budgets
// against.
package aps

import (
	"context"
	"fmt"
	"math"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Metric selects the analytic objective used to pick the grid point —
// it must match what the simulator-side Evaluator measures, because both
// phases optimize the same quantity.
type Metric int

const (
	// MetricTime minimizes execution time of a fixed workload: the metric
	// of the paper's fluidanimate DSE validation, where the benchmark's
	// instruction count does not change with the configuration. This is
	// what dse.SimEvaluator measures.
	MetricTime Metric = iota
	// MetricTimePerWork minimizes T/W, i.e. maximizes throughput W/T with
	// the problem size scaled by g(N) — the paper's case-I objective. Use
	// it with an Evaluator that divides simulated time by scaled work.
	MetricTimePerWork
)

// Options tunes the APS run.
type Options struct {
	// Engine is the shared evaluation service. The analytic optimizer,
	// the grid snap and the simulated slice all route through it, so an
	// APS run following a ground-truth sweep on the same engine reuses
	// every overlapping simulation from the cache (Fig. 6's
	// neighborhoods overlap prior sweeps by construction). Nil builds a
	// private engine for this run — the optimizer and the slice still
	// share one cache within the run.
	Engine *engine.Engine
	// Radius widens the simulated neighborhood around the analytic
	// solution in the A0/A1/A2/N dimensions; 0 reproduces the paper's
	// flow (only issue width and ROB are swept, 10×10 = 100 simulations).
	Radius int
	// Workers bounds sweep parallelism (≤0: GOMAXPROCS). Ignored when
	// Engine is set (the engine's pool wins).
	Workers int
	// Metric is the optimization target shared by the analytic and
	// simulated phases (default MetricTime).
	Metric Metric
	// Optimize forwards bounds to the analytic optimizer.
	Optimize core.Options
	// Sweep tunes the resilience of the simulated phase: retry policy,
	// overall timeout, and checkpoint/resume of the slice sweep. Its
	// Workers field defaults to Options.Workers when zero.
	Sweep dse.SweepOptions
}

// Result is the APS outcome.
type Result struct {
	Analytic  core.Result // the analytic solution before snapping
	Snapped   []int       // grid coordinates of the snapped analytic point
	BestIdx   int         // flat index of the best simulated configuration
	BestPoint []float64
	BestValue float64
	// Simulations is the number of fresh simulator invocations APS spent
	// — the quantity Fig. 12 compares (≈10² vs 613 vs 10⁶). Slice points
	// served from the engine's cache or restored from a checkpoint do not
	// count: they cost no simulation.
	Simulations int
	// AnalyticPoints counts analytic-model evaluations during the grid
	// optimization; these are microseconds each, not simulations.
	AnalyticPoints int
	SpaceSize      int
	// Report is the resilience accounting of the simulated phase:
	// completed/failed/pending indices, retries, cache hits and wall
	// time.
	Report dse.SweepReport
	// Engine is the engine's counter delta across this run: raw
	// evaluations, cache hits, retries, panics and evaluator wall time.
	// (On a shared engine with concurrent users the delta includes their
	// traffic too.)
	Engine engine.Stats
}

// Run executes APS for the model over the given space using eval as the
// simulator. The space must carry the six paper dimensions (dse.DimA0 …
// dse.DimROB).
func Run(m core.Model, space dse.Space, eval dse.Evaluator, opts Options) (Result, error) {
	//lint:allow ctxflow deliberate non-ctx convenience wrapper over RunCtx
	return RunCtx(context.Background(), m, space, dse.WithContext(eval), opts)
}

// RunCtx executes APS with cancellation and resilience: the context's
// cancellation or deadline propagates into the analytic grid scan and
// every simulator invocation, failing evaluations are retried per
// opts.Sweep.Retry, and the simulated phase can checkpoint and resume.
func RunCtx(ctx context.Context, m core.Model, space dse.Space, eval dse.CtxEvaluator, opts Options) (Result, error) {
	dims := make(map[string]int, 6)
	for _, name := range []string{dse.DimA0, dse.DimA1, dse.DimA2, dse.DimN, dse.DimIssue, dse.DimROB} {
		d, err := space.DimIndex(name)
		if err != nil {
			return Result{}, err
		}
		dims[name] = d
	}

	tr := obs.TracerFrom(ctx)
	obs.MetricsFrom(ctx).Counter("aps_runs_total").Add(1)
	ctx, runSp := tr.Start(ctx, "aps.run",
		obs.I("space_size", int64(space.Size())), obs.I("radius", int64(opts.Radius)))
	defer runSp.Finish()

	// One engine serves the whole run: the analytic optimizer's probes,
	// the grid snap and the simulated slice share its cache and pool. A
	// private engine inherits the context's observability.
	eng := opts.Engine
	if eng == nil {
		eng = engine.New(engine.Options{
			Workers:      opts.Workers,
			Retry:        opts.Sweep.Retry,
			Tracer:       tr,
			Metrics:      obs.MetricsFrom(ctx),
			DisableBatch: opts.Sweep.DisableBatch,
		})
	}
	stats0 := eng.Stats()

	// Step 1+2: analytic optimization (characterization is assumed done:
	// the model's App already carries measured parameters). The
	// unconstrained solve is kept for reporting; the snap onto the grid
	// re-optimizes the analytic objective over the representable
	// (A0, A1, A2, N) combinations — still pure analysis, zero
	// simulations — because the continuous optimum may sit between grid
	// values (especially its tight area constraint).
	optOpts := opts.Optimize
	optOpts.Engine = eng
	optCtx, optSp := tr.Start(ctx, "aps.optimize")
	analytic, err := m.OptimizeCtx(optCtx, optOpts)
	optSp.Finish()
	if err != nil {
		return Result{}, err
	}
	snapCtx, snapSp := tr.Start(ctx, "aps.grid-snap")
	center, analyticPoints, err := gridOptimum(snapCtx, m, eng, space, dims, opts.Metric)
	snapSp.Annotate(obs.I("analytic_points", int64(analyticPoints)))
	snapSp.Finish()
	if err != nil {
		return Result{}, err
	}

	// Step 4: simulate the remaining microarchitectural slice: the full
	// issue×ROB plane at the analytic point and, when Radius > 0, at each
	// neighbouring (A0, A1, A2, N) grid point as well.
	microDims := []int{dims[dse.DimIssue], dims[dse.DimROB]}
	fullRange := len(space.Params[microDims[0]].Values) + len(space.Params[microDims[1]].Values)
	areaCenters := [][]int{center}
	if opts.Radius > 0 {
		areaDims := []int{dims[dse.DimA0], dims[dse.DimA1], dims[dse.DimA2], dims[dse.DimN]}
		areaCenters = nil
		for _, idx := range space.Neighborhood(center, opts.Radius, areaDims) {
			areaCenters = append(areaCenters, space.Coords(idx))
		}
	}
	seen := map[int]bool{}
	var indices []int
	for _, c := range areaCenters {
		for _, idx := range space.Neighborhood(c, fullRange, microDims) {
			if !seen[idx] {
				seen[idx] = true
				indices = append(indices, idx)
			}
		}
	}
	sweepOpts := opts.Sweep
	if sweepOpts.Workers == 0 {
		sweepOpts.Workers = opts.Workers
	}
	sweepOpts.Engine = eng
	sliceCtx, sliceSp := tr.Start(ctx, "aps.slice", obs.I("indices", int64(len(indices))))
	values, report, sweepErr := dse.SweepCtx(sliceCtx, eval, space, indices, sweepOpts)
	sliceSp.Finish()
	bestIdx, bestVal := dse.Best(values)
	res := Result{
		Analytic:       analytic,
		Snapped:        center,
		BestIdx:        bestIdx,
		AnalyticPoints: analyticPoints,
		Simulations:    len(report.Completed) - report.Resumed - report.CacheHits + len(report.Failed),
		SpaceSize:      space.Size(),
		Report:         report,
		Engine:         eng.Stats().Delta(stats0),
	}
	if bestIdx >= 0 {
		res.BestPoint = space.Point(bestIdx)
		res.BestValue = bestVal
	}
	if sweepErr != nil {
		return res, fmt.Errorf("aps: simulated slice interrupted (%d/%d evaluated): %w",
			len(report.Completed), report.Total, sweepErr)
	}
	if bestIdx < 0 {
		return res, fmt.Errorf("aps: no feasible configuration in the simulated slice")
	}
	return res, nil
}

// gridOptimum scans the representable (A0, A1, A2, N) grid combinations
// with the *analytic* objective (no simulation) and returns the best
// feasible coordinates, with the issue/ROB dimensions left at zero for
// the subsequent simulated slice. The whole grid is submitted as one
// flat plane on the engine's batched path under a metric-specific
// fingerprint (the batch kernel is the compiled model, bit-identical to
// the scalar probe, so a repeated APS run on a shared engine re-reads
// the whole scan from cache regardless of which path filled it).
// Infeasible grid points score +Inf (a cacheable value, excluded from
// the analytic-point count).
func gridOptimum(ctx context.Context, m core.Model, eng *engine.Engine, space dse.Space, dims map[string]int, metric Metric) ([]int, int, error) {
	dA0, dA1, dA2, dN := dims[dse.DimA0], dims[dse.DimA1], dims[dse.DimA2], dims[dse.DimN]
	scalar := func(_ context.Context, p []float64) (float64, error) {
		e, err := m.Evaluate(chip.Design{N: int(p[3] + 0.5), CoreArea: p[0], L1Area: p[1], L2Area: p[2]})
		if err != nil {
			return math.Inf(1), nil
		}
		if metric == MetricTimePerWork {
			return e.Time / e.Work, nil
		}
		return e.Time, nil
	}
	score := engine.BatchFunc{
		Func: engine.Func{
			FP: fmt.Sprintf("aps.gridScore{metric=%d %s}", metric, m.Fingerprint()),
			F:  scalar,
		},
		B: func(ctx context.Context, pts [][]float64, out []float64) error {
			compiled, err := m.Compile()
			if err != nil {
				// Invalid profile: keep the scalar semantics per point.
				for i, p := range pts {
					out[i], _ = scalar(ctx, p)
				}
				return nil
			}
			for i, p := range pts {
				if i&255 == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				t, w, ok := compiled.TimeWorkAt(chip.Design{N: int(p[3] + 0.5), CoreArea: p[0], L1Area: p[1], L2Area: p[2]})
				switch {
				case !ok:
					out[i] = math.Inf(1)
				case metric == MetricTimePerWork:
					out[i] = t / w
				default:
					out[i] = t
				}
			}
			return nil
		},
	}

	// Enumerate the (A0, A1, A2, N) combinations in the same nesting
	// order as the scalar scan (first-encountered wins score ties), as a
	// flat plane for one batched submission.
	nCombos := len(space.Params[dA0].Values) * len(space.Params[dA1].Values) *
		len(space.Params[dA2].Values) * len(space.Params[dN].Values)
	plane := make([][]float64, 0, nCombos)
	slab := make([]float64, 0, 4*nCombos)
	combos := make([][4]int, 0, nCombos)
	coords := make([]int, space.Dims())
	for i0, a0 := range space.Params[dA0].Values {
		for i1, a1 := range space.Params[dA1].Values {
			for i2, a2 := range space.Params[dA2].Values {
				for in, n := range space.Params[dN].Values {
					lo := len(slab)
					slab = append(slab, a0, a1, a2, n)
					plane = append(plane, slab[lo:len(slab):len(slab)])
					combos = append(combos, [4]int{i0, i1, i2, in})
				}
			}
		}
	}
	scores := make([]float64, len(plane))
	for i := range scores {
		scores[i] = math.NaN()
	}
	// Per-point faults are skipped (their score stays NaN), exactly like
	// the scalar scan's continue-on-error; only cancellation aborts.
	streamErr := eng.EvaluateStream(ctx, score, plane, func(i int, o engine.Outcome) {
		if o.Err == nil {
			scores[i] = o.Value
		}
	})
	if streamErr != nil {
		return nil, 0, fmt.Errorf("aps: analytic grid scan interrupted: %w", streamErr)
	}

	best := make([]int, space.Dims())
	found := false
	bestScore := math.Inf(1)
	points := 0
	for k, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 1) {
			continue
		}
		points++
		if s < bestScore {
			bestScore = s
			c := combos[k]
			for d := range coords {
				coords[d] = 0
			}
			coords[dA0], coords[dA1], coords[dA2], coords[dN] = c[0], c[1], c[2], c[3]
			copy(best, coords)
			found = true
		}
	}
	if !found {
		return nil, points, fmt.Errorf("aps: no feasible grid point for the analytic model")
	}
	return best, points, nil
}

// RelativeError compares an APS (or any) best value to the true optimum
// of a ground-truth sweep: (got − trueBest)/trueBest.
func RelativeError(got float64, truth []float64) (float64, error) {
	idx, trueBest := dse.Best(truth)
	if idx < 0 {
		return 0, fmt.Errorf("aps: ground truth has no finite entries")
	}
	if trueBest == 0 { //lint:allow floatguard exact zero optimum would make the relative error undefined
		return 0, fmt.Errorf("aps: degenerate ground-truth optimum 0")
	}
	return (got - trueBest) / trueBest, nil
}
