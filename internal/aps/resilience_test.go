package aps

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/robust"
)

func TestRunCtxMatchesRun(t *testing.T) {
	m, space, eval := testSetup(t, 4)
	opts := Options{Optimize: core.Options{MaxN: 64}}
	plain, err := Run(m, space, eval, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ctxRes, err := RunCtx(context.Background(), m, space, dse.WithContext(eval), opts)
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if plain.BestValue != ctxRes.BestValue || plain.Simulations != ctxRes.Simulations {
		t.Fatalf("RunCtx diverged: best %v vs %v, sims %d vs %d",
			ctxRes.BestValue, plain.BestValue, ctxRes.Simulations, plain.Simulations)
	}
}

func TestRunCtxWithFaultInjectionFindsSameOptimum(t *testing.T) {
	m, space, eval := testSetup(t, 4)
	opts := Options{Optimize: core.Options{MaxN: 64}}
	clean, err := RunCtx(context.Background(), m, space, dse.WithContext(eval), opts)
	if err != nil {
		t.Fatalf("clean RunCtx: %v", err)
	}

	faulty := robust.NewFaulty(dse.WithContext(eval), 0xbad5eed)
	faulty.PFail = 0.15
	faulty.PPanic = 0.05 // 20% transient faults on every simulated point
	fopts := opts
	fopts.Sweep.Retry = robust.RetryPolicy{
		MaxAttempts: 12, BaseDelay: time.Microsecond, MaxDelay: 50 * time.Microsecond,
	}
	got, err := RunCtx(context.Background(), m, space, faulty, fopts)
	if err != nil {
		t.Fatalf("faulty RunCtx: %v", err)
	}
	if math.Float64bits(got.BestValue) != math.Float64bits(clean.BestValue) {
		t.Fatalf("fault-injected optimum %v != clean optimum %v", got.BestValue, clean.BestValue)
	}
	if got.BestIdx != clean.BestIdx {
		t.Fatalf("fault-injected best index %d != clean %d", got.BestIdx, clean.BestIdx)
	}
	if got.Report.Retries == 0 {
		t.Fatal("no retries despite 20% fault injection")
	}
	if len(got.Report.Failed) != 0 {
		t.Fatalf("permanent failures under transient faults: %+v", got.Report.Failed)
	}
}

func TestRunCtxCancelledBeforeSweep(t *testing.T) {
	m, space, eval := testSetup(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, m, space, dse.WithContext(eval), Options{Optimize: core.Options{MaxN: 64}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunCtxCancelMidSweepReturnsPartialReport(t *testing.T) {
	m, space, _ := testSetup(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	inner := &dse.ModelEvaluator{Model: m}
	calls := 0
	eval := robust.EvaluatorFunc(func(c context.Context, p []float64) (float64, error) {
		calls++
		if calls > 4 {
			cancel()
		}
		return inner.EvaluateCtx(c, p)
	})
	opts := Options{Optimize: core.Options{MaxN: 64}}
	opts.Sweep.Workers = 1
	res, err := RunCtx(ctx, m, space, eval, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Report.Canceled {
		t.Fatal("report does not mark cancellation")
	}
	if len(res.Report.Pending) == 0 {
		t.Fatal("no pending indices recorded for the interrupted slice")
	}
}
