package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("single-element stddev")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile accepted")
	}
	if _, err := Percentile(xs, 150); err == nil {
		t.Error("out-of-range percentile accepted")
	}
	if got, err := Percentile([]float64{7}, 50); err != nil || got != 7 {
		t.Errorf("single-element percentile: %v, %v", got, err)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(11, 10); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelErr = %v", got)
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0)")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Fatal("RelErr(1,0) not +Inf")
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{9, 22}, []float64{10, 20})
	if err != nil {
		t.Fatalf("MAPE: %v", err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE = %v, want 0.1", got)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err == nil {
		t.Error("all-zero references accepted")
	}
	// Zero references skipped.
	got, err = MAPE([]float64{5, 9}, []float64{0, 10})
	if err != nil || math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE with zero ref = %v, %v", got, err)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Fatalf("MinMax = %v %v %v", min, max, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("empty MinMax accepted")
	}
}

func TestArgMin(t *testing.T) {
	if ArgMin(nil) != -1 {
		t.Fatal("empty ArgMin")
	}
	if got := ArgMin([]float64{3, 1, 2, 1}); got != 1 {
		t.Fatalf("ArgMin = %d", got)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4, 16})
	if err != nil || math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean = %v, %v", got, err)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative GeoMean accepted")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty GeoMean accepted")
	}
}

func TestSpearmanPerfectCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	rho, err := Spearman(a, b)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("Spearman = %v, %v; want 1", rho, err)
	}
	// Perfect anti-correlation.
	c := []float64{5, 4, 3, 2, 1}
	rho, err = Spearman(a, c)
	if err != nil || math.Abs(rho+1) > 1e-12 {
		t.Fatalf("Spearman = %v, %v; want -1", rho, err)
	}
}

func TestSpearmanMonotonicNonlinear(t *testing.T) {
	// Rank correlation sees through monotone nonlinearity.
	a := []float64{1, 2, 3, 4, 5, 6}
	b := make([]float64, len(a))
	for i, v := range a {
		b[i] = math.Exp(v)
	}
	rho, err := Spearman(a, b)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("Spearman = %v, %v; want 1", rho, err)
	}
}

func TestSpearmanTies(t *testing.T) {
	a := []float64{1, 2, 2, 3}
	b := []float64{1, 2, 2, 3}
	rho, err := Spearman(a, b)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("tied Spearman = %v, %v", rho, err)
	}
}

func TestSpearmanUncorrelated(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{3, 8, 1, 6, 2, 7, 4, 5}
	rho, err := Spearman(a, b)
	if err != nil {
		t.Fatalf("Spearman: %v", err)
	}
	if math.Abs(rho) > 0.6 {
		t.Fatalf("shuffled data strongly correlated: %v", rho)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := Spearman([]float64{1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Spearman([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too few samples accepted")
	}
	if _, err := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant sample accepted")
	}
}
