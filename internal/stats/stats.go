// Package stats provides the small statistical helpers the experiment
// harness uses: central moments, percentiles and relative-error metrics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation on the sorted copy.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v outside [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1], nil
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac, nil
}

// RelErr returns |got−want| / |want|; +Inf when want is 0 and got isn't.
func RelErr(got, want float64) float64 {
	if want == 0 { //lint:allow floatguard exact zero guards the division below
		if got == 0 { //lint:allow floatguard exact zero distinguishes 0/0 from x/0
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// MAPE returns the mean absolute percentage error between predictions and
// references (skipping zero references).
func MAPE(pred, ref []float64) (float64, error) {
	if len(pred) != len(ref) {
		return 0, fmt.Errorf("stats: MAPE length mismatch %d vs %d", len(pred), len(ref))
	}
	var sum float64
	n := 0
	for i := range pred {
		if ref[i] == 0 { //lint:allow floatguard exact zero references are excluded from MAPE by definition
			continue
		}
		sum += math.Abs(pred[i]-ref[i]) / math.Abs(ref[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("stats: MAPE with no usable references")
	}
	return sum / float64(n), nil
}

// MinMax returns the extrema; an error for an empty slice.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// ArgMin returns the index of the smallest element; −1 for empty input.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ranks assigns average ranks (1-based) with ties averaged.
func ranks(xs []float64) []float64 {
	type iv struct {
		v float64
		i int
	}
	sorted := make([]iv, len(xs))
	for i, v := range xs {
		sorted[i] = iv{v, i}
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].v < sorted[b].v })
	out := make([]float64, len(xs))
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].v == sorted[i].v { //lint:allow floatguard rank ties are bit-exact by definition
			j++
		}
		avg := float64(i+j+1) / 2 // mean of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			out[sorted[k].i] = avg
		}
		i = j
	}
	return out
}

// Spearman returns the Spearman rank correlation coefficient between two
// equally long samples (ties handled by average ranks). It is the metric
// used to validate that the analytic model orders designs like the
// simulator does.
func Spearman(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: Spearman length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) < 3 {
		return 0, fmt.Errorf("stats: Spearman needs ≥3 samples, have %d", len(a))
	}
	ra, rb := ranks(a), ranks(b)
	ma, mb := Mean(ra), Mean(rb)
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 { //lint:allow floatguard exact zero variance marks constant ranks
		return 0, fmt.Errorf("stats: Spearman with constant ranks")
	}
	return cov / math.Sqrt(va*vb), nil
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: GeoMean of empty slice")
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean needs positive values (got %v)", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}
