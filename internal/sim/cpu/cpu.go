// Package cpu is a simplified out-of-order core model in the interval-
// simulation style: instructions issue at up to IssueWidth per cycle,
// memory operations occupy the instruction window (ROB) until their data
// returns, and the number of overlapping outstanding misses — the
// memory-level parallelism the C-AMAT C_M parameter measures — is bounded
// by both the window and the L1 MSHRs. Dependent loads (trace.Ref.Dep)
// serialize against the previous access, reproducing pointer-chase
// behaviour.
package cpu

import (
	"container/heap"
	"fmt"

	"repro/internal/sim/cache"
	"repro/internal/trace"
)

// Config describes the core microarchitecture parameters the APS
// experiment sweeps (issue width and ROB size, §IV).
type Config struct {
	IssueWidth int
	ROB        int
	// ComputeCPI is the average compute cost of one non-memory
	// instruction in issue-slot units (so the effective compute CPI is
	// ComputeCPI/IssueWidth). It carries the Pollack-rule core-area effect
	// (Eq. 11) into the simulator: larger cores execute compute work
	// faster. Zero selects 1.0.
	ComputeCPI float64
}

// DefaultConfig models the paper's 4-way OoO core with a 128-entry ROB.
func DefaultConfig() Config { return Config{IssueWidth: 4, ROB: 128, ComputeCPI: 1} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.IssueWidth < 1 || c.ROB < 1 {
		return fmt.Errorf("cpu: issue width %d and ROB %d must be ≥ 1", c.IssueWidth, c.ROB)
	}
	if c.ComputeCPI < 0 {
		return fmt.Errorf("cpu: compute CPI %v negative", c.ComputeCPI)
	}
	return nil
}

// Stats summarizes one core's execution.
type Stats struct {
	Instructions uint64 // memory refs + compute gap instructions
	MemAccesses  uint64
	Cycles       int64
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// completionHeap is a min-heap of outstanding completion times.
type completionHeap []int64

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// AccessObserver receives the timing of every L1 access the core issues;
// the C-AMAT detector implements it. A non-nil error marks a malformed
// timing record — an internal invariant violation the core surfaces from
// Step instead of panicking, so the engine's retry/guard machinery (and
// not a crash) decides what happens to the run.
type AccessObserver interface {
	Observe(res cache.Result, hitLatency int) error
}

// Core executes a reference stream against an L1 cache.
type Core struct {
	cfg Config
	l1  *cache.Cache
	obs AccessObserver // optional

	clock           int64
	issueDebt       float64 // fractional issue-slot debt carried across cycles
	inflight        completionHeap
	lastDone        int64
	start           int64
	stats           Stats
	maxInFlightSeen int
	computeCPI      float64
}

// NewCore builds a core over its private L1. The observer may be nil.
func NewCore(cfg Config, l1 *cache.Cache, obs AccessObserver) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if l1 == nil {
		return nil, fmt.Errorf("cpu: core needs an L1 cache")
	}
	cpi := cfg.ComputeCPI
	if cpi == 0 { //lint:allow floatguard exact zero is the unset-field sentinel
		cpi = 1
	}
	return &Core{cfg: cfg, l1: l1, obs: obs, computeCPI: cpi}, nil
}

// Clock returns the core's current issue cycle; the multi-core scheduler
// advances the core with the smallest clock.
func (c *Core) Clock() int64 { return c.clock }

// advanceIssue consumes issue bandwidth for n instructions weighing
// `weight` issue slots each; fractional cycles carry over as debt.
func (c *Core) advanceIssue(n int, weight float64) {
	c.issueDebt += float64(n) * weight / float64(c.cfg.IssueWidth)
	whole := int64(c.issueDebt)
	c.clock += whole
	c.issueDebt -= float64(whole)
}

// Step processes one memory reference (with its preceding compute gap).
// The only error source is the observer rejecting a timing record, which
// indicates a simulator invariant violation; the core's own state stays
// consistent and the caller decides whether to abort the run.
func (c *Core) Step(ref trace.Ref) error {
	// Compute instructions before the reference.
	gap := int(ref.Gap)
	if gap > 0 {
		c.advanceIssue(gap, c.computeCPI)
		c.stats.Instructions += uint64(gap)
	}
	// Dependent references wait for the previous access's data.
	if ref.Dep && c.lastDone > c.clock {
		c.clock = c.lastDone
		c.issueDebt = 0
	}
	// Window constraint: a memory op and its gap occupy 1+gap ROB slots,
	// so at most ROB/(1+gap) such groups are simultaneously in flight.
	maxOutstanding := c.cfg.ROB / (1 + gap)
	if maxOutstanding < 1 {
		maxOutstanding = 1
	}
	for len(c.inflight) >= maxOutstanding {
		earliest := heap.Pop(&c.inflight).(int64)
		if earliest > c.clock {
			c.clock = earliest
			c.issueDebt = 0
		}
	}
	// Drain completions that already happened (keeps the heap small).
	for len(c.inflight) > 0 && c.inflight[0] <= c.clock {
		heap.Pop(&c.inflight)
	}

	res := c.l1.AccessTimed(c.clock, ref.Addr, ref.Write)
	var obsErr error
	if c.obs != nil {
		obsErr = c.obs.Observe(res, c.l1.Config().HitLatency)
	}
	heap.Push(&c.inflight, res.Done)
	if len(c.inflight) > c.maxInFlightSeen {
		c.maxInFlightSeen = len(c.inflight)
	}
	c.lastDone = res.Done
	c.advanceIssue(1, 1)
	c.stats.Instructions++
	c.stats.MemAccesses++
	if obsErr != nil {
		return fmt.Errorf("cpu: access observer rejected timing record: %w", obsErr)
	}
	return nil
}

// Drain waits for all outstanding accesses and returns final statistics.
func (c *Core) Drain() Stats {
	for len(c.inflight) > 0 {
		done := heap.Pop(&c.inflight).(int64)
		if done > c.clock {
			c.clock = done
		}
	}
	if c.lastDone > c.clock {
		c.clock = c.lastDone
	}
	c.stats.Cycles = c.clock - c.start
	return c.stats
}

// MaxInFlight reports the peak number of simultaneously outstanding
// memory accesses — the core's realized memory-level parallelism bound.
func (c *Core) MaxInFlight() int { return c.maxInFlightSeen }
