package cpu

import (
	"errors"
	"testing"

	"repro/internal/sim/cache"
	"repro/internal/trace"
)

// flatMemory is a fixed-latency lower level.
type flatMemory struct{ latency int64 }

func (m *flatMemory) Access(t int64, addr uint64, write bool) int64 { return t + m.latency }

func newL1(t *testing.T, mshrs int) *cache.Cache {
	t.Helper()
	cfg := cache.DefaultL1()
	cfg.MSHRs = mshrs
	cfg.Ports = 4
	cfg.Banks = 8
	c, err := cache.New(cfg, &flatMemory{latency: 200})
	if err != nil {
		t.Fatalf("cache.New: %v", err)
	}
	return c
}

func mustCore(t *testing.T, cfg Config, l1 *cache.Cache, obs AccessObserver) *Core {
	t.Helper()
	c, err := NewCore(cfg, l1, obs)
	if err != nil {
		t.Fatalf("NewCore: %v", err)
	}
	return c
}

func hitTrace(n int, gap uint16) []trace.Ref {
	refs := make([]trace.Ref, n)
	for i := range refs {
		refs[i] = trace.Ref{Addr: uint64(i%64) * 8, Gap: gap} // 8 lines, always warm after cold start
	}
	return refs
}

func missTrace(n int, gap uint16, dep bool) []trace.Ref {
	refs := make([]trace.Ref, n)
	for i := range refs {
		refs[i] = trace.Ref{Addr: uint64(i) * 4096, Gap: gap, Dep: dep} // distinct sets/lines
	}
	return refs
}

func runTrace(t *testing.T, cfg Config, refs []trace.Ref, mshrs int) Stats {
	t.Helper()
	core := mustCore(t, cfg, newL1(t, mshrs), nil)
	for _, r := range refs {
		core.Step(r)
	}
	return core.Drain()
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	if err := (Config{IssueWidth: 0, ROB: 128}).Validate(); err == nil {
		t.Error("zero issue width accepted")
	}
	if err := (Config{IssueWidth: 4, ROB: 0}).Validate(); err == nil {
		t.Error("zero ROB accepted")
	}
	if _, err := NewCore(Config{}, nil, nil); err == nil {
		t.Error("NewCore accepted bad config")
	}
	if _, err := NewCore(DefaultConfig(), nil, nil); err == nil {
		t.Error("NewCore accepted nil L1")
	}
}

func TestStatsCounting(t *testing.T) {
	st := runTrace(t, DefaultConfig(), hitTrace(100, 3), 8)
	if st.MemAccesses != 100 {
		t.Fatalf("mem accesses = %d", st.MemAccesses)
	}
	if st.Instructions != 100+100*3 {
		t.Fatalf("instructions = %d, want 400", st.Instructions)
	}
	if st.Cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
	if st.CPI() <= 0 {
		t.Fatal("CPI not positive")
	}
	if (Stats{}).CPI() != 0 {
		t.Fatal("empty CPI not 0")
	}
}

func TestIssueWidthSpeedsUpCompute(t *testing.T) {
	// Compute-heavy trace: wider issue → fewer cycles.
	refs := hitTrace(500, 16)
	narrow := runTrace(t, Config{IssueWidth: 1, ROB: 128}, refs, 8)
	wide := runTrace(t, Config{IssueWidth: 8, ROB: 128}, refs, 8)
	if wide.Cycles >= narrow.Cycles {
		t.Fatalf("8-wide (%d cycles) not faster than 1-wide (%d)", wide.Cycles, narrow.Cycles)
	}
	// Roughly 8× on pure compute; allow generous slack for memory time.
	if float64(narrow.Cycles) < 3*float64(wide.Cycles) {
		t.Fatalf("issue width scaling too weak: %d vs %d", narrow.Cycles, wide.Cycles)
	}
}

func TestROBEnablesMLP(t *testing.T) {
	// Independent misses: a big window overlaps them, a tiny one cannot.
	refs := missTrace(200, 4, false)
	small := runTrace(t, Config{IssueWidth: 4, ROB: 5}, refs, 16)
	big := runTrace(t, Config{IssueWidth: 4, ROB: 256}, refs, 16)
	if big.Cycles >= small.Cycles {
		t.Fatalf("large ROB (%d cycles) not faster than small (%d)", big.Cycles, small.Cycles)
	}
	if float64(small.Cycles) < 2*float64(big.Cycles) {
		t.Fatalf("MLP benefit too weak: %d vs %d", small.Cycles, big.Cycles)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	indep := runTrace(t, DefaultConfig(), missTrace(200, 0, false), 16)
	dep := runTrace(t, DefaultConfig(), missTrace(200, 0, true), 16)
	if dep.Cycles <= indep.Cycles {
		t.Fatalf("dependent chain (%d cycles) not slower than independent (%d)", dep.Cycles, indep.Cycles)
	}
	// A dependent chain of 200 misses costs ≥ 200 × memory latency.
	if dep.Cycles < 200*200 {
		t.Fatalf("dependent chain too fast: %d cycles", dep.Cycles)
	}
}

func TestMaxInFlightRespectsROB(t *testing.T) {
	l1 := newL1(t, 64)
	core := mustCore(t, Config{IssueWidth: 4, ROB: 8}, l1, nil)
	for _, r := range missTrace(100, 0, false) {
		core.Step(r)
	}
	core.Drain()
	if core.MaxInFlight() > 8 {
		t.Fatalf("in-flight %d exceeded ROB 8", core.MaxInFlight())
	}
	if core.MaxInFlight() < 2 {
		t.Fatalf("no MLP achieved: %d", core.MaxInFlight())
	}
}

// captureObserver records observed accesses.
type captureObserver struct {
	n        int
	lastDone int64
}

func (c *captureObserver) Observe(res cache.Result, hitLatency int) error {
	c.n++
	c.lastDone = res.Done
	return nil
}

func TestObserverSeesEveryAccess(t *testing.T) {
	obs := &captureObserver{}
	core := mustCore(t, DefaultConfig(), newL1(t, 8), obs)
	for _, r := range hitTrace(50, 2) {
		core.Step(r)
	}
	core.Drain()
	if obs.n != 50 {
		t.Fatalf("observer saw %d accesses, want 50", obs.n)
	}
	if obs.lastDone <= 0 {
		t.Fatal("observer got no completion times")
	}
}

// failingObserver rejects every record, standing in for a detector that
// spotted a malformed timing.
type failingObserver struct{ err error }

func (f *failingObserver) Observe(res cache.Result, hitLatency int) error { return f.err }

func TestStepSurfacesObserverError(t *testing.T) {
	sentinel := errors.New("malformed timing")
	core := mustCore(t, DefaultConfig(), newL1(t, 8), &failingObserver{err: sentinel})
	err := core.Step(trace.Ref{Addr: 0x40})
	if err == nil {
		t.Fatal("Step swallowed the observer error")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("Step error %v does not wrap the observer error", err)
	}
	// The core's own state must stay consistent: the access was issued.
	st := core.Drain()
	if st.MemAccesses != 1 {
		t.Fatalf("mem accesses = %d, want 1", st.MemAccesses)
	}
}

func TestClockMonotone(t *testing.T) {
	core := mustCore(t, DefaultConfig(), newL1(t, 8), nil)
	prev := core.Clock()
	for _, r := range missTrace(100, 3, false) {
		core.Step(r)
		if core.Clock() < prev {
			t.Fatalf("clock went backwards: %d → %d", prev, core.Clock())
		}
		prev = core.Clock()
	}
}

func TestDrainWaitsForOutstanding(t *testing.T) {
	core := mustCore(t, DefaultConfig(), newL1(t, 8), nil)
	core.Step(trace.Ref{Addr: 0x10000}) // one miss, ~200 cycles
	st := core.Drain()
	if st.Cycles < 200 {
		t.Fatalf("drain did not wait for the miss: %d cycles", st.Cycles)
	}
}
