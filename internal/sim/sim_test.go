package sim

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/trace"
)

func run(t *testing.T, cfg Config, workload string, ws uint64, gap float64, refs int) *Result {
	t.Helper()
	res, err := RunWorkload(cfg, workload, ws, gap, refs, 42)
	if err != nil {
		t.Fatalf("RunWorkload(%s): %v", workload, err)
	}
	return res
}

func TestRunBasics(t *testing.T) {
	cfg := DefaultConfig(4)
	res := run(t, cfg, "stream", 1<<20, 2, 5000)
	if res.Cores != 4 {
		t.Fatalf("cores = %d", res.Cores)
	}
	if res.Instructions == 0 || res.MemAccesses != 4*5000 {
		t.Fatalf("instructions=%d mem=%d", res.Instructions, res.MemAccesses)
	}
	if res.CPI <= 0 {
		t.Fatalf("CPI = %v", res.CPI)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	if err := res.L1Params.Validate(); err != nil {
		t.Fatalf("L1 params invalid: %v (%v)", err, res.L1Params)
	}
	// Detector identity: decomposition equals direct C-AMAT.
	direct := res.L1Aggregate.CAMATDirect()
	if math.Abs(res.L1Params.CAMAT()-direct) > 1e-9*(1+direct) {
		t.Fatalf("C-AMAT decomposition %v != direct %v", res.L1Params.CAMAT(), direct)
	}
	// Cache stats consistency.
	if res.L1Stats.Hits+res.L1Stats.Misses != res.L1Stats.Accesses {
		t.Fatalf("L1 stats inconsistent: %+v", res.L1Stats)
	}
	if res.L1Stats.Accesses != uint64(4*5000) {
		t.Fatalf("L1 accesses = %d", res.L1Stats.Accesses)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig(2)
	a := run(t, cfg, "fluidanimate", 1<<20, 2, 3000)
	b := run(t, cfg, "fluidanimate", 1<<20, 2, 3000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("simulation not deterministic")
	}
}

func TestRunErrors(t *testing.T) {
	cfg := DefaultConfig(2)
	if _, err := Run(cfg, make([][]trace.Ref, 3)); err == nil {
		t.Error("trace/core mismatch accepted")
	}
	bad := cfg
	bad.Cores = 0
	if _, err := Run(bad, nil); err == nil {
		t.Error("zero cores accepted")
	}
	bad = cfg
	bad.L1.Assoc = 0
	if _, err := Run(bad, make([][]trace.Ref, 2)); err == nil {
		t.Error("invalid L1 accepted")
	}
	if _, err := RunWorkload(cfg, "nope", 1<<20, 2, 100, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := RunWorkload(cfg, "stream", 1<<20, 2, 0, 1); err == nil {
		t.Error("zero refs accepted")
	}
}

func TestAPCDecreasesDownHierarchy(t *testing.T) {
	// Fig. 13: APC_L1 ≫ APC_L2 ≫ APC_mem. The ordering comes from access
	// counts shrinking down the hierarchy, so it needs a workload with
	// locality (every reference touches L1, only L1 misses reach L2, only
	// L2 misses reach DRAM).
	cfg := DefaultConfig(4)
	res := run(t, cfg, "fluidanimate", 8<<20, 2, 20000)
	if !(res.APCL1 > res.APCL2 && res.APCL2 > res.APCMem) {
		t.Fatalf("APC ordering violated: L1=%v L2=%v mem=%v", res.APCL1, res.APCL2, res.APCMem)
	}
	if res.APCMem <= 0 {
		t.Fatal("no DRAM traffic for an out-of-cache workload")
	}
}

func TestWorkingSetFitsInL1(t *testing.T) {
	cfg := DefaultConfig(1)
	// 8 KB working set in a 32 KB L1: after the cold pass (whose fills
	// also absorb secondary/merged misses), pure hits.
	res := run(t, cfg, "stream", 8<<10, 2, 50000)
	if mr := res.L1Params.MR; mr > 0.03 {
		t.Fatalf("resident working set missed %v of accesses", mr)
	}
	// Steady state: re-run with 10× the references; the miss rate must
	// shrink accordingly (cold misses amortized).
	res2 := run(t, cfg, "stream", 8<<10, 2, 500000)
	if res2.L1Params.MR > res.L1Params.MR/5 {
		t.Fatalf("cold misses not amortized: %v vs %v", res2.L1Params.MR, res.L1Params.MR)
	}
}

func TestLargeWorkingSetMisses(t *testing.T) {
	cfg := DefaultConfig(1)
	res := run(t, cfg, "random", 64<<20, 2, 20000)
	if mr := res.L1Params.MR; mr < 0.5 {
		t.Fatalf("64 MB random working set only missed %v", mr)
	}
	if res.DRAMStats.Accesses() == 0 {
		t.Fatal("no DRAM accesses")
	}
}

func TestStreamFasterThanPointerChase(t *testing.T) {
	cfg := DefaultConfig(1)
	ws := uint64(16 << 20)
	stream := run(t, cfg, "stream", ws, 2, 10000)
	chase := run(t, cfg, "pchase", ws, 2, 10000)
	if stream.CPI >= chase.CPI {
		t.Fatalf("stream CPI %v not below pchase CPI %v", stream.CPI, chase.CPI)
	}
	// The chase's C-AMAT concurrency collapses toward 1; streaming keeps
	// memory-level parallelism.
	if chase.L1Params.Concurrency() > stream.L1Params.Concurrency() {
		t.Fatalf("pchase concurrency %v above stream %v",
			chase.L1Params.Concurrency(), stream.L1Params.Concurrency())
	}
}

func TestMoreMSHRsHelpRandomMisses(t *testing.T) {
	base := DefaultConfig(1)
	base.L1.MSHRs = 1
	few := run(t, base, "random", 64<<20, 1, 8000)
	base.L1.MSHRs = 16
	many := run(t, base, "random", 64<<20, 1, 8000)
	if many.Cycles >= few.Cycles {
		t.Fatalf("16 MSHRs (%d cycles) not faster than 1 (%d)", many.Cycles, few.Cycles)
	}
	// MSHRs raise the measured pure-miss concurrency C_M.
	if many.L1Params.CM <= few.L1Params.CM {
		t.Fatalf("C_M with 16 MSHRs (%v) not above 1 MSHR (%v)",
			many.L1Params.CM, few.L1Params.CM)
	}
}

func TestBiggerL2ReducesDRAMTraffic(t *testing.T) {
	small := DefaultConfig(2)
	small.L2.SizeKB = 256
	resSmall := run(t, small, "fluidanimate", 4<<20, 2, 20000)
	big := DefaultConfig(2)
	big.L2.SizeKB = 8192
	resBig := run(t, big, "fluidanimate", 4<<20, 2, 20000)
	if resBig.DRAMStats.Accesses() >= resSmall.DRAMStats.Accesses() {
		t.Fatalf("8 MB L2 DRAM traffic %d not below 256 KB L2 %d",
			resBig.DRAMStats.Accesses(), resSmall.DRAMStats.Accesses())
	}
}

func TestMoreCoresContendOnDRAM(t *testing.T) {
	// Per-core time grows with core count when all cores hammer DRAM.
	one := run(t, DefaultConfig(1), "random", 64<<20, 1, 6000)
	eight := run(t, DefaultConfig(8), "random", 64<<20, 1, 6000)
	if eight.CPI <= one.CPI {
		t.Fatalf("8-core CPI %v not above 1-core %v under DRAM contention", eight.CPI, one.CPI)
	}
}

func TestPerCoreAnalysesSumToAggregate(t *testing.T) {
	res := run(t, DefaultConfig(4), "stencil", 1<<22, 2, 5000)
	var acc int
	for _, an := range res.L1Analyses {
		acc += an.Accesses
	}
	if acc != res.L1Aggregate.Accesses {
		t.Fatalf("aggregate accesses %d != sum %d", res.L1Aggregate.Accesses, acc)
	}
}

func TestValidateConfig(t *testing.T) {
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(4)
	bad.DRAM.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad DRAM accepted")
	}
	bad = DefaultConfig(4)
	bad.NoC.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad NoC accepted")
	}
	bad = DefaultConfig(4)
	bad.Core.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad core accepted")
	}
	bad = DefaultConfig(4)
	bad.L2.MSHRs = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad L2 accepted")
	}
}

func TestRunMixed(t *testing.T) {
	cfg := DefaultConfig(1) // core count overridden by specs
	specs := []WorkloadSpec{
		{Workload: "tiledmm", WSBytes: 2 << 20, MeanGap: 2, Refs: 4000, Cores: 2, Seed: 1},
		{Workload: "random", WSBytes: 32 << 20, MeanGap: 1, Refs: 4000, Cores: 2, Seed: 2},
	}
	res, err := RunMixed(cfg, specs)
	if err != nil {
		t.Fatalf("RunMixed: %v", err)
	}
	if res.Cores != 4 {
		t.Fatalf("cores = %d", res.Cores)
	}
	// Cores 0-1 run the cache-friendly workload: lower CPI than 2-3.
	victim := (res.CoreStats[0].CPI() + res.CoreStats[1].CPI()) / 2
	aggressor := (res.CoreStats[2].CPI() + res.CoreStats[3].CPI()) / 2
	if victim >= aggressor {
		t.Fatalf("tiledmm CPI %v not below random CPI %v", victim, aggressor)
	}
	// Validation.
	if _, err := RunMixed(cfg, nil); err == nil {
		t.Error("empty specs accepted")
	}
	if _, err := RunMixed(cfg, []WorkloadSpec{{Workload: "stream", Cores: 0, Refs: 10}}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := RunMixed(cfg, []WorkloadSpec{{Workload: "nope", Cores: 1, Refs: 10}}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunCtxCancellation(t *testing.T) {
	cfg := DefaultConfig(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWorkloadCtx(ctx, cfg, "stream", 1<<20, 2, 5000, 42); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}

	// A deadline that fires mid-simulation stops the stepping loop.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := RunWorkloadCtx(ctx2, cfg, "random", 64<<20, 2, 2_000_000, 42)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out run returned %v, want deadline exceeded", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancellation not honored promptly")
	}
}

func TestRunCtxMatchesRunWhenUncancelled(t *testing.T) {
	cfg := DefaultConfig(2)
	a := run(t, cfg, "stream", 1<<20, 2, 3000)
	b, err := RunWorkloadCtx(context.Background(), cfg, "stream", 1<<20, 2, 3000, 42)
	if err != nil {
		t.Fatalf("RunWorkloadCtx: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ctx run diverged from plain run")
	}
}
