package dram

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *DRAM {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"channels": func(c *Config) { c.Channels = 0 },
		"banks":    func(c *Config) { c.BanksPerChannel = 0 },
		"row":      func(c *Config) { c.RowBytes = 32 },
		"line":     func(c *Config) { c.LineBytes = 4 },
		"trcd":     func(c *Config) { c.TRCD = -1 },
		"tburst":   func(c *Config) { c.TBurst = 0 },
	} {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
		if _, err := New(c); err == nil {
			t.Errorf("%s: New accepted invalid config", name)
		}
	}
}

func TestRowBufferHit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.BanksPerChannel = 1
	d := mustNew(t, cfg)
	// First access: empty bank → tRCD+tCAS+tBurst.
	done1 := d.Access(0, 0, false)
	want1 := int64(cfg.TRCD + cfg.TCAS + cfg.TBurst)
	if done1 != want1 {
		t.Fatalf("first access done=%d, want %d", done1, want1)
	}
	// Same row, after the bank frees: row hit → tCAS+tBurst.
	done2 := d.Access(done1, 64, false)
	want2 := done1 + int64(cfg.TCAS+cfg.TBurst)
	if done2 != want2 {
		t.Fatalf("row hit done=%d, want %d", done2, want2)
	}
	// Different row: precharge+activate.
	done3 := d.Access(done2, uint64(cfg.RowBytes*4), false)
	want3 := done2 + int64(cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.TBurst)
	if done3 != want3 {
		t.Fatalf("row miss done=%d, want %d", done3, want3)
	}
	st := d.Stats()
	if st.RowEmpty != 1 || st.RowHits != 1 || st.RowMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.RowHitRate() != 1.0/3 {
		t.Fatalf("row hit rate = %v", st.RowHitRate())
	}
}

func TestBankConflictSerializes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.BanksPerChannel = 1
	d := mustNew(t, cfg)
	// Two simultaneous requests to one bank: the second waits.
	d1 := d.Access(0, 0, false)
	d2 := d.Access(0, 64, false)
	if d2 <= d1 {
		t.Fatalf("bank conflict not serialized: %d ≤ %d", d2, d1)
	}
}

func TestChannelParallelism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 2
	cfg.BanksPerChannel = 1
	d := mustNew(t, cfg)
	// Adjacent lines interleave across channels: both can proceed.
	d1 := d.Access(0, 0, false)
	d2 := d.Access(0, 64, false)
	if d1 != d2 {
		t.Fatalf("independent channels should finish together: %d vs %d", d1, d2)
	}
}

func TestBusSerializesWithinChannel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.BanksPerChannel = 8
	d := mustNew(t, cfg)
	// Different banks, same channel: activations overlap but the data bus
	// transfers serialize.
	lineStride := uint64(cfg.LineBytes) // bank stride within a channel
	d1 := d.Access(0, 0*lineStride, false)
	d2 := d.Access(0, 1*lineStride, false)
	if d2 != d1+int64(cfg.TBurst) {
		t.Fatalf("bus not serialized: %d, want %d", d2, d1+int64(cfg.TBurst))
	}
}

func TestStreamingHasHighRowHitRate(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	var clock int64
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		clock = d.Access(clock, addr, false)
	}
	if rate := d.Stats().RowHitRate(); rate < 0.8 {
		t.Fatalf("streaming row hit rate = %v, want ≥ 0.8", rate)
	}
}

func TestRandomHasLowRowHitRate(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	var clock int64
	x := uint64(12345)
	for i := 0; i < 20000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		clock = d.Access(clock, (x%(1<<28))&^63, false)
	}
	if rate := d.Stats().RowHitRate(); rate > 0.2 {
		t.Fatalf("random row hit rate = %v, want ≤ 0.2", rate)
	}
}

func TestCompletionMonotoneInArrival(t *testing.T) {
	// For a fixed address, later arrivals never finish earlier.
	cfg := DefaultConfig()
	f := func(gaps []uint8) bool {
		d, err := New(cfg)
		if err != nil {
			return false
		}
		var tArr int64
		var prevDone int64
		for _, g := range gaps {
			tArr += int64(g)
			done := d.Access(tArr, 4096, false)
			if done < prevDone {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWritesCounted(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	d.Access(0, 0, true)
	d.Access(0, 64, false)
	st := d.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.Accesses() != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if d.Config().Channels != DefaultConfig().Channels {
		t.Fatal("Config() mismatch")
	}
}

func TestEmptyStatsRates(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	if d.Stats().RowHitRate() != 0 {
		t.Fatal("empty row hit rate not 0")
	}
}

func TestRefreshValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TREFI = 1000
	cfg.TRFC = 0
	if err := cfg.Validate(); err == nil {
		t.Error("refresh without tRFC accepted")
	}
	cfg.TRFC = 2000
	if err := cfg.Validate(); err == nil {
		t.Error("tRFC ≥ tREFI accepted")
	}
}

func TestRefreshStallsAndClosesRows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.BanksPerChannel = 1
	cfg.TREFI = 1000
	cfg.TRFC = 200
	d := mustNew(t, cfg)
	// Open a row well before the refresh.
	done := d.Access(0, 0, false)
	if done > 1000 {
		t.Fatalf("first access too slow: %d", done)
	}
	// Next access arrives after the refresh point: it pays tRFC and the
	// row is closed (activate needed again, not a row hit).
	done2 := d.Access(1001, 64, false)
	if done2 < 1200+int64(cfg.TRCD+cfg.TCAS) {
		t.Fatalf("refresh did not stall: done=%d", done2)
	}
	st := d.Stats()
	if st.Refreshes == 0 {
		t.Fatal("no refresh counted")
	}
	if st.RowHits != 0 {
		t.Fatalf("row survived refresh: %+v", st)
	}
}

func TestRefreshCatchUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.TREFI = 100
	cfg.TRFC = 10
	d := mustNew(t, cfg)
	// A request arriving far in the future catches up on all missed
	// refreshes without looping forever.
	d.Access(100000, 0, false)
	if got := d.Stats().Refreshes; got != 1000 {
		t.Fatalf("refreshes = %d, want 1000", got)
	}
}

func TestRefreshOverheadMeasurable(t *testing.T) {
	run := func(refresh bool) int64 {
		cfg := DefaultConfig()
		if !refresh {
			cfg.TREFI = 0
		}
		d := mustNew(t, cfg)
		var clock int64
		for addr := uint64(0); addr < 1<<22; addr += 64 {
			clock = d.Access(clock, addr, false)
		}
		return clock
	}
	with := run(true)
	without := run(false)
	if with <= without {
		t.Fatalf("refresh has no cost: %d vs %d", with, without)
	}
	// Overhead is bounded (tRFC/tREFI ≈ 4.5%).
	if float64(with) > 1.2*float64(without) {
		t.Fatalf("refresh overhead implausibly high: %d vs %d", with, without)
	}
}
