// Package dram is a DRAMSim2-style main-memory timing model: channels,
// banks, row buffers and the tRCD/tCAS/tRP timing triplet, with per-channel
// data-bus serialization. It is a timing calculator rather than a
// cycle-stepped state machine: each access reserves its bank and bus in
// arrival order (the FR-FCFS approximation appropriate for trace-driven
// simulation) and returns its completion cycle.
package dram

import "fmt"

// Config holds the memory-system geometry and timing in core cycles.
type Config struct {
	Channels        int
	BanksPerChannel int
	RowBytes        int // row-buffer width
	LineBytes       int // transfer granularity

	TRCD   int // activate → column access
	TCAS   int // column access → data
	TRP    int // precharge
	TBurst int // data-bus occupancy per line

	// TREFI is the refresh interval: every TREFI cycles each channel
	// performs an all-bank refresh taking TRFC cycles, during which the
	// banks are unavailable and open rows are closed. TREFI ≤ 0 disables
	// refresh.
	TREFI int
	TRFC  int
}

// DefaultConfig returns DDR3-1600-like timings expressed in CPU cycles
// (~3 GHz core, 200-cycle unloaded round trip through the controller).
func DefaultConfig() Config {
	return Config{
		Channels:        2,
		BanksPerChannel: 8,
		RowBytes:        8192,
		LineBytes:       64,
		TRCD:            40,
		TCAS:            40,
		TRP:             40,
		TBurst:          12,
		TREFI:           23400, // 7.8 µs at 3 GHz
		TRFC:            1050,  // 350 ns
	}
}

// Validate checks the geometry.
func (c Config) Validate() error {
	switch {
	case c.Channels < 1 || c.BanksPerChannel < 1:
		return fmt.Errorf("dram: need ≥1 channel and bank (got %d, %d)", c.Channels, c.BanksPerChannel)
	case c.RowBytes < c.LineBytes || c.LineBytes < 8:
		return fmt.Errorf("dram: row %dB must hold at least one %dB line", c.RowBytes, c.LineBytes)
	case c.TRCD < 0 || c.TCAS < 0 || c.TRP < 0 || c.TBurst < 1:
		return fmt.Errorf("dram: negative timing (tRCD=%d tCAS=%d tRP=%d tBurst=%d)", c.TRCD, c.TCAS, c.TRP, c.TBurst)
	case c.TREFI > 0 && c.TRFC <= 0:
		return fmt.Errorf("dram: refresh enabled (tREFI=%d) with tRFC=%d", c.TREFI, c.TRFC)
	case c.TREFI > 0 && c.TRFC >= c.TREFI:
		return fmt.Errorf("dram: tRFC=%d must be below tREFI=%d", c.TRFC, c.TREFI)
	}
	return nil
}

// Stats aggregates access outcomes.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64 // includes row conflicts (precharge needed)
	RowEmpty  uint64 // activate into an idle bank
	Refreshes uint64 // all-bank refreshes performed
}

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses())
}

type bank struct {
	freeAt  int64
	openRow int64 // -1 when precharged/idle
}

type channel struct {
	busFreeAt   int64
	banks       []bank
	nextRefresh int64
}

// DRAM is the memory-system state. It is not safe for concurrent use; the
// simulator serializes accesses in global time order.
type DRAM struct {
	cfg   Config
	chans []channel
	stats Stats
}

// New builds a DRAM model.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &DRAM{cfg: cfg, chans: make([]channel, cfg.Channels)}
	for i := range d.chans {
		d.chans[i].banks = make([]bank, cfg.BanksPerChannel)
		for b := range d.chans[i].banks {
			d.chans[i].banks[b].openRow = -1
		}
		if cfg.TREFI > 0 {
			d.chans[i].nextRefresh = int64(cfg.TREFI)
		}
	}
	return d, nil
}

// Config returns the model's configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a copy of the accumulated statistics.
func (d *DRAM) Stats() Stats { return d.stats }

// Access services one line transfer whose request arrives at cycle t and
// returns the cycle at which the data transfer completes. Channel is
// selected by line interleaving, bank by line-within-channel interleaving,
// and the row by the address within the bank, so sequential lines stream
// across channels and sequential rows stay bank-local.
func (d *DRAM) Access(t int64, addr uint64, write bool) int64 {
	line := addr / uint64(d.cfg.LineBytes)
	chIdx := int(line % uint64(d.cfg.Channels))
	ch := &d.chans[chIdx]
	bankIdx := int((line / uint64(d.cfg.Channels)) % uint64(d.cfg.BanksPerChannel))
	bk := &ch.banks[bankIdx]
	row := int64(addr / uint64(d.cfg.RowBytes))

	// Catch up on refreshes due before this request: each all-bank
	// refresh blocks the channel for tRFC and precharges every row.
	if d.cfg.TREFI > 0 {
		for ch.nextRefresh <= t {
			refreshEnd := ch.nextRefresh + int64(d.cfg.TRFC)
			for b := range ch.banks {
				if ch.banks[b].freeAt < refreshEnd {
					ch.banks[b].freeAt = refreshEnd
				}
				ch.banks[b].openRow = -1
			}
			d.stats.Refreshes++
			ch.nextRefresh += int64(d.cfg.TREFI)
		}
	}

	start := t
	if bk.freeAt > start {
		start = bk.freeAt
	}
	var lat int64
	switch {
	case bk.openRow == row:
		d.stats.RowHits++
		lat = int64(d.cfg.TCAS)
	case bk.openRow < 0:
		d.stats.RowEmpty++
		lat = int64(d.cfg.TRCD + d.cfg.TCAS)
	default:
		d.stats.RowMisses++
		lat = int64(d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS)
	}
	dataReady := start + lat
	busStart := dataReady
	if ch.busFreeAt > busStart {
		busStart = ch.busFreeAt
	}
	done := busStart + int64(d.cfg.TBurst)
	ch.busFreeAt = done
	bk.freeAt = done
	bk.openRow = row
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	return done
}
