package cache

import (
	"testing"
	"testing/quick"
)

// flatMemory is a fixed-latency lower level for testing.
type flatMemory struct {
	latency  int64
	accesses int
	writes   int
	lastTime int64
}

func (m *flatMemory) Access(t int64, addr uint64, write bool) int64 {
	m.accesses++
	if write {
		m.writes++
	}
	m.lastTime = t
	return t + m.latency
}

func smallConfig() Config {
	return Config{Name: "t", SizeKB: 1, LineBytes: 64, Assoc: 2, Banks: 1, Ports: 1, HitLatency: 2, MSHRs: 4}
}

func mustCache(t *testing.T, cfg Config, lower Level) *Cache {
	t.Helper()
	c, err := New(cfg, lower)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestValidate(t *testing.T) {
	if err := DefaultL1().Validate(); err != nil {
		t.Fatalf("default L1 invalid: %v", err)
	}
	if err := DefaultL2().Validate(); err != nil {
		t.Fatalf("default L2 invalid: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"size":   func(c *Config) { c.SizeKB = 0 },
		"line":   func(c *Config) { c.LineBytes = 4 },
		"assoc":  func(c *Config) { c.Assoc = 0 },
		"banks":  func(c *Config) { c.Banks = 0 },
		"ports":  func(c *Config) { c.Ports = 0 },
		"hitlat": func(c *Config) { c.HitLatency = 0 },
		"mshrs":  func(c *Config) { c.MSHRs = 0 },
		"tiny":   func(c *Config) { c.SizeKB = 1; c.LineBytes = 512; c.Assoc = 8 },
	} {
		cfg := DefaultL1()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	if _, err := New(smallConfig(), nil); err == nil {
		t.Error("nil lower accepted")
	}
}

func TestSets(t *testing.T) {
	cfg := Config{SizeKB: 32, LineBytes: 64, Assoc: 8}
	if got := cfg.Sets(); got != 64 {
		t.Fatalf("Sets = %d, want 64", got)
	}
}

func TestColdMissThenHit(t *testing.T) {
	mem := &flatMemory{latency: 100}
	c := mustCache(t, smallConfig(), mem)
	r1 := c.AccessTimed(0, 0x40, false)
	if r1.Hit {
		t.Fatal("cold access hit")
	}
	// Miss latency: lookup (2) + memory (100).
	if r1.Done != 102 {
		t.Fatalf("miss done = %d, want 102", r1.Done)
	}
	r2 := c.AccessTimed(r1.Done, 0x40, false)
	if !r2.Hit {
		t.Fatal("second access missed")
	}
	if r2.Done != r2.Start+2 {
		t.Fatalf("hit latency wrong: %+v", r2)
	}
	// Same line, different word: still a hit.
	r3 := c.AccessTimed(r2.Done, 0x78, false)
	if !r3.Hit {
		t.Fatal("same-line access missed")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MissRate() != 1.0/3 {
		t.Fatalf("miss rate = %v", st.MissRate())
	}
	if st.AvgLatency() <= 0 {
		t.Fatal("no latency accumulated")
	}
}

func TestMSHRMergeSecondaryMiss(t *testing.T) {
	mem := &flatMemory{latency: 100}
	c := mustCache(t, smallConfig(), mem)
	r1 := c.AccessTimed(0, 0x1000, false)
	// Second access to the same line while the first is outstanding.
	r2 := c.AccessTimed(1, 0x1008, false)
	if !r2.Merged {
		t.Fatalf("secondary miss not merged: %+v", r2)
	}
	if r2.Done != r1.Done {
		t.Fatalf("merged miss completes at %d, primary at %d", r2.Done, r1.Done)
	}
	if mem.accesses != 1 {
		t.Fatalf("memory saw %d accesses, want 1 (merge)", mem.accesses)
	}
	if c.Stats().MSHRMerges != 1 {
		t.Fatalf("merges = %d", c.Stats().MSHRMerges)
	}
}

func TestMSHRLimitThrottles(t *testing.T) {
	mem := &flatMemory{latency: 1000}
	cfg := smallConfig()
	cfg.MSHRs = 2
	cfg.Ports = 8
	cfg.Banks = 8
	c := mustCache(t, cfg, mem)
	// Four distinct-line misses at t=0: only 2 MSHRs, so the 3rd and 4th
	// requests leave late.
	var dones []int64
	for i := 0; i < 4; i++ {
		dones = append(dones, c.AccessTimed(0, uint64(i)*0x1000, false).Done)
	}
	if !(dones[2] > dones[0] && dones[3] > dones[1]) {
		t.Fatalf("MSHR limit not throttling: %v", dones)
	}
}

func TestLRUEviction(t *testing.T) {
	mem := &flatMemory{latency: 10}
	cfg := smallConfig() // 1 KB, 2-way, 64B lines → 8 sets
	c := mustCache(t, cfg, mem)
	setStride := uint64(cfg.Sets() * cfg.LineBytes) // same set every stride
	clock := int64(0)
	// Fill both ways of set 0, then touch way A, then install a third
	// line: way B (LRU) must be evicted.
	clock = c.Access(clock, 0*setStride, false)
	clock = c.Access(clock, 1*setStride, false)
	clock = c.Access(clock, 0*setStride, false) // refresh A
	clock = c.Access(clock, 2*setStride, false) // evict B
	if r := c.AccessTimed(clock, 0*setStride, false); !r.Hit {
		t.Fatal("recently used line was evicted")
	}
	clock = c.Access(clock+10, 0, false)
	if r := c.AccessTimed(clock+10, 1*setStride, false); r.Hit {
		t.Fatal("LRU line survived eviction")
	}
}

func TestDirtyWriteback(t *testing.T) {
	mem := &flatMemory{latency: 10}
	cfg := smallConfig()
	c := mustCache(t, cfg, mem)
	setStride := uint64(cfg.Sets() * cfg.LineBytes)
	clock := c.Access(0, 0, true) // write-allocate, dirty
	clock = c.Access(clock, 1*setStride, false)
	memBefore := mem.writes
	clock = c.Access(clock, 2*setStride, false) // evicts the dirty line
	_ = clock
	if mem.writes != memBefore+1 {
		t.Fatalf("dirty eviction produced %d writebacks, want 1", mem.writes-memBefore)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	mem := &flatMemory{latency: 10}
	cfg := smallConfig()
	c := mustCache(t, cfg, mem)
	setStride := uint64(cfg.Sets() * cfg.LineBytes)
	clock := c.Access(0, 0, false)
	clock = c.Access(clock, 1*setStride, false)
	c.Access(clock, 2*setStride, false)
	if c.Stats().Writebacks != 0 {
		t.Fatalf("clean eviction wrote back: %+v", c.Stats())
	}
}

func TestBankConflictDelays(t *testing.T) {
	mem := &flatMemory{latency: 10}
	cfg := smallConfig()
	cfg.Banks = 1
	cfg.Ports = 4
	c := mustCache(t, cfg, mem)
	c.Access(0, 0, false)
	r := c.AccessTimed(0, 0x40, false) // same single bank at the same cycle
	if r.Start == 0 {
		t.Fatal("bank conflict did not delay the second access")
	}
}

func TestPortLimitDelays(t *testing.T) {
	mem := &flatMemory{latency: 10}
	cfg := smallConfig()
	cfg.Banks = 8
	cfg.Ports = 1
	c := mustCache(t, cfg, mem)
	c.Access(0, 0, false)
	r := c.AccessTimed(0, 0x40, false) // different bank, one port
	if r.Start == 0 {
		t.Fatal("port limit did not delay the second access")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	mem := &flatMemory{latency: 50}
	cfg := DefaultL1() // 32 KB
	c := mustCache(t, cfg, mem)
	clock := int64(0)
	// Touch 16 KB twice: second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 16*1024; addr += 64 {
			clock = c.Access(clock, addr, false)
		}
	}
	st := c.Stats()
	wantMisses := uint64(16 * 1024 / 64)
	if st.Misses != wantMisses {
		t.Fatalf("misses = %d, want %d (cold only)", st.Misses, wantMisses)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	mem := &flatMemory{latency: 50}
	cfg := smallConfig() // 1 KB cache
	c := mustCache(t, cfg, mem)
	clock := int64(0)
	// Stream 64 KB twice: second pass misses too (capacity).
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 64*1024; addr += 64 {
			clock = c.Access(clock, addr, false)
		}
	}
	if mr := c.Stats().MissRate(); mr < 0.99 {
		t.Fatalf("thrashing miss rate = %v, want ≈1", mr)
	}
}

func TestContentsBounded(t *testing.T) {
	mem := &flatMemory{latency: 5}
	cfg := smallConfig() // 16 lines capacity
	c := mustCache(t, cfg, mem)
	clock := int64(0)
	for addr := uint64(0); addr < 1<<16; addr += 64 {
		clock = c.Access(clock, addr, false)
	}
	maxLines := cfg.SizeKB * 1024 / cfg.LineBytes
	if got := c.Contents(); got > maxLines {
		t.Fatalf("cache holds %d lines, capacity %d", got, maxLines)
	}
}

func TestPruneInflight(t *testing.T) {
	mem := &flatMemory{latency: 10}
	c := mustCache(t, smallConfig(), mem)
	for i := 0; i < 100; i++ {
		c.Access(int64(i*1000), uint64(i)*0x1000, false)
	}
	c.PruneInflight(1 << 40)
	if len(c.inflight) != 0 {
		t.Fatalf("prune left %d entries", len(c.inflight))
	}
}

func TestCompletionAfterRequest(t *testing.T) {
	mem := &flatMemory{latency: 25}
	cfg := smallConfig()
	f := func(addrs []uint16, gaps []uint8) bool {
		c, err := New(cfg, mem)
		if err != nil {
			return false
		}
		var clock int64
		for i, a := range addrs {
			if i < len(gaps) {
				clock += int64(gaps[i])
			}
			r := c.AccessTimed(clock, uint64(a)*8, i%4 == 0)
			if r.Done <= clock || r.Start < clock {
				return false
			}
			if r.Hit && r.Done != r.Start+int64(cfg.HitLatency) {
				return false
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessLevelInterface(t *testing.T) {
	mem := &flatMemory{latency: 7}
	c := mustCache(t, smallConfig(), mem)
	var lvl Level = c
	if done := lvl.Access(0, 0, false); done != 9 { // 2 lookup + 7 memory
		t.Fatalf("Level.Access done = %d, want 9", done)
	}
	if c.Config().Name != "t" {
		t.Fatal("Config() mismatch")
	}
}

func TestNextLinePrefetchHelpsStreaming(t *testing.T) {
	run := func(prefetch bool) (Stats, int64) {
		mem := &flatMemory{latency: 100}
		cfg := DefaultL1()
		cfg.NextLinePrefetch = prefetch
		c := mustCache(t, cfg, mem)
		clock := int64(0)
		// Sequential word walk over 1 MB: classic streaming.
		for addr := uint64(0); addr < 1<<20; addr += 8 {
			clock = c.Access(clock, addr, false)
		}
		return c.Stats(), clock
	}
	base, baseTime := run(false)
	pf, pfTime := run(true)
	if pf.Prefetches == 0 {
		t.Fatal("prefetcher idle on a streaming walk")
	}
	if base.Prefetches != 0 {
		t.Fatal("prefetches counted with prefetcher off")
	}
	if pfTime >= baseTime {
		t.Fatalf("prefetching did not speed streaming: %d vs %d cycles", pfTime, baseTime)
	}
	// Demand misses shrink: the next line is in flight by the time the
	// walk reaches it (merged or hit).
	if pf.Misses-pf.MSHRMerges >= base.Misses-base.MSHRMerges {
		t.Fatalf("primary demand misses not reduced: %d vs %d",
			pf.Misses-pf.MSHRMerges, base.Misses-base.MSHRMerges)
	}
}

func TestPrefetchDoesNotEvictDirtyLines(t *testing.T) {
	mem := &flatMemory{latency: 10}
	cfg := smallConfig() // 8 sets, 2-way
	cfg.NextLinePrefetch = true
	cfg.MSHRs = 8
	c := mustCache(t, cfg, mem)
	setStride := uint64(cfg.Sets() * cfg.LineBytes)
	clock := c.Access(0, 0, true) // dirty line in set 0
	clock = c.Access(clock, 1*setStride, true)
	// A miss in set 7 prefetches line in set 0 (line+1 wraps sets): the
	// dirty lines must survive speculative installs.
	before := c.Stats().Writebacks
	clock = c.Access(clock, 7*uint64(cfg.LineBytes), false)
	_ = clock
	if c.Stats().Writebacks != before {
		t.Fatal("prefetch caused a writeback")
	}
}

func TestPrefetchUselessForRandom(t *testing.T) {
	run := func(prefetch bool) int64 {
		mem := &flatMemory{latency: 100}
		cfg := DefaultL1()
		cfg.NextLinePrefetch = prefetch
		c := mustCache(t, cfg, mem)
		clock := int64(0)
		x := uint64(7)
		for i := 0; i < 20000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			clock = c.Access(clock, (x%(1<<26))&^7, false)
		}
		return clock
	}
	base := run(false)
	pf := run(true)
	// Random access gains nothing; allow small slack either way.
	ratio := float64(pf) / float64(base)
	if ratio < 0.9 || ratio > 1.2 {
		t.Fatalf("prefetch changed random-walk time unexpectedly: ratio %v", ratio)
	}
}
