// Package cache implements a non-blocking set-associative cache timing
// model with banks, ports, LRU replacement, write-back/write-allocate
// policy and MSHRs (miss status holding registers). Misses are forwarded
// to a lower Level; secondary misses to an in-flight line merge into the
// existing MSHR, which is precisely the hardware behaviour the C-AMAT
// miss-concurrency detector (MCD) observes.
//
// Like the DRAM model, the cache is a timing calculator: tag state is
// updated in access-processing order while latencies are computed from
// per-resource reservations (ports, banks, MSHR slots), the standard
// trace-driven simulation discipline.
package cache

import "fmt"

// Level is anything that can service a line request and report when the
// data arrives.
type Level interface {
	Access(t int64, addr uint64, write bool) int64
}

// Config describes one cache.
type Config struct {
	Name       string
	SizeKB     int
	LineBytes  int
	Assoc      int
	Banks      int
	Ports      int // concurrent accesses accepted per cycle
	HitLatency int
	MSHRs      int
	// NextLinePrefetch enables a simple sequential prefetcher: every
	// demand miss also requests the following line (if neither present
	// nor in flight), using a free MSHR when one is available. Prefetch
	// fills install with low replacement priority and never block demand
	// accesses.
	NextLinePrefetch bool
}

// DefaultL1 returns a 32 KB, 8-way, 3-cycle private L1 with 8 MSHRs.
func DefaultL1() Config {
	return Config{Name: "L1", SizeKB: 32, LineBytes: 64, Assoc: 8, Banks: 4, Ports: 2, HitLatency: 3, MSHRs: 8}
}

// DefaultL2 returns a 2 MB, 16-way, 12-cycle shared L2 with 32 MSHRs.
func DefaultL2() Config {
	return Config{Name: "L2", SizeKB: 2048, LineBytes: 64, Assoc: 16, Banks: 8, Ports: 4, HitLatency: 12, MSHRs: 32}
}

// Validate checks the geometry. Sets must come out a positive power-of-two
// friendly integer, but non-power-of-two set counts are allowed (modulo
// indexing).
func (c Config) Validate() error {
	switch {
	case c.SizeKB < 1 || c.LineBytes < 8 || c.Assoc < 1:
		return fmt.Errorf("cache %s: bad geometry size=%dKB line=%dB assoc=%d", c.Name, c.SizeKB, c.LineBytes, c.Assoc)
	case c.Banks < 1 || c.Ports < 1:
		return fmt.Errorf("cache %s: need ≥1 bank and port", c.Name)
	case c.HitLatency < 1:
		return fmt.Errorf("cache %s: hit latency %d below 1", c.Name, c.HitLatency)
	case c.MSHRs < 1:
		return fmt.Errorf("cache %s: need ≥1 MSHR", c.Name)
	}
	if c.SizeKB*1024 < c.LineBytes*c.Assoc {
		return fmt.Errorf("cache %s: capacity below one set", c.Name)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeKB * 1024 / (c.LineBytes * c.Assoc) }

// Stats aggregates cache behaviour.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	MSHRMerges uint64 // secondary misses merged into an in-flight line
	Writebacks uint64
	Prefetches uint64 // next-line prefetch requests issued
	// LatencySum accumulates per-access total latency (done − request),
	// so LatencySum/Accesses is the cache's average access time.
	LatencySum uint64
}

// MissRate returns conventional misses/accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// AvgLatency returns mean cycles per access.
func (s Stats) AvgLatency() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Accesses)
}

// Result describes one access's timing for detectors: the cycle the cache
// began processing it, the completion cycle, and whether it hit.
type Result struct {
	Start int64
	Done  int64
	Hit   bool
	// Merged reports a secondary miss satisfied by an in-flight MSHR.
	Merged bool
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU clock
}

// Cache is the timing model. Not safe for concurrent use.
type Cache struct {
	cfg   Config
	lower Level

	sets [][]way
	lru  uint64

	portFree []int64
	bankFree []int64
	mshrFree []int64
	inflight map[uint64]int64 // line → fill completion time

	stats Stats
}

// New builds a cache over the given lower level (which must not be nil).
func New(cfg Config, lower Level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lower == nil {
		return nil, fmt.Errorf("cache %s: nil lower level", cfg.Name)
	}
	c := &Cache{
		cfg:      cfg,
		lower:    lower,
		sets:     make([][]way, cfg.Sets()),
		portFree: make([]int64, cfg.Ports),
		bankFree: make([]int64, cfg.Banks),
		mshrFree: make([]int64, cfg.MSHRs),
		inflight: make(map[uint64]int64),
	}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Assoc)
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// argmin returns the index of the earliest-free resource slot.
func argmin(a []int64) int {
	best := 0
	for i, v := range a {
		if v < a[best] {
			best = i
		}
	}
	return best
}

// AccessTimed services one reference arriving at cycle t and returns full
// timing detail. State updates (tags, LRU, dirty bits) occur immediately
// in processing order.
func (c *Cache) AccessTimed(t int64, addr uint64, write bool) Result {
	line := addr / uint64(c.cfg.LineBytes)
	setIdx := int(line % uint64(len(c.sets)))
	bankIdx := int(line % uint64(c.cfg.Banks))

	// Port and bank arbitration: the access starts when the request
	// arrives and a port plus the target bank are free. Each occupies the
	// resource for one (pipelined) cycle.
	p := argmin(c.portFree)
	start := t
	if c.portFree[p] > start {
		start = c.portFree[p]
	}
	if c.bankFree[bankIdx] > start {
		start = c.bankFree[bankIdx]
	}
	c.portFree[p] = start + 1
	c.bankFree[bankIdx] = start + 1

	c.stats.Accesses++
	c.lru++
	set := c.sets[setIdx]
	tag := line
	lookupDone := start + int64(c.cfg.HitLatency)

	// An in-flight line is a secondary miss even though its tag is already
	// installed: the data has not arrived, so the access merges into the
	// outstanding MSHR and completes at the fill.
	if fill, ok := c.inflight[line]; ok {
		if fill > lookupDone {
			c.stats.Misses++
			c.stats.MSHRMerges++
			for i := range set {
				if set[i].valid && set[i].tag == tag {
					set[i].used = c.lru
					if write {
						set[i].dirty = true
					}
					break
				}
			}
			c.stats.LatencySum += uint64(fill - t)
			return Result{Start: start, Done: fill, Hit: false, Merged: true}
		}
		delete(c.inflight, line)
	}

	// Lookup.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.lru
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			done := lookupDone
			c.stats.LatencySum += uint64(done - t)
			return Result{Start: start, Done: done, Hit: true}
		}
	}

	// Miss path. A full MSHR file stalls the access at the cache
	// interface (the hardware behaviour: the load/store unit replays the
	// access once a slot frees), so the access's observable window —
	// which the MCD measures from MSHR state — begins when a slot is
	// available.
	c.stats.Misses++
	m := argmin(c.mshrFree)
	if c.mshrFree[m] > start {
		start = c.mshrFree[m]
		lookupDone = start + int64(c.cfg.HitLatency)
	}
	reqStart := lookupDone
	fill := c.lower.Access(reqStart, line*uint64(c.cfg.LineBytes), false)
	c.mshrFree[m] = fill
	c.inflight[line] = fill

	// Install the line: LRU victim, write back if dirty.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
		victimAddr := set[victim].tag * uint64(c.cfg.LineBytes)
		// Fire-and-forget: the writeback occupies lower-level resources
		// but nothing waits for it.
		c.lower.Access(fill, victimAddr, true)
	}
	set[victim] = way{tag: tag, valid: true, dirty: write, used: c.lru}

	if c.cfg.NextLinePrefetch {
		c.prefetch(line+1, reqStart)
	}

	c.stats.LatencySum += uint64(fill - t)
	return Result{Start: start, Done: fill, Hit: false}
}

// prefetch issues a next-line fill if the line is absent, not in flight,
// and a free MSHR exists right now (prefetches never queue behind demand).
func (c *Cache) prefetch(line uint64, t int64) {
	if _, ok := c.inflight[line]; ok {
		return
	}
	setIdx := int(line % uint64(len(c.sets)))
	set := c.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return // already resident
		}
	}
	m := argmin(c.mshrFree)
	if c.mshrFree[m] > t {
		return // no spare MSHR: drop the prefetch
	}
	fill := c.lower.Access(t, line*uint64(c.cfg.LineBytes), false)
	c.mshrFree[m] = fill
	c.inflight[line] = fill
	c.stats.Prefetches++

	// Install with lowest replacement priority (used = 0 ages it out
	// first) unless it would evict a dirty line, in which case skip the
	// install to avoid writeback traffic for speculation.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if !set[i].dirty && (victim < 0 || set[i].used < set[victim].used) {
			victim = i
		}
	}
	if victim < 0 {
		return
	}
	set[victim] = way{tag: line, valid: true, dirty: false, used: 0}
}

// Access implements Level: it services the reference and returns only the
// completion time, so caches stack naturally (L1 over L2 over DRAM).
func (c *Cache) Access(t int64, addr uint64, write bool) int64 {
	return c.AccessTimed(t, addr, write).Done
}

// Contents returns the number of valid lines, for tests.
func (c *Cache) Contents() int {
	n := 0
	for _, set := range c.sets {
		for _, w := range set {
			if w.valid {
				n++
			}
		}
	}
	return n
}

// PruneInflight drops stale in-flight records older than the watermark;
// the simulator calls it periodically to bound memory on long runs.
func (c *Cache) PruneInflight(watermark int64) {
	//lint:allow detguard prune order is irrelevant: every record below the watermark is deleted regardless of iteration order
	for line, fill := range c.inflight {
		if fill < watermark {
			delete(c.inflight, line)
		}
	}
}
