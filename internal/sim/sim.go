// Package sim assembles the full many-core simulator used as the
// GEM5+DRAMSim2 substitute: N out-of-order cores with private non-blocking
// L1 caches, a shared banked L2 reached over a mesh NoC, and a
// bank/row-buffer DRAM model. Each core carries a C-AMAT detector
// (HCD+MCD) and every hierarchy layer an APC tracker, so one run yields
// all measured parameters the C²-Bound model consumes.
package sim

import (
	"fmt"

	"repro/internal/apc"
	"repro/internal/camat"
	"repro/internal/sim/cache"
	"repro/internal/sim/cpu"
	"repro/internal/sim/dram"
	"repro/internal/sim/noc"
)

// Config describes the simulated machine.
type Config struct {
	Cores int
	Core  cpu.Config
	L1    cache.Config // per-core private L1
	L2    cache.Config // shared L2 (Banks spread over the NoC)
	DRAM  dram.Config
	NoC   noc.Config
}

// DefaultConfig models the paper's testbed: 4-wide 128-entry-ROB cores,
// 32 KB L1s, a 2 MB shared L2 and DDR3-like memory.
func DefaultConfig(cores int) Config {
	return Config{
		Cores: cores,
		Core:  cpu.DefaultConfig(),
		L1:    cache.DefaultL1(),
		L2:    cache.DefaultL2(),
		DRAM:  dram.DefaultConfig(),
		NoC:   noc.DefaultConfig(cores),
	}
}

// Validate checks the machine description.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: %d cores", c.Cores)
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	return c.NoC.Validate()
}

// Result carries everything a simulation measures.
type Result struct {
	Cores        int
	Cycles       int64 // slowest core's cycle count
	Instructions uint64
	MemAccesses  uint64
	CPI          float64 // aggregate: total cycles×cores view uses per-core mean

	CoreStats   []cpu.Stats
	L1Analyses  []camat.Analysis // per-core detector output
	L1Aggregate camat.Analysis   // merged across cores
	L1Params    camat.Params     // aggregate C-AMAT parameters at L1

	L1Stats   cache.Stats // summed across cores
	L2Stats   cache.Stats
	DRAMStats dram.Stats

	// APCL1, APCL2 and APCMem are the chip-level layer APCs: accesses at
	// the layer per cycle in which the layer has at least one outstanding
	// access (union across requesters). The per-core APC = 1/C-AMAT
	// identity is available as 1/L1Aggregate.CAMATDirect().
	APCL1  float64
	APCL2  float64
	APCMem float64
}

// recordingLevel wraps a Level with an APC tracker and an optional
// fixed extra latency in each direction (the NoC hop for L2 access).
type recordingLevel struct {
	inner   cache.Level
	tracker *apc.Tracker
	oneWay  int64
}

func (r *recordingLevel) Access(t int64, addr uint64, write bool) int64 {
	start := t + r.oneWay
	done := r.inner.Access(start, addr, write)
	r.tracker.Add(start, done)
	return done + r.oneWay
}

// observerChain fans one core's L1 access results out to the detector and
// the L1 APC tracker.
type observerChain struct {
	obs     []cpu.AccessObserver
	tracker *apc.Tracker
}

func (o *observerChain) Observe(res cache.Result, hitLatency int) error {
	var firstErr error
	for _, ob := range o.obs {
		if err := ob.Observe(res, hitLatency); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	o.tracker.Add(res.Start, res.Done)
	return firstErr
}

// Detector abstracts the per-core analyzer so callers can substitute their
// own (the default is detector.New via the Run wiring in run.go).
type Detector interface {
	cpu.AccessObserver
	Finalize() camat.Analysis
}
