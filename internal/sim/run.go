package sim

import (
	"context"
	"fmt"

	"repro/internal/apc"
	"repro/internal/camat"
	"repro/internal/detector"
	"repro/internal/obs"
	"repro/internal/sim/cache"
	"repro/internal/sim/cpu"
	"repro/internal/sim/dram"
	"repro/internal/sim/noc"
	"repro/internal/trace"
)

// Run simulates the machine executing one reference trace per core.
// Cores advance in global-time order (the core with the smallest clock
// steps next), so shared-resource reservations at the L2 and DRAM happen
// in approximately arrival order. Run returns an error for invalid
// configurations or a core count/trace count mismatch.
func Run(cfg Config, traces [][]trace.Ref) (*Result, error) {
	//lint:allow ctxflow deliberate non-ctx convenience wrapper over RunCtx
	return RunCtx(context.Background(), cfg, traces)
}

// RunCtx is Run with cancellation: the stepping loop polls ctx every few
// thousand references and returns ctx.Err() when the caller cancels or a
// deadline expires, so a long simulation never outlives its sweep.
func RunCtx(ctx context.Context, cfg Config, traces [][]trace.Ref) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(traces) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d traces for %d cores", len(traces), cfg.Cores)
	}
	totalRefs := 0
	for _, tr := range traces {
		totalRefs += len(tr)
	}
	tracer := obs.TracerFrom(ctx)
	ctx, runSp := tracer.Start(ctx, "sim.run",
		obs.I("cores", int64(cfg.Cores)), obs.I("refs", int64(totalRefs)))
	defer runSp.Finish()

	mem, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	memTracker := apc.NewTracker(0)
	memLevel := &recordingLevel{inner: mem, tracker: memTracker}

	l2, err := cache.New(cfg.L2, memLevel)
	if err != nil {
		return nil, err
	}
	mesh, err := noc.New(cfg.NoC)
	if err != nil {
		return nil, err
	}
	l2Tracker := apc.NewTracker(0)
	// Layer APCs take the chip-wide view: accesses at the layer divided
	// by the union of cycles the layer has at least one outstanding
	// access (Fig. 13). The per-core APC = 1/C-AMAT identity is reported
	// separately through the detector aggregate (Result.L1Aggregate).
	l1Tracker := apc.NewTracker(0)

	cores := make([]*cpu.Core, cfg.Cores)
	l1s := make([]*cache.Cache, cfg.Cores)
	dets := make([]*detector.Detector, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		// Each core reaches the shared L2 through the mesh; the hop count
		// uses the average distance from the core to the L2 banks, which
		// are spread across the die. Bank queueing itself is modelled by
		// the L2's bank reservations.
		var hops int64
		banks := cfg.L2.Banks
		for b := 0; b < banks; b++ {
			// Banks occupy mesh nodes round-robin.
			hops += mesh.Latency(i, b*maxInt(1, cfg.NoC.Nodes/banks))
		}
		l2Adapter := &recordingLevel{inner: l2, tracker: l2Tracker, oneWay: hops / int64(banks)}
		l1, err := cache.New(cfg.L1, l2Adapter)
		if err != nil {
			return nil, err
		}
		det := detector.New()
		observer := &observerChain{obs: []cpu.AccessObserver{det}, tracker: l1Tracker}
		core, err := cpu.NewCore(cfg.Core, l1, observer)
		if err != nil {
			return nil, err
		}
		cores[i] = core
		l1s[i] = l1
		dets[i] = det
	}

	// Global-time-ordered interleaving.
	idx := make([]int, cfg.Cores)
	remaining := 0
	for _, tr := range traces {
		remaining += len(tr)
	}
	steps := 0
	for remaining > 0 {
		best := -1
		var bestClock int64
		for c := 0; c < cfg.Cores; c++ {
			if idx[c] >= len(traces[c]) {
				continue
			}
			if best < 0 || cores[c].Clock() < bestClock {
				best = c
				bestClock = cores[c].Clock()
			}
		}
		if err := cores[best].Step(traces[best][idx[best]]); err != nil {
			return nil, fmt.Errorf("sim: core %d at reference %d: %w", best, idx[best], err)
		}
		idx[best]++
		remaining--
		steps++
		if steps%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if steps%100000 == 0 {
			watermark := bestClock - (1 << 22)
			for _, l1 := range l1s {
				l1.PruneInflight(watermark)
			}
			l2.PruneInflight(watermark)
		}
	}

	// Per-core step accounting: counters are accumulated here at drain
	// time, not inside the stepping loop, so the hot loop stays untouched;
	// each core additionally gets a child span carrying its tallies.
	met := obs.MetricsFrom(ctx)
	coreInstr := met.Histogram("sim_core_instructions", instructionBuckets())
	res := &Result{Cores: cfg.Cores}
	res.CoreStats = make([]cpu.Stats, cfg.Cores)
	res.L1Analyses = make([]camat.Analysis, cfg.Cores)
	var cpiSum float64
	activeCores := 0
	for i, core := range cores {
		st := core.Drain()
		res.CoreStats[i] = st
		res.Instructions += st.Instructions
		res.MemAccesses += st.MemAccesses
		if st.Cycles > res.Cycles {
			res.Cycles = st.Cycles
		}
		if st.Instructions > 0 {
			cpiSum += st.CPI()
			activeCores++
		}
		coreInstr.Observe(float64(st.Instructions))
		_, coreSp := tracer.Start(ctx, "sim.core",
			obs.I("core", int64(i)),
			obs.I("instructions", int64(st.Instructions)),
			obs.I("mem_accesses", int64(st.MemAccesses)),
			obs.I("cycles", st.Cycles))
		coreSp.Finish()
		res.L1Analyses[i] = dets[i].Finalize()
		l1Stats := l1s[i].Stats()
		res.L1Stats.Accesses += l1Stats.Accesses
		res.L1Stats.Hits += l1Stats.Hits
		res.L1Stats.Misses += l1Stats.Misses
		res.L1Stats.MSHRMerges += l1Stats.MSHRMerges
		res.L1Stats.Writebacks += l1Stats.Writebacks
		res.L1Stats.LatencySum += l1Stats.LatencySum
	}
	if activeCores > 0 {
		res.CPI = cpiSum / float64(activeCores)
	}
	res.L1Aggregate = camat.Merge(res.L1Analyses...)
	res.L1Params = res.L1Aggregate.Params()
	res.L2Stats = l2.Stats()
	res.DRAMStats = mem.Stats()
	res.APCL1 = l1Tracker.APC()
	res.APCL2 = l2Tracker.APC()
	res.APCMem = memTracker.APC()
	met.Counter("sim_runs_total").Add(1)
	met.Counter("sim_steps_total").Add(uint64(steps))
	met.Counter("sim_instructions_total").Add(res.Instructions)
	met.Counter("sim_mem_accesses_total").Add(res.MemAccesses)
	runSp.Annotate(
		obs.I("instructions", int64(res.Instructions)),
		obs.I("cycles", res.Cycles),
		obs.F("cpi", res.CPI))
	return res, nil
}

// instructionBuckets are the sim_core_instructions histogram edges:
// powers of four from 256 to ~4G references per core.
func instructionBuckets() []float64 {
	bounds := make([]float64, 0, 13)
	for v := 256.0; v <= 1<<32; v *= 4 {
		bounds = append(bounds, v)
	}
	return bounds
}

// RunWorkload is a convenience wrapper: it builds one generator per core
// for the named workload (distinct seeds) and runs refsPerCore references
// on each.
func RunWorkload(cfg Config, workload string, wsBytes uint64, meanGap float64, refsPerCore int, seed uint64) (*Result, error) {
	//lint:allow ctxflow deliberate non-ctx convenience wrapper over RunWorkloadCtx
	return RunWorkloadCtx(context.Background(), cfg, workload, wsBytes, meanGap, refsPerCore, seed)
}

// RunWorkloadCtx is RunWorkload with cancellation (see RunCtx).
func RunWorkloadCtx(ctx context.Context, cfg Config, workload string, wsBytes uint64, meanGap float64, refsPerCore int, seed uint64) (*Result, error) {
	if refsPerCore < 1 {
		return nil, fmt.Errorf("sim: refsPerCore %d below 1", refsPerCore)
	}
	refs := make([]int, cfg.Cores)
	for i := range refs {
		refs[i] = refsPerCore
	}
	return RunWorkloadCountsCtx(ctx, cfg, workload, wsBytes, meanGap, refs, seed)
}

// RunWorkloadCountsCtx runs refs[i] references of the named workload on
// core i — the uneven-split form used when a fixed total workload is
// distributed across cores without losing the remainder. A zero count
// leaves that core idle; per-core generators stay seeded exactly as in
// RunWorkloadCtx, so an even refs slice reproduces it bit for bit.
func RunWorkloadCountsCtx(ctx context.Context, cfg Config, workload string, wsBytes uint64, meanGap float64, refs []int, seed uint64) (*Result, error) {
	if len(refs) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d per-core reference counts for %d cores", len(refs), cfg.Cores)
	}
	traces := make([][]trace.Ref, cfg.Cores)
	for i := range traces {
		if refs[i] < 0 {
			return nil, fmt.Errorf("sim: core %d has negative reference count %d", i, refs[i])
		}
		g, err := trace.ByName(workload, wsBytes, meanGap, seed+uint64(i)*0x9e37)
		if err != nil {
			return nil, err
		}
		traces[i] = trace.Take(g, refs[i])
	}
	return RunCtx(ctx, cfg, traces)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WorkloadSpec describes one application's share of a mixed run.
type WorkloadSpec struct {
	Workload string
	WSBytes  uint64
	MeanGap  float64
	Refs     int // references per core
	Cores    int
	Seed     uint64
}

// RunMixed co-schedules several applications on one machine: spec i
// occupies spec.Cores cores with its own generator instances. The
// machine's core count is the sum of the specs' cores. Per-core results
// in the returned Result follow spec order, so callers can attribute
// interference to individual applications.
func RunMixed(cfg Config, specs []WorkloadSpec) (*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: RunMixed needs at least one workload")
	}
	total := 0
	for i, sp := range specs {
		if sp.Cores < 1 || sp.Refs < 1 {
			return nil, fmt.Errorf("sim: spec %d needs ≥1 core and ≥1 ref", i)
		}
		total += sp.Cores
	}
	cfg.Cores = total
	cfg.NoC.Nodes = total
	traces := make([][]trace.Ref, 0, total)
	for i, sp := range specs {
		for c := 0; c < sp.Cores; c++ {
			g, err := trace.ByName(sp.Workload, sp.WSBytes, sp.MeanGap, sp.Seed+uint64(i*131+c)*0x9e37)
			if err != nil {
				return nil, err
			}
			traces = append(traces, trace.Take(g, sp.Refs))
		}
	}
	return Run(cfg, traces)
}
