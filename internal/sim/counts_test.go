package sim

import (
	"context"
	"reflect"
	"testing"
)

func TestRunWorkloadCountsValidation(t *testing.T) {
	cfg := DefaultConfig(4)
	ctx := context.Background()
	if _, err := RunWorkloadCountsCtx(ctx, cfg, "stream", 1<<20, 2, []int{100, 100}, 7); err == nil {
		t.Fatal("count/core mismatch accepted")
	}
	if _, err := RunWorkloadCountsCtx(ctx, cfg, "stream", 1<<20, 2, []int{100, -1, 100, 100}, 7); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestRunWorkloadCountsEvenSplitMatchesRunWorkload(t *testing.T) {
	// An even refs slice must reproduce RunWorkloadCtx bit for bit: same
	// per-core seeding, same traces, same result.
	cfg := DefaultConfig(3)
	ctx := context.Background()
	a, err := RunWorkloadCtx(ctx, cfg, "stencil", 1<<20, 2, 1500, 7)
	if err != nil {
		t.Fatalf("RunWorkloadCtx: %v", err)
	}
	b, err := RunWorkloadCountsCtx(ctx, cfg, "stencil", 1<<20, 2, []int{1500, 1500, 1500}, 7)
	if err != nil {
		t.Fatalf("RunWorkloadCountsCtx: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("even split diverged from RunWorkloadCtx")
	}
}

func TestRunWorkloadCountsUnevenTotalInvariance(t *testing.T) {
	// The uneven-split form exists so a fixed workload total survives any
	// core count; the simulated access count must equal the sum exactly,
	// including zero-work cores.
	cfg := DefaultConfig(4)
	refs := []int{1001, 1000, 1000, 0}
	res, err := RunWorkloadCountsCtx(context.Background(), cfg, "stream", 1<<20, 2, refs, 7)
	if err != nil {
		t.Fatalf("RunWorkloadCountsCtx: %v", err)
	}
	total := uint64(0)
	for _, r := range refs {
		total += uint64(r)
	}
	if res.MemAccesses != total {
		t.Fatalf("MemAccesses = %d, want %d", res.MemAccesses, total)
	}
	if res.CoreStats[3].MemAccesses != 0 {
		t.Fatalf("idle core simulated %d accesses", res.CoreStats[3].MemAccesses)
	}
}
