// Package noc models the on-chip interconnect between cores and the
// shared-L2 banks as a 2-D mesh: cores and banks are placed on a
// √N-by-√N grid and each request pays the Manhattan hop distance in both
// directions plus router overhead. Queueing inside the network is left to
// the L2 bank/port reservations, which dominate contention in practice.
package noc

import (
	"fmt"
	"math"
)

// Config describes the mesh.
type Config struct {
	Nodes        int // number of mesh endpoints (≥ cores, ≥ banks)
	HopCycles    int // per-hop link latency
	RouterCycles int // fixed injection+ejection overhead
}

// DefaultConfig returns a typical low-radix mesh: 2 cycles per hop, 4
// cycles of router overhead.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, HopCycles: 2, RouterCycles: 4}
}

// Validate checks the mesh shape.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("noc: %d nodes", c.Nodes)
	}
	if c.HopCycles < 0 || c.RouterCycles < 0 {
		return fmt.Errorf("noc: negative latency (hop=%d router=%d)", c.HopCycles, c.RouterCycles)
	}
	return nil
}

// Mesh computes deterministic hop latencies.
type Mesh struct {
	cfg  Config
	side int
}

// New builds the mesh; nodes are arranged on the smallest square that
// holds them, row-major.
func New(cfg Config) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	side := int(math.Ceil(math.Sqrt(float64(cfg.Nodes))))
	if side < 1 {
		side = 1
	}
	return &Mesh{cfg: cfg, side: side}, nil
}

// Side returns the mesh's edge length.
func (m *Mesh) Side() int { return m.side }

// position maps a node index onto the grid.
func (m *Mesh) position(node int) (x, y int) {
	node %= m.side * m.side
	return node % m.side, node / m.side
}

// Hops returns the Manhattan distance between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.position(src)
	dx, dy := m.position(dst)
	h := sx - dx
	if h < 0 {
		h = -h
	}
	v := sy - dy
	if v < 0 {
		v = -v
	}
	return h + v
}

// Latency returns the one-way latency in cycles from src to dst.
func (m *Mesh) Latency(src, dst int) int64 {
	return int64(m.cfg.RouterCycles + m.cfg.HopCycles*m.Hops(src, dst))
}
