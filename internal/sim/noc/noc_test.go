package noc

import (
	"testing"
	"testing/quick"
)

func mustMesh(t *testing.T, cfg Config) *Mesh {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig(16).Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	if err := (Config{Nodes: 0}).Validate(); err == nil {
		t.Error("zero nodes accepted")
	}
	if err := (Config{Nodes: 4, HopCycles: -1}).Validate(); err == nil {
		t.Error("negative hop accepted")
	}
	if _, err := New(Config{Nodes: -1}); err == nil {
		t.Error("New accepted bad config")
	}
}

func TestMeshShape(t *testing.T) {
	cases := []struct{ nodes, side int }{
		{1, 1}, {2, 2}, {4, 2}, {5, 3}, {9, 3}, {16, 4}, {17, 5}, {64, 8},
	}
	for _, c := range cases {
		m := mustMesh(t, DefaultConfig(c.nodes))
		if m.Side() != c.side {
			t.Errorf("nodes=%d: side=%d, want %d", c.nodes, m.Side(), c.side)
		}
	}
}

func TestHops(t *testing.T) {
	m := mustMesh(t, DefaultConfig(16)) // 4×4
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 4, 1},  // one row down
		{0, 15, 6}, // corner to corner
		{5, 10, 2},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLatency(t *testing.T) {
	cfg := Config{Nodes: 16, HopCycles: 2, RouterCycles: 4}
	m := mustMesh(t, cfg)
	if got := m.Latency(0, 15); got != int64(4+2*6) {
		t.Fatalf("Latency corner-corner = %d, want 16", got)
	}
	if got := m.Latency(3, 3); got != 4 {
		t.Fatalf("self latency = %d, want router overhead 4", got)
	}
}

func TestHopsMetricProperties(t *testing.T) {
	m := mustMesh(t, DefaultConfig(25))
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a, b, c := int(aRaw)%25, int(bRaw)%25, int(cRaw)%25
		// Symmetry, identity, triangle inequality.
		return m.Hops(a, b) == m.Hops(b, a) &&
			m.Hops(a, a) == 0 &&
			m.Hops(a, c) <= m.Hops(a, b)+m.Hops(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeWraparound(t *testing.T) {
	// Node indices beyond the grid wrap rather than panic (banks placed
	// round-robin can exceed the node count).
	m := mustMesh(t, DefaultConfig(4))
	if got := m.Hops(0, 4); got != 0 {
		t.Fatalf("wrapped hop = %d, want 0", got)
	}
}
