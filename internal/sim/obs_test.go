package sim

import (
	"context"
	"testing"

	"repro/internal/obs"
)

func TestRunObservability(t *testing.T) {
	tr := obs.NewTracer(64)
	reg := obs.NewRegistry()
	ctx := obs.ContextWithMetrics(obs.ContextWithTracer(context.Background(), tr), reg)

	const cores, refs = 2, 3000
	res, err := RunWorkloadCtx(ctx, DefaultConfig(cores), "stencil", 1<<20, 2, refs, 1)
	if err != nil {
		t.Fatalf("RunWorkloadCtx: %v", err)
	}

	if got := reg.Counter("sim_runs_total").Value(); got != 1 {
		t.Fatalf("sim_runs_total = %d", got)
	}
	if got := reg.Counter("sim_steps_total").Value(); got != cores*refs {
		t.Fatalf("sim_steps_total = %d, want %d", got, cores*refs)
	}
	if got := reg.Counter("sim_instructions_total").Value(); got != res.Instructions {
		t.Fatalf("sim_instructions_total = %d, Result says %d", got, res.Instructions)
	}
	if got := reg.Counter("sim_mem_accesses_total").Value(); got != res.MemAccesses {
		t.Fatalf("sim_mem_accesses_total = %d, Result says %d", got, res.MemAccesses)
	}
	if got := reg.Histogram("sim_core_instructions", nil).Count(); got != cores {
		t.Fatalf("sim_core_instructions count = %d, want one sample per core", got)
	}

	spans := tr.Snapshot()
	var runSpans, coreSpans int
	for _, sp := range spans {
		switch sp.Name {
		case "sim.run":
			runSpans++
		case "sim.core":
			coreSpans++
			if sp.Parent == 0 {
				t.Fatalf("sim.core span %d has no parent", sp.ID)
			}
		}
	}
	if runSpans != 1 || coreSpans != cores {
		t.Fatalf("spans: %d sim.run, %d sim.core (want 1, %d)", runSpans, coreSpans, cores)
	}
}
