// Package baselines implements the prior analytical CMP models the paper
// positions C²-Bound against (§VI): Hill & Marty's multicore Amdahl
// variants, Sun & Chen's memory-bounded reevaluation, and Cassidy &
// Andreou's AMAT-augmented objective. All share the BCE (base core
// equivalent) cost model: a chip of n BCEs builds cores of r BCEs each
// with single-core performance perf(r) = √r (Pollack's rule).
package baselines

import (
	"fmt"
	"math"

	"repro/internal/speedup"
)

// Perf is Pollack's-rule core performance in the BCE model.
func Perf(r float64) float64 { return math.Sqrt(r) }

// validate checks the shared argument ranges: fseq in [0,1], 1 ≤ r ≤ n.
func validate(fseq, n, r float64) error {
	switch {
	case fseq < 0 || fseq > 1 || math.IsNaN(fseq):
		return fmt.Errorf("baselines: fseq=%v outside [0,1]", fseq)
	case n < 1:
		return fmt.Errorf("baselines: chip size n=%v below 1 BCE", n)
	case r < 1 || r > n:
		return fmt.Errorf("baselines: core size r=%v outside [1,n=%v]", r, n)
	}
	return nil
}

// HillMartySymmetric returns the speedup of a symmetric multicore: n/r
// cores of r BCEs each. The sequential fraction runs on one core at
// perf(r); the parallel fraction on all n/r cores.
func HillMartySymmetric(fseq, n, r float64) (float64, error) {
	if err := validate(fseq, n, r); err != nil {
		return 0, err
	}
	p := Perf(r)
	return 1 / (fseq/p + (1-fseq)*r/(p*n)), nil
}

// HillMartyAsymmetric returns the speedup of an asymmetric multicore: one
// big core of r BCEs plus n−r base cores. Sequential work runs on the big
// core; parallel work uses the big core and all base cores together.
func HillMartyAsymmetric(fseq, n, r float64) (float64, error) {
	if err := validate(fseq, n, r); err != nil {
		return 0, err
	}
	p := Perf(r)
	return 1 / (fseq/p + (1-fseq)/(p+n-r)), nil
}

// HillMartyDynamic returns the speedup of a dynamic multicore that fuses
// all n BCEs into one core of performance perf(r) for sequential work
// (r = n in the ideal case) and runs parallel work on n base cores.
func HillMartyDynamic(fseq, n, r float64) (float64, error) {
	if err := validate(fseq, n, r); err != nil {
		return 0, err
	}
	return 1 / (fseq/Perf(r) + (1-fseq)/n), nil
}

// SunChen returns the memory-bounded multicore speedup of Sun & Chen
// (JPDC 2010): Sun-Ni's law applied to the Hill-Marty cost model. The
// chip builds m = n/r cores; the problem scales by g(m) with the per-core
// memory replicated m times. Data-access concurrency is NOT modelled —
// that is the gap C²-Bound fills.
func SunChen(fseq, n, r float64, g speedup.ScaleFunc) (float64, error) {
	if err := validate(fseq, n, r); err != nil {
		return 0, err
	}
	if g == nil {
		return 0, fmt.Errorf("baselines: nil scale function")
	}
	m := n / r
	gm := g(m)
	p := Perf(r)
	return (fseq + (1-fseq)*gm) / (fseq/p + (1-fseq)*gm/(m*p)), nil
}

// CassidyAndreou returns the execution-time objective of Cassidy &
// Andreou's AMAT-augmented Amdahl model for N cores: a fixed-size problem
// whose per-instruction cost is CPI_exe + fmem×AMAT with strictly
// sequential data access. It is exactly the C²-Bound objective of Eq. 10
// at C = 1 and g(N) = 1, which is how the paper positions it.
func CassidyAndreou(cpiExe, fmem, amat, fseq float64, n int) (float64, error) {
	switch {
	case cpiExe <= 0 || amat < 0:
		return 0, fmt.Errorf("baselines: bad CPI_exe=%v or AMAT=%v", cpiExe, amat)
	case fmem < 0 || fmem > 1:
		return 0, fmt.Errorf("baselines: fmem=%v outside [0,1]", fmem)
	case fseq < 0 || fseq > 1:
		return 0, fmt.Errorf("baselines: fseq=%v outside [0,1]", fseq)
	case n < 1:
		return 0, fmt.Errorf("baselines: n=%d below 1", n)
	}
	cpi := cpiExe + fmem*amat
	return cpi * (fseq + (1-fseq)/float64(n)), nil
}

// OptimalSymmetricR finds the core size r ∈ [1, n] maximizing the
// Hill-Marty symmetric speedup by golden-section-style scan (the function
// is unimodal in r).
func OptimalSymmetricR(fseq, n float64) (float64, float64, error) {
	if err := validate(fseq, n, 1); err != nil {
		return 0, 0, err
	}
	bestR, bestS := 1.0, 0.0
	// Scan r geometrically then refine linearly around the best.
	for r := 1.0; r <= n; r *= 1.05 {
		s, err := HillMartySymmetric(fseq, n, r)
		if err != nil {
			return 0, 0, err
		}
		if s > bestS {
			bestR, bestS = r, s
		}
	}
	if s, err := HillMartySymmetric(fseq, n, n); err == nil && s > bestS {
		bestR, bestS = n, s
	}
	lo := bestR / 1.05
	hi := bestR * 1.05
	if hi > n {
		hi = n
	}
	for r := lo; r <= hi; r += (hi - lo) / 64 {
		if s, err := HillMartySymmetric(fseq, n, r); err == nil && s > bestS {
			bestR, bestS = r, s
		}
	}
	return bestR, bestS, nil
}
