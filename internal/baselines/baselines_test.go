package baselines

import (
	"math"
	"testing"

	"repro/internal/speedup"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestPerf(t *testing.T) {
	if Perf(4) != 2 || Perf(1) != 1 {
		t.Fatal("Pollack perf wrong")
	}
}

func TestValidation(t *testing.T) {
	if _, err := HillMartySymmetric(-0.1, 64, 4); err == nil {
		t.Error("bad fseq accepted")
	}
	if _, err := HillMartySymmetric(0.1, 0.5, 0.5); err == nil {
		t.Error("tiny chip accepted")
	}
	if _, err := HillMartyAsymmetric(0.1, 64, 128); err == nil {
		t.Error("r>n accepted")
	}
	if _, err := HillMartyDynamic(2, 64, 4); err == nil {
		t.Error("fseq>1 accepted")
	}
	if _, err := SunChen(0.1, 64, 4, nil); err == nil {
		t.Error("nil g accepted")
	}
}

func TestHillMartySingleCore(t *testing.T) {
	// r = n: one big core; speedup = perf(n) regardless of fseq.
	for _, fseq := range []float64{0, 0.5, 1} {
		s, err := HillMartySymmetric(fseq, 64, 64)
		if err != nil {
			t.Fatalf("symmetric: %v", err)
		}
		if !almostEq(s, 8, 1e-12) {
			t.Fatalf("fseq=%v: S = %v, want 8", fseq, s)
		}
	}
}

func TestHillMartyBaseCores(t *testing.T) {
	// r = 1 and fully parallel: speedup = n.
	s, err := HillMartySymmetric(0, 256, 1)
	if err != nil {
		t.Fatalf("symmetric: %v", err)
	}
	if !almostEq(s, 256, 1e-12) {
		t.Fatalf("S = %v, want 256", s)
	}
	// Fully sequential: one base core.
	s, err = HillMartySymmetric(1, 256, 1)
	if err != nil {
		t.Fatalf("symmetric: %v", err)
	}
	if !almostEq(s, 1, 1e-12) {
		t.Fatalf("S = %v, want 1", s)
	}
}

func TestAsymmetricBeatsSymmetric(t *testing.T) {
	// Hill & Marty's headline result: with a sequential fraction,
	// asymmetric chips beat the best symmetric chip.
	fseq, n := 0.25, 256.0
	_, bestSym, err := OptimalSymmetricR(fseq, n)
	if err != nil {
		t.Fatalf("OptimalSymmetricR: %v", err)
	}
	bestAsym := 0.0
	for r := 1.0; r <= n; r *= 2 {
		s, err := HillMartyAsymmetric(fseq, n, r)
		if err != nil {
			t.Fatalf("asymmetric: %v", err)
		}
		if s > bestAsym {
			bestAsym = s
		}
	}
	if bestAsym <= bestSym {
		t.Fatalf("asymmetric best %v not above symmetric best %v", bestAsym, bestSym)
	}
	// And dynamic beats asymmetric.
	sDyn, err := HillMartyDynamic(fseq, n, n)
	if err != nil {
		t.Fatalf("dynamic: %v", err)
	}
	if sDyn <= bestAsym {
		t.Fatalf("dynamic %v not above asymmetric %v", sDyn, bestAsym)
	}
}

func TestSunChenReducesToHillMartyFixedSize(t *testing.T) {
	// g = 1 (fixed size) makes Sun-Chen collapse to Hill-Marty symmetric.
	fseq, n, r := 0.3, 64.0, 4.0
	sc, err := SunChen(fseq, n, r, speedup.FixedSize())
	if err != nil {
		t.Fatalf("SunChen: %v", err)
	}
	hm, err := HillMartySymmetric(fseq, n, r)
	if err != nil {
		t.Fatalf("HillMarty: %v", err)
	}
	if !almostEq(sc, hm, 1e-12) {
		t.Fatalf("SunChen(g=1) = %v, HillMarty = %v", sc, hm)
	}
}

func TestSunChenMoreOptimisticThanAmdahl(t *testing.T) {
	// §VI: Sun & Chen's memory-bounded results are more optimistic than
	// fixed-size Amdahl for scalable workloads.
	fseq, n, r := 0.3, 256.0, 4.0
	fixed, err := SunChen(fseq, n, r, speedup.FixedSize())
	if err != nil {
		t.Fatalf("SunChen fixed: %v", err)
	}
	scaled, err := SunChen(fseq, n, r, speedup.PowerLaw(1.5))
	if err != nil {
		t.Fatalf("SunChen scaled: %v", err)
	}
	if scaled <= fixed {
		t.Fatalf("memory-bounded speedup %v not above fixed-size %v", scaled, fixed)
	}
}

func TestCassidyAndreou(t *testing.T) {
	// Baseline sanity: time shrinks with cores, grows with AMAT.
	t1, err := CassidyAndreou(0.5, 0.3, 4, 0.1, 1)
	if err != nil {
		t.Fatalf("CassidyAndreou: %v", err)
	}
	t16, err := CassidyAndreou(0.5, 0.3, 4, 0.1, 16)
	if err != nil {
		t.Fatalf("CassidyAndreou: %v", err)
	}
	if t16 >= t1 {
		t.Fatalf("16 cores (%v) not faster than 1 (%v)", t16, t1)
	}
	slow, err := CassidyAndreou(0.5, 0.3, 40, 0.1, 16)
	if err != nil {
		t.Fatalf("CassidyAndreou: %v", err)
	}
	if slow <= t16 {
		t.Fatalf("10× AMAT did not slow execution: %v vs %v", slow, t16)
	}
	// Exact value check: CPI = 0.5 + 0.3×4 = 1.7; factor = 0.1+0.9 = 1.
	if !almostEq(t1, 1.7, 1e-12) {
		t.Fatalf("t1 = %v, want 1.7", t1)
	}
	for _, bad := range []func() (float64, error){
		func() (float64, error) { return CassidyAndreou(0, 0.3, 4, 0.1, 4) },
		func() (float64, error) { return CassidyAndreou(0.5, 1.3, 4, 0.1, 4) },
		func() (float64, error) { return CassidyAndreou(0.5, 0.3, 4, -1, 4) },
		func() (float64, error) { return CassidyAndreou(0.5, 0.3, 4, 0.1, 0) },
	} {
		if _, err := bad(); err == nil {
			t.Error("invalid Cassidy-Andreou input accepted")
		}
	}
}

func TestOptimalSymmetricRMatchesKnownShape(t *testing.T) {
	// With no sequential work, base cores win (r → 1); fully sequential,
	// one big core wins (r → n).
	r0, _, err := OptimalSymmetricR(0, 256)
	if err != nil {
		t.Fatalf("OptimalSymmetricR: %v", err)
	}
	if r0 > 1.2 {
		t.Fatalf("fseq=0 optimal r = %v, want ≈1", r0)
	}
	r1, _, err := OptimalSymmetricR(1, 256)
	if err != nil {
		t.Fatalf("OptimalSymmetricR: %v", err)
	}
	if r1 < 200 {
		t.Fatalf("fseq=1 optimal r = %v, want ≈n", r1)
	}
	// Intermediate fseq: interior optimum.
	rm, _, err := OptimalSymmetricR(0.2, 256)
	if err != nil {
		t.Fatalf("OptimalSymmetricR: %v", err)
	}
	if rm <= 1.2 || rm >= 200 {
		t.Fatalf("fseq=0.2 optimal r = %v, want interior", rm)
	}
	if _, _, err := OptimalSymmetricR(-1, 256); err == nil {
		t.Error("bad fseq accepted")
	}
}
