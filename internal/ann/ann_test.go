package ann

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func grid2D(n int) [][]float64 {
	var X [][]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			X = append(X, []float64{float64(i) / float64(n-1), float64(j) / float64(n-1)})
		}
	}
	return X
}

func TestConfigDefaults(t *testing.T) {
	if _, err := New(Config{Inputs: 0}); err == nil {
		t.Fatal("zero inputs accepted")
	}
	n, err := New(Config{Inputs: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if n.cfg.Hidden != 16 || n.cfg.Epochs != 500 {
		t.Fatalf("defaults not applied: %+v", n.cfg)
	}
}

func TestPredictBeforeTrain(t *testing.T) {
	n, _ := New(Config{Inputs: 2})
	if _, err := n.Predict([]float64{0, 0}); err == nil {
		t.Fatal("Predict before Train accepted")
	}
}

func TestTrainValidation(t *testing.T) {
	n, _ := New(Config{Inputs: 2})
	if err := n.Train(nil, nil); err == nil {
		t.Fatal("empty training accepted")
	}
	if err := n.Train([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("wrong feature count accepted")
	}
	if err := n.Train([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	X := grid2D(8)
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = 3*x[0] - 2*x[1] + 1
	}
	n, err := New(Config{Inputs: 2, Hidden: 8, Epochs: 800, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := n.Train(X, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	pred, err := n.PredictAll(X)
	if err != nil {
		t.Fatalf("PredictAll: %v", err)
	}
	var maxErr float64
	for i := range pred {
		if e := math.Abs(pred[i] - y[i]); e > maxErr {
			maxErr = e
		}
	}
	span := 6.0 // y ranges over [-1, 4]
	if maxErr/span > 0.05 {
		t.Fatalf("linear fit error %v of span", maxErr/span)
	}
}

func TestLearnsSmoothNonlinearSurface(t *testing.T) {
	// The DSE response surface is smooth and monotone-ish; a small net
	// must fit it well.
	X := grid2D(10)
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = 1/(0.2+x[0]) + 2*x[1]*x[1]
	}
	n, err := New(Config{Inputs: 2, Hidden: 16, Epochs: 1500, Seed: 7, LearningRate: 0.03})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := n.Train(X, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	pred, err := n.PredictAll(X)
	if err != nil {
		t.Fatalf("PredictAll: %v", err)
	}
	mape, err := stats.MAPE(pred, y)
	if err != nil {
		t.Fatalf("MAPE: %v", err)
	}
	if mape > 0.08 {
		t.Fatalf("nonlinear fit MAPE = %v", mape)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	X := grid2D(5)
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = x[0] + x[1]
	}
	run := func() float64 {
		n, _ := New(Config{Inputs: 2, Seed: 42, Epochs: 100})
		if err := n.Train(X, y); err != nil {
			t.Fatalf("Train: %v", err)
		}
		v, _ := n.Predict([]float64{0.3, 0.7})
		return v
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestConstantTarget(t *testing.T) {
	X := grid2D(4)
	y := make([]float64, len(X))
	for i := range y {
		y[i] = 5
	}
	n, _ := New(Config{Inputs: 2, Epochs: 50, Seed: 3})
	if err := n.Train(X, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	got, err := n.Predict(X[0])
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if math.Abs(got-5) > 0.5 {
		t.Fatalf("constant prediction = %v", got)
	}
}

func TestPredictFeatureMismatch(t *testing.T) {
	X := grid2D(4)
	y := make([]float64, len(X))
	n, _ := New(Config{Inputs: 2, Epochs: 10})
	if err := n.Train(X, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, err := n.Predict([]float64{1}); err == nil {
		t.Fatal("feature mismatch accepted")
	}
	if _, err := n.PredictAll([][]float64{{1}}); err == nil {
		t.Fatal("PredictAll mismatch accepted")
	}
}
