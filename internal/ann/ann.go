// Package ann implements the feed-forward neural-network performance
// predictor the paper compares APS against (Ïpek et al., ASPLOS'06,
// reference [2]): a one-hidden-layer network trained with stochastic
// gradient descent plus momentum on (configuration → performance) samples,
// with min-max input/output normalization. Everything is deterministic
// given the seed.
package ann

import (
	"fmt"
	"math"
)

// Config describes the network and its training schedule.
type Config struct {
	Inputs       int
	Hidden       int     // hidden units (default 16)
	LearningRate float64 // default 0.05
	Momentum     float64 // default 0.5
	Epochs       int     // default 500
	Seed         uint64
}

func (c *Config) fill() error {
	if c.Inputs < 1 {
		return fmt.Errorf("ann: %d inputs", c.Inputs)
	}
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		c.Momentum = 0.5
	}
	if c.Epochs <= 0 {
		c.Epochs = 500
	}
	return nil
}

// Network is a trained (or trainable) predictor. Create with New, train
// with Train, then call Predict.
type Network struct {
	cfg Config

	// weights: hidden layer [Hidden][Inputs+1], output [Hidden+1]
	// (last index is the bias).
	wh  [][]float64
	wo  []float64
	mh  [][]float64 // momentum buffers
	mo  []float64
	rng uint64

	// normalization ranges, learned in Train
	inMin, inMax []float64
	outMin       float64
	outMax       float64
	trained      bool
}

// New builds an untrained network.
func New(cfg Config) (*Network, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, rng: cfg.Seed*0x9e3779b97f4a7c15 + 0x1234567}
	n.wh = make([][]float64, cfg.Hidden)
	n.mh = make([][]float64, cfg.Hidden)
	for h := range n.wh {
		n.wh[h] = make([]float64, cfg.Inputs+1)
		n.mh[h] = make([]float64, cfg.Inputs+1)
		for i := range n.wh[h] {
			n.wh[h][i] = n.uniform() - 0.5
		}
	}
	n.wo = make([]float64, cfg.Hidden+1)
	n.mo = make([]float64, cfg.Hidden+1)
	for i := range n.wo {
		n.wo[i] = n.uniform() - 0.5
	}
	return n, nil
}

func (n *Network) uniform() float64 {
	n.rng += 0x9e3779b97f4a7c15
	z := n.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

func (n *Network) normIn(x []float64, dst []float64) {
	for i, v := range x {
		span := n.inMax[i] - n.inMin[i]
		if span == 0 { //lint:allow floatguard exact zero marks a degenerate (constant) input range
			dst[i] = 0
			continue
		}
		dst[i] = 2*(v-n.inMin[i])/span - 1
	}
}

// forward computes hidden activations and the normalized output.
func (n *Network) forward(x []float64, hidden []float64) float64 {
	for h := 0; h < n.cfg.Hidden; h++ {
		w := n.wh[h]
		sum := w[n.cfg.Inputs] // bias
		for i, v := range x {
			sum += w[i] * v
		}
		hidden[h] = math.Tanh(sum)
	}
	out := n.wo[n.cfg.Hidden]
	for h, a := range hidden {
		out += n.wo[h] * a
	}
	return out
}

// Train fits the network on the samples. X rows must all have Config.Inputs
// entries. Training is full-batch-shuffled SGD with momentum; the sample
// order is permuted deterministically each epoch.
func (n *Network) Train(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("ann: %d samples, %d targets", len(X), len(y))
	}
	for i, row := range X {
		if len(row) != n.cfg.Inputs {
			return fmt.Errorf("ann: sample %d has %d features, want %d", i, len(row), n.cfg.Inputs)
		}
	}
	// Learn normalization.
	n.inMin = append([]float64(nil), X[0]...)
	n.inMax = append([]float64(nil), X[0]...)
	n.outMin, n.outMax = y[0], y[0]
	for s, row := range X {
		for i, v := range row {
			if v < n.inMin[i] {
				n.inMin[i] = v
			}
			if v > n.inMax[i] {
				n.inMax[i] = v
			}
		}
		if y[s] < n.outMin {
			n.outMin = y[s]
		}
		if y[s] > n.outMax {
			n.outMax = y[s]
		}
	}
	outSpan := n.outMax - n.outMin
	if outSpan == 0 { //lint:allow floatguard exact zero marks a degenerate (constant) output range
		outSpan = 1
	}

	norm := make([][]float64, len(X))
	targets := make([]float64, len(y))
	for s, row := range X {
		norm[s] = make([]float64, n.cfg.Inputs)
		n.normIn(row, norm[s])
		targets[s] = 2*(y[s]-n.outMin)/outSpan - 1
	}

	hidden := make([]float64, n.cfg.Hidden)
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	lr := n.cfg.LearningRate
	mom := n.cfg.Momentum
	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		// Deterministic shuffle.
		for i := len(order) - 1; i > 0; i-- {
			j := int(n.rng % uint64(i+1))
			n.rng = n.rng*6364136223846793005 + 1442695040888963407
			order[i], order[j] = order[j], order[i]
		}
		for _, s := range order {
			x := norm[s]
			out := n.forward(x, hidden)
			errOut := targets[s] - out
			// Output layer update.
			for h := 0; h < n.cfg.Hidden; h++ {
				g := lr*errOut*hidden[h] + mom*n.mo[h]
				n.mo[h] = g
				n.wo[h] += g
			}
			gb := lr*errOut + mom*n.mo[n.cfg.Hidden]
			n.mo[n.cfg.Hidden] = gb
			n.wo[n.cfg.Hidden] += gb
			// Hidden layer update (backprop through tanh).
			for h := 0; h < n.cfg.Hidden; h++ {
				delta := errOut * n.wo[h] * (1 - hidden[h]*hidden[h])
				wh := n.wh[h]
				mh := n.mh[h]
				for i, v := range x {
					g := lr*delta*v + mom*mh[i]
					mh[i] = g
					wh[i] += g
				}
				g := lr*delta + mom*mh[n.cfg.Inputs]
				mh[n.cfg.Inputs] = g
				wh[n.cfg.Inputs] += g
			}
		}
	}
	n.trained = true
	return nil
}

// Predict returns the denormalized prediction for one configuration. It
// returns an error if the network has not been trained or the feature
// count mismatches.
func (n *Network) Predict(x []float64) (float64, error) {
	if !n.trained {
		return 0, fmt.Errorf("ann: Predict before Train")
	}
	if len(x) != n.cfg.Inputs {
		return 0, fmt.Errorf("ann: %d features, want %d", len(x), n.cfg.Inputs)
	}
	normed := make([]float64, n.cfg.Inputs)
	n.normIn(x, normed)
	hidden := make([]float64, n.cfg.Hidden)
	out := n.forward(normed, hidden)
	return (out+1)/2*(n.outMax-n.outMin) + n.outMin, nil
}

// PredictAll evaluates many points, reusing buffers.
func (n *Network) PredictAll(X [][]float64) ([]float64, error) {
	out := make([]float64, len(X))
	for i, x := range X {
		v, err := n.Predict(x)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
