// Package tablefmt renders experiment results as aligned text tables and
// CSV, the output format of the figure/table regeneration harness.
package tablefmt

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells and long
// rows are truncated to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddFloats appends one row of numeric cells formatted with %.4g.
func (t *Table) AddFloats(vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = Float(v)
	}
	t.AddRow(cells...)
}

// String renders an aligned text table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("# ")
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(strconv.Quote(cell))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Float formats a value compactly for table cells.
func Float(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

// Int formats an integer cell.
func Int(v int) string { return strconv.Itoa(v) }
