package tablefmt

import (
	"strings"
	"testing"
)

func TestTextRendering(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long-name", "2.5")
	out := tb.String()
	if !strings.Contains(out, "# demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Alignment: all data lines equal width of the widest.
	if !strings.HasPrefix(lines[3], "alpha ") {
		t.Fatalf("bad alignment: %q", lines[3])
	}
}

func TestRowPaddingAndTruncation(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "z")
	if tb.Rows[0][1] != "" {
		t.Fatal("short row not padded")
	}
	if len(tb.Rows[1]) != 2 {
		t.Fatal("long row not truncated")
	}
}

func TestCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.AddRow("plain", `with,comma`)
	tb.AddRow(`quote"inside`, "x")
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `plain,"with,comma"` {
		t.Fatalf("row1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], `\"`) {
		t.Fatalf("row2 quoting = %q", lines[2])
	}
}

func TestAddFloats(t *testing.T) {
	tb := New("", "x", "y")
	tb.AddFloats(1.23456789, 1000000.0)
	if tb.Rows[0][0] != "1.235" {
		t.Fatalf("float cell = %q", tb.Rows[0][0])
	}
}

func TestHelpers(t *testing.T) {
	if Float(0.5) != "0.5" {
		t.Fatalf("Float = %q", Float(0.5))
	}
	if Int(42) != "42" {
		t.Fatalf("Int = %q", Int(42))
	}
}

func TestUntitledTableNoTitleLine(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("1")
	if strings.HasPrefix(tb.String(), "#") {
		t.Fatal("untitled table rendered a title")
	}
}
