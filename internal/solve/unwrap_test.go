package solve

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// TestConvergenceErrorUnwrapChain pins the error-chain contract the
// robustness layer depends on: every non-convergence failure must satisfy
// errors.Is(err, ErrNoConvergence) and expose its structured diagnostic
// through errors.As — including after callers add their own %w layers.
func TestConvergenceErrorUnwrapChain(t *testing.T) {
	// A function with no root: Newton must exhaust its budget.
	f := func(x float64) float64 { return x*x + 1 }
	_, _, err := Newton1D(f, 3, 1e-12, 25)
	if err == nil {
		t.Fatal("Newton1D converged on a rootless function")
	}

	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("errors.Is(err, ErrNoConvergence) = false for %v", err)
	}
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("errors.As failed to extract *ConvergenceError from %v", err)
	}
	if ce.Method != "newton1d" {
		t.Fatalf("method = %q, want newton1d", ce.Method)
	}
	if ce.Iterations <= 0 || math.IsNaN(ce.Residual) {
		t.Fatalf("diagnostic not populated: %+v", ce)
	}

	// One caller wrap layer must not cut the chain.
	wrapped := fmt.Errorf("solving CPI fixed point: %w", err)
	if !errors.Is(wrapped, ErrNoConvergence) {
		t.Fatalf("wrapped error lost the ErrNoConvergence sentinel: %v", wrapped)
	}
	var ce2 *ConvergenceError
	if !errors.As(wrapped, &ce2) || ce2 != ce {
		t.Fatalf("wrapped error lost the structured diagnostic: %v", wrapped)
	}
	if got, ok := Diagnose(wrapped); !ok || got != ce {
		t.Fatalf("Diagnose(wrapped) = %v, %v", got, ok)
	}
}

func TestDiagnoseRejectsForeignErrors(t *testing.T) {
	if _, ok := Diagnose(errors.New("unrelated")); ok {
		t.Fatal("Diagnose extracted a diagnostic from a foreign error")
	}
	if _, ok := Diagnose(nil); ok {
		t.Fatal("Diagnose extracted a diagnostic from nil")
	}
}
