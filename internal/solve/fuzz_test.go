package solve

import (
	"errors"
	"math"
	"testing"
)

// pathological1D builds a scalar objective from a shape selector and two
// coefficients. The shapes cover the failure modes the solvers must survive
// without panicking or looping forever: flat regions (zero derivative),
// NaN-returning domains, discontinuous steps, non-differentiable kinks and
// ill-scaled cubics.
func pathological1D(shape uint8, a, b float64) Func {
	switch shape % 6 {
	case 0: // constant: derivative identically zero
		return func(float64) float64 { return a }
	case 1: // plateau around the origin, cubic outside
		return func(x float64) float64 {
			if math.Abs(x) < 1+math.Abs(b) {
				return a
			}
			return x * x * x
		}
	case 2: // NaN outside a finite window
		return func(x float64) float64 {
			if math.Abs(x) > 1+math.Abs(a) {
				return math.NaN()
			}
			return x - b
		}
	case 3: // discontinuous step
		return func(x float64) float64 {
			if x < a {
				return -1 - math.Abs(b)
			}
			return 1 + math.Abs(b)
		}
	case 4: // |x - a|: kink with no derivative at the root
		return func(x float64) float64 { return math.Abs(x-a) + b*0 }
	default: // ill-scaled cubic
		return func(x float64) float64 { return a*x*x*x + b }
	}
}

// FuzzNewton1D drives the scalar Newton solver with pathological
// objectives. The invariants: never panic, never loop past the iteration
// budget, and every failure carries structured diagnostics that wrap
// ErrNoConvergence.
func FuzzNewton1D(f *testing.F) {
	f.Add(uint8(0), 1.0, 0.0, 0.5)   // flat
	f.Add(uint8(1), 2.0, 0.5, 0.0)   // plateau
	f.Add(uint8(2), 1.0, 0.3, 10.0)  // NaN region, start outside it
	f.Add(uint8(3), 0.0, 1.0, -2.0)  // step
	f.Add(uint8(4), 0.7, 0.0, 5.0)   // |x|
	f.Add(uint8(5), 1e-9, 1e9, 1.0)  // ill-scaled cubic
	f.Add(uint8(5), 1.0, -2.0, 10.0) // benign cubic, converges
	f.Fuzz(func(t *testing.T, shape uint8, a, b, x0 float64) {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) ||
			math.IsNaN(x0) || math.IsInf(x0, 0) {
			t.Skip("non-finite seed")
		}
		fn := pathological1D(shape, a, b)
		root, iters, err := Newton1D(fn, x0, 1e-10, 60)
		if iters < 0 || iters > 60 {
			t.Fatalf("iteration count %d outside budget", iters)
		}
		if err != nil {
			if !errors.Is(err, ErrNoConvergence) {
				t.Fatalf("failure does not wrap ErrNoConvergence: %v", err)
			}
			ce, ok := Diagnose(err)
			if !ok {
				t.Fatalf("failure without diagnostics: %v", err)
			}
			if ce.Method != "newton1d" || ce.Reason == "" {
				t.Fatalf("incomplete diagnostics: %+v", ce)
			}
			return
		}
		// A reported success must be a finite point with a small residual.
		if math.IsNaN(root) || math.IsInf(root, 0) {
			t.Fatalf("converged to non-finite root %v", root)
		}
		// Newton1D accepts |f| < √tol after the budget, so √tol is the
		// loosest residual a success may carry.
		if r := math.Abs(fn(root)); !(r < 1e-5) && !math.IsNaN(r) {
			t.Fatalf("claimed convergence at x=%v with residual %v", root, r)
		}
	})
}

// pathologicalND lifts the 1D pathologies to n dimensions by summing one
// per coordinate.
func pathologicalND(shape uint8, a, b float64, dim int) ObjFunc {
	f1 := pathological1D(shape, a, b)
	return func(x []float64) float64 {
		s := 0.0
		for _, xi := range x {
			s += f1(xi)
		}
		return s
	}
}

// FuzzNelderMead drives the simplex minimizer with the same pathology
// catalogue. Nelder-Mead has no failure return — the invariants are
// termination within the iteration budget and a non-degenerate best value
// (the minimizer must never fabricate -Inf from a NaN-returning
// objective).
func FuzzNelderMead(f *testing.F) {
	f.Add(uint8(0), 1.0, 0.0, 0.5, uint8(2))
	f.Add(uint8(1), 2.0, 0.5, 0.0, uint8(3))
	f.Add(uint8(2), 1.0, 0.3, 4.0, uint8(2))
	f.Add(uint8(3), 0.0, 1.0, -2.0, uint8(1))
	f.Add(uint8(4), 0.7, 0.0, 5.0, uint8(4))
	f.Add(uint8(5), 1e-6, 1e6, 1.0, uint8(2))
	f.Fuzz(func(t *testing.T, shape uint8, a, b, start float64, dim uint8) {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) ||
			math.IsNaN(start) || math.IsInf(start, 0) {
			t.Skip("non-finite seed")
		}
		n := int(dim%4) + 1
		obj := pathologicalND(shape, a, b, n)
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = start
		}
		x, v := NelderMead(obj, x0, NelderMeadOpts{MaxIter: 500})
		if len(x) != n {
			t.Fatalf("result dimension %d, want %d", len(x), n)
		}
		// The reported value must be what the objective says at x, unless
		// both are NaN (a NaN-only region is an acceptable fixpoint). In
		// particular -Inf may only be reported when the objective is
		// genuinely unbounded at the returned point.
		got := obj(x)
		if math.IsInf(v, -1) && !math.IsInf(got, -1) {
			t.Fatalf("fabricated -Inf minimum at %v (objective says %v)", x, got)
		}
		if !math.IsNaN(v) && !math.IsNaN(got) && v > got+1e-6*(1+math.Abs(got)) {
			t.Fatalf("reported %v but objective at x is %v", v, got)
		}
	})
}
