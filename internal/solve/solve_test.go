package solve

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewton1DQuadratic(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	root, iters, err := Newton1D(f, 1, 1e-12, 100)
	if err != nil {
		t.Fatalf("Newton1D: %v", err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-8 {
		t.Fatalf("root = %v, want √2", root)
	}
	if iters > 20 {
		t.Fatalf("took %d iterations", iters)
	}
}

func TestNewton1DDefaults(t *testing.T) {
	root, _, err := Newton1D(func(x float64) float64 { return math.Exp(x) - 3 }, 0, 0, 0)
	if err != nil {
		t.Fatalf("Newton1D: %v", err)
	}
	if math.Abs(root-math.Log(3)) > 1e-6 {
		t.Fatalf("root = %v, want ln 3", root)
	}
}

func TestNewton1DFlat(t *testing.T) {
	_, _, err := Newton1D(func(x float64) float64 { return 1 }, 0, 1e-10, 50)
	if err == nil {
		t.Fatal("rootless flat function converged")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return math.Cos(x) }, 0, 3, 1e-12)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(root-math.Pi/2) > 1e-9 {
		t.Fatalf("root = %v, want π/2", root)
	}
	if _, err := Bisect(func(x float64) float64 { return 1 + x*x }, -1, 1, 0); err == nil {
		t.Fatal("Bisect without sign change succeeded")
	}
	if r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 0); err != nil || r != 0 {
		t.Fatalf("Bisect with root at endpoint: %v, %v", r, err)
	}
}

func TestNewtonSystem2D(t *testing.T) {
	// x² + y² = 4, x = y ⇒ (√2, √2).
	f := func(v []float64) []float64 {
		return []float64{v[0]*v[0] + v[1]*v[1] - 4, v[0] - v[1]}
	}
	x, _, err := NewtonSystem(f, []float64{1, 2}, 1e-12, 100)
	if err != nil {
		t.Fatalf("NewtonSystem: %v", err)
	}
	if math.Abs(x[0]-math.Sqrt2) > 1e-8 || math.Abs(x[1]-math.Sqrt2) > 1e-8 {
		t.Fatalf("solution = %v, want (√2,√2)", x)
	}
}

func TestNewtonSystemNonSquare(t *testing.T) {
	f := func(v []float64) []float64 { return []float64{v[0]} }
	if _, _, err := NewtonSystem(f, []float64{1, 2}, 1e-10, 10); err == nil {
		t.Fatal("non-square system accepted")
	}
}

func TestNewtonSystemRosenbrockGradient(t *testing.T) {
	// ∇ of the Rosenbrock function vanishes at (1,1).
	grad := func(v []float64) []float64 {
		x, y := v[0], v[1]
		return []float64{
			-2*(1-x) - 400*x*(y-x*x),
			200 * (y - x*x),
		}
	}
	x, _, err := NewtonSystem(grad, []float64{-1.2, 1}, 1e-10, 500)
	if err != nil {
		t.Fatalf("NewtonSystem: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-6 || math.Abs(x[1]-1) > 1e-6 {
		t.Fatalf("solution = %v, want (1,1)", x)
	}
}

func TestBroyden(t *testing.T) {
	f := func(v []float64) []float64 {
		return []float64{
			v[0] + v[1] - 3,
			v[0]*v[0] + v[1]*v[1] - 9,
		}
	}
	x, _, err := Broyden(f, []float64{1, 5}, 1e-10, 400)
	if err != nil {
		t.Fatalf("Broyden: %v", err)
	}
	// Roots: (0,3) or (3,0).
	ok := (math.Abs(x[0]) < 1e-6 && math.Abs(x[1]-3) < 1e-6) ||
		(math.Abs(x[0]-3) < 1e-6 && math.Abs(x[1]) < 1e-6)
	if !ok {
		t.Fatalf("solution = %v", x)
	}
	g := func(v []float64) []float64 { return []float64{v[0]} }
	if _, _, err := Broyden(g, []float64{1, 2}, 0, 0); err == nil {
		t.Fatal("non-square Broyden accepted")
	}
}

func TestGoldenSection(t *testing.T) {
	min := GoldenSection(func(x float64) float64 { return (x - 3) * (x - 3) }, -10, 10, 1e-12)
	if math.Abs(min-3) > 1e-7 {
		t.Fatalf("minimizer = %v, want 3", min)
	}
}

func TestGoldenSectionRandomQuadratics(t *testing.T) {
	f := func(cRaw int16) bool {
		c := float64(cRaw) / 1000
		min := GoldenSection(func(x float64) float64 { return (x - c) * (x - c) }, -40, 40, 1e-12)
		return math.Abs(min-c) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNelderMeadQuadraticBowl(t *testing.T) {
	obj := func(x []float64) float64 {
		return (x[0]-1)*(x[0]-1) + 10*(x[1]+2)*(x[1]+2) + 3
	}
	x, f := NelderMead(obj, []float64{5, 5}, NelderMeadOpts{})
	if math.Abs(x[0]-1) > 1e-4 || math.Abs(x[1]+2) > 1e-4 {
		t.Fatalf("minimizer = %v, want (1,−2)", x)
	}
	if math.Abs(f-3) > 1e-6 {
		t.Fatalf("minimum = %v, want 3", f)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	obj := func(v []float64) float64 {
		x, y := v[0], v[1]
		return (1-x)*(1-x) + 100*(y-x*x)*(y-x*x)
	}
	x, f := NelderMead(obj, []float64{-1.2, 1}, NelderMeadOpts{MaxIter: 5000})
	if f > 1e-6 {
		t.Fatalf("minimum = %v at %v, want ≈0 at (1,1)", f, x)
	}
}

func TestNelderMeadEmpty(t *testing.T) {
	x, f := NelderMead(func([]float64) float64 { return 7 }, nil, NelderMeadOpts{})
	if x != nil || f != 7 {
		t.Fatalf("empty NM = %v, %v", x, f)
	}
}

func TestGridSearch(t *testing.T) {
	obj := func(x []float64) float64 {
		return math.Abs(x[0]-2) + math.Abs(x[1]-30)
	}
	pt, f := GridSearch(obj, [][]float64{
		{0, 1, 2, 3},
		{10, 20, 30, 40},
	})
	if pt[0] != 2 || pt[1] != 30 || f != 0 {
		t.Fatalf("grid best = %v (f=%v), want (2,30)", pt, f)
	}
}

func TestGridSearchSingleCell(t *testing.T) {
	pt, f := GridSearch(func(x []float64) float64 { return x[0] }, [][]float64{{5}})
	if pt[0] != 5 || f != 5 {
		t.Fatalf("single-cell grid = %v, %v", pt, f)
	}
}

func TestSolveLinearViaNewtonLinearSystem(t *testing.T) {
	// A linear system converges in one damped-Newton step.
	f := func(v []float64) []float64 {
		return []float64{
			2*v[0] + v[1] - 5,
			v[0] - 3*v[1] + 4,
		}
	}
	x, iters, err := NewtonSystem(f, []float64{0, 0}, 1e-12, 10)
	if err != nil {
		t.Fatalf("NewtonSystem: %v", err)
	}
	if iters > 3 {
		t.Fatalf("linear system took %d iterations", iters)
	}
	if math.Abs(f(x)[0]) > 1e-9 || math.Abs(f(x)[1]) > 1e-9 {
		t.Fatalf("residual nonzero at %v", x)
	}
}

func TestBisectEndpointRootB(t *testing.T) {
	r, err := Bisect(func(x float64) float64 { return x - 1 }, 0, 1, 0)
	if err != nil || math.Abs(r-1) > 1e-9 {
		t.Fatalf("Bisect endpoint b: %v, %v", r, err)
	}
}

func TestNewton1DLooseConvergence(t *testing.T) {
	// A stiff function where full tolerance is not reached in the budget
	// but √tol is: Newton1D accepts the approximate root.
	f := func(x float64) float64 { return (x - 2) * (x - 2) } // double root: slow convergence
	root, _, err := Newton1D(f, 0, 1e-14, 60)
	if err != nil {
		t.Fatalf("Newton1D double root: %v", err)
	}
	if math.Abs(root-2) > 1e-3 {
		t.Fatalf("root = %v", root)
	}
}

func TestBroydenReseedsOnStall(t *testing.T) {
	// A system whose Jacobian changes rapidly forces the stall-reseed
	// path.
	f := func(v []float64) []float64 {
		return []float64{
			math.Sin(3*v[0]) + v[1],
			v[0] - 0.3*math.Cos(v[1]),
		}
	}
	x, _, err := Broyden(f, []float64{2, 2}, 1e-9, 400)
	if err != nil {
		t.Fatalf("Broyden: %v", err)
	}
	r := f(x)
	if math.Abs(r[0]) > 1e-6 || math.Abs(r[1]) > 1e-6 {
		t.Fatalf("residual %v at %v", r, x)
	}
}

func TestGoldenSectionDefaultTol(t *testing.T) {
	min := GoldenSection(func(x float64) float64 { return x * x }, -5, 5, 0)
	if math.Abs(min) > 1e-6 {
		t.Fatalf("minimizer = %v", min)
	}
}

func TestNelderMeadOptsDefaults(t *testing.T) {
	// Zero options select the standard coefficients; a 2-D bowl converges
	// tightly (1-D simplices are degenerate and converge loosely).
	x, f := NelderMead(func(v []float64) float64 { return v[0]*v[0] + v[1]*v[1] },
		[]float64{3, -2}, NelderMeadOpts{MaxIter: 0, Tol: 0, Scale: 0})
	if math.Abs(x[0]) > 1e-3 || math.Abs(x[1]) > 1e-3 || f > 1e-5 {
		t.Fatalf("defaults: %v %v", x, f)
	}
}

func TestConvergenceDiagnostics(t *testing.T) {
	// Flat function: Newton1D dies on a zero derivative at the start.
	_, _, err := Newton1D(func(float64) float64 { return 1 }, 0, 1e-12, 50)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("flat Newton1D: %v", err)
	}
	ce, ok := Diagnose(err)
	if !ok {
		t.Fatalf("no diagnostics attached: %v", err)
	}
	if ce.Method != "newton1d" || ce.Reason == "" {
		t.Fatalf("diagnostics = %+v", ce)
	}
	if ce.Residual != 1 {
		t.Fatalf("residual = %v, want 1", ce.Residual)
	}

	// Iteration budget: a root that needs more steps than allowed.
	_, _, err = Newton1D(func(x float64) float64 { return x*x*x - 2 }, 100, 1e-14, 2)
	ce, ok = Diagnose(err)
	if !ok || ce.Iterations != 2 {
		t.Fatalf("budget diagnostics = %+v (err %v)", ce, err)
	}

	// Singular Jacobian in the system solver.
	f := func(x []float64) []float64 { return []float64{x[0] + x[1], x[0] + x[1]} }
	_, _, err = NewtonSystem(f, []float64{1, 1}, 1e-12, 50)
	ce, ok = Diagnose(err)
	if !ok || ce.Method != "newton-system" {
		t.Fatalf("singular-system diagnostics = %+v (err %v)", ce, err)
	}

	// Broyden on the same singular system.
	_, _, err = Broyden(f, []float64{1, 1}, 1e-12, 50)
	if err != nil {
		if ce, ok = Diagnose(err); !ok || ce.Method != "broyden" {
			t.Fatalf("broyden diagnostics = %+v (err %v)", ce, err)
		}
	}

	// Diagnose rejects unrelated errors.
	if _, ok := Diagnose(errors.New("unrelated")); ok {
		t.Fatal("Diagnose matched an unrelated error")
	}
	if _, ok := Diagnose(nil); ok {
		t.Fatal("Diagnose matched nil")
	}
}
