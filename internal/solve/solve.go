// Package solve provides the numerical machinery behind the C²-Bound
// optimization (§III-C): Newton's method for nonlinear equation sets (the
// paper's stated solver for the Lagrange/KKT system), a Broyden
// quasi-Newton variant, golden-section line search, Nelder-Mead simplex
// minimization and exhaustive grid search. Everything is dependency-free
// and deterministic.
package solve

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is wrapped by solvers that exhaust their iteration
// budget without meeting the tolerance.
var ErrNoConvergence = errors.New("solve: no convergence")

// ConvergenceError is the structured diagnostic attached to every
// non-convergence failure: which solver gave up, after how many
// iterations, at what residual, and why. It wraps ErrNoConvergence, so
// errors.Is(err, ErrNoConvergence) keeps working; callers that want the
// numbers use Diagnose (or errors.As).
type ConvergenceError struct {
	// Method names the solver: "newton1d", "newton-system", "broyden".
	Method string
	// Iterations is how many iterations ran before giving up.
	Iterations int
	// Residual is |f| (scalar) or ‖f‖ (system) at the final iterate.
	Residual float64
	// Reason describes the failure: "zero derivative", "singular
	// jacobian", "iteration budget exhausted", ...
	Reason string
}

// Error implements error.
func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("solve: %s did not converge: %s (iterations=%d, residual=%.6g)",
		e.Method, e.Reason, e.Iterations, e.Residual)
}

// Unwrap ties the diagnostic to the ErrNoConvergence sentinel.
func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// Diagnose extracts the structured diagnostic from a solver error, when
// present.
func Diagnose(err error) (*ConvergenceError, bool) {
	var ce *ConvergenceError
	ok := errors.As(err, &ce)
	return ce, ok
}

// Func is a scalar function of one variable.
type Func func(x float64) float64

// VecFunc maps R^n to R^m (m = len of returned slice, fixed per function).
type VecFunc func(x []float64) []float64

// ObjFunc is a scalar function of a vector.
type ObjFunc func(x []float64) float64

// Newton1D finds a root of f near x0 using Newton's method with a
// numerical derivative and bisection-style damping. It returns the root
// and the number of iterations used.
func Newton1D(f Func, x0 float64, tol float64, maxIter int) (float64, int, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	x := x0
	for i := 0; i < maxIter; i++ {
		fx := f(x)
		if math.Abs(fx) < tol {
			return x, i, nil
		}
		h := 1e-7 * (1 + math.Abs(x))
		d := (f(x+h) - f(x-h)) / (2 * h)
		if d == 0 || math.IsNaN(d) { //lint:allow floatguard exact zero derivative is the singularity test
			return x, i, &ConvergenceError{Method: "newton1d", Iterations: i, Residual: math.Abs(fx),
				Reason: fmt.Sprintf("zero or undefined derivative at x=%v", x)}
		}
		step := fx / d
		// Damping: halve the step until |f| decreases or the step dies.
		lambda := 1.0
		for j := 0; j < 40; j++ {
			xn := x - lambda*step
			if math.Abs(f(xn)) < math.Abs(fx) {
				x = xn
				break
			}
			lambda /= 2
			if j == 39 {
				x -= lambda * step
			}
		}
	}
	if math.Abs(f(x)) < math.Sqrt(tol) {
		return x, maxIter, nil
	}
	return x, maxIter, &ConvergenceError{Method: "newton1d", Iterations: maxIter, Residual: math.Abs(f(x)),
		Reason: "iteration budget exhausted"}
}

// Bisect finds a root of f on [a,b], requiring f(a) and f(b) to have
// opposite signs.
func Bisect(f Func, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 { //lint:allow floatguard an exact root at the bracket edge short-circuits bisection
		return a, nil
	}
	if fb == 0 { //lint:allow floatguard an exact root at the bracket edge short-circuits bisection
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("solve: Bisect needs a sign change on [%v,%v] (f=%v,%v)", a, b, fa, fb)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for i := 0; i < 200 && b-a > tol*(1+math.Abs(a)+math.Abs(b)); i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 { //lint:allow floatguard an exact midpoint root short-circuits bisection
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// jacobian estimates the Jacobian of f at x by central differences.
func jacobian(f VecFunc, x, fx []float64) [][]float64 {
	n := len(x)
	m := len(fx)
	jac := make([][]float64, m)
	for i := range jac {
		jac[i] = make([]float64, n)
	}
	xp := make([]float64, n)
	for j := 0; j < n; j++ {
		h := 1e-7 * (1 + math.Abs(x[j]))
		copy(xp, x)
		xp[j] = x[j] + h
		fp := f(xp)
		xp[j] = x[j] - h
		fm := f(xp)
		for i := 0; i < m; i++ {
			jac[i][j] = (fp[i] - fm[i]) / (2 * h)
		}
	}
	return jac
}

// solveLinear solves A·x = b by Gaussian elimination with partial
// pivoting, destroying A and b.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-300 {
			return nil, errors.New("solve: singular Jacobian")
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 { //lint:allow floatguard exact zero skips a no-op elimination row
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NewtonSystem solves the square nonlinear system f(x) = 0 starting from
// x0 using damped Newton iterations with a finite-difference Jacobian.
// This is the solver the paper integrates for the KKT equations of
// Eq. 13. It returns the solution and iteration count.
func NewtonSystem(f VecFunc, x0 []float64, tol float64, maxIter int) ([]float64, int, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	x := append([]float64(nil), x0...)
	fx := f(x)
	if len(fx) != len(x) {
		return nil, 0, fmt.Errorf("solve: NewtonSystem needs a square system (%d equations, %d unknowns)", len(fx), len(x))
	}
	for i := 0; i < maxIter; i++ {
		if norm(fx) < tol {
			return x, i, nil
		}
		jac := jacobian(f, x, fx)
		rhs := make([]float64, len(fx))
		for k, v := range fx {
			rhs[k] = -v
		}
		dx, err := solveLinear(jac, rhs)
		if err != nil {
			return x, i, &ConvergenceError{Method: "newton-system", Iterations: i, Residual: norm(fx),
				Reason: err.Error()}
		}
		// Damped update with Armijo-style backtracking on ‖f‖.
		base := norm(fx)
		lambda := 1.0
		var xn []float64
		var fn []float64
		for j := 0; ; j++ {
			xn = make([]float64, len(x))
			for k := range x {
				xn[k] = x[k] + lambda*dx[k]
			}
			fn = f(xn)
			if nf := norm(fn); nf < base || j >= 40 {
				break
			}
			lambda /= 2
		}
		x, fx = xn, fn
	}
	if norm(fx) < math.Sqrt(tol) {
		return x, maxIter, nil
	}
	return x, maxIter, &ConvergenceError{Method: "newton-system", Iterations: maxIter, Residual: norm(fx),
		Reason: "iteration budget exhausted"}
}

// Broyden solves f(x) = 0 with Broyden's rank-one quasi-Newton updates,
// re-seeding the Jacobian when progress stalls. It is cheaper than
// NewtonSystem when f is expensive, at the cost of slower convergence.
func Broyden(f VecFunc, x0 []float64, tol float64, maxIter int) ([]float64, int, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 400
	}
	x := append([]float64(nil), x0...)
	fx := f(x)
	n := len(x)
	if len(fx) != n {
		return nil, 0, fmt.Errorf("solve: Broyden needs a square system")
	}
	jac := jacobian(f, x, fx)
	for i := 0; i < maxIter; i++ {
		if norm(fx) < tol {
			return x, i, nil
		}
		a := make([][]float64, n)
		for r := range a {
			a[r] = append([]float64(nil), jac[r]...)
		}
		rhs := make([]float64, n)
		for k, v := range fx {
			rhs[k] = -v
		}
		dx, err := solveLinear(a, rhs)
		if err != nil {
			jac = jacobian(f, x, fx) // re-seed and retry once
			for r := range a {
				a[r] = append([]float64(nil), jac[r]...)
			}
			for k, v := range fx {
				rhs[k] = -v
			}
			dx, err = solveLinear(a, rhs)
			if err != nil {
				return x, i, &ConvergenceError{Method: "broyden", Iterations: i, Residual: norm(fx),
					Reason: err.Error()}
			}
		}
		xn := make([]float64, n)
		for k := range x {
			xn[k] = x[k] + dx[k]
		}
		fn := f(xn)
		if norm(fn) > 0.9*norm(fx) {
			// Stalling: refresh the true Jacobian.
			jac = jacobian(f, xn, fn)
		} else {
			// Broyden rank-one update: J += (df − J·dx)·dxᵀ / (dxᵀ·dx).
			df := make([]float64, n)
			for k := range df {
				df[k] = fn[k] - fx[k]
			}
			dd := 0.0
			for _, v := range dx {
				dd += v * v
			}
			if dd > 0 {
				for r := 0; r < n; r++ {
					var jdx float64
					for c := 0; c < n; c++ {
						jdx += jac[r][c] * dx[c]
					}
					coef := (df[r] - jdx) / dd
					for c := 0; c < n; c++ {
						jac[r][c] += coef * dx[c]
					}
				}
			}
		}
		x, fx = xn, fn
	}
	if norm(fx) < math.Sqrt(tol) {
		return x, maxIter, nil
	}
	return x, maxIter, &ConvergenceError{Method: "broyden", Iterations: maxIter, Residual: norm(fx),
		Reason: "iteration budget exhausted"}
}

// GoldenSection minimizes a unimodal scalar function on [a,b] and returns
// the minimizer.
func GoldenSection(f Func, a, b, tol float64) float64 {
	if tol <= 0 {
		tol = 1e-10
	}
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 300 && b-a > tol*(1+math.Abs(a)+math.Abs(b)); i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return 0.5 * (a + b)
}
