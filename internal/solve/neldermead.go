package solve

import (
	"math"
	"sort"
)

// NelderMeadOpts tunes the simplex minimizer. Zero values select the
// standard coefficients.
type NelderMeadOpts struct {
	MaxIter int     // default 2000
	Tol     float64 // convergence on simplex spread; default 1e-10
	Scale   float64 // initial simplex edge relative to |x0|; default 0.1
}

// NelderMead minimizes obj starting from x0 using the Nelder-Mead simplex
// method. It is the derivative-free fallback used when the KKT Newton
// solve of the C²-Bound optimizer fails to converge (e.g. at constraint
// boundaries where the Lagrangian is non-smooth). Returns the best point
// and its objective value.
func NelderMead(obj ObjFunc, x0 []float64, opts NelderMeadOpts) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, obj(nil)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 2000
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.Scale <= 0 {
		opts.Scale = 0.1
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...), f: obj(x0)}
	for i := 1; i <= n; i++ {
		x := append([]float64(nil), x0...)
		step := opts.Scale * (1 + math.Abs(x[i-1]))
		x[i-1] += step
		simplex[i] = vertex{x: x, f: obj(x)}
	}
	centroid := make([]float64, n)
	trial := make([]float64, n)
	for iter := 0; iter < opts.MaxIter; iter++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		spread := math.Abs(simplex[n].f - simplex[0].f)
		if spread <= opts.Tol*(1+math.Abs(simplex[0].f)) {
			break
		}
		// Centroid of all but the worst.
		for j := 0; j < n; j++ {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := 0; j < n; j++ {
			centroid[j] /= float64(n)
		}
		worst := &simplex[n]
		// Reflection.
		for j := 0; j < n; j++ {
			trial[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := obj(trial)
		switch {
		case fr < simplex[0].f:
			// Expansion.
			exp := make([]float64, n)
			for j := 0; j < n; j++ {
				exp[j] = centroid[j] + gamma*(trial[j]-centroid[j])
			}
			fe := obj(exp)
			if fe < fr {
				worst.x, worst.f = exp, fe
			} else {
				worst.x, worst.f = append([]float64(nil), trial...), fr
			}
		case fr < simplex[n-1].f:
			worst.x, worst.f = append([]float64(nil), trial...), fr
		default:
			// Contraction.
			for j := 0; j < n; j++ {
				trial[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
			}
			fc := obj(trial)
			if fc < worst.f {
				worst.x, worst.f = append([]float64(nil), trial...), fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = obj(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return simplex[0].x, simplex[0].f
}

// GridSearch minimizes obj over the Cartesian product of the per-dimension
// candidate values, returning the best point and value. It is the
// brute-force reference the APS experiment compares against.
func GridSearch(obj ObjFunc, values [][]float64) ([]float64, float64) {
	n := len(values)
	idx := make([]int, n)
	point := make([]float64, n)
	best := math.Inf(1)
	var bestPoint []float64
	for {
		for j := 0; j < n; j++ {
			point[j] = values[j][idx[j]]
		}
		if f := obj(point); f < best {
			best = f
			bestPoint = append(bestPoint[:0], point...)
		}
		// Odometer increment.
		j := n - 1
		for ; j >= 0; j-- {
			idx[j]++
			if idx[j] < len(values[j]) {
				break
			}
			idx[j] = 0
		}
		if j < 0 {
			break
		}
	}
	return bestPoint, best
}
