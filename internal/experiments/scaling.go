package experiments

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/speedup"
	"repro/internal/tablefmt"
)

// ScalingPoint is one point of the Figs. 8-11 series: problem size W,
// execution time T and throughput W/T at core count N under data-access
// concurrency C.
type ScalingPoint struct {
	N  int
	C  float64
	W  float64
	T  float64
	WT float64
}

// scalingApp is the §IV case-study profile: a data-intensive workload
// with a tiny sequential portion and superlinear memory-bounded scaling
// g(N) = N^{3/2}, evaluated at pinned concurrency C.
func scalingApp(fmem, c float64) core.App {
	app := core.App{
		Name: "scaling", Fseq: 0.01, Fmem: fmem, Overlap: 0.2,
		CH: 1, CM: 1, PMRRatio: 1, PAMPRatio: 1,
		L1Miss: chip.MissRateCurve{Base: 0.15, RefKB: 32, Alpha: 0.3, Floor: 0.02},
		L2Miss: chip.MissRateCurve{Base: 0.5, RefKB: 512, Alpha: 0.3, Floor: 0.1},
		G:      speedup.PowerLaw(1.5), GOrder: 1.5, IC0: 1,
	}
	return app.WithConcurrency(c)
}

// scalingChip builds the per-N chip for memory-bounded scaling: each core
// brings its own silicon (Sun-Ni's processor-memory pairs), so the die
// grows with N while the off-chip memory bandwidth — the shared resource
// that eventually bounds throughput — stays fixed.
func scalingChip(n int) chip.Config {
	cfg := chip.DefaultConfig()
	cfg.TotalArea = float64(n)*(4+1+4) + cfg.FixedArea
	// Fixed shared memory bandwidth, calibrated so the C=1 curve
	// saturates near one hundred cores (the Fig. 10 knee).
	cfg.MemBandwidth = 1.5
	cfg.QueueSensitivity = 3
	return cfg
}

// scalingDesign is the fixed per-core split used across the sweep.
func scalingDesign(n int) chip.Design {
	return chip.Design{N: n, CoreArea: 4, L1Area: 1, L2Area: 4}
}

// MemoryBoundedScaling evaluates W and T (Figs. 8 and 9) and W/T
// (Figs. 10 and 11) for g(N) = N^{3/2} at the given memory access
// frequency, for each concurrency level and core count.
func MemoryBoundedScaling(fmem float64, concurrencies []float64, ns []int) ([]ScalingPoint, error) {
	if fmem <= 0 || fmem > 1 {
		return nil, fmt.Errorf("experiments: fmem=%v outside (0,1]", fmem)
	}
	if len(concurrencies) == 0 || len(ns) == 0 {
		return nil, fmt.Errorf("experiments: empty concurrency or N list")
	}
	var out []ScalingPoint
	for _, c := range concurrencies {
		app := scalingApp(fmem, c)
		for _, n := range ns {
			m := core.Model{Chip: scalingChip(n), App: app}
			e, err := m.Evaluate(scalingDesign(n))
			if err != nil {
				return nil, fmt.Errorf("experiments: scaling N=%d C=%v: %w", n, c, err)
			}
			out = append(out, ScalingPoint{N: n, C: c, W: e.Work, T: e.Time, WT: e.Throughput})
		}
	}
	return out, nil
}

// ScalingNs returns the log-spaced core counts of the Figs. 8-11 x-axis
// (1 … 1000).
func ScalingNs() []int {
	return []int{1, 2, 4, 8, 16, 32, 64, 100, 150, 250, 400, 650, 1000}
}

// PaperConcurrencies are the three §IV concurrency levels.
func PaperConcurrencies() []float64 { return []float64{1, 4, 8} }

// ScalingTable renders a scaling series as one table with a W column and
// per-concurrency T (or W/T) columns, matching the figure layout.
func ScalingTable(title string, points []ScalingPoint, throughput bool) *tablefmt.Table {
	byN := map[int]map[float64]ScalingPoint{}
	var ns []int
	var cs []float64
	seenC := map[float64]bool{}
	for _, p := range points {
		if byN[p.N] == nil {
			byN[p.N] = map[float64]ScalingPoint{}
			ns = append(ns, p.N)
		}
		byN[p.N][p.C] = p
		if !seenC[p.C] {
			seenC[p.C] = true
			cs = append(cs, p.C)
		}
	}
	cols := []string{"N", "W"}
	for _, c := range cs {
		if throughput {
			cols = append(cols, fmt.Sprintf("W/T(C=%g)", c))
		} else {
			cols = append(cols, fmt.Sprintf("T(C=%g)", c))
		}
	}
	tb := tablefmt.New(title, cols...)
	for _, n := range ns {
		row := []string{tablefmt.Int(n), tablefmt.Float(byN[n][cs[0]].W)}
		for _, c := range cs {
			p := byN[n][c]
			if throughput {
				row = append(row, tablefmt.Float(p.WT))
			} else {
				row = append(row, tablefmt.Float(p.T))
			}
		}
		tb.AddRow(row...)
	}
	return tb
}

// Fig8 returns the W/T-vs-N table for fmem = 0.3 (execution time view).
func Fig8() (*tablefmt.Table, []ScalingPoint, error) {
	pts, err := MemoryBoundedScaling(0.3, PaperConcurrencies(), ScalingNs())
	if err != nil {
		return nil, nil, err
	}
	return ScalingTable("Fig. 8: W and T, memory-bounded scaling (g=N^1.5, fmem=0.3)", pts, false), pts, nil
}

// Fig9 returns the execution-time table for fmem = 0.9.
func Fig9() (*tablefmt.Table, []ScalingPoint, error) {
	pts, err := MemoryBoundedScaling(0.9, PaperConcurrencies(), ScalingNs())
	if err != nil {
		return nil, nil, err
	}
	return ScalingTable("Fig. 9: W and T, memory-bounded scaling (g=N^1.5, fmem=0.9)", pts, false), pts, nil
}

// Fig10 returns the throughput table for fmem = 0.3.
func Fig10() (*tablefmt.Table, []ScalingPoint, error) {
	pts, err := MemoryBoundedScaling(0.3, PaperConcurrencies(), ScalingNs())
	if err != nil {
		return nil, nil, err
	}
	return ScalingTable("Fig. 10: W/T (g=N^1.5, fmem=0.3)", pts, true), pts, nil
}

// Fig11 returns the throughput table for fmem = 0.9.
func Fig11() (*tablefmt.Table, []ScalingPoint, error) {
	pts, err := MemoryBoundedScaling(0.9, PaperConcurrencies(), ScalingNs())
	if err != nil {
		return nil, nil, err
	}
	return ScalingTable("Fig. 11: W/T (g=N^1.5, fmem=0.9)", pts, true), pts, nil
}
