package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/speedup"
	"repro/internal/tablefmt"
)

// RegimePoint is one row of the regime-split ablation: the g(N) growth
// exponent, the regime the model selects, and the resulting optimal core
// count.
type RegimePoint struct {
	Exponent float64
	Regime   core.Regime
	OptimalN int
	Value    float64 // minimized T or maximized W/T
}

// AblationRegimeSplit sweeps the g(N) = N^b exponent across the §III-C
// boundary (b = 1) and records how the optimization regime and the
// optimal core count respond. Below the boundary a finite time-optimal N
// exists; at and above it the model switches to throughput maximization
// and prefers many more cores.
func AblationRegimeSplit(exponents []float64) (*tablefmt.Table, []RegimePoint, error) {
	if len(exponents) == 0 {
		exponents = []float64{0, 0.25, 0.5, 0.75, 0.9, 1, 1.25, 1.5, 2}
	}
	base := core.FluidanimateApp()
	var out []RegimePoint
	tb := tablefmt.New("Ablation: regime split at g(N) = O(N)", "b (g=N^b)", "regime", "optimal N", "objective")
	for _, b := range exponents {
		app := base
		app.G = speedup.PowerLaw(b)
		app.GOrder = b
		m := core.Model{Chip: chip.DefaultConfig(), App: app}
		res, err := m.Optimize(core.Options{MaxN: 128})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: regime ablation b=%v: %w", b, err)
		}
		val := res.Eval.Time
		if res.Regime == core.MaximizeThroughput {
			val = res.Eval.Throughput
		}
		pt := RegimePoint{Exponent: b, Regime: res.Regime, OptimalN: res.Design.N, Value: val}
		out = append(out, pt)
		tb.AddRow(tablefmt.Float(b), res.Regime.String(), tablefmt.Int(pt.OptimalN), tablefmt.Float(val))
	}
	return tb, out, nil
}

// BaselineComparison contrasts the optimal design each analytical model
// recommends for the same application and chip: C²-Bound (concurrency +
// capacity), Sun-Chen (capacity only), Hill-Marty (neither; BCE model)
// and Cassidy-Andreou (AMAT, fixed size) — the §VI positioning.
type BaselineComparison struct {
	Model    string
	OptimalN int
	Speedup  float64
}

// AblationBaselines computes the §VI comparison for an application with
// scalable workload and real memory concurrency.
func AblationBaselines() (*tablefmt.Table, []BaselineComparison, error) {
	cfg := chip.DefaultConfig()
	app := core.StencilApp().WithConcurrency(4)
	app.G = speedup.PowerLaw(1.2)
	app.GOrder = 1.2
	app.Fseq = 0.05
	m := core.Model{Chip: cfg, App: app}

	var rows []BaselineComparison

	// C²-Bound: full model.
	res, err := m.Optimize(core.Options{MaxN: 128})
	if err != nil {
		return nil, nil, err
	}
	s, err := m.SpeedupAt(res.Design)
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, BaselineComparison{Model: "C2-Bound", OptimalN: res.Design.N, Speedup: s})

	// Sun-Chen: capacity-aware, concurrency-blind — the same model with
	// C pinned to 1.
	mSC := m
	mSC.App = app.WithConcurrency(1)
	resSC, err := mSC.Optimize(core.Options{MaxN: 128})
	if err != nil {
		return nil, nil, err
	}
	sSC, err := mSC.SpeedupAt(resSC.Design)
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, BaselineComparison{Model: "Sun-Chen (C=1)", OptimalN: resSC.Design.N, Speedup: sSC})

	// Cassidy-Andreou: AMAT and fixed problem size (C=1, g=1).
	mCA := m
	appCA := app.WithConcurrency(1)
	appCA.G = speedup.FixedSize()
	appCA.GOrder = 0
	mCA.App = appCA
	resCA, err := mCA.Optimize(core.Options{MaxN: 128})
	if err != nil {
		return nil, nil, err
	}
	sCA, err := mCA.SpeedupAt(resCA.Design)
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, BaselineComparison{Model: "Cassidy-Andreou (C=1, g=1)", OptimalN: resCA.Design.N, Speedup: sCA})

	// Hill-Marty: pure BCE model (no memory system at all). The chip's
	// usable area in BCEs, best symmetric core size.
	budget := cfg.TotalArea - cfg.FixedArea
	rBest, sHM, err := baselines.OptimalSymmetricR(app.Fseq, budget)
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, BaselineComparison{Model: "Hill-Marty (BCE)", OptimalN: int(budget/rBest + 0.5), Speedup: sHM})

	tb := tablefmt.New("Ablation: C²-Bound vs prior analytical models", "model", "optimal N", "speedup")
	for _, r := range rows {
		tb.AddRow(r.Model, tablefmt.Int(r.OptimalN), tablefmt.Float(r.Speedup))
	}
	return tb, rows, nil
}

// AblationConcurrencySensitivity quantifies the value of modelling
// concurrency: the execution time C²-Bound predicts at the
// concurrency-blind model's chosen design versus its own, for a range of
// true concurrency levels.
func AblationConcurrencySensitivity(concurrencies []float64) (*tablefmt.Table, error) {
	if len(concurrencies) == 0 {
		concurrencies = []float64{2, 4, 8}
	}
	cfg := chip.DefaultConfig()
	tb := tablefmt.New("Ablation: cost of ignoring concurrency",
		"true C", "N (C2-Bound)", "N (blind)", "T(C2-Bound design)", "T(blind design)", "penalty")
	for _, c := range concurrencies {
		app := core.StencilApp().WithConcurrency(c)
		app.G = speedup.PowerLaw(0.5) // sub-linear: a finite optimum exists
		app.GOrder = 0.5
		m := core.Model{Chip: cfg, App: app}
		res, err := m.Optimize(core.Options{MaxN: 128})
		if err != nil {
			return nil, err
		}
		blind := m
		blind.App = app.WithConcurrency(1)
		resBlind, err := blind.Optimize(core.Options{MaxN: 128})
		if err != nil {
			return nil, err
		}
		// Evaluate the blind design under the TRUE concurrency.
		tTrue := m.TimeAt(res.Design)
		tBlind := m.TimeAt(resBlind.Design)
		tb.AddRow(tablefmt.Float(c), tablefmt.Int(res.Design.N), tablefmt.Int(resBlind.Design.N),
			tablefmt.Float(tTrue), tablefmt.Float(tBlind), tablefmt.Float(tBlind/tTrue))
	}
	return tb, nil
}
