package experiments

import "runtime"

// Scale sizes the simulation-backed experiments. The zero value selects
// defaults that finish in seconds; cmd/figures -full raises them to
// paper-scale (the 10⁶-point space).
type Scale struct {
	// SpacePer is the number of values per design-space dimension for the
	// DSE experiments (10 = the paper's full 10⁶ space; default 3).
	SpacePer int
	// TotalRefs is the fixed workload size split across simulated cores.
	TotalRefs int
	// WSBytes is the workload working-set size.
	WSBytes uint64
	// Workers bounds sweep parallelism.
	Workers int
	// CacheSize bounds the evaluation engine's memo cache (0: engine
	// default, <0: disable memoization).
	CacheSize int
	// Seed drives every deterministic generator.
	Seed uint64
}

func (s *Scale) fill() {
	if s.SpacePer <= 0 {
		s.SpacePer = 3
	}
	if s.TotalRefs <= 0 {
		s.TotalRefs = 4000
	}
	if s.WSBytes == 0 {
		s.WSBytes = 4 << 20
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.Seed == 0 {
		s.Seed = 7
	}
}
