package experiments

import (
	"strings"
	"testing"
)

func TestCrossValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	tb, res, err := CrossValidate(Scale{TotalRefs: 3000}, 24)
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if res.Samples < 10 {
		t.Fatalf("only %d samples", res.Samples)
	}
	// The analytic model must order designs broadly like the simulator:
	// this is the property APS's narrowing step relies on.
	if res.Spearman < 0.5 {
		t.Fatalf("Spearman rank correlation %v below 0.5 — model does not track simulator", res.Spearman)
	}
	// The analytic best should land near the top of the simulator's
	// ranking.
	if res.AnalyticTop > res.Samples/3 {
		t.Fatalf("analytic best ranks %d of %d by the simulator", res.AnalyticTop, res.Samples)
	}
	if !strings.Contains(tb.String(), "Spearman") {
		t.Fatal("table missing correlation row")
	}
}

func TestAsymmetricComparison(t *testing.T) {
	tb, err := AsymmetricComparison([]float64{0.1, 0.3})
	if err != nil {
		t.Fatalf("AsymmetricComparison: %v", err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The gain column (last) must be ≥ 1 for nonzero fseq.
	for _, row := range tb.Rows {
		gain := row[len(row)-1]
		if gain == "" || gain[0] == '-' || gain[0] == '0' {
			t.Fatalf("asymmetric gain suspicious: %q", gain)
		}
	}
}

func TestEnergyPareto(t *testing.T) {
	tb, frontier, err := EnergyPareto()
	if err != nil {
		t.Fatalf("EnergyPareto: %v", err)
	}
	if len(frontier) < 2 {
		t.Fatalf("frontier size %d", len(frontier))
	}
	if !strings.Contains(tb.String(), "min-EDP") {
		t.Fatal("missing objective rows")
	}
}

func TestPrefetchAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	tb, data, err := PrefetchAblation(Scale{TotalRefs: 20000})
	if err != nil {
		t.Fatalf("PrefetchAblation: %v", err)
	}
	if data["stream"][0] <= 1.05 {
		t.Fatalf("prefetch speedup on stream = %v, want > 1.05", data["stream"][0])
	}
	// Random gains little either way.
	if data["random"][0] < 0.8 || data["random"][0] > 1.3 {
		t.Fatalf("random speedup = %v out of band", data["random"][0])
	}
	if len(tb.Rows) != 2 {
		t.Fatal("rows != 2")
	}
}

func TestPhaseAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	tb, res, err := PhaseAdaptation(Scale{TotalRefs: 6000})
	if err != nil {
		t.Fatalf("PhaseAdaptation: %v", err)
	}
	if res.Windows != 6 {
		t.Fatalf("windows = %d", res.Windows)
	}
	if res.PhaseChanges < 3 {
		t.Fatalf("phase changes = %d, want ≥ 3 (A→B, B→A plus the first window)", res.PhaseChanges)
	}
	if res.Reconfigs < 2 {
		t.Fatalf("reconfigurations = %d, want ≥ 2", res.Reconfigs)
	}
	// Adapting must not lose to the locked-in design, and should win.
	if res.Gain < 1 {
		t.Fatalf("adaptive schedule slower than static: gain %v", res.Gain)
	}
	if res.Gain < 1.02 {
		t.Fatalf("adaptation gain %v too small for strongly contrasting phases", res.Gain)
	}
	if len(tb.Rows) != 7 { // 6 windows + summary
		t.Fatalf("table rows = %d", len(tb.Rows))
	}
}

func TestCoScheduleInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	tb, res, err := CoScheduleInterference(Scale{TotalRefs: 8000})
	if err != nil {
		t.Fatalf("CoScheduleInterference: %v", err)
	}
	if res.Slowdown <= 1.02 {
		t.Fatalf("no measurable interference: slowdown %v", res.Slowdown)
	}
	if res.MixedCAMAT <= res.SoloCAMAT {
		t.Fatalf("C-AMAT did not degrade under co-run: %v vs %v", res.MixedCAMAT, res.SoloCAMAT)
	}
	if len(tb.Rows) != 3 {
		t.Fatal("rows != 3")
	}
}
