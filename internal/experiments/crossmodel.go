package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/tablefmt"
)

// CrossModelRow is one (application, family) optimum from the
// cross-model comparison sweep.
type CrossModelRow struct {
	App    string `json:"app"`
	Family string `json:"family"`
	// BestPoint is the family's optimal design in its own space.
	BestPoint []float64 `json:"best_point"`
	// Design names the point ("A0=…, N=…").
	Design string `json:"design"`
	// Parallelism is the hardware parallelism at the optimum: the
	// core-count dimension (N or M), or SM·Lanes for the gpu family.
	Parallelism float64 `json:"parallelism"`
	// BestTime is the family's objective at its optimum (each family's
	// own time unit; comparable within a row's family, not across).
	BestTime float64 `json:"best_time"`
	// ParVsC2Bound is Parallelism divided by the c2bound optimum's
	// parallelism on the same application — the divergence column.
	ParVsC2Bound float64 `json:"par_vs_c2bound"`
}

// parallelismAt extracts the hardware-parallelism product of a design
// point: every dimension that counts execution units (cores N, split
// count M, SMs, FP32 lanes) multiplied together, so a 4-SM × 128-lane
// GPU reads as 512-wide just like a 512-core CMP.
func parallelismAt(s dse.Space, point []float64) float64 {
	par := 1.0
	found := false
	for i, p := range s.Params {
		switch p.Name {
		case "N", "M", "SM", "Lanes":
			par *= point[i]
			found = true
		}
	}
	if !found {
		return math.NaN()
	}
	return par
}

// CrossModel sweeps every registered model family over the tmm and fft
// catalog applications and lines their optima up: each family's best
// design, the hardware parallelism it prescribes, and that parallelism
// relative to C²-Bound's choice on the same application. The divergence
// column is the point of the experiment — the extended-Amdahl families
// (commsync, sqrtm) place the optimum purely from the concurrency
// trade-off, while C²-Bound moves it with cache capacity too, so the
// ratio drifting from 1 marks exactly where capacity effects change the
// answer. All families share one memoizing engine; the family-qualified
// fingerprints keep their cache entries apart. Use CrossModelCtx to
// bound the sweeps with a deadline or cancel signal.
func CrossModel(sc Scale) (*tablefmt.Table, []CrossModelRow, error) {
	//lint:allow ctxflow deliberate non-ctx convenience wrapper over CrossModelCtx
	return CrossModelCtx(context.Background(), sc)
}

// CrossModelCtx is CrossModel with cancellation: every family sweep
// stops promptly when ctx is done.
func CrossModelCtx(ctx context.Context, sc Scale) (*tablefmt.Table, []CrossModelRow, error) {
	per := sc.SpacePer
	if per <= 0 {
		per = 4
	}
	eng := engine.New(engine.Options{Workers: sc.Workers, CacheSize: sc.CacheSize})
	apps := []struct {
		name string
		app  core.App
	}{
		{"tmm", core.TMMApp()},
		{"fft", core.FFTApp()},
	}

	var rows []CrossModelRow
	for _, a := range apps {
		c2par := math.NaN()
		first := len(rows)
		for _, name := range model.Names() {
			m, err := model.New(name, model.Config{Chip: chip.DefaultConfig(), App: a.app})
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: crossmodel %s/%s: %w", a.name, name, err)
			}
			space, err := dse.SpaceFor(m, per)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: crossmodel %s/%s: %w", a.name, name, err)
			}
			values, _, err := dse.SweepCtx(ctx, dse.NewFamilyEvaluator(m), space, nil,
				dse.SweepOptions{Engine: eng})
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: crossmodel %s/%s sweep: %w", a.name, name, err)
			}
			best := -1
			for i, v := range values {
				if math.IsNaN(v) || math.IsInf(v, 1) {
					continue
				}
				if best < 0 || v < values[best] {
					best = i
				}
			}
			if best < 0 {
				return nil, nil, fmt.Errorf("experiments: crossmodel %s/%s: no feasible design", a.name, name)
			}
			pt := space.Point(best)
			parts := make([]string, len(pt))
			for i, p := range space.Params {
				parts[i] = fmt.Sprintf("%s=%.4g", p.Name, pt[i])
			}
			par := parallelismAt(space, pt)
			if name == model.FamilyC2Bound {
				c2par = par
			}
			rows = append(rows, CrossModelRow{
				App:         a.name,
				Family:      name,
				BestPoint:   pt,
				Design:      strings.Join(parts, " "),
				Parallelism: par,
				BestTime:    values[best],
			})
		}
		for i := first; i < len(rows); i++ {
			rows[i].ParVsC2Bound = rows[i].Parallelism / c2par
		}
	}

	tb := tablefmt.New("Cross-model comparison: each family's optimum vs C²-Bound's (tmm, fft)",
		"app", "family", "best design", "parallelism", "best T", "par ÷ c2bound")
	for _, r := range rows {
		tb.AddRow(r.App, r.Family, r.Design,
			tablefmt.Float(r.Parallelism), tablefmt.Float(r.BestTime), tablefmt.Float(r.ParVsC2Bound))
	}
	return tb, rows, nil
}
