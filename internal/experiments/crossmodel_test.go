package experiments

import (
	"math"
	"testing"

	"repro/internal/model"
)

// TestCrossModel checks the cross-model sweep's structure: one row per
// (application, family), finite positive optima, and the divergence
// column anchored at exactly 1 for c2bound itself.
func TestCrossModel(t *testing.T) {
	tb, rows, err := CrossModel(Scale{SpacePer: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tb == nil {
		t.Fatal("nil table")
	}
	wantRows := 2 * len(model.Names())
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d (2 apps × %d families)", len(rows), wantRows, len(model.Names()))
	}
	for _, r := range rows {
		if !(r.BestTime > 0) || math.IsInf(r.BestTime, 1) {
			t.Errorf("%s/%s: best time %v not finite positive", r.App, r.Family, r.BestTime)
		}
		if !(r.Parallelism >= 1) {
			t.Errorf("%s/%s: parallelism %v < 1", r.App, r.Family, r.Parallelism)
		}
		if r.Family == model.FamilyC2Bound && r.ParVsC2Bound != 1 {
			t.Errorf("%s/c2bound: divergence %v, want exactly 1", r.App, r.ParVsC2Bound)
		}
		if math.IsNaN(r.ParVsC2Bound) || r.ParVsC2Bound <= 0 {
			t.Errorf("%s/%s: divergence %v not positive", r.App, r.Family, r.ParVsC2Bound)
		}
	}
}
