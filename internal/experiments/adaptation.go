package experiments

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/speedup"
	"repro/internal/tablefmt"
)

// AdaptationResult summarizes the phase-adaptation experiment.
type AdaptationResult struct {
	Windows      int
	PhaseChanges int
	Reconfigs    int
	// StaticTime and AdaptiveTime are the summed per-window predicted
	// execution times of the locked-in first-phase design versus the
	// controller's per-phase designs.
	StaticTime   float64
	AdaptiveTime float64
	Gain         float64 // StaticTime / AdaptiveTime
}

// PhaseAdaptation reproduces the paper's online-adaptation story: a
// workload alternating between a cache-friendly phase (tiled matrix
// multiply) and a cache-hostile one (random access over a large working
// set) is measured window by window with the HCD/MCD counters on the
// simulator; the controller refits the phase profile, re-solves the
// C²-Bound optimization and reconfigures. The adaptive schedule is
// compared against locking in the first phase's design.
func PhaseAdaptation(sc Scale) (*tablefmt.Table, AdaptationResult, error) {
	sc.fill()
	cfg := chip.DefaultConfig()
	base := core.FluidanimateApp()
	base.G = speedup.PowerLaw(0.5)
	base.GOrder = 0.5

	probe := sim.DefaultConfig(4)

	// Window sequence: A A B B A A (two stable phases, two transitions
	// and a return).
	type phase struct {
		workload string
		ws       uint64
	}
	phaseA := phase{"tiledmm", 2 << 20}
	phaseB := phase{"random", 64 << 20}
	sequence := []phase{phaseA, phaseA, phaseB, phaseB, phaseA, phaseA}

	measure := func(p phase, window int) (adapt.WindowStats, error) {
		res, err := sim.RunWorkload(probe, p.workload, p.ws, 2, sc.TotalRefs, sc.Seed+uint64(window))
		if err != nil {
			return adapt.WindowStats{}, err
		}
		return adapt.WindowStats{
			Instructions: res.Instructions,
			Accesses:     res.MemAccesses,
			Params:       res.L1Params,
			L1MR:         res.L1Params.MR,
			L2MR:         res.L2Stats.MissRate(),
			L1CapKB:      float64(probe.L1.SizeKB),
			L2CapKB:      float64(probe.L2.SizeKB),
		}, nil
	}

	ctl := adapt.Controller{Chip: cfg, Base: base, Optimize: core.Options{MaxN: 64}}
	tb := tablefmt.New("Online adaptation: phase-by-phase reconfiguration",
		"window", "phase", "phase change", "reconfig", "design")
	var res AdaptationResult
	var staticDesign chip.Design
	var perWindowApps []core.App
	var perWindowDesign []chip.Design
	for i, p := range sequence {
		w, err := measure(p, i)
		if err != nil {
			return nil, res, fmt.Errorf("experiments: window %d: %w", i, err)
		}
		dec, err := ctl.Step(w)
		if err != nil {
			return nil, res, err
		}
		if i == 0 {
			staticDesign = dec.Design
		}
		if dec.PhaseChange {
			res.PhaseChanges++
		}
		perWindowApps = append(perWindowApps, dec.App)
		perWindowDesign = append(perWindowDesign, dec.Design)
		tb.AddRow(tablefmt.Int(i+1), p.workload,
			fmt.Sprintf("%v", dec.PhaseChange), fmt.Sprintf("%v", dec.Reconfigured),
			dec.Design.String())
	}
	res.Windows = ctl.Windows()
	res.Reconfigs = ctl.Reconfigurations()

	// Score both schedules under each window's own measured profile.
	for i, app := range perWindowApps {
		m := core.Model{Chip: cfg, App: app}
		res.StaticTime += m.TimeAt(staticDesign)
		res.AdaptiveTime += m.TimeAt(perWindowDesign[i])
	}
	if res.AdaptiveTime > 0 {
		res.Gain = res.StaticTime / res.AdaptiveTime
	}
	tb.AddRow("", "", "", "static/adaptive", tablefmt.Float(res.Gain))
	return tb, res, nil
}
