// Package experiments regenerates every table and figure of the paper's
// evaluation as data series and text tables. It is the single source both
// cmd/figures and the root benchmark suite render from; EXPERIMENTS.md
// records its output against the paper's numbers.
package experiments
