package experiments

import (
	"fmt"
	"math"

	"repro/internal/dse"
	"repro/internal/stats"
	"repro/internal/tablefmt"
)

// ValidationResult is the model-versus-simulator cross-check: whether the
// analytic C²-Bound objective orders design points the way the
// cycle-level simulator does — the property APS's correctness rests on.
type ValidationResult struct {
	Samples     int
	Spearman    float64 // rank correlation of analytic vs simulated time
	MeanAbsErr  float64 // MAPE after least-squares scale alignment
	BestAgree   bool    // do both rank the same design best?
	AnalyticTop int     // simulator rank of the analytic best (1 = agree)
}

// CrossValidate samples design points from the reduced space, scores each
// with both the analytic model (plus the issue/ROB corrections of
// dse.ModelEvaluator) and the full simulator, and reports rank agreement.
func CrossValidate(sc Scale, samples int) (*tablefmt.Table, ValidationResult, error) {
	sc.fill()
	if samples < 4 {
		samples = 24
	}
	m := fluidanimateModel()
	space, err := dse.ReducedSpace(m.Chip, 4)
	if err != nil {
		return nil, ValidationResult{}, err
	}
	simEval, err := dse.NewSimEvaluator(m.Chip, "fluidanimate", sc.WSBytes, 2, sc.TotalRefs, sc.Seed)
	if err != nil {
		return nil, ValidationResult{}, err
	}
	modelEval := &dse.ModelEvaluator{Model: m}

	// Deterministic sample of distinct indices.
	rng := sc.Seed*0x9e3779b97f4a7c15 + 0x51ca
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	seen := map[int]bool{}
	var analytic, simulated []float64
	for len(analytic) < samples && len(seen) < space.Size() {
		idx := int(next() % uint64(space.Size()))
		if seen[idx] {
			continue
		}
		seen[idx] = true
		p := space.Point(idx)
		av := modelEval.Evaluate(p)
		sv := simEval.Evaluate(p)
		if math.IsInf(av, 1) || math.IsInf(sv, 1) {
			continue
		}
		analytic = append(analytic, av)
		simulated = append(simulated, sv)
	}
	if len(analytic) < 4 {
		return nil, ValidationResult{}, fmt.Errorf("experiments: only %d feasible validation samples", len(analytic))
	}

	rho, err := stats.Spearman(analytic, simulated)
	if err != nil {
		return nil, ValidationResult{}, err
	}
	// Scale-aligned MAPE: analytic units are arbitrary, so align by the
	// ratio of means before comparing magnitudes.
	scale := stats.Mean(simulated) / stats.Mean(analytic)
	scaled := make([]float64, len(analytic))
	for i, v := range analytic {
		scaled[i] = v * scale
	}
	mape, err := stats.MAPE(scaled, simulated)
	if err != nil {
		return nil, ValidationResult{}, err
	}
	bestA := stats.ArgMin(analytic)
	bestS := stats.ArgMin(simulated)
	// Simulator rank of the analytic best.
	rank := 1
	for _, v := range simulated {
		if v < simulated[bestA] {
			rank++
		}
	}
	res := ValidationResult{
		Samples:     len(analytic),
		Spearman:    rho,
		MeanAbsErr:  mape,
		BestAgree:   bestA == bestS,
		AnalyticTop: rank,
	}
	tb := tablefmt.New("Model vs simulator cross-validation (fluidanimate)",
		"quantity", "value")
	tb.AddRow("samples", tablefmt.Int(res.Samples))
	tb.AddRow("Spearman rank correlation", tablefmt.Float(res.Spearman))
	tb.AddRow("scale-aligned MAPE", tablefmt.Float(res.MeanAbsErr))
	tb.AddRow("simulator rank of analytic best", tablefmt.Int(res.AnalyticTop))
	return tb, res, nil
}
