package experiments

import (
	"context"
	"fmt"

	"repro/internal/aps"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/speedup"
	"repro/internal/tablefmt"
)

// fluidanimateModel returns the analytic model used by the APS flow for
// the DSE experiments: the fluidanimate-like profile with the *fixed-size*
// workload the simulator measures (the DSE splits a constant reference
// count across cores).
func fluidanimateModel() core.Model {
	app := core.FluidanimateApp()
	app.G = speedup.FixedSize()
	app.GOrder = 0
	return core.Model{Chip: chip.DefaultConfig(), App: app}
}

// Fig12Data carries the simulation-count comparison of Fig. 12 plus the
// APS accuracy figures quoted in §IV.
type Fig12Data struct {
	SpaceSize       int
	BruteForceSims  int
	APSSims         int
	APSRelErr       float64 // vs. the full-sweep optimum
	ANNSims         int
	ANNRelErr       float64
	ANNReachedAPS   bool // whether ANN matched APS's error within budget
	APSShareOfANN   float64
	TruthBestCycles float64
	APSBestCycles   float64
	// TruthEngine and APSEngine expose the evaluation engines' counter
	// deltas for the two phases (raw simulations, cache hits, retries).
	// The phases run on separate engines on purpose: Fig. 12 compares
	// cold simulation budgets, so APS must not be warmed by the truth
	// sweep here.
	TruthEngine engine.Stats
	APSEngine   engine.Stats
}

// Fig12SimulationCounts runs the full §IV comparison on a design space
// sized by sc: ground-truth brute-force sweep, APS, and the ANN baseline
// driven to APS's error level. On sc.SpacePer = 10 this is the paper's
// 10⁶-point experiment; the default reduced space preserves the ratios at
// a laptop-friendly cost. Use Fig12SimulationCountsCtx to bound the
// experiment with a deadline or cancel signal.
func Fig12SimulationCounts(sc Scale) (*tablefmt.Table, Fig12Data, error) {
	//lint:allow ctxflow deliberate non-ctx convenience wrapper over Fig12SimulationCountsCtx
	return Fig12SimulationCountsCtx(context.Background(), sc)
}

// Fig12SimulationCountsCtx is Fig12SimulationCounts with cancellation:
// both the ground-truth sweep and the APS run stop promptly when ctx is
// cancelled or its deadline expires.
func Fig12SimulationCountsCtx(ctx context.Context, sc Scale) (*tablefmt.Table, Fig12Data, error) {
	sc.fill()
	m := fluidanimateModel()
	space, err := dse.ReducedSpace(m.Chip, sc.SpacePer)
	if err != nil {
		return nil, Fig12Data{}, err
	}
	eval, err := dse.NewSimEvaluator(m.Chip, "fluidanimate", sc.WSBytes, 2, sc.TotalRefs, sc.Seed)
	if err != nil {
		return nil, Fig12Data{}, err
	}

	// Ground truth: the brute-force full sweep, metered by its own engine.
	truthEng := engine.New(engine.Options{Workers: sc.Workers, CacheSize: sc.CacheSize})
	truth, _, err := dse.SweepCtx(ctx, eval, space, nil,
		dse.SweepOptions{Engine: truthEng})
	if err != nil {
		return nil, Fig12Data{}, err
	}
	_, trueBest := dse.Best(truth)

	// APS on a fresh engine: the comparison needs APS's cold simulation
	// budget, so the truth sweep's cache must not leak into it.
	apsEng := engine.New(engine.Options{Workers: sc.Workers, CacheSize: sc.CacheSize})
	apsRes, err := aps.RunCtx(ctx, m, space, eval, aps.Options{
		Engine:   apsEng,
		Workers:  sc.Workers,
		Optimize: core.Options{MaxN: 64},
	})
	if err != nil {
		return nil, Fig12Data{}, err
	}
	apsErr, err := aps.RelativeError(apsRes.BestValue, truth)
	if err != nil {
		return nil, Fig12Data{}, err
	}

	// ANN baseline, driven to APS's achieved error (floored to avoid
	// asking the network for near-exact optima on tiny spaces).
	target := apsErr
	if target < 0.02 {
		target = 0.02
	}
	search := &aps.ANNSearch{
		Space: space, Truth: truth, Seed: sc.Seed,
		ChunkSize: 25, Epochs: 300, MaxSims: space.Size(),
	}
	annRes, annErr := search.Run(target)

	d := Fig12Data{
		SpaceSize:       space.Size(),
		BruteForceSims:  space.Size(),
		APSSims:         apsRes.Simulations,
		APSRelErr:       apsErr,
		ANNSims:         annRes.Simulations,
		ANNRelErr:       annRes.AchievedErr,
		ANNReachedAPS:   annErr == nil,
		TruthBestCycles: trueBest,
		APSBestCycles:   apsRes.BestValue,
		TruthEngine:     truthEng.Stats(),
		APSEngine:       apsRes.Engine,
	}
	if d.ANNSims > 0 {
		d.APSShareOfANN = float64(d.APSSims) / float64(d.ANNSims)
	}
	tb := tablefmt.New(fmt.Sprintf("Fig. 12: simulation counts (space = %d configurations)", d.SpaceSize),
		"method", "simulations", "rel. error vs optimum")
	tb.AddRow("brute force", tablefmt.Int(d.BruteForceSims), "0")
	tb.AddRow("ANN (ref [2])", tablefmt.Int(d.ANNSims), tablefmt.Float(d.ANNRelErr))
	tb.AddRow("APS (C²-Bound)", tablefmt.Int(d.APSSims), tablefmt.Float(d.APSRelErr))
	return tb, d, nil
}

// Fig13APC measures the APC value at each memory-hierarchy layer for a
// set of workloads on the simulated machine — the §V evidence that the
// on-chip/off-chip gap makes on-chip capacity the binding bound.
func Fig13APC(sc Scale) (*tablefmt.Table, map[string][3]float64, error) {
	sc.fill()
	workloads := []string{"tiledmm", "stencil", "fft", "fluidanimate", "stream"}
	cfg := sim.DefaultConfig(4)
	// The paper's benchmarks have working sets that largely fit on chip
	// (that is the point of Fig. 13: the steep on-chip/off-chip APC gap),
	// so the figure uses an LLC-resident working set and enough
	// references per core to amortize the cold pass.
	wsBytes := uint64(1 << 20)
	refs := sc.TotalRefs * 5
	if refs < 20000 {
		refs = 20000
	}
	out := map[string][3]float64{}
	tb := tablefmt.New("Fig. 13: APC per memory layer", "workload", "APC_L1", "APC_LLC", "APC_mem")
	for _, w := range workloads {
		res, err := sim.RunWorkload(cfg, w, wsBytes, 2, refs, sc.Seed)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: Fig. 13 %s: %w", w, err)
		}
		out[w] = [3]float64{res.APCL1, res.APCL2, res.APCMem}
		tb.AddRow(w, tablefmt.Float(res.APCL1), tablefmt.Float(res.APCL2), tablefmt.Float(res.APCMem))
	}
	return tb, out, nil
}

// APSAccuracy reports the §IV accuracy claim in isolation: APS's relative
// error against the full sweep (the paper measured 5.96% on fluidanimate)
// and the share of the ANN baseline's simulation budget APS needs (the
// paper reports 16.3%).
func APSAccuracy(sc Scale) (*tablefmt.Table, Fig12Data, error) {
	tb12, d, err := Fig12SimulationCounts(sc)
	if err != nil {
		return nil, d, err
	}
	_ = tb12
	tb := tablefmt.New("APS accuracy (§IV)", "quantity", "measured", "paper")
	tb.AddRow("APS rel. error", tablefmt.Float(d.APSRelErr), "0.0596")
	tb.AddRow("APS sims / ANN sims", tablefmt.Float(d.APSShareOfANN), "0.163")
	tb.AddRow("space reduction", tablefmt.Float(float64(d.SpaceSize)/float64(d.APSSims)), "10^4")
	return tb, d, nil
}
