package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFig1Demo(t *testing.T) {
	tb, p, err := Fig1Demo()
	if err != nil {
		t.Fatalf("Fig1Demo: %v", err)
	}
	if math.Abs(p.CAMAT()-1.6) > 1e-12 || math.Abs(p.AMAT()-3.8) > 1e-12 {
		t.Fatalf("worked example mismatch: %v", p)
	}
	if !strings.Contains(tb.String(), "C-AMAT") {
		t.Fatal("table missing C-AMAT row")
	}
}

func TestTable1G(t *testing.T) {
	tb := Table1G()
	s := tb.String()
	for _, want := range []string{"TMM", "Stencil", "FFT", "N^{3/2}"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table I missing %q:\n%s", want, s)
		}
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("Table I rows = %d", len(tb.Rows))
	}
}

func TestFig2Illustration(t *testing.T) {
	cases, err := Fig2Illustration(16, 4, 0.05, 0.4, 0.5, 6)
	if err != nil {
		t.Fatalf("Fig2Illustration: %v", err)
	}
	if len(cases) != 3 {
		t.Fatalf("cases = %d", len(cases))
	}
	// Time strictly shrinks with each added concurrency dimension.
	if !(cases[0].Time > cases[1].Time && cases[1].Time > cases[2].Time) {
		t.Fatalf("times not decreasing: %v %v %v", cases[0].Time, cases[1].Time, cases[2].Time)
	}
	if Fig2Table(cases) == nil {
		t.Fatal("nil table")
	}
	if _, err := Fig2Illustration(0, 4, 0, 0, 0, 0); err == nil {
		t.Fatal("bad n accepted")
	}
}

func TestFig7CoreAllocation(t *testing.T) {
	tb, allocs, err := Fig7CoreAllocation()
	if err != nil {
		t.Fatalf("Fig7CoreAllocation: %v", err)
	}
	if len(allocs) != 3 {
		t.Fatalf("allocations = %d", len(allocs))
	}
	// Paper ordering: app1 (seq-heavy, low C) ≪ app3 (middle) < app2.
	if !(allocs[0].Cores < allocs[2].Cores && allocs[2].Cores < allocs[1].Cores) {
		t.Fatalf("Fig. 7 ordering wrong: %d, %d, %d", allocs[0].Cores, allocs[1].Cores, allocs[2].Cores)
	}
	if len(tb.Rows) != 3 {
		t.Fatal("table rows != 3")
	}
}

func scalingByC(pts []ScalingPoint) map[float64]map[int]ScalingPoint {
	out := map[float64]map[int]ScalingPoint{}
	for _, p := range pts {
		if out[p.C] == nil {
			out[p.C] = map[int]ScalingPoint{}
		}
		out[p.C][p.N] = p
	}
	return out
}

func TestScalingShapes(t *testing.T) {
	_, pts3, err := Fig8()
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	_, pts9, err := Fig9()
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	by3 := scalingByC(pts3)
	by9 := scalingByC(pts9)

	// W follows g(N)·(1−fseq) + fseq, identical across C and fmem.
	for _, p := range pts3 {
		want := 0.01 + 0.99*math.Pow(float64(p.N), 1.5)
		if math.Abs(p.W-want) > 1e-6*want {
			t.Fatalf("W(N=%d) = %v, want %v", p.N, p.W, want)
		}
	}

	for _, c := range PaperConcurrencies() {
		for _, n := range ScalingNs() {
			// T grows with fmem (Fig. 8 vs Fig. 9).
			if by9[c][n].T <= by3[c][n].T {
				t.Fatalf("T(fmem=0.9) not above T(fmem=0.3) at N=%d C=%v", n, c)
			}
			// W/T decreases with fmem (Fig. 10 vs Fig. 11).
			if by9[c][n].WT >= by3[c][n].WT {
				t.Fatalf("W/T(fmem=0.9) not below at N=%d C=%v", n, c)
			}
		}
	}

	// Higher concurrency is never slower; at N=1000 the T(C=1)/T(C=8)
	// ratio is significant (the paper's "very significant" speedup).
	for _, by := range []map[float64]map[int]ScalingPoint{by3, by9} {
		for _, n := range ScalingNs() {
			if !(by[1][n].T >= by[4][n].T && by[4][n].T >= by[8][n].T) {
				t.Fatalf("T not decreasing in C at N=%d", n)
			}
		}
		ratio := by[1][1000].T / by[8][1000].T
		if ratio < 2 {
			t.Fatalf("T(C=1)/T(C=8) at N=1000 = %v, want ≥ 2", ratio)
		}
	}

	// Fig. 10 shape: the C=1 throughput curve flattens around ~100 cores
	// (beyond 100, W/T stays within a modest band), while C=8 keeps
	// improving well past it.
	flatteningBand := by3[1][1000].WT / by3[1][100].WT
	if flatteningBand > 1.6 || flatteningBand < 0.4 {
		t.Fatalf("C=1 throughput not flat beyond 100 cores: band %v", flatteningBand)
	}
	growth8 := by3[8][1000].WT / by3[8][100].WT
	if growth8 < 1.5 {
		t.Fatalf("C=8 throughput stalls too early: growth %v", growth8)
	}
	// Higher concurrency yields higher best throughput.
	best := func(by map[float64]map[int]ScalingPoint, c float64) float64 {
		m := 0.0
		for _, p := range by[c] {
			if p.WT > m {
				m = p.WT
			}
		}
		return m
	}
	if !(best(by3, 8) > best(by3, 4) && best(by3, 4) > best(by3, 1)) {
		t.Fatalf("best W/T not ordered by C: %v %v %v", best(by3, 1), best(by3, 4), best(by3, 8))
	}
}

func TestScalingValidation(t *testing.T) {
	if _, err := MemoryBoundedScaling(0, []float64{1}, []int{1}); err == nil {
		t.Error("fmem=0 accepted")
	}
	if _, err := MemoryBoundedScaling(0.3, nil, []int{1}); err == nil {
		t.Error("empty concurrency list accepted")
	}
}

func TestFig10And11Tables(t *testing.T) {
	tb10, _, err := Fig10()
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	tb11, _, err := Fig11()
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	for _, tb := range []string{tb10.String(), tb11.String()} {
		if !strings.Contains(tb, "W/T(C=8)") {
			t.Fatalf("missing throughput column:\n%s", tb)
		}
	}
}

func TestFig12SimulationCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	tb, d, err := Fig12SimulationCounts(Scale{SpacePer: 3, TotalRefs: 2500})
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if d.BruteForceSims != d.SpaceSize {
		t.Fatalf("brute force sims %d != space %d", d.BruteForceSims, d.SpaceSize)
	}
	// The Fig. 12 ordering: APS ≪ ANN < brute force.
	if !(d.APSSims < d.ANNSims && d.ANNSims < d.BruteForceSims) {
		t.Fatalf("simulation counts not ordered: APS=%d ANN=%d brute=%d",
			d.APSSims, d.ANNSims, d.BruteForceSims)
	}
	// Space reduction of at least two orders of magnitude on the reduced
	// space (the paper reports four on the full 10⁶ space).
	if float64(d.SpaceSize)/float64(d.APSSims) < 50 {
		t.Fatalf("space reduction too small: %d / %d", d.SpaceSize, d.APSSims)
	}
	// APS accuracy: within 25% of the true optimum on the reduced space.
	if d.APSRelErr < 0 || d.APSRelErr > 0.25 {
		t.Fatalf("APS error %v out of expected band", d.APSRelErr)
	}
	if !strings.Contains(tb.String(), "APS") {
		t.Fatal("table missing APS row")
	}
}

func TestFig13APC(t *testing.T) {
	tb, data, err := Fig13APC(Scale{TotalRefs: 4000, WSBytes: 8 << 20})
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	if len(data) != 5 {
		t.Fatalf("workloads = %d", len(data))
	}
	for w, apcs := range data {
		if !(apcs[0] > apcs[1] && apcs[1] > apcs[2]) {
			t.Fatalf("%s: APC not decreasing down the hierarchy: %v", w, apcs)
		}
		if apcs[2] <= 0 {
			t.Fatalf("%s: no DRAM APC", w)
		}
	}
	if len(tb.Rows) != 5 {
		t.Fatal("table rows != 5")
	}
}

func TestAblationRegimeSplit(t *testing.T) {
	tb, pts, err := AblationRegimeSplit(nil)
	if err != nil {
		t.Fatalf("AblationRegimeSplit: %v", err)
	}
	if len(pts) < 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		wantRegime := core.MinimizeTime
		if p.Exponent >= 1 {
			wantRegime = core.MaximizeThroughput
		}
		if p.Regime != wantRegime {
			t.Fatalf("b=%v: regime %v, want %v", p.Exponent, p.Regime, wantRegime)
		}
	}
	// Sub-linear scaling with small b settles on few cores; the
	// throughput regime picks far more.
	if pts[0].OptimalN >= pts[len(pts)-1].OptimalN {
		t.Fatalf("optimal N not growing across the regime split: %d vs %d",
			pts[0].OptimalN, pts[len(pts)-1].OptimalN)
	}
	if len(tb.Rows) != len(pts) {
		t.Fatal("table size mismatch")
	}
}

func TestAblationBaselines(t *testing.T) {
	tb, rows, err := AblationBaselines()
	if err != nil {
		t.Fatalf("AblationBaselines: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OptimalN < 1 || r.Speedup <= 0 {
			t.Fatalf("degenerate comparison row: %+v", r)
		}
	}
	if !strings.Contains(tb.String(), "Hill-Marty") {
		t.Fatal("missing Hill-Marty row")
	}
}

func TestAblationConcurrencySensitivity(t *testing.T) {
	tb, err := AblationConcurrencySensitivity(nil)
	if err != nil {
		t.Fatalf("AblationConcurrencySensitivity: %v", err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}
