package experiments

import (
	"fmt"

	"repro/internal/camat"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/speedup"
	"repro/internal/tablefmt"
)

// Fig1Demo reproduces the §II-A worked example: the five-access trace of
// Fig. 1 with every derived parameter.
func Fig1Demo() (*tablefmt.Table, camat.Params, error) {
	an, err := camat.Analyze(camat.Fig1Trace())
	if err != nil {
		return nil, camat.Params{}, err
	}
	p := an.Params()
	tb := tablefmt.New("Fig. 1: C-AMAT demonstration (five accesses)", "quantity", "value", "paper")
	tb.AddRow("H (hit time)", tablefmt.Float(p.H), "3")
	tb.AddRow("MR", tablefmt.Float(p.MR), "0.4")
	tb.AddRow("AMP", tablefmt.Float(p.AMP), "2")
	tb.AddRow("AMAT", tablefmt.Float(p.AMAT()), "3.8")
	tb.AddRow("C_H", tablefmt.Float(p.CH), "5/2")
	tb.AddRow("C_M", tablefmt.Float(p.CM), "1")
	tb.AddRow("pMR", tablefmt.Float(p.PMR), "0.2")
	tb.AddRow("pAMP", tablefmt.Float(p.PAMP), "2")
	tb.AddRow("C-AMAT", tablefmt.Float(p.CAMAT()), "1.6")
	tb.AddRow("C = AMAT/C-AMAT", tablefmt.Float(p.Concurrency()), "2.375")
	return tb, p, nil
}

// Table1G reproduces Table I: the g(N) factors of four applications,
// evaluated at a reference scale to show the growth numerically.
func Table1G() *tablefmt.Table {
	rows := speedup.Table1(1 << 20)
	tb := tablefmt.New("Table I: problem size scale factors g(N)",
		"application", "computation", "memory", "g(N)", "g(4)", "g(64)")
	for _, r := range rows {
		tb.AddRow(r.Application, r.Computation, r.Memory, r.GFormula,
			tablefmt.Float(r.Scale(4)), tablefmt.Float(r.Scale(64)))
	}
	return tb
}

// Fig2Case is one subgraph of Fig. 2: the work completed and the time it
// takes under a process count and memory-concurrency combination.
type Fig2Case struct {
	Label string
	P     int     // process-level parallelism
	C     float64 // memory-level concurrency
	Time  float64 // normalized completion time
	Work  float64 // normalized work (shadowed area)
}

// Fig2Illustration quantifies the Fig. 2 concept: a fixed problem (work
// normalized to 1) under (p=1, C=1), (p=N, C=1) and (p=N, C>1). The CPU
// component splits into compute and data-stall parts; process parallelism
// divides the parallel portion by p, memory concurrency divides the
// data-stall part by C.
func Fig2Illustration(n int, c float64, fseq, fmem, cpiExe, amat float64) ([]Fig2Case, error) {
	if n < 1 || c < 1 {
		return nil, fmt.Errorf("experiments: Fig. 2 needs n ≥ 1 and C ≥ 1 (got %d, %v)", n, c)
	}
	timeAt := func(p int, conc float64) float64 {
		cpi := cpiExe + fmem*amat/conc
		return cpi * (fseq + (1-fseq)/float64(p))
	}
	base := timeAt(1, 1)
	return []Fig2Case{
		{Label: "(a) p=1, C=1", P: 1, C: 1, Time: 1, Work: 1},
		{Label: fmt.Sprintf("(b) p=%d, C=1", n), P: n, C: 1, Time: timeAt(n, 1) / base, Work: 1},
		{Label: fmt.Sprintf("(c) p=%d, C=%g", n, c), P: n, C: c, Time: timeAt(n, c) / base, Work: 1},
	}, nil
}

// Fig2Table renders the illustration.
func Fig2Table(cases []Fig2Case) *tablefmt.Table {
	tb := tablefmt.New("Fig. 2: process- and memory-level concurrency", "case", "p", "C", "normalized time")
	for _, cs := range cases {
		tb.AddRow(cs.Label, tablefmt.Int(cs.P), tablefmt.Float(cs.C), tablefmt.Float(cs.Time))
	}
	return tb
}

// Fig7CoreAllocation reproduces the multi-application allocation case
// study: three applications with contrasting (f_seq, C) profiles dividing
// a 64-core chip.
func Fig7CoreAllocation() (*tablefmt.Table, []core.Allocation, error) {
	cfg := chip.DefaultConfig()
	apps := []core.App{core.SequentialHeavyApp(), core.ParallelConcurrentApp(), core.BalancedApp()}
	allocs, err := core.AllocateCores(cfg, apps, 64)
	if err != nil {
		return nil, nil, err
	}
	tb := tablefmt.New("Fig. 7: core allocation for multiple tasks (64 cores)",
		"application", "f_seq", "C", "cores", "speedup")
	for _, al := range allocs {
		tb.AddRow(al.App.Name, tablefmt.Float(al.App.Fseq), tablefmt.Float(al.App.CH),
			tablefmt.Int(al.Cores), tablefmt.Float(al.Speedup))
	}
	return tb, allocs, nil
}
