package experiments

import (
	"repro/internal/camat"
	"repro/internal/sim"
	"repro/internal/tablefmt"
)

// InterferenceResult quantifies co-scheduling interference: how a
// cache-friendly application's CPI and C-AMAT degrade when a memory-
// hungry neighbour shares the L2 and DRAM — the §V "partitioning and
// allocating resources among diverse applications" motivation.
type InterferenceResult struct {
	SoloCPI    float64
	MixedCPI   float64
	SoloCAMAT  float64
	MixedCAMAT float64
	Slowdown   float64 // MixedCPI / SoloCPI
}

// CoScheduleInterference runs tiledmm on two cores, first alone and then
// alongside two cores of large-working-set random access, and reports the
// victim's degradation.
func CoScheduleInterference(sc Scale) (*tablefmt.Table, InterferenceResult, error) {
	sc.fill()
	victim := sim.WorkloadSpec{
		Workload: "tiledmm", WSBytes: 2 << 20, MeanGap: 2,
		Refs: sc.TotalRefs, Cores: 2, Seed: sc.Seed,
	}
	aggressor := sim.WorkloadSpec{
		Workload: "random", WSBytes: 64 << 20, MeanGap: 1,
		Refs: sc.TotalRefs, Cores: 2, Seed: sc.Seed + 99,
	}

	solo, err := sim.RunMixed(sim.DefaultConfig(2), []sim.WorkloadSpec{victim})
	if err != nil {
		return nil, InterferenceResult{}, err
	}
	mixed, err := sim.RunMixed(sim.DefaultConfig(4), []sim.WorkloadSpec{victim, aggressor})
	if err != nil {
		return nil, InterferenceResult{}, err
	}

	victimStats := func(r *sim.Result, cores int) (cpi float64, cam float64) {
		var cpiSum float64
		analyses := make([]camat.Analysis, 0, cores)
		for i := 0; i < cores; i++ {
			cpiSum += r.CoreStats[i].CPI()
			analyses = append(analyses, r.L1Analyses[i])
		}
		agg := camat.Merge(analyses...)
		return cpiSum / float64(cores), agg.CAMATDirect()
	}
	res := InterferenceResult{}
	res.SoloCPI, res.SoloCAMAT = victimStats(solo, 2)
	res.MixedCPI, res.MixedCAMAT = victimStats(mixed, 2)
	if res.SoloCPI > 0 {
		res.Slowdown = res.MixedCPI / res.SoloCPI
	}

	tb := tablefmt.New("Co-scheduling interference (tiledmm victim, random aggressor)",
		"setting", "victim CPI", "victim C-AMAT")
	tb.AddRow("solo (2 cores)", tablefmt.Float(res.SoloCPI), tablefmt.Float(res.SoloCAMAT))
	tb.AddRow("co-run (+2 aggressor cores)", tablefmt.Float(res.MixedCPI), tablefmt.Float(res.MixedCAMAT))
	tb.AddRow("slowdown", tablefmt.Float(res.Slowdown), "")
	return tb, res, nil
}
