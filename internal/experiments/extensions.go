package experiments

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/speedup"
	"repro/internal/tablefmt"
)

// AsymmetricComparison runs the §VII asymmetric-CMP extension: for a
// range of sequential fractions, the best symmetric and best asymmetric
// C²-Bound designs and the asymmetric advantage.
func AsymmetricComparison(fseqs []float64) (*tablefmt.Table, error) {
	if len(fseqs) == 0 {
		fseqs = []float64{0.05, 0.15, 0.3, 0.5}
	}
	cfg := chip.DefaultConfig()
	tb := tablefmt.New("Extension: symmetric vs asymmetric CMP (fixed-size workload)",
		"f_seq", "sym N", "sym T", "asym small-N", "big-core mm²", "asym T", "asym gain")
	for _, fseq := range fseqs {
		app := core.FluidanimateApp()
		app.Fseq = fseq
		app.G = speedup.FixedSize()
		app.GOrder = 0
		sym := core.Model{Chip: cfg, App: app}
		symRes, err := sym.Optimize(core.Options{MaxN: 64})
		if err != nil {
			return nil, fmt.Errorf("experiments: symmetric fseq=%v: %w", fseq, err)
		}
		asym := core.AsymModel{Chip: cfg, App: app}
		asymD, asymE, err := asym.OptimizeAsym(core.Options{MaxN: 64})
		if err != nil {
			return nil, fmt.Errorf("experiments: asymmetric fseq=%v: %w", fseq, err)
		}
		tb.AddRow(
			tablefmt.Float(fseq),
			tablefmt.Int(symRes.Design.N),
			tablefmt.Float(symRes.Eval.Time),
			tablefmt.Int(asymD.N),
			tablefmt.Float(asymD.BigArea),
			tablefmt.Float(asymE.Time),
			tablefmt.Float(symRes.Eval.Time/asymE.Time),
		)
	}
	return tb, nil
}

// EnergyPareto runs the §VII energy extension: the time/energy Pareto
// frontier plus the three single-objective optima.
func EnergyPareto() (*tablefmt.Table, []core.ParetoPoint, error) {
	app := core.FluidanimateApp()
	app.G = speedup.FixedSize()
	app.GOrder = 0
	app.Fseq = 0.1
	m := core.Model{Chip: chip.DefaultConfig(), App: app}
	pm := core.DefaultPowerModel()

	frontier, err := m.ParetoFrontier(pm, core.Options{MaxN: 64})
	if err != nil {
		return nil, nil, err
	}
	tb := tablefmt.New("Extension: time/energy Pareto frontier", "N", "A0", "A1", "A2", "time", "energy")
	for _, p := range frontier {
		tb.AddRow(tablefmt.Int(p.Design.N), tablefmt.Float(p.Design.CoreArea),
			tablefmt.Float(p.Design.L1Area), tablefmt.Float(p.Design.L2Area),
			tablefmt.Float(p.Time), tablefmt.Float(p.Energy))
	}
	for _, obj := range []core.EnergyObjective{core.MinEnergy, core.MinEDP, core.MinED2P} {
		d, e, err := m.OptimizeEnergy(pm, obj, core.Options{MaxN: 64})
		if err != nil {
			return nil, nil, err
		}
		tb.AddRow(tablefmt.Int(d.N), tablefmt.Float(d.CoreArea), tablefmt.Float(d.L1Area),
			tablefmt.Float(d.L2Area), tablefmt.Float(e.Time), tablefmt.Float(e.Energy)+" ← "+obj.String())
	}
	return tb, frontier, nil
}

// PrefetchAblation measures the simulator's next-line prefetcher on a
// streaming and a random workload: demand-visible speedup and measured
// C-AMAT change. Prefetching is one of the concurrency mechanisms the
// paper lists as raising C_H/C_M.
func PrefetchAblation(sc Scale) (*tablefmt.Table, map[string][2]float64, error) {
	sc.fill()
	run := func(workload string, prefetch bool) (*sim.Result, error) {
		cfg := sim.DefaultConfig(2)
		cfg.L1.NextLinePrefetch = prefetch
		return sim.RunWorkload(cfg, workload, 16<<20, 2, sc.TotalRefs, sc.Seed)
	}
	out := map[string][2]float64{}
	tb := tablefmt.New("Ablation: next-line prefetching",
		"workload", "CPI (off)", "CPI (on)", "speedup", "C-AMAT off", "C-AMAT on")
	for _, w := range []string{"stream", "random"} {
		off, err := run(w, false)
		if err != nil {
			return nil, nil, err
		}
		on, err := run(w, true)
		if err != nil {
			return nil, nil, err
		}
		speed := off.CPI / on.CPI
		out[w] = [2]float64{speed, off.L1Params.CAMAT() / on.L1Params.CAMAT()}
		tb.AddRow(w, tablefmt.Float(off.CPI), tablefmt.Float(on.CPI), tablefmt.Float(speed),
			tablefmt.Float(off.L1Params.CAMAT()), tablefmt.Float(on.L1Params.CAMAT()))
	}
	return tb, out, nil
}
