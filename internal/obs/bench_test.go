package obs

import (
	"context"
	"testing"
)

// The disabled benchmarks prove the "near-zero when off" contract: a nil
// tracer/registry costs one branch per call, no allocation.

func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.Start(ctx, "engine.eval")
		sp.Finish()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(1 << 10)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.Start(ctx, "engine.eval")
		sp.Finish()
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("x_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("lat_seconds", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("lat_seconds", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}
