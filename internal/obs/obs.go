// Package obs is the repository's zero-dependency observability layer:
// a hierarchical span tracer with a lock-free ring buffer exportable as
// Chrome trace_event JSON (trace.go), a metrics registry of atomic
// counters, gauges and histograms with a text exposition (metrics.go),
// and CPU/heap profile helpers for the CLIs (profile.go).
//
// Everything is built for a near-zero disabled cost: a nil *Tracer and a
// nil *Registry are fully functional no-ops — every method checks its
// receiver first — so instrumented hot paths pay a single predictable
// branch when observability is off (see bench_test.go for the proof).
//
// # Propagation
//
// The tracer and the registry travel down the call stack inside the
// context (ContextWithTracer / ContextWithMetrics), the same channel the
// cancellation contract already uses, so every *Ctx entry point of the
// library — dse.SweepCtx, aps.RunCtx, sim.RunCtx, core.OptimizeCtx — can
// pick them up without new parameters. Long-lived components (the
// evaluation engine) additionally accept them at construction so
// per-request context lookups never appear on their hot path.
//
// # Naming scheme (see DESIGN.md §9)
//
// Metrics are snake_case, prefixed with the owning subsystem and
// suffixed with the unit or _total for monotone counters
// (engine_cache_hits_total, engine_eval_seconds, sim_steps_total).
// Span names are dot-separated subsystem.operation pairs
// (engine.eval, dse.sweep, aps.grid-snap, sim.run).
package obs

import "context"

type tracerKey struct{}

type metricsKey struct{}

// ContextWithTracer returns a context carrying t. A nil tracer leaves
// ctx unchanged, so callers can thread an optional tracer without
// branching.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer carried by ctx, or nil (a valid no-op
// tracer) when none is attached.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// ContextWithMetrics returns a context carrying r. A nil registry leaves
// ctx unchanged.
func ContextWithMetrics(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, metricsKey{}, r)
}

// MetricsFrom returns the registry carried by ctx, or nil (a valid
// no-op registry) when none is attached.
func MetricsFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(metricsKey{}).(*Registry)
	return r
}

// CurrentSpan returns the innermost span started on ctx, or nil outside
// any span.
func CurrentSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
