package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric instruments. Instrument lookup
// (Counter/Gauge/Histogram) takes a mutex and may allocate, so callers
// resolve their instruments once at setup; the instruments themselves
// are single atomic words (or a fixed bucket array) and their update
// methods never allocate. A nil *Registry is a valid disabled registry:
// every lookup returns nil, and nil instruments are no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the monotone counter registered under name, creating
// it on first use. Nil receiver returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil receiver returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given ascending upper bounds on first use (later calls reuse
// the existing instrument and ignore bounds). Nil receiver returns a nil
// (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotone uint64 counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable signed instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta. No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Set pins the gauge to v. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current gauge reading (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed cumulative-style buckets
// (bounds are inclusive upper edges; one implicit +Inf bucket catches
// the rest) and tracks the running sum and count. Observe is
// allocation-free: a binary search over the bounds plus three atomic
// updates.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; counts[len(bounds)] is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // IEEE-754 bits, updated by CAS
}

// Observe records one sample. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveN records n samples of value v in one shot: one bucket add,
// one count add, one sum CAS. It is how batched producers (the engine's
// chunked evaluation path) keep "one observation per unit of work"
// semantics without n atomic round-trips. No-op on nil or n == 0.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the bucket upper bounds and their (non-cumulative)
// counts; the final count belongs to the implicit +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	if h == nil {
		return nil, nil
	}
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return append([]float64(nil), h.bounds...), counts
}

// Labeled builds a metric name carrying one label in Prometheus text
// syntax: Labeled("tenant_requests_total", "tenant", "alice") is
// `tenant_requests_total{tenant="alice"}`. The registry treats the whole
// string as the instrument's identity — one instrument per (name, label
// value) pair — and WriteText understands the shape, splicing histogram
// suffixes inside the braces so the exposition stays well-formed. The
// value is quoted with strconv, so arbitrary strings are safe.
func Labeled(name, key, value string) string {
	return name + "{" + key + "=" + strconv.Quote(value) + "}"
}

// splitLabels separates a (possibly Labeled) metric name into its base
// name and the raw label list between the braces ("" when unlabeled).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// LatencyBuckets returns the default exponential latency bounds in
// seconds (1µs … ~16s, doubling), suitable for evaluation and
// simulation timings.
func LatencyBuckets() []float64 {
	bounds := make([]float64, 0, 25)
	for v := 1e-6; v < 20; v *= 2 {
		bounds = append(bounds, v)
	}
	return bounds
}

// WriteText renders a snapshot of every instrument in a Prometheus-like
// text exposition, sorted by metric name: counters and gauges as
// `name value` lines, histograms as cumulative `name_bucket{le="…"}`
// lines plus `name_sum` and `name_count`.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+8*len(r.histograms))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		// A Labeled histogram name keeps its labels inside the braces of
		// every derived series, so `h{tenant="a"}` renders as
		// `h_bucket{tenant="a",le="…"}`, `h_sum{tenant="a"}`, ….
		base, labels := splitLabels(name)
		sep := ""
		if labels != "" {
			sep = labels + ","
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		bounds, counts := h.Buckets()
		cum := uint64(0)
		for i, b := range bounds {
			cum += counts[i]
			lines = append(lines, fmt.Sprintf("%s_bucket{%sle=%q} %d", base, sep, formatBound(b), cum))
		}
		cum += counts[len(bounds)]
		lines = append(lines, fmt.Sprintf("%s_bucket{%sle=\"+Inf\"} %d", base, sep, cum))
		lines = append(lines, fmt.Sprintf("%s_sum%s %v", base, suffix, h.Sum()))
		lines = append(lines, fmt.Sprintf("%s_count%s %d", base, suffix, h.Count()))
	}
	r.mu.Unlock()
	sort.Strings(lines)
	if _, err := io.WriteString(w, strings.Join(lines, "\n")+"\n"); err != nil {
		return fmt.Errorf("obs: writing metrics snapshot: %w", err)
	}
	return nil
}

// formatBound renders a bucket edge compactly ("0.001", not
// "0.001000").
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
