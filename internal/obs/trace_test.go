package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestSpanHierarchy(t *testing.T) {
	tr := NewTracer(64)
	ctx := context.Background()
	ctx, root := tr.Start(ctx, "root", S("k", "v"))
	cctx, child := tr.Start(ctx, "child")
	_, grand := tr.Start(cctx, "grandchild")
	grand.Finish()
	child.Finish()
	root.Annotate(I("n", 3))
	root.Finish()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, g := byName["root"], byName["child"], byName["grandchild"]
	if r.Parent != 0 || r.Root != r.ID {
		t.Fatalf("root span parentage: %+v", r)
	}
	if c.Parent != r.ID || c.Root != r.ID {
		t.Fatalf("child span parentage: %+v", c)
	}
	if g.Parent != c.ID || g.Root != r.ID {
		t.Fatalf("grandchild span parentage: %+v", g)
	}
	if r.End < r.Start || c.Start < r.Start {
		t.Fatalf("span timing inverted: root %v..%v child %v..%v", r.Start, r.End, c.Start, c.End)
	}
	if len(r.Attrs) != 2 {
		t.Fatalf("root attrs = %v, want initial + annotated", r.Attrs)
	}
}

func TestCurrentSpan(t *testing.T) {
	tr := NewTracer(8)
	ctx := context.Background()
	if CurrentSpan(ctx) != nil {
		t.Fatal("span on empty context")
	}
	ctx, sp := tr.Start(ctx, "op")
	if CurrentSpan(ctx) != sp {
		t.Fatal("CurrentSpan does not see the started span")
	}
	sp.Finish()
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	ctx2, sp := tr.Start(ctx, "ignored", S("a", "b"))
	if ctx2 != ctx {
		t.Fatal("nil tracer altered the context")
	}
	sp.Annotate(I("n", 1)) // must not panic
	sp.Finish()
	if tr.Len() != 0 || tr.Recorded() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot non-nil")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
}

func TestUnfinishedSpanNotRecorded(t *testing.T) {
	tr := NewTracer(8)
	_, sp := tr.Start(context.Background(), "open")
	if tr.Len() != 0 {
		t.Fatal("unfinished span recorded")
	}
	sp.Finish()
	sp.Finish() // second finish must not double-record
	if tr.Len() != 1 || tr.Recorded() != 1 {
		t.Fatalf("len=%d recorded=%d after double finish", tr.Len(), tr.Recorded())
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, sp := tr.Start(context.Background(), "s")
		sp.Finish()
	}
	if tr.Recorded() != 10 {
		t.Fatalf("recorded = %d", tr.Recorded())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want ring capacity 4", tr.Len())
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot holds %d spans", len(spans))
	}
	for _, s := range spans {
		if s.ID <= 6 {
			t.Fatalf("snapshot kept overwritten span %d", s.ID)
		}
	}
}

func TestChromeTraceLoadable(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.Start(context.Background(), "outer", I("points", 12))
	_, inner := tr.Start(ctx, "inner", F("score", 1.5))
	inner.Finish()
	root.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Tid  uint64                 `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not load: %v", err)
	}
	if len(doc.TraceEvents) != 2 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("trace doc %+v", doc)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 0 || ev.Pid != 1 || ev.Tid == 0 {
			t.Fatalf("malformed event %+v", ev)
		}
	}
	if doc.TraceEvents[0].Name != "outer" || doc.TraceEvents[1].Args["parent"] == nil {
		t.Fatalf("ordering/hierarchy lost: %+v", doc.TraceEvents)
	}
	if doc.TraceEvents[0].Args["points"] != float64(12) {
		t.Fatalf("attr lost: %v", doc.TraceEvents[0].Args)
	}
}
