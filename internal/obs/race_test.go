package obs

import (
	"bytes"
	"context"
	"sync"
	"testing"
)

// TestTracerConcurrent hammers the span ring from many goroutines while
// snapshots and exports run concurrently; run under -race this proves
// the publish-on-Finish protocol is sound.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perWorker; i++ {
				c, outer := tr.Start(ctx, "outer", I("worker", int64(w)))
				_, inner := tr.Start(c, "inner")
				inner.Annotate(I("i", int64(i)))
				inner.Finish()
				outer.Finish()
			}
		}(w)
	}
	// Concurrent readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Snapshot()
			var buf bytes.Buffer
			if err := tr.WriteChromeTrace(&buf); err != nil {
				t.Errorf("concurrent export: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	want := uint64(workers * perWorker * 2)
	if tr.Recorded() != want {
		t.Fatalf("recorded %d spans, want %d", tr.Recorded(), want)
	}
	if tr.Dropped() != want-128 {
		t.Fatalf("dropped %d, want %d", tr.Dropped(), want-128)
	}
	if tr.Len() != 128 {
		t.Fatalf("ring holds %d", tr.Len())
	}
}

// TestRegistryConcurrent updates every instrument kind from many
// goroutines while WriteText snapshots run.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops_total")
			g := r.Gauge("inflight")
			h := r.Histogram("lat_seconds", LatencyBuckets())
			for i := 0; i < per; i++ {
				c.Add(1)
				g.Add(1)
				h.Observe(float64(i) * 1e-6)
				g.Add(-1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Errorf("concurrent WriteText: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := r.Counter("ops_total").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	h := r.Histogram("lat_seconds", nil)
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d", h.Count())
	}
	_, counts := h.Buckets()
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	if sum != workers*per {
		t.Fatalf("bucket totals %d != count %d", sum, workers*per)
	}
}
