package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// stop function the caller must invoke (typically deferred) to flush
// and close the file. Used by the CLIs' -cpuprofile flag.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile output: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: starting cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: closing cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile writes a garbage-collected heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile output: %w", err)
	}
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: closing heap profile: %w", err)
	}
	return nil
}
