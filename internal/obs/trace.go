package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultSpanCapacity is the ring-buffer size NewTracer selects for
// capacity ≤ 0: 64Ki finished spans (~6 MB of records) before the oldest
// are overwritten.
const DefaultSpanCapacity = 1 << 16

// Attr is one key/value annotation on a span. Values are rendered into
// the Chrome trace's args object, so any JSON-marshalable value works;
// the S/I/F constructors cover the common cases.
type Attr struct {
	Key   string
	Value interface{}
}

// S builds a string attribute.
func S(key, value string) Attr { return Attr{Key: key, Value: value} }

// I builds an integer attribute.
func I(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// F builds a float attribute.
func F(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Span is one timed, named, attributed interval. Spans form a hierarchy
// through the context: a span started from a context that already
// carries one records that span as its parent, and every span knows the
// root of its chain (the Chrome export lays spans out one root per
// track, so concurrent operations get separate rows).
type Span struct {
	// ID is the tracer-unique span identity (1-based).
	ID uint64
	// Parent is the enclosing span's ID, 0 for a root span.
	Parent uint64
	// Root is the ID of the outermost ancestor (the span's own ID for a
	// root span).
	Root uint64
	// Name is the dot-separated subsystem.operation label.
	Name string
	// Start and End are offsets from the tracer's epoch. End is zero
	// until Finish.
	Start time.Duration
	End   time.Duration
	// Attrs are the span's annotations.
	Attrs []Attr

	tr *Tracer // publication target; nil after Finish (and for no-op spans)
}

type spanKey struct{}

// Tracer records finished spans into a fixed-capacity lock-free ring
// buffer: Finish claims a slot with one atomic add and publishes the
// complete record with one atomic pointer store, so tracing never blocks
// the traced code and a full ring overwrites the oldest spans instead of
// growing. A nil *Tracer is a valid disabled tracer: Start returns the
// context unchanged and a nil span whose methods are no-ops.
type Tracer struct {
	epoch time.Time
	ids   atomic.Uint64
	pos   atomic.Uint64
	mask  uint64
	slots []atomic.Pointer[Span]
}

// NewTracer builds a tracer with the given ring capacity, rounded up to
// a power of two (capacity ≤ 0 selects DefaultSpanCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{
		epoch: time.Now(),
		mask:  uint64(n - 1),
		slots: make([]atomic.Pointer[Span], n),
	}
}

// Start begins a span named name and returns a derived context carrying
// it (so child spans and the Chrome export see the hierarchy) together
// with the span itself. The caller must call Finish exactly once; only
// finished spans are recorded. On a nil tracer Start costs one branch
// and returns (ctx, nil).
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := &Span{
		ID:    t.ids.Add(1),
		Name:  name,
		Start: time.Since(t.epoch),
		Attrs: attrs,
		tr:    t,
	}
	if parent, _ := ctx.Value(spanKey{}).(*Span); parent != nil {
		sp.Parent = parent.ID
		sp.Root = parent.Root
	} else {
		sp.Root = sp.ID
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// Annotate appends attributes to an unfinished span. No-op on nil and
// on already-finished spans (a finished span is published and must not
// be mutated).
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil || s.tr == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Finish stamps the end time and publishes the span into the tracer's
// ring. Safe to call on a nil span; a second Finish is a no-op.
func (s *Span) Finish() {
	if s == nil || s.tr == nil {
		return
	}
	t := s.tr
	s.End = time.Since(t.epoch)
	s.tr = nil // all writes complete before the atomic publication below
	idx := t.pos.Add(1) - 1
	t.slots[idx&t.mask].Store(s)
}

// Recorded returns the total number of spans finished on this tracer,
// including any the ring has since overwritten.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.pos.Load()
}

// Dropped returns how many finished spans were overwritten because the
// ring wrapped.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	n := t.pos.Load()
	if capacity := t.mask + 1; n > capacity {
		return n - capacity
	}
	return 0
}

// Len returns the number of spans currently held in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := t.pos.Load()
	if capacity := t.mask + 1; n > capacity {
		n = capacity
	}
	return int(n)
}

// Snapshot copies the retained spans out of the ring, ordered by start
// time (ties by ID). It is safe to call concurrently with Start/Finish;
// spans finishing during the copy may or may not be included.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		if sp := t.slots[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// chromeEvent is one trace_event record (the "X" complete-event form).
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`  // microseconds since epoch
	Dur  float64                `json:"dur"` // microseconds
	Pid  int                    `json:"pid"`
	Tid  uint64                 `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container chrome://tracing and
// Perfetto load directly.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the retained spans as Chrome trace_event JSON
// ("X" complete events; each root span chain gets its own track id, so
// concurrent operations appear as separate rows with their children
// nested by time).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Snapshot()
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		args := map[string]interface{}{"id": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			Pid:  1,
			Tid:  s.Root,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: encoding chrome trace: %w", err)
	}
	return nil
}

// WriteChromeTraceFile writes the Chrome trace JSON to path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace output: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: closing trace output: %w", err)
	}
	return nil
}
