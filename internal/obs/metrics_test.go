package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Add(3)
	c.Add(2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("x_total") != c {
		t.Fatal("counter lookup not idempotent")
	}
	g := r.Gauge("inflight")
	g.Add(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge after Set = %d", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 105.65 {
		t.Fatalf("sum = %v", got)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets %v %v", bounds, counts)
	}
	// SearchFloat64s: values equal to an edge land in the next bucket's
	// half-open interval except exact-match returns the edge index.
	want := []uint64{2, 1, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket counts = %v, want %v", counts, want)
		}
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	c.Add(1)
	if c.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	g := r.Gauge("b")
	g.Add(1)
	g.Set(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge moved")
	}
	h := r.Histogram("c", LatencyBuckets())
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed")
	}
	if b, ct := h.Buckets(); b != nil || ct != nil {
		t.Fatal("nil histogram buckets non-nil")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteText: %v %q", err, buf.String())
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_requests_total").Add(12)
	r.Gauge("engine_inflight").Set(2)
	h := r.Histogram("eval_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"engine_requests_total 12",
		"engine_inflight 2",
		`eval_seconds_bucket{le="0.001"} 1`,
		`eval_seconds_bucket{le="0.01"} 1`,
		`eval_seconds_bucket{le="+Inf"} 2`,
		"eval_seconds_sum 0.5005",
		"eval_seconds_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !sortedLines(lines) {
		t.Fatalf("exposition not sorted:\n%s", out)
	}
}

func sortedLines(lines []string) bool {
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			return false
		}
	}
	return true
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TracerFrom(ctx) != nil || MetricsFrom(ctx) != nil {
		t.Fatal("empty context carries observability")
	}
	if ContextWithTracer(ctx, nil) != ctx || ContextWithMetrics(ctx, nil) != ctx {
		t.Fatal("nil attach changed the context")
	}
	tr, reg := NewTracer(8), NewRegistry()
	ctx = ContextWithTracer(ctx, tr)
	ctx = ContextWithMetrics(ctx, reg)
	if TracerFrom(ctx) != tr || MetricsFrom(ctx) != reg {
		t.Fatal("round-trip lost the instruments")
	}
}
