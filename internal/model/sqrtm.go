package model

import (
	"fmt"
	"math"

	"repro/internal/chip"
	"repro/internal/core"
)

// FamilySqrtM is the catalog name of Ginosar's √m area-speedup law.
const FamilySqrtM = "sqrtm"

func init() {
	mustRegister(Family{
		Name: FamilySqrtM,
		Doc:  "Ginosar's √m law: splitting the usable area into m cores speeds the parallel phase √m and slows the serial phase √m",
		New: func(cfg Config) (Model, error) {
			if err := cfg.App.Validate(); err != nil {
				return nil, err
			}
			if cfg.Chip.Pollack.K0 <= 0 {
				return nil, fmt.Errorf("model: sqrtm: Pollack K0 must be positive, got %v", cfg.Chip.Pollack.K0)
			}
			if cfg.Chip.TotalArea-cfg.Chip.FixedArea <= 0 {
				return nil, fmt.Errorf("model: sqrtm: no usable area (total %v, fixed %v)", cfg.Chip.TotalArea, cfg.Chip.FixedArea)
			}
			return &SqrtM{Chip: cfg.Chip, App: cfg.App}, nil
		},
	})
}

// SqrtM is Ginosar's single-dimension area-speedup law: with the whole
// usable area A spent either on one big core or split evenly into m
// small ones, Pollack's rule (perf ∝ √area) makes the m-core machine
// √m faster on the parallel phase and √m slower on the serial phase
// than the monolithic core,
//
//	T(m) = IC0 · CPIExe(A) · ( fseq·√m + (1−fseq)/√m )
//
// normalizing so m=1 is the monolithic baseline. Its optimum
// m* = ((1−fseq)/fseq) is a pure function of the sequential fraction —
// the sharpest possible contrast with C²-Bound, which moves the optimum
// with capacity as well as concurrency.
type SqrtM struct {
	Chip chip.Config
	App  core.App
}

// Fingerprint implements Model.
func (m *SqrtM) Fingerprint() string {
	return fmt.Sprintf("%stotal=%x fixed=%x k0=%x phi0=%x fseq=%x ic0=%x",
		FingerprintPrefix(FamilySqrtM),
		math.Float64bits(m.Chip.TotalArea), math.Float64bits(m.Chip.FixedArea),
		math.Float64bits(m.Chip.Pollack.K0), math.Float64bits(m.Chip.Pollack.Phi0),
		math.Float64bits(m.App.Fseq), math.Float64bits(m.App.IC0))
}

// Space implements Model: the single core-count dimension m.
func (m *SqrtM) Space() Space {
	return Space{Params: []Param{
		{Name: "M", Lo: 1, Hi: 1e6, Grid: []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}},
	}}
}

// smFolded carries the point-independent subexpressions shared by the
// direct and compiled paths.
type smFolded struct {
	base float64 // IC0 · CPIExe(usable area)
	fseq float64
	fpar float64 // 1−fseq
	ic0  float64
}

// fold computes the shared constants; both paths dispatch through it.
func (m *SqrtM) fold() smFolded {
	usable := m.Chip.TotalArea - m.Chip.FixedArea
	return smFolded{
		base: m.App.IC0 * m.Chip.Pollack.CPIExe(usable),
		fseq: m.App.Fseq,
		fpar: 1 - m.App.Fseq,
		ic0:  m.App.IC0,
	}
}

// eval is the single evaluation routine both paths dispatch to.
func (f smFolded) eval(point []float64) (t, w float64, ok bool) {
	if len(point) != 1 {
		return 0, 0, false
	}
	mm := float64(int(point[0] + 0.5))
	if mm < 1 {
		return 0, 0, false
	}
	s := math.Sqrt(mm)
	t = f.base * (f.fseq*s + f.fpar/s)
	return t, f.ic0, true
}

// DirectTimeWorkAt implements Direct.
func (m *SqrtM) DirectTimeWorkAt(point []float64) (t, w float64, ok bool) {
	return m.fold().eval(point)
}

// Compile implements Model.
func (m *SqrtM) Compile() (Kernel, error) {
	if m.App.IC0 <= 0 {
		return nil, fmt.Errorf("model: sqrtm: IC0 must be positive, got %v", m.App.IC0)
	}
	return smKernel{f: m.fold()}, nil
}

// smKernel is the compiled √m kernel.
type smKernel struct {
	f smFolded
}

// TimeAt implements Kernel.
func (k smKernel) TimeAt(point []float64) float64 {
	t, _, ok := k.f.eval(point)
	if !ok {
		return math.Inf(1)
	}
	return t
}

// TimeWorkAt implements Kernel.
func (k smKernel) TimeWorkAt(point []float64) (t, w float64, ok bool) {
	return k.f.eval(point)
}
