package model

import (
	"math"
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
)

func testConfig() Config {
	return Config{Chip: chip.DefaultConfig(), App: core.TMMApp()}
}

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{FamilyC2Bound, FamilyCommSync, FamilyGPU, FamilySqrtM} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("family %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestRegistryValidation(t *testing.T) {
	if _, err := New("nope", testConfig()); err == nil {
		t.Fatal("unknown family accepted")
	}
	cfg := testConfig()
	cfg.Params = map[string]float64{"m_fma": 1.5}
	if _, err := New(FamilyGPU, cfg); err == nil {
		t.Fatal("out-of-domain family parameter accepted")
	}
	cfg.Params = map[string]float64{"bogus": 0.5}
	if _, err := New(FamilyGPU, cfg); err == nil {
		t.Fatal("unknown family parameter accepted")
	}
	cfg.Params = map[string]float64{"m_fma": math.NaN()}
	if _, err := New(FamilyGPU, cfg); err == nil {
		t.Fatal("NaN family parameter accepted")
	}
	if err := Register(Family{Name: FamilyGPU, New: func(Config) (Model, error) { return nil, nil }}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register(Family{Name: "x"}); err == nil {
		t.Fatal("nil constructor accepted")
	}
	if err := Register(Family{
		Name:   "x",
		New:    func(Config) (Model, error) { return nil, nil },
		Params: []FamilyParam{{Name: "p", Lo: 0, Hi: 1, Default: 2}},
	}); err == nil {
		t.Fatal("default outside domain accepted")
	}
}

func TestRegistryDefaults(t *testing.T) {
	m, err := New(FamilyGPU, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := m.(*GPU)
	if g.MFMA != 0.5 || g.FFP32 != 0.3 || g.LaneArea != 0.05 || g.SMArea != 2 {
		t.Fatalf("defaults not applied: %+v", g)
	}
}

func TestFingerprintNamespacing(t *testing.T) {
	cfg := testConfig()
	for _, name := range Names() {
		m, err := New(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prefix := FingerprintPrefix(name)
		if !strings.HasPrefix(m.Fingerprint(), prefix) {
			t.Fatalf("%s fingerprint %q lacks prefix %q", name, m.Fingerprint(), prefix)
		}
		// No other family's prefix may match either.
		for _, other := range Names() {
			if other != name && strings.HasPrefix(m.Fingerprint(), FingerprintPrefix(other)) {
				t.Fatalf("%s fingerprint carries %s's prefix", name, other)
			}
		}
	}
	// The registry enforces the namespace on foreign constructors too.
	if err := Register(Family{Name: "badfp", New: func(cfg Config) (Model, error) {
		m, err := New(FamilyGPU, cfg)
		return m, err
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := New("badfp", cfg); err == nil || !strings.Contains(err.Error(), "namespace") {
		t.Fatalf("foreign fingerprint accepted: %v", err)
	}
}

// guardCrossingGrid builds the differential-test point set for a family:
// the full cartesian product of its declared grids extended with
// out-of-domain and boundary extras per dimension, so the set crosses
// every feasibility guard (area limits, positivity, unit intervals).
func guardCrossingGrid(s Space) [][]float64 {
	dims := make([][]float64, len(s.Params))
	for i, p := range s.Params {
		vals := append([]float64(nil), p.Grid...)
		vals = append(vals, p.Lo, p.Hi, p.Lo-1, p.Hi*2, 0, -1)
		dims[i] = vals
	}
	var points [][]float64
	var rec func(i int, acc []float64)
	rec = func(i int, acc []float64) {
		if i == len(dims) {
			points = append(points, append([]float64(nil), acc...))
			return
		}
		for _, v := range dims[i] {
			rec(i+1, append(acc, v))
		}
	}
	rec(0, nil)
	return points
}

// TestCompiledMatchesDirectBitIdentical is the per-family differential
// suite: the compiled kernel must produce bit-identical results to the
// family's direct evaluation over a guard-crossing grid (the family
// contract every consumer relies on).
func TestCompiledMatchesDirectBitIdentical(t *testing.T) {
	cfg := testConfig()
	for _, name := range []string{FamilyC2Bound, FamilyCommSync, FamilyGPU, FamilySqrtM} {
		t.Run(name, func(t *testing.T) {
			m, err := New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			direct, ok := m.(Direct)
			if !ok {
				t.Fatalf("family %s does not implement Direct", name)
			}
			k, err := m.Compile()
			if err != nil {
				t.Fatal(err)
			}
			var points [][]float64
			if name == FamilyC2Bound {
				// Six extended dims would be a ~16.7M-point cartesian
				// product; stride-sample it deterministically instead.
				points = guardCrossingGridSampled(m.Space(), 4000)
			} else {
				points = guardCrossingGrid(m.Space())
			}
			feasible, infeasible := 0, 0
			for _, p := range points {
				dt, dw, dok := direct.DirectTimeWorkAt(p)
				kt, kw, kok := k.TimeWorkAt(p)
				if dok != kok {
					t.Fatalf("%s: feasibility diverges at %v: direct=%v kernel=%v", name, p, dok, kok)
				}
				if !dok {
					infeasible++
					if !math.IsInf(k.TimeAt(p), 1) {
						t.Fatalf("%s: TimeAt at infeasible %v = %v, want +Inf", name, p, k.TimeAt(p))
					}
					continue
				}
				feasible++
				if math.Float64bits(dt) != math.Float64bits(kt) {
					t.Fatalf("%s: time diverges at %v: direct=%x kernel=%x", name, p, math.Float64bits(dt), math.Float64bits(kt))
				}
				if math.Float64bits(dw) != math.Float64bits(kw) {
					t.Fatalf("%s: work diverges at %v: direct=%x kernel=%x", name, p, math.Float64bits(dw), math.Float64bits(kw))
				}
				if math.Float64bits(k.TimeAt(p)) != math.Float64bits(kt) {
					t.Fatalf("%s: TimeAt and TimeWorkAt disagree at %v", name, p)
				}
			}
			if feasible == 0 {
				t.Fatalf("%s: guard-crossing grid hit no feasible points", name)
			}
			if infeasible == 0 {
				t.Fatalf("%s: guard-crossing grid crossed no guards", name)
			}
		})
	}
}

// guardCrossingGridSampled walks the same extended grids as
// guardCrossingGrid but takes a deterministic stride so at most maxN
// points come back (needed for the six-dimensional c2bound family).
func guardCrossingGridSampled(s Space, maxN int) [][]float64 {
	dims := make([][]float64, len(s.Params))
	total := 1
	for i, p := range s.Params {
		vals := append([]float64(nil), p.Grid...)
		vals = append(vals, p.Lo, p.Hi, p.Lo-1, p.Hi*2, 0, -1)
		dims[i] = vals
		total *= len(vals)
	}
	stride := total/maxN + 1
	points := make([][]float64, 0, maxN)
	for idx := 0; idx < total; idx += stride {
		rem := idx
		p := make([]float64, len(dims))
		for i := len(dims) - 1; i >= 0; i-- {
			p[i] = dims[i][rem%len(dims[i])]
			rem /= len(dims[i])
		}
		points = append(points, p)
	}
	return points
}

func TestSpaceCheckAndGrids(t *testing.T) {
	m, err := New(FamilyGPU, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := m.Space()
	if err := s.Check([]float64{1, 32, 0.5}); err != nil {
		t.Fatalf("in-domain point rejected: %v", err)
	}
	if err := s.Check([]float64{1, 32}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if err := s.Check([]float64{1, 32, 1.5}); err == nil {
		t.Fatal("out-of-domain point accepted")
	}
	full, err := s.Grids(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range full {
		if len(g) != len(s.Params[i].Grid) {
			t.Fatalf("full grid truncated: dim %d has %d values, want %d", i, len(g), len(s.Params[i].Grid))
		}
	}
	sub, err := s.Grids(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range sub {
		if len(g) != 3 {
			t.Fatalf("dim %d: %d values, want 3", i, len(g))
		}
		if g[len(g)-1] != s.Params[i].Grid[len(s.Params[i].Grid)-1] {
			t.Fatalf("dim %d: subsample dropped the largest value", i)
		}
	}
}

func TestSqrtMOptimum(t *testing.T) {
	// Ginosar's law: the best m trades fseq·√m against (1−fseq)/√m, so
	// the continuous optimum is m* = (1−fseq)/fseq. With the grid in
	// powers of two the chosen m must bracket it.
	cfg := testConfig()
	m, err := New(FamilySqrtM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	fseq := cfg.App.Fseq
	mStar := (1 - fseq) / fseq
	bestM, bestT := 0.0, math.Inf(1)
	for _, mv := range m.Space().Params[0].Grid {
		if tv := k.TimeAt([]float64{mv}); tv < bestT {
			bestT, bestM = tv, mv
		}
	}
	if bestM < mStar/2 || bestM > mStar*2 {
		t.Fatalf("grid optimum m=%v too far from m*=%v", bestM, mStar)
	}
}

func TestGPUThroughputMonotonicInTheta(t *testing.T) {
	m, err := New(FamilyGPU, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	k, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, theta := range []float64{0.25, 0.5, 0.75, 1} {
		tv := k.TimeAt([]float64{8, 64, theta})
		if math.IsInf(tv, 1) {
			t.Fatalf("feasible point scored +Inf at theta=%v", theta)
		}
		if tv > prev {
			t.Fatalf("time not monotone in occupancy: t(%v)=%v > %v", theta, tv, prev)
		}
		prev = tv
	}
}

func TestCommSyncPenaltiesBite(t *testing.T) {
	// With a large sync penalty the optimum core count must shrink
	// relative to the penalty-free extension (pure Amdahl on the grid).
	cfg := testConfig()
	cfg.App.Fseq = 0.05
	cfg.Params = map[string]float64{"delta_sync": 0.05, "delta_comm": 0}
	heavy, err := New(FamilyCommSync, cfg)
	if err != nil {
		t.Fatal(err)
	}
	free := testConfig()
	free.App.Fseq = 0.05
	free.Params = map[string]float64{"delta_sync": 0, "delta_comm": 0}
	light, err := New(FamilyCommSync, free)
	if err != nil {
		t.Fatal(err)
	}
	bestN := func(m Model) float64 {
		k, err := m.Compile()
		if err != nil {
			t.Fatal(err)
		}
		s := m.Space()
		a0 := s.Params[0].Grid[len(s.Params[0].Grid)/2]
		best, bestT := 0.0, math.Inf(1)
		for _, n := range s.Params[1].Grid {
			if tv := k.TimeAt([]float64{a0, n}); tv < bestT {
				bestT, best = tv, n
			}
		}
		return best
	}
	if hn, ln := bestN(heavy), bestN(light); hn >= ln {
		t.Fatalf("sync penalty did not shrink the optimum: heavy N=%v, free N=%v", hn, ln)
	}
}
