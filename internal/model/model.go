// Package model defines the model-family contract behind every analytic
// objective in the repository and the registry that makes families
// pluggable end to end (engine memoization, DSE sweeps, APS, the HTTP
// catalog, the façade and the figures all dispatch through it).
//
// A family is anything satisfying Model:
//
//   - Fingerprint() is the canonical identity used as the engine's memo
//     key. Fingerprints are namespaced per family ("model/<family>:…",
//     see FingerprintPrefix), so two families can never share cache
//     entries even when their parameter points coincide.
//   - Space() declares the design-space dimensions: names, documented
//     domains and a default sweep grid.
//   - Compile() folds every point-independent subexpression once and
//     returns the Kernel the engine's batched path drives.
//
// The bit-exactness contract of core.Compiled extends to every family:
// a compiled Kernel must perform exactly the same floating-point
// operations, in the same order, as the family's direct (uncompiled)
// evaluation — constants may be folded only when folding repeats the
// identical operation on identical inputs. Families implement Direct so
// the differential tests can enforce this over guard-crossing grids.
package model

import (
	"fmt"
	"math"
)

// Model is the family contract: an analytic objective the whole stack
// — engine, sweep, APS, server catalog, figures — can evaluate without
// knowing which family it belongs to. Implementations must be safe for
// concurrent use.
type Model interface {
	// Fingerprint returns the canonical, family-qualified identity of
	// the model ("model/<family>:…"). It must cover every parameter the
	// objective reads, because it keys the engine's memo cache.
	Fingerprint() string
	// Space declares the model's design-space dimensions in point
	// order: names, inclusive domains and the default sweep grid.
	Space() Space
	// Compile folds the point-independent subexpressions and returns
	// the batched evaluation kernel, bit-identical to the direct path.
	Compile() (Kernel, error)
}

// Kernel is a compiled model: the allocation-free per-point evaluation
// the engine's batched dispatch drives. Implementations must be safe
// for concurrent use.
//
// Out-of-domain or infeasible points are values, not errors: TimeAt
// returns +Inf and TimeWorkAt reports ok=false, so optimizers can treat
// feasibility as a penalty.
type Kernel interface {
	// TimeAt returns the family objective (execution time; lower is
	// better) at a design point, +Inf for infeasible points.
	TimeAt(point []float64) float64
	// TimeWorkAt returns the execution time and the (possibly scaled)
	// work of the point, ok=false for infeasible points — the pair
	// throughput-style metrics (time per work) are built from.
	TimeWorkAt(point []float64) (t, w float64, ok bool)
}

// Direct is the optional uncompiled reference evaluation of a family.
// Every in-repository family implements it; the differential suite
// compares it bit-for-bit against the compiled Kernel.
type Direct interface {
	// DirectTimeWorkAt evaluates the point without any compile-time
	// folding, bit-identical to the Kernel by the family contract.
	DirectTimeWorkAt(point []float64) (t, w float64, ok bool)
}

// Param is one design-space dimension: its name, the documented
// inclusive domain, and the default sweep grid (ascending, within the
// domain).
type Param struct {
	Name   string
	Lo, Hi float64
	Grid   []float64
}

// Space is a model's design space declaration, in point order.
type Space struct {
	Params []Param
}

// Dims returns the number of dimensions.
func (s Space) Dims() int { return len(s.Params) }

// Names returns the dimension names in point order.
func (s Space) Names() []string {
	names := make([]string, len(s.Params))
	for i, p := range s.Params {
		names[i] = p.Name
	}
	return names
}

// Check validates a point against the space: the dimension count must
// match and every coordinate must be finite and inside its documented
// domain.
func (s Space) Check(point []float64) error {
	if len(point) != len(s.Params) {
		return fmt.Errorf("model: point has %d dims, want %d (%v)", len(point), len(s.Params), s.Names())
	}
	for i, p := range s.Params {
		v := point[i]
		if math.IsNaN(v) || v < p.Lo || v > p.Hi {
			return fmt.Errorf("model: %s=%v outside [%g, %g]", p.Name, v, p.Lo, p.Hi)
		}
	}
	return nil
}

// Grids returns the per-dimension sweep grids, subsampled to at most
// `per` values per dimension (per ≤ 0 keeps the full default grids).
// Subsampling spreads selections across each grid and always keeps the
// largest value, mirroring dse.ReducedSpace so a family-generic caller
// and the paper-space helpers agree on the same grids.
func (s Space) Grids(per int) ([][]float64, error) {
	grids := make([][]float64, len(s.Params))
	for i, p := range s.Params {
		if len(p.Grid) == 0 {
			return nil, fmt.Errorf("model: dimension %s has no default grid", p.Name)
		}
		if per <= 0 || per >= len(p.Grid) {
			grids[i] = append([]float64(nil), p.Grid...)
			continue
		}
		vals := make([]float64, per)
		for j := 0; j < per; j++ {
			k := (j + 1) * len(p.Grid) / per
			vals[j] = p.Grid[k-1]
		}
		grids[i] = vals
	}
	return grids, nil
}

// FingerprintPrefix returns the namespace prefix every fingerprint of
// the named family must carry. The registry enforces it at
// construction, so cache keys from two families can never collide.
func FingerprintPrefix(family string) string { return "model/" + family + ":" }
