package model

import (
	"fmt"
	"math"

	"repro/internal/chip"
	"repro/internal/core"
)

// FamilyCommSync is the catalog name of the Yavits/Morad/Ginosar
// communication-and-synchronization Amdahl extension.
const FamilyCommSync = "commsync"

func init() {
	mustRegister(Family{
		Name: FamilyCommSync,
		Doc:  "Amdahl's law extended with synchronization (grows with n) and inter-core communication penalties",
		Params: []FamilyParam{
			{Name: "delta_sync", Lo: 0, Hi: 1, Default: 2e-4,
				Doc: "synchronization fraction added to the sequential term per core"},
			{Name: "delta_comm", Lo: 0, Hi: 1, Default: 0.01,
				Doc: "inter-core communication fraction added to the parallel term"},
		},
		New: func(cfg Config) (Model, error) {
			if err := cfg.App.Validate(); err != nil {
				return nil, err
			}
			if cfg.Chip.Pollack.K0 <= 0 {
				return nil, fmt.Errorf("model: commsync: Pollack K0 must be positive, got %v", cfg.Chip.Pollack.K0)
			}
			return &CommSync{
				Chip:      cfg.Chip,
				App:       cfg.App,
				DeltaSync: cfg.Params["delta_sync"],
				DeltaComm: cfg.Params["delta_comm"],
			}, nil
		},
	})
}

// CommSync is the Yavits/Morad/Ginosar extension of Amdahl's law: the
// sequential term inflates with the synchronization cost of keeping n
// cores coherent, and the parallel term carries a per-instruction
// communication surcharge that does not shrink with n,
//
//	T = IC0 · CPIExe(a0) · ( fseq·(1 + δsync·n) + (1−fseq)·(1/n + δcomm) )
//
// over the same per-core area / core count plane as the paper's model
// (CPIExe from Pollack's rule), which is exactly what makes its optimum
// comparable with C²-Bound's.
type CommSync struct {
	Chip chip.Config
	App  core.App

	// DeltaSync is the synchronization fraction added to the sequential
	// term per core.
	DeltaSync float64
	// DeltaComm is the communication fraction added to the parallel term.
	DeltaComm float64
}

// Fingerprint implements Model.
func (m *CommSync) Fingerprint() string {
	return fmt.Sprintf("%stotal=%x fixed=%x k0=%x phi0=%x fseq=%x ic0=%x delta_sync=%x delta_comm=%x",
		FingerprintPrefix(FamilyCommSync),
		math.Float64bits(m.Chip.TotalArea), math.Float64bits(m.Chip.FixedArea),
		math.Float64bits(m.Chip.Pollack.K0), math.Float64bits(m.Chip.Pollack.Phi0),
		math.Float64bits(m.App.Fseq), math.Float64bits(m.App.IC0),
		math.Float64bits(m.DeltaSync), math.Float64bits(m.DeltaComm))
}

// Space implements Model: per-core area A0 and core count N, on the
// same grids as the paper space so cross-model comparisons sample
// identical designs.
func (m *CommSync) Space() Space {
	ns := []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	maxPerCore := (m.Chip.TotalArea - m.Chip.FixedArea) / ns[len(ns)-1]
	a0 := make([]float64, 10)
	for i := range a0 {
		a0[i] = 0.42 * maxPerCore * float64(i+1) / 10
	}
	return Space{Params: []Param{
		{Name: "A0", Lo: 0, Hi: a0[len(a0)-1], Grid: a0},
		{Name: "N", Lo: 1, Hi: ns[len(ns)-1], Grid: ns},
	}}
}

// csFolded carries the point-independent subexpressions shared by the
// direct and compiled paths.
type csFolded struct {
	k0, phi0  float64
	fseq      float64
	fpar      float64 // 1−fseq
	ic0       float64
	sync      float64
	comm      float64
	areaLimit float64
}

// fold computes the shared constants; both paths dispatch through it.
func (m *CommSync) fold() csFolded {
	return csFolded{
		k0:        m.Chip.Pollack.K0,
		phi0:      m.Chip.Pollack.Phi0,
		fseq:      m.App.Fseq,
		fpar:      1 - m.App.Fseq,
		ic0:       m.App.IC0,
		sync:      m.DeltaSync,
		comm:      m.DeltaComm,
		areaLimit: (m.Chip.TotalArea - m.Chip.FixedArea) * (1 + 1e-9),
	}
}

// eval is the single evaluation routine both paths dispatch to.
func (f csFolded) eval(point []float64) (t, w float64, ok bool) {
	if len(point) != 2 {
		return 0, 0, false
	}
	a0 := point[0]
	n := float64(int(point[1] + 0.5))
	if !(a0 > 0) || n < 1 {
		return 0, 0, false
	}
	if n*a0 > f.areaLimit {
		return 0, 0, false
	}
	cpi := f.k0/math.Sqrt(a0) + f.phi0
	t = f.ic0 * cpi * (f.fseq*(1+f.sync*n) + f.fpar*(1/n+f.comm))
	return t, f.ic0, true
}

// DirectTimeWorkAt implements Direct.
func (m *CommSync) DirectTimeWorkAt(point []float64) (t, w float64, ok bool) {
	return m.fold().eval(point)
}

// Compile implements Model.
func (m *CommSync) Compile() (Kernel, error) {
	if m.App.IC0 <= 0 {
		return nil, fmt.Errorf("model: commsync: IC0 must be positive, got %v", m.App.IC0)
	}
	return csKernel{f: m.fold()}, nil
}

// csKernel is the compiled communication-synchronization kernel.
type csKernel struct {
	f csFolded
}

// TimeAt implements Kernel.
func (k csKernel) TimeAt(point []float64) float64 {
	t, _, ok := k.f.eval(point)
	if !ok {
		return math.Inf(1)
	}
	return t
}

// TimeWorkAt implements Kernel.
func (k csKernel) TimeWorkAt(point []float64) (t, w float64, ok bool) {
	return k.f.eval(point)
}
