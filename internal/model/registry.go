package model

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/chip"
	"repro/internal/core"
)

// Config is the family-independent construction input: the chip budget,
// the application profile, and the family-specific parameters (validated
// against the family's documented FamilyParam domains; missing keys take
// the documented defaults).
type Config struct {
	Chip chip.Config
	App  core.App
	// Params carries the family-specific parameters by key (for example
	// the GPU family's FMA ratio). Keys a family does not declare are
	// rejected at construction.
	Params map[string]float64
}

// FamilyParam documents one family-specific configuration parameter:
// its key, inclusive domain, default, and a one-line description. The
// domains mirror what the paramdomain analyzer enforces for in-repo
// constants; request-supplied values are validated here at runtime.
type FamilyParam struct {
	Name    string
	Lo, Hi  float64
	Default float64
	Doc     string
}

// Family describes one registered model family: its catalog name, a
// one-line description, the documented family parameters, and the
// constructor the registry invokes after validating the parameters.
type Family struct {
	Name string
	Doc  string
	// Params declares the family-specific configuration parameters. The
	// registry fills defaults and validates domains before New runs, so
	// constructors see a complete, in-domain parameter map.
	Params []FamilyParam
	// New builds a model from a validated configuration.
	New func(cfg Config) (Model, error)
}

var (
	regMu    sync.RWMutex
	families = map[string]Family{}
)

// Register adds a family to the registry. The name must be non-empty
// and unused; the constructor must be non-nil.
func Register(f Family) error {
	if f.Name == "" {
		return fmt.Errorf("model: family name empty")
	}
	if f.New == nil {
		return fmt.Errorf("model: family %q has no constructor", f.Name)
	}
	for _, p := range f.Params {
		if p.Name == "" || math.IsNaN(p.Lo) || math.IsNaN(p.Hi) || p.Lo > p.Hi {
			return fmt.Errorf("model: family %q parameter %q has an invalid domain [%g, %g]", f.Name, p.Name, p.Lo, p.Hi)
		}
		if math.IsNaN(p.Default) || p.Default < p.Lo || p.Default > p.Hi {
			return fmt.Errorf("model: family %q parameter %q default %v outside [%g, %g]", f.Name, p.Name, p.Default, p.Lo, p.Hi)
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := families[f.Name]; ok {
		return fmt.Errorf("model: family %q already registered", f.Name)
	}
	families[f.Name] = f
	return nil
}

// mustRegister is Register for the built-in families, whose
// registrations cannot collide.
func mustRegister(f Family) {
	if err := Register(f); err != nil {
		//lint:allow errwrap init-time registration of a built-in family; a collision is a programming error, Register is the checked path
		panic(err)
	}
}

// Lookup returns the named family.
func Lookup(name string) (Family, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := families[name]
	return f, ok
}

// Names lists the registered families, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(families))
	//lint:allow detguard key collection feeds the sort below; the returned slice is order-independent of the iteration
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New builds a model of the named family: family parameters are
// defaulted and domain-validated, the constructor runs, and the
// resulting fingerprint is checked for the family's namespace prefix so
// no family can leak into another's cache keys.
func New(name string, cfg Config) (Model, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("model: unknown family %q (have %v)", name, Names())
	}
	params := make(map[string]float64, len(f.Params))
	for _, p := range f.Params {
		params[p.Name] = p.Default
	}
	//lint:allow detguard each key is validated and copied independently; application order cannot change the assembled map
	for key, v := range cfg.Params {
		var decl *FamilyParam
		for i := range f.Params {
			if f.Params[i].Name == key {
				decl = &f.Params[i]
				break
			}
		}
		if decl == nil {
			return nil, fmt.Errorf("model: family %q has no parameter %q (have %v)", name, key, paramNames(f.Params))
		}
		if math.IsNaN(v) || v < decl.Lo || v > decl.Hi {
			return nil, fmt.Errorf("model: %s parameter %s=%v outside [%g, %g]", name, key, v, decl.Lo, decl.Hi)
		}
		params[key] = v
	}
	cfg.Params = params
	m, err := f.New(cfg)
	if err != nil {
		return nil, err
	}
	if prefix := FingerprintPrefix(name); !strings.HasPrefix(m.Fingerprint(), prefix) {
		return nil, fmt.Errorf("model: family %q fingerprint %q lacks the %q namespace", name, m.Fingerprint(), prefix)
	}
	return m, nil
}

// paramNames lists the declared parameter keys in declaration order.
func paramNames(ps []FamilyParam) []string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
