package model

import (
	"fmt"
	"math"

	"repro/internal/chip"
	"repro/internal/core"
)

// FamilyGPU is the catalog name of the CUDA-core throughput bound.
const FamilyGPU = "gpu"

func init() {
	mustRegister(Family{
		Name: FamilyGPU,
		Doc:  "CUDA-core throughput bound Φ = θ·C_fp32·(1+m_FMA)·f_fp32 with an Amdahl host-serial term",
		Params: []FamilyParam{
			{Name: "m_fma", Lo: 0, Hi: 1, Default: 0.5,
				Doc: "FMA fraction of the FP32 operations (each FMA retires two FLOPs)"},
			{Name: "f_fp32", Lo: 0, Hi: 1, Default: 0.3,
				Doc: "FP32 fraction of the instruction stream"},
			{Name: "lane_area", Lo: 0, Hi: 1e6, Default: 0.05,
				Doc: "silicon area per FP32 lane in mm²"},
			{Name: "sm_area", Lo: 0, Hi: 1e6, Default: 2,
				Doc: "fixed per-SM area in mm² (schedulers, register file, shared memory)"},
		},
		New: func(cfg Config) (Model, error) {
			if err := cfg.App.Validate(); err != nil {
				return nil, err
			}
			return &GPU{
				Chip:     cfg.Chip,
				App:      cfg.App,
				MFMA:     cfg.Params["m_fma"],
				FFP32:    cfg.Params["f_fp32"],
				LaneArea: cfg.Params["lane_area"],
				SMArea:   cfg.Params["sm_area"],
			}, nil
		},
	})
}

// GPU is the accelerator-side model family: the per-SM CUDA-core
// throughput bound of the gpucorde compositional model,
//
//	Φ = θ · C_fp32 · (1 + m_FMA) · f_fp32   [useful FLOPs/cycle/SM]
//
// scaled by the SM count, with the application's sequential fraction
// executing host-side at one instruction per cycle (Amdahl's serial
// term). The design space trades SM count against SM width (FP32 lanes
// per SM) under the chip's area budget, with occupancy θ as the third
// dimension.
type GPU struct {
	Chip chip.Config
	App  core.App

	// MFMA is the FMA fraction of the FP32 operations.
	MFMA float64
	// FFP32 is the FP32 fraction of the instruction stream.
	FFP32 float64
	// LaneArea is the silicon area of one FP32 lane (mm²).
	LaneArea float64
	// SMArea is the fixed area of one SM (mm²).
	SMArea float64
}

// Fingerprint implements Model. It covers every input the objective
// reads: the chip area budget, the application's sequential fraction
// and instruction count, and the four family parameters.
func (m *GPU) Fingerprint() string {
	return fmt.Sprintf("%stotal=%x fixed=%x fseq=%x ic0=%x m_fma=%x f_fp32=%x lane_area=%x sm_area=%x",
		FingerprintPrefix(FamilyGPU),
		math.Float64bits(m.Chip.TotalArea), math.Float64bits(m.Chip.FixedArea),
		math.Float64bits(m.App.Fseq), math.Float64bits(m.App.IC0),
		math.Float64bits(m.MFMA), math.Float64bits(m.FFP32),
		math.Float64bits(m.LaneArea), math.Float64bits(m.SMArea))
}

// Space implements Model: SM count, FP32 lanes per SM, and occupancy θ.
func (m *GPU) Space() Space {
	return Space{Params: []Param{
		{Name: "SM", Lo: 1, Hi: 1024, Grid: []float64{1, 2, 4, 8, 16, 24, 32, 48, 64, 128}},
		{Name: "Lanes", Lo: 1, Hi: 4096, Grid: []float64{32, 48, 64, 96, 128, 192, 256, 384, 512, 1024}},
		{Name: "Theta", Lo: 0, Hi: 1, Grid: []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}},
	}}
}

// gpuFolded carries the point-independent subexpressions shared by the
// direct and compiled paths, so both perform the identical operation
// sequence (the bit-exactness contract).
type gpuFolded struct {
	mix       float64 // (1+m_FMA)·f_fp32: useful FLOPs per warp instruction
	flops     float64 // IC0·(1−fseq)·mix: FLOPs of the parallel portion
	serial    float64 // IC0·fseq: host-serial cycles
	work      float64 // IC0
	laneArea  float64
	smArea    float64
	areaLimit float64 // TotalArea−FixedArea, with the same tolerance as core
}

// fold computes the shared constants. Both DirectTimeWorkAt (per call)
// and Compile (once) go through here, so the folded values are
// bit-identical by construction.
func (m *GPU) fold() gpuFolded {
	mix := (1 + m.MFMA) * m.FFP32
	return gpuFolded{
		mix:       mix,
		flops:     m.App.IC0 * (1 - m.App.Fseq) * mix,
		serial:    m.App.IC0 * m.App.Fseq,
		work:      m.App.IC0,
		laneArea:  m.LaneArea,
		smArea:    m.SMArea,
		areaLimit: (m.Chip.TotalArea - m.Chip.FixedArea) * (1 + 1e-9),
	}
}

// eval is the single evaluation routine both paths dispatch to.
func (f gpuFolded) eval(point []float64) (t, w float64, ok bool) {
	if len(point) != 3 {
		return 0, 0, false
	}
	sm := float64(int(point[0] + 0.5))
	lanes := float64(int(point[1] + 0.5))
	theta := point[2]
	if sm < 1 || lanes < 1 || theta <= 0 || theta > 1 {
		return 0, 0, false
	}
	if sm*(f.smArea+f.laneArea*lanes) > f.areaLimit {
		return 0, 0, false
	}
	phi := theta * lanes * f.mix * sm
	if !(phi > 0) {
		return 0, 0, false
	}
	t = f.serial + f.flops/phi
	return t, f.work, true
}

// DirectTimeWorkAt implements Direct, folding the constants afresh on
// every call.
func (m *GPU) DirectTimeWorkAt(point []float64) (t, w float64, ok bool) {
	return m.fold().eval(point)
}

// Compile implements Model: the constants fold once, the kernel reuses
// them for every point.
func (m *GPU) Compile() (Kernel, error) {
	if m.App.IC0 <= 0 {
		return nil, fmt.Errorf("model: gpu: IC0 must be positive, got %v", m.App.IC0)
	}
	return gpuKernel{f: m.fold()}, nil
}

// gpuKernel is the compiled GPU throughput kernel.
type gpuKernel struct {
	f gpuFolded
}

// TimeAt implements Kernel.
func (k gpuKernel) TimeAt(point []float64) float64 {
	t, _, ok := k.f.eval(point)
	if !ok {
		return math.Inf(1)
	}
	return t
}

// TimeWorkAt implements Kernel.
func (k gpuKernel) TimeWorkAt(point []float64) (t, w float64, ok bool) {
	return k.f.eval(point)
}
