package model

import (
	"math"

	"repro/internal/chip"
	"repro/internal/core"
)

// FamilyC2Bound is the catalog name of the paper's own objective.
const FamilyC2Bound = "c2bound"

func init() {
	mustRegister(Family{
		Name: FamilyC2Bound,
		Doc:  "the paper's capacity/concurrency Eq. 10 objective with first-order issue/ROB corrections",
		New: func(cfg Config) (Model, error) {
			m := &C2Bound{m: core.Model{Chip: cfg.Chip, App: cfg.App}}
			if err := cfg.App.Validate(); err != nil {
				return nil, err
			}
			return m, nil
		},
	})
}

// C2Bound adapts the paper's C²-Bound model (core.Model plus the
// issue/ROB corrections of dse.ModelEvaluator) to the family contract.
// Its six-dimensional space is the §IV paper space: per-core area split
// (A0, A1, A2), core count N, issue width and ROB size.
type C2Bound struct {
	m core.Model
}

// CoreModel returns the wrapped core.Model, for consumers that need the
// analytic machinery only the paper's family carries (the KKT optimizer,
// the simulator-backed evaluator, the APS flow).
func (m *C2Bound) CoreModel() core.Model { return m.m }

// Fingerprint implements Model, namespacing the core fingerprint.
func (m *C2Bound) Fingerprint() string {
	return FingerprintPrefix(FamilyC2Bound) + m.m.Fingerprint()
}

// Space implements Model: the six paper dimensions with the same grids
// as dse.PaperSpace (ten values each, chosen so every combination fits
// the chip budget).
func (m *C2Bound) Space() Space {
	cfg := m.m.Chip
	ns := []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	maxPerCore := (cfg.TotalArea - cfg.FixedArea) / ns[len(ns)-1]
	// The same per-core budget split as dse.PaperSpace: A0+A1+A2 maxima
	// sum below maxPerCore so the full grid has no infeasible holes.
	steps := func(max float64) []float64 {
		vals := make([]float64, 10)
		for i := range vals {
			vals[i] = max * float64(i+1) / 10
		}
		return vals
	}
	a0 := steps(0.42 * maxPerCore)
	a1 := steps(0.18 * maxPerCore)
	a2 := steps(0.38 * maxPerCore)
	return Space{Params: []Param{
		{Name: "A0", Lo: 0, Hi: a0[len(a0)-1], Grid: a0},
		{Name: "A1", Lo: 0, Hi: a1[len(a1)-1], Grid: a1},
		{Name: "A2", Lo: 0, Hi: a2[len(a2)-1], Grid: a2},
		{Name: "N", Lo: 1, Hi: ns[len(ns)-1], Grid: ns},
		{Name: "Issue", Lo: 1, Hi: 16, Grid: []float64{1, 2, 3, 4, 5, 6, 7, 8, 12, 16}},
		{Name: "ROB", Lo: 1, Hi: 256, Grid: []float64{16, 32, 48, 64, 96, 128, 160, 192, 224, 256}},
	}}
}

// Compile implements Model via core.Model.Compile, wrapping the
// fingerprint-specialized Eq. 7-10 kernel with the same issue/ROB
// corrections as the direct path.
func (m *C2Bound) Compile() (Kernel, error) {
	c, err := m.m.Compile()
	if err != nil {
		return nil, err
	}
	return c2Kernel{c: c}, nil
}

// DirectTimeWorkAt implements Direct through the uncompiled
// core.Model.Evaluate; core's own contract makes the compiled kernel
// bit-identical, and the corrections below repeat the kernel's exact
// expressions.
func (m *C2Bound) DirectTimeWorkAt(point []float64) (t, w float64, ok bool) {
	d, ok := c2Design(point)
	if !ok {
		return 0, 0, false
	}
	e, err := m.m.Evaluate(d)
	if err != nil {
		return 0, 0, false
	}
	return c2Correct(e.Time, point), e.Work, true
}

// c2Kernel is the compiled C²-Bound kernel.
type c2Kernel struct {
	c *core.Compiled
}

// c2Design decodes the six-dimensional point into the chip design.
func c2Design(point []float64) (chip.Design, bool) {
	if len(point) != 6 {
		return chip.Design{}, false
	}
	return chip.Design{
		N:        int(point[3] + 0.5),
		CoreArea: point[0],
		L1Area:   point[1],
		L2Area:   point[2],
	}, true
}

// c2Correct applies the first-order issue/ROB corrections of
// dse.ModelEvaluator: narrow issue serializes instruction delivery; a
// small ROB caps the memory overlap the C-AMAT concurrency assumed.
func c2Correct(t float64, point []float64) float64 {
	issue, rob := point[4], point[5]
	return t * (1 + 0.6/issue) * (1 + 24/rob)
}

// TimeAt implements Kernel.
func (k c2Kernel) TimeAt(point []float64) float64 {
	t, _, ok := k.TimeWorkAt(point)
	if !ok {
		return math.Inf(1)
	}
	return t
}

// TimeWorkAt implements Kernel.
func (k c2Kernel) TimeWorkAt(point []float64) (t, w float64, ok bool) {
	d, ok := c2Design(point)
	if !ok {
		return 0, 0, false
	}
	t, w, ok = k.c.TimeWorkAt(d)
	if !ok {
		return 0, 0, false
	}
	return c2Correct(t, point), w, true
}
