package core

import (
	"math"
	"testing"
)

func TestValidateProfile(t *testing.T) {
	if err := ValidateProfile(TwoPhaseProfile(0.2, 16)); err != nil {
		t.Fatalf("two-phase profile invalid: %v", err)
	}
	bad := [][]DOPPhase{
		nil,
		{{Degree: 0, Fraction: 1}},
		{{Degree: 2, Fraction: -0.5}, {Degree: 4, Fraction: 1.5}},
		{{Degree: 2, Fraction: 0.4}}, // sums to 0.4
	}
	for i, p := range bad {
		if err := ValidateProfile(p); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestGeneralizedReducesToEq10(t *testing.T) {
	app := FluidanimateApp()
	m := testModel(app)
	d := midDesign(16)
	e, err := m.Evaluate(d)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	got, err := m.TimeGeneralized(d, TwoPhaseProfile(app.Fseq, d.N))
	if err != nil {
		t.Fatalf("TimeGeneralized: %v", err)
	}
	if math.Abs(got-e.Time) > 1e-9*e.Time {
		t.Fatalf("generalized %v != Eq. 10 %v", got, e.Time)
	}
}

func TestGeneralizedCapsDegreeAtN(t *testing.T) {
	m := testModel(FluidanimateApp())
	d := midDesign(8)
	// Degree 64 on an 8-core chip behaves as degree 8.
	t64, err := m.TimeGeneralized(d, []DOPPhase{{Degree: 64, Fraction: 1}})
	if err != nil {
		t.Fatalf("TimeGeneralized: %v", err)
	}
	t8, err := m.TimeGeneralized(d, []DOPPhase{{Degree: 8, Fraction: 1}})
	if err != nil {
		t.Fatalf("TimeGeneralized: %v", err)
	}
	if math.Abs(t64-t8) > 1e-9*t8 {
		t.Fatalf("degree cap broken: %v vs %v", t64, t8)
	}
}

func TestGeneralizedMoreParallelismFaster(t *testing.T) {
	// For a fixed-size workload, shifting work to higher degrees can only
	// reduce the generalized time.
	app := FluidanimateApp()
	app.G = func(float64) float64 { return 1 }
	app.GOrder = 0
	m := testModel(app)
	d := midDesign(16)
	serialish, err := m.TimeGeneralized(d, []DOPPhase{
		{Degree: 1, Fraction: 0.5}, {Degree: 16, Fraction: 0.5},
	})
	if err != nil {
		t.Fatalf("TimeGeneralized: %v", err)
	}
	parallelish, err := m.TimeGeneralized(d, []DOPPhase{
		{Degree: 1, Fraction: 0.1}, {Degree: 16, Fraction: 0.9},
	})
	if err != nil {
		t.Fatalf("TimeGeneralized: %v", err)
	}
	if parallelish >= serialish {
		t.Fatalf("more parallel profile slower: %v vs %v", parallelish, serialish)
	}
}

func TestGeneralizedMultiPhase(t *testing.T) {
	// A staircase DOP profile (typical of real applications): every phase
	// contributes g(i)/i of its fraction.
	app := FluidanimateApp()
	m := testModel(app)
	d := midDesign(32)
	profile := []DOPPhase{
		{Degree: 1, Fraction: 0.1},
		{Degree: 4, Fraction: 0.2},
		{Degree: 16, Fraction: 0.3},
		{Degree: 32, Fraction: 0.4},
	}
	got, err := m.TimeGeneralized(d, profile)
	if err != nil {
		t.Fatalf("TimeGeneralized: %v", err)
	}
	e, err := m.Evaluate(d)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	want := 0.0
	for _, ph := range profile {
		want += app.IC0 * e.CPI * ph.Fraction * app.G(float64(ph.Degree)) / float64(ph.Degree)
	}
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("multi-phase time %v, want %v", got, want)
	}
	// Errors propagate.
	if _, err := m.TimeGeneralized(d, nil); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, err := m.TimeGeneralized(midDesign(100000), profile); err == nil {
		t.Fatal("infeasible design accepted")
	}
}

func TestGeneralizedZeroFractionSkipped(t *testing.T) {
	m := testModel(FluidanimateApp())
	d := midDesign(8)
	a, err := m.TimeGeneralized(d, []DOPPhase{
		{Degree: 1, Fraction: 0}, {Degree: 8, Fraction: 1},
	})
	if err != nil {
		t.Fatalf("TimeGeneralized: %v", err)
	}
	b, err := m.TimeGeneralized(d, []DOPPhase{{Degree: 8, Fraction: 1}})
	if err != nil {
		t.Fatalf("TimeGeneralized: %v", err)
	}
	if a != b {
		t.Fatalf("zero fraction changed the result: %v vs %v", a, b)
	}
}
