package core

import (
	"math"
	"testing"

	"repro/internal/speedup"
)

func fixedSizeApp() App {
	app := FluidanimateApp()
	app.G = speedup.FixedSize()
	app.GOrder = 0
	return app
}

func TestPowerModelValidate(t *testing.T) {
	if err := DefaultPowerModel().Validate(); err != nil {
		t.Fatalf("default power model invalid: %v", err)
	}
	bad := DefaultPowerModel()
	bad.DynamicPerMM2 = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative dynamic power accepted")
	}
	bad = DefaultPowerModel()
	bad.CacheActivity = 2
	if err := bad.Validate(); err == nil {
		t.Error("cache activity > 1 accepted")
	}
}

func TestEvaluateEnergyBasics(t *testing.T) {
	m := testModel(fixedSizeApp())
	pm := DefaultPowerModel()
	e, err := m.EvaluateEnergy(midDesign(16), pm)
	if err != nil {
		t.Fatalf("EvaluateEnergy: %v", err)
	}
	if e.Energy <= 0 || e.EDP <= 0 || e.ED2P <= 0 {
		t.Fatalf("degenerate energy eval %+v", e)
	}
	// Parallel phase powers 16 cores; it must exceed the sequential
	// phase's power (1 active core + 15 leaking).
	if e.ParPower <= e.SeqPower {
		t.Fatalf("parallel power %v not above sequential %v", e.ParPower, e.SeqPower)
	}
	// EDP and ED²P consistency.
	if math.Abs(e.EDP-e.Energy*e.Time) > 1e-9*e.EDP {
		t.Fatalf("EDP inconsistent")
	}
	if math.Abs(e.ED2P-e.EDP*e.Time) > 1e-9*e.ED2P {
		t.Fatalf("ED2P inconsistent")
	}
	// Invalid power model rejected.
	bad := pm
	bad.StaticPerMM2 = -1
	if _, err := m.EvaluateEnergy(midDesign(16), bad); err == nil {
		t.Fatal("invalid power model accepted")
	}
	if _, err := m.EvaluateEnergy(midDesign(100000), pm); err == nil {
		t.Fatal("infeasible design accepted")
	}
}

func TestLeakageGrowsWithIdleCores(t *testing.T) {
	pm := DefaultPowerModel()
	d8 := midDesign(8)
	d32 := midDesign(32)
	// Sequential-phase power (one active core) grows with N through
	// leakage alone.
	if pm.phasePower(d32, 1) <= pm.phasePower(d8, 1) {
		t.Fatal("leakage does not grow with idle cores")
	}
}

func TestEnergyObjectiveOrdering(t *testing.T) {
	// The three optima must dominate each other on their own objectives:
	// the energy-optimal design uses no more energy than the time-optimal
	// one, the time-optimal design is no slower than the energy-optimal
	// one, and the EDP optimum is best on EDP.
	app := fixedSizeApp()
	app.Fseq = 0.15
	m := testModel(app)
	pm := DefaultPowerModel()

	timeRes, err := m.Optimize(Options{MaxN: 64})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	timeE, err := m.EvaluateEnergy(timeRes.Design, pm)
	if err != nil {
		t.Fatalf("EvaluateEnergy(time design): %v", err)
	}
	dE, eE, err := m.OptimizeEnergy(pm, MinEnergy, Options{MaxN: 64})
	if err != nil {
		t.Fatalf("OptimizeEnergy: %v", err)
	}
	_, eEDP, err := m.OptimizeEnergy(pm, MinEDP, Options{MaxN: 64})
	if err != nil {
		t.Fatalf("OptimizeEnergy EDP: %v", err)
	}
	if eE.Energy > timeE.Energy*(1+1e-9) {
		t.Fatalf("energy optimum %v uses more energy than time optimum %v", eE.Energy, timeE.Energy)
	}
	if eE.Time < timeRes.Eval.Time*(1-1e-9) {
		t.Fatalf("energy optimum %v faster than time optimum %v", eE.Time, timeRes.Eval.Time)
	}
	if eEDP.EDP > eE.EDP*(1+1e-9) || eEDP.EDP > timeE.EDP*(1+1e-9) {
		t.Fatalf("EDP optimum %v beaten by energy (%v) or time (%v) designs", eEDP.EDP, eE.EDP, timeE.EDP)
	}
	// Dark silicon: the pure-energy optimum should not fill the die.
	if used := m.Chip.AreaUsed(dE); used > 0.98*m.Chip.TotalArea {
		t.Logf("note: energy optimum fills the die (%.3g of %.3g)", used, m.Chip.TotalArea)
	}
}

func TestOptimizeEnergyObjectivesConsistent(t *testing.T) {
	m := testModel(fixedSizeApp())
	pm := DefaultPowerModel()
	for _, obj := range []EnergyObjective{MinEnergy, MinEDP, MinED2P} {
		d, e, err := m.OptimizeEnergy(pm, obj, Options{MaxN: 32})
		if err != nil {
			t.Fatalf("OptimizeEnergy(%v): %v", obj, err)
		}
		if err := m.Chip.CheckFeasible(d); err != nil {
			t.Fatalf("%v: infeasible design: %v", obj, err)
		}
		// The optimizer's choice must beat a naive mid design on its own
		// objective.
		naive, err := m.EvaluateEnergy(midDesign(16), pm)
		if err != nil {
			t.Fatalf("naive eval: %v", err)
		}
		if obj.score(e) > obj.score(naive)*(1+1e-9) {
			t.Fatalf("%v: optimizer (%v) worse than naive (%v)", obj, obj.score(e), obj.score(naive))
		}
		if obj.String() == "unknown" {
			t.Fatalf("missing objective name")
		}
	}
	bad := m
	bad.App.Fseq = 2
	if _, _, err := bad.OptimizeEnergy(pm, MinEDP, Options{MaxN: 8}); err == nil {
		t.Fatal("invalid app accepted")
	}
	badPM := pm
	badPM.UncorePower = -1
	if _, _, err := m.OptimizeEnergy(badPM, MinEDP, Options{MaxN: 8}); err == nil {
		t.Fatal("invalid power model accepted")
	}
}

func TestParetoFrontier(t *testing.T) {
	m := testModel(fixedSizeApp())
	pm := DefaultPowerModel()
	frontier, err := m.ParetoFrontier(pm, Options{MaxN: 64})
	if err != nil {
		t.Fatalf("ParetoFrontier: %v", err)
	}
	if len(frontier) < 2 {
		t.Fatalf("frontier has %d points; expect a real trade-off", len(frontier))
	}
	// Sorted by time, strictly improving energy: non-dominated.
	for i := 1; i < len(frontier); i++ {
		if frontier[i].Time <= frontier[i-1].Time {
			t.Fatalf("frontier not sorted by time at %d", i)
		}
		if frontier[i].Energy >= frontier[i-1].Energy {
			t.Fatalf("dominated point on frontier at %d", i)
		}
	}
	// Every frontier design is feasible.
	for _, p := range frontier {
		if err := m.Chip.CheckFeasible(p.Design); err != nil {
			t.Fatalf("frontier design infeasible: %v", err)
		}
	}
	bad := m
	bad.App.IC0 = 0
	if _, err := bad.ParetoFrontier(pm, Options{}); err == nil {
		t.Fatal("invalid app accepted")
	}
}

func TestEnergyObjectiveString(t *testing.T) {
	if MinEnergy.String() != "min-energy" || MinEDP.String() != "min-EDP" ||
		MinED2P.String() != "min-ED2P" || EnergyObjective(99).String() != "unknown" {
		t.Fatal("objective names wrong")
	}
}
