package core

import (
	"math"
	"testing"

	"repro/internal/speedup"
)

func asymModel(app App) AsymModel {
	m := testModel(app)
	return AsymModel{Chip: m.Chip, App: m.App}
}

func validAsym() AsymDesign {
	return AsymDesign{N: 8, BigArea: 30, SmallArea: 4, L1Area: 1, L2Area: 3}
}

func TestAsymFeasibility(t *testing.T) {
	m := asymModel(FluidanimateApp())
	if err := m.CheckFeasible(validAsym()); err != nil {
		t.Fatalf("valid asymmetric design rejected: %v", err)
	}
	cases := []AsymDesign{
		{N: -1, BigArea: 10, SmallArea: 2, L1Area: 1, L2Area: 1},
		{N: 4, BigArea: 0, SmallArea: 2, L1Area: 1, L2Area: 1},
		{N: 4, BigArea: 10, SmallArea: 2, L1Area: 0, L2Area: 1},
		{N: 64, BigArea: 50, SmallArea: 8, L1Area: 2, L2Area: 4}, // over budget
	}
	for _, d := range cases {
		if err := m.CheckFeasible(d); err == nil {
			t.Errorf("infeasible asymmetric design accepted: %+v", d)
		}
	}
}

func TestAsymAreaAccounting(t *testing.T) {
	m := asymModel(FluidanimateApp())
	d := validAsym()
	used := m.AreaUsed(d)
	scale := math.Sqrt(d.BigArea / d.SmallArea)
	want := d.BigArea + (d.L1Area+d.L2Area)*scale + 8*(4+1+3) + m.Chip.FixedArea
	if math.Abs(used-want) > 1e-9 {
		t.Fatalf("AreaUsed = %v, want %v", used, want)
	}
}

func TestAsymEvaluateBasics(t *testing.T) {
	m := asymModel(FluidanimateApp())
	e, err := m.Evaluate(validAsym())
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if e.SeqCPI <= 0 || e.ParCPI <= 0 || e.Time <= 0 || e.Throughput <= 0 {
		t.Fatalf("degenerate eval %+v", e)
	}
	// The big core is faster per instruction than the small cores.
	if e.SeqCPI >= e.ParCPI {
		t.Fatalf("big-core CPI %v not below small-core CPI %v", e.SeqCPI, e.ParCPI)
	}
	if e.Time != e.SeqTime+e.ParTime {
		t.Fatalf("time decomposition broken: %v != %v + %v", e.Time, e.SeqTime, e.ParTime)
	}
}

func TestAsymDegenerateSingleCore(t *testing.T) {
	m := asymModel(FluidanimateApp())
	d := AsymDesign{N: 0, BigArea: 50, SmallArea: 50, L1Area: 4, L2Area: 8}
	e, err := m.Evaluate(d)
	if err != nil {
		t.Fatalf("Evaluate N=0: %v", err)
	}
	if e.SeqCPI != e.ParCPI {
		t.Fatalf("single-core phases differ: %v vs %v", e.SeqCPI, e.ParCPI)
	}
}

func TestAsymBeatsSymmetricWithSequentialWork(t *testing.T) {
	// Hill & Marty's insight carried into C²-Bound: with a real
	// sequential fraction, the best asymmetric design beats the best
	// symmetric one.
	app := FluidanimateApp()
	app.Fseq = 0.25
	app.G = speedup.FixedSize()
	app.GOrder = 0
	sym := testModel(app)
	symRes, err := sym.Optimize(Options{MaxN: 64})
	if err != nil {
		t.Fatalf("symmetric optimize: %v", err)
	}
	asym := asymModel(app)
	_, asymEval, err := asym.OptimizeAsym(Options{MaxN: 64})
	if err != nil {
		t.Fatalf("asymmetric optimize: %v", err)
	}
	if asymEval.Time >= symRes.Eval.Time {
		t.Fatalf("asymmetric best %v not below symmetric best %v", asymEval.Time, symRes.Eval.Time)
	}
}

func TestAsymOptimizeFeasibleAndStable(t *testing.T) {
	m := asymModel(StencilApp())
	d, e, err := m.OptimizeAsym(Options{MaxN: 32})
	if err != nil {
		t.Fatalf("OptimizeAsym: %v", err)
	}
	if err := m.CheckFeasible(d); err != nil {
		t.Fatalf("optimizer returned infeasible design: %v", err)
	}
	if e.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	// Deterministic.
	d2, e2, err := m.OptimizeAsym(Options{MaxN: 32})
	if err != nil {
		t.Fatalf("OptimizeAsym again: %v", err)
	}
	if d2 != d || e2.Time != e.Time {
		t.Fatalf("nondeterministic optimizer: %+v vs %+v", d2, d)
	}
}

func TestAsymInvalidApp(t *testing.T) {
	m := asymModel(FluidanimateApp())
	m.App.Fseq = 2
	if _, err := m.Evaluate(validAsym()); err == nil {
		t.Fatal("invalid app accepted")
	}
	if _, _, err := m.OptimizeAsym(Options{MaxN: 16}); err == nil {
		t.Fatal("OptimizeAsym accepted invalid app")
	}
}

func TestDynamicBeatsSymmetricSequentialHeavy(t *testing.T) {
	// A dynamic CMP runs the sequential phase on the fused big core, so
	// for sequential-heavy workloads its time is below the symmetric
	// design's at the same design point.
	app := FluidanimateApp()
	app.Fseq = 0.3
	m := asymModel(app)
	d := midDesign(16)
	sym, err := testModel(app).Evaluate(d)
	if err != nil {
		t.Fatalf("symmetric eval: %v", err)
	}
	dyn, err := m.DynamicEval(d)
	if err != nil {
		t.Fatalf("DynamicEval: %v", err)
	}
	if dyn >= sym.Time {
		t.Fatalf("dynamic time %v not below symmetric %v", dyn, sym.Time)
	}
}

func TestDynamicEvalInfeasible(t *testing.T) {
	m := asymModel(FluidanimateApp())
	if _, err := m.DynamicEval(midDesign(10000)); err == nil {
		t.Fatal("infeasible dynamic design accepted")
	}
}
