package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/chip"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/solve"
)

// Regime is the §III-C case split of the optimization problem.
type Regime int

const (
	// MinimizeTime is case II: g(N) < O(N), a finite core count minimizes
	// execution time T.
	MinimizeTime Regime = iota
	// MaximizeThroughput is case I: g(N) ≥ O(N), ∂L/∂N never vanishes so
	// the model maximizes W/T instead.
	MaximizeThroughput
)

func (r Regime) String() string {
	if r == MinimizeTime {
		return "minimize-T"
	}
	return "maximize-W/T"
}

// ClassifyRegime applies the paper's rule: throughput optimization when
// the problem size scales at least linearly with memory capacity.
func (m Model) ClassifyRegime() Regime {
	if m.App.growthOrder() >= 1-1e-9 {
		return MaximizeThroughput
	}
	return MinimizeTime
}

// Result is the solved design point.
type Result struct {
	Design chip.Design
	Eval   Eval
	Regime Regime
	// Method records which solver produced the area split at the optimal
	// N: "kkt-newton" when the paper's Lagrange/Newton system converged,
	// "nelder-mead" when the derivative-free fallback won.
	Method string
	// Evaluations counts objective evaluations spent in the whole solve;
	// it is the analytic-cost figure APS compares against simulation
	// counts.
	Evaluations int
}

// Options bound the optimization search.
type Options struct {
	MaxN       int     // largest core count considered (default: area-derived)
	MinPerCore float64 // smallest per-core area; sets the N upper bound (default 0.5 mm²)
	MinArea    float64 // lower bound for each area component (default 0.05 mm²)

	// Engine, when set, routes every objective probe (Nelder-Mead
	// vertices, KKT gradient stencils, candidate scoring) through the
	// shared evaluation engine, so repeated probes of one design are
	// memoized and the optimizer shares a cache with any sweep running on
	// the same engine. Nil keeps direct evaluation.
	Engine *engine.Engine
}

func (o *Options) fill(c chip.Config) {
	if o.MinPerCore <= 0 {
		o.MinPerCore = 0.5
	}
	if o.MinArea <= 0 {
		o.MinArea = 0.05
	}
	if o.MaxN <= 0 {
		o.MaxN = int((c.TotalArea - c.FixedArea) / o.MinPerCore)
		if o.MaxN < 1 {
			o.MaxN = 1
		}
	}
}

// evalCounter wraps the model's time objective and counts evaluation
// requests. The model is compiled once per counter, so every probe —
// Nelder-Mead vertices, KKT gradient stencils — runs the specialized
// (bit-identical) kernel instead of re-deriving the model. When an
// engine is attached, probes are memoized under the model's fingerprint
// (the count still reflects requests, not raw evaluations —
// engine.Stats carries the raw figure).
type evalCounter struct {
	m      Model
	ctx    context.Context
	eng    *engine.Engine
	timeAt func(chip.Design) float64
	probe  engine.Func
	count  int
}

func newEvalCounter(ctx context.Context, m Model, eng *engine.Engine) *evalCounter {
	ec := &evalCounter{m: m, ctx: ctx, eng: eng, timeAt: m.TimeAt}
	if compiled, err := m.Compile(); err == nil {
		ec.timeAt = compiled.TimeAt
	}
	if eng != nil {
		timeAt := ec.timeAt
		ec.probe = engine.Func{
			FP: "core.TimeAt{" + m.Fingerprint() + "}",
			F: func(_ context.Context, p []float64) (float64, error) {
				return timeAt(chip.Design{N: int(p[3] + 0.5), CoreArea: p[0], L1Area: p[1], L2Area: p[2]}), nil
			},
		}
	}
	return ec
}

func (ec *evalCounter) time(d chip.Design) float64 {
	ec.count++
	if ec.eng == nil {
		return ec.timeAt(d)
	}
	v, err := ec.eng.Evaluate(ec.ctx, ec.probe, []float64{d.CoreArea, d.L1Area, d.L2Area, float64(d.N)})
	if err != nil {
		// Cancellation (or an isolated panic) surfaces as an unattractive
		// objective; OptimizeCtx's per-candidate ctx poll turns the
		// cancellation into the caller-visible error.
		return math.Inf(1)
	}
	return v
}

// OptimizeAreas finds the area split (A0, A1, A2) minimizing J_D for a
// fixed core count n, holding the area constraint of Eq. 12 tight. For
// fixed N minimizing T and maximizing W/T coincide (W depends only on N),
// so one routine serves both regimes. It first attempts the paper's
// Lagrange/KKT system with Newton's method and falls back to a simplex
// search in the constrained subspace; the better of the two is returned
// together with the solver label.
func (m Model) OptimizeAreas(n int, opts Options) (chip.Design, string, int, error) {
	//lint:allow ctxflow deliberate non-ctx convenience wrapper over the ctx-aware optimizer
	return m.optimizeAreas(context.Background(), n, opts)
}

// optimizeAreas is OptimizeAreas with the context threaded through to the
// engine-routed probes.
func (m Model) optimizeAreas(ctx context.Context, n int, opts Options) (chip.Design, string, int, error) {
	opts.fill(m.Chip)
	budget := (m.Chip.TotalArea - m.Chip.FixedArea) / float64(n)
	if budget < 3*opts.MinArea {
		return chip.Design{}, "", 0, fmt.Errorf("core: %d cores leave only %.3g mm² per core", n, budget)
	}
	ec := newEvalCounter(ctx, m, opts.Engine)

	// Simplex parameterization of the constrained subspace: two free
	// variables (u0, u1) map through softmax weights onto the fixed
	// per-core budget, guaranteeing positivity and a tight constraint.
	design := func(u []float64) chip.Design {
		e0 := math.Exp(u[0])
		e1 := math.Exp(u[1])
		sum := e0 + e1 + 1
		usable := budget - 3*opts.MinArea
		return chip.Design{
			N:        n,
			CoreArea: opts.MinArea + usable*e0/sum,
			L1Area:   opts.MinArea + usable*e1/sum,
			L2Area:   opts.MinArea + usable*1/sum,
		}
	}
	objU := func(u []float64) float64 { return ec.time(design(u)) }

	bestU, bestT := solve.NelderMead(objU, []float64{1, 0}, solve.NelderMeadOpts{MaxIter: 400, Tol: 1e-12})
	// A second start favouring caches guards against local minima.
	u2, t2 := solve.NelderMead(objU, []float64{-1, 1}, solve.NelderMeadOpts{MaxIter: 400, Tol: 1e-12})
	if t2 < bestT {
		bestU, bestT = u2, t2
	}
	bestD := design(bestU)
	method := "nelder-mead"

	// The paper's route: solve the KKT system of Eq. 13 for (A0, A1, A2, λ)
	// with Newton's method, seeded at the simplex solution. When Newton
	// fails to converge the solver falls back to Broyden's quasi-Newton
	// method before settling for the simplex answer, so a hard KKT system
	// degrades the solution quality, never the API (no bare
	// ErrNoConvergence escapes this path).
	if kktD, kktMethod, ok := m.solveKKT(n, bestD, opts, ec); ok {
		if t := ec.time(kktD); t <= bestT*(1+1e-9) {
			bestD, bestT, method = kktD, t, kktMethod
		}
	}
	if math.IsInf(bestT, 1) {
		return chip.Design{}, "", ec.count, fmt.Errorf("core: no feasible split for N=%d", n)
	}
	return bestD, method, ec.count, nil
}

// solveKKT assembles and solves the first-order conditions of the
// Lagrangian L = J_D + λ·(N(A0+A1+A2)+Ac−A) (Eq. 13) for fixed N, trying
// Newton first and Broyden's quasi-Newton method as a fallback. It
// reports ok=false when both solvers fail or the solution drifts outside
// the feasible box; the caller then keeps the Nelder-Mead answer.
func (m Model) solveKKT(n int, seed chip.Design, opts Options, ec *evalCounter) (chip.Design, string, bool) {
	nf := float64(n)
	timeOf := func(a0, a1, a2 float64) float64 {
		return ec.time(chip.Design{N: n, CoreArea: a0, L1Area: a1, L2Area: a2})
	}
	grad := func(a0, a1, a2 float64) (g0, g1, g2 float64) {
		h0 := 1e-6 * (1 + a0)
		h1 := 1e-6 * (1 + a1)
		h2 := 1e-6 * (1 + a2)
		g0 = (timeOf(a0+h0, a1, a2) - timeOf(a0-h0, a1, a2)) / (2 * h0)
		g1 = (timeOf(a0, a1+h1, a2) - timeOf(a0, a1-h1, a2)) / (2 * h1)
		g2 = (timeOf(a0, a1, a2+h2) - timeOf(a0, a1, a2-h2)) / (2 * h2)
		return
	}
	system := func(x []float64) []float64 {
		a0, a1, a2, lambda := x[0], x[1], x[2], x[3]
		g0, g1, g2 := grad(a0, a1, a2)
		return []float64{
			g0 + lambda*nf,
			g1 + lambda*nf,
			g2 + lambda*nf,
			nf*(a0+a1+a2) + m.Chip.FixedArea - m.Chip.TotalArea,
		}
	}
	g0, _, _ := grad(seed.CoreArea, seed.L1Area, seed.L2Area)
	x0 := []float64{seed.CoreArea, seed.L1Area, seed.L2Area, -g0 / nf}
	method := "kkt-newton"
	x, _, err := solve.NewtonSystem(system, x0, 1e-9, 60)
	if err != nil {
		method = "kkt-broyden"
		x, _, err = solve.Broyden(system, x0, 1e-9, 200)
	}
	if err != nil {
		return chip.Design{}, "", false
	}
	d := chip.Design{N: n, CoreArea: x[0], L1Area: x[1], L2Area: x[2]}
	if x[0] < opts.MinArea || x[1] < opts.MinArea || x[2] < opts.MinArea {
		return chip.Design{}, "", false
	}
	if err := m.Chip.CheckFeasible(d); err != nil {
		return chip.Design{}, "", false
	}
	return d, method, true
}

// Optimize solves the full C²-Bound problem: scan the core count (coarse
// geometric sweep followed by local integer refinement), optimize the area
// split at each N, and select by the regime rule of §III-C — minimum T
// when g(N) < O(N), maximum W/T when g(N) ≥ O(N).
func (m Model) Optimize(opts Options) (Result, error) {
	//lint:allow ctxflow deliberate non-ctx convenience wrapper over OptimizeCtx
	return m.OptimizeCtx(context.Background(), opts)
}

// OptimizeCtx is Optimize with cancellation: the context is polled
// between core-count candidates, so a deadline set by the CLI's --timeout
// flag (or an APS-level cancellation) stops the scan promptly.
func (m Model) OptimizeCtx(ctx context.Context, opts Options) (Result, error) {
	if err := m.App.Validate(); err != nil {
		return Result{}, err
	}
	opts.fill(m.Chip)
	regime := m.ClassifyRegime()

	ctx, optSp := obs.TracerFrom(ctx).Start(ctx, "core.optimize",
		obs.S("app", m.App.Name), obs.S("regime", regime.String()), obs.I("max_n", int64(opts.MaxN)))
	defer optSp.Finish()

	type cand struct {
		d      chip.Design
		e      Eval
		method string
	}
	better := func(a, b cand) bool { // is a better than b?
		if regime == MinimizeTime {
			return a.e.Time < b.e.Time
		}
		return a.e.Throughput > b.e.Throughput
	}
	var best *cand
	evals := 0
	tryN := func(n int) {
		if n < 1 || n > opts.MaxN {
			return
		}
		d, method, cnt, err := m.optimizeAreas(ctx, n, opts)
		evals += cnt
		if err != nil {
			return
		}
		e, err := m.Evaluate(d)
		if err != nil {
			return
		}
		c := cand{d: d, e: e, method: method}
		if best == nil || better(c, *best) {
			best = &c
		}
	}

	// Coarse sweep: all small N, then geometric spacing.
	seen := map[int]bool{}
	sweep := []int{}
	for n := 1; n <= 16 && n <= opts.MaxN; n++ {
		sweep = append(sweep, n)
		seen[n] = true
	}
	for f := 20.0; f <= float64(opts.MaxN); f *= 1.25 {
		n := int(f)
		if !seen[n] {
			sweep = append(sweep, n)
			seen[n] = true
		}
	}
	if !seen[opts.MaxN] {
		sweep = append(sweep, opts.MaxN)
	}
	for _, n := range sweep {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("core: optimize interrupted: %w", err)
		}
		tryN(n)
	}
	if best == nil {
		return Result{}, fmt.Errorf("core: no feasible design up to N=%d", opts.MaxN)
	}
	// Local integer refinement around the best coarse N.
	for radius := best.d.N / 4; radius >= 1; radius = radius / 2 {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("core: optimize interrupted: %w", err)
		}
		n0 := best.d.N
		for _, n := range []int{n0 - radius, n0 + radius} {
			if !seen[n] {
				seen[n] = true
				tryN(n)
			}
		}
		if radius == 1 {
			break
		}
	}
	optSp.Annotate(obs.I("n", int64(best.d.N)), obs.I("evaluations", int64(evals)))
	return Result{
		Design:      best.d,
		Eval:        best.e,
		Regime:      regime,
		Method:      best.method,
		Evaluations: evals,
	}, nil
}
