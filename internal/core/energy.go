package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chip"
	"repro/internal/solve"
)

// PowerModel is the §VII energy extension: a first-order CMP power model
// in the style of Cho & Melhem's "corollaries to Amdahl's law for energy".
// Active logic burns dynamic power proportional to its area; every
// powered-on transistor leaks statically; caches switch at a fraction of
// core activity.
type PowerModel struct {
	DynamicPerMM2 float64 // dynamic power per mm² of active core logic (W)
	StaticPerMM2  float64 // leakage per mm² of powered silicon (W)
	CacheActivity float64 // cache dynamic power relative to core logic (0..1)
	UncorePower   float64 // fixed NoC/MC/IO power (W)
}

// DefaultPowerModel returns constants resembling a 22 nm server part:
// ~1 W/mm² dynamic at full activity, 15% leakage, caches at 20% activity.
func DefaultPowerModel() PowerModel {
	return PowerModel{DynamicPerMM2: 1.0, StaticPerMM2: 0.15, CacheActivity: 0.2, UncorePower: 10}
}

// Validate checks the power constants.
func (p PowerModel) Validate() error {
	switch {
	case p.DynamicPerMM2 < 0 || p.StaticPerMM2 < 0 || p.UncorePower < 0:
		return fmt.Errorf("core: negative power constants %+v", p)
	case p.CacheActivity < 0 || p.CacheActivity > 1:
		return fmt.Errorf("core: cache activity %v outside [0,1]", p.CacheActivity)
	}
	return nil
}

// phasePower returns chip power with `active` of the design's N cores
// busy (the rest idle, leaking only).
func (p PowerModel) phasePower(d chip.Design, active int) float64 {
	cacheArea := d.L1Area + d.L2Area
	dynamic := float64(active) * (d.CoreArea + p.CacheActivity*cacheArea) * p.DynamicPerMM2
	static := float64(d.N) * d.PerCore() * p.StaticPerMM2
	return dynamic + static + p.UncorePower
}

// EnergyEval extends a design evaluation with power and energy terms.
type EnergyEval struct {
	Eval
	SeqPower float64 // chip power during the sequential phase (1 core active)
	ParPower float64 // chip power during the parallel phase (N cores active)
	Energy   float64 // joule-equivalent (power × normalized time)
	EDP      float64 // energy × delay
	ED2P     float64 // energy × delay²
}

// EvaluateEnergy computes the energy-extended objective of §VII: the
// sequential portion runs with one active core, the parallel portion with
// all N, and energy integrates chip power over the Eq. 10 time split.
func (m Model) EvaluateEnergy(d chip.Design, pm PowerModel) (EnergyEval, error) {
	if err := pm.Validate(); err != nil {
		return EnergyEval{}, err
	}
	e, err := m.Evaluate(d)
	if err != nil {
		return EnergyEval{}, err
	}
	out := EnergyEval{Eval: e}
	out.SeqPower = pm.phasePower(d, 1)
	out.ParPower = pm.phasePower(d, d.N)

	fseq := m.App.Fseq
	seqTime := m.App.IC0 * e.CPI * fseq
	parTime := m.App.IC0 * e.CPI * e.G * (1 - fseq) / float64(d.N)
	out.Energy = out.SeqPower*seqTime + out.ParPower*parTime
	out.EDP = out.Energy * e.Time
	out.ED2P = out.EDP * e.Time
	return out, nil
}

// EnergyObjective selects the §VII multi-objective target.
type EnergyObjective int

const (
	// MinEnergy minimizes total energy.
	MinEnergy EnergyObjective = iota
	// MinEDP minimizes the energy-delay product.
	MinEDP
	// MinED2P minimizes energy × delay².
	MinED2P
)

func (o EnergyObjective) String() string {
	switch o {
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-EDP"
	case MinED2P:
		return "min-ED2P"
	}
	return "unknown"
}

// score extracts the objective value.
func (o EnergyObjective) score(e EnergyEval) float64 {
	switch o {
	case MinEnergy:
		return e.Energy
	case MinEDP:
		return e.EDP
	default:
		return e.ED2P
	}
}

// OptimizeEnergy solves the energy-extended design problem: the same
// N-scan + constrained-area-split structure as Optimize, scored by the
// chosen energy objective.
func (m Model) OptimizeEnergy(pm PowerModel, obj EnergyObjective, opts Options) (chip.Design, EnergyEval, error) {
	if err := m.App.Validate(); err != nil {
		return chip.Design{}, EnergyEval{}, err
	}
	if err := pm.Validate(); err != nil {
		return chip.Design{}, EnergyEval{}, err
	}
	opts.fill(m.Chip)

	var bestD chip.Design
	var bestE EnergyEval
	bestScore := math.Inf(1)
	found := false
	tryN := func(n int) {
		d, _, _, err := m.optimizeAreasScored(n, opts, func(d chip.Design) float64 {
			e, err := m.EvaluateEnergy(d, pm)
			if err != nil {
				return math.Inf(1)
			}
			return obj.score(e)
		})
		if err != nil {
			return
		}
		e, err := m.EvaluateEnergy(d, pm)
		if err != nil {
			return
		}
		if s := obj.score(e); s < bestScore {
			bestScore, bestD, bestE, found = s, d, e, true
		}
	}
	seen := map[int]bool{}
	for n := 1; n <= 16 && n <= opts.MaxN; n++ {
		tryN(n)
		seen[n] = true
	}
	for f := 20.0; f <= float64(opts.MaxN); f *= 1.3 {
		if n := int(f); !seen[n] {
			tryN(n)
			seen[n] = true
		}
	}
	if !seen[opts.MaxN] {
		tryN(opts.MaxN)
	}
	if !found {
		return chip.Design{}, EnergyEval{}, fmt.Errorf("core: no feasible energy design up to N=%d", opts.MaxN)
	}
	return bestD, bestE, nil
}

// ParetoPoint is one non-dominated (time, energy) design.
type ParetoPoint struct {
	Design chip.Design
	Time   float64
	Energy float64
}

// ParetoFrontier samples the design space (geometric N sweep × candidate
// area splits) and returns the time/energy Pareto-optimal set, sorted by
// increasing time. It is the multi-objective exploration interface the
// paper's conclusion sketches.
func (m Model) ParetoFrontier(pm PowerModel, opts Options) ([]ParetoPoint, error) {
	if err := m.App.Validate(); err != nil {
		return nil, err
	}
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	opts.fill(m.Chip)
	budgetTotal := m.Chip.TotalArea - m.Chip.FixedArea

	splits := [][3]float64{
		{0.6, 0.15, 0.25}, {0.45, 0.2, 0.35}, {0.3, 0.2, 0.5}, {0.7, 0.1, 0.2}, {0.2, 0.3, 0.5},
	}
	var pts []ParetoPoint
	for n := 1; n <= opts.MaxN; n = nextN(n) {
		per := budgetTotal / float64(n)
		if per < 3*opts.MinArea {
			break
		}
		for _, w := range splits {
			d := chip.Design{N: n, CoreArea: per * w[0], L1Area: per * w[1], L2Area: per * w[2]}
			e, err := m.EvaluateEnergy(d, pm)
			if err != nil {
				continue
			}
			pts = append(pts, ParetoPoint{Design: d, Time: e.Time, Energy: e.Energy})
		}
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("core: no feasible designs for the Pareto sweep")
	}
	// Extract the non-dominated set.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Time != pts[j].Time { //lint:allow floatguard exact tie-break keeps the Pareto sort deterministic
			return pts[i].Time < pts[j].Time
		}
		return pts[i].Energy < pts[j].Energy
	})
	var frontier []ParetoPoint
	bestEnergy := math.Inf(1)
	for _, p := range pts {
		if p.Energy < bestEnergy {
			frontier = append(frontier, p)
			bestEnergy = p.Energy
		}
	}
	return frontier, nil
}

func nextN(n int) int {
	step := n / 4
	if step < 1 {
		step = 1
	}
	return n + step
}

// optimizeAreasScored is OptimizeAreas with a caller-supplied score.
// Unlike the time objective — where filling the die is always at least as
// good — energy objectives may prefer *dark silicon* (unused area leaks
// nothing), so a third free variable scales how much of the per-core
// budget is actually provisioned; Eq. 12 becomes an inequality here.
func (m Model) optimizeAreasScored(n int, opts Options, score func(chip.Design) float64) (chip.Design, string, int, error) {
	budget := (m.Chip.TotalArea - m.Chip.FixedArea) / float64(n)
	if budget < 3*opts.MinArea {
		return chip.Design{}, "", 0, fmt.Errorf("core: %d cores leave only %.3g mm² per core", n, budget)
	}
	count := 0
	design := func(u []float64) chip.Design {
		e0 := math.Exp(u[0])
		e1 := math.Exp(u[1])
		sum := e0 + e1 + 1
		// Fill factor in [0.05, 1] through a logistic map.
		fill := 0.05 + 0.95/(1+math.Exp(-u[2]))
		usable := budget*fill - 3*opts.MinArea
		if usable < 0 {
			usable = 0
		}
		return chip.Design{
			N:        n,
			CoreArea: opts.MinArea + usable*e0/sum,
			L1Area:   opts.MinArea + usable*e1/sum,
			L2Area:   opts.MinArea + usable*1/sum,
		}
	}
	objU := func(u []float64) float64 {
		count++
		return score(design(u))
	}
	bestU, bestS := nmMinimize(objU, []float64{1, 0, 2})
	u2, s2 := nmMinimize(objU, []float64{-1, 1, 0})
	if s2 < bestS {
		bestU, bestS = u2, s2
	}
	if math.IsInf(bestS, 1) {
		return chip.Design{}, "", count, fmt.Errorf("core: no feasible split for N=%d", n)
	}
	return design(bestU), "nelder-mead", count, nil
}

func nmMinimize(obj func([]float64) float64, x0 []float64) ([]float64, float64) {
	return solve.NelderMead(obj, x0, solve.NelderMeadOpts{MaxIter: 300, Tol: 1e-10})
}
