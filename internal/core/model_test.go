package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/chip"
	"repro/internal/speedup"
)

func testModel(app App) Model {
	return Model{Chip: chip.DefaultConfig(), App: app}
}

func midDesign(n int) chip.Design {
	return chip.Design{N: n, CoreArea: 4, L1Area: 1, L2Area: 4}
}

func TestEvaluateBasics(t *testing.T) {
	m := testModel(FluidanimateApp())
	e, err := m.Evaluate(midDesign(16))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if e.CPI <= e.CPIExe {
		t.Fatalf("CPI %v not above CPI_exe %v", e.CPI, e.CPIExe)
	}
	if e.CAMAT <= 0 || e.AMAT < e.CAMAT {
		t.Fatalf("AMAT %v, C-AMAT %v inconsistent", e.AMAT, e.CAMAT)
	}
	if e.C < 1 {
		t.Fatalf("concurrency %v below 1", e.C)
	}
	if e.Time <= 0 || e.Work <= 0 || e.Throughput <= 0 {
		t.Fatalf("degenerate evaluation %+v", e)
	}
	if e.L1MR <= 0 || e.L1MR > 1 || e.L2MR <= 0 || e.L2MR > 1 {
		t.Fatalf("miss rates out of range: %v %v", e.L1MR, e.L2MR)
	}
	p := m.CamatParams(e)
	if err := p.Validate(); err != nil {
		t.Fatalf("CamatParams invalid: %v", err)
	}
	if math.Abs(p.CAMAT()-e.CAMAT) > 1e-9*(1+e.CAMAT) {
		t.Fatalf("params C-AMAT %v != eval %v", p.CAMAT(), e.CAMAT)
	}
}

func TestEvaluateRejectsInfeasible(t *testing.T) {
	m := testModel(FluidanimateApp())
	if _, err := m.Evaluate(chip.Design{N: 1000, CoreArea: 4, L1Area: 1, L2Area: 4}); err == nil {
		t.Fatal("over-budget design evaluated")
	}
	bad := m
	bad.App.Fseq = 2
	if _, err := bad.Evaluate(midDesign(4)); err == nil {
		t.Fatal("invalid app accepted")
	}
	if got := m.TimeAt(chip.Design{N: 1000, CoreArea: 4, L1Area: 1, L2Area: 4}); !math.IsInf(got, 1) {
		t.Fatalf("TimeAt infeasible = %v, want +Inf", got)
	}
	if got := m.ThroughputAt(chip.Design{N: 1000, CoreArea: 4, L1Area: 1, L2Area: 4}); got != 0 {
		t.Fatalf("ThroughputAt infeasible = %v, want 0", got)
	}
}

func TestConcurrencyPinning(t *testing.T) {
	// With C_H = C_M = C and ratios 1, C-AMAT = AMAT/C exactly.
	base := StencilApp()
	for _, c := range []float64{1, 4, 8} {
		m := testModel(base.WithConcurrency(c))
		e, err := m.Evaluate(midDesign(8))
		if err != nil {
			t.Fatalf("Evaluate(C=%v): %v", c, err)
		}
		if math.Abs(e.C-c) > 1e-6*c {
			t.Fatalf("measured C = %v, want %v", e.C, c)
		}
		if math.Abs(e.CAMAT-e.AMAT/c) > 1e-9*(1+e.AMAT) {
			t.Fatalf("C-AMAT %v != AMAT/C %v", e.CAMAT, e.AMAT/c)
		}
	}
}

func TestTimeIncreasesWithFmem(t *testing.T) {
	// Fig. 8 vs Fig. 9: execution time grows with memory access frequency.
	app := StencilApp().WithConcurrency(4)
	app.G = speedup.PowerLaw(1.5)
	app.GOrder = 1.5
	d := midDesign(32)
	prev := 0.0
	for _, fmem := range []float64{0.1, 0.3, 0.6, 0.9} {
		a := app
		a.Fmem = fmem
		e, err := testModel(a).Evaluate(d)
		if err != nil {
			t.Fatalf("Evaluate(fmem=%v): %v", fmem, err)
		}
		if e.Time <= prev {
			t.Fatalf("T(fmem=%v) = %v not above previous %v", fmem, e.Time, prev)
		}
		prev = e.Time
	}
}

func TestThroughputDecreasesWithFmem(t *testing.T) {
	// Fig. 10 vs Fig. 11: throughput W/T falls with fmem.
	app := StencilApp().WithConcurrency(4)
	d := midDesign(32)
	prev := math.Inf(1)
	for _, fmem := range []float64{0.1, 0.3, 0.6, 0.9} {
		a := app
		a.Fmem = fmem
		e, err := testModel(a).Evaluate(d)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		if e.Throughput >= prev {
			t.Fatalf("W/T(fmem=%v) = %v not below previous %v", fmem, e.Throughput, prev)
		}
		prev = e.Throughput
	}
}

func TestHigherConcurrencyNeverSlower(t *testing.T) {
	// §IV: T(C=8) ≤ T(C=4) ≤ T(C=1) at every design point.
	app := StencilApp()
	app.G = speedup.PowerLaw(1.5)
	app.GOrder = 1.5
	for _, n := range []int{1, 8, 40} {
		d := midDesign(n)
		var prev float64 = math.Inf(1)
		for _, c := range []float64{1, 4, 8} {
			e, err := testModel(app.WithConcurrency(c)).Evaluate(d)
			if err != nil {
				t.Fatalf("Evaluate(N=%d,C=%v): %v", n, c, err)
			}
			if e.Time >= prev {
				t.Fatalf("N=%d: T(C=%v)=%v not below %v", n, c, e.Time, prev)
			}
			prev = e.Time
		}
	}
}

func TestContentionRaisesLatencyWithN(t *testing.T) {
	// More cores on a fixed memory system must not lower DRAM latency.
	app := StencilApp().WithConcurrency(4)
	m := testModel(app)
	var prev float64
	for _, n := range []int{1, 4, 16, 40} {
		e, err := m.Evaluate(midDesign(n))
		if err != nil {
			t.Fatalf("Evaluate(N=%d): %v", n, err)
		}
		if e.MemLat < prev-1e-9 {
			t.Fatalf("loaded latency fell from %v to %v at N=%d", prev, e.MemLat, n)
		}
		prev = e.MemLat
	}
}

func TestClassifyRegime(t *testing.T) {
	cases := []struct {
		g     speedup.ScaleFunc
		order float64
		want  Regime
	}{
		{speedup.FixedSize(), 0, MinimizeTime},
		{speedup.PowerLaw(0.5), 0.5, MinimizeTime},
		{speedup.Linear(), 1, MaximizeThroughput},
		{speedup.PowerLaw(1.5), 1.5, MaximizeThroughput},
	}
	for _, c := range cases {
		app := StencilApp()
		app.G = c.g
		app.GOrder = c.order
		if got := testModel(app).ClassifyRegime(); got != c.want {
			t.Errorf("order %v: regime = %v, want %v", c.order, got, c.want)
		}
	}
	// Derived order when GOrder is unset.
	app := StencilApp()
	app.G = speedup.PowerLaw(1.5)
	app.GOrder = 0
	if got := testModel(app).ClassifyRegime(); got != MaximizeThroughput {
		t.Errorf("derived regime = %v, want maximize", got)
	}
	if MinimizeTime.String() == "" || MaximizeThroughput.String() == "" {
		t.Error("empty regime strings")
	}
}

func TestOptimizeAreasConstraintTight(t *testing.T) {
	m := testModel(FluidanimateApp())
	for _, n := range []int{1, 8, 64} {
		d, method, evals, err := m.OptimizeAreas(n, Options{})
		if err != nil {
			t.Fatalf("OptimizeAreas(%d): %v", n, err)
		}
		if method == "" || evals <= 0 {
			t.Fatalf("missing method/evals: %q, %d", method, evals)
		}
		used := m.Chip.AreaUsed(d)
		if math.Abs(used-m.Chip.TotalArea) > 1e-6*m.Chip.TotalArea {
			t.Fatalf("N=%d: constraint slack, used %v of %v", n, used, m.Chip.TotalArea)
		}
		if d.CoreArea <= 0 || d.L1Area <= 0 || d.L2Area <= 0 {
			t.Fatalf("non-positive areas: %v", d)
		}
	}
}

func TestOptimizeAreasBeatsNaiveSplits(t *testing.T) {
	m := testModel(FluidanimateApp())
	n := 16
	d, _, _, err := m.OptimizeAreas(n, Options{})
	if err != nil {
		t.Fatalf("OptimizeAreas: %v", err)
	}
	opt := m.TimeAt(d)
	budget := (m.Chip.TotalArea - m.Chip.FixedArea) / float64(n)
	for _, w := range [][3]float64{
		{0.8, 0.1, 0.1}, {0.1, 0.8, 0.1}, {0.1, 0.1, 0.8}, {1.0 / 3, 1.0 / 3, 1.0 / 3},
	} {
		naive := chip.Design{N: n, CoreArea: budget * w[0], L1Area: budget * w[1], L2Area: budget * w[2]}
		if tn := m.TimeAt(naive); tn < opt*(1-1e-6) {
			t.Fatalf("naive split %v beats optimizer: %v < %v", w, tn, opt)
		}
	}
}

func TestOptimizeSublinearFindsFiniteN(t *testing.T) {
	// g(N) = N^0.5 < O(N): a finite N minimizes T, and pushing far beyond
	// it is strictly worse.
	app := FluidanimateApp()
	app.G = speedup.PowerLaw(0.5)
	app.GOrder = 0.5
	m := testModel(app)
	res, err := m.Optimize(Options{MaxN: 256})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Regime != MinimizeTime {
		t.Fatalf("regime = %v", res.Regime)
	}
	if res.Design.N < 1 || res.Design.N > 256 {
		t.Fatalf("optimal N = %d out of range", res.Design.N)
	}
	if res.Evaluations <= 0 {
		t.Fatal("no evaluations recorded")
	}
	// The far edges should not beat the optimum.
	for _, n := range []int{1, 256} {
		if n == res.Design.N {
			continue
		}
		d, _, _, err := m.OptimizeAreas(n, Options{MaxN: 256})
		if err != nil {
			continue
		}
		if tEdge := m.TimeAt(d); tEdge < res.Eval.Time*(1-1e-6) {
			t.Fatalf("N=%d beats reported optimum: %v < %v", n, tEdge, res.Eval.Time)
		}
	}
}

func TestOptimizeSuperlinearMaximizesThroughput(t *testing.T) {
	app := TMMApp() // g = N^1.5
	m := testModel(app)
	res, err := m.Optimize(Options{MaxN: 400})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Regime != MaximizeThroughput {
		t.Fatalf("regime = %v", res.Regime)
	}
	if res.Eval.Throughput <= 0 {
		t.Fatal("throughput not positive")
	}
	// A single-core design should achieve strictly less throughput.
	d1, _, _, err := m.OptimizeAreas(1, Options{MaxN: 400})
	if err != nil {
		t.Fatalf("OptimizeAreas(1): %v", err)
	}
	if tp1 := m.ThroughputAt(d1); tp1 >= res.Eval.Throughput {
		t.Fatalf("single core throughput %v ≥ optimum %v", tp1, res.Eval.Throughput)
	}
}

func TestAllocateCoresFig7Ordering(t *testing.T) {
	cfg := chip.DefaultConfig()
	apps := []App{SequentialHeavyApp(), ParallelConcurrentApp(), BalancedApp()}
	allocs, err := AllocateCores(cfg, apps, 64)
	if err != nil {
		t.Fatalf("AllocateCores: %v", err)
	}
	var total int
	for _, al := range allocs {
		total += al.Cores
		if al.Cores < 1 {
			t.Fatalf("app %q got %d cores", al.App.Name, al.Cores)
		}
	}
	if total > 64 {
		t.Fatalf("allocated %d cores of 64", total)
	}
	// Fig. 7 ordering: seq-heavy < balanced < par-concurrent.
	if !(allocs[0].Cores < allocs[2].Cores && allocs[2].Cores < allocs[1].Cores) {
		t.Fatalf("allocation ordering wrong: seq=%d balanced=%d par=%d",
			allocs[0].Cores, allocs[2].Cores, allocs[1].Cores)
	}
	// The parallel app should also achieve the largest speedup.
	if allocs[1].Speedup <= allocs[0].Speedup {
		t.Fatalf("par-concurrent speedup %v not above seq-heavy %v",
			allocs[1].Speedup, allocs[0].Speedup)
	}
}

func TestAllocateCoresErrors(t *testing.T) {
	cfg := chip.DefaultConfig()
	if _, err := AllocateCores(cfg, nil, 8); err == nil {
		t.Error("empty app list accepted")
	}
	if _, err := AllocateCores(cfg, []App{StencilApp(), TMMApp()}, 1); err == nil {
		t.Error("fewer cores than apps accepted")
	}
	bad := StencilApp()
	bad.Fseq = -1
	if _, err := AllocateCores(cfg, []App{bad}, 4); err == nil {
		t.Error("invalid app accepted")
	}
}

func TestSpeedupAt(t *testing.T) {
	app := StencilApp().WithConcurrency(4)
	m := testModel(app)
	s, err := m.SpeedupAt(midDesign(32))
	if err != nil {
		t.Fatalf("SpeedupAt: %v", err)
	}
	if s <= 1 {
		t.Fatalf("speedup %v not above 1 for a parallel app", s)
	}
	if _, err := m.SpeedupAt(chip.Design{N: 10000, CoreArea: 4, L1Area: 1, L2Area: 4}); err == nil {
		t.Fatal("infeasible design accepted")
	}
}

func TestAppValidate(t *testing.T) {
	good := FluidanimateApp()
	if err := good.Validate(); err != nil {
		t.Fatalf("good app rejected: %v", err)
	}
	for name, mutate := range map[string]func(*App){
		"fseq":     func(a *App) { a.Fseq = 1.5 },
		"fmem":     func(a *App) { a.Fmem = -0.1 },
		"overlap":  func(a *App) { a.Overlap = 2 },
		"ch":       func(a *App) { a.CH = 0.5 },
		"cm":       func(a *App) { a.CM = 0 },
		"pmrratio": func(a *App) { a.PMRRatio = 1.5 },
		"g nil":    func(a *App) { a.G = nil },
		"ic0":      func(a *App) { a.IC0 = 0 },
		"g(1)!=1":  func(a *App) { a.G = func(n float64) float64 { return 2 * n } },
		"NaN fseq": func(a *App) { a.Fseq = math.NaN() },
		"NaN fmem": func(a *App) { a.Fmem = math.NaN() },
		"NaN ch":   func(a *App) { a.CH = math.NaN() },
		"Inf ch":   func(a *App) { a.CH = math.Inf(1) },
		"Inf cm":   func(a *App) { a.CM = math.Inf(1) },
		"NaN pmr":  func(a *App) { a.PMRRatio = math.NaN() },
		"Inf pamp": func(a *App) { a.PAMPRatio = math.Inf(1) },
		"Inf ic0":  func(a *App) { a.IC0 = math.Inf(1) },
		"NaN gord": func(a *App) { a.GOrder = math.NaN() },
		"g(1) NaN": func(a *App) { a.G = func(float64) float64 { return math.NaN() } },
	} {
		a := good
		mutate(&a)
		err := a.Validate()
		if err == nil {
			t.Errorf("%s: invalid app accepted", name)
			continue
		}
		if !errors.Is(err, ErrInvalidApp) {
			t.Errorf("%s: error %v does not wrap ErrInvalidApp", name, err)
		}
	}
}

func TestPresetAppsValidate(t *testing.T) {
	for _, a := range []App{
		TMMApp(), StencilApp(), FFTApp(), FluidanimateApp(),
		SequentialHeavyApp(), ParallelConcurrentApp(), BalancedApp(),
	} {
		if err := a.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", a.Name, err)
		}
	}
}

func TestLagrangeSignClaim(t *testing.T) {
	// §III-C: ∂L/∂N > 0 (time grows with N, so no finite minimizer) iff
	// g(N) ≥ O(N). Check the numeric sign of dJ_D/dN at large N for
	// exponents on both sides of the boundary, holding the per-core area
	// split fixed (the partial derivative of Eq. 13).
	base := FluidanimateApp()
	dTdN := func(b float64, n int) float64 {
		app := base
		app.G = speedup.PowerLaw(b)
		app.GOrder = b
		cfg := chip.DefaultConfig()
		cfg.TotalArea = 1e9 // area not binding for the partial in N
		m := Model{Chip: cfg, App: app}
		d1 := chip.Design{N: n, CoreArea: 4, L1Area: 1, L2Area: 4}
		d2 := d1
		d2.N = n + 1
		return m.TimeAt(d2) - m.TimeAt(d1)
	}
	for _, b := range []float64{1.0, 1.25, 1.5} {
		if dTdN(b, 200) <= 0 {
			t.Errorf("b=%v: dJ/dN ≤ 0 at N=200, want > 0 (g ≥ O(N))", b)
		}
	}
	for _, b := range []float64{0, 0.25, 0.5} {
		// Below the boundary the workload term shrinks with N; at small N
		// (before contention dominates) time falls with N.
		if dTdN(b, 4) >= 0 {
			t.Errorf("b=%v: dJ/dN ≥ 0 at N=4, want < 0 (g < O(N))", b)
		}
	}
}
