package core

import (
	"fmt"
	"math"

	"repro/internal/chip"
	"repro/internal/solve"
)

// AsymDesign is an asymmetric chip-multiprocessor design point (§VII: the
// extension of C²-Bound to asymmetric CMP DSE): one large core of area
// BigArea executes the sequential portion, and N small cores of area
// SmallArea each execute the parallel portion (the big core joins the
// parallel phase as well, following Hill & Marty's asymmetric topology).
// Cache areas are per-core as in the symmetric model; the big core gets
// the same L1/L2 slice as a small core scaled by its area ratio.
type AsymDesign struct {
	N         int     // number of small cores
	BigArea   float64 // big-core logic area
	SmallArea float64 // small-core logic area
	L1Area    float64 // per-small-core private L1
	L2Area    float64 // per-small-core L2 slice
}

// cacheScale is the factor by which the big core's cache slices exceed a
// small core's (proportional to the square root of the core-area ratio,
// mirroring how commercial big.LITTLE designs provision caches).
func (d AsymDesign) cacheScale() float64 {
	if d.SmallArea <= 0 {
		return 1
	}
	return math.Sqrt(d.BigArea / d.SmallArea)
}

// AreaUsed returns the design's total silicon, including the shared area.
func (c AsymModel) AreaUsed(d AsymDesign) float64 {
	bigCaches := (d.L1Area + d.L2Area) * d.cacheScale()
	return d.BigArea + bigCaches + float64(d.N)*(d.SmallArea+d.L1Area+d.L2Area) + c.Chip.FixedArea
}

// CheckFeasible verifies the asymmetric design fits the budget.
func (c AsymModel) CheckFeasible(d AsymDesign) error {
	switch {
	case d.N < 0:
		return fmt.Errorf("core: negative small-core count %d", d.N)
	case d.BigArea <= 0 || d.SmallArea < 0 || d.L1Area <= 0 || d.L2Area < 0:
		return fmt.Errorf("core: non-positive asymmetric areas %+v", d)
	case d.N > 0 && d.SmallArea <= 0:
		return fmt.Errorf("core: small cores need positive area")
	}
	if used := c.AreaUsed(d); used > c.Chip.TotalArea*(1+1e-9) {
		return fmt.Errorf("core: asymmetric design uses %.4g mm², budget %.4g", used, c.Chip.TotalArea)
	}
	return nil
}

// AsymModel couples a chip and application for asymmetric DSE.
type AsymModel struct {
	Chip chip.Config
	App  App
}

// AsymEval is an evaluated asymmetric design.
type AsymEval struct {
	Design AsymDesign

	SeqCPI     float64 // big core's CPI on the sequential portion
	ParCPI     float64 // small cores' CPI on the parallel portion
	SeqTime    float64
	ParTime    float64
	Time       float64 // J_D
	Work       float64
	Throughput float64
	G          float64
}

// Evaluate computes the asymmetric C²-Bound objective. The sequential
// portion runs on the big core alone; the parallel portion runs on the
// N small cores plus the big core, which contributes capacity
// perf(big)/perf(small) small-core equivalents (Pollack's rule).
func (m AsymModel) Evaluate(d AsymDesign) (AsymEval, error) {
	if err := m.App.Validate(); err != nil {
		return AsymEval{}, err
	}
	if err := m.CheckFeasible(d); err != nil {
		return AsymEval{}, err
	}
	e := AsymEval{Design: d}

	scale := d.cacheScale()
	seq, err := m.phaseCPI(d.BigArea, d.L1Area*scale, d.L2Area*scale, 1)
	if err != nil {
		return AsymEval{}, err
	}
	e.SeqCPI = seq

	// Parallel phase: demand comes from all participating cores.
	totalPar := float64(d.N)
	var par float64
	if d.N > 0 {
		par, err = m.phaseCPI(d.SmallArea, d.L1Area, d.L2Area, d.N)
		if err != nil {
			return AsymEval{}, err
		}
		// Big-core contribution in small-core equivalents.
		totalPar += math.Sqrt(d.BigArea / d.SmallArea)
	} else {
		// Degenerate: single big core does everything.
		par = seq
		totalPar = 1
	}
	e.ParCPI = par

	nEff := totalPar
	e.G = m.App.G(math.Max(1, float64(d.N+1)))
	fseq := m.App.Fseq
	e.SeqTime = m.App.IC0 * seq * fseq
	e.ParTime = m.App.IC0 * par * e.G * (1 - fseq) / nEff
	e.Time = e.SeqTime + e.ParTime
	e.Work = m.App.IC0 * (fseq + (1-fseq)*e.G)
	if e.Time > 0 {
		e.Throughput = e.Work / e.Time
	}
	return e, nil
}

// phaseCPI evaluates the per-instruction cost of a phase on cores of the
// given logic/cache areas, with n cores sharing the memory system.
func (m AsymModel) phaseCPI(coreArea, l1Area, l2Area float64, n int) (float64, error) {
	if coreArea <= 0 || l1Area <= 0 {
		return 0, fmt.Errorf("core: non-positive phase areas")
	}
	cpiExe := m.Chip.Pollack.CPIExe(coreArea)
	l1KB := m.Chip.L1DensityKB * l1Area
	l2KB := m.Chip.L2DensityKB * l2Area
	mr1 := m.App.L1Miss.At(l1KB)
	mr2 := m.App.L2Miss.At(l2KB)
	demand := float64(n) * m.App.Fmem * mr1 * mr2 / math.Max(cpiExe, 1e-9)
	memLat := m.Chip.LoadedMemLatency(demand)
	amp := m.Chip.L2HitCycles + mr2*memLat
	camat := m.Chip.L1HitCycles/m.App.CH + m.App.PMRRatio*mr1*(m.App.PAMPRatio*amp)/m.App.CM
	return cpiExe + m.App.Fmem*camat*(1-m.App.Overlap), nil
}

// OptimizeAsym searches the asymmetric space: for each small-core count
// it optimizes the area split (big core, small core, caches) by simplex
// in the constrained subspace, then selects across N by the §III-C
// regime rule. It returns the best design and its evaluation.
func (m AsymModel) OptimizeAsym(opts Options) (AsymDesign, AsymEval, error) {
	if err := m.App.Validate(); err != nil {
		return AsymDesign{}, AsymEval{}, err
	}
	opts.fill(m.Chip)
	regime := Model{Chip: m.Chip, App: m.App}.ClassifyRegime()

	budget := m.Chip.TotalArea - m.Chip.FixedArea
	better := func(a, b AsymEval) bool {
		if regime == MinimizeTime {
			return a.Time < b.Time
		}
		return a.Throughput > b.Throughput
	}
	var bestD AsymDesign
	var bestE AsymEval
	found := false

	tryN := func(n int) {
		// Four weights through softmax: big core, small core (per core),
		// L1 (per core), L2 (per core). The constraint is kept tight by
		// construction.
		design := func(u []float64) AsymDesign {
			e := make([]float64, 4)
			sum := 0.0
			for i := range e {
				if i < len(u) {
					e[i] = math.Exp(u[i])
				} else {
					e[i] = 1
				}
				sum += e[i]
			}
			// Budget split: big core takes fraction e0; the remaining is
			// divided per small core. The cache-scale coupling makes the
			// constraint nonlinear, so solve the per-core share once the
			// proportions are fixed.
			w := make([]float64, 4)
			for i := range w {
				w[i] = e[i] / sum
			}
			d := AsymDesign{N: n}
			d.BigArea = math.Max(opts.MinArea, w[0]*budget)
			if n == 0 {
				// All non-big budget goes to the big core's caches.
				rem := budget - d.BigArea
				d.SmallArea = d.BigArea // scale 1
				d.L1Area = math.Max(opts.MinArea, rem*w[2]/(w[2]+w[3]))
				d.L2Area = math.Max(0, rem-d.L1Area)
				return d
			}
			rem := budget - d.BigArea
			if rem < float64(n)*3*opts.MinArea {
				rem = float64(n) * 3 * opts.MinArea
			}
			perCore := rem / float64(n)
			tot := w[1] + w[2] + w[3]
			d.SmallArea = math.Max(opts.MinArea, perCore*w[1]/tot)
			d.L1Area = math.Max(opts.MinArea, perCore*w[2]/tot)
			d.L2Area = math.Max(opts.MinArea, perCore*w[3]/tot)
			// The big core's scaled caches eat extra area; shrink the
			// per-core allocation until feasible.
			for i := 0; i < 60 && m.AreaUsed(d) > m.Chip.TotalArea; i++ {
				d.SmallArea *= 0.97
				d.L1Area *= 0.97
				d.L2Area *= 0.97
				d.BigArea *= 0.99
			}
			return d
		}
		obj := func(u []float64) float64 {
			e, err := m.Evaluate(design(u))
			if err != nil {
				return math.Inf(1)
			}
			if regime == MinimizeTime {
				return e.Time
			}
			return -e.Throughput
		}
		u, _ := solve.NelderMead(obj, []float64{1, 0, -1, -0.5}, solve.NelderMeadOpts{MaxIter: 300, Tol: 1e-10})
		d := design(u)
		e, err := m.Evaluate(d)
		if err != nil {
			return
		}
		if !found || better(e, bestE) {
			bestD, bestE, found = d, e, true
		}
	}

	tryN(0)
	seen := map[int]bool{0: true}
	for n := 1; n <= 16 && n <= opts.MaxN; n++ {
		tryN(n)
		seen[n] = true
	}
	for f := 20.0; f <= float64(opts.MaxN); f *= 1.3 {
		if n := int(f); !seen[n] {
			tryN(n)
			seen[n] = true
		}
	}
	if !seen[opts.MaxN] {
		tryN(opts.MaxN)
	}
	if !found {
		return AsymDesign{}, AsymEval{}, fmt.Errorf("core: no feasible asymmetric design")
	}
	return bestD, bestE, nil
}

// DynamicEval evaluates the dynamic-CMP variant: during the sequential
// phase the whole active silicon fuses into one Pollack-rule core of the
// full core-area budget (Hill & Marty's dynamic topology); the parallel
// phase behaves as the symmetric design. It reuses the symmetric design
// point d and returns the resulting time.
func (m AsymModel) DynamicEval(d chip.Design) (float64, error) {
	sym := Model{Chip: m.Chip, App: m.App}
	e, err := sym.Evaluate(d)
	if err != nil {
		return 0, err
	}
	// Sequential phase on the fused core: all core logic combined.
	fusedArea := float64(d.N) * d.CoreArea
	seqCPI, err := m.phaseCPI(fusedArea, d.L1Area*math.Sqrt(float64(d.N)), d.L2Area*math.Sqrt(float64(d.N)), 1)
	if err != nil {
		return 0, err
	}
	fseq := m.App.Fseq
	seqTime := m.App.IC0 * seqCPI * fseq
	parTime := m.App.IC0 * e.CPI * e.G * (1 - fseq) / float64(d.N)
	total := seqTime + parTime
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return 0, fmt.Errorf("core: dynamic-CMP time is not finite for %+v (seq=%v par=%v)", d, seqTime, parTime)
	}
	return total, nil
}
