package core

import (
	"fmt"
	"strings"
)

// Fingerprint returns a canonical identity of the model for engine
// memoization: it covers the chip configuration and every App parameter
// the Eq. 7-10 objective reads. The scale function g(N) cannot be hashed
// directly (it is code), so it is characterized by its values on a fixed
// probe grid together with GOrder; two apps whose g agree on the grid and
// in growth order are treated as equal, which holds for every g used in
// the repository (power laws and complexity-derived ratios are determined
// by far fewer samples).
func (m Model) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core.Model{chip=%+v app=%q fseq=%x fmem=%x ov=%x ch=%x cm=%x pmr=%x pamp=%x l1=%+v l2=%+v gorder=%x ic0=%x g=[",
		m.Chip, m.App.Name, m.App.Fseq, m.App.Fmem, m.App.Overlap,
		m.App.CH, m.App.CM, m.App.PMRRatio, m.App.PAMPRatio,
		m.App.L1Miss, m.App.L2Miss, m.App.GOrder, m.App.IC0)
	if m.App.G != nil {
		for _, n := range []float64{1, 2, 3, 5, 8, 16, 32, 64, 128} {
			fmt.Fprintf(&b, "%x,", m.App.G(n))
		}
	}
	b.WriteString("]}")
	return b.String()
}
