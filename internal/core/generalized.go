package core

import (
	"fmt"
	"math"

	"repro/internal/chip"
)

// DOPPhase is one entry of a workload's degree-of-parallelism profile:
// Fraction of the base instruction count executes at parallel degree
// Degree. The paper's two-phase form (f_seq at degree 1, the rest at
// degree N) is the special case with two entries.
type DOPPhase struct {
	Degree   int
	Fraction float64
}

// ValidateProfile checks a degree-of-parallelism profile: positive
// degrees, non-negative fractions summing to 1.
func ValidateProfile(profile []DOPPhase) error {
	if len(profile) == 0 {
		return fmt.Errorf("core: empty parallelism profile")
	}
	sum := 0.0
	for i, ph := range profile {
		if ph.Degree < 1 {
			return fmt.Errorf("core: phase %d has degree %d", i, ph.Degree)
		}
		if ph.Fraction < 0 {
			return fmt.Errorf("core: phase %d has negative fraction %v", i, ph.Fraction)
		}
		sum += ph.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("core: profile fractions sum to %v, want 1", sum)
	}
	return nil
}

// TwoPhaseProfile builds the classic (f_seq, N) profile used by Eq. 8.
func TwoPhaseProfile(fseq float64, n int) []DOPPhase {
	return []DOPPhase{
		{Degree: 1, Fraction: fseq},
		{Degree: n, Fraction: 1 - fseq},
	}
}

// TimeGeneralized evaluates the generalized objective of §III-A,
//
//	J_D = Σ_i g(i)·T_i / i
//
// where phase i of the profile holds fraction_i of the base workload at
// parallel degree min(degree_i, N): each phase's work scales with the
// memory available to the cores it can occupy, and runs on that many
// cores. With the two-phase profile it reduces exactly to Eq. 10.
func (m Model) TimeGeneralized(d chip.Design, profile []DOPPhase) (float64, error) {
	if err := ValidateProfile(profile); err != nil {
		return 0, err
	}
	e, err := m.Evaluate(d)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, ph := range profile {
		deg := ph.Degree
		if deg > d.N {
			deg = d.N
		}
		if ph.Fraction == 0 { //lint:allow floatguard exact zero skips empty phases
			continue
		}
		g := 1.0
		if deg > 1 {
			g = m.App.G(float64(deg))
		}
		total += m.App.IC0 * e.CPI * ph.Fraction * g / float64(deg)
	}
	return total, nil
}
