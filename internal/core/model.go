package core

import (
	"fmt"
	"math"

	"repro/internal/camat"
	"repro/internal/chip"
)

// Model couples a chip configuration with an application profile; it is
// the full C²-Bound model of §III.
type Model struct {
	Chip chip.Config
	App  App
}

// Eval is one evaluated design point: every intermediate quantity of
// Eq. 7–10 at the given design.
type Eval struct {
	Design chip.Design

	CPIExe float64 // Eq. 11
	L1MR   float64 // conventional L1 miss rate at the design's L1 capacity
	L2MR   float64 // local L2 miss rate at the design's L2 slice
	MemLat float64 // loaded DRAM latency (contention included)
	Rho    float64 // DRAM load factor demand/bandwidth

	AMP   float64 // average L1 miss penalty
	AMAT  float64 // sequential-view latency (Eq. 1)
	CAMAT float64 // concurrent-view latency (Eq. 2)
	C     float64 // data-access concurrency AMAT/C-AMAT (Eq. 3)

	CPI        float64 // CPI_exe + fmem·C-AMAT·(1−overlap), Eq. 7 per instruction
	Time       float64 // J_D of Eq. 10 (cycle time normalized to 1)
	Work       float64 // scaled problem size IC0·(fseq + (1−fseq)·g(N))
	Throughput float64 // Work/Time
	G          float64 // g(N)
}

// CamatParams packages an evaluated point's latency parameters in the
// camat.Params form, for cross-checking against detector measurements.
func (m Model) CamatParams(e Eval) camat.Params {
	return camat.Params{
		H:    m.Chip.L1HitCycles,
		MR:   e.L1MR,
		AMP:  e.AMP,
		CH:   m.App.CH,
		CM:   m.App.CM,
		PMR:  m.App.PMRRatio * e.L1MR,
		PAMP: m.App.PAMPRatio * e.AMP,
	}
}

// Evaluate computes the C²-Bound objective and all intermediates at
// design d. The loaded memory latency depends on the chip-wide miss
// traffic, which itself depends on the resulting CPI, so Evaluate runs a
// damped fixed-point iteration; it converges in a handful of rounds for
// all physical parameter ranges and returns an error only for infeasible
// designs or invalid profiles.
func (m Model) Evaluate(d chip.Design) (Eval, error) {
	if err := m.App.Validate(); err != nil {
		return Eval{}, err
	}
	if err := m.Chip.CheckFeasible(d); err != nil {
		return Eval{}, err
	}
	e := Eval{Design: d}
	e.CPIExe = m.Chip.CPIExe(d)
	e.L1MR = m.App.L1Miss.At(m.Chip.L1SizeKB(d))
	e.L2MR = m.App.L2Miss.At(m.Chip.L2SizeKB(d))

	h1 := m.Chip.L1HitCycles
	pmr := m.App.PMRRatio * e.L1MR

	// Memory contention. The analytic model estimates the chip-wide DRAM
	// demand open-loop, from the cores' nominal (compute-limited) issue
	// rate: demand = N·fmem·MR1·MR2/CPI_exe. This is the standard
	// first-order treatment in analytical DSE models — memory stalls do
	// throttle real traffic, but a design is provisioned against the
	// traffic its cores can generate, and the open-loop form keeps the
	// objective a closed-form function of the design (no fixed point).
	// The trace-driven simulator models the closed loop exactly; the gap
	// between the two is part of the APS error budget (§IV).
	nominal := e.CPIExe
	if nominal < 1e-9 {
		nominal = 1e-9
	}
	demand := float64(d.N) * m.App.Fmem * e.L1MR * e.L2MR / nominal
	memLat := m.Chip.LoadedMemLatency(demand)
	rho := 0.0
	if m.Chip.MemBandwidth > 0 {
		rho = demand / m.Chip.MemBandwidth
	}
	amp := m.Chip.L2HitCycles + e.L2MR*memLat
	camatVal := h1/m.App.CH + pmr*(m.App.PAMPRatio*amp)/m.App.CM
	cpi := e.CPIExe + m.App.Fmem*camatVal*(1-m.App.Overlap)
	if math.IsNaN(cpi) || math.IsInf(cpi, 0) {
		return Eval{}, fmt.Errorf("core: degenerate CPI at %v", d)
	}
	e.AMP = amp
	e.MemLat = memLat
	e.Rho = rho
	e.CAMAT = camatVal
	e.AMAT = h1 + e.L1MR*amp
	if e.CAMAT > 0 {
		e.C = e.AMAT / e.CAMAT
	} else {
		e.C = 1
	}
	e.CPI = cpi

	n := float64(d.N)
	e.G = m.App.G(n)
	fseq := m.App.Fseq
	e.Time = m.App.IC0 * cpi * (fseq + e.G*(1-fseq)/n) // Eq. 10
	e.Work = m.App.IC0 * (fseq + (1-fseq)*e.G)
	if e.Time > 0 {
		e.Throughput = e.Work / e.Time
	}
	return e, nil
}

// TimeAt is a convenience wrapper returning only J_D; it returns +Inf for
// infeasible designs so optimizers can treat feasibility as a penalty.
func (m Model) TimeAt(d chip.Design) float64 {
	e, err := m.Evaluate(d)
	if err != nil {
		return math.Inf(1)
	}
	return e.Time
}

// ThroughputAt returns W/T, or 0 for infeasible designs.
func (m Model) ThroughputAt(d chip.Design) float64 {
	e, err := m.Evaluate(d)
	if err != nil {
		return 0
	}
	return e.Throughput
}

// SpeedupAt returns the memory-bounded (Sun-Ni) speedup of the design:
// the time a single core of the same per-core split would need for the
// *scaled* problem, divided by the design's parallel time. With g = 1 it
// reduces to the Amdahl speedup; with g = N to the Gustafson speedup
// (modulo the CPI shift caused by shared-memory contention).
func (m Model) SpeedupAt(d chip.Design) (float64, error) {
	e, err := m.Evaluate(d)
	if err != nil {
		return 0, err
	}
	base := d
	base.N = 1
	e1, err := m.Evaluate(base)
	if err != nil {
		return 0, err
	}
	fseq := m.App.Fseq
	serialScaled := m.App.IC0 * e1.CPI * (fseq + (1-fseq)*e.G)
	return serialScaled / e.Time, nil
}
