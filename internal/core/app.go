// Package core implements the C²-Bound analytical model itself: the
// execution-time objective of Eq. 10, its physical constraints (Eq. 11 and
// Eq. 12 via package chip), the two-regime optimization of §III-C solved
// with Lagrange multipliers and Newton's method (with a derivative-free
// fallback), and the multi-application core-allocation case study of
// Fig. 7.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/chip"
	"repro/internal/speedup"
)

// ErrInvalidApp is the sentinel wrapped by App.Validate failures.
var ErrInvalidApp = errors.New("core: invalid application profile")

// App is the program-specific parameter set of the C²-Bound model,
// obtained from traces, compiler analysis or the C-AMAT detector (§III-D).
type App struct {
	Name string

	// Fseq is the sequential fraction of the workload (Sun-Ni's law).
	Fseq float64
	// Fmem is the memory access frequency: data accesses per instruction.
	Fmem float64
	// Overlap is overlapRatio_{c-m} of Eq. 7: the fraction of data-stall
	// time hidden under computation.
	Overlap float64

	// CH and CM are the hit and pure-miss concurrencies the application
	// exposes on the target microarchitecture; PMRRatio = pMR/MR and
	// PAMPRatio = pAMP/AMP relate the pure-miss quantities to their
	// conventional counterparts. Setting CH = CM = C with ratios 1 yields
	// C-AMAT = AMAT/C, the form used in the paper's case studies.
	CH, CM              float64
	PMRRatio, PAMPRatio float64

	// L1Miss and L2Miss give the application's miss rates as functions of
	// cache capacity.
	L1Miss, L2Miss chip.MissRateCurve

	// G is the problem-size scale function g(N); GOrder optionally fixes
	// its growth order for regime classification (derived numerically from
	// G when zero).
	G      speedup.ScaleFunc
	GOrder float64

	// IC0 is the base dynamic instruction count at N = 1 (a pure scale
	// factor for reported times).
	IC0 float64
}

// Validate checks the profile for physically meaningful values: every
// field must be finite (no NaN/Inf), fractions within [0,1],
// concurrencies ≥ 1, and g(1) = 1. A profile that passes Validate cannot
// silently propagate NaN through the Eq. 7-10 objective. Failures wrap
// ErrInvalidApp.
func (a App) Validate() error {
	switch {
	case a.Fseq < 0 || a.Fseq > 1 || math.IsNaN(a.Fseq):
		return fmt.Errorf("%w: fseq=%v outside [0,1]", ErrInvalidApp, a.Fseq)
	case a.Fmem < 0 || a.Fmem > 1 || math.IsNaN(a.Fmem):
		return fmt.Errorf("%w: fmem=%v outside [0,1]", ErrInvalidApp, a.Fmem)
	case a.Overlap < 0 || a.Overlap > 1 || math.IsNaN(a.Overlap):
		return fmt.Errorf("%w: overlap=%v outside [0,1]", ErrInvalidApp, a.Overlap)
	case !(a.CH >= 1) || !(a.CM >= 1) || math.IsInf(a.CH, 0) || math.IsInf(a.CM, 0):
		return fmt.Errorf("%w: concurrencies C_H=%v, C_M=%v must be finite and ≥ 1", ErrInvalidApp, a.CH, a.CM)
	case a.PMRRatio < 0 || a.PMRRatio > 1 || math.IsNaN(a.PMRRatio):
		return fmt.Errorf("%w: pMR/MR ratio %v outside [0,1]", ErrInvalidApp, a.PMRRatio)
	case a.PAMPRatio < 0 || !finite(a.PAMPRatio):
		return fmt.Errorf("%w: pAMP/AMP ratio %v out of range", ErrInvalidApp, a.PAMPRatio)
	case a.G == nil:
		return fmt.Errorf("%w: scale function g(N) missing", ErrInvalidApp)
	case !(a.IC0 > 0) || math.IsInf(a.IC0, 0):
		return fmt.Errorf("%w: IC0=%v must be positive and finite", ErrInvalidApp, a.IC0)
	case math.IsNaN(a.GOrder) || math.IsInf(a.GOrder, 0):
		return fmt.Errorf("%w: growth order %v not finite", ErrInvalidApp, a.GOrder)
	}
	g1 := a.G(1)
	if math.IsNaN(g1) || math.Abs(g1-1) > 1e-6 {
		return fmt.Errorf("%w: g(1)=%v, want 1", ErrInvalidApp, g1)
	}
	return nil
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// WithConcurrency returns a copy of the profile with the overall
// data-access concurrency pinned to c (C_H = C_M = c, ratios 1), matching
// the paper's C ∈ {1, 4, 8} case studies where C-AMAT = AMAT/C.
func (a App) WithConcurrency(c float64) App {
	b := a
	b.CH, b.CM = c, c
	b.PMRRatio, b.PAMPRatio = 1, 1
	return b
}

// growthOrder returns the app's g(N) growth order, deriving it from G when
// GOrder is unset.
func (a App) growthOrder() float64 {
	if a.GOrder != 0 { //lint:allow floatguard exact zero is the unset-field sentinel
		return a.GOrder
	}
	return speedup.GrowthOrder(a.G, 64)
}

// Canonical application profiles for the case studies. Their miss-rate
// curves are calibrated against the trace generators in internal/trace.

// TMMApp is a tiled dense matrix-multiplication profile: superlinear
// g(N) = N^{3/2}, strong locality, high hit concurrency.
func TMMApp() App {
	return App{
		Name: "tmm", Fseq: 0.02, Fmem: 0.45, Overlap: 0.2,
		CH: 4, CM: 2.5, PMRRatio: 0.5, PAMPRatio: 0.8,
		L1Miss: chip.MissRateCurve{Base: 0.04, RefKB: 32, Alpha: 0.5, Floor: 0.002},
		L2Miss: chip.MissRateCurve{Base: 0.3, RefKB: 256, Alpha: 0.6, Floor: 0.01},
		G:      speedup.PowerLaw(1.5), GOrder: 1.5, IC0: 1e9,
	}
}

// StencilApp is a memory-streaming stencil profile: g(N) = N, moderate
// locality, high miss concurrency from predictable strides.
func StencilApp() App {
	return App{
		Name: "stencil", Fseq: 0.01, Fmem: 0.55, Overlap: 0.3,
		CH: 3, CM: 4, PMRRatio: 0.6, PAMPRatio: 0.7,
		L1Miss: chip.MissRateCurve{Base: 0.08, RefKB: 32, Alpha: 0.4, Floor: 0.01},
		L2Miss: chip.MissRateCurve{Base: 0.5, RefKB: 256, Alpha: 0.35, Floor: 0.05},
		G:      speedup.Linear(), GOrder: 1, IC0: 1e9,
	}
}

// FFTApp is a fast-Fourier-transform profile with the Table I scaling.
func FFTApp() App {
	scale := speedup.Table1(1 << 20)[3].Scale
	return App{
		Name: "fft", Fseq: 0.03, Fmem: 0.5, Overlap: 0.25,
		CH: 3.5, CM: 3, PMRRatio: 0.55, PAMPRatio: 0.75,
		L1Miss: chip.MissRateCurve{Base: 0.06, RefKB: 32, Alpha: 0.45, Floor: 0.005},
		L2Miss: chip.MissRateCurve{Base: 0.4, RefKB: 256, Alpha: 0.45, Floor: 0.03},
		G:      scale, GOrder: 1, IC0: 1e9,
	}
}

// FluidanimateApp mimics the PARSEC fluidanimate benchmark used for the
// paper's APS validation: a large-working-set particle/grid code with a
// modest sequential portion and mid-range concurrency.
func FluidanimateApp() App {
	return App{
		Name: "fluidanimate", Fseq: 0.04, Fmem: 0.38, Overlap: 0.2,
		CH: 3, CM: 2, PMRRatio: 0.6, PAMPRatio: 0.8,
		L1Miss: chip.MissRateCurve{Base: 0.05, RefKB: 32, Alpha: 0.45, Floor: 0.004},
		L2Miss: chip.MissRateCurve{Base: 0.45, RefKB: 256, Alpha: 0.5, Floor: 0.02},
		G:      speedup.PowerLaw(1.2), GOrder: 1.2, IC0: 1e10,
	}
}

// SequentialHeavyApp is the Fig. 7 "application 1" archetype: a large
// sequential portion and almost no memory concurrency, so extra cores are
// nearly worthless.
func SequentialHeavyApp() App {
	a := StencilApp()
	a.Name = "seq-heavy"
	a.Fseq = 0.4
	a = a.WithConcurrency(1)
	a.G = speedup.FixedSize()
	a.GOrder = 0
	return a
}

// ParallelConcurrentApp is the Fig. 7 "application 2" archetype: tiny
// sequential portion and high memory concurrency.
func ParallelConcurrentApp() App {
	a := StencilApp()
	a.Name = "par-concurrent"
	a.Fseq = 0.005
	a = a.WithConcurrency(8)
	a.G = speedup.Linear()
	a.GOrder = 1
	return a
}

// BalancedApp is the Fig. 7 "application 3" archetype between the two
// extremes.
func BalancedApp() App {
	a := StencilApp()
	a.Name = "balanced"
	a.Fseq = 0.08
	a = a.WithConcurrency(3)
	a.G = speedup.PowerLaw(0.5)
	a.GOrder = 0.5
	return a
}
