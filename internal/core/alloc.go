package core

import (
	"fmt"

	"repro/internal/chip"
)

// Allocation is the outcome of dividing a chip's cores among co-scheduled
// applications (the Fig. 7 case study).
type Allocation struct {
	App     App
	Cores   int
	Speedup float64 // Sun-Ni speedup of the app at its allocated cores
}

// AllocateCores divides totalCores among the applications by greedy
// marginal-utility water-filling: every core goes to the application whose
// throughput W/T improves the most (relative to its current throughput) by
// receiving it, evaluated with the full C²-Bound objective on an even
// per-core area split. This reproduces the Fig. 7 behaviour —
// applications with a large sequential portion and low memory concurrency
// saturate after a few cores, while low-f_seq, high-C applications keep
// absorbing cores productively.
func AllocateCores(cfg chip.Config, apps []App, totalCores int) ([]Allocation, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("core: no applications to allocate")
	}
	if totalCores < len(apps) {
		return nil, fmt.Errorf("core: %d cores cannot serve %d applications", totalCores, len(apps))
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("core: app %q: %w", a.Name, err)
		}
	}
	// Evaluate each app at n cores on a fixed, even area split so
	// allocations are comparable. The chip is shared: per-core area is the
	// budget divided by the total core count.
	perCore := (cfg.TotalArea - cfg.FixedArea) / float64(totalCores)
	modelOf := func(a App) Model { return Model{Chip: cfg, App: a} }
	designAt := func(n int) chip.Design {
		return chip.Design{
			N:        n,
			CoreArea: perCore * 0.5,
			L1Area:   perCore * 0.2,
			L2Area:   perCore * 0.3,
		}
	}
	tpAt := func(a App, n int) float64 { return modelOf(a).ThroughputAt(designAt(n)) }

	counts := make([]int, len(apps))
	tps := make([]float64, len(apps))
	for i, a := range apps {
		counts[i] = 1
		tps[i] = tpAt(a, 1)
	}
	remaining := totalCores - len(apps)
	for ; remaining > 0; remaining-- {
		bestApp := -1
		bestGain := 1e-9 // require a measurable benefit
		var bestNext float64
		for i, a := range apps {
			next := tpAt(a, counts[i]+1)
			// Relative throughput improvement from one more core.
			gain := (next - tps[i]) / tps[i]
			if gain > bestGain {
				bestGain = gain
				bestApp = i
				bestNext = next
			}
		}
		if bestApp < 0 {
			// No application benefits: stop handing out cores.
			break
		}
		counts[bestApp]++
		tps[bestApp] = bestNext
	}

	out := make([]Allocation, len(apps))
	for i, a := range apps {
		s, err := modelOf(a).SpeedupAt(designAt(counts[i]))
		if err != nil {
			return nil, fmt.Errorf("core: app %q: %w", a.Name, err)
		}
		out[i] = Allocation{App: a, Cores: counts[i], Speedup: s}
	}
	return out, nil
}
