package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/chip"
)

func catalogModels() map[string]Model {
	cfg := chip.DefaultConfig()
	return map[string]Model{
		"tmm":          {Chip: cfg, App: TMMApp()},
		"stencil":      {Chip: cfg, App: StencilApp()},
		"fft":          {Chip: cfg, App: FFTApp()},
		"fluidanimate": {Chip: cfg, App: FluidanimateApp()},
	}
}

// compileGrid enumerates a dense design grid spanning feasible,
// area-infeasible, and degenerate (non-positive area) designs.
func compileGrid() []chip.Design {
	var ds []chip.Design
	for _, n := range []int{-1, 0, 1, 2, 4, 16, 64, 128, 400} {
		for _, a0 := range []float64{-1, 0, 0.25, 1, 2, 4, 8} {
			for _, a1 := range []float64{0, 0.1, 0.5, 1, 2} {
				for _, a2 := range []float64{-0.5, 0, 0.25, 1, 3} {
					ds = append(ds, chip.Design{N: n, CoreArea: a0, L1Area: a1, L2Area: a2})
				}
			}
		}
	}
	return ds
}

// TestCompiledBitIdentical asserts the compiled kernel returns the exact
// same IEEE-754 bits as the interpreted Model across every catalog app
// and a grid covering feasible, infeasible, and degenerate designs.
func TestCompiledBitIdentical(t *testing.T) {
	for name, m := range catalogModels() {
		t.Run(name, func(t *testing.T) {
			c, err := m.Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			for _, d := range compileGrid() {
				want := m.TimeAt(d)
				got := c.TimeAt(d)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("TimeAt(%v): compiled %v (bits %x), model %v (bits %x)",
						d, got, math.Float64bits(got), want, math.Float64bits(want))
				}
				e, evalErr := m.Evaluate(d)
				tw, ww, ok := c.TimeWorkAt(d)
				if ok != (evalErr == nil) {
					t.Fatalf("TimeWorkAt(%v): ok=%v, Evaluate err=%v", d, ok, evalErr)
				}
				if !ok {
					continue
				}
				if math.Float64bits(tw) != math.Float64bits(e.Time) {
					t.Fatalf("TimeWorkAt(%v): time %v != Eval.Time %v", d, tw, e.Time)
				}
				if math.Float64bits(ww) != math.Float64bits(e.Work) {
					t.Fatalf("TimeWorkAt(%v): work %v != Eval.Work %v", d, ww, e.Work)
				}
			}
		})
	}
}

// TestCompileRejectsInvalidApp mirrors Evaluate's profile validation.
func TestCompileRejectsInvalidApp(t *testing.T) {
	m := Model{Chip: chip.DefaultConfig(), App: TMMApp()}
	m.App.Fseq = -0.5
	if _, err := m.Compile(); err == nil {
		t.Fatal("Compile accepted an invalid app profile")
	}
}

// TestCompiledGCacheConcurrent hammers the copy-on-write g(N) table from
// many goroutines; run under -race this proves the publication protocol.
func TestCompiledGCacheConcurrent(t *testing.T) {
	m := Model{Chip: chip.DefaultConfig(), App: FFTApp()}
	c, err := m.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := float64(1 + (seed*31+i)%96)
				got := c.gAt(n)
				want := m.App.G(n)
				if math.Float64bits(got) != math.Float64bits(want) {
					panic(fmt.Sprintf("gAt(%v) = %v, want %v", n, got, want))
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkCompiledTimeAt documents the specialized kernel's speedup over
// the interpreted Model and pins the zero-allocation contract.
func BenchmarkCompiledTimeAt(b *testing.B) {
	m := Model{Chip: chip.DefaultConfig(), App: FluidanimateApp()}
	d := chip.Design{N: 32, CoreArea: 2, L1Area: 0.5, L2Area: 1}
	b.Run("model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = m.TimeAt(d)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		c, err := m.Compile()
		if err != nil {
			b.Fatal(err)
		}
		c.TimeAt(d) // warm the g(N) table
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.TimeAt(d)
		}
	})
}
