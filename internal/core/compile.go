package core

import (
	"math"
	"sync/atomic"

	"repro/internal/chip"
	"repro/internal/speedup"
)

// Compiled is a fingerprint-specialized form of one Model: every
// point-independent subexpression of the Eq. 7-10 objective — the
// Pollack constants, the folded C-AMAT coefficients (H1/C_H, 1−overlap),
// the Sun-Ni terms (1−fseq and a memoized g(N) table) and the area
// constraint — is evaluated once at Compile time, so evaluating a design
// point costs only the arithmetic that actually depends on the point.
//
// Bit-exactness is the contract: Compiled.TimeAt performs exactly the
// same floating-point operations, in the same order, as Model.TimeAt.
// Constants are folded only when folding is the identical operation on
// identical inputs (e.g. 1−fseq computed once instead of per point);
// no expression involving point coordinates is algebraically
// restructured (no division-to-reciprocal rewrites). The differential
// tests in dse assert bit-identical values across whole design spaces.
//
// A Compiled model is immutable after construction apart from the
// internal g(N) memo table and is safe for concurrent use.
type Compiled struct {
	// Pollack's rule (Eq. 11).
	k0, phi0 float64

	// Cache geometry and the miss-rate curves.
	l1Density, l2Density float64
	l1Curve, l2Curve     compiledCurve

	// Memory system.
	h2               float64 // L2 hit cycles
	memLatency       float64
	memBandwidth     float64
	queueSensitivity float64
	contention       bool // MemBandwidth > 0 && QueueSensitivity != 0

	// Folded application constants.
	fmem            float64
	h1OverCH        float64 // H1 / C_H (the hit term of Eq. 2)
	pmrRatio        float64
	pampRatio       float64
	cm              float64
	oneMinusOverlap float64 // 1 − overlapRatio_{c-m}
	fseq            float64
	oneMinusFseq    float64 // 1 − fseq (Sun-Ni's parallel fraction)
	ic0             float64

	// Area constraint (Eq. 12).
	fixedArea float64
	areaLimit float64 // TotalArea·(1+1e-9), the CheckFeasible bound

	// g(N) memoization: core counts repeat across a sweep plane, while
	// g itself may be expensive (FromComplexity runs a bisection per
	// call). The table is a copy-on-write sorted-insertion-free slice
	// behind an atomic pointer, so warm lookups are lock- and
	// allocation-free.
	g      speedup.ScaleFunc
	gTable atomic.Pointer[[]gEntry]
}

// compiledCurve is chip.MissRateCurve with the default Cap resolved once.
type compiledCurve struct {
	base, refKB, alpha, floor, capRate float64
}

func compileCurve(m chip.MissRateCurve) compiledCurve {
	capRate := m.Cap
	if capRate <= 0 || capRate > 1 {
		capRate = 1
	}
	return compiledCurve{base: m.Base, refKB: m.RefKB, alpha: m.Alpha, floor: m.Floor, capRate: capRate}
}

// at mirrors chip.MissRateCurve.At operation for operation.
func (c compiledCurve) at(sizeKB float64) float64 {
	if sizeKB <= 0 {
		return c.capRate
	}
	r := c.base
	if c.refKB > 0 && c.alpha != 0 { //lint:allow floatguard exact zero is the unset-field sentinel, mirroring chip.MissRateCurve.At
		r = c.base * math.Pow(sizeKB/c.refKB, -c.alpha)
	}
	if r < c.floor {
		r = c.floor
	}
	if r > c.capRate {
		r = c.capRate
	}
	return r
}

// gEntry memoizes one g(N) evaluation, keyed by the IEEE-754 bits of N.
type gEntry struct {
	bits uint64
	g    float64
}

// Compile specializes the model: the profile is validated once, every
// point-independent subexpression is folded, and the returned Compiled
// evaluates the Eq. 10 objective bit-identically to Model.TimeAt at a
// fraction of the cost. It is the model-layer half of the engine's batch
// evaluation path.
func (m Model) Compile() (*Compiled, error) {
	if err := m.App.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{
		k0:               m.Chip.Pollack.K0,
		phi0:             m.Chip.Pollack.Phi0,
		l1Density:        m.Chip.L1DensityKB,
		l2Density:        m.Chip.L2DensityKB,
		l1Curve:          compileCurve(m.App.L1Miss),
		l2Curve:          compileCurve(m.App.L2Miss),
		h2:               m.Chip.L2HitCycles,
		memLatency:       m.Chip.MemLatency,
		memBandwidth:     m.Chip.MemBandwidth,
		queueSensitivity: m.Chip.QueueSensitivity,
		contention:       m.Chip.MemBandwidth > 0 && m.Chip.QueueSensitivity != 0, //lint:allow floatguard exact zero is the unset-field sentinel, mirroring chip.LoadedMemLatency
		fmem:             m.App.Fmem,
		h1OverCH:         m.Chip.L1HitCycles / m.App.CH,
		pmrRatio:         m.App.PMRRatio,
		pampRatio:        m.App.PAMPRatio,
		cm:               m.App.CM,
		oneMinusOverlap:  1 - m.App.Overlap,
		fseq:             m.App.Fseq,
		oneMinusFseq:     1 - m.App.Fseq,
		ic0:              m.App.IC0,
		fixedArea:        m.Chip.FixedArea,
		areaLimit:        m.Chip.TotalArea * (1 + 1e-9),
		g:                m.App.G,
	}
	empty := make([]gEntry, 0, 16)
	c.gTable.Store(&empty)
	return c, nil
}

// gAt returns g(N), memoized by the bits of n. Warm lookups scan a small
// immutable table (sweep planes carry a handful of distinct core
// counts) without locking or allocating; a miss computes g once and
// publishes a copy-on-write extension of the table.
func (c *Compiled) gAt(n float64) float64 {
	bits := math.Float64bits(n)
	table := *c.gTable.Load()
	for i := range table {
		if table[i].bits == bits {
			return table[i].g
		}
	}
	g := c.g(n)
	for {
		old := c.gTable.Load()
		// Re-check under the freshest table: another goroutine may have
		// published the same entry while g was computed.
		for i := range *old {
			if (*old)[i].bits == bits {
				return (*old)[i].g
			}
		}
		next := make([]gEntry, len(*old)+1)
		copy(next, *old)
		next[len(*old)] = gEntry{bits: bits, g: g}
		if c.gTable.CompareAndSwap(old, &next) {
			return g
		}
	}
}

// feasible mirrors chip.Config.CheckFeasible for the compiled form.
func (c *Compiled) feasible(d chip.Design) bool {
	if d.N < 1 || d.CoreArea <= 0 || d.L1Area <= 0 || d.L2Area < 0 {
		return false
	}
	used := float64(d.N)*(d.CoreArea+d.L1Area+d.L2Area) + c.fixedArea
	return !(used > c.areaLimit)
}

// TimeAt is the compiled Model.TimeAt: the Eq. 10 execution time J_D of
// the design, +Inf for infeasible or degenerate designs. The returned
// bits equal Model.TimeAt's exactly.
func (c *Compiled) TimeAt(d chip.Design) float64 {
	t, _, ok := c.timeWork(d, false)
	if !ok {
		return math.Inf(1)
	}
	return t
}

// TimeWorkAt returns the Eq. 10 execution time and the scaled work of
// the design (ok=false for infeasible or degenerate designs), each
// bit-identical to the Eval fields Model.Evaluate produces.
func (c *Compiled) TimeWorkAt(d chip.Design) (timeV, work float64, ok bool) {
	return c.timeWork(d, true)
}

// timeWork is the specialized Eq. 7-10 kernel. Every line mirrors one
// line of Model.Evaluate with the point-independent factors pre-folded;
// see the bit-exactness contract on the Compiled type.
func (c *Compiled) timeWork(d chip.Design, needWork bool) (timeV, work float64, ok bool) {
	if !c.feasible(d) {
		return 0, 0, false
	}
	cpiExe := c.k0/math.Sqrt(d.CoreArea) + c.phi0
	l1mr := c.l1Curve.at(c.l1Density * d.L1Area)
	l2mr := c.l2Curve.at(c.l2Density * d.L2Area)

	pmr := c.pmrRatio * l1mr

	nominal := cpiExe
	if nominal < 1e-9 {
		nominal = 1e-9
	}
	demand := float64(d.N) * c.fmem * l1mr * l2mr / nominal
	memLat := c.memLatency
	if c.contention && demand > 0 {
		rho := demand / c.memBandwidth
		memLat = c.memLatency * (1 + c.queueSensitivity*rho)
	}
	amp := c.h2 + l2mr*memLat
	camatVal := c.h1OverCH + pmr*(c.pampRatio*amp)/c.cm
	cpi := cpiExe + c.fmem*camatVal*c.oneMinusOverlap
	if math.IsNaN(cpi) || math.IsInf(cpi, 0) {
		return 0, 0, false
	}
	n := float64(d.N)
	g := c.gAt(n)
	timeV = c.ic0 * cpi * (c.fseq + g*c.oneMinusFseq/n)
	if needWork {
		work = c.ic0 * (c.fseq + c.oneMinusFseq*g)
	}
	return timeV, work, true
}
