package core

import (
	"testing"

	"repro/internal/chip"
)

func TestPartitionCacheValidation(t *testing.T) {
	cfg := chip.DefaultConfig()
	apps := []App{StencilApp(), TMMApp()}
	if _, err := PartitionCache(cfg, nil, 2048, 128); err == nil {
		t.Error("no apps accepted")
	}
	if _, err := PartitionCache(cfg, apps, 0, 128); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := PartitionCache(cfg, apps, 2048, 4096); err == nil {
		t.Error("granule above capacity accepted")
	}
	if _, err := PartitionCache(cfg, apps, 128, 128); err == nil {
		t.Error("fewer granules than apps accepted")
	}
	bad := StencilApp()
	bad.Fseq = 2
	if _, err := PartitionCache(cfg, []App{bad, TMMApp()}, 2048, 128); err == nil {
		t.Error("invalid app accepted")
	}
}

func TestPartitionConservesCapacity(t *testing.T) {
	cfg := chip.DefaultConfig()
	apps := []App{StencilApp(), TMMApp(), FluidanimateApp()}
	parts, err := PartitionCache(cfg, apps, 4096, 256)
	if err != nil {
		t.Fatalf("PartitionCache: %v", err)
	}
	var total float64
	for _, p := range parts {
		if p.CapacityKB < 256 {
			t.Fatalf("app %q starved: %v KB", p.App.Name, p.CapacityKB)
		}
		total += p.CapacityKB
	}
	if total > 4096+1e-9 {
		t.Fatalf("allocated %v of 4096 KB", total)
	}
}

func TestPartitionFavoursCacheSensitiveApp(t *testing.T) {
	cfg := chip.DefaultConfig()
	// App A: steep miss curve (capacity helps a lot).
	sensitive := StencilApp()
	sensitive.Name = "sensitive"
	sensitive.L2Miss = chip.MissRateCurve{Base: 0.8, RefKB: 256, Alpha: 1.2, Floor: 0.01}
	// App B: flat curve (streaming; capacity is useless).
	insensitive := StencilApp()
	insensitive.Name = "insensitive"
	insensitive.L2Miss = chip.MissRateCurve{Base: 0.8, RefKB: 256, Alpha: 0.02, Floor: 0.7}
	parts, err := PartitionCache(cfg, []App{sensitive, insensitive}, 4096, 128)
	if err != nil {
		t.Fatalf("PartitionCache: %v", err)
	}
	if parts[0].CapacityKB <= 2*parts[1].CapacityKB {
		t.Fatalf("cache-sensitive app got %v KB vs %v KB", parts[0].CapacityKB, parts[1].CapacityKB)
	}
}

func TestPartitionConcurrencyDiscountsMisses(t *testing.T) {
	cfg := chip.DefaultConfig()
	// Identical locality, but one app hides its misses behind high C_M:
	// the C-AMAT-weighted partitioner gives it less capacity.
	hidden := StencilApp().WithConcurrency(8)
	hidden.Name = "concurrent"
	exposed := StencilApp().WithConcurrency(1)
	exposed.Name = "serial"
	parts, err := PartitionCache(cfg, []App{hidden, exposed}, 4096, 128)
	if err != nil {
		t.Fatalf("PartitionCache: %v", err)
	}
	if parts[0].CapacityKB >= parts[1].CapacityKB {
		t.Fatalf("concurrency-hidden app got %v KB, serial app %v KB — want less for hidden",
			parts[0].CapacityKB, parts[1].CapacityKB)
	}
}

func TestPartitionStallDecreasesWithCapacity(t *testing.T) {
	cfg := chip.DefaultConfig()
	app := FluidanimateApp()
	small, err := PartitionCache(cfg, []App{app, app}, 1024, 128)
	if err != nil {
		t.Fatalf("PartitionCache: %v", err)
	}
	large, err := PartitionCache(cfg, []App{app, app}, 8192, 128)
	if err != nil {
		t.Fatalf("PartitionCache: %v", err)
	}
	if large[0].StallCPI > small[0].StallCPI {
		t.Fatalf("more cache raised stall CPI: %v vs %v", large[0].StallCPI, small[0].StallCPI)
	}
}
