package core

import (
	"fmt"

	"repro/internal/chip"
)

// CachePartition is one application's share of a partitioned shared cache.
type CachePartition struct {
	App        App
	CapacityKB float64
	// StallCPI is the application's predicted memory-stall CPI at its
	// allocated capacity.
	StallCPI float64
}

// PartitionCache divides a shared last-level cache of totalKB among
// co-scheduled applications in granKB granules (way- or bank-sized
// chunks), by greedy marginal utility on the C²-Bound memory-stall term:
// each granule goes to the application whose predicted stall CPI
//
//	fmem · pMR(capacity) · pAMP / C_M · (1 − overlap)
//
// drops the most. This is the utility-based partitioning of the paper's
// "partitioning … resources among diverse applications", with C-AMAT
// (rather than raw miss counts) as the utility — applications whose
// misses are concurrency-hidden receive less capacity than a miss-count
// partitioner would give them.
func PartitionCache(cfg chip.Config, apps []App, totalKB, granKB float64) ([]CachePartition, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("core: no applications to partition among")
	}
	if totalKB <= 0 || granKB <= 0 || granKB > totalKB {
		return nil, fmt.Errorf("core: bad partition sizes total=%v gran=%v", totalKB, granKB)
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("core: app %q: %w", a.Name, err)
		}
	}
	granules := int(totalKB / granKB)
	if granules < len(apps) {
		return nil, fmt.Errorf("core: %d granules cannot serve %d applications", granules, len(apps))
	}

	// Stall CPI of app a at L2 capacity c: the C²-Bound memory term with
	// the L2 miss penalty evaluated at the unloaded memory latency.
	stall := func(a App, capKB float64) float64 {
		mr2 := a.L2Miss.At(capKB)
		amp := cfg.L2HitCycles + mr2*cfg.MemLatency
		camat := cfg.L1HitCycles/a.CH + a.PMRRatio*a.L1Miss.At(32)*(a.PAMPRatio*amp)/a.CM
		return a.Fmem * camat * (1 - a.Overlap)
	}

	alloc := make([]float64, len(apps))
	cur := make([]float64, len(apps))
	for i, a := range apps {
		alloc[i] = granKB
		cur[i] = stall(a, granKB)
	}
	remaining := granules - len(apps)
	for ; remaining > 0; remaining-- {
		best := -1
		bestGain := 0.0
		var bestNext float64
		for i, a := range apps {
			next := stall(a, alloc[i]+granKB)
			gain := cur[i] - next
			if gain > bestGain {
				bestGain, best, bestNext = gain, i, next
			}
		}
		if best < 0 {
			break // nobody benefits; leave the rest unallocated
		}
		alloc[best] += granKB
		cur[best] = bestNext
	}
	out := make([]CachePartition, len(apps))
	for i, a := range apps {
		out[i] = CachePartition{App: a, CapacityKB: alloc[i], StallCPI: cur[i]}
	}
	return out, nil
}
