package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/engine"
)

// TestOptimizeAreasWithEngineBitIdentical pins the refactor's invariant:
// routing the optimizer's objective probes through a memoizing engine
// changes the cost, never the answer.
func TestOptimizeAreasWithEngineBitIdentical(t *testing.T) {
	m := testModel(FluidanimateApp())
	dPlain, methodPlain, evalsPlain, err := m.OptimizeAreas(16, Options{})
	if err != nil {
		t.Fatalf("direct OptimizeAreas: %v", err)
	}
	eng := engine.New(engine.Options{})
	dRouted, methodRouted, evalsRouted, err := m.OptimizeAreas(16, Options{Engine: eng})
	if err != nil {
		t.Fatalf("engine OptimizeAreas: %v", err)
	}
	if methodPlain != methodRouted {
		t.Fatalf("solver diverged: %q vs %q", methodPlain, methodRouted)
	}
	if evalsPlain != evalsRouted {
		t.Fatalf("probe counts diverged: %d vs %d", evalsPlain, evalsRouted)
	}
	for name, pair := range map[string][2]float64{
		"core area": {dPlain.CoreArea, dRouted.CoreArea},
		"l1 area":   {dPlain.L1Area, dRouted.L1Area},
		"l2 area":   {dPlain.L2Area, dRouted.L2Area},
		"time":      {m.TimeAt(dPlain), m.TimeAt(dRouted)},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Fatalf("%s diverged under the engine: %x vs %x", name, pair[0], pair[1])
		}
	}

	// The optimizer's repeated probes of shared vertices must land in the
	// cache, and every request must be metered.
	st := eng.Stats()
	if st.Requests == 0 || st.Evaluations == 0 {
		t.Fatalf("engine not exercised: %+v", st)
	}
	if st.CacheHits == 0 {
		t.Fatalf("no probe memoization: %+v", st)
	}
	if st.Requests != st.CacheHits+st.CacheMisses {
		t.Fatalf("request accounting inconsistent: %+v", st)
	}
}

// TestOptimizeCtxEngineMatchesPlain checks the full N-search with and
// without an engine end to end.
func TestOptimizeCtxEngineMatchesPlain(t *testing.T) {
	m := testModel(StencilApp())
	plain, err := m.OptimizeCtx(context.Background(), Options{MaxN: 64})
	if err != nil {
		t.Fatalf("plain OptimizeCtx: %v", err)
	}
	routed, err := m.OptimizeCtx(context.Background(), Options{MaxN: 64, Engine: engine.New(engine.Options{})})
	if err != nil {
		t.Fatalf("engine OptimizeCtx: %v", err)
	}
	if plain.Design != routed.Design {
		t.Fatalf("designs diverged: %+v vs %+v", plain.Design, routed.Design)
	}
	if math.Float64bits(plain.Eval.Time) != math.Float64bits(routed.Eval.Time) {
		t.Fatalf("times diverged: %x vs %x", plain.Eval.Time, routed.Eval.Time)
	}
	if plain.Evaluations != routed.Evaluations {
		t.Fatalf("request counts diverged: %d vs %d", plain.Evaluations, routed.Evaluations)
	}
	if plain.Method != routed.Method {
		t.Fatalf("methods diverged: %q vs %q", plain.Method, routed.Method)
	}
}
