package detector

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/camat"
	"repro/internal/sim/cache"
)

func feed(d *Detector, trace []camat.Access) {
	for _, a := range trace {
		d.Record(a.Start, a.HitCycles, int64(a.MissPenalty))
	}
}

func analysesEqual(a, b camat.Analysis) bool {
	return a.Accesses == b.Accesses &&
		a.Misses == b.Misses &&
		a.PureMisses == b.PureMisses &&
		a.HitActiveCycles == b.HitActiveCycles &&
		a.MissActiveCycles == b.MissActiveCycles &&
		a.PureMissCycles == b.PureMissCycles &&
		a.ActiveCycles == b.ActiveCycles &&
		a.HitActivity == b.HitActivity &&
		a.PureMissActivity == b.PureMissActivity &&
		a.PerAccessMissCycles == b.PerAccessMissCycles &&
		a.PerAccessPureMissCycles == b.PerAccessPureMissCycles &&
		math.Abs(a.HitTime-b.HitTime) < 1e-12
}

func TestFig1MatchesBatchAnalyzer(t *testing.T) {
	tr := camat.Fig1Trace()
	want, err := camat.Analyze(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	d := New()
	feed(d, tr)
	got := d.Finalize()
	if !analysesEqual(got, want) {
		t.Fatalf("detector %+v\n!= batch %+v", got, want)
	}
	p := d.Params()
	if math.Abs(p.CAMAT()-1.6) > 1e-12 {
		t.Fatalf("detector C-AMAT = %v, want 1.6", p.CAMAT())
	}
	if d.LateRecords() != 0 {
		t.Fatalf("late records: %d", d.LateRecords())
	}
}

// randomTrace builds a well-formed trace with bounded out-of-order starts.
func randomTrace(seed []byte, jitter int64) []camat.Access {
	if len(seed) == 0 {
		return nil
	}
	var tr []camat.Access
	var clock int64
	for i := 0; i+2 < len(seed); i += 3 {
		clock += int64(seed[i] % 5)
		start := clock
		if jitter > 0 && i/3%3 == 1 {
			start -= int64(seed[i]%uint8(jitter)) % jitter // bounded backwards jitter
			if start < 0 {
				start = 0
			}
		}
		tr = append(tr, camat.Access{
			Start:       start,
			HitCycles:   1 + int(seed[i+1]%4),
			MissPenalty: int(seed[i+2] % 15),
		})
	}
	return tr
}

func TestMatchesBatchOnRandomOrderedTraces(t *testing.T) {
	f := func(seed []byte) bool {
		tr := randomTrace(seed, 0)
		if len(tr) == 0 {
			return true
		}
		want, err := camat.Analyze(tr)
		if err != nil {
			return false
		}
		d := New()
		feed(d, tr)
		got := d.Finalize()
		if !analysesEqual(got, want) {
			t.Logf("mismatch:\n got %+v\nwant %+v", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesBatchWithBoundedJitter(t *testing.T) {
	// Starts may regress a little (bank/port arbitration); the detector
	// must still agree with the batch analyzer when the jitter is within
	// the lateness bound.
	f := func(seed []byte) bool {
		tr := randomTrace(seed, 4)
		if len(tr) == 0 {
			return true
		}
		want, err := camat.Analyze(tr)
		if err != nil {
			return false
		}
		d := New(WithLateness(1024))
		feed(d, tr)
		got := d.Finalize()
		return analysesEqual(got, want) && d.LateRecords() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLateRecordClamped(t *testing.T) {
	d := New(WithLateness(2))
	d.Record(1000, 3, 0)
	d.Record(2000, 3, 0) // sweeps past 1000
	d.Record(10, 3, 5)   // far too late
	got := d.Finalize()
	if d.LateRecords() != 1 {
		t.Fatalf("late records = %d, want 1", d.LateRecords())
	}
	if got.Accesses != 3 {
		t.Fatalf("accesses = %d", got.Accesses)
	}
}

func TestMalformedRecordRejected(t *testing.T) {
	d := New()
	if err := d.Record(0, 0, 0); err == nil {
		t.Fatal("zero hit cycles accepted")
	}
	if err := d.Record(0, 3, -1); err == nil {
		t.Fatal("negative miss penalty accepted")
	}
	// Rejected records must leave the detector untouched.
	if an := d.Finalize(); an.Accesses != 0 {
		t.Fatalf("rejected records counted: %d accesses", an.Accesses)
	}
}

func TestObserveConvertsCacheResult(t *testing.T) {
	d := New()
	// A hit: start 10, done 13, hit latency 3 → no penalty.
	if err := d.Observe(cache.Result{Start: 10, Done: 13, Hit: true}, 3); err != nil {
		t.Fatalf("Observe hit: %v", err)
	}
	// A miss: start 20, done 120 → penalty 97.
	if err := d.Observe(cache.Result{Start: 20, Done: 120, Hit: false}, 3); err != nil {
		t.Fatalf("Observe miss: %v", err)
	}
	an := d.Finalize()
	if an.Accesses != 2 || an.Misses != 1 {
		t.Fatalf("analysis = %+v", an)
	}
	if an.PerAccessMissCycles != 97 {
		t.Fatalf("penalty = %d, want 97", an.PerAccessMissCycles)
	}
}

func TestObserveClampsNegativePenalty(t *testing.T) {
	d := New()
	// Done before start+hitLatency (merged miss returning early).
	if err := d.Observe(cache.Result{Start: 10, Done: 11}, 3); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	an := d.Finalize()
	if an.Misses != 0 {
		t.Fatalf("negative penalty counted as miss: %+v", an)
	}
}

func TestObserveReturnsErrorNotPanic(t *testing.T) {
	// A zero hit latency makes the record malformed (hitCycles must be
	// positive); Observe must surface that as a returned, wrapped error —
	// never a panic — and leave the detector untouched.
	d := New()
	err := d.Observe(cache.Result{Start: 10, Done: 20}, 0)
	if err == nil {
		t.Fatal("malformed timing accepted")
	}
	if an := d.Finalize(); an.Accesses != 0 {
		t.Fatalf("rejected observation counted: %+v", an)
	}
}

func TestIncrementalSweepBoundsMemory(t *testing.T) {
	d := New(WithLateness(100))
	for i := 0; i < 100000; i++ {
		d.Record(int64(i*4), 3, int64(i%7))
	}
	if len(d.events) > 1000 {
		t.Fatalf("detector retained %d event cycles; sweep not incremental", len(d.events))
	}
	an := d.Finalize()
	if an.Accesses != 100000 {
		t.Fatalf("accesses = %d", an.Accesses)
	}
}

func TestDecompositionIdentityHolds(t *testing.T) {
	f := func(seed []byte) bool {
		tr := randomTrace(seed, 0)
		if len(tr) == 0 {
			return true
		}
		d := New()
		feed(d, tr)
		an := d.Finalize()
		p := an.Params()
		direct := an.CAMATDirect()
		return math.Abs(p.CAMAT()-direct) <= 1e-9*(1+direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
