// Package detector implements the C-AMAT analyzer of Fig. 4 in the paper:
// a Hit Concurrency Detector (HCD) that counts wall-clock hit cycles and
// per-cycle hit activity, and a Miss Concurrency Detector (MCD) that, fed
// with the MSHR-derived miss windows and the HCD's per-cycle hit
// indicator, counts pure-miss cycles and attributes them to individual
// miss accesses. The detector is online: it processes cycle events
// incrementally as accesses are observed, holding only the sliding window
// of cycles that future accesses could still affect.
//
// Its output is bit-identical to the offline camat.Analyze sweep — a
// property the tests verify — so measured parameters plug directly into
// the C²-Bound model.
package detector

import (
	"container/heap"
	"fmt"

	"repro/internal/camat"
	"repro/internal/sim/cache"
)

// missWindow tracks one outstanding miss's penalty interval and the
// pure-miss cycles observed inside it.
type missWindow struct {
	pure int64
}

// cycleEvents is everything that changes at one cycle boundary.
type cycleEvents struct {
	dHit      int
	missStart []*missWindow
	missEnd   []*missWindow
}

// cycleHeap orders pending event cycles.
type cycleHeap []int64

func (h cycleHeap) Len() int            { return len(h) }
func (h cycleHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h cycleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cycleHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *cycleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Detector is the online C-AMAT analyzer for one cache level. It is not
// safe for concurrent use; attach one per core (or per monitored cache).
type Detector struct {
	// Lateness bounds how far behind the newest observed start an
	// access's start cycle may lag; events older than the watermark are
	// folded eagerly. The resource-reservation discipline of the cache
	// model bounds reordering by the longest miss round trip, so the
	// default of 1<<22 cycles is far beyond safe.
	lateness int64

	events  map[int64]*cycleEvents
	pending cycleHeap
	active  []*missWindow

	cursor    int64 // sweep has consumed cycles < cursor
	hitCount  int
	missCount int
	started   bool
	maxStart  int64

	// accumulators, matching camat.Analysis
	accesses    int
	misses      int
	pureMisses  int
	hitSum      int64
	hitCycles   int64
	missCycles  int64
	pureCycles  int64
	activeCyc   int64
	pureAct     int64
	perMissCyc  int64
	perPureCyc  int64
	lateRecords uint64
}

// Option configures a Detector.
type Option func(*Detector)

// WithLateness overrides the out-of-order tolerance window (cycles).
func WithLateness(cycles int64) Option {
	return func(d *Detector) { d.lateness = cycles }
}

// New builds a detector.
func New(opts ...Option) *Detector {
	d := &Detector{
		lateness: 1 << 22,
		events:   make(map[int64]*cycleEvents),
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// LateRecords reports how many accesses violated the lateness bound and
// were clamped; nonzero values indicate the bound needs enlarging.
func (d *Detector) LateRecords() uint64 { return d.lateRecords }

// Observe implements the cpu.AccessObserver interface: it converts a cache
// access result into a (start, hit-cycles, miss-penalty) record. The
// simulator guarantees well-formed timings, so a malformed record here is
// an internal invariant violation; it surfaces as a returned error (never
// a panic), which the core propagates out of Step so the evaluation
// engine's guard/retry machinery can handle it like any other fault.
func (d *Detector) Observe(res cache.Result, hitLatency int) error {
	penalty := res.Done - res.Start - int64(hitLatency)
	if penalty < 0 {
		penalty = 0
	}
	if err := d.Record(res.Start, hitLatency, penalty); err != nil {
		return fmt.Errorf("detector: simulator produced malformed timing: %w", err)
	}
	return nil
}

// Record registers one access: hit processing during
// [start, start+hitCycles) and, when missPenalty > 0, miss processing
// during the following missPenalty cycles. Malformed records (non-positive
// hit cycles or negative penalty) are rejected with an error and leave
// the detector's state untouched.
func (d *Detector) Record(start int64, hitCycles int, missPenalty int64) error {
	if hitCycles <= 0 || missPenalty < 0 {
		return fmt.Errorf("detector: malformed record start=%d hit=%d penalty=%d", start, hitCycles, missPenalty)
	}
	if !d.started {
		// Leave the full lateness window open behind the first record so
		// early out-of-order arrivals are not clamped.
		d.cursor = start - d.lateness
		d.started = true
		d.maxStart = start
	}
	if start > d.maxStart {
		d.maxStart = start
	}
	if start < d.cursor {
		// The record begins before the already-swept frontier; clamp it.
		d.lateRecords++
		missPenalty += start - d.cursor // keep the end cycle
		start = d.cursor
		if missPenalty < 0 {
			missPenalty = 0
		}
	}
	d.accesses++
	d.hitSum += int64(hitCycles)

	hitEnd := start + int64(hitCycles)
	d.addEvent(start).dHit++
	d.addEvent(hitEnd).dHit--
	if missPenalty > 0 {
		d.misses++
		d.perMissCyc += missPenalty
		w := &missWindow{}
		s := d.addEvent(hitEnd)
		s.missStart = append(s.missStart, w)
		e := d.addEvent(hitEnd + missPenalty)
		e.missEnd = append(e.missEnd, w)
	}
	// Sweep everything that can no longer be affected by future records:
	// cycles below maxStart − lateness.
	d.sweep(d.maxStart - d.lateness)
	return nil
}

func (d *Detector) addEvent(cycle int64) *cycleEvents {
	ev, ok := d.events[cycle]
	if !ok {
		ev = &cycleEvents{}
		d.events[cycle] = ev
		heap.Push(&d.pending, cycle)
	}
	return ev
}

// sweep consumes events with cycle < limit, accumulating interval
// statistics between consecutive event cycles.
func (d *Detector) sweep(limit int64) {
	for len(d.pending) > 0 && d.pending[0] < limit {
		cycle := d.pending[0]
		// Account the interval [cursor, cycle) under the current state.
		d.accumulate(cycle - d.cursor)
		d.cursor = cycle

		heap.Pop(&d.pending)
		ev := d.events[cycle]
		delete(d.events, cycle)
		d.hitCount += ev.dHit
		for _, w := range ev.missStart {
			d.active = append(d.active, w)
			d.missCount++
		}
		for _, w := range ev.missEnd {
			d.missCount--
			d.finishWindow(w)
		}
	}
}

// accumulate charges dur cycles of the current (hitCount, missCount)
// state.
func (d *Detector) accumulate(dur int64) {
	if dur <= 0 {
		return
	}
	hitActive := d.hitCount > 0
	missActive := d.missCount > 0
	if hitActive || missActive {
		d.activeCyc += dur
	}
	if hitActive {
		d.hitCycles += dur
	}
	if missActive {
		d.missCycles += dur
	}
	if missActive && !hitActive {
		d.pureCycles += dur
		d.pureAct += dur * int64(d.missCount)
		for _, w := range d.active {
			w.pure += dur
		}
	}
}

// finishWindow retires a miss window from the active set and finalizes its
// pure-miss attribution.
func (d *Detector) finishWindow(w *missWindow) {
	for i, a := range d.active {
		if a == w {
			d.active[i] = d.active[len(d.active)-1]
			d.active = d.active[:len(d.active)-1]
			break
		}
	}
	if w.pure > 0 {
		d.pureMisses++
		d.perPureCyc += w.pure
	}
}

// Finalize flushes all pending events and returns the complete analysis.
// The detector may continue to receive records afterwards only if no new
// record starts before the flushed frontier.
func (d *Detector) Finalize() camat.Analysis {
	d.sweep(1<<62 - 1)
	an := camat.Analysis{
		Accesses:                d.accesses,
		Misses:                  d.misses,
		PureMisses:              d.pureMisses,
		HitActiveCycles:         d.hitCycles,
		MissActiveCycles:        d.missCycles,
		PureMissCycles:          d.pureCycles,
		ActiveCycles:            d.activeCyc,
		HitActivity:             d.hitSum,
		PureMissActivity:        d.pureAct,
		PerAccessMissCycles:     d.perMissCyc,
		PerAccessPureMissCycles: d.perPureCyc,
	}
	if d.accesses > 0 {
		an.HitTime = float64(d.hitSum) / float64(d.accesses)
	}
	return an
}

// Params is shorthand for Finalize().Params().
func (d *Detector) Params() camat.Params { return d.Finalize().Params() }
