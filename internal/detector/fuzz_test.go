package detector

import (
	"math"
	"testing"

	"repro/internal/camat"
)

// FuzzDetectorMatchesBatch feeds arbitrary (bounded-jitter) traces to the
// online detector and cross-checks the full analysis against the offline
// sweep — the detector's core correctness contract.
func FuzzDetectorMatchesBatch(f *testing.F) {
	f.Add([]byte{1, 3, 0, 2, 1, 3, 5, 2, 0, 1, 9})
	f.Add([]byte{0, 1, 0, 0, 2, 19, 7, 1, 4})
	f.Add(make([]byte, 48))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr []camat.Access
		var start int64
		for i := 0; i+2 < len(data); i += 3 {
			start += int64(data[i] % 7)
			jitter := int64(data[i+1] % 4)
			tr = append(tr, camat.Access{
				Start:       start - jitter,
				HitCycles:   1 + int(data[i+1]%5),
				MissPenalty: int(data[i+2] % 16),
			})
		}
		if len(tr) == 0 {
			return
		}
		want, err := camat.Analyze(tr)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		d := New(WithLateness(1024))
		for _, a := range tr {
			d.Record(a.Start, a.HitCycles, int64(a.MissPenalty))
		}
		got := d.Finalize()
		if d.LateRecords() != 0 {
			t.Fatalf("late records within lateness bound: %d", d.LateRecords())
		}
		if got.Accesses != want.Accesses ||
			got.Misses != want.Misses ||
			got.PureMisses != want.PureMisses ||
			got.ActiveCycles != want.ActiveCycles ||
			got.PureMissCycles != want.PureMissCycles ||
			got.PerAccessPureMissCycles != want.PerAccessPureMissCycles ||
			math.Abs(got.HitTime-want.HitTime) > 1e-9 {
			t.Fatalf("detector mismatch:\n got %+v\nwant %+v", got, want)
		}
	})
}
