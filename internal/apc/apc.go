// Package apc implements the APC (data Access Per memory-active Cycle)
// metric of Wang & Sun, used in §V / Fig. 13 of the C²-Bound paper to
// compare memory-hierarchy layers. APC counts accesses per cycle in which
// the layer is servicing at least one access, so APC = 1/C-AMAT at the
// layer where both are measured. The Tracker merges possibly-overlapping,
// slightly out-of-order busy intervals exactly.
package apc

import "sort"

type interval struct{ start, end int64 }

// Tracker accumulates a layer's busy intervals and access count.
// It is not safe for concurrent use.
type Tracker struct {
	accesses uint64
	flushed  int64 // active cycles from intervals already retired
	open     []interval
	maxStart int64
	lateness int64
}

// NewTracker builds a tracker. lateness bounds how far behind the newest
// interval start a future interval may begin (same discipline as the
// C-AMAT detector); 0 selects a generous default.
func NewTracker(lateness int64) *Tracker {
	if lateness <= 0 {
		lateness = 1 << 22
	}
	return &Tracker{lateness: lateness}
}

// Add records one access busy during [start, end).
func (t *Tracker) Add(start, end int64) {
	if end <= start {
		return
	}
	t.accesses++
	if start > t.maxStart {
		t.maxStart = start
	}
	// Insert into the sorted disjoint set, merging overlaps.
	i := sort.Search(len(t.open), func(j int) bool { return t.open[j].end >= start })
	j := sort.Search(len(t.open), func(j int) bool { return t.open[j].start > end })
	// Intervals [i, j) overlap or touch [start, end).
	if i < j {
		if t.open[i].start < start {
			start = t.open[i].start
		}
		if t.open[j-1].end > end {
			end = t.open[j-1].end
		}
	}
	merged := append(t.open[:i:i], interval{start, end})
	t.open = append(merged, t.open[j:]...)

	// Retire intervals no future access can extend.
	if len(t.open) > 64 {
		limit := t.maxStart - t.lateness
		k := 0
		for ; k < len(t.open) && t.open[k].end < limit; k++ {
			t.flushed += t.open[k].end - t.open[k].start
		}
		if k > 0 {
			t.open = append(t.open[:0], t.open[k:]...)
		}
	}
}

// Accesses returns the number of recorded accesses.
func (t *Tracker) Accesses() uint64 { return t.accesses }

// ActiveCycles returns the total cycles during which the layer was busy.
func (t *Tracker) ActiveCycles() int64 {
	total := t.flushed
	for _, iv := range t.open {
		total += iv.end - iv.start
	}
	return total
}

// APC returns accesses per memory-active cycle.
func (t *Tracker) APC() float64 {
	c := t.ActiveCycles()
	if c == 0 {
		return 0
	}
	return float64(t.accesses) / float64(c)
}

// CAMAT returns the layer's concurrent average access time, the
// reciprocal of APC.
func (t *Tracker) CAMAT() float64 {
	if t.accesses == 0 {
		return 0
	}
	return float64(t.ActiveCycles()) / float64(t.accesses)
}
