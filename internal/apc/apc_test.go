package apc

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicMerging(t *testing.T) {
	tr := NewTracker(0)
	tr.Add(0, 10)
	tr.Add(5, 15)  // overlaps → union [0,15)
	tr.Add(20, 30) // disjoint
	if got := tr.ActiveCycles(); got != 25 {
		t.Fatalf("active cycles = %d, want 25", got)
	}
	if got := tr.Accesses(); got != 3 {
		t.Fatalf("accesses = %d, want 3", got)
	}
	if got := tr.APC(); math.Abs(got-3.0/25) > 1e-12 {
		t.Fatalf("APC = %v, want 0.12", got)
	}
	if got := tr.CAMAT(); math.Abs(got-25.0/3) > 1e-12 {
		t.Fatalf("CAMAT = %v", got)
	}
}

func TestTouchingIntervalsMerge(t *testing.T) {
	tr := NewTracker(0)
	tr.Add(0, 10)
	tr.Add(10, 20)
	if got := tr.ActiveCycles(); got != 20 {
		t.Fatalf("active cycles = %d, want 20", got)
	}
	if len(tr.open) != 1 {
		t.Fatalf("open intervals = %d, want 1 (merged)", len(tr.open))
	}
}

func TestContainedInterval(t *testing.T) {
	tr := NewTracker(0)
	tr.Add(0, 100)
	tr.Add(10, 20)
	if got := tr.ActiveCycles(); got != 100 {
		t.Fatalf("active cycles = %d, want 100", got)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	tr := NewTracker(0)
	if tr.APC() != 0 || tr.CAMAT() != 0 {
		t.Fatal("empty tracker nonzero")
	}
	tr.Add(10, 10) // zero length ignored
	tr.Add(10, 5)  // negative ignored
	if tr.Accesses() != 0 || tr.ActiveCycles() != 0 {
		t.Fatalf("degenerate intervals counted: %d, %d", tr.Accesses(), tr.ActiveCycles())
	}
}

// bruteUnion computes the union length of intervals directly.
func bruteUnion(iv [][2]int64) int64 {
	if len(iv) == 0 {
		return 0
	}
	sorted := append([][2]int64(nil), iv...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	total := int64(0)
	curS, curE := sorted[0][0], sorted[0][1]
	for _, x := range sorted[1:] {
		if x[0] > curE {
			total += curE - curS
			curS, curE = x[0], x[1]
		} else if x[1] > curE {
			curE = x[1]
		}
	}
	return total + curE - curS
}

func TestMatchesBruteForceUnion(t *testing.T) {
	f := func(seed []byte) bool {
		tr := NewTracker(1 << 30) // no flushing: arbitrary order allowed
		var ivs [][2]int64
		for i := 0; i+2 < len(seed); i += 3 {
			start := int64(seed[i]) * 4
			dur := int64(seed[i+1]%32) + 1
			tr.Add(start, start+dur)
			ivs = append(ivs, [2]int64{start, start + dur})
		}
		if len(ivs) == 0 {
			return true
		}
		return tr.ActiveCycles() == bruteUnion(ivs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushingPreservesTotals(t *testing.T) {
	// Nearly-ordered long stream with small jitter: flushed result equals
	// brute force.
	tr := NewTracker(64)
	var ivs [][2]int64
	x := uint64(99)
	for i := 0; i < 50000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		start := int64(i*3) - int64(x%16)
		if start < 0 {
			start = 0
		}
		end := start + 1 + int64(x%8)
		tr.Add(start, end)
		ivs = append(ivs, [2]int64{start, end})
	}
	if got, want := tr.ActiveCycles(), bruteUnion(ivs); got != want {
		t.Fatalf("flushed union = %d, brute = %d", got, want)
	}
	if len(tr.open) > 256 {
		t.Fatalf("tracker retained %d intervals; flushing ineffective", len(tr.open))
	}
}

func TestAPCOfSaturatedStream(t *testing.T) {
	// Back-to-back accesses of 4 cycles each, 2 overlapping at all times:
	// APC = accesses/activeCycles = 2/4 = 0.5.
	tr := NewTracker(0)
	for i := 0; i < 1000; i++ {
		start := int64(i * 2)
		tr.Add(start, start+4)
	}
	want := 1000.0 / float64(2*999+4)
	if got := tr.APC(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("APC = %v, want %v", got, want)
	}
}
