package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// CheckFixtureDir parses and type-checks a directory of fixture files
// (an analysistest package under some testdata/src/<name>) as the package
// importPath. Imports — standard library or module-internal — are
// resolved offline through `go list -export` run in moduleDir, exactly
// like the main loader, so fixtures may import real repository packages.
func CheckFixtureDir(moduleDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading fixture dir: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing fixture %s: %w", name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: fixture dir %s has no Go files", dir)
	}

	exports := map[string]string{}
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	info := NewInfo()
	conf := types.Config{Importer: imp, Error: func(error) {}}
	typed, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking fixture %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Name:  typed.Name(),
		Fset:  fset,
		Files: files,
		Types: typed,
		Info:  info,
	}, nil
}
