// Command outboundmain is an outboundctx fixture: package main owns its
// process lifetime, so the context-less convenience forms are exempt.
package main

import "net/http"

func main() {
	resp, err := http.Get("http://example.invalid")
	if err != nil {
		return
	}
	resp.Body.Close()
}
