// Package outbound is an outboundctx fixture: a library package, so
// every context-less outbound HTTP form is flagged.
package outbound

import (
	"context"
	"net/http"
	"net/url"
	"strings"
)

func pkgLevelForms() {
	_, _ = http.Get("http://example.invalid")                                               // want "http.Get builds the request on context.Background"
	_, _ = http.Post("http://example.invalid", "text/plain", strings.NewReader("x"))        // want "http.Post builds the request on context.Background"
	_, _ = http.PostForm("http://example.invalid", url.Values{})                            // want "http.PostForm builds the request on context.Background"
	_, _ = http.Head("http://example.invalid")                                              // want "http.Head builds the request on context.Background"
	_, _ = http.NewRequest(http.MethodGet, "http://example.invalid", nil)                   // want "http.NewRequest builds the request on context.Background"
	_, _ = http.NewRequestWithContext(context.Background(), "GET", "http://e.invalid", nil) // ctx-aware form is fine here (ctxflow owns Background misuse)
}

func clientMethods(c *http.Client) {
	_, _ = c.Get("http://example.invalid")                                        // want "Client..Get builds the request on context.Background"
	_, _ = c.Post("http://example.invalid", "text/plain", strings.NewReader("x")) // want "Client..Post builds the request on context.Background"
	_, _ = c.PostForm("http://example.invalid", url.Values{})                     // want "Client..PostForm builds the request on context.Background"
	_, _ = c.Head("http://example.invalid")                                       // want "Client..Head builds the request on context.Background"
}

// do is the sanctioned shape: the request carries the caller's context.
func do(ctx context.Context, c *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.invalid", nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// lookalike proves name matching is type-driven: a local Get on a local
// Client is not net/http's.
type localClient struct{}

func (localClient) Get(string) error { return nil }

func lookalike(c localClient) {
	_ = c.Get("x")
}

func suppressed() {
	//lint:allow outboundctx fixture exercises the suppression path
	_, _ = http.Get("http://example.invalid")
}
