// Package outboundctx guards the outbound half of the cancellation
// contract that httpctx guards inbound: library code making HTTP calls
// with http.Get, http.Post, http.PostForm, http.Head or http.NewRequest
// builds requests on context.Background(), so the call outlives the
// caller's cancellation, ignores its deadline, and pins connections
// through graceful shutdown. The cluster tier made this load-bearing:
// every peer exchange must die with the request that spawned it, or a
// drained server waits on orphaned peer calls forever.
//
// The analyzer flags the package-level convenience forms and the
// equivalent (*http.Client) methods in any non-main package; the fix is
// http.NewRequestWithContext plus client.Do. Command-line tools
// (package main) own their process lifetime and often have no context
// to thread, so they are exempt, mirroring ctxflow's scope. The usual
// `//lint:allow outboundctx <reason>` suppression applies.
package outboundctx

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the outboundctx check.
var Analyzer = &analysis.Analyzer{
	Name: "outboundctx",
	Doc:  "flag context-less outbound HTTP calls (http.Get, http.NewRequest, client.Post, ...) in library code; use http.NewRequestWithContext",
	Run:  run,
}

// pkgFuncs are the flagged package-level net/http convenience calls.
var pkgFuncs = map[string]bool{"Get": true, "Post": true, "PostForm": true, "Head": true, "NewRequest": true}

// clientMethods are the flagged (*http.Client) convenience methods.
// Client.Do is fine: the request it executes carries whatever context
// the caller attached.
var clientMethods = map[string]bool{"Get": true, "Post": true, "PostForm": true, "Head": true}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			switch {
			case sig.Recv() == nil && pkgFuncs[fn.Name()]:
				pass.Reportf(call.Pos(),
					"http.%s builds the request on context.Background, detaching it from the caller's cancellation and deadline; use http.NewRequestWithContext",
					fn.Name())
			case isClientRecv(sig.Recv()) && clientMethods[fn.Name()]:
				pass.Reportf(call.Pos(),
					"(*http.Client).%s builds the request on context.Background, detaching it from the caller's cancellation and deadline; use http.NewRequestWithContext with client.Do",
					fn.Name())
			}
			return true
		})
	}
	return nil
}

// isClientRecv reports whether recv is *net/http.Client.
func isClientRecv(recv *types.Var) bool {
	if recv == nil {
		return false
	}
	ptr, ok := recv.Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Client" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
