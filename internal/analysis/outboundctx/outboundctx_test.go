package outboundctx_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/outboundctx"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), outboundctx.Analyzer, "outbound")
}

func TestMainPackageExempt(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), outboundctx.Analyzer, "outboundmain")
}
