package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowDirective is the suppression marker: a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it silences that
// analyzer there. The reason is mandatory — an allow without a
// justification is itself reported — so every suppression documents why
// the invariant does not apply (e.g. a compat wrapper that must call
// context.Background, or the fault injector whose panic is the feature).
const AllowDirective = "//lint:allow"

// Directive is one parsed allow comment. The suppressor tracks whether
// it ever fired, so `c2vet -suppressions` can audit the repository for
// allows that no longer suppress anything (stale after a refactor moved
// or fixed the code they used to excuse).
type Directive struct {
	// Pos is the comment's position.
	Pos token.Pos
	// Analyzer is the name the directive suppresses.
	Analyzer string
	// used flips when the directive suppresses a diagnostic or a
	// fact-producing site consults it through Pass.Allowed.
	used bool
}

// Used reports whether the directive suppressed anything this run.
func (d *Directive) Used() bool { return d.used }

// allowKey locates one allow comment: the file and line it governs.
type allowKey struct {
	file string
	line int
}

// Suppressor filters diagnostics against the allow comments of a file set.
type Suppressor struct {
	fset *token.FileSet
	// allows maps (file, governed line) to the directives active there.
	allows map[allowKey][]*Directive
	// directives lists every parsed allow in scan order, for auditing.
	directives []*Directive
	// malformed collects allow comments with no reason, reported as
	// diagnostics in their own right so suppressions cannot rot silently.
	malformed []Diagnostic
}

// NewSuppressor scans the comments of files for allow directives. A
// directive governs its own line and the line below it (so it works both
// as a trailing comment and as a lead-in line above the flagged
// statement).
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{fset: fset, allows: make(map[allowKey][]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.scan(c)
			}
		}
	}
	return s
}

// scan parses one comment for an allow directive.
func (s *Suppressor) scan(c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, AllowDirective) {
		return
	}
	fields := strings.Fields(strings.TrimPrefix(text, AllowDirective))
	if len(fields) < 2 {
		s.malformed = append(s.malformed, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: "lint",
			Message:  "lint:allow needs an analyzer name and a reason: //lint:allow <analyzer> <reason>",
		})
		return
	}
	d := &Directive{Pos: c.Pos(), Analyzer: fields[0]}
	s.directives = append(s.directives, d)
	pos := s.fset.Position(c.Pos())
	for _, line := range []int{pos.Line, pos.Line + 1} {
		key := allowKey{file: pos.Filename, line: line}
		s.allows[key] = append(s.allows[key], d)
	}
}

// Allowed reports whether the named analyzer is suppressed at pos,
// marking the matching directive as used.
func (s *Suppressor) Allowed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	allowed := false
	for _, d := range s.allows[allowKey{file: p.Filename, line: p.Line}] {
		if d.Analyzer == analyzer {
			d.used = true
			allowed = true
		}
	}
	return allowed
}

// Directives returns every allow comment in scan order.
func (s *Suppressor) Directives() []*Directive { return s.directives }

// Filter drops suppressed diagnostics and appends one diagnostic per
// malformed (reason-less) allow directive.
func (s *Suppressor) Filter(diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !s.Allowed(d.Analyzer, d.Pos) {
			kept = append(kept, d)
		}
	}
	return append(kept, s.malformed...)
}
