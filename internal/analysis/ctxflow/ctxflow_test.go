package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer, "flow")
}

func TestFacadeFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer, "facade")
}
