// Package flow is a ctxflow fixture: a library package, so the
// Background/TODO and *Ctx-suffix rules both apply.
package flow

import "context"

// SweepCtx lies about its cancellation contract.
func SweepCtx(n int) int { // want "exported SweepCtx carries the Ctx suffix but takes no context.Context"
	return n
}

// RunCtx honours the contract.
func RunCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

func detached() context.Context {
	return context.Background() // want "context.Background detaches library code from the caller's cancellation"
}

func ignoresItsParameter(ctx context.Context) context.Context {
	_ = ctx
	return context.TODO() // want "context.TODO inside a function that already receives a context.Context"
}

func compatWrapper() context.Context {
	//lint:allow ctxflow deliberate non-ctx convenience wrapper for the fixture
	return context.Background()
}

type small struct{}

// ctxless is unexported, so the suffix rule ignores it.
func (small) ctxlessCtx() {}
