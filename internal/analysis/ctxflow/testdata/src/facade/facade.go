// Package c2bound is a ctxflow fixture for the façade entry-point rule:
// the package name triggers façade mode, where exported functions that
// wrap context-aware callees must be context-first or deprecated.
package c2bound

import "context"

// bg lives at package level so the body-scoped Background check stays
// out of the way of the façade rule under test.
var bg = context.Background()

func sweepCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Sweep wraps a context-aware callee but hides the context.
func Sweep(n int) int { // want "exported façade function Sweep wraps the context-aware sweepCtx"
	return sweepCtx(bg, n)
}

// SweepLegacy is the grandfathered v1 form.
//
// Deprecated: use a context-first entry point.
func SweepLegacy(n int) int {
	return sweepCtx(bg, n)
}

// SweepV2 is context-first, the v2 contract.
func SweepV2(ctx context.Context, n int) int {
	return sweepCtx(ctx, n)
}

// Pure has no context-aware callee, so the rule leaves it alone.
func Pure(n int) int { return n + 1 }
