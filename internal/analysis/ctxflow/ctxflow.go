// Package ctxflow enforces the cancellation contract from PR 1: every
// long-running path is context-aware (`SweepCtx`, `RunCtx`,
// `OptimizeCtx`, ...), so a library function that conjures its own
// context.Background() silently detaches its callees from the caller's
// deadline and cancel signal. The analyzer flags
//
//  1. context.Background() / context.TODO() in any non-main package —
//     library code receives its context, it does not invent one (the
//     deliberate non-ctx compat wrappers carry
//     `//lint:allow ctxflow <reason>`),
//  2. the aggravated form: a fresh context created inside a function
//     that already has a context.Context parameter, and
//  3. exported functions named *Ctx that do not take a context.Context —
//     the suffix is the library's contract marker and must not lie, and
//  4. in the public façade package only: a new exported entry point that
//     wraps a context-aware callee but neither takes a context.Context
//     itself nor carries a `// Deprecated:` marker — the v2 façade is
//     context-first, and grandfathered wrappers must say so.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flag context.Background/TODO in library code and *Ctx functions without a context parameter",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	facade := pass.Pkg.Path() == "repro" || pass.Pkg.Name() == "c2bound"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxSuffix(pass, fd)
			if facade {
				checkFacadeEntry(pass, fd)
			}
			if fd.Body == nil {
				continue
			}
			hasCtx := hasContextParam(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, name := range []string{"Background", "TODO"} {
					if analysis.IsPkgCall(pass.TypesInfo, call, "context", name) {
						if hasCtx {
							pass.Reportf(call.Pos(),
								"context.%s inside a function that already receives a context.Context; thread the ctx parameter instead", name)
						} else {
							pass.Reportf(call.Pos(),
								"context.%s detaches library code from the caller's cancellation; accept a context.Context (or suppress with a reason)", name)
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkCtxSuffix flags exported *Ctx functions without a context
// parameter.
func checkCtxSuffix(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !fd.Name.IsExported() || !strings.HasSuffix(name, "Ctx") || len(name) == len("Ctx") {
		return
	}
	if !hasContextParam(pass, fd) {
		pass.Reportf(fd.Name.Pos(),
			"exported %s carries the Ctx suffix but takes no context.Context; the suffix is the cancellation contract marker", name)
	}
}

// checkFacadeEntry flags exported façade functions that delegate to a
// context-aware callee without being context-first themselves and
// without the // Deprecated: marker that grandfathers the v1 wrappers.
func checkFacadeEntry(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Recv != nil || fd.Body == nil {
		return
	}
	if hasContextParam(pass, fd) || isDeprecated(fd.Doc) {
		return
	}
	var callee *types.Func
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if callee != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil && takesContext(fn) {
			callee = fn
			return false
		}
		return true
	})
	if callee != nil {
		pass.Reportf(fd.Name.Pos(),
			"exported façade function %s wraps the context-aware %s but neither takes a context.Context nor carries a // Deprecated: marker; v2 façade entry points are context-first",
			fd.Name.Name, callee.Name())
	}
}

// isDeprecated reports whether a doc comment carries the standard
// "Deprecated:" paragraph marker.
func isDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "Deprecated:") {
			return true
		}
	}
	return false
}

// takesContext reports whether fn's signature has a context.Context
// parameter.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContext(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// hasContextParam reports whether fd declares a context.Context
// parameter.
func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContext(tv.Type) {
			return true
		}
	}
	return false
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
