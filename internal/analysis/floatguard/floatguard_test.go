package floatguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floatguard"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), floatguard.Analyzer, "camat")
	analysistest.Run(t, analysistest.TestData(t), floatguard.Analyzer, "core")
}
