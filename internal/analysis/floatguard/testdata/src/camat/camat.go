// Package camat is a floatguard fixture; its name places it in the
// analyzer's numeric-package set so the validation rule applies.
package camat

import "math"

func equalFloats(a, b float64) bool {
	return a == b // want "floating-point == comparison; use an epsilon"
}

func notEqualFloats(a, b float32) bool {
	return a != b // want "floating-point != comparison; use an epsilon"
}

func vacuousNaN(x float64) bool {
	return x == math.NaN() // want "comparison with math.NaN\(\) is always false; use math.IsNaN"
}

func orderedNaN(x float64) bool {
	return x < math.NaN() // want "comparison with math.NaN\(\) is always false; use math.IsNaN"
}

func intComparisonIsFine(a, b int) bool {
	return a == b
}

func orderedFloatsAreFine(a, b float64) bool {
	return a < b
}

// Ratio lets a possible NaN escape an exported float API.
func Ratio(x float64) float64 {
	return math.Log(x) // want "math.Log result escapes exported Ratio without NaN/Inf validation"
}

// SafeRatio validates with math.IsNaN, so the risky call passes.
func SafeRatio(x float64) float64 {
	v := math.Log(x)
	if math.IsNaN(v) {
		return -1
	}
	return v
}

// CheckedRatio delegates validation to a package helper whose name marks
// it as part of the validation vocabulary.
func CheckedRatio(x float64) float64 {
	return finiteOr(math.Sqrt(x), -1)
}

func finiteOr(v, fallback float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fallback
	}
	return v
}

func sentinel(x float64) float64 {
	if x == 0 { //lint:allow floatguard exact zero is the unset-field sentinel
		return 1
	}
	return x
}

func unexportedEscapeIsFine(x float64) float64 {
	return math.Log2(x)
}
