// Package core is the floatguard fixture for compiled-kernel code
// shapes: its name places it in the analyzer's numeric-package set, so
// exported float APIs must validate range-restricted math, while the
// bit-pattern idioms compiled kernels rely on stay untouched.
package core

import "math"

// Kernel stands in for a compiled evaluation closure's receiver.
type Kernel struct {
	scale float64
}

// Latency applies a log transform with no NaN/Inf guard: flagged.
func (k *Kernel) Latency(x float64) float64 {
	return k.scale * math.Log(x) // want "math.Log result escapes exported Latency without NaN/Inf validation"
}

// LatencyChecked guards the same transform: quiet.
func (k *Kernel) LatencyChecked(x float64) (float64, error) {
	v := k.scale * math.Log(x)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, errDomain
	}
	return v, nil
}

// LatencyFinite delegates to the package validation vocabulary: quiet.
func (k *Kernel) LatencyFinite(x float64) float64 {
	return finite(k.scale * math.Log(x))
}

// SameBits is the kernel cache-key idiom — comparing bit patterns, not
// floats — and must stay quiet: the operands are uint64.
func SameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// KeyOf hashes a point into a kernel cache key; integer arithmetic on
// the bits is fine.
func KeyOf(x float64) uint64 {
	return math.Float64bits(x) * 0x9e3779b97f4a7c15
}

// drift compares floats bit-exactly: flagged wherever it appears.
func drift(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// nanCompare is vacuously false: flagged.
func nanCompare(x float64) bool {
	return x == math.NaN() // want "comparison with math.NaN"
}

// unexported float math is outside rule 3's scope: quiet.
func rawLog(x float64) float64 {
	return math.Log(x)
}

// finite is the package's validation helper.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

type domainError struct{}

func (domainError) Error() string { return "outside domain" }

var errDomain = domainError{}
