// Package floatguard enforces the library's floating-point hygiene: the
// C-AMAT / Sun-Ni quantities (Eq. 2 and 4 of the paper) are ratios of
// measured cycle counts, so a NaN or Inf that escapes unvalidated
// propagates through every downstream bound silently. The analyzer flags
//
//  1. `==` / `!=` between floating-point expressions (bit-exact equality
//     is almost never the intended numeric predicate),
//  2. comparisons against math.NaN(), which are vacuously false (use
//     math.IsNaN), and
//  3. exported float-returning functions in the numeric packages (camat,
//     core, speedup) that call range-restricted math functions
//     (Log/Sqrt/Pow/Exp/...) without any NaN/Inf validation in the same
//     function body — the shared `finite`/`Validate*`/`math.IsNaN`
//     helpers those packages already define.
//
// Intentional bit-exact comparisons (zero sentinels guarding a division,
// IEEE-754 fixtures) carry `//lint:allow floatguard <reason>`.
package floatguard

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the floatguard check.
var Analyzer = &analysis.Analyzer{
	Name: "floatguard",
	Doc:  "flag float equality, math.NaN() comparisons, and unvalidated range-restricted math in exported numeric APIs",
	Run:  run,
}

// numericPackages are the packages whose exported float APIs must
// validate range-restricted math results (rule 3).
var numericPackages = map[string]bool{"camat": true, "core": true, "speedup": true}

// riskyMath are math functions whose result is NaN or Inf on part of
// their domain.
var riskyMath = map[string]bool{
	"Log": true, "Log2": true, "Log10": true, "Log1p": true,
	"Sqrt": true, "Pow": true, "Exp": true, "Expm1": true,
	"Acos": true, "Asin": true, "Atanh": true,
}

// validators are math functions whose presence marks a function body as
// NaN/Inf-aware.
var validators = map[string]bool{"IsNaN": true, "IsInf": true}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok {
			checkComparison(pass, be)
		}
		return true
	})
	if numericPackages[pass.Pkg.Name()] {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					checkValidation(pass, fd)
				}
			}
		}
	}
	return nil
}

// checkComparison flags ==/!= on floats and any comparison with
// math.NaN().
func checkComparison(pass *analysis.Pass, be *ast.BinaryExpr) {
	if !be.Op.IsOperator() {
		return
	}
	switch be.Op.String() {
	case "==", "!=", "<", "<=", ">", ">=":
	default:
		return
	}
	for _, operand := range []ast.Expr{be.X, be.Y} {
		if call, ok := ast.Unparen(operand).(*ast.CallExpr); ok &&
			analysis.IsPkgCall(pass.TypesInfo, call, "math", "NaN") {
			pass.Reportf(be.OpPos, "comparison with math.NaN() is always %v; use math.IsNaN",
				be.Op.String() == "!=")
			return
		}
	}
	if be.Op.String() != "==" && be.Op.String() != "!=" {
		return
	}
	tx, ty := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
	if tx.Type == nil || ty.Type == nil {
		return
	}
	// A comparison with an untyped constant still has float static types
	// on both sides after conversion, so checking both catches `x == 0`
	// with x float64 while ignoring int comparisons.
	if analysis.IsFloat(tx.Type) && analysis.IsFloat(ty.Type) {
		pass.Reportf(be.OpPos,
			"floating-point %s comparison; use an epsilon, math.Float64bits, or suppress with a reason", be.Op)
	}
}

// checkValidation flags exported float-returning functions that use
// range-restricted math with no NaN/Inf validation anywhere in the body.
func checkValidation(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || !fd.Name.IsExported() || !returnsFloat(pass, fd) {
		return
	}
	var firstRisky *ast.CallExpr
	riskyName := ""
	validated := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		name := fn.Name()
		if fn.Pkg() != nil && fn.Pkg().Path() == "math" {
			if validators[name] {
				validated = true
			} else if riskyMath[name] && firstRisky == nil {
				firstRisky = call
				riskyName = name
			}
			return true
		}
		// Any call into the package's own validation vocabulary counts:
		// finite(), Validate*, CheckFeasible-style helpers.
		lower := strings.ToLower(name)
		if strings.Contains(lower, "finite") || strings.Contains(lower, "valid") || strings.Contains(lower, "check") {
			validated = true
		}
		return true
	})
	if firstRisky != nil && !validated {
		pass.Reportf(firstRisky.Pos(),
			"math.%s result escapes exported %s without NaN/Inf validation; guard with math.IsNaN/IsInf or a package validation helper",
			riskyName, fd.Name.Name)
	}
}

// returnsFloat reports whether fd declares at least one floating-point
// result.
func returnsFloat(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && tv.Type != nil && analysis.IsFloat(tv.Type) {
			return true
		}
	}
	return false
}
