package analysis

import (
	"bytes"
	"go/token"
	"go/types"
	"testing"
)

type testFact struct {
	Reason string `json:"reason"`
}

func newFunc(pkg *types.Package, name string) *types.Func {
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, pkg, name, sig)
}

func newMethod(pkg *types.Package, recvName, name string, ptr bool) *types.Func {
	named := types.NewNamed(types.NewTypeName(token.NoPos, pkg, recvName, nil), types.NewStruct(nil, nil), nil)
	var recvType types.Type = named
	if ptr {
		recvType = types.NewPointer(named)
	}
	recv := types.NewVar(token.NoPos, pkg, "r", recvType)
	sig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, pkg, name, sig)
}

func TestFactFlow(t *testing.T) {
	dep := types.NewPackage("example.com/dep", "dep")
	app := types.NewPackage("example.com/app", "app")
	depFn := newFunc(dep, "Clock")
	appFn := newFunc(app, "Eval")

	s := NewFactStore()

	// Analyze dep: export, then read back from the open set.
	s.Begin(dep.Path())
	if err := s.export("detguard", depFn, testFact{Reason: "reads the wall clock"}); err != nil {
		t.Fatalf("export: %v", err)
	}
	var got testFact
	if !s.importFact("detguard", depFn, &got) || got.Reason != "reads the wall clock" {
		t.Fatalf("open-set import = %+v, want the exported fact", got)
	}
	if err := s.Seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}

	// Analyze app: dep's fact resolves from the sealed archive; app's own
	// exports land in the new open set; namespaces stay separate.
	s.Begin(app.Path())
	got = testFact{}
	if !s.importFact("detguard", depFn, &got) || got.Reason != "reads the wall clock" {
		t.Fatalf("sealed import = %+v, want the exported fact", got)
	}
	if s.importFact("atomicguard", depFn, &got) {
		t.Error("fact leaked across analyzer namespaces")
	}
	if s.importFact("detguard", appFn, &got) {
		t.Error("import reported a fact never exported")
	}
	if err := s.export("detguard", depFn, testFact{}); err == nil {
		t.Error("export about a foreign package's object succeeded")
	}
}

func TestFactArchiveDeterminism(t *testing.T) {
	build := func() []byte {
		pkg := types.NewPackage("example.com/p", "p")
		s := NewFactStore()
		s.Begin(pkg.Path())
		// Export in a scrambled order; the archive must not care.
		for _, name := range []string{"Zed", "Alpha", "Mid"} {
			if err := s.export("detguard", newFunc(pkg, name), testFact{Reason: name}); err != nil {
				t.Fatalf("export %s: %v", name, err)
			}
		}
		if err := s.Seal(); err != nil {
			t.Fatalf("seal: %v", err)
		}
		return s.PackageFacts(pkg.Path())
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Errorf("equal analyses sealed unequal archives:\n%s\n%s", a, b)
	}
}

func TestObjectKey(t *testing.T) {
	pkg := types.NewPackage("example.com/p", "p")
	if got := objectKey(newFunc(pkg, "F")); got != "F" {
		t.Errorf("function key = %q, want F", got)
	}
	// Pointerness of the receiver is erased: one method, one key.
	ptr := objectKey(newMethod(pkg, "T", "M", true))
	val := objectKey(newMethod(pkg, "T", "M", false))
	if ptr != "(T).M" || val != "(T).M" {
		t.Errorf("method keys = %q / %q, want (T).M for both", ptr, val)
	}
}

func TestExportRejectsUnserializable(t *testing.T) {
	pkg := types.NewPackage("example.com/p", "p")
	s := NewFactStore()
	s.Begin(pkg.Path())
	if err := s.export("detguard", newFunc(pkg, "F"), make(chan int)); err == nil {
		t.Error("a channel-valued fact serialized")
	}
}
