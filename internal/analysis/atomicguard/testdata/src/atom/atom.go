// Package atom is the atomicguard fixture: mixed atomic/plain access,
// 32-bit 64-bit-alignment hazards, and by-value copies of lock- and
// atomic-bearing types, each seeded once, beside the sanctioned shapes.
package atom

import (
	"sync"
	"sync/atomic"
)

// counter's hits field is atomically updated in touch and read plainly
// in bad; it also sits at a 32-bit-unsafe offset.
type counter struct {
	pad  int32
	hits int64 // want "64-bit atomic field hits sits at offset 4"
}

func (c *counter) touch() { atomic.AddInt64(&c.hits, 1) }

func (c *counter) bad() int64 {
	return c.hits // want "plain access to field hits"
}

// aligned keeps its 64-bit word first: only the mixed access below is
// wrong, not the layout.
type aligned struct {
	n   uint64
	pad int32
}

func (a *aligned) touch() { atomic.AddUint64(&a.n, 1) }

func (a *aligned) reset() {
	a.n = 0 // want "plain access to field n"
}

// guarded embeds a mutex: values must never be copied.
type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) get() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// value receiver forks the mutex state.
func (g guarded) snapshot() int { // want "value receiver copies guarded"
	return g.n
}

func deref(g *guarded) guarded {
	return *g // want "return copies a value of guarded"
}

var sink guarded

func assign(g *guarded) {
	sink = *g // want "assignment copies a value of guarded"
}

func use(guarded) {}

func caller(g *guarded) {
	use(*g) // want "argument copies a value of guarded"
}

// fresh values are construction, not copies.
func fresh() guarded { return guarded{} }

// stats carries a typed atomic; wrapper contains it by value, so the
// no-copy property is transitive.
type stats struct{ n atomic.Uint64 }

type wrapper struct{ s stats }

func snapshotWrapper(w *wrapper) wrapper {
	return *w // want "return copies a value of wrapper"
}

// pointers to no-copy types move freely.
func share(g *guarded) *guarded { return g }

// a documented construction-time copy.
func adopt(g *guarded) guarded {
	return *g //lint:allow atomicguard construction-time copy before the value is shared
}
