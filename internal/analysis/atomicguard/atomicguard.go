// Package atomicguard guards the repository's lock-free structures —
// engine counters, the obs ring and registry, the server's tenant table
// and fair-share gates — against the three ways sync/atomic discipline
// silently rots:
//
//  1. Mixed access: a struct field updated through sync/atomic's
//     package-level functions (atomic.AddInt64(&s.n, 1)) in one place
//     and read or written plainly in another. The plain access races
//     with every atomic one; the race detector only catches it when a
//     test happens to interleave the two.
//  2. By-value copies: copying a struct that contains a mutex,
//     WaitGroup, Cond, Once, sync.Map, sync.Pool, a sync/atomic typed
//     value (atomic.Int64, atomic.Pointer, ...) or an
//     atomically-accessed field forks its synchronization state; the
//     copy guards nothing. Containment is computed transitively and
//     exported as a NoCopyFact, so a dependent package copying an
//     imported type is flagged even though the mutex is three structs
//     deep.
//  3. Alignment: the first-word rule — sync/atomic's 64-bit operations
//     require 8-byte alignment, which 32-bit platforms only guarantee
//     for the first word of an allocation. A plain int64/uint64 field
//     that is atomically accessed but sits at a non-8-aligned offset
//     under 32-bit layout panics on arm/386. (The typed atomic.Int64 and
//     atomic.Uint64 carry their own alignment and are always safe.)
//
// Value receivers on no-copy types, plain-copy assignments, by-value
// arguments and dereferencing returns are flagged; constructors
// returning fresh values and explicitly documented snapshot copies carry
// `//lint:allow atomicguard <reason>`.
package atomicguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the atomicguard check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicguard",
	Doc:  "flag mixed atomic/plain field access, by-value copies of lock- or atomic-bearing types, and 32-bit-unsafe 64-bit atomic fields",
	Run:  run,
}

// NoCopyFact marks a type whose values must not be copied. It
// propagates to importing packages.
type NoCopyFact struct {
	// Reason names the embedded synchronization state, e.g. "contains
	// sync.Mutex (field mu)".
	Reason string `json:"reason"`
}

// atomic64 names the sync/atomic package-level functions operating on
// 64-bit words.
var atomic64 = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// noCopySyncTypes are the sync/sync-atomic types that must never be
// copied after first use.
var noCopySyncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Cond": true,
	"Once": true, "Map": true, "Pool": true,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:       pass,
		atomicArgs: make(map[*ast.SelectorExpr]bool),
		fields:     make(map[*types.Var]*fieldUse),
		noCopy:     make(map[*types.Named]string),
	}
	c.collectAtomicCalls()
	c.checkMixedAndAlignment()
	if err := c.exportNoCopy(); err != nil {
		return err
	}
	c.checkCopies()
	return nil
}

// fieldUse tracks how one struct field is touched.
type fieldUse struct {
	field *types.Var
	// atomicPos is the first sync/atomic access site.
	atomicPos token.Pos
	// fn names the sync/atomic function used (alignment check).
	fn string
}

type checker struct {
	pass *analysis.Pass
	// atomicArgs are the &x.f selector nodes consumed by sync/atomic
	// calls, so the plain-access walk can skip them.
	atomicArgs map[*ast.SelectorExpr]bool
	// fields maps atomically-accessed fields to their use record.
	fields map[*types.Var]*fieldUse
	// noCopy caches the package's no-copy verdicts ("" = copyable).
	noCopy map[*types.Named]string
}

// collectAtomicCalls records every field passed by address to a
// sync/atomic package-level function.
func (c *checker) collectAtomicCalls() {
	c.pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			return true // typed atomics are safe by construction
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			field := c.fieldOf(sel)
			if field == nil {
				continue
			}
			c.atomicArgs[sel] = true
			if _, seen := c.fields[field]; !seen {
				c.fields[field] = &fieldUse{field: field, atomicPos: un.Pos(), fn: fn.Name()}
			}
		}
		return true
	})
}

// fieldOf resolves a selector to the struct field it names, or nil.
func (c *checker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, _ := selection.Obj().(*types.Var)
	return v
}

// checkMixedAndAlignment flags plain accesses to atomically-accessed
// fields and 64-bit atomic fields that violate the 32-bit first-word
// rule.
func (c *checker) checkMixedAndAlignment() {
	if len(c.fields) == 0 {
		return
	}
	c.pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || c.atomicArgs[sel] {
			return true
		}
		field := c.fieldOf(sel)
		if field == nil {
			return true
		}
		if use, hot := c.fields[field]; hot && !c.pass.Allowed(sel.Pos()) {
			c.pass.Reportf(sel.Pos(),
				"plain access to field %s, which is accessed with sync/atomic.%s elsewhere; every load and store must go through sync/atomic (or migrate the field to a typed atomic)",
				field.Name(), use.fn)
		}
		return true
	})

	sizes := types.SizesFor("gc", "386")
	for _, use := range c.fields {
		if !atomic64[use.fn] {
			continue
		}
		owner := fieldOwner(c.pass.Pkg, use.field)
		if owner == nil {
			continue
		}
		st, ok := owner.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var fields []*types.Var
		idx := -1
		for i := 0; i < st.NumFields(); i++ {
			fields = append(fields, st.Field(i))
			if st.Field(i) == use.field {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		offsets := sizes.Offsetsof(fields)
		if offsets[idx]%8 != 0 && !c.pass.Allowed(use.field.Pos()) {
			typed := "Int64"
			if strings.HasSuffix(use.fn, "Uint64") {
				typed = "Uint64"
			}
			c.pass.Reportf(use.field.Pos(),
				"64-bit atomic field %s sits at offset %d of %s under 32-bit layout; sync/atomic requires 8-byte alignment — move it first in the struct or use atomic.%s",
				use.field.Name(), offsets[idx], owner.Obj().Name(), typed)
		}
	}
}

// fieldOwner finds the package-level named struct type declaring field.
func fieldOwner(pkg *types.Package, field *types.Var) *types.Named {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return named
			}
		}
	}
	return nil
}

// noCopyReason reports why t must not be copied ("" when it may).
// Containment is transitive over by-value struct and array fields;
// pointers, slices, maps and channels break the chain.
func (c *checker) noCopyReason(t types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				if noCopySyncTypes[obj.Name()] {
					return "is sync." + obj.Name()
				}
			case "sync/atomic":
				return "is a typed atomic (atomic." + obj.Name() + ")"
			}
			if obj.Pkg() == c.pass.Pkg {
				if reason, ok := c.noCopy[t]; ok {
					return reason
				}
				c.noCopy[t] = "" // cycle breaker: assume copyable while computing
				reason := c.noCopyReason(t.Underlying())
				c.noCopy[t] = reason
				return reason
			}
			var fact NoCopyFact
			if c.pass.ImportObjectFact(obj, &fact) {
				return fact.Reason
			}
		}
		return ""
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if _, hot := c.fields[f]; hot {
				return "contains the atomically-accessed field " + f.Name()
			}
			if inner := c.noCopyReason(f.Type()); inner != "" {
				return "contains field " + f.Name() + ", which " + shortReason(inner)
			}
		}
		return ""
	case *types.Array:
		return c.noCopyReason(t.Elem())
	default:
		return ""
	}
}

// shortReason keeps nested containment messages readable.
func shortReason(r string) string {
	if len(r) > 120 {
		return r[:117] + "..."
	}
	return r
}

// exportNoCopy computes the verdict for every package-level named type
// and exports facts for the uncopyable ones.
func (c *checker) exportNoCopy() error {
	scope := c.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if reason := c.noCopyReason(named); reason != "" {
			if err := c.pass.ExportObjectFact(tn, NoCopyFact{Reason: reason}); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkCopies flags value receivers, plain-copy assignments, by-value
// call arguments and dereferencing returns of no-copy types.
func (c *checker) checkCopies() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				recv := fd.Recv.List[0]
				if tv, ok := c.pass.TypesInfo.Types[recv.Type]; ok {
					if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
						if reason := c.noCopyReason(tv.Type); reason != "" && !c.pass.Allowed(recv.Type.Pos()) {
							c.pass.Reportf(recv.Type.Pos(),
								"value receiver copies %s, which %s; use a pointer receiver",
								typeName(tv.Type), shortReason(reason))
						}
					}
				}
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, rhs := range n.Rhs {
						c.checkCopyExpr(rhs, "assignment")
					}
				case *ast.CallExpr:
					if fn := analysis.CalleeFunc(c.pass.TypesInfo, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
						return true
					}
					for _, arg := range n.Args {
						c.checkCopyExpr(arg, "argument")
					}
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						if _, isStar := ast.Unparen(res).(*ast.StarExpr); isStar {
							c.checkCopyExpr(res, "return")
						}
					}
				}
				return true
			})
		}
	}
}

// checkCopyExpr flags e when it copies an existing no-copy value: an
// identifier, field selection, dereference or index. Composite literals
// and call results are fresh values, not copies of shared state.
func (c *checker) checkCopyExpr(e ast.Expr, context string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return
	}
	if tv.IsNil() || tv.IsType() {
		return
	}
	if reason := c.noCopyReason(tv.Type); reason != "" && !c.pass.Allowed(e.Pos()) {
		c.pass.Reportf(e.Pos(), "%s copies a value of %s, which %s; pass a pointer",
			context, typeName(tv.Type), shortReason(reason))
	}
}

// typeName renders a short type name for messages.
func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
