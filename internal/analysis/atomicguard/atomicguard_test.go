package atomicguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicguard"
)

func TestAtomicguard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicguard.Analyzer, "atom")
}
