// Package errwrap enforces the error-chain contract the robustness layer
// (PR 1) depends on: solve.ConvergenceError, robust.PanicError and the
// retry machinery are all consumed through errors.Is/errors.As, which
// only see through fmt.Errorf when the error argument is wrapped with
// %w. The analyzer flags
//
//  1. fmt.Errorf calls that receive an error-typed argument but whose
//     format string has no %w verb (the chain is silently cut), and
//  2. `panic(...)` in non-main library packages — invariant violations
//     must surface as returned errors so the engine's panic guard and
//     retry policy can do their job. Package robust itself is exempt:
//     its fault injector raises panics by design to exercise the guard.
//
// Deliberate panics elsewhere carry `//lint:allow errwrap <reason>`.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errwrap check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "flag fmt.Errorf calls that format errors without %w and panics in library code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pkgName := pass.Pkg.Name()
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.IsPkgCall(pass.TypesInfo, call, "fmt", "Errorf") {
			checkErrorf(pass, call)
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" &&
				pkgName != "main" && pkgName != "robust" {
				pass.Reportf(call.Pos(),
					"panic in library code defeats the robust/engine guard; return an error (or suppress with a reason)")
			}
		}
		return true
	})
	return nil
}

// checkErrorf flags fmt.Errorf("...", args...) when an arg is an error
// but the (constant) format string carries no %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, arg := range call.Args[1:] {
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if types.Implements(at.Type, errType) {
			pass.Reportf(arg.Pos(),
				"error argument formatted without %%w cuts the errors.Is/As chain; use %%w (or suppress with a reason)")
			return
		}
	}
}
