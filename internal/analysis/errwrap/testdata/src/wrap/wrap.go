// Package wrap is an errwrap fixture: a library package (neither main
// nor robust), so both the %w rule and the panic rule apply.
package wrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func cutsTheChain(err error) error {
	return fmt.Errorf("analysis failed: %v", err) // want "error argument formatted without %w cuts the errors.Is/As chain"
}

func keepsTheChain(err error) error {
	return fmt.Errorf("analysis failed: %w", err)
}

func noErrorArgIsFine(n int) error {
	return fmt.Errorf("bad core count %d", n)
}

func libraryPanic() {
	panic("invariant violated") // want "panic in library code defeats the robust/engine guard"
}

func documentedPanic() {
	//lint:allow errwrap fixture exercises the deliberate-panic escape hatch
	panic("by design")
}

func dynamicFormatIsFine(format string) error {
	return fmt.Errorf(format, errBase)
}
