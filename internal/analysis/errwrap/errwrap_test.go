package errwrap_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errwrap"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errwrap.Analyzer, "wrap")
}
