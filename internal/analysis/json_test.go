package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// reportFixture builds a report from diagnostics seeded deliberately out
// of order across two files.
func reportFixture(t *testing.T) Report {
	t.Helper()
	fset := token.NewFileSet()
	moduleDir := string(filepath.Separator) + filepath.Join("mod")
	fileA := fset.AddFile(filepath.Join(moduleDir, "internal", "a", "a.go"), -1, 1000)
	fileB := fset.AddFile(filepath.Join(moduleDir, "internal", "b", "b.go"), -1, 1000)
	for _, f := range []*token.File{fileA, fileB} {
		f.SetLinesForContent(bytes.Repeat([]byte("x\n"), 400))
	}
	at := func(f *token.File, line int) token.Pos { return f.LineStart(line) }
	diags := []Diagnostic{
		{Analyzer: "ctxsleep", Pos: at(fileB, 7), Message: "later file first"},
		{Analyzer: "floatguard", Pos: at(fileA, 40), Message: "later line first"},
		{Analyzer: "floatguard", Pos: at(fileA, 3), Message: "b of two on one line"},
		{Analyzer: "ctxsleep", Pos: at(fileA, 3), Message: "a of two on one line"},
	}
	return NewReport(moduleDir, fset, diags)
}

func TestReportOrderAndPaths(t *testing.T) {
	r := reportFixture(t)
	var got []string
	for _, f := range r.Findings {
		got = append(got, f.File+":"+f.Analyzer)
	}
	want := []string{
		"internal/a/a.go:ctxsleep",
		"internal/a/a.go:floatguard",
		"internal/a/a.go:floatguard",
		"internal/b/b.go:ctxsleep",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("finding order = %v, want %v", got, want)
	}
	for _, f := range r.Findings {
		if strings.Contains(f.File, "\\") || filepath.IsAbs(f.File) {
			t.Errorf("file %q is not a slashed module-relative path", f.File)
		}
	}
}

// TestReportRoundTrip is the acceptance check: Write's bytes, decoded
// with encoding/json and re-encoded, reproduce themselves exactly.
func TestReportRoundTrip(t *testing.T) {
	r := reportFixture(t)
	var first bytes.Buffer
	if err := r.Write(&first); err != nil {
		t.Fatalf("write: %v", err)
	}
	var decoded Report
	if err := json.Unmarshal(first.Bytes(), &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	var second bytes.Buffer
	if err := decoded.Write(&second); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("round trip changed the bytes:\n%s\n%s", first.Bytes(), second.Bytes())
	}
	if decoded.Version != ReportVersion {
		t.Errorf("version = %q, want %q", decoded.Version, ReportVersion)
	}
}

// TestEmptyReport pins the zero-finding encoding: findings is [], never
// null, so consumers can range without a nil check.
func TestEmptyReport(t *testing.T) {
	r := NewReport("/mod", token.NewFileSet(), nil)
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	want := `{"version":"` + ReportVersion + `","findings":[]}` + "\n"
	if buf.String() != want {
		t.Errorf("empty report = %q, want %q", buf.String(), want)
	}
}
