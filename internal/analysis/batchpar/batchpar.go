// Package batchpar enforces the batched-evaluation pairing invariant
// from the batch-vectorized engine work: every concrete type that
// implements the batched kernel (engine.BatchEvaluator's
//
//	EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error
//
// method) must also carry the scalar EvaluateCtx method. The engine's
// chunked dispatch, the in-flight dedup fallback and the differential
// tests all assume the two paths coexist on the same value: a
// batch-only type would be routed point-by-point through a scalar
// method it does not have, or — worse — silently skip the engine's
// scalar contract the bit-identity tests compare against.
//
// The analyzer inspects every package-level defined type, matches the
// exact batch signature (so unrelated EvaluateBatch methods pass), and
// reports types whose pointer method set lacks EvaluateCtx. Interfaces
// are exempt: engine.BatchEvaluator itself declares only the batched
// half by design.
package batchpar

import (
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the batchpar check.
var Analyzer = &analysis.Analyzer{
	Name: "batchpar",
	Doc:  "require every EvaluateBatch implementer to also implement the scalar EvaluateCtx",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Interface); ok {
			continue
		}
		// The pointer method set includes both value and pointer
		// receivers — exactly what the engine's interface assertions see
		// for addressable evaluators.
		mset := types.NewMethodSet(types.NewPointer(named))
		batch := lookupMethod(mset, "EvaluateBatch")
		if batch == nil || !isBatchSignature(batch.Type().(*types.Signature)) {
			continue
		}
		if lookupMethod(mset, "EvaluateCtx") == nil {
			pass.Reportf(tn.Pos(),
				"%s implements EvaluateBatch without the scalar EvaluateCtx; the engine's per-point fallback (dedup, retries, anonymous dispatch) requires both", name)
		}
	}
	return nil
}

// lookupMethod finds the named method in a method set, or nil.
func lookupMethod(mset *types.MethodSet, name string) *types.Func {
	for i := 0; i < mset.Len(); i++ {
		if f, ok := mset.At(i).Obj().(*types.Func); ok && f.Name() == name {
			return f
		}
	}
	return nil
}

// isBatchSignature matches the engine.BatchEvaluator contract:
// (context.Context, [][]float64, []float64) error.
func isBatchSignature(sig *types.Signature) bool {
	params, results := sig.Params(), sig.Results()
	if params.Len() != 3 || results.Len() != 1 {
		return false
	}
	return isContext(params.At(0).Type()) &&
		isFloatSlice(sliceElem(params.At(1).Type())) &&
		isFloatSlice(params.At(2).Type()) &&
		types.Identical(results.At(0).Type(), types.Universe.Lookup("error").Type())
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// sliceElem returns t's element type when t is a slice, nil otherwise.
func sliceElem(t types.Type) types.Type {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	return s.Elem()
}

// isFloatSlice reports whether t is []float64.
func isFloatSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	elem := sliceElem(t)
	if elem == nil {
		return false
	}
	b, ok := elem.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
