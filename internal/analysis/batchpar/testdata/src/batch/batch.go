// Package batch is a batchpar fixture covering paired, unpaired,
// unrelated-signature, interface, embedded and suppressed cases.
package batch

import "context"

// Paired implements both halves of the evaluator contract — sanctioned.
type Paired struct{}

func (Paired) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	return 0, nil
}

func (Paired) EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error {
	return nil
}

// PointerPaired pairs the methods across receiver kinds; the pointer
// method set sees both — sanctioned.
type PointerPaired struct{}

func (*PointerPaired) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	return 0, nil
}

func (PointerPaired) EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error {
	return nil
}

// BatchOnly carries the batched kernel without the scalar method.
type BatchOnly struct{} // want "BatchOnly implements EvaluateBatch without the scalar EvaluateCtx"

func (BatchOnly) EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error {
	return nil
}

// Unrelated has an EvaluateBatch with a foreign signature — not the
// engine contract, so it passes.
type Unrelated struct{}

func (Unrelated) EvaluateBatch(n int) error { return nil }

// BatchIface mirrors engine.BatchEvaluator: interfaces declare only the
// batched half by design and are exempt.
type BatchIface interface {
	EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error
}

// Embedded promotes the batched kernel from BatchOnly without adding the
// scalar method; promotion does not excuse the pairing.
type Embedded struct { // want "Embedded implements EvaluateBatch without the scalar EvaluateCtx"
	BatchOnly
}

// EmbeddedPaired promotes the batch half and adds its own scalar half.
type EmbeddedPaired struct {
	BatchOnly
}

func (EmbeddedPaired) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	return 0, nil
}

//lint:allow batchpar fixture documents the suppression path
type Suppressed struct {
	BatchOnly
}
