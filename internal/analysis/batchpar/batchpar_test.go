package batchpar_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/batchpar"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), batchpar.Analyzer, "batch")
}
