package paramdomain_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/paramdomain"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), paramdomain.Analyzer, "params")
}
