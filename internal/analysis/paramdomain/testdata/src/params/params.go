// Package params is a paramdomain fixture exercising both domain
// sources: comment-declared fields in this package and the builtin
// cross-package table (camat.Params), which the fixture reaches by
// importing the real repository package.
package params

import (
	"repro/internal/camat"
	"repro/internal/model"
)

// Knobs carries documented model parameters.
type Knobs struct {
	// PDrop is the probability of dropping a sample, in [0,1].
	PDrop float64
	// Arrival is the request rate per cycle.
	Arrival float64
	// Label has no domain vocabulary in its comment.
	Label float64
}

func outOfDomainLiteral() Knobs {
	return Knobs{
		PDrop:   1.5, // want "PDrop is documented as \[0,1\] but gets constant 1.5"
		Arrival: 3,
	}
}

func negativeRateLiteral() Knobs {
	return Knobs{Arrival: -2} // want "Arrival is documented as \[0,∞\) but gets constant -2"
}

func outOfDomainAssign(k *Knobs) {
	k.PDrop = 2 // want "PDrop is documented as \[0,1\] but gets constant 2"
}

func inDomainIsFine() Knobs {
	k := Knobs{PDrop: 0.25, Arrival: 0}
	k.PDrop = 1
	k.Label = -40
	return k
}

func builtinTableCatchesImports() camat.Params {
	var p camat.Params
	p.MR = 1.25 // want "MR is documented as \[0,1\] but gets constant 1.25"
	return p
}

func documentedStressValue() camat.Params {
	var p camat.Params
	//lint:allow paramdomain deliberate out-of-range stress input for the fixture
	p.PMR = 2
	return p
}

func nonConstantIsFine(v float64) Knobs {
	return Knobs{PDrop: v}
}

// The builtin table also covers the model-family parameter structs.
func builtinTableCatchesFamilies() {
	var g model.GPU
	g.MFMA = 1.5 // want "MFMA is documented as \[0,1\] but gets constant 1.5"
	g.FFP32 = 0.3
	var c model.CommSync
	c.DeltaSync = -0.25 // want "DeltaSync is documented as \[0,1\] but gets constant -0.25"
	c.DeltaComm = 0.01
	_ = g
	_ = c
}
