// Package paramdomain guards the model-parameter domains the paper's
// equations assume: miss ratios, write fractions and injection
// probabilities live in [0,1], rates are non-negative. A constant
// assigned outside the documented domain is a bug that no test may
// catch until a silently-wrong bound ships, so the analyzer rejects it
// at vet time. Two sources define the domain:
//
//  1. doc comments — a struct field whose comment mentions
//     "probability", "fraction" or "[0,1]" is a unit-interval field; a
//     comment with the word "rate" marks a non-negative field (visible
//     for same-package declarations, where the AST carries comments);
//  2. a builtin table for the library's cross-package parameter structs
//     (robust.FaultyEvaluator's injection probabilities, camat.Params'
//     miss ratios), whose declarations other packages only see through
//     export data.
//
// Flagged sites are keyed composite literals and field assignments with
// out-of-domain constant values.
package paramdomain

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// Analyzer is the paramdomain check.
var Analyzer = &analysis.Analyzer{
	Name: "paramdomain",
	Doc:  "flag constants outside the documented domain of probability/rate model parameters",
	Run:  run,
}

// domain is a value range a parameter must respect.
type domain int

const (
	unitInterval domain = iota // [0,1]
	nonNegative                // [0,∞)
)

// String names the domain in diagnostics.
func (d domain) String() string {
	if d == unitInterval {
		return "[0,1]"
	}
	return "[0,∞)"
}

// contains reports whether v lies in the domain.
func (d domain) contains(v float64) bool {
	if v < 0 {
		return false
	}
	return d == nonNegative || v <= 1
}

// builtin lists cross-package parameter fields as pkgname.Type.Field.
var builtin = map[string]domain{
	"robust.FaultyEvaluator.PFail":  unitInterval,
	"robust.FaultyEvaluator.PPanic": unitInterval,
	"robust.FaultyEvaluator.PStall": unitInterval,
	"camat.Params.MR":               unitInterval,
	"camat.Params.PMR":              unitInterval,
	// Model-family parameters (internal/model): occupancy and ratio
	// knobs the family registry validates at runtime; the analyzer
	// rejects out-of-domain constants statically at cross-package use
	// sites.
	"model.GPU.MFMA":           unitInterval,
	"model.GPU.FFP32":          unitInterval,
	"model.CommSync.DeltaSync": unitInterval,
	"model.CommSync.DeltaComm": unitInterval,
}

var (
	unitRx    = regexp.MustCompile(`(?i)probabilit|fraction|\[0, ?1\]`)
	nonNegRx  = regexp.MustCompile(`(?i)\brates?\b`)
	docDomain = func(text string) (domain, bool) {
		switch {
		case unitRx.MatchString(text):
			return unitInterval, true
		case nonNegRx.MatchString(text):
			return nonNegative, true
		}
		return 0, false
	}
)

func run(pass *analysis.Pass) error {
	commented := collectCommented(pass)

	// fieldDomain resolves the domain of a field object, if any.
	fieldDomain := func(obj types.Object) (domain, bool) {
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			return 0, false
		}
		if d, ok := commented[v]; ok {
			return d, true
		}
		if v.Pkg() == nil {
			return 0, false
		}
		// Builtin entries are keyed by the owning struct; scan the table
		// by package and field name (small, exact-match table).
		for key, d := range builtin {
			if key == v.Pkg().Name()+"."+ownerName(pass, v)+"."+v.Name() {
				return d, true
			}
		}
		return 0, false
	}

	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[key]
				if obj == nil {
					continue
				}
				if d, ok := fieldDomain(obj); ok {
					checkValue(pass, kv.Value, key.Name, d)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[sel.Sel]
				if obj == nil {
					continue
				}
				if d, ok := fieldDomain(obj); ok {
					checkValue(pass, n.Rhs[i], sel.Sel.Name, d)
				}
			}
		}
		return true
	})
	return nil
}

// collectCommented maps same-package struct fields to domains declared in
// their doc or line comments.
func collectCommented(pass *analysis.Pass) map[*types.Var]domain {
	out := make(map[*types.Var]domain)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := ""
				if field.Doc != nil {
					text += field.Doc.Text()
				}
				if field.Comment != nil {
					text += " " + field.Comment.Text()
				}
				d, ok := docDomain(text)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = d
					}
				}
			}
			return true
		})
	}
	return out
}

// ownerName returns the name of the named struct type declaring field v,
// or "" when unknown.
func ownerName(pass *analysis.Pass, v *types.Var) string {
	// The field's position is inside its struct declaration; walking the
	// package scope for a named struct containing exactly this field
	// object identifies the owner without extra bookkeeping.
	pkg := v.Pkg()
	if pkg == nil {
		return ""
	}
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}

// checkValue flags expr when it is a numeric constant outside d.
func checkValue(pass *analysis.Pass, expr ast.Expr, field string, d domain) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil {
		return
	}
	val := constant.ToFloat(tv.Value)
	if val.Kind() != constant.Float {
		return
	}
	v, _ := constant.Float64Val(val)
	if !d.contains(v) {
		pass.Reportf(expr.Pos(), "%s is documented as %s but gets constant %v", field, d, v)
	}
}
