package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path (e.g. "repro/internal/camat").
	Path string
	// Name is the package name (e.g. "camat").
	Name string
	// Fset positions the package's files.
	Fset *token.FileSet
	// Files are the parsed non-test compilation units, comments included.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's fact tables.
	Info *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (relative to dir, the
// module root) and returns them in `go list` order. It works fully
// offline: package discovery and export data for dependencies both come
// from `go list -export -json -deps`, and the std gc importer consumes
// the export files through a lookup function, so no module downloads and
// no third-party importer are required.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			p := p
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	// One shared importer so dependency packages are materialized once.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -export -json -deps` and decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	var listed []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		listed = append(listed, &p)
	}
	return listed, nil
}

// checkPackage parses and type-checks one target package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, t *listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect everything; first error returned below
	}
	typed, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		Path:  t.ImportPath,
		Name:  t.Name,
		Fset:  fset,
		Files: files,
		Types: typed,
		Info:  info,
	}, nil
}

// NewInfo builds a types.Info with every fact table analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
