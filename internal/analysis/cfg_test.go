package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildCFG parses src (a file body with one function named f) and builds
// the CFG of f.
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f(ch chan int, done chan struct{}, n int, x bool) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == "f" {
			return NewCFG(fn.Body)
		}
	}
	t.Fatal("no func f")
	return nil
}

func TestExitReachable(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"straight line", "x = !x", true},
		{"bare return", "return", true},
		{"infinite loop", "for {\n}", false},
		{"infinite receive loop", "for {\n<-ch\n}", false},
		{"loop with break", "for {\nif x {\nbreak\n}\n}", true},
		{"loop with return in select", "for {\nselect {\ncase <-done:\nreturn\ncase v := <-ch:\n_ = v\n}\n}", true},
		{"select without escape", "for {\nselect {\ncase v := <-ch:\n_ = v\n}\n}", false},
		{"conditional loop", "for i := 0; i < n; i++ {\n}", true},
		{"range loop", "for v := range ch {\n_ = v\n}", true},
		{"labeled break from inner loop", "outer:\nfor {\nfor {\nbreak outer\n}\n}", true},
		{"continue never exits", "for {\nif x {\ncontinue\n}\n<-ch\n}", false},
		{"goto past the loop", "for {\nif x {\ngoto out\n}\n}\nout:\nx = true", true},
		{"switch all paths spin", "switch {\ncase x:\nfor {\n}\ndefault:\nfor {\n}\n}", false},
		{"switch one path falls out", "switch {\ncase x:\nfor {\n}\ndefault:\n}", true},
		{"empty select", "select {\n}", false},
		{"nested literal does not terminate for us", "go func() {\nreturn\n}()\nfor {\n}", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := buildCFG(t, tc.body).ExitReachable(); got != tc.want {
				t.Errorf("ExitReachable = %v, want %v\nbody:\n%s", got, tc.want, tc.body)
			}
		})
	}
}

func TestReaches(t *testing.T) {
	isRecv := func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	}

	// The receive sits after an unconditional spin: unreachable.
	g := buildCFG(t, "for {\n}\n<-ch")
	if g.Reaches(isRecv) {
		t.Error("Reaches found a receive past an infinite loop")
	}

	// The receive is inside the live loop body: reachable.
	g = buildCFG(t, "for {\n<-ch\n}")
	if !g.Reaches(isRecv) {
		t.Error("Reaches missed a receive in a live loop body")
	}

	// Receives inside function literals belong to another graph.
	g = buildCFG(t, "go func() {\n<-ch\n}()")
	if g.Reaches(isRecv) {
		t.Error("Reaches descended into a function literal")
	}
}
