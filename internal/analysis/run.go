package analysis

import (
	"fmt"
	"io"
	"sort"
)

// RunPackage applies one analyzer to one loaded package and returns its
// raw (unsuppressed) diagnostics, each stamped with the analyzer name.
func RunPackage(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		},
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
	}
	return diags, nil
}

// Run applies every analyzer to every package, honours `//lint:allow`
// suppressions, and returns the surviving diagnostics sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		sup := NewSuppressor(pkg.Fset, pkg.Files)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			diags, err := RunPackage(a, pkg)
			if err != nil {
				return nil, err
			}
			pkgDiags = append(pkgDiags, diags...)
		}
		all = append(all, sup.Filter(pkgDiags)...)
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.SliceStable(all, func(i, j int) bool {
			pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return pi.Column < pj.Column
		})
	}
	return all, nil
}

// Print renders diagnostics as file:line:col: [analyzer] message, one per
// line, using the file set of the packages they came from.
func Print(w io.Writer, pkgs []*Package, diags []Diagnostic) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
}
