package analysis

import (
	"fmt"
	"go/token"
	"io"
	"sort"
)

// RunPackage applies one analyzer to one loaded package in isolation
// (fresh fact store, fresh suppressor) and returns its raw
// (unsuppressed) diagnostics, each stamped with the analyzer name. The
// fixture harness uses it; the multichecker driver is Run, which shares
// facts and suppressors across the whole package graph.
func RunPackage(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	facts := NewFactStore()
	facts.Begin(pkg.Path)
	return runPackage(a, pkg, NewSuppressor(pkg.Fset, pkg.Files), facts)
}

// runPackage applies one analyzer to one package with the run's shared
// suppressor and fact store.
func runPackage(a *Analyzer, pkg *Package, sup *Suppressor, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		},
		suppress: sup,
		facts:    facts,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
	}
	return diags, nil
}

// StaleAllow is one `//lint:allow` directive that suppressed nothing
// during a full run: the code it excused was fixed or moved, so the
// comment is dead and should be removed (`c2vet -suppressions`).
type StaleAllow struct {
	// Pos is the directive's position.
	Pos token.Pos
	// Analyzer is the name the directive tried to suppress.
	Analyzer string
	// Unknown marks a directive naming no analyzer in the active suite
	// (a typo, or a check that was since renamed).
	Unknown bool
}

// Run applies every analyzer to every package in load order — which is
// `go list -deps` dependency order, so fact-exporting analyzers see
// their dependencies' facts — honours `//lint:allow` suppressions, and
// returns the surviving diagnostics sorted by position plus the audit of
// allow directives that suppressed nothing.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, []StaleAllow, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	facts := NewFactStore()
	var all []Diagnostic
	var stale []StaleAllow
	for _, pkg := range pkgs {
		sup := NewSuppressor(pkg.Fset, pkg.Files)
		facts.Begin(pkg.Path)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			diags, err := runPackage(a, pkg, sup, facts)
			if err != nil {
				return nil, nil, err
			}
			pkgDiags = append(pkgDiags, diags...)
		}
		all = append(all, sup.Filter(pkgDiags)...)
		if err := facts.Seal(); err != nil {
			return nil, nil, err
		}
		for _, d := range sup.Directives() {
			if !d.Used() {
				stale = append(stale, StaleAllow{Pos: d.Pos, Analyzer: d.Analyzer, Unknown: !known[d.Analyzer]})
			}
		}
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sortDiagnostics(fset, all)
		sort.SliceStable(stale, func(i, j int) bool {
			return positionLess(fset.Position(stale[i].Pos), fset.Position(stale[j].Pos))
		})
	}
	return all, stale, nil
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer
// and message — a total order, so equal runs render byte-equal output
// across packages and analyzers (CI diffs stay stable).
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if !positionsEqual(pi, pj) {
			return positionLess(pi, pj)
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

func positionsEqual(a, b token.Position) bool {
	return a.Filename == b.Filename && a.Line == b.Line && a.Column == b.Column
}

func positionLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// Print renders diagnostics as file:line:col: [analyzer] message, one per
// line, using the file set of the packages they came from.
func Print(w io.Writer, pkgs []*Package, diags []Diagnostic) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
}

// PrintStale renders the suppression audit, one dead allow per line.
func PrintStale(w io.Writer, pkgs []*Package, stale []StaleAllow) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	for _, s := range stale {
		pos := fset.Position(s.Pos)
		why := "suppresses nothing"
		if s.Unknown {
			why = "names no active analyzer"
		}
		fmt.Fprintf(w, "%s: [suppressions] stale //lint:allow %s: %s; remove it\n", pos, s.Analyzer, why)
	}
}
