// Package analysis is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library so the repository stays dependency-free. It provides
//
//   - the Analyzer / Pass / Diagnostic vocabulary shared by every
//     domain-specific checker under internal/analysis/...,
//   - an offline package loader (loader.go) that type-checks the module
//     with export data obtained from `go list -export`, so no network or
//     third-party importer is needed,
//   - the `//lint:allow <analyzer> <reason>` suppression convention
//     (suppress.go), applied uniformly by the driver and the fixture
//     runner, and
//   - a driver (run.go) used by cmd/c2vet to run every analyzer over the
//     loaded packages and render findings as file:line:col diagnostics.
//
// Fixture-based tests for individual analyzers use the companion package
// internal/analysis/analysistest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named, documented check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppression comments.
	Name string
	// Doc is a short description of what the analyzer enforces.
	Doc string
	// Run performs the check on one package and reports findings through
	// pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files are the package's parsed compilation units (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's fact tables for the files.
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)

	// suppress is the package's allow-directive index, so analyzers that
	// derive facts from code sites can honour documented exceptions at
	// the source (a suppressed nondeterminism site must not taint its
	// function's callers).
	suppress *Suppressor
	// facts is the run-wide interprocedural fact store.
	facts *FactStore
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether this analyzer is suppressed by a
// `//lint:allow` directive at pos. Analyzers consult it before deriving
// interprocedural facts from a site: a documented exception both
// silences the local diagnostic and stops the fact from propagating to
// dependent packages.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.suppress == nil {
		return false
	}
	return p.suppress.Allowed(p.Analyzer.Name, pos)
}

// ExportObjectFact publishes a JSON-serializable fact about a
// package-level object of the package under analysis. Packages that
// import this one read it back with ImportObjectFact.
func (p *Pass) ExportObjectFact(obj types.Object, fact interface{}) error {
	return p.facts.export(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact decodes this analyzer's fact about obj into fact (a
// pointer), reporting whether one was exported — by a dependency
// package analyzed earlier, or by this very pass for same-package
// objects.
func (p *Pass) ImportObjectFact(obj types.Object, fact interface{}) bool {
	return p.facts.importFact(p.Analyzer.Name, obj, fact)
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding in the file set.
	Pos token.Pos
	// Message describes the violation and, ideally, the fix.
	Message string
	// Analyzer is the reporting analyzer's name (filled by the driver).
	Analyzer string
}

// Inspect walks every file of the pass in depth-first order, calling fn
// for each node; fn returning false prunes the subtree.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// IsFloat reports whether t's underlying type is a floating-point kind.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// CalleeFunc resolves the *types.Func a call expression invokes (method or
// package-level function), or nil for indirect calls through values,
// builtins and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgCall reports whether call invokes the package-level function
// pkgPath.name (e.g. "context".Background).
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}
