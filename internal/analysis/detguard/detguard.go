// Package detguard encodes the repository's load-bearing determinism
// invariant: every value that can reach an evaluation result, a cache
// key, a checkpoint, or a persisted job result must be a pure function
// of its inputs. Bit-identical checkpoint resume (PR 1), bit-for-bit
// cache-hit identity and batch-vs-scalar equality (PR 7) and the
// fingerprint-keyed shared cache all assume it; one wall-clock read or
// unordered map iteration feeding a result silently breaks every one of
// those guarantees, and the planned distributed cache tier would turn
// the breakage cross-process.
//
// The analyzer works interprocedurally on the framework's facts and is
// transitive in both directions:
//
//   - Downward (must-be-deterministic marking): functions whose names
//     identify the protected entry points — Evaluate/EvaluateCtx/
//     EvaluateBatch/EvaluateStream (evaluation), TimeAt/TimeWorkAt/
//     Compile (compiled kernels), Fingerprint/Signature/hashFP/hashPoint
//     (cache keys), anything containing "Checkpoint", and the job result
//     builders runSweep/runAPS — are roots. Every function they
//     statically call inside the package is transitively
//     must-be-deterministic.
//   - Upward (nondeterminism facts): a function whose body reads the
//     wall clock (time.Now/Since/Until), calls math/rand's or
//     crypto/rand's package-level functions, or ranges over a map
//     exports a NondetFact; so does any function calling one, locally or
//     across packages. Dependency packages are analyzed first (`go list
//     -deps` order), so by the time the evaluation path is inspected the
//     taint of every callee is known.
//
// Inside a must-be-deterministic function, detguard flags the direct
// nondeterminism sites — wall-clock reads, global rand, `range` over a
// map (unordered iteration feeding results), and select statements with
// two or more competing data receives (scheduler-order nondeterminism) —
// and every call to a tainted function of another package.
//
// Deliberate exceptions — a wall-clock read that feeds a metrics
// histogram and provably never the result — carry `//lint:allow detguard
// <reason>` at the site; the suppression also stops the taint from
// propagating to callers, so one documented sink does not poison the
// whole dependency graph above it. Methods on *rand.Rand are not flagged
// at all: a seeded rand.Source is deterministic by construction, and the
// seed's provenance is covered by the wall-clock rule.
//
// internal/obs is exempt: observability is wall-clock business by
// design, and PR 4's bit-exactness tests prove it never feeds results.
package detguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the detguard check.
var Analyzer = &analysis.Analyzer{
	Name: "detguard",
	Doc:  "flag wall-clock, global rand, map-order and select nondeterminism in (or reachable from) evaluation/checkpoint/cache-key/job-result paths",
	Run:  run,
}

// NondetFact marks a function whose behavior depends on something other
// than its inputs. It propagates to callers across packages.
type NondetFact struct {
	// Reason names the root cause, e.g. "reads the wall clock
	// (time.Now)" or "calls dse.SweepCtx, which reads the wall clock".
	Reason string `json:"reason"`
}

// rootNames are the function/method names that anchor
// must-be-deterministic paths.
var rootNames = map[string]bool{
	"Evaluate": true, "EvaluateCtx": true, "EvaluateBatch": true, "EvaluateStream": true,
	"TimeAt": true, "TimeWorkAt": true, "Compile": true,
	"Fingerprint": true, "Signature": true, "hashFP": true, "hashPoint": true,
	"runSweep": true, "runAPS": true,
}

// isRoot reports whether a function name anchors a protected path.
func isRoot(name string) bool {
	return rootNames[name] || strings.Contains(name, "Checkpoint")
}

// exemptPkg reports packages outside the determinism contract: main
// packages (CLIs legitimately print wall-clock progress) and the
// observability layer.
func exemptPkg(pkg *types.Package) bool {
	return pkg.Name() == "main" || strings.HasSuffix(pkg.Path(), "internal/obs")
}

// source is one direct nondeterminism site inside a function.
type source struct {
	pos  token.Pos
	what string
}

// fnInfo is the per-function view the analyzer builds in one AST walk.
type fnInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
	// sources are the unsuppressed direct nondeterminism sites.
	sources []source
	// calls are the statically resolved callees with their sites.
	calls []callSite
}

type callSite struct {
	fn  *types.Func
	pos token.Pos
}

func run(pass *analysis.Pass) error {
	if exemptPkg(pass.Pkg) {
		return nil
	}

	// One pass over every declared function: collect direct
	// nondeterminism sources and the static call graph.
	var fns []*fnInfo
	byObj := make(map[*types.Func]*fnInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &fnInfo{decl: fd, obj: obj}
			collect(pass, fd.Body, info)
			fns = append(fns, info)
			byObj[obj] = info
		}
	}

	// Upward taint: direct sources seed it, local and imported calls
	// propagate it to a fixed point, and the result is exported as
	// facts for dependent packages.
	taint := make(map[*types.Func]string)
	for _, info := range fns {
		if len(info.sources) > 0 {
			taint[info.obj] = info.sources[0].what
		}
	}
	calleeReason := func(fn *types.Func) (string, bool) {
		if r, ok := taint[fn]; ok {
			return r, true
		}
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			var fact NondetFact
			if pass.ImportObjectFact(fn, &fact) {
				return fact.Reason, true
			}
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if _, done := taint[info.obj]; done {
				continue
			}
			for _, c := range info.calls {
				if reason, ok := calleeReason(c.fn); ok {
					taint[info.obj] = "calls " + calleeName(c.fn) + ", which " + reason
					changed = true
					break
				}
			}
		}
	}
	for fn, reason := range taint {
		if err := pass.ExportObjectFact(fn, NondetFact{Reason: reason}); err != nil {
			return err
		}
	}

	// Downward marking: roots plus everything they statically call in
	// this package, remembering which root made each function protected.
	mustDet := make(map[*types.Func]string)
	var queue []*types.Func
	for _, info := range fns {
		if isRoot(info.obj.Name()) {
			mustDet[info.obj] = info.obj.Name()
			queue = append(queue, info.obj)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := byObj[fn]
		if info == nil {
			continue
		}
		for _, c := range info.calls {
			if callee, ok := byObj[c.fn]; ok {
				if _, seen := mustDet[callee.obj]; !seen {
					mustDet[callee.obj] = mustDet[fn]
					queue = append(queue, callee.obj)
				}
			}
		}
	}

	// Diagnostics: direct sources inside protected functions, and calls
	// from protected functions to tainted functions of other packages
	// (local tainted callees are protected themselves, so their own
	// source sites carry the report).
	for _, info := range fns {
		root, protected := mustDet[info.obj]
		if !protected {
			continue
		}
		for _, s := range info.sources {
			pass.Reportf(s.pos, "%s in %s, which must be deterministic (reachable from %s); results, cache keys and checkpoints must not depend on it",
				s.what, info.obj.Name(), root)
		}
		for _, c := range info.calls {
			if c.fn.Pkg() == nil || c.fn.Pkg() == pass.Pkg {
				continue
			}
			var fact NondetFact
			if pass.ImportObjectFact(c.fn, &fact) && !pass.Allowed(c.pos) {
				pass.Reportf(c.pos, "call to %s, which %s, in %s, which must be deterministic (reachable from %s)",
					calleeName(c.fn), fact.Reason, info.obj.Name(), root)
			}
		}
	}
	return nil
}

// calleeName renders pkg-qualified function names for messages.
func calleeName(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// collect walks one function body (nested literals included — a worker
// closure runs on its parent's behalf) gathering nondeterminism sources
// and static callees.
func collect(pass *analysis.Pass, body *ast.BlockStmt, info *fnInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if what, ok := nondetCall(pass, n); ok {
				if !pass.Allowed(n.Pos()) {
					info.sources = append(info.sources, source{pos: n.Pos(), what: what})
				}
				return true
			}
			if fn := analysis.CalleeFunc(pass.TypesInfo, n); fn != nil {
				info.calls = append(info.calls, callSite{fn: fn, pos: n.Pos()})
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !pass.Allowed(n.Pos()) {
					info.sources = append(info.sources, source{pos: n.Pos(), what: "ranges over a map (unordered iteration)"})
				}
			}
		case *ast.SelectStmt:
			if nondetSelect(pass, n) && !pass.Allowed(n.Pos()) {
				info.sources = append(info.sources, source{pos: n.Pos(), what: "selects between multiple data receives (scheduler-order nondeterminism)"})
			}
		}
		return true
	})
}

// nondetCall classifies one call as a direct nondeterminism source.
func nondetCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// Methods: a seeded *rand.Rand is deterministic by construction.
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "reads the wall clock (time." + fn.Name() + ")", true
		}
	case "math/rand", "math/rand/v2":
		if strings.HasPrefix(fn.Name(), "New") {
			// Constructors (New, NewSource) build seeded, deterministic
			// generators; the seed's provenance is covered elsewhere.
			return "", false
		}
		return "draws from the shared global rand (" + fn.Pkg().Path() + "." + fn.Name() + ")", true
	case "crypto/rand":
		return "draws from crypto/rand." + fn.Name(), true
	}
	return "", false
}

// nondetSelect reports selects with two or more competing data
// receives. A receive of a cancellation signal — `<-ctx.Done()`, or a
// channel spelled done/quit/stop/closed — does not count: racing data
// against cancellation is the sanctioned pattern, racing data against
// data reorders results.
func nondetSelect(pass *analysis.Pass, sel *ast.SelectStmt) bool {
	receives := 0
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv *ast.UnaryExpr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv, _ = s.X.(*ast.UnaryExpr)
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recv, _ = s.Rhs[0].(*ast.UnaryExpr)
			}
		}
		if recv == nil || recv.Op != token.ARROW {
			continue
		}
		if isCancelChan(recv.X) {
			continue
		}
		receives++
	}
	return receives >= 2
}

// isCancelChan recognizes cancellation-shaped channel expressions.
func isCancelChan(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return cancelName(sel.Sel.Name)
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			return cancelName(id.Name)
		}
	case *ast.SelectorExpr:
		return cancelName(e.Sel.Name)
	case *ast.Ident:
		return cancelName(e.Name)
	}
	return false
}

func cancelName(name string) bool {
	switch strings.ToLower(name) {
	case "done", "quit", "stop", "closed", "cancel", "cancelled", "canceled":
		return true
	}
	return false
}
