// Package det is the detguard fixture: Evaluate/EvaluateCtx/
// EvaluateBatch/Signature/Fingerprint anchor must-be-deterministic
// paths, and the seeded violations cover every source kind the analyzer
// knows.
package det

import (
	"context"
	"math/rand"
	"time"
)

// Model mirrors an evaluator with internal map state.
type Model struct{ vals map[string]float64 }

// Evaluate is a protected root; sum and stamp become transitively
// must-be-deterministic through its calls.
func (m Model) Evaluate(xs []float64) float64 {
	return sum(m.vals) + stamp()
}

// stamp is reachable from Evaluate: the wall-clock read feeds a result.
func stamp() float64 {
	return float64(time.Now().UnixNano()) // want "wall clock"
}

// sum is reachable from Evaluate: map iteration order feeds the result.
func sum(vals map[string]float64) float64 {
	var t float64
	for _, v := range vals { // want "ranges over a map"
		t += v
	}
	return t
}

// Signature is a cache-key root; the global rand draw is flagged.
func Signature() float64 {
	return rand.Float64() // want "global rand"
}

// EvaluateCtx races two data channels: first-ready wins, so the result
// depends on the scheduler.
func EvaluateCtx(a, b chan float64) float64 {
	select { // want "scheduler-order"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// EvaluateBatch races data against cancellation, the sanctioned shape.
func EvaluateBatch(ctx context.Context, ch chan float64) float64 {
	select {
	case <-ctx.Done():
		return 0
	case v := <-ch:
		return v
	}
}

// seeded uses a deterministic *rand.Rand: methods are never flagged.
func SaveCheckpointNoise(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// offPath is tainted (it exports a NondetFact) but sits on no protected
// path, so nothing is reported here.
func offPath() time.Time { return time.Now() }

// Fingerprint documents its wall-clock read: the suppression silences
// the diagnostic and stops the taint from reaching callers.
func Fingerprint() string {
	_ = time.Now() //lint:allow detguard build stamp feeds a log label, never a result
	return "fp"
}
