package detguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detguard"
)

func TestDetguard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), detguard.Analyzer, "det")
}
