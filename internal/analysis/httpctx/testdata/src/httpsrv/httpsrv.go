// Package httpsrv is the httpctx fixture: handlers in every shape —
// declared functions, methods, literals, and nested literals — plus
// non-handler functions that the analyzer must leave alone.
package httpsrv

import (
	"context"
	"net/http"
)

// declared handler conjuring a fresh context.
func badHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "context.Background inside an http handler"
	_ = ctx
	_ = w
	_ = r
}

// declared handler using the request context: clean.
func goodHandler(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	_ = ctx
	_ = w
}

type server struct{}

// method handler with TODO; the diagnostic names the request parameter.
func (server) handle(w http.ResponseWriter, req *http.Request) {
	ctx := context.TODO() // want "context.TODO inside an http handler detaches work from the request's cancellation, deadline and server shutdown; use req.Context\(\) instead"
	_ = ctx
	_ = w
	_ = req
}

// wire registers a literal handler; the literal's body is checked.
func wire(mux *http.ServeMux) {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		_ = context.Background() // want "context.Background inside an http handler"
		_ = w
		_ = r
	})
}

// nested puts one handler literal inside another: the inner call is
// reported exactly once, attributed to the inner handler.
func nested(w http.ResponseWriter, r *http.Request) {
	inner := func(w2 http.ResponseWriter, r2 *http.Request) {
		_ = context.Background() // want "use r2.Context\(\) instead"
		_ = w2
		_ = r2
	}
	inner(w, r)
}

// allowed documents a deliberate detachment.
func allowed(w http.ResponseWriter, r *http.Request) {
	//lint:allow httpctx background job survives the request by design
	_ = context.Background()
	_ = w
	_ = r
}

// notAHandler has the wrong signature, so fresh contexts are httpctx's
// concern only when ctxflow (a different analyzer) owns the package.
func notAHandler(r *http.Request) context.Context {
	_ = r
	return context.Background()
}
