package httpctx_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/httpctx"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), httpctx.Analyzer, "httpsrv")
}
