// Package httpctx guards the HTTP serving layer's cancellation contract:
// an http handler already owns a request-scoped context — r.Context()
// ends when the client disconnects, the server shuts down, or the
// per-request deadline fires — so a handler that conjures
// context.Background() or context.TODO() silently detaches its work from
// all three signals. A cancelled client then keeps burning an engine
// slot, and graceful shutdown can never drain.
//
// The analyzer flags context.Background() / context.TODO() calls inside
// any function with the handler signature
//
//	func(http.ResponseWriter, *http.Request)
//
// whether it is a declared function, a method or a function literal
// (e.g. one passed to mux.HandleFunc). Unlike ctxflow it applies to main
// packages too: servers are typically wired in package main, exactly
// where ctxflow's library-only Background rule goes quiet. The usual
// `//lint:allow httpctx <reason>` suppression applies.
package httpctx

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the httpctx check.
var Analyzer = &analysis.Analyzer{
	Name: "httpctx",
	Doc:  "flag context.Background/TODO inside http handler bodies; handlers must use r.Context()",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && isHandlerDecl(pass, fn) {
					checkHandlerBody(pass, fn.Body, requestName(fn.Type))
					return false // nested literals were just checked
				}
			case *ast.FuncLit:
				if isHandlerLit(pass, fn) {
					checkHandlerBody(pass, fn.Body, requestName(fn.Type))
					return false
				}
			}
			return true
		})
	}
	return nil
}

// checkHandlerBody reports every fresh-context construction in one
// handler body. A nested handler-shaped literal is checked recursively
// under its own request parameter name, so each call is reported exactly
// once and attributed to the innermost handler.
func checkHandlerBody(pass *analysis.Pass, body *ast.BlockStmt, reqName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && isHandlerLit(pass, lit) {
			checkHandlerBody(pass, lit.Body, requestName(lit.Type))
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range []string{"Background", "TODO"} {
			if analysis.IsPkgCall(pass.TypesInfo, call, "context", name) {
				pass.Reportf(call.Pos(),
					"context.%s inside an http handler detaches work from the request's cancellation, deadline and server shutdown; use %s.Context() instead",
					name, reqName)
			}
		}
		return true
	})
}

// requestName returns the *http.Request parameter's identifier for the
// diagnostic, falling back to "r" when the parameter is unnamed.
func requestName(ft *ast.FuncType) string {
	if ft == nil || ft.Params == nil {
		return "r"
	}
	for _, field := range ft.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		if sel, ok := star.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "Request" {
			if len(field.Names) > 0 && field.Names[0].Name != "_" {
				return field.Names[0].Name
			}
		}
	}
	return "r"
}

// isHandlerDecl reports whether fd has the http handler signature.
func isHandlerDecl(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && isHandlerSig(sig)
}

// isHandlerLit reports whether lit has the http handler signature.
func isHandlerLit(pass *analysis.Pass, lit *ast.FuncLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	return ok && isHandlerSig(sig)
}

// isHandlerSig reports whether sig is
// func(http.ResponseWriter, *http.Request) with no results.
func isHandlerSig(sig *types.Signature) bool {
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return isHTTPNamed(sig.Params().At(0).Type(), "ResponseWriter") &&
		isPointerToHTTPNamed(sig.Params().At(1).Type(), "Request")
}

// isHTTPNamed reports whether t is net/http.<name>.
func isHTTPNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// isPointerToHTTPNamed reports whether t is *net/http.<name>.
func isPointerToHTTPNamed(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isHTTPNamed(ptr.Elem(), name)
}
