package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
)

// Facts are the framework's interprocedural channel: while analyzing one
// package, an analyzer may export a fact — any JSON-serializable value —
// about a package-level object (a function, a method, a type). The
// driver runs packages in `go list -deps` order (dependencies first),
// and after each package's analyzers finish it seals that package's
// facts into one serialized archive. Analyzers running later, on
// packages that import the sealed one, import facts by object and act on
// them: detguard propagates "this function transitively reads the wall
// clock" up the dependency graph, atomicguard propagates "this type must
// not be copied".
//
// Facts are namespaced per analyzer (an analyzer only ever sees its own)
// and keyed per object within a package, so two analyzers — or two
// same-named methods on different receivers — never collide. Forcing
// every fact through json.Marshal at export time keeps the mechanism
// honest: a fact that cannot survive serialization is rejected
// immediately, not when a future distributed driver tries to ship it
// between processes.

// FactStore holds every package's sealed fact archive plus the open
// fact set of the package currently under analysis.
type FactStore struct {
	// sealed maps a package path to its serialized fact archive.
	sealed map[string][]byte
	// decoded caches unsealed archives: pkg path → fact key → raw fact.
	decoded map[string]map[string]json.RawMessage
	// current collects exports from the package being analyzed.
	current map[string]json.RawMessage
	// currentPath is the package the open fact set belongs to.
	currentPath string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		sealed:  make(map[string][]byte),
		decoded: make(map[string]map[string]json.RawMessage),
	}
}

// Begin opens a fresh fact set for pkgPath. The driver calls it before
// running analyzers on the package; exports land in the open set and are
// visible to ImportObjectFact immediately (same-package lookups).
func (s *FactStore) Begin(pkgPath string) {
	s.current = make(map[string]json.RawMessage)
	s.currentPath = pkgPath
}

// Seal serializes the open fact set as the archive of its package and
// closes it. The archive is one deterministic JSON object (Go's
// encoding/json sorts map keys), so equal analyses produce byte-equal
// archives — the property a future cross-process driver would rely on.
func (s *FactStore) Seal() error {
	if s.current == nil {
		return nil
	}
	data, err := json.Marshal(s.current)
	if err != nil {
		return fmt.Errorf("analysis: sealing facts of %s: %w", s.currentPath, err)
	}
	s.sealed[s.currentPath] = data
	delete(s.decoded, s.currentPath)
	s.current = nil
	s.currentPath = ""
	return nil
}

// PackageFacts returns the sealed archive of pkgPath (nil when the
// package exported nothing or has not been sealed).
func (s *FactStore) PackageFacts(pkgPath string) []byte {
	return s.sealed[pkgPath]
}

// factKey names one analyzer's fact about one object inside a package
// archive. The unit separator cannot appear in identifiers, so the key
// is unambiguous.
func factKey(analyzer string, obj types.Object) string {
	return analyzer + "\x1f" + objectKey(obj)
}

// objectKey identifies a package-level object within its package:
// "Name" for functions, types and variables, "(Recv).Name" for methods.
// The receiver's pointerness is erased — a fact about a method belongs
// to the method regardless of how the call spells the receiver.
func objectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return "(" + named.Obj().Name() + ")." + fn.Name()
			}
		}
	}
	return obj.Name()
}

// export records one fact in the open set.
func (s *FactStore) export(analyzer string, obj types.Object, fact interface{}) error {
	if obj == nil || obj.Pkg() == nil {
		return fmt.Errorf("analysis: fact export needs a package-level object")
	}
	if s.current == nil || obj.Pkg().Path() != s.currentPath {
		return fmt.Errorf("analysis: %s exported a fact about %s outside its package's analysis", analyzer, obj.Pkg().Path())
	}
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("analysis: %s fact about %s is not serializable: %w", analyzer, objectKey(obj), err)
	}
	s.current[factKey(analyzer, obj)] = data
	return nil
}

// importFact decodes the named analyzer's fact about obj into fact (a
// pointer), reporting whether one exists. Objects of the package under
// analysis resolve against the open set; imported objects resolve
// against their package's sealed archive.
func (s *FactStore) importFact(analyzer string, obj types.Object, fact interface{}) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key := factKey(analyzer, obj)
	var raw json.RawMessage
	var ok bool
	if obj.Pkg().Path() == s.currentPath && s.current != nil {
		raw, ok = s.current[key]
	} else {
		archive, err := s.unseal(obj.Pkg().Path())
		if err != nil {
			return false
		}
		raw, ok = archive[key]
	}
	if !ok {
		return false
	}
	return json.Unmarshal(raw, fact) == nil
}

// unseal decodes (and caches) one package's archive.
func (s *FactStore) unseal(pkgPath string) (map[string]json.RawMessage, error) {
	if m, ok := s.decoded[pkgPath]; ok {
		return m, nil
	}
	data, ok := s.sealed[pkgPath]
	if !ok {
		return nil, nil
	}
	m := make(map[string]json.RawMessage)
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("analysis: corrupt fact archive for %s: %w", pkgPath, err)
	}
	s.decoded[pkgPath] = m
	return m, nil
}
