package enginepath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/enginepath"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), enginepath.Analyzer, "dse")
	analysistest.Run(t, analysistest.TestData(t), enginepath.Analyzer, "model")
}
