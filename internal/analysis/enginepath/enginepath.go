// Package enginepath enforces the evaluation-routing invariant from
// PR 2: inside the exploration packages (dse, aps, core), every "design
// point → objective value" evaluation flows through internal/engine,
// which owns memoization, in-flight deduplication, the worker bound,
// retry and metering. A call through the Evaluator interface
// (dse.Evaluator's Evaluate or robust.Evaluator's EvaluateCtx) bypasses
// all of it: the evaluation is invisible to engine.Stats and pays full
// price even when the engine already memoized the point.
//
// The analyzer flags method calls named Evaluate/EvaluateCtx/
// EvaluateBatch whose receiver's static type is an interface, in
// packages dse, aps and core — the batch plane (BatchEvaluator) bypasses
// the engine exactly as readily as the scalar one. Calls on concrete
// types (the engine itself, core.Model's analytic evaluation, a concrete
// BatchEvaluator implementer) are the sanctioned paths and pass
// untouched. The engine's own entry adapters carry
// `//lint:allow enginepath <reason>`.
package enginepath

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the enginepath check.
var Analyzer = &analysis.Analyzer{
	Name: "enginepath",
	Doc:  "flag Evaluator-interface evaluations in dse/aps/core that bypass the engine's memoization and metering",
	Run:  run,
}

// guardedPackages are the exploration packages whose evaluations must
// route through internal/engine.
var guardedPackages = map[string]bool{"dse": true, "aps": true, "core": true}

func run(pass *analysis.Pass) error {
	if !guardedPackages[pass.Pkg.Name()] {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Evaluate" && name != "EvaluateCtx" && name != "EvaluateBatch" {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok {
			return true
		}
		recv := selection.Recv()
		if ptr, ok := recv.Underlying().(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if _, ok := recv.Underlying().(*types.Interface); ok {
			pass.Reportf(call.Pos(),
				"%s through the Evaluator interface bypasses internal/engine memoization/metering; submit via an Engine (or suppress with a reason)", name)
		}
		return true
	})
	return nil
}
