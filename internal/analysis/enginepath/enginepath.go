// Package enginepath enforces the evaluation-routing invariant from
// PR 2: inside the exploration packages (dse, aps, core), every "design
// point → objective value" evaluation flows through internal/engine,
// which owns memoization, in-flight deduplication, the worker bound,
// retry and metering. A call through the Evaluator interface
// (dse.Evaluator's Evaluate or robust.Evaluator's EvaluateCtx) bypasses
// all of it: the evaluation is invisible to engine.Stats and pays full
// price even when the engine already memoized the point.
//
// The analyzer flags method calls named Evaluate/EvaluateCtx/
// EvaluateBatch whose receiver's static type is an interface, in
// packages dse, aps, core and model — the batch plane (BatchEvaluator)
// bypasses the engine exactly as readily as the scalar one. Since the
// model-family redesign it also flags interface-dispatched
// TimeAt/TimeWorkAt: a model.Kernel driven through the interface is an
// evaluation the engine never sees, exactly like an Evaluator bypass.
// Calls on concrete types (the engine itself, core.Model's analytic
// evaluation, a family's own folded kernel struct) are the sanctioned
// paths and pass untouched. The engine's own entry adapters carry
// `//lint:allow enginepath <reason>`.
package enginepath

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the enginepath check.
var Analyzer = &analysis.Analyzer{
	Name: "enginepath",
	Doc:  "flag Evaluator-interface evaluations in dse/aps/core that bypass the engine's memoization and metering",
	Run:  run,
}

// guardedPackages are the exploration packages whose evaluations must
// route through internal/engine.
var guardedPackages = map[string]bool{"dse": true, "aps": true, "core": true, "model": true}

// flaggedNames are the evaluation entry points the invariant covers:
// the Evaluator plane and the model-family Kernel plane.
var flaggedNames = map[string]string{
	"Evaluate":      "Evaluator",
	"EvaluateCtx":   "Evaluator",
	"EvaluateBatch": "Evaluator",
	"TimeAt":        "Kernel",
	"TimeWorkAt":    "Kernel",
}

func run(pass *analysis.Pass) error {
	if !guardedPackages[pass.Pkg.Name()] {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		plane, flagged := flaggedNames[name]
		if !flagged {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok {
			return true
		}
		recv := selection.Recv()
		if ptr, ok := recv.Underlying().(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if _, ok := recv.Underlying().(*types.Interface); ok {
			pass.Reportf(call.Pos(),
				"%s through the %s interface bypasses internal/engine memoization/metering; submit via an Engine (or suppress with a reason)", name, plane)
		}
		return true
	})
	return nil
}
