// Package dse is an enginepath fixture; its name places it in the
// analyzer's guarded-package set.
package dse

// Evaluator mirrors the exploration packages' evaluator interfaces.
type Evaluator interface {
	Evaluate(x float64) (float64, error)
	EvaluateCtx(x float64) (float64, error)
}

// engine is a concrete evaluator standing in for internal/engine.
type engine struct{}

func (engine) Evaluate(x float64) (float64, error)    { return x, nil }
func (engine) EvaluateCtx(x float64) (float64, error) { return x, nil }

func bypasses(ev Evaluator) (float64, error) {
	return ev.Evaluate(1) // want "Evaluate through the Evaluator interface bypasses internal/engine"
}

func bypassesCtx(ev Evaluator) (float64, error) {
	return ev.EvaluateCtx(1) // want "EvaluateCtx through the Evaluator interface bypasses internal/engine"
}

func sanctionedConcrete(e engine) (float64, error) {
	return e.Evaluate(1)
}

func sanctionedPointer(e *engine) (float64, error) {
	return e.Evaluate(1)
}

func documentedAdapter(ev Evaluator) (float64, error) {
	//lint:allow enginepath the fixture adapter is the engine's own entry bridge
	return ev.Evaluate(2)
}

func otherMethodsAreFine(ev interface{ Reset() }) {
	ev.Reset()
}

// BatchEvaluator mirrors the batch evaluation plane.
type BatchEvaluator interface {
	EvaluateBatch(xs []float64) ([]float64, error)
}

// batchEngine is a concrete implementer standing in for the engine's
// batch front end.
type batchEngine struct{}

func (batchEngine) EvaluateBatch(xs []float64) ([]float64, error) { return xs, nil }

func bypassesBatch(ev BatchEvaluator) ([]float64, error) {
	return ev.EvaluateBatch(nil) // want "EvaluateBatch through the Evaluator interface bypasses internal/engine"
}

func sanctionedBatch(e batchEngine) ([]float64, error) {
	return e.EvaluateBatch(nil)
}

func sanctionedBatchPointer(e *batchEngine) ([]float64, error) {
	return e.EvaluateBatch(nil)
}
