// Package model is an enginepath fixture; its name places it in the
// analyzer's guarded-package set. Since the model-family redesign the
// Kernel plane (TimeAt/TimeWorkAt) is guarded exactly like the
// Evaluator plane.
package model

// Kernel mirrors the model-family kernel interface.
type Kernel interface {
	TimeAt(point []float64) float64
	TimeWorkAt(point []float64) (float64, float64, bool)
}

// folded is a concrete kernel standing in for a family's folded struct.
type folded struct{}

func (folded) TimeAt(point []float64) float64                      { return 0 }
func (folded) TimeWorkAt(point []float64) (float64, float64, bool) { return 0, 0, true }

func bypassesKernel(k Kernel) float64 {
	return k.TimeAt(nil) // want "TimeAt through the Kernel interface bypasses internal/engine"
}

func bypassesKernelPair(k Kernel) (float64, float64, bool) {
	return k.TimeWorkAt(nil) // want "TimeWorkAt through the Kernel interface bypasses internal/engine"
}

func sanctionedConcrete(f folded) float64 {
	return f.TimeAt(nil)
}

func sanctionedPointer(f *folded) float64 {
	return f.TimeAt(nil)
}

func documentedAdapter(k Kernel) float64 {
	//lint:allow enginepath the fixture adapter is the engine's own kernel bridge
	return k.TimeAt(nil)
}

// Evaluator bypasses are guarded in model too.
type Evaluator interface {
	Evaluate(x float64) (float64, error)
}

func bypassesEvaluator(ev Evaluator) (float64, error) {
	return ev.Evaluate(1) // want "Evaluate through the Evaluator interface bypasses internal/engine"
}
