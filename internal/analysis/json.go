package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// SARIF-lite output: `c2vet -json` renders findings as one stable JSON
// document for CI annotation. Stability is part of the contract —
// findings are totally ordered (file, line, column, analyzer, message),
// file paths are module-root-relative with forward slashes, and the
// encoding is exactly json.Marshal of the Report — so two identical
// analyses produce byte-identical documents and a CI diff of two runs
// shows only real changes.

// ReportVersion identifies the JSON schema.
const ReportVersion = "c2vet/2"

// Finding is one diagnostic in machine-readable form.
type Finding struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// File is the module-root-relative path (forward slashes).
	File string `json:"file"`
	// Line is the 1-based line.
	Line int `json:"line"`
	// Column is the 1-based column.
	Column int `json:"column"`
	// Message describes the violation.
	Message string `json:"message"`
}

// Report is the full -json document.
type Report struct {
	// Version names the schema (ReportVersion).
	Version string `json:"version"`
	// Findings are the surviving diagnostics in total order.
	Findings []Finding `json:"findings"`
}

// NewReport converts diagnostics to the machine-readable form, with
// file paths relative to moduleDir.
func NewReport(moduleDir string, fset *token.FileSet, diags []Diagnostic) Report {
	r := Report{Version: ReportVersion, Findings: []Finding{}}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(moduleDir, file); err == nil {
			file = rel
		}
		r.Findings = append(r.Findings, Finding{
			Analyzer: d.Analyzer,
			File:     filepath.ToSlash(file),
			Line:     pos.Line,
			Column:   pos.Column,
			Message:  d.Message,
		})
	}
	r.Sort()
	return r
}

// Sort puts the findings in their total order.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Write renders the report as json.Marshal bytes plus a trailing
// newline — the exact bytes a round-trip through encoding/json
// reproduces.
func (r Report) Write(w io.Writer) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("analysis: encoding report: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("analysis: writing report: %w", err)
	}
	return nil
}
