package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressSrc = `package p

func a() {
	_ = 1 //lint:allow demo trailing-comment form
	_ = 2
	//lint:allow demo lead-in form governs the next line
	_ = 3
	_ = 4
	//lint:allow demo
	_ = 5
}
`

func parseSuppressSrc(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

// posAtLine fabricates a Pos on the given 1-based line of the parsed file.
func posAtLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	return fset.File(f.Pos()).LineStart(line)
}

func TestSuppressorScopes(t *testing.T) {
	fset, f := parseSuppressSrc(t)
	s := NewSuppressor(fset, []*ast.File{f})

	cases := []struct {
		line    int
		allowed bool
	}{
		{4, true},  // trailing comment governs its own line
		{5, true},  // ... and the line below it
		{6, true},  // lead-in comment's own line
		{7, true},  // line below the lead-in comment
		{8, false}, // out of every directive's reach
	}
	for _, c := range cases {
		if got := s.Allowed("demo", posAtLine(fset, f, c.line)); got != c.allowed {
			t.Errorf("line %d: Allowed = %v, want %v", c.line, got, c.allowed)
		}
	}
	if s.Allowed("other", posAtLine(fset, f, 4)) {
		t.Error("directive for analyzer demo suppressed analyzer other")
	}
}

func TestSuppressorFilterAndMalformed(t *testing.T) {
	fset, f := parseSuppressSrc(t)
	s := NewSuppressor(fset, []*ast.File{f})

	diags := []Diagnostic{
		{Pos: posAtLine(fset, f, 4), Analyzer: "demo", Message: "suppressed"},
		{Pos: posAtLine(fset, f, 8), Analyzer: "demo", Message: "kept"},
		// Line 10 sits below the reason-less directive on line 9, which
		// must NOT register an allow.
		{Pos: posAtLine(fset, f, 10), Analyzer: "demo", Message: "kept too"},
	}
	got := s.Filter(diags)

	var kept, malformed int
	for _, d := range got {
		if d.Analyzer == "lint" {
			malformed++
			if !strings.Contains(d.Message, "needs an analyzer name and a reason") {
				t.Errorf("malformed-directive message: %q", d.Message)
			}
			continue
		}
		kept++
		if d.Message == "suppressed" {
			t.Error("allowed diagnostic survived Filter")
		}
	}
	if kept != 2 {
		t.Errorf("kept %d diagnostics, want 2", kept)
	}
	if malformed != 1 {
		t.Errorf("reported %d malformed directives, want 1", malformed)
	}
}
