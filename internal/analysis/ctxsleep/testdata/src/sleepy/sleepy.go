// Package sleepy is the ctxsleep fixture for the signature-scoped rule:
// only functions holding a cancellation signal (a ctx parameter or the
// http handler shape) are checked here.
package sleepy

import (
	"context"
	"net/http"
	"time"
)

// ctx-aware function sleeping blind: flagged.
func pollBad(ctx context.Context) {
	for ctx.Err() == nil {
		time.Sleep(time.Second) // want "time.Sleep ignores cancellation in a context-aware code path"
	}
}

// the sanctioned idiom: clean.
func pollGood(ctx context.Context) error {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// no cancellation signal in reach: the analyzer stays quiet.
func plain() {
	time.Sleep(time.Millisecond)
}

// http handlers own a request context: flagged.
func handler(w http.ResponseWriter, r *http.Request) {
	time.Sleep(time.Second) // want "time.Sleep ignores cancellation"
	_ = w
	_ = r
}

// a context-less literal inside a ctx-aware function still has the
// signal in lexical reach: flagged.
func nested(ctx context.Context) {
	retry := func() {
		time.Sleep(time.Second) // want "time.Sleep ignores cancellation"
	}
	retry()
	_ = ctx
}

// a deliberate, documented exception.
func allowed(ctx context.Context) {
	//lint:allow ctxsleep warm-up delay before the ctx plumbing exists
	time.Sleep(time.Millisecond)
	_ = ctx
}

// a goroutine launched inside a ctx-aware function has the signal in
// lexical reach: flagged.
func spawner(ctx context.Context) {
	go func() {
		time.Sleep(time.Second) // want "time.Sleep ignores cancellation"
	}()
	_ = ctx
}

// a goroutine whose own literal takes the context is cancellable
// regardless of the enclosing function: flagged.
func spawnerPlain() {
	go func(ctx context.Context) {
		time.Sleep(time.Second) // want "time.Sleep ignores cancellation"
	}(context.Background())
}

// neither the enclosing function nor the literal holds a signal: quiet.
func spawnerNoSignal() {
	go func() {
		time.Sleep(time.Millisecond)
	}()
}
