// Package server is the ctxsleep fixture for the package-scoped rule:
// in a serving-layer package (import path ending in "server" or "jobs")
// every time.Sleep is flagged, context parameter or not.
package server

import "time"

// even a plain function must not block blind in the serving layer.
func backoff() {
	time.Sleep(10 * time.Millisecond) // want "time.Sleep ignores cancellation"
}

// goroutine bodies too.
func spawn() {
	go func() {
		time.Sleep(time.Second) // want "time.Sleep ignores cancellation"
	}()
}
