// Package ctxsleep guards the serving and job planes against blind
// blocking: time.Sleep ignores every cancellation signal, so a poll or
// backoff loop built on it keeps a goroutine (and often an admission or
// engine slot) alive after the client has disconnected, the deadline has
// fired, or the server has begun draining. The repository's contract is
// that anything that waits in a cancellable code path waits on a timer
// tied to the context:
//
//	t := time.NewTimer(d)
//	defer t.Stop()
//	select {
//	case <-ctx.Done():
//	    return ctx.Err()
//	case <-t.C:
//	}
//
// The analyzer flags time.Sleep calls in two scopes: (1) anywhere inside
// a package whose import path ends in "server" or "jobs" — the serving
// layer has no code path where blind sleeping is correct — and (2) in
// any package, inside a function that takes a context.Context or has the
// http handler signature, because such a function has a cancellation
// signal it would be ignoring. Deliberate exceptions carry the usual
// `//lint:allow ctxsleep <reason>`.
package ctxsleep

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxsleep check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxsleep",
	Doc:  "flag time.Sleep in server/jobs packages and in context-aware functions; waits must ride a timer tied to ctx",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	serving := servingPackage(pass.Pkg.Path())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				checkBody(pass, fn.Body, serving || cancellableDecl(pass, fn))
				return false
			case *ast.FuncLit:
				checkBody(pass, fn.Body, serving || cancellableLit(pass, fn))
				return false
			}
			return true
		})
	}
	return nil
}

// checkBody reports time.Sleep calls in one function body when the
// enclosing scope is cancellable (or the whole package is serving-layer).
// Nested literals re-evaluate their own signature: a context-less helper
// literal inside a cancellable function inherits the cancellable scope
// (the signal is in lexical reach), while a cancellable literal inside a
// plain function starts its own scope.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, cancellable bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkBody(pass, lit.Body, cancellable || cancellableLit(pass, lit))
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cancellable && analysis.IsPkgCall(pass.TypesInfo, call, "time", "Sleep") {
			pass.Reportf(call.Pos(),
				"time.Sleep ignores cancellation in a context-aware code path; wait on a time.NewTimer/select with ctx.Done() instead")
		}
		return true
	})
}

// servingPackage reports whether the import path names the serving or
// job layer, where every wait must be cancellable regardless of the
// enclosing signature.
func servingPackage(path string) bool {
	return strings.HasSuffix(path, "/server") || path == "server" ||
		strings.HasSuffix(path, "/jobs") || path == "jobs"
}

// cancellableDecl reports whether fd takes a context.Context or is an
// http handler.
func cancellableDecl(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && cancellableSig(sig)
}

// cancellableLit reports whether lit takes a context.Context or is an
// http handler.
func cancellableLit(pass *analysis.Pass, lit *ast.FuncLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	return ok && cancellableSig(sig)
}

// cancellableSig reports whether sig carries a cancellation signal: a
// context.Context parameter anywhere, or the http handler shape (whose
// *http.Request owns one).
func cancellableSig(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if named, ok := sig.Params().At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	if sig.Params().Len() == 2 && sig.Results().Len() == 0 {
		if ptr, ok := sig.Params().At(1).Type().(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok {
				obj := named.Obj()
				return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
			}
		}
	}
	return false
}
