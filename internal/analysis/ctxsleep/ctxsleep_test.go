package ctxsleep_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxsleep"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxsleep.Analyzer, "sleepy")
	analysistest.Run(t, analysistest.TestData(t), ctxsleep.Analyzer, "server")
}
