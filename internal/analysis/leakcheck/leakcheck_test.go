package leakcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/leakcheck"
)

func TestLeakcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), leakcheck.Analyzer, "leaky")
}
