// Package leaky is the leakcheck fixture: goroutines that can never
// reach their exit beside the sanctioned worker/cancellation shapes.
package leaky

import "context"

// an unconditional spin can never exit.
func spin() {
	go func() { // want "no reachable termination path"
		for {
		}
	}()
}

// a worker draining a closable channel exits when the channel closes.
func worker(work chan int, out chan int) {
	go func() {
		for v := range work {
			out <- v
		}
	}()
}

// selecting on ctx.Done with a return exits.
func watcher(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// receiving forever parks the goroutine; a receive is not an exit.
func pump(ch chan int) {
	go func() { // want "no reachable termination path"
		for {
			<-ch
		}
	}()
}

// a named same-package function is resolved and checked like a literal.
func spinNamed() {
	go loop() // want "goroutine loop has no reachable termination path"
}

func loop() {
	for {
	}
}

// conditional loops can fall out of their head.
func bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
		}
	}()
}

// a break makes even `for {}` exit.
func breaker(ch chan int) {
	go func() {
		for {
			if _, ok := <-ch; !ok {
				break
			}
		}
	}()
}

// a documented process-lifetime goroutine.
func daemon() {
	//lint:allow leakcheck process-lifetime pump, killed with the process
	go func() {
		for {
		}
	}()
}
