// Package leakcheck guards library code against goroutines with no way
// out. The repository's concurrency contract (DESIGN.md §6, §10) is
// that no library goroutine outlives its call: workers range over a
// closable work channel, waiters select on ctx.Done() or a done
// channel, and EvaluateStream/Shutdown prove it with goroutine-leak
// tests. A goroutine whose body can never reach its own exit — every
// loop is infinite and no return is reachable — leaks a stack (and
// often an engine or admission slot) each time its launch site runs,
// and the runtime tests only notice when one happens to accumulate.
//
// The check is built on the framework's control-flow helper: for every
// `go` statement in a non-main package it builds the launched body's
// CFG (a function literal's body, or the declaration of a
// same-package function) and asks whether the synthetic exit block is
// reachable from the entry. Worker loops terminate through the range
// exit edge of their channel, cancellation loops through the return
// under a ctx.Done()/done-channel case — both reach the exit, so the
// sanctioned patterns pass untouched. A `for {}` with no reachable
// return does not, whatever it does inside: receiving in an infinite
// loop does not end the goroutine, it parks it.
//
// Deliberate process-lifetime goroutines carry `//lint:allow leakcheck
// <reason>`.
package leakcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the leakcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "leakcheck",
	Doc:  "flag library goroutines whose control-flow graph cannot reach its exit (no termination path: no return, every loop infinite)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	// Map declared functions to their bodies so `go f()` on a
	// same-package function is checked like a literal.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body, name := launchedBody(pass, decls, gs)
		if body == nil {
			return true
		}
		if !analysis.NewCFG(body).ExitReachable() && !pass.Allowed(gs.Pos()) {
			pass.Reportf(gs.Pos(),
				"goroutine %s has no reachable termination path (no return, every loop infinite); range over a closable channel or select on ctx.Done()/a done channel and return",
				name)
		}
		return true
	})
	return nil
}

// launchedBody resolves the body the go statement runs: a function
// literal's, or the declaration of a statically-known same-package
// function. Cross-package and dynamic callees return nil (their
// packages are analyzed on their own).
func launchedBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) (*ast.BlockStmt, string) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, "literal"
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, gs.Call)
	if fn == nil {
		return nil, ""
	}
	if fd, ok := decls[fn]; ok {
		return fd.Body, fn.Name()
	}
	return nil, ""
}
