package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the framework's control-flow helper: NewCFG builds a
// function-level control-flow graph from a parsed body, and the graph
// answers the reachability questions interprocedural analyzers need —
// "can this goroutine ever reach its exit?" (leakcheck), "is a
// termination signal on any path from the entry?". The graph is
// deliberately syntactic: blocks hold the statements and key expressions
// of straight-line runs, edges follow Go's structured control flow
// (if/for/range/switch/select, break/continue/goto/fallthrough,
// labels), and function literals are opaque single nodes — a nested
// function is its own graph.

// Block is one basic block: a run of nodes executed in order, followed
// by zero or more successor edges.
type Block struct {
	// Nodes are the statements (and branch conditions) of the block.
	Nodes []ast.Node
	// Succs are the possible next blocks.
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is executed first.
	Entry *Block
	// Exit is the synthetic termination block: returns and the fall-off
	// end of the body lead here. A body that cannot reach Exit can only
	// stop by panicking (or running forever).
	Exit *Block
	// Blocks lists every block, Entry and Exit included.
	Blocks []*Block
}

// NewCFG builds the control-flow graph of a function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	end := b.stmts(body.List, b.cfg.Entry)
	if end != nil {
		edge(end, b.cfg.Exit)
	}
	return b.cfg
}

// ExitReachable reports whether any execution path reaches the function
// exit (a return statement or the end of the body).
func (g *CFG) ExitReachable() bool {
	for blk := range g.reachable() {
		if blk == g.Exit {
			return true
		}
	}
	return false
}

// Reaches reports whether any node of any block reachable from the
// entry satisfies pred. Function literals are not descended into: a
// nested function's body is a different control-flow graph.
func (g *CFG) Reaches(pred func(ast.Node) bool) bool {
	found := false
	for blk := range g.reachable() {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(c ast.Node) bool {
				if found {
					return false
				}
				if _, isLit := c.(*ast.FuncLit); isLit {
					return false
				}
				if c != nil && pred(c) {
					found = true
					return false
				}
				return true
			})
		}
	}
	return found
}

// reachable returns the blocks reachable from the entry.
func (g *CFG) reachable() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	queue := []*Block{g.Entry}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return seen
}

// frame is one enclosing breakable construct during construction.
type frame struct {
	// label is the construct's label ("" when unlabeled).
	label string
	// brk is where break jumps.
	brk *Block
	// cont is where continue jumps (nil for switch/select frames).
	cont *Block
}

type cfgBuilder struct {
	cfg *CFG
	// frames are the enclosing breakable constructs, innermost last.
	frames []frame
	// labels maps label names to their blocks (goto targets).
	labels map[string]*Block
	// pendingLabel is the label of the statement about to be built, so
	// labeled loops register a labeled frame.
	pendingLabel string
	// fallTargets are the next-case blocks of enclosing switches,
	// innermost last (fallthrough targets).
	fallTargets []*Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// labelBlock returns (creating on first sight) the block a label names.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// stmts builds a statement sequence starting in cur and returns the
// block that falls through past the end (nil when the end is
// unreachable).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Dead code after a terminating statement still gets built (a
			// label inside it may be a live goto target).
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt builds one statement and returns the fall-through block.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		after := b.newBlock()
		then := b.newBlock()
		edge(cur, then)
		if end := b.stmts(s.Body.List, then); end != nil {
			edge(end, after)
		}
		if s.Else != nil {
			els := b.newBlock()
			edge(cur, els)
			if end := b.stmt(s.Else, els); end != nil {
				edge(end, after)
			}
		} else {
			edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		edge(cur, head)
		after := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			// Only a conditional loop can fall out of its head.
			edge(head, after)
		}
		cont := head
		if s.Post != nil {
			cont = b.newBlock()
			cont.Nodes = append(cont.Nodes, s.Post)
			edge(cont, head)
		}
		body := b.newBlock()
		edge(head, body)
		b.frames = append(b.frames, frame{label: label, brk: after, cont: cont})
		if end := b.stmts(s.Body.List, body); end != nil {
			edge(end, cont)
		}
		b.frames = b.frames[:len(b.frames)-1]
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		head.Nodes = append(head.Nodes, s.X)
		edge(cur, head)
		after := b.newBlock()
		// A range loop always has an exit edge: the sequence ends (or the
		// ranged channel is closed).
		edge(head, after)
		body := b.newBlock()
		edge(head, body)
		b.frames = append(b.frames, frame{label: label, brk: after, cont: head})
		if end := b.stmts(s.Body.List, body); end != nil {
			edge(end, head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, clauses = sw.Init, sw.Body.List
			if sw.Tag != nil {
				tag = sw.Tag
			}
		case *ast.TypeSwitchStmt:
			init, clauses = sw.Init, sw.Body.List
			tag = sw.Assign
		}
		if init != nil {
			cur.Nodes = append(cur.Nodes, init)
		}
		if tag != nil {
			cur.Nodes = append(cur.Nodes, tag)
		}
		after := b.newBlock()
		blocks := make([]*Block, len(clauses))
		hasDefault := false
		for i, c := range clauses {
			blocks[i] = b.newBlock()
			edge(cur, blocks[i])
			if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			edge(cur, after)
		}
		b.frames = append(b.frames, frame{label: label, brk: after})
		for i, c := range clauses {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				blocks[i].Nodes = append(blocks[i].Nodes, e)
			}
			next := after
			if i+1 < len(blocks) {
				next = blocks[i+1]
			}
			b.fallTargets = append(b.fallTargets, next)
			if end := b.stmts(cc.Body, blocks[i]); end != nil {
				edge(end, after)
			}
			b.fallTargets = b.fallTargets[:len(b.fallTargets)-1]
		}
		b.frames = b.frames[:len(b.frames)-1]
		return after

	case *ast.SelectStmt:
		after := b.newBlock()
		b.frames = append(b.frames, frame{label: label, brk: after})
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			edge(cur, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			if end := b.stmts(cc.Body, blk); end != nil {
				edge(end, after)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A select with no clauses blocks forever: after stays edgeless
		// and therefore unreachable, which is exactly the semantics.
		return after

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				edge(cur, f.brk)
			}
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				edge(cur, f.cont)
			}
		case token.GOTO:
			if s.Label != nil {
				edge(cur, b.labelBlock(s.Label.Name))
			}
		case token.FALLTHROUGH:
			if n := len(b.fallTargets); n > 0 {
				edge(cur, b.fallTargets[n-1])
			}
		}
		return nil

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		edge(cur, lb)
		b.pendingLabel = s.Label.Name
		return b.stmt(s.Stmt, lb)

	default:
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// findFrame resolves a break/continue target: the innermost frame, or
// the one carrying the label. Continue skips switch/select frames.
func (b *cfgBuilder) findFrame(label *ast.Ident, loopOnly bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if loopOnly && f.cont == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}
