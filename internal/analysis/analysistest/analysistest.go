// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only. A fixture lives under <testdata>/src/<pkg>/ and is type-checked
// with the same offline export-data importer as the real driver, so it
// may import both standard-library and repository packages.
//
// Expectation syntax: a comment anywhere on a line of the form
//
//	// want "first regexp" "second regexp"
//
// declares that the analyzer must report, on that line, one diagnostic
// matching each regexp. Lines without a want comment must produce no
// diagnostics. `//lint:allow` suppressions are honoured before matching,
// so fixtures can also assert that a documented suppression silences a
// finding (an allowed line simply carries no want comment).
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: resolving testdata: %v", err)
	}
	return dir
}

// wantRx extracts the quoted expectations from a want comment.
var wantRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one unmatched want on one line.
type expectation struct {
	rx   *regexp.Regexp
	line int
	file string
}

// Run loads <testdata>/src/<pkg>, runs the analyzer, applies the
// suppression convention, and reports any mismatch between diagnostics
// and want comments as test failures.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	moduleDir := moduleRoot(t)
	loaded, err := analysis.CheckFixtureDir(moduleDir, dir, pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	diags, err := analysis.RunPackage(a, loaded)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	diags = analysis.NewSuppressor(loaded.Fset, loaded.Files).Filter(diags)

	expects := collectWants(t, loaded.Fset, loaded)
	for _, d := range diags {
		pos := loaded.Fset.Position(d.Pos)
		if !match(expects, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if e.rx != nil {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.rx)
		}
	}
}

// collectWants scans every comment of the fixture for want expectations.
func collectWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(text[len("want "):], -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					out = append(out, &expectation{rx: rx, line: pos.Line, file: pos.Filename})
				}
			}
		}
	}
	return out
}

// match consumes the first unmatched expectation covering (file, line)
// whose pattern matches msg.
func match(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if e.rx != nil && e.line == pos.Line && e.file == pos.Filename && e.rx.MatchString(msg) {
			e.rx = nil
			return true
		}
	}
	return false
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("analysistest: getwd: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}
