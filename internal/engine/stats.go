package engine

import (
	"fmt"
	"sync/atomic"
	"time"
)

// counters are the engine's live atomics.
type counters struct {
	requests    atomic.Uint64
	evaluations atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	dedups      atomic.Uint64
	panics      atomic.Uint64
	retries     atomic.Uint64
	failures    atomic.Uint64
	evictions   atomic.Uint64
	wallNanos   atomic.Uint64
}

// Stats is a consistent-enough snapshot of the engine's counters (each
// field is read atomically; the set is not a single atomic transaction,
// which is fine for monitoring).
type Stats struct {
	// Requests is the number of evaluation requests received.
	Requests uint64 `json:"requests"`
	// Evaluations is the number of raw evaluator invocations, counting
	// every retry attempt — the "simulations spent" figure.
	Evaluations uint64 `json:"evaluations"`
	// CacheHits and CacheMisses account memoization lookups (fingerprinted
	// evaluators only).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Dedups counts requests served by waiting on a concurrent in-flight
	// computation of the same key.
	Dedups uint64 `json:"dedups"`
	// Panics is the number of evaluator panics isolated by the guard.
	Panics uint64 `json:"panics"`
	// Retries is the number of re-attempts after transient failures.
	Retries uint64 `json:"retries"`
	// Failures counts requests whose final outcome was an error (context
	// cancellations excluded).
	Failures uint64 `json:"failures"`
	// Evictions counts cache entries displaced by the LRU policy.
	Evictions uint64 `json:"evictions"`
	// CacheEntries is the live number of memoized values.
	CacheEntries int `json:"cache_entries"`
	// WallTime is the cumulative wall-clock time spent inside evaluators
	// (summed across workers, so it exceeds elapsed time under
	// parallelism).
	WallTime time.Duration `json:"wall_time_ns"`
}

// Snapshot bundles the engine's static shape with its live counters —
// the /readyz payload of internal/server and the enginebench report
// both serialize it, so the JSON field names are part of the tool
// contract and covered by tests.
type Snapshot struct {
	// Workers is the engine's concurrency bound.
	Workers int `json:"workers"`
	// CacheCapacity is the memo cache bound (0: caching disabled).
	CacheCapacity int `json:"cache_capacity"`
	// Stats is the live counter snapshot.
	Stats Stats `json:"stats"`
}

// Snapshot returns the engine's shape and counters in one value.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		Workers:       e.Workers(),
		CacheCapacity: e.CacheCap(),
		Stats:         e.Stats(),
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests:     e.counters.requests.Load(),
		Evaluations:  e.counters.evaluations.Load(),
		CacheHits:    e.counters.cacheHits.Load(),
		CacheMisses:  e.counters.cacheMisses.Load(),
		Dedups:       e.counters.dedups.Load(),
		Panics:       e.counters.panics.Load(),
		Retries:      e.counters.retries.Load(),
		Failures:     e.counters.failures.Load(),
		Evictions:    e.counters.evictions.Load(),
		CacheEntries: e.CacheLen(),
		WallTime:     time.Duration(e.counters.wallNanos.Load()),
	}
}

// Delta returns the change from an earlier snapshot: s − prev for every
// monotone counter (CacheEntries keeps the later value).
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Requests:     s.Requests - prev.Requests,
		Evaluations:  s.Evaluations - prev.Evaluations,
		CacheHits:    s.CacheHits - prev.CacheHits,
		CacheMisses:  s.CacheMisses - prev.CacheMisses,
		Dedups:       s.Dedups - prev.Dedups,
		Panics:       s.Panics - prev.Panics,
		Retries:      s.Retries - prev.Retries,
		Failures:     s.Failures - prev.Failures,
		Evictions:    s.Evictions - prev.Evictions,
		CacheEntries: s.CacheEntries,
		WallTime:     s.WallTime - prev.WallTime,
	}
}

// HitRate is the fraction of requests served from the cache.
func (s Stats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Requests)
}

// String renders the one-line summary the CLIs print on exit.
func (s Stats) String() string {
	return fmt.Sprintf(
		"engine: %d requests, %d evaluations, %d cache hits (%.1f%%), %d dedup, %d retries, %d panics, %d failures, eval wall %v",
		s.Requests, s.Evaluations, s.CacheHits, 100*s.HitRate(),
		s.Dedups, s.Retries, s.Panics, s.Failures, s.WallTime.Round(time.Millisecond))
}
