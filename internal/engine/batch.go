package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/robust"
)

// BatchEvaluator is the batched form of robust.Evaluator: one call
// evaluates a whole plane of points, writing out[i] for points[i].
// Implementations must treat infeasible points as values (+Inf), return
// an error only for faults that invalidate the whole batch, and must be
// bit-identical to their scalar EvaluateCtx — the batchpar analyzer
// enforces that every implementation also carries the scalar method, and
// the differential tests in dse enforce the bit-identity.
//
// EvaluateStream detects this interface and switches from per-point
// dispatch to cache-friendly chunks, the single biggest win on the
// evaluation hot path (see DESIGN.md §12).
type BatchEvaluator interface {
	EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error
}

// BatchFunc is Func with a batched kernel: the way ad-hoc fingerprinted
// objectives (the APS grid scan, the optimizer's probes) join the
// batched path. The embedded Func keeps the scalar contract.
type BatchFunc struct {
	Func
	// B evaluates all points, writing out[i] for points[i]. It must
	// compute exactly what F computes.
	B func(ctx context.Context, points [][]float64, out []float64) error
}

// EvaluateBatch implements BatchEvaluator.
func (f BatchFunc) EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error {
	return f.B(ctx, points, out)
}

// EvaluateBatch runs every point through the engine pipeline — memo
// cache, in-flight dedup, panic guard, retry, gate — writing out[i] for
// points[i]. Values follow the usual convention (+Inf feasible penalty,
// NaN on error); the returned error is ctx.Err() after cancellation or
// the first per-point fault otherwise.
func (e *Engine) EvaluateBatch(ctx context.Context, ev robust.Evaluator, points [][]float64, out []float64) error {
	if len(out) != len(points) {
		return fmt.Errorf("engine: EvaluateBatch out length %d != points length %d", len(out), len(points))
	}
	var firstErr error
	err := e.EvaluateStream(ctx, ev, points, func(i int, o Outcome) {
		out[i] = o.Value
		if o.Err != nil && firstErr == nil {
			firstErr = o.Err
		}
	})
	if err != nil {
		return err
	}
	return firstErr
}

// chunkSize picks the batched dispatch granularity: enough chunks to
// load-balance the pool (~4 per worker), chunks big enough to amortize
// the per-chunk lock and gate traffic, and capped so one chunk's memo
// probes stay cache-resident.
func chunkSize(n, workers int) int {
	c := (n + 4*workers - 1) / (4 * workers)
	if c < 16 {
		c = 16
	}
	if c > 512 {
		c = 512
	}
	if c > n {
		c = n
	}
	return c
}

// streamBatched is EvaluateStream over a BatchEvaluator: the plane is
// cut into chunks, each chunk takes one gate slot and one worker slot
// (fair-share arbitration moves from point to chunk granularity; single
// point submissions — the server's /v1/evaluate — keep exactly the
// scalar semantics), probes the memo cache in one critical section, and
// evaluates all misses with a single guarded, retried batch call. The
// evaluator's fingerprint is resolved once for the whole stream, not per
// point.
func (e *Engine) streamBatched(ctx context.Context, ev robust.Evaluator, be BatchEvaluator, points [][]float64, yield func(i int, o Outcome)) error {
	n := len(points)
	chunk := chunkSize(n, e.workers)
	nchunks := (n + chunk - 1) / chunk
	workers := e.workers
	if workers > nchunks {
		workers = nchunks
	}

	fp := ""
	seed := uint64(0)
	cacheable := false
	if e.cache != nil {
		if f, ok := ev.(Fingerprinter); ok {
			fp = f.Fingerprint()
			seed = hashFP(fp)
			cacheable = true
		}
	}

	type res struct {
		lo   int
		outs []Outcome
	}
	work := make(chan int)
	results := make(chan res, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range work {
				lo := ci * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				// Same acquisition order as the scalar path: the external
				// gate (when present) first, so a gated waiter never pins
				// a worker slot while it queues.
				var release func()
				if e.gate != nil {
					r, err := e.gate.AcquireSlot(ctx)
					if err != nil {
						return
					}
					release = r
				}
				select {
				case e.sem <- struct{}{}:
				case <-ctx.Done():
					if release != nil {
						release()
					}
					return
				}
				outs := e.doChunk(ctx, ev, be, points[lo:hi], cacheable, fp, seed)
				<-e.sem
				if release != nil {
					release()
				}
				results <- res{lo: lo, outs: outs}
			}
		}()
	}
	go func() {
		defer close(work)
		for ci := 0; ci < nchunks; ci++ {
			select {
			case work <- ci:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	for r := range results {
		if yield != nil {
			for j, o := range r.outs {
				yield(r.lo+j, o)
			}
		}
	}
	return ctx.Err()
}

// doChunk evaluates one chunk: classify every point (memo hit, owned
// miss, in-flight elsewhere) under a single lock acquisition, evaluate
// all misses with one guarded batch call, publish the results, then
// resolve points another computation owned through the scalar path.
func (e *Engine) doChunk(ctx context.Context, ev robust.Evaluator, be BatchEvaluator, pts [][]float64, cacheable bool, fp string, seed uint64) []Outcome {
	outs := make([]Outcome, len(pts))
	if !cacheable {
		e.counters.requests.Add(uint64(len(pts)))
		e.obs.requests.Add(uint64(len(pts)))
		vals := make([]float64, len(pts))
		attempts, err := e.computeChunk(ctx, be, pts, vals)
		if err != nil && !isContextErr(err) {
			e.counters.failures.Add(uint64(len(pts)))
			e.obs.failures.Add(uint64(len(pts)))
		}
		for i := range pts {
			outs[i] = chunkOutcome(vals[i], attempts, err)
		}
		return outs
	}

	hashes := make([]uint64, len(pts))
	for i, p := range pts {
		hashes[i] = hashPoint(seed, p)
	}
	// callSlab backs every in-flight registration of this chunk and done
	// is their shared completion signal (the whole chunk publishes at
	// once), so registration costs no per-point allocation.
	callSlab := make([]call, len(pts))
	var done chan struct{}
	var (
		miss       []int // chunk indices this call evaluates
		missPts    [][]float64
		missHashes []uint64
		calls      []*call // parallel to miss; nil for solo hash collisions
		collided   []bool  // non-nil when any calls entry is nil
		deferred   []int   // chunk indices owned by another in-flight call
		hits       uint64
	)
	e.mu.Lock()
	fpID := e.internLocked(fp)
	for i, p := range pts {
		if v, ok := e.cache.get(hashes[i], fpID, p); ok {
			outs[i] = Outcome{Value: v, CacheHit: true}
			hits++
			continue
		}
		if c, ok := e.inflight[hashes[i]]; ok {
			if c.fpID == fpID && pointsEqual(c.point, p) {
				deferred = append(deferred, i)
				continue
			}
			// Hash collision with a different in-flight key: evaluate in
			// this batch but stay out of the memo and dedup tables.
			miss = append(miss, i)
			missPts = append(missPts, p)
			missHashes = append(missHashes, hashes[i])
			calls = append(calls, nil)
			if collided == nil {
				collided = make([]bool, len(pts))
			}
			collided[len(calls)-1] = true
			continue
		}
		if done == nil {
			done = make(chan struct{})
		}
		c := &callSlab[i]
		*c = call{fpID: fpID, point: p, done: done}
		e.inflight[hashes[i]] = c
		miss = append(miss, i)
		missPts = append(missPts, p)
		missHashes = append(missHashes, hashes[i])
		calls = append(calls, c)
	}
	e.mu.Unlock()

	// Deferred points re-enter through Do (which counts their requests);
	// everything else is this chunk's.
	e.counters.requests.Add(uint64(len(pts) - len(deferred)))
	e.obs.requests.Add(uint64(len(pts) - len(deferred)))
	if hits > 0 {
		e.counters.cacheHits.Add(hits)
		e.obs.cacheHits.Add(hits)
	}
	if len(miss) > 0 {
		e.counters.cacheMisses.Add(uint64(len(miss)))
		e.obs.cacheMisses.Add(uint64(len(miss)))
		vals := make([]float64, len(miss))
		attempts, err := e.computeChunk(ctx, be, missPts, vals)
		if err != nil && !isContextErr(err) {
			e.counters.failures.Add(uint64(len(miss)))
			e.obs.failures.Add(uint64(len(miss)))
		}
		evicted := uint64(0)
		e.mu.Lock()
		registered := 0
		for k, i := range miss {
			outs[i] = chunkOutcome(vals[k], attempts, err)
			if c := calls[k]; c != nil {
				c.out = outs[i]
				registered++
			}
		}
		// Our registrations are all still present (only this call removes
		// them), so a size match means the in-flight table holds nothing
		// else and the chunk's registrations can be released in bulk — the
		// common single-stream case, where per-key deletes would be the
		// costliest map traffic of the publish path.
		if registered == len(e.inflight) {
			clear(e.inflight)
		} else {
			for k := range miss {
				if calls[k] != nil {
					delete(e.inflight, missHashes[k])
				}
			}
		}
		if err == nil {
			evicted = e.cache.addBatch(missHashes, fpID, missPts, vals, collided)
		}
		e.mu.Unlock()
		if done != nil {
			close(done)
		}
		if evicted > 0 {
			e.counters.evictions.Add(evicted)
			e.obs.evictions.Add(evicted)
		}
	}
	// Resolved last: a duplicate point within this very chunk waits on a
	// call the loop above has already closed, so this cannot deadlock.
	for _, i := range deferred {
		outs[i] = e.doKeyed(ctx, ev, pts[i], hashes[i], fp)
	}
	return outs
}

// chunkOutcome maps one point's share of a batch computation to the
// scalar Outcome contract (NaN value on error).
func chunkOutcome(val float64, attempts int, err error) Outcome {
	if err != nil {
		return Outcome{Value: math.NaN(), Attempts: attempts, Err: err}
	}
	return Outcome{Value: val, Attempts: attempts}
}

// computeChunk is computeInner for a batch: one guarded, retried
// EvaluateBatch call metered like the scalar path (evaluations counted
// per point per attempt; wall time and the eval-seconds histogram
// observed once per batch call; retries counted per extra attempt).
func (e *Engine) computeChunk(ctx context.Context, be BatchEvaluator, pts [][]float64, vals []float64) (attempts int, err error) {
	ctx, sp := e.tracer.Start(ctx, "engine.eval")
	e.obs.inflight.Add(1)
	start := time.Now() //lint:allow detguard wall-clock pair feeds the latency counters/histogram only, never the evaluated values
	attempts, err = e.retry.Do(ctx, e.rng, func(ctx context.Context) error {
		e.counters.evaluations.Add(uint64(len(pts)))
		e.obs.evaluations.Add(uint64(len(pts)))
		err2 := guardedBatch(ctx, be, pts, vals)
		var pe *robust.PanicError
		if errors.As(err2, &pe) {
			e.counters.panics.Add(1)
			e.obs.panics.Add(1)
		}
		return err2
	})
	elapsed := time.Since(start) //lint:allow detguard elapsed feeds the latency counters/histogram only, never the evaluated values
	e.counters.wallNanos.Add(uint64(elapsed))
	// One histogram observation per raw evaluation (the amortized
	// per-point latency), so the eval-seconds count tracks the
	// evaluations counter exactly as on the scalar path.
	evals := uint64(len(pts)) * uint64(attempts)
	if evals > 0 {
		e.obs.evalSeconds.ObserveN(elapsed.Seconds()/float64(evals), evals)
	}
	if attempts > 1 {
		e.counters.retries.Add(uint64(attempts - 1))
		e.obs.retries.Add(uint64(attempts - 1))
	}
	e.obs.inflight.Add(-1)
	if sp != nil {
		sp.Annotate(obs.I("points", int64(len(pts))))
		sp.Annotate(obs.I("attempts", int64(attempts)))
		if err != nil {
			sp.Annotate(obs.S("error", err.Error()))
		}
		sp.Finish()
	}
	return attempts, err
}

// guardedBatch is robust.Guard for a batch call: a panicking kernel
// becomes a *robust.PanicError instead of tearing down the stream.
func guardedBatch(ctx context.Context, be BatchEvaluator, pts [][]float64, vals []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &robust.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return be.EvaluateBatch(ctx, pts, vals)
}
