package engine

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// snapEval is a deterministic fingerprinted evaluator for snapshot tests.
type snapEval struct{ fp string }

func (s snapEval) Fingerprint() string { return s.fp }

func (s snapEval) EvaluateCtx(_ context.Context, p []float64) (float64, error) {
	v := 1.0
	for _, x := range p {
		v = v*3.7 + x
	}
	return v, nil
}

// fillEngine evaluates n distinct points so the cache holds them.
func fillEngine(t *testing.T, e *Engine, ev snapEval, n int) [][]float64 {
	t.Helper()
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{float64(i), float64(i) * 0.5, 42}
	}
	err := e.EvaluateStream(context.Background(), ev, points, nil)
	if err != nil {
		t.Fatalf("EvaluateStream: %v", err)
	}
	return points
}

func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	dir := t.TempDir()
	e := New(Options{Workers: 4, CacheSize: 1024})
	ev := snapEval{fp: "snap/a"}
	fillEngine(t, e, ev, 100)
	// A second fingerprint interleaved so the fp table has two entries.
	ev2 := snapEval{fp: "snap/b"}
	if _, err := e.Evaluate(context.Background(), ev2, []float64{math.Inf(1), math.Copysign(0, -1)}); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}

	p1 := filepath.Join(dir, "a.snap")
	n, err := e.SaveSnapshot(p1)
	if err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if n != 101 {
		t.Fatalf("saved %d entries, want 101", n)
	}

	e2 := New(Options{Workers: 4, CacheSize: 1024})
	m, err := e2.LoadSnapshot(p1)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if m != n {
		t.Fatalf("restored %d entries, want %d", m, n)
	}
	p2 := filepath.Join(dir, "b.snap")
	if _, err := e2.SaveSnapshot(p2); err != nil {
		t.Fatalf("re-SaveSnapshot: %v", err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("save → load → save is not byte-identical (%d vs %d bytes)", len(b1), len(b2))
	}
}

func TestSnapshotRestoreGives100PercentWarmHits(t *testing.T) {
	dir := t.TempDir()
	e := New(Options{Workers: 4, CacheSize: 1024})
	ev := snapEval{fp: "snap/warm"}
	points := fillEngine(t, e, ev, 64)
	path := filepath.Join(dir, "warm.snap")
	if _, err := e.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	e2 := New(Options{Workers: 4, CacheSize: 1024})
	if _, err := e2.LoadSnapshot(path); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	hits := 0
	err := e2.EvaluateStream(context.Background(), ev, points, func(_ int, o Outcome) {
		if o.CacheHit {
			hits++
		}
	})
	if err != nil {
		t.Fatalf("EvaluateStream: %v", err)
	}
	if hits != len(points) {
		t.Fatalf("warm hits = %d of %d, want all", hits, len(points))
	}
	if got := e2.Stats().Evaluations; got != 0 {
		t.Fatalf("restored engine performed %d raw evaluations, want 0", got)
	}
}

func TestSnapshotTruncatedAndCorruptAreCleanErrors(t *testing.T) {
	dir := t.TempDir()
	e := New(Options{Workers: 2, CacheSize: 256})
	fillEngine(t, e, snapEval{fp: "snap/tc"}, 32)
	path := filepath.Join(dir, "tc.snap")
	if _, err := e.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":     {},
		"truncated": blob[:len(blob)/2],
		"one-short": blob[:len(blob)-1],
		"corrupt": func() []byte {
			b := append([]byte(nil), blob...)
			b[len(b)/2] ^= 0x40
			return b
		}(),
		"bad-magic": func() []byte {
			b := append([]byte(nil), blob...)
			b[0] = 'X'
			return b
		}(),
	}
	for name, data := range cases {
		p := filepath.Join(dir, name+".snap")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		e2 := New(Options{Workers: 2, CacheSize: 256})
		n, err := e2.LoadSnapshot(p)
		if err == nil {
			t.Errorf("%s: LoadSnapshot succeeded, want error", name)
		}
		if n != 0 || e2.CacheLen() != 0 {
			t.Errorf("%s: partial restore (n=%d, cache=%d), want none", name, n, e2.CacheLen())
		}
	}
}

func TestSnapshotPreservesRecencyOrder(t *testing.T) {
	dir := t.TempDir()
	// Capacity 4: after restoring 8 entries the 4 most recent survive.
	e := New(Options{Workers: 1, CacheSize: 8})
	ev := snapEval{fp: "snap/lru"}
	points := fillEngine(t, e, ev, 8)
	path := filepath.Join(dir, "lru.snap")
	if _, err := e.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	// Touch the first four points so they become the MRU half.
	for _, p := range points[:4] {
		if _, err := e.Evaluate(context.Background(), ev, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	small := New(Options{Workers: 1, CacheSize: 4})
	if _, err := small.LoadSnapshot(path); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if small.CacheLen() != 4 {
		t.Fatalf("cache holds %d entries, want 4", small.CacheLen())
	}
	hits := 0
	err := small.EvaluateStream(context.Background(), ev, points[:4], func(_ int, o Outcome) {
		if o.CacheHit {
			hits++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != 4 {
		t.Fatalf("MRU half warm hits = %d, want 4 (recency order lost)", hits)
	}
}

func TestSnapshotDisabledCache(t *testing.T) {
	e := New(Options{CacheSize: -1})
	if _, err := e.SaveSnapshot(filepath.Join(t.TempDir(), "x.snap")); err == nil {
		t.Fatal("SaveSnapshot with caching disabled succeeded, want error")
	}
}

func TestKeyHashMatchesCachePlacement(t *testing.T) {
	// KeyHash is the cluster ring's placement hook; it must equal the
	// engine's internal memo key bit for bit.
	fp := "snap/key"
	point := []float64{1, 2, math.Pi}
	if got, want := KeyHash(fp, point), hashPoint(hashFP(fp), point); got != want {
		t.Fatalf("KeyHash = %016x, internal key = %016x", got, want)
	}
}
