package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/robust"
)

// fastRetry retries immediately so the chain tests stay fast.
func fastRetry(attempts int) robust.RetryPolicy {
	return robust.RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Nanosecond, MaxDelay: time.Nanosecond, Multiplier: 1}
}

// TestRetryErrorChainKeepsSentinel pins the retry machinery's error-chain
// contract: the error an engine reports after exhausting its attempts must
// still satisfy errors.Is against the evaluator's own sentinel, through
// the guard, the retry loop and any %w layers the evaluator added.
func TestRetryErrorChainKeepsSentinel(t *testing.T) {
	sentinel := errors.New("backend unavailable")
	ev := robust.EvaluatorFunc(func(_ context.Context, p []float64) (float64, error) {
		return 0, fmt.Errorf("evaluating %v: %w", p, sentinel)
	})
	e := New(Options{Retry: fastRetry(3)})
	o := e.Do(context.Background(), ev, []float64{1})
	if o.Err == nil {
		t.Fatal("persistently failing evaluator reported success")
	}
	if o.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", o.Attempts)
	}
	if !errors.Is(o.Err, sentinel) {
		t.Fatalf("errors.Is lost the sentinel through the retry chain: %v", o.Err)
	}
}

// TestRetryErrorChainExposesPanicError checks the other chain the engine
// guarantees: a panicking evaluator surfaces as *robust.PanicError via
// errors.As, with the panic value preserved.
func TestRetryErrorChainExposesPanicError(t *testing.T) {
	ev := robust.EvaluatorFunc(func(_ context.Context, _ []float64) (float64, error) {
		panic("numeric invariant violated")
	})
	e := New(Options{Retry: fastRetry(2)})
	o := e.Do(context.Background(), ev, []float64{2})
	if o.Err == nil {
		t.Fatal("panicking evaluator reported success")
	}
	var pe *robust.PanicError
	if !errors.As(o.Err, &pe) {
		t.Fatalf("errors.As failed to extract *robust.PanicError from %v", o.Err)
	}
	if pe.Value != "numeric invariant violated" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	st := e.Stats()
	if st.Panics == 0 {
		t.Fatalf("panic not counted: %+v", st)
	}
}

// TestRetryErrorChainInjectedFault routes the fault injector through the
// engine and checks the robust.ErrInjected sentinel survives end to end.
func TestRetryErrorChainInjectedFault(t *testing.T) {
	inner := robust.EvaluatorFunc(func(_ context.Context, p []float64) (float64, error) {
		return p[0], nil
	})
	faulty := robust.NewFaulty(inner, 42)
	faulty.PFail = 1 // every draw fails
	e := New(Options{Retry: fastRetry(2)})
	o := e.Do(context.Background(), faulty, []float64{7})
	if o.Err == nil {
		t.Fatal("always-failing injector reported success")
	}
	if !errors.Is(o.Err, robust.ErrInjected) {
		t.Fatalf("errors.Is lost robust.ErrInjected: %v", o.Err)
	}
}
