package engine

import "math"

// The memo cache is keyed by a precomputed 64-bit hash of the
// (fingerprint, point) pair rather than the exact key bytes: hashing a
// point is a handful of integer mixes with zero allocation, where the
// old exact-bytes encoding built a fresh string per lookup. Hashes can
// collide, so every entry keeps its exact identity — the interned
// fingerprint ID and the point's float64 values — and a probe compares
// it bit-for-bit before reporting a hit; a collision is simply a miss
// (and, on insert, a replacement), never a wrong value.

// fnvOffset/fnvPrime are the FNV-1a constants used to seed a
// fingerprint's hash.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashFP hashes a fingerprint string (FNV-1a). The result seeds
// hashPoint, so one evaluator's hash is computed once per stream, not
// per point.
func hashFP(fp string) uint64 {
	h := fnvOffset
	for i := 0; i < len(fp); i++ {
		h ^= uint64(fp[i])
		h *= fnvPrime
	}
	return h
}

// hashPoint folds a point's IEEE-754 bits into the fingerprint seed with
// a splitmix64-style avalanche per coordinate. Zero allocations.
func hashPoint(seed uint64, point []float64) uint64 {
	h := seed
	for _, v := range point {
		h ^= math.Float64bits(v)
		h *= 0x9e3779b97f4a7c15
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 32
	}
	// Final mix so short points still spread over the table.
	h ^= uint64(len(point))
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	return h
}

// pointsEqual compares two points bit-for-bit (so NaNs compare equal to
// themselves and −0 ≠ +0, exactly like the old byte encoding).
func pointsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// lruEntry is one memoized evaluation with its exact identity.
type lruEntry struct {
	hash  uint64
	fpID  uint32
	point []float64 // owned copy; never aliases caller memory
	val   float64

	prev, next *lruEntry
}

// lruCache is a hash-keyed LRU over an intrusive doubly-linked list. It
// is not goroutine-safe; the engine serializes access under its mutex.
// Warm hits perform zero allocations.
type lruCache struct {
	capacity int
	items    map[uint64]*lruEntry
	root     lruEntry // sentinel: root.next is MRU, root.prev is LRU
	n        int
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	// Pre-size the table toward its capacity (bounded: a default-size
	// cache costs ~200 KB up front) so cold batched sweeps don't pay
	// incremental rehash growth on every insert.
	hint := capacity
	if hint > 8192 {
		hint = 8192
	}
	c := &lruCache{capacity: capacity, items: make(map[uint64]*lruEntry, hint)}
	c.root.next = &c.root
	c.root.prev = &c.root
	return c
}

func (c *lruCache) unlink(e *lruEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *lruCache) pushFront(e *lruEntry) {
	e.prev = &c.root
	e.next = c.root.next
	e.prev.next = e
	e.next.prev = e
}

// get returns the cached value when the entry at hash matches the exact
// (fpID, point) identity, marking it most-recently used. A hash hit with
// a different identity is a miss.
func (c *lruCache) get(hash uint64, fpID uint32, point []float64) (float64, bool) {
	e, ok := c.items[hash]
	if !ok || e.fpID != fpID || !pointsEqual(e.point, point) {
		return 0, false
	}
	c.unlink(e)
	c.pushFront(e)
	return e.val, true
}

// add inserts or refreshes an entry and reports whether another entry
// was evicted to make room. A hash collision with a different identity
// replaces the resident entry (the table holds one entry per hash); the
// exact-identity check in get keeps this safe.
func (c *lruCache) add(hash uint64, fpID uint32, point []float64, val float64) (evicted bool) {
	if e, ok := c.items[hash]; ok {
		if e.fpID != fpID || !pointsEqual(e.point, point) {
			e.fpID = fpID
			e.point = append(e.point[:0], point...)
		}
		e.val = val
		c.unlink(e)
		c.pushFront(e)
		return false
	}
	e := &lruEntry{hash: hash, fpID: fpID, point: append([]float64(nil), point...), val: val}
	c.items[hash] = e
	c.pushFront(e)
	c.n++
	if c.n > c.capacity {
		oldest := c.root.prev
		c.unlink(oldest)
		delete(c.items, oldest.hash)
		c.n--
		return true
	}
	return false
}

// addBatch is add for a whole freshly computed chunk: one entry slab
// and one flat point backing array are shared by every inserted entry,
// so cold batched sweeps pay two allocations per chunk instead of two
// per point (the dominant cost of cold insertion otherwise). skip, when
// non-nil, marks entries the caller does not own (in-flight hash
// collisions) that must stay out of the table. Entries evicted later
// pin their slab until the whole chunk's generation ages out — bounded
// by one extra chunk per resident generation, which the chunk-size cap
// keeps small.
func (c *lruCache) addBatch(hashes []uint64, fpID uint32, points [][]float64, vals []float64, skip []bool) (evicted uint64) {
	slab := make([]lruEntry, len(hashes))
	total := 0
	for k, p := range points {
		if skip == nil || !skip[k] {
			total += len(p)
		}
	}
	backing := make([]float64, 0, total)
	for k, h := range hashes {
		if skip != nil && skip[k] {
			continue
		}
		if e, ok := c.items[h]; ok {
			// Hash resident (a collision or an intra-chunk duplicate):
			// same replacement semantics as add.
			if e.fpID != fpID || !pointsEqual(e.point, points[k]) {
				e.fpID = fpID
				e.point = append(e.point[:0], points[k]...)
			}
			e.val = vals[k]
			c.unlink(e)
			c.pushFront(e)
			continue
		}
		lo := len(backing)
		backing = append(backing, points[k]...)
		e := &slab[k]
		*e = lruEntry{hash: h, fpID: fpID, point: backing[lo:len(backing):len(backing)], val: vals[k]}
		c.items[h] = e
		c.pushFront(e)
		c.n++
		if c.n > c.capacity {
			oldest := c.root.prev
			c.unlink(oldest)
			delete(c.items, oldest.hash)
			c.n--
			evicted++
		}
	}
	return evicted
}

func (c *lruCache) len() int { return c.n }
