package engine

import "container/list"

// lruCache is a classic map + doubly-linked-list LRU. It is not
// goroutine-safe; the engine serializes access under its mutex.
type lruCache struct {
	capacity int
	ll       *list.List
	items    map[string]*list.Element
}

type lruEntry struct {
	key string
	val float64
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the cached value and marks the entry most-recently used.
func (c *lruCache) get(key string) (float64, bool) {
	el, ok := c.items[key]
	if !ok {
		return 0, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts or refreshes an entry and reports whether another entry was
// evicted to make room.
func (c *lruCache) add(key string, val float64) (evicted bool) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return false
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		return true
	}
	return false
}

func (c *lruCache) len() int { return c.ll.Len() }
