package engine

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentBatchesShareCacheAndBound stresses one engine from two
// concurrent batches over overlapping points (run under -race via `make
// race`): every point must be computed at most once across both batches,
// and the shared semaphore must never admit more than Workers evaluations
// at a time.
func TestConcurrentBatchesShareCacheAndBound(t *testing.T) {
	const workers = 4
	var running, peak, mu = 0, 0, sync.Mutex{}
	ev := &countingEval{fp: "shared"}
	ev.fn = func(p []float64) (float64, error) {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		time.Sleep(200 * time.Microsecond)
		mu.Lock()
		running--
		mu.Unlock()
		return p[0] * 3, nil
	}
	e := New(Options{Workers: workers})
	points := make([][]float64, 60)
	for i := range points {
		points[i] = []float64{float64(i % 30)} // each point appears twice
	}
	var wg sync.WaitGroup
	results := make([][]float64, 2)
	for b := 0; b < 2; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			vals := make([]float64, len(points))
			err := e.EvaluateStream(context.Background(), ev, points, func(i int, o Outcome) {
				if o.Err != nil {
					t.Errorf("batch %d point %d: %v", b, i, o.Err)
				}
				vals[i] = o.Value
			})
			if err != nil {
				t.Errorf("batch %d: %v", b, err)
			}
			results[b] = vals
		}(b)
	}
	wg.Wait()
	for b, vals := range results {
		for i, v := range vals {
			if want := float64(i%30) * 3; v != want {
				t.Fatalf("batch %d point %d = %v, want %v", b, i, v, want)
			}
		}
	}
	// 30 distinct points: memoization + singleflight must cap raw work.
	if got := ev.calls.Load(); got != 30 {
		t.Fatalf("raw calls = %d, want 30 (each distinct point once)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if peak > workers {
		t.Fatalf("peak concurrency %d exceeded worker bound %d", peak, workers)
	}
}

// TestCancelledStreamLeaksNoGoroutines cancels a stream mid-flight and
// verifies every worker goroutine has exited once EvaluateStream returns.
func TestCancelledStreamLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ev := &countingEval{fp: "leak"}
	ev.fn = func(p []float64) (float64, error) {
		time.Sleep(time.Millisecond)
		return p[0], nil
	}
	e := New(Options{Workers: 8})
	points := make([][]float64, 500)
	for i := range points {
		points[i] = []float64{float64(i)}
	}
	done := 0
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_ = e.EvaluateStream(ctx, ev, points, func(int, Outcome) { done++ })
	if done == len(points) {
		t.Skip("stream finished before cancellation; nothing to check")
	}
	// The stream returned: all workers must wind down. Allow the runtime a
	// moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after cancelled stream", before, runtime.NumGoroutine())
}
