package engine

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/robust"
)

// countingEval is a fingerprinted evaluator that counts raw invocations.
type countingEval struct {
	fp    string
	calls atomic.Int64
	fn    func(p []float64) (float64, error)
}

func (c *countingEval) Fingerprint() string { return c.fp }

func (c *countingEval) EvaluateCtx(_ context.Context, p []float64) (float64, error) {
	c.calls.Add(1)
	if c.fn != nil {
		return c.fn(p)
	}
	return p[0] * 2, nil
}

func TestEvaluateMemoizes(t *testing.T) {
	ev := &countingEval{fp: "double"}
	e := New(Options{Workers: 2})
	ctx := context.Background()
	v1, err := e.Evaluate(ctx, ev, []float64{3})
	if err != nil || v1 != 6 {
		t.Fatalf("first evaluate = %v, %v", v1, err)
	}
	v2, err := e.Evaluate(ctx, ev, []float64{3})
	if err != nil || v2 != 6 {
		t.Fatalf("second evaluate = %v, %v", v2, err)
	}
	if got := ev.calls.Load(); got != 1 {
		t.Fatalf("raw calls = %d, want 1 (memoized)", got)
	}
	st := e.Stats()
	if st.Requests != 2 || st.Evaluations != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	o := e.Do(ctx, ev, []float64{3})
	if !o.CacheHit || o.Value != 6 || o.Attempts != 0 {
		t.Fatalf("outcome = %+v, want cache hit", o)
	}
}

func TestFingerprintsSeparateCaches(t *testing.T) {
	e := New(Options{})
	ctx := context.Background()
	a := Func{FP: "a", F: func(_ context.Context, p []float64) (float64, error) { return p[0] + 1, nil }}
	b := Func{FP: "b", F: func(_ context.Context, p []float64) (float64, error) { return p[0] + 2, nil }}
	va, _ := e.Evaluate(ctx, a, []float64{1})
	vb, _ := e.Evaluate(ctx, b, []float64{1})
	if va != 2 || vb != 3 {
		t.Fatalf("fingerprint collision: a=%v b=%v", va, vb)
	}
	if e.CacheLen() != 2 {
		t.Fatalf("cache entries = %d, want 2", e.CacheLen())
	}
}

func TestAnonymousEvaluatorNotCached(t *testing.T) {
	var calls atomic.Int64
	ev := robust.EvaluatorFunc(func(_ context.Context, p []float64) (float64, error) {
		calls.Add(1)
		return p[0], nil
	})
	e := New(Options{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if v, err := e.Evaluate(ctx, ev, []float64{7}); err != nil || v != 7 {
			t.Fatalf("evaluate = %v, %v", v, err)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("anonymous evaluator calls = %d, want 3 (uncached)", calls.Load())
	}
	if e.CacheLen() != 0 {
		t.Fatalf("cache entries = %d for anonymous evaluator", e.CacheLen())
	}
	st := e.Stats()
	if st.Evaluations != 3 || st.CacheHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	ev := &countingEval{fp: "x"}
	e := New(Options{CacheSize: -1})
	ctx := context.Background()
	e.Evaluate(ctx, ev, []float64{1})
	e.Evaluate(ctx, ev, []float64{1})
	if ev.calls.Load() != 2 {
		t.Fatalf("calls = %d with disabled cache, want 2", ev.calls.Load())
	}
}

func TestLRUEviction(t *testing.T) {
	ev := &countingEval{fp: "lru"}
	e := New(Options{CacheSize: 2})
	ctx := context.Background()
	e.Evaluate(ctx, ev, []float64{1})
	e.Evaluate(ctx, ev, []float64{2})
	e.Evaluate(ctx, ev, []float64{1}) // refresh 1 → 2 is now LRU
	e.Evaluate(ctx, ev, []float64{3}) // evicts 2
	e.Evaluate(ctx, ev, []float64{1}) // still cached
	e.Evaluate(ctx, ev, []float64{2}) // recompute
	if got := ev.calls.Load(); got != 4 {
		t.Fatalf("raw calls = %d, want 4 (points 1,2,3 + re-computed 2)", got)
	}
	st := e.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if e.CacheLen() != 2 {
		t.Fatalf("cache len = %d, want 2", e.CacheLen())
	}
}

func TestCacheKeyExactness(t *testing.T) {
	// Distinct points and fingerprints must produce distinct hashes, and
	// negative zero must not alias zero away (bit mixing is exact).
	keys := map[uint64]bool{
		hashPoint(hashFP("a"), []float64{1, 2}):                 true,
		hashPoint(hashFP("a"), []float64{2, 1}):                 true,
		hashPoint(hashFP("b"), []float64{1, 2}):                 true,
		hashPoint(hashFP("a"), []float64{1}):                    true,
		hashPoint(hashFP("a"), []float64{math.Inf(1)}):          true,
		hashPoint(hashFP("a"), []float64{math.Copysign(0, -1)}): true,
		hashPoint(hashFP("a"), []float64{0}):                    true,
	}
	if len(keys) != 7 {
		t.Fatalf("key collisions: %d distinct of 7", len(keys))
	}
}

func TestCacheHashCollisionIsExact(t *testing.T) {
	// Force a collision by inserting two different identities under the
	// same 64-bit hash: the probe must miss for the evicted identity and
	// the resident value must stay correct — never a wrong value.
	c := newLRU(8)
	p1 := []float64{1, 2}
	p2 := []float64{3, 4}
	const h = uint64(0xdeadbeef)
	c.add(h, 1, p1, 10)
	if v, ok := c.get(h, 1, p1); !ok || v != 10 {
		t.Fatalf("get(p1) = %v,%v, want 10,true", v, ok)
	}
	if _, ok := c.get(h, 1, p2); ok {
		t.Fatal("get(p2) hit under p1's hash: collision returned a wrong value")
	}
	if _, ok := c.get(h, 2, p1); ok {
		t.Fatal("get(fpID=2) hit under fpID=1's entry")
	}
	c.add(h, 1, p2, 20) // collision replaces the resident identity
	if _, ok := c.get(h, 1, p1); ok {
		t.Fatal("p1 still resident after collision replacement")
	}
	if v, ok := c.get(h, 1, p2); !ok || v != 20 {
		t.Fatalf("get(p2) = %v,%v, want 20,true", v, ok)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 (one slot per hash)", c.len())
	}
}

func TestSingleflightDeduplicates(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	ev := &countingEval{fp: "slow"}
	ev.fn = func(p []float64) (float64, error) {
		started <- struct{}{}
		<-release
		return p[0] * 10, nil
	}
	e := New(Options{Workers: 8})
	ctx := context.Background()
	const callers = 6
	var wg sync.WaitGroup
	results := make([]Outcome, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.Do(ctx, ev, []float64{4})
		}(i)
	}
	<-started // first computation is running
	// Give the other callers a moment to park on the in-flight entry.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := ev.calls.Load(); got != 1 {
		t.Fatalf("raw calls = %d, want 1 (singleflight)", got)
	}
	shared := 0
	for _, o := range results {
		if o.Err != nil || o.Value != 40 {
			t.Fatalf("outcome = %+v", o)
		}
		if o.Shared {
			shared++
		}
	}
	if shared != callers-1 {
		t.Fatalf("shared outcomes = %d, want %d", shared, callers-1)
	}
	if st := e.Stats(); st.Dedups != callers-1 {
		t.Fatalf("dedups = %d, want %d", st.Dedups, callers-1)
	}
}

func TestPanicIsolatedAndCounted(t *testing.T) {
	ev := &countingEval{fp: "panicky"}
	ev.fn = func(p []float64) (float64, error) { panic("boom") }
	e := New(Options{Retry: robust.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond}})
	o := e.Do(context.Background(), ev, []float64{1})
	if o.Err == nil {
		t.Fatal("panic swallowed")
	}
	var pe *robust.PanicError
	if !errors.As(o.Err, &pe) {
		t.Fatalf("err = %v, want PanicError", o.Err)
	}
	st := e.Stats()
	if st.Panics != 2 || st.Retries != 1 || st.Failures != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if e.CacheLen() != 0 {
		t.Fatal("failed outcome was cached")
	}
}

func TestTransientFailureRetriedThenCached(t *testing.T) {
	var calls atomic.Int64
	ev := &countingEval{fp: "flaky"}
	ev.fn = func(p []float64) (float64, error) {
		if calls.Add(1) < 3 {
			return math.NaN(), errors.New("transient")
		}
		return 99, nil
	}
	e := New(Options{Retry: robust.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}})
	o := e.Do(context.Background(), ev, []float64{1})
	if o.Err != nil || o.Value != 99 || o.Attempts != 3 {
		t.Fatalf("outcome = %+v", o)
	}
	// Second request: memoized, no further raw calls.
	o2 := e.Do(context.Background(), ev, []float64{1})
	if !o2.CacheHit || o2.Value != 99 {
		t.Fatalf("outcome2 = %+v", o2)
	}
	if calls.Load() != 3 {
		t.Fatalf("raw calls = %d", calls.Load())
	}
	if st := e.Stats(); st.Retries != 2 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCancelledRequestNotCached(t *testing.T) {
	ev := &countingEval{fp: "blocky"}
	ev.fn = func(p []float64) (float64, error) { return p[0], nil }
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(Options{})
	o := e.Do(ctx, ev, []float64{5})
	if !errors.Is(o.Err, context.Canceled) {
		t.Fatalf("err = %v", o.Err)
	}
	if e.CacheLen() != 0 {
		t.Fatal("cancelled outcome cached")
	}
	// A fresh context must still compute the value.
	v, err := e.Evaluate(context.Background(), ev, []float64{5})
	if err != nil || v != 5 {
		t.Fatalf("post-cancel evaluate = %v, %v", v, err)
	}
}

func TestInfeasibleInfIsCachedValue(t *testing.T) {
	ev := &countingEval{fp: "inf"}
	ev.fn = func(p []float64) (float64, error) { return math.Inf(1), nil }
	e := New(Options{})
	ctx := context.Background()
	v1, err1 := e.Evaluate(ctx, ev, []float64{1})
	v2, err2 := e.Evaluate(ctx, ev, []float64{1})
	if err1 != nil || err2 != nil || !math.IsInf(v1, 1) || !math.IsInf(v2, 1) {
		t.Fatalf("inf results: %v/%v %v/%v", v1, err1, v2, err2)
	}
	if ev.calls.Load() != 1 {
		t.Fatalf("+Inf not memoized: %d calls", ev.calls.Load())
	}
}

func TestEvaluateStreamCompletesAll(t *testing.T) {
	ev := &countingEval{fp: "stream"}
	e := New(Options{Workers: 4})
	points := make([][]float64, 50)
	for i := range points {
		points[i] = []float64{float64(i)}
	}
	got := make([]float64, len(points))
	seen := 0
	err := e.EvaluateStream(context.Background(), ev, points, func(i int, o Outcome) {
		if o.Err != nil {
			t.Errorf("point %d: %v", i, o.Err)
		}
		got[i] = o.Value
		seen++
	})
	if err != nil {
		t.Fatalf("stream err = %v", err)
	}
	if seen != len(points) {
		t.Fatalf("yielded %d of %d", seen, len(points))
	}
	for i := range points {
		if got[i] != float64(i)*2 {
			t.Fatalf("point %d = %v", i, got[i])
		}
	}
}

func TestStatsDeltaAndString(t *testing.T) {
	ev := &countingEval{fp: "d"}
	e := New(Options{})
	ctx := context.Background()
	e.Evaluate(ctx, ev, []float64{1})
	s0 := e.Stats()
	e.Evaluate(ctx, ev, []float64{1})
	e.Evaluate(ctx, ev, []float64{2})
	d := e.Stats().Delta(s0)
	if d.Requests != 2 || d.Evaluations != 1 || d.CacheHits != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if d.String() == "" {
		t.Fatal("empty stats string")
	}
	if hr := d.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v", hr)
	}
}
