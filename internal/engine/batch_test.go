package engine

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/robust"
)

// quadEval is a fingerprinted batch evaluator whose two paths share one
// kernel, so scalar and batched results are trivially bit-identical.
type quadEval struct {
	scalarCalls atomic.Int64
	batchCalls  atomic.Int64
	batchPoints atomic.Int64
}

func quadKernel(p []float64) float64 {
	s := 0.0
	for _, v := range p {
		s += v * v
	}
	return s
}

func (q *quadEval) Fingerprint() string { return "test.quad" }

func (q *quadEval) EvaluateCtx(_ context.Context, p []float64) (float64, error) {
	q.scalarCalls.Add(1)
	return quadKernel(p), nil
}

func (q *quadEval) EvaluateBatch(_ context.Context, pts [][]float64, out []float64) error {
	q.batchCalls.Add(1)
	q.batchPoints.Add(int64(len(pts)))
	for i, p := range pts {
		out[i] = quadKernel(p)
	}
	return nil
}

func testPlane(n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i), float64(i % 7)}
	}
	return pts
}

func TestBatchStreamMatchesScalar(t *testing.T) {
	pts := testPlane(1000)
	scalar := make([]float64, len(pts))
	batch := make([]float64, len(pts))

	es := New(Options{Workers: 4, DisableBatch: true})
	if err := es.EvaluateBatch(context.Background(), &quadEval{}, pts, scalar); err != nil {
		t.Fatal(err)
	}
	eb := New(Options{Workers: 4})
	qb := &quadEval{}
	if err := eb.EvaluateBatch(context.Background(), qb, pts, batch); err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if math.Float64bits(scalar[i]) != math.Float64bits(batch[i]) {
			t.Fatalf("point %d: scalar %v != batch %v", i, scalar[i], batch[i])
		}
	}
	if qb.scalarCalls.Load() != 0 {
		t.Fatalf("batched engine made %d scalar calls", qb.scalarCalls.Load())
	}
	if got := qb.batchPoints.Load(); got != int64(len(pts)) {
		t.Fatalf("batch evaluated %d points, want %d", got, len(pts))
	}
	ss, bs := es.Stats(), eb.Stats()
	if ss.Requests != bs.Requests || ss.Evaluations != bs.Evaluations ||
		ss.CacheHits != bs.CacheHits || ss.CacheMisses != bs.CacheMisses {
		t.Fatalf("stats diverge:\nscalar %+v\nbatch  %+v", ss, bs)
	}
}

func TestBatchSecondPassAllHits(t *testing.T) {
	pts := testPlane(500)
	out := make([]float64, len(pts))
	e := New(Options{Workers: 4})
	q := &quadEval{}
	if err := e.EvaluateBatch(context.Background(), q, pts, out); err != nil {
		t.Fatal(err)
	}
	first := q.batchPoints.Load()
	if err := e.EvaluateBatch(context.Background(), q, pts, out); err != nil {
		t.Fatal(err)
	}
	if q.batchPoints.Load() != first {
		t.Fatalf("second pass re-evaluated: %d → %d points", first, q.batchPoints.Load())
	}
	st := e.Stats()
	if st.CacheHits != uint64(len(pts)) {
		t.Fatalf("cache hits = %d, want %d", st.CacheHits, len(pts))
	}
}

// anonBatch implements both methods but no Fingerprint: batched, never
// cached.
type anonBatch struct{ quadEval }

func (a *anonBatch) Fingerprint() {} // shadow with a non-interface signature

func TestBatchAnonymousIsNotCached(t *testing.T) {
	pts := testPlane(64)
	out := make([]float64, len(pts))
	e := New(Options{Workers: 2})
	a := &anonBatch{}
	for pass := 0; pass < 2; pass++ {
		if err := e.EvaluateBatch(context.Background(), a, pts, out); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.batchPoints.Load(); got != int64(2*len(pts)) {
		t.Fatalf("anonymous batch evaluated %d points, want %d (no caching)", got, 2*len(pts))
	}
	if st := e.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("anonymous evaluator touched the cache: %+v", st)
	}
}

// faultyBatch panics on its first batch call, then succeeds.
type faultyBatch struct {
	quadEval
	failed atomic.Bool
}

func (f *faultyBatch) EvaluateBatch(ctx context.Context, pts [][]float64, out []float64) error {
	if f.failed.CompareAndSwap(false, true) {
		panic("injected batch panic")
	}
	return f.quadEval.EvaluateBatch(ctx, pts, out)
}

func TestBatchPanicIsolatedAndRetried(t *testing.T) {
	pts := testPlane(32)
	out := make([]float64, len(pts))
	e := New(Options{Workers: 1, Retry: robust.RetryPolicy{MaxAttempts: 3}})
	if err := e.EvaluateBatch(context.Background(), &faultyBatch{}, pts, out); err != nil {
		t.Fatalf("retry did not recover the panicking batch: %v", err)
	}
	for i, p := range pts {
		if out[i] != quadKernel(p) {
			t.Fatalf("point %d wrong after retry: %v", i, out[i])
		}
	}
	st := e.Stats()
	if st.Panics == 0 || st.Retries == 0 {
		t.Fatalf("panic/retry not metered: %+v", st)
	}
}

// errBatch always fails.
type errBatch struct{ quadEval }

func (*errBatch) EvaluateBatch(context.Context, [][]float64, []float64) error {
	return errors.New("kernel fault")
}

func TestBatchErrorYieldsNaNOutcomes(t *testing.T) {
	pts := testPlane(8)
	e := New(Options{Workers: 1, Retry: robust.RetryPolicy{MaxAttempts: 2}})
	var outcomes []Outcome
	err := e.EvaluateStream(context.Background(), &errBatch{}, pts, func(i int, o Outcome) {
		outcomes = append(outcomes, o)
	})
	if err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if len(outcomes) != len(pts) {
		t.Fatalf("yielded %d outcomes, want %d", len(outcomes), len(pts))
	}
	for _, o := range outcomes {
		if o.Err == nil || !math.IsNaN(o.Value) {
			t.Fatalf("failed outcome = %+v, want NaN value and error", o)
		}
	}
	if st := e.Stats(); st.Failures != uint64(len(pts)) {
		t.Fatalf("failures = %d, want %d (one per affected point)", st.Failures, len(pts))
	}
	// Failures must not be cached: a retry of the plane re-evaluates.
	if e.CacheLen() != 0 {
		t.Fatalf("cache holds %d entries after an all-failed batch", e.CacheLen())
	}
}

func TestBatchStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(Options{Workers: 2})
	err := e.EvaluateStream(ctx, &quadEval{}, testPlane(100), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEvaluateBatchLengthMismatch(t *testing.T) {
	e := New(Options{})
	if err := e.EvaluateBatch(context.Background(), &quadEval{}, testPlane(3), make([]float64, 2)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestWarmHitZeroAllocs pins the memo hot path: a warm scalar hit — the
// per-point unit the old exact-bytes key allocated a string for — now
// performs zero allocations.
func TestWarmHitZeroAllocs(t *testing.T) {
	e := New(Options{Workers: 1})
	// The conversion to the interface happens once here: a concrete Func
	// boxed per call would charge the caller one allocation, not the
	// engine.
	var ev robust.Evaluator = Func{FP: "alloc.probe", F: func(_ context.Context, p []float64) (float64, error) {
		return p[0], nil
	}}
	point := []float64{42, 7}
	ctx := context.Background()
	if _, err := e.Evaluate(ctx, ev, point); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		o := e.Do(ctx, ev, point)
		if !o.CacheHit {
			t.Fatal("expected a warm hit")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm cache hit allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkWarmHit measures the scalar memo probe (the path the 64-bit
// hash key replaced exact-bytes string encoding on).
func BenchmarkWarmHit(b *testing.B) {
	e := New(Options{Workers: 1})
	var ev robust.Evaluator = Func{FP: "bench.warm", F: func(_ context.Context, p []float64) (float64, error) {
		return p[0] + p[1], nil
	}}
	points := testPlane(1024)
	ctx := context.Background()
	for _, p := range points {
		if _, err := e.Evaluate(ctx, ev, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Do(ctx, ev, points[i%len(points)])
	}
}

// BenchmarkBatchStream compares the two stream dispatch paths on a warm
// cache (per-point cost of chunked vs scalar submission).
func BenchmarkBatchStream(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"batched", false}, {"scalar", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e := New(Options{Workers: 4, DisableBatch: mode.disable})
			q := &quadEval{}
			pts := testPlane(4096)
			ctx := context.Background()
			out := make([]float64, len(pts))
			if err := e.EvaluateBatch(ctx, q, pts, out); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.EvaluateBatch(ctx, q, pts, out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perPoint := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(pts))
			b.ReportMetric(perPoint, "ns/point")
		})
	}
}
