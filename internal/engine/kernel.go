package engine

import (
	"context"
	"math"
)

// Kernel is the structural mirror of internal/model.Kernel: a compiled,
// allocation-free per-point objective. The engine cannot import
// internal/model (core already imports the engine), so any compiled
// kernel — a model family's or an ad-hoc one — plugs in through this
// shape via KernelEvaluator.
type Kernel interface {
	// TimeAt returns the objective at a point, +Inf for infeasible
	// points.
	TimeAt(point []float64) float64
	// TimeWorkAt returns time and work, ok=false for infeasible points.
	TimeWorkAt(point []float64) (t, w float64, ok bool)
}

// KernelEvaluator adapts a compiled Kernel to the engine's evaluator
// contracts: scalar EvaluateCtx for the per-point pipeline and
// EvaluateBatch for chunked dispatch. Both paths call the same
// Kernel.TimeAt, so they are bit-identical by construction. FP must be
// the family-qualified model fingerprint — it is the memo/singleflight
// key that keeps two families from ever sharing cache entries.
type KernelEvaluator struct {
	// FP is the family-qualified fingerprint keying the memo cache.
	FP string
	// K is the compiled kernel.
	K Kernel
}

// Fingerprint implements Fingerprinter.
func (e KernelEvaluator) Fingerprint() string { return e.FP }

// EvaluateCtx implements robust.Evaluator. Infeasible points are +Inf
// values, never errors.
func (e KernelEvaluator) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return math.NaN(), err
	}
	return e.K.TimeAt(point), nil
}

// EvaluateBatch implements BatchEvaluator, checking for cancellation
// every 256 points so huge chunks stay responsive.
func (e KernelEvaluator) EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error {
	for i, p := range points {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		out[i] = e.K.TimeAt(p)
	}
	return nil
}
