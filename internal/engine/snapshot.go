package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Cache snapshots persist the memo cache across process restarts so a
// clustered shard comes back warm instead of re-evaluating its keyset.
// The format is a single versioned binary blob (little-endian):
//
//	magic      [8]byte  "C2BSNAP" + version byte
//	fpCount    uint32   interned fingerprint strings, in first-use order
//	fpCount ×  { len uint32, bytes }
//	entries    uint32   cache entries, LRU → MRU (recency survives restore)
//	entries ×  { fpIdx uint32, dims uint32, dims × uint64 point bits, uint64 value bits }
//	trailer    uint64   FNV-1a over every preceding byte
//
// Points and values are stored as raw IEEE-754 bits, so a restored entry
// is bit-identical to the one saved (NaN payloads and −0 included) and a
// save → load → save round trip reproduces the file byte for byte. The
// write path follows the jobstore durability pattern: unique temp file,
// fsync, rename, directory fsync. The load path verifies the checksum
// and fully parses the blob before touching the cache, so a truncated or
// corrupt file is a clean error, never a partial restore.

// snapshotMagic identifies a version-1 snapshot file.
var snapshotMagic = [8]byte{'C', '2', 'B', 'S', 'N', 'A', 'P', 1}

// snapshotEntry is one parsed cache entry awaiting installation.
type snapshotEntry struct {
	fp    string
	point []float64
	val   float64
}

// SaveSnapshot writes the memo cache durably and atomically to path,
// returning the number of entries saved. Saving with caching disabled is
// an error. The engine stays fully serving while the snapshot is
// encoded; the cache mutex is held only for the in-memory walk.
func (e *Engine) SaveSnapshot(path string) (int, error) {
	data, n, err := e.encodeSnapshot()
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return 0, fmt.Errorf("engine: snapshot: %w", err)
		}
	}
	// Unique temp name per writer so two concurrent savers never
	// interleave on one file; each rename publishes a complete blob.
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("engine: snapshot: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("engine: snapshot: %w", err)
	}
	syncSnapshotDir(dir)
	return n, nil
}

// encodeSnapshot renders the cache as the snapshot blob under the
// engine mutex. The fingerprint table is built from the entries in walk
// order (not the intern map), so the encoding is deterministic.
func (e *Engine) encodeSnapshot() ([]byte, int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cache == nil {
		return nil, 0, fmt.Errorf("engine: snapshot: caching is disabled")
	}
	fpByID := make(map[uint32]string, len(e.fps))
	for fp, id := range e.fps {
		fpByID[id] = fp
	}
	var fpOrder []string
	fpIdx := make(map[uint32]uint32)
	var entries []*lruEntry
	for le := e.cache.root.prev; le != &e.cache.root; le = le.prev {
		if _, ok := fpIdx[le.fpID]; !ok {
			fpIdx[le.fpID] = uint32(len(fpOrder))
			fpOrder = append(fpOrder, fpByID[le.fpID])
		}
		entries = append(entries, le)
	}
	buf := make([]byte, 0, 16+len(entries)*64)
	buf = append(buf, snapshotMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fpOrder)))
	for _, fp := range fpOrder {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fp)))
		buf = append(buf, fp...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, le := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, fpIdx[le.fpID])
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(le.point)))
		for _, v := range le.point {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(le.val))
	}
	buf = binary.LittleEndian.AppendUint64(buf, fnvSum(buf))
	return buf, len(entries), nil
}

// LoadSnapshot restores a snapshot into the cache, returning the number
// of entries installed. The blob is checksummed and fully parsed before
// the first insert: a truncated, corrupt or version-mismatched file
// leaves the cache exactly as it was. Entries are installed LRU → MRU
// with freshly interned fingerprints and recomputed hashes, so a
// restored cache behaves identically to one that was never saved
// (snapshots from larger caches simply evict from the cold end).
func (e *Engine) LoadSnapshot(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	entries, err := parseSnapshot(data)
	if err != nil {
		return 0, fmt.Errorf("engine: snapshot %q: %w", path, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cache == nil {
		return 0, fmt.Errorf("engine: snapshot: caching is disabled")
	}
	for _, se := range entries {
		fpID := e.internLocked(se.fp)
		e.cache.add(hashPoint(hashFP(se.fp), se.point), fpID, se.point, se.val)
	}
	return len(entries), nil
}

// parseSnapshot validates and decodes a snapshot blob all-or-nothing.
func parseSnapshot(data []byte) ([]snapshotEntry, error) {
	if len(data) < len(snapshotMagic)+8 {
		return nil, fmt.Errorf("truncated (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != snapshotMagic {
		return nil, fmt.Errorf("bad magic or unsupported version")
	}
	payload, trailer := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if sum := fnvSum(payload); sum != trailer {
		return nil, fmt.Errorf("checksum mismatch (file %016x, computed %016x)", trailer, sum)
	}
	r := snapReader{buf: payload[8:]}
	fpCount := r.u32()
	fps := make([]string, 0, fpCount)
	for i := uint32(0); i < fpCount; i++ {
		fps = append(fps, string(r.bytes(int(r.u32()))))
	}
	entryCount := r.u32()
	entries := make([]snapshotEntry, 0, entryCount)
	for i := uint32(0); i < entryCount; i++ {
		fpIdx := r.u32()
		if r.err == nil && fpIdx >= uint32(len(fps)) {
			return nil, fmt.Errorf("entry %d references fingerprint %d of %d", i, fpIdx, len(fps))
		}
		dims := r.u32()
		if r.err == nil && int(dims) > len(r.buf)/8 {
			return nil, fmt.Errorf("entry %d claims %d dims beyond the blob", i, dims)
		}
		point := make([]float64, 0, dims)
		for d := uint32(0); d < dims; d++ {
			point = append(point, math.Float64frombits(r.u64()))
		}
		val := math.Float64frombits(r.u64())
		if r.err != nil {
			return nil, r.err
		}
		entries = append(entries, snapshotEntry{fp: fps[fpIdx], point: point, val: val})
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after the last entry", len(r.buf))
	}
	return entries, nil
}

// snapReader is a cursor over the snapshot payload with a sticky
// out-of-bounds error, so the parser stays straight-line.
type snapReader struct {
	buf []byte
	err error
}

func (r *snapReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf) {
		r.err = fmt.Errorf("truncated payload (want %d bytes, have %d)", n, len(r.buf))
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *snapReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// fnvSum is FNV-1a over a byte slice (the snapshot trailer checksum).
func fnvSum(data []byte) uint64 {
	h := fnvOffset
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// syncSnapshotDir fsyncs the snapshot's directory so the just-renamed
// entry survives a crash; filesystems that refuse directory fsync keep
// the pre-sync behavior.
func syncSnapshotDir(dir string) {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}
