// Package engine is the shared evaluation service behind every consumer
// of "design point → objective value" in the repository: the brute-force
// sweep (dse.SweepCtx), the APS flow (aps.RunCtx), the analytic optimizer
// (core.OptimizeCtx) and the CLIs. One Engine owns
//
//   - the worker pool (a global concurrency bound shared by every batch
//     submitted to the engine, so two concurrent sweeps cannot
//     oversubscribe the machine),
//   - an LRU memoization cache keyed on a precomputed 64-bit hash of the
//     (evaluator fingerprint, design point) pair — collision-checked
//     against the entry's exact identity, so a hash collision is a miss,
//     never a wrong value — so overlapping
//     explorations — APS re-simulating a neighborhood a ground-truth
//     sweep already covered, the optimizer re-probing a design — pay for
//     each distinct evaluation once,
//   - in-flight deduplication (singleflight): concurrent requests for the
//     same key wait for the first computation instead of repeating it,
//   - the resilience machinery of package robust (panic isolation and
//     retry with exponential backoff), applied uniformly so no caller has
//     to wire it separately,
//   - and counters (requests, raw evaluations, cache hits, panics,
//     retries, failures, evaluator wall time) exposed as a Stats
//     snapshot.
//
// Caching requires a fingerprint: an evaluator that implements
// Fingerprinter (or an engine.Func with an explicit FP) is memoized;
// anonymous evaluators are still guarded, retried and metered, but never
// cached, because two distinct closures of one type would collide.
package engine

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/robust"
)

// Fingerprinter gives an evaluator a canonical identity for memoization.
// Two evaluators must return equal fingerprints only if they compute the
// same function; the fingerprint therefore has to cover every parameter
// the evaluation depends on (configuration, workload, seed, ...).
type Fingerprinter interface {
	Fingerprint() string
}

// Func is a fingerprinted evaluator built from a closure: the way ad-hoc
// objectives (the optimizer's time probe, a figure sweep's scoring rule)
// participate in memoization.
type Func struct {
	// FP is the canonical fingerprint of F.
	FP string
	// F computes the objective at a point.
	F func(ctx context.Context, point []float64) (float64, error)
}

// EvaluateCtx implements robust.Evaluator.
func (f Func) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	return f.F(ctx, point)
}

// Fingerprint implements Fingerprinter.
func (f Func) Fingerprint() string { return f.FP }

// Gate arbitrates worker slots among competing submissions. When an
// Engine carries one, every EvaluateStream point acquires a gate slot
// before it takes a pool worker, so an external scheduler — the server's
// per-tenant fair-share queue, for example — decides whose point runs
// next instead of the channel's arrival order. The gate sees the
// submission's context, which is where schedulers carry their identity
// (e.g. the requesting tenant).
//
// AcquireSlot blocks until a slot is granted, returning the release
// closure the caller must invoke after the evaluation, or ctx's error
// when the wait was cancelled. Implementations must be safe for
// concurrent use and must never return (nil, nil).
type Gate interface {
	AcquireSlot(ctx context.Context) (release func(), err error)
}

// Options configures a new Engine.
type Options struct {
	// Workers bounds the number of concurrently running evaluations
	// across all batches submitted to the engine (≤0: GOMAXPROCS).
	Workers int
	// CacheSize is the memoization capacity in entries. Zero selects
	// DefaultCacheSize; a negative value disables caching (and with it
	// in-flight deduplication).
	CacheSize int
	// Retry governs re-attempts of failing or panicking evaluations; the
	// zero value selects robust.DefaultRetry.
	Retry robust.RetryPolicy
	// Seed drives the retry jitter (0: fixed default).
	Seed uint64
	// Tracer records an engine.eval span per raw computation (nil:
	// tracing disabled at a single branch's cost).
	Tracer *obs.Tracer
	// Metrics mirrors the engine's private counters into a shared
	// registry (engine_*_total, engine_inflight, engine_eval_seconds).
	// The instruments are resolved once here at construction, so the
	// evaluation hot path never performs a registry or context lookup.
	// Nil disables the mirror.
	Metrics *obs.Registry
	// Gate, when non-nil, schedules EvaluateStream points: each point
	// acquires a gate slot (in addition to the engine's own worker
	// semaphore) before evaluating, so an external policy — fair-share
	// across tenants, priority classes — owns the dispatch order of the
	// shared pool. Single-point Evaluate/Do calls bypass the gate; they
	// are bounded by the caller's own admission control. On the batched
	// path the gate arbitrates chunks rather than points.
	Gate Gate
	// DisableBatch forces EvaluateStream onto the scalar per-point path
	// even for evaluators that implement BatchEvaluator. It exists for
	// differential testing and benchmarking of the two paths.
	DisableBatch bool
}

// DefaultCacheSize is the memoization capacity when Options.CacheSize is
// zero. An entry costs ~130 bytes (hash, identity point copy, value,
// list links), so the default stays well under 100 MB even when full.
const DefaultCacheSize = 1 << 18

// Outcome is the full result of one evaluation request.
type Outcome struct {
	// Value is the objective value (NaN when Err is non-nil).
	Value float64
	// Attempts is the number of evaluator invocations spent on this
	// request (0 when the value came from the cache or a shared
	// in-flight computation).
	Attempts int
	// CacheHit reports that the value was served from the memo cache.
	CacheHit bool
	// Shared reports that the request waited on a concurrent computation
	// of the same key instead of evaluating.
	Shared bool
	// Err is the final error after retries (nil for +Inf "infeasible"
	// results, which are legitimate values).
	Err error
}

// call is one in-flight computation other requests can wait on. It
// carries the exact key identity so a waiter can tell a genuine
// duplicate from a 64-bit hash collision.
type call struct {
	fpID  uint32
	point []float64
	done  chan struct{}
	out   Outcome
}

// Engine is the memoizing, metered evaluation service. Safe for
// concurrent use.
type Engine struct {
	workers      int
	retry        robust.RetryPolicy
	rng          *robust.RNG
	sem          chan struct{}
	gate         Gate
	disableBatch bool

	mu       sync.Mutex
	cache    *lruCache // nil when caching is disabled
	inflight map[uint64]*call
	fps      map[string]uint32 // fingerprint → interned ID for exact key checks

	counters counters

	tracer *obs.Tracer
	obs    instruments
}

// instruments are the engine's pre-resolved observability handles. They
// mirror the private counters one-for-one at the exact same increment
// sites, so a metrics snapshot and Stats always agree bit-for-bit. Every
// field is a valid no-op when nil (disabled registry).
type instruments struct {
	requests    *obs.Counter
	evaluations *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	dedups      *obs.Counter
	panics      *obs.Counter
	retries     *obs.Counter
	failures    *obs.Counter
	evictions   *obs.Counter
	inflight    *obs.Gauge
	evalSeconds *obs.Histogram
}

// newInstruments resolves the engine's instruments from r (all nil for a
// nil registry).
func newInstruments(r *obs.Registry) instruments {
	return instruments{
		requests:    r.Counter("engine_requests_total"),
		evaluations: r.Counter("engine_evaluations_total"),
		cacheHits:   r.Counter("engine_cache_hits_total"),
		cacheMisses: r.Counter("engine_cache_misses_total"),
		dedups:      r.Counter("engine_dedups_total"),
		panics:      r.Counter("engine_panics_total"),
		retries:     r.Counter("engine_retries_total"),
		failures:    r.Counter("engine_failures_total"),
		evictions:   r.Counter("engine_evictions_total"),
		inflight:    r.Gauge("engine_inflight"),
		evalSeconds: r.Histogram("engine_eval_seconds", obs.LatencyBuckets()),
	}
}

// New builds an engine. The zero Options value gives GOMAXPROCS workers,
// the default cache size and the default retry policy.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers:      workers,
		retry:        opts.Retry,
		rng:          robust.NewRNG(opts.Seed),
		sem:          make(chan struct{}, workers),
		gate:         opts.Gate,
		disableBatch: opts.DisableBatch,
		inflight:     make(map[uint64]*call),
		fps:          make(map[string]uint32),
		tracer:       opts.Tracer,
		obs:          newInstruments(opts.Metrics),
	}
	if opts.CacheSize >= 0 {
		size := opts.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		e.cache = newLRU(size)
	}
	return e
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Evaluate runs one evaluation request through the full pipeline —
// cache, in-flight dedup, panic guard, retry — and returns the value and
// final error. Infeasible configurations are values (+Inf, nil error);
// errors mark faults or cancellation.
func (e *Engine) Evaluate(ctx context.Context, ev robust.Evaluator, point []float64) (float64, error) {
	o := e.Do(ctx, ev, point)
	return o.Value, o.Err
}

// Do is Evaluate with the full Outcome (attempt count, cache/shared
// provenance).
func (e *Engine) Do(ctx context.Context, ev robust.Evaluator, point []float64) Outcome {
	e.counters.requests.Add(1)
	e.obs.requests.Add(1)
	fp := ""
	cacheable := false
	if e.cache != nil {
		if f, ok := ev.(Fingerprinter); ok {
			fp = f.Fingerprint()
			cacheable = true
		}
	}
	if !cacheable {
		return e.compute(ctx, ev, point)
	}
	return e.doKeyed(ctx, ev, point, hashPoint(hashFP(fp), point), fp)
}

// doKeyed is the cacheable half of Do: the caller has already derived
// the 64-bit key hash (cheap, zero-alloc) and still holds the exact
// fingerprint for identity checks.
func (e *Engine) doKeyed(ctx context.Context, ev robust.Evaluator, point []float64, hash uint64, fp string) Outcome {
	for {
		e.mu.Lock()
		fpID := e.internLocked(fp)
		if v, ok := e.cache.get(hash, fpID, point); ok {
			e.mu.Unlock()
			e.counters.cacheHits.Add(1)
			e.obs.cacheHits.Add(1)
			return Outcome{Value: v, CacheHit: true}
		}
		if c, ok := e.inflight[hash]; ok {
			if c.fpID != fpID || !pointsEqual(c.point, point) {
				// 64-bit hash collision with a different in-flight key:
				// compute solo, skipping dedup and the memo insert (the
				// colliding owner keeps the table slot; exactness first).
				e.mu.Unlock()
				e.counters.cacheMisses.Add(1)
				e.obs.cacheMisses.Add(1)
				return e.compute(ctx, ev, point)
			}
			e.mu.Unlock()
			select {
			case <-ctx.Done():
				return Outcome{Value: math.NaN(), Err: ctx.Err()}
			case <-c.done:
			}
			if isContextErr(c.out.Err) {
				// The owner was cancelled, not the computation refuted:
				// compete for the key again.
				continue
			}
			e.counters.dedups.Add(1)
			e.obs.dedups.Add(1)
			return Outcome{Value: c.out.Value, Shared: true, Err: c.out.Err}
		}
		c := &call{fpID: fpID, point: point, done: make(chan struct{})}
		e.inflight[hash] = c
		e.mu.Unlock()

		e.counters.cacheMisses.Add(1)
		e.obs.cacheMisses.Add(1)
		out := e.compute(ctx, ev, point)
		c.out = out
		e.mu.Lock()
		if out.Err == nil {
			if e.cache.add(hash, c.fpID, point, out.Value) {
				e.counters.evictions.Add(1)
				e.obs.evictions.Add(1)
			}
		}
		delete(e.inflight, hash)
		e.mu.Unlock()
		close(c.done)
		return out
	}
}

// internLocked returns the stable ID of a fingerprint, assigning one on
// first sight. Caller holds e.mu.
func (e *Engine) internLocked(fp string) uint32 {
	if id, ok := e.fps[fp]; ok {
		return id
	}
	id := uint32(len(e.fps)) + 1
	e.fps[fp] = id
	return id
}

// compute wraps computeInner in the engine.eval span and the inflight
// gauge; the wrapper costs two branches when observability is off.
func (e *Engine) compute(ctx context.Context, ev robust.Evaluator, point []float64) Outcome {
	ctx, sp := e.tracer.Start(ctx, "engine.eval")
	e.obs.inflight.Add(1)
	out := e.computeInner(ctx, ev, point)
	e.obs.inflight.Add(-1)
	if sp != nil {
		sp.Annotate(obs.I("attempts", int64(out.Attempts)))
		if out.Err != nil {
			sp.Annotate(obs.S("error", out.Err.Error()))
		}
		sp.Finish()
	}
	return out
}

// computeInner runs the guarded, retried evaluation and meters it.
func (e *Engine) computeInner(ctx context.Context, ev robust.Evaluator, point []float64) Outcome {
	guarded := robust.Guard(ev)
	var v float64
	start := time.Now() //lint:allow detguard wall-clock pair feeds the latency counters/histogram only, never the evaluated value
	attempts, err := e.retry.Do(ctx, e.rng, func(ctx context.Context) error {
		e.counters.evaluations.Add(1)
		e.obs.evaluations.Add(1)
		var err2 error
		v, err2 = guarded.EvaluateCtx(ctx, point)
		var pe *robust.PanicError
		if errors.As(err2, &pe) {
			e.counters.panics.Add(1)
			e.obs.panics.Add(1)
		}
		return err2
	})
	elapsed := time.Since(start) //lint:allow detguard elapsed feeds the latency counters/histogram only, never the evaluated value
	e.counters.wallNanos.Add(uint64(elapsed))
	e.obs.evalSeconds.Observe(elapsed.Seconds())
	if attempts > 1 {
		e.counters.retries.Add(uint64(attempts - 1))
		e.obs.retries.Add(uint64(attempts - 1))
	}
	if err != nil {
		if !isContextErr(err) {
			e.counters.failures.Add(1)
			e.obs.failures.Add(1)
		}
		return Outcome{Value: math.NaN(), Attempts: attempts, Err: err}
	}
	return Outcome{Value: v, Attempts: attempts}
}

// EvaluateStream evaluates every point on the engine's worker pool and
// invokes yield(i, outcome) from a single goroutine (no locking needed in
// yield) as results complete, in completion order. Points never started
// because ctx was cancelled produce no yield call. EvaluateStream returns
// ctx.Err() after all in-flight evaluations have finished — no worker
// goroutine outlives the call.
func (e *Engine) EvaluateStream(ctx context.Context, ev robust.Evaluator, points [][]float64, yield func(i int, o Outcome)) error {
	n := len(points)
	if n == 0 {
		return ctx.Err()
	}
	if be, ok := ev.(BatchEvaluator); ok && !e.disableBatch {
		return e.streamBatched(ctx, ev, be, points, yield)
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	type res struct {
		i int
		o Outcome
	}
	work := make(chan int)
	results := make(chan res, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// The external gate (when present) decides whose point runs
				// next; it must be taken before the pool semaphore so a
				// gated waiter never pins a worker slot while it queues.
				var release func()
				if e.gate != nil {
					r, err := e.gate.AcquireSlot(ctx)
					if err != nil {
						return
					}
					release = r
				}
				// Acquire a global slot so concurrent batches on one
				// engine share the same concurrency bound.
				select {
				case e.sem <- struct{}{}:
				case <-ctx.Done():
					if release != nil {
						release()
					}
					return
				}
				o := e.Do(ctx, ev, points[i])
				<-e.sem
				if release != nil {
					release()
				}
				results <- res{i: i, o: o}
			}
		}()
	}
	go func() {
		defer close(work)
		for i := range points {
			select {
			case work <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	for r := range results {
		if yield != nil {
			yield(r.i, r.o)
		}
	}
	return ctx.Err()
}

// KeyHash returns the engine's canonical 64-bit memo key for a
// (fingerprint, point) pair: FNV-1a over the fingerprint seeding a
// splitmix64-style fold of the point's IEEE-754 bits — exactly the hash
// the cache, the in-flight table and the batched path use internally.
// The cluster tier places keys on its consistent-hash ring with this
// function, so cache ownership and memo identity can never disagree.
func KeyHash(fp string, point []float64) uint64 {
	return hashPoint(hashFP(fp), point)
}

// CacheLen returns the current number of memoized entries.
func (e *Engine) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cache == nil {
		return 0
	}
	return e.cache.len()
}

// CacheCap returns the memo cache capacity (0 when caching is disabled).
func (e *Engine) CacheCap() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.capacity
}

// isContextErr reports whether err marks cancellation or a deadline
// rather than an evaluation fault.
func isContextErr(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}
