package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/robust"
)

// PeerConfig is one membership-table row.
type PeerConfig struct {
	// Name is the peer's stable ring identity; vnode placement hashes
	// it, so renaming a peer moves its shard.
	Name string `json:"name"`
	// URL is the peer's base address, e.g. "http://10.0.0.2:8080".
	URL string `json:"url"`
}

// Config is the peers.json membership table.
type Config struct {
	// Self names this process's own row (overridable by the CLI's
	// -peer-self flag, so one shared file can serve every peer).
	Self string `json:"self,omitempty"`
	// VirtualNodes is the per-peer vnode count (0: DefaultVirtualNodes).
	VirtualNodes int `json:"vnodes,omitempty"`
	// Peers is the full membership, this process included.
	Peers []PeerConfig `json:"peers"`
}

// LoadPeersFile reads and validates a peers.json membership table.
func LoadPeersFile(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("cluster: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("cluster: peers file %q: %w", path, err)
	}
	return cfg, nil
}

// validate checks the membership table (self resolved already).
func (c Config) validate() error {
	if len(c.Peers) == 0 {
		return fmt.Errorf("cluster: membership table is empty")
	}
	seen := make(map[string]bool, len(c.Peers))
	selfFound := false
	for _, p := range c.Peers {
		if p.Name == "" {
			return fmt.Errorf("cluster: peer with empty name")
		}
		if seen[p.Name] {
			return fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		seen[p.Name] = true
		u, err := url.Parse(p.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("cluster: peer %q has invalid URL %q (want http[s]://host[:port])", p.Name, p.URL)
		}
		if p.Name == c.Self {
			selfFound = true
		}
	}
	if c.Self == "" {
		return fmt.Errorf("cluster: membership table names no self peer")
	}
	if !selfFound {
		return fmt.Errorf("cluster: self peer %q is not in the membership table", c.Self)
	}
	return nil
}

// Options tunes the cluster tier's resilience machinery.
type Options struct {
	// Metrics receives the cluster_* instruments (nil: metrics off).
	// Pass the same registry as the server so /metrics shows them.
	Metrics *obs.Registry
	// Tracer records cluster.peer_eval spans (nil: tracing off).
	Tracer *obs.Tracer
	// Client performs peer HTTP exchanges (nil: a default client; peer
	// deadlines always come from the request context).
	Client *http.Client
	// Retry bounds re-attempts of one peer exchange before the caller
	// falls back to local compute (zero: 2 attempts, 5ms base backoff).
	Retry robust.RetryPolicy
	// FailThreshold is the consecutive-failure count that opens a peer's
	// circuit breaker (0: 3).
	FailThreshold int
	// Cooldown is how long an open breaker rejects a peer before letting
	// one half-open probe request through (0: 5s).
	Cooldown time.Duration
	// ProbeInterval is the health-probe cadence (0: 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (0: 1s).
	ProbeTimeout time.Duration
	// EjectAfter is the consecutive failed probes before a peer is
	// ejected from the ring (0: 2). A single successful probe readmits.
	EjectAfter int
}

// peerState is the live resilience state of one remote peer: the
// circuit breaker (request-driven) and the health view (probe-driven).
// SetPeers preserves it across membership reloads, matched by name.
type peerState struct {
	name string

	mu        sync.Mutex
	url       string
	fails     int       // consecutive request failures
	openUntil time.Time // breaker open until (zero: closed)
	halfOpen  bool      // one trial request admitted after cooldown

	probeFails int
	ejected    bool
}

// Cluster is the peer tier: membership, ring, breakers and the peer
// client. Safe for concurrent use; the ring is rebuilt under the mutex
// on membership or health changes and read under it per lookup batch.
type Cluster struct {
	opts   Options
	client *http.Client
	retry  robust.RetryPolicy
	tracer *obs.Tracer

	reqs      *obs.Counter // cluster_peer_requests_total
	errs      *obs.Counter // cluster_peer_errors_total
	moves     *obs.Counter // cluster_ring_moves_total
	remoteHit *obs.Counter // cluster_remote_hits_total
	localPts  *obs.Counter // cluster_local_points_total
	remotePts *obs.Counter // cluster_remote_points_total
	fallback  *obs.Counter // cluster_fallback_points_total
	seconds   *obs.Histogram

	mu     sync.Mutex
	self   string
	vnodes int
	peers  map[string]*peerState // remote peers only
	ring   *ring                 // over self + non-ejected remotes

	proberStop chan struct{}
	proberDone chan struct{}
}

// New builds the peer tier from a membership table.
func New(cfg Config, opts Options) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	retry := opts.Retry
	if retry.MaxAttempts == 0 {
		retry = robust.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond}
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 3
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 5 * time.Second
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.EjectAfter <= 0 {
		opts.EjectAfter = 2
	}
	r := opts.Metrics
	c := &Cluster{
		opts:   opts,
		client: client,
		retry:  retry,
		tracer: opts.Tracer,

		reqs:      r.Counter("cluster_peer_requests_total"),
		errs:      r.Counter("cluster_peer_errors_total"),
		moves:     r.Counter("cluster_ring_moves_total"),
		remoteHit: r.Counter("cluster_remote_hits_total"),
		localPts:  r.Counter("cluster_local_points_total"),
		remotePts: r.Counter("cluster_remote_points_total"),
		fallback:  r.Counter("cluster_fallback_points_total"),
		seconds:   r.Histogram("cluster_peer_seconds", obs.LatencyBuckets()),

		peers: make(map[string]*peerState),
	}
	if err := c.SetPeers(cfg); err != nil {
		return nil, err
	}
	return c, nil
}

// SetPeers atomically replaces the membership table (the CLI wires this
// to SIGHUP beside the tenant reload). Existing peers keep their live
// breaker and health state, matched by name; on error the current table
// is untouched. Ring ownership moved by the swap is counted into
// cluster_ring_moves_total.
func (c *Cluster) SetPeers(cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.self != "" && cfg.Self != c.self {
		return fmt.Errorf("cluster: cannot change self from %q to %q at runtime", c.self, cfg.Self)
	}
	next := make(map[string]*peerState, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p.Name == cfg.Self {
			continue
		}
		if old, ok := c.peers[p.Name]; ok {
			old.mu.Lock()
			old.url = strings.TrimSuffix(p.URL, "/")
			old.mu.Unlock()
			next[p.Name] = old
			continue
		}
		next[p.Name] = &peerState{name: p.Name, url: strings.TrimSuffix(p.URL, "/")}
	}
	c.self = cfg.Self
	if cfg.VirtualNodes > 0 {
		c.vnodes = cfg.VirtualNodes
	} else if c.vnodes == 0 {
		c.vnodes = DefaultVirtualNodes
	}
	c.peers = next
	c.rebuildRingLocked()
	return nil
}

// rebuildRingLocked rebuilds the ring over self plus every non-ejected
// remote peer, crediting moved ownership to cluster_ring_moves_total.
// Caller holds c.mu.
func (c *Cluster) rebuildRingLocked() {
	alive := []string{c.self}
	for name, p := range c.peers {
		p.mu.Lock()
		ejected := p.ejected
		p.mu.Unlock()
		if !ejected {
			alive = append(alive, name)
		}
	}
	next := buildRing(alive, c.vnodes)
	if c.ring != nil {
		c.moves.Add(uint64(movedKeys(c.ring, next)))
	}
	c.ring = next
}

// Self returns this process's peer name.
func (c *Cluster) Self() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.self
}

// Owner returns the peer owning a memo key (engine.KeyHash) and whether
// that owner is this process. Keys owned by ejected peers fall to the
// next alive peer clockwise, because the ring only ever contains alive
// members.
func (c *Cluster) Owner(key uint64) (name string, local bool) {
	c.mu.Lock()
	r, self := c.ring, c.self
	c.mu.Unlock()
	name = r.owner(key)
	return name, name == self || name == ""
}

// peer returns the live state for a peer name (nil for self/unknown).
func (c *Cluster) peer(name string) *peerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peers[name]
}

// Summary is the peer-ring view /readyz reports. Field names are stable
// (covered by a test): operators and the bench harness parse them.
type Summary struct {
	Self    string `json:"self"`
	Peers   int    `json:"peers"`
	Alive   int    `json:"alive"`
	Ejected int    `json:"ejected"`
	// Open counts peers whose circuit breaker is currently open.
	Open int `json:"open,omitempty"`
}

// Summary snapshots the ring membership state.
func (c *Cluster) Summary() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Summary{Self: c.self, Peers: len(c.peers) + 1, Alive: 1}
	now := time.Now()
	for _, p := range c.peers {
		p.mu.Lock()
		if p.ejected {
			s.Ejected++
		} else {
			s.Alive++
		}
		if now.Before(p.openUntil) {
			s.Open++
		}
		p.mu.Unlock()
	}
	return s
}

// PeerNames lists the remote peer names, sorted.
func (c *Cluster) PeerNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.peers))
	for name := range c.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// --- circuit breaker --------------------------------------------------

// allow reports whether a request may be sent to the peer right now.
// Closed breakers always admit; an open breaker admits nothing until
// its cooldown elapses, then admits exactly one half-open trial whose
// outcome decides between closing and re-opening.
func (p *peerState) allow(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.openUntil.IsZero() || now.After(p.openUntil) {
		if !p.openUntil.IsZero() {
			if p.halfOpen {
				return false // a trial is already in flight
			}
			p.halfOpen = true
		}
		return true
	}
	return false
}

// recordSuccess closes the breaker and clears the failure streak.
func (p *peerState) recordSuccess() {
	p.mu.Lock()
	p.fails = 0
	p.openUntil = time.Time{}
	p.halfOpen = false
	p.mu.Unlock()
}

// recordFailure extends the failure streak, opening the breaker for
// cooldown once it reaches threshold (a failed half-open trial reopens
// immediately).
func (p *peerState) recordFailure(now time.Time, threshold int, cooldown time.Duration) {
	p.mu.Lock()
	p.fails++
	if p.fails >= threshold || p.halfOpen {
		p.openUntil = now.Add(cooldown)
	}
	p.halfOpen = false
	p.mu.Unlock()
}

// baseURL returns the peer's current base address.
func (p *peerState) baseURL() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.url
}
