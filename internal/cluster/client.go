package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/robust"
)

// The peer wire protocol. Values cross the wire as 16-hex-digit
// IEEE-754 bit patterns, not decimal floats: the cluster's correctness
// contract is bit-identity with a single-node run, and raw bits make
// that exact by construction (NaN payloads, −0 and ±Inf included)
// without the quoted-string special cases JSON floats need.

// PeerEvalRequest is the POST /internal/v1/peer-eval body. Model and
// Evaluator are the coordinator's wire specs verbatim — opaque bytes to
// this package, re-resolved by the owner's catalog so both sides build
// the identical evaluator (and the identical fingerprint, which is what
// makes the owner's cache authoritative for these points).
type PeerEvalRequest struct {
	Model     json.RawMessage `json:"model"`
	Evaluator json.RawMessage `json:"evaluator,omitempty"`
	Points    [][]float64     `json:"points"`
}

// PeerEvalResult is one NDJSON line of a peer-eval response.
type PeerEvalResult struct {
	Index int `json:"index"`
	// Bits is the value's IEEE-754 bit pattern as 16 hex digits.
	Bits     string `json:"bits,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
}

// PeerEvalSummary is the final NDJSON line of a peer-eval response.
type PeerEvalSummary struct {
	Done   bool `json:"done"`
	Points int  `json:"points"`
	Errors int  `json:"errors"`
}

// FormatBits renders a value for the peer wire.
func FormatBits(v float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(v))
}

// ParseBits decodes a peer wire value.
func ParseBits(s string) (float64, error) {
	bits, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("cluster: value bits %q: %w", s, err)
	}
	return math.Float64frombits(bits), nil
}

// PeerOutcome is one remote evaluation result.
type PeerOutcome struct {
	Value    float64
	CacheHit bool
	// Err carries a per-point evaluation error reported by the owner
	// (the exchange itself succeeded).
	Err error
}

// errPeerOpen reports a request rejected by an open circuit breaker
// without touching the network.
var errPeerOpen = errors.New("cluster: peer circuit breaker is open")

// EvalOnPeer sends a point batch to its owner peer and returns the
// outcomes in point order. Any transport-level failure — breaker open,
// connection refused, bad status, short or malformed response — is
// returned whole so the caller can fall back to local compute; per-point
// evaluation errors come back inside the outcomes. The exchange is
// retried under the cluster's bounded retry policy and recorded against
// the peer's circuit breaker.
func (c *Cluster) EvalOnPeer(ctx context.Context, peerName string, req PeerEvalRequest) ([]PeerOutcome, error) {
	p := c.peer(peerName)
	if p == nil {
		return nil, fmt.Errorf("cluster: unknown peer %q", peerName)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding peer-eval request: %w", err)
	}
	var outs []PeerOutcome
	err = c.exchange(ctx, p, "cluster.peer_eval", "/internal/v1/peer-eval", body, func(resp io.Reader) error {
		got, err := decodePeerEval(resp, len(req.Points))
		if err != nil {
			return err
		}
		outs = got
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		if o.CacheHit {
			c.remoteHit.Add(1)
		}
	}
	return outs, nil
}

// StreamFromPeer POSTs body to path on a peer and hands each NDJSON
// response line to onLine as it arrives (the cluster-partitioned sweep
// consumes sub-sweep progress frames this way). The protocol lives with
// the caller; this method owns transport, breaker, retry and metrics.
// Lines already consumed before a mid-stream failure are not replayed:
// the whole exchange is retried from the start, and onLine sees the
// attempt boundary as a call with nil line.
func (c *Cluster) StreamFromPeer(ctx context.Context, peerName, path string, body []byte, onLine func(line []byte) error) error {
	p := c.peer(peerName)
	if p == nil {
		return fmt.Errorf("cluster: unknown peer %q", peerName)
	}
	return c.exchange(ctx, p, "cluster.peer_sweep", path, body, func(resp io.Reader) error {
		if err := onLine(nil); err != nil {
			return err
		}
		sc := bufio.NewScanner(resp)
		sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
		for sc.Scan() {
			if err := onLine(sc.Bytes()); err != nil {
				return err
			}
		}
		return sc.Err()
	})
}

// exchange performs one breaker-guarded, retried POST to a peer and
// feeds the response body to consume. A consume error counts as an
// exchange failure (the response was unusable).
func (c *Cluster) exchange(ctx context.Context, p *peerState, span, path string, body []byte, consume func(io.Reader) error) error {
	ctx, sp := c.tracer.Start(ctx, span, obs.S("peer", p.name))
	start := time.Now()
	var rng *robust.RNG
	_, err := c.retry.Do(ctx, rng, func(ctx context.Context) error {
		return c.once(ctx, p, path, body, consume)
	})
	c.seconds.Observe(time.Since(start).Seconds())
	if sp != nil {
		if err != nil {
			sp.Annotate(obs.S("error", err.Error()))
		}
		sp.Finish()
	}
	return err
}

// once is a single breaker-accounted attempt.
func (c *Cluster) once(ctx context.Context, p *peerState, path string, body []byte, consume func(io.Reader) error) error {
	if !p.allow(time.Now()) {
		// Breaker rejections are not failures: they don't extend the
		// streak, and they short-circuit the retry loop's later attempts
		// cheaply (the cooldown won't elapse within one backoff).
		return errPeerOpen
	}
	c.reqs.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.baseURL()+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: peer %s: %w", p.name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		c.errs.Add(1)
		p.recordFailure(time.Now(), c.opts.FailThreshold, c.opts.Cooldown)
		return fmt.Errorf("cluster: peer %s: %w", p.name, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		c.errs.Add(1)
		p.recordFailure(time.Now(), c.opts.FailThreshold, c.opts.Cooldown)
		return fmt.Errorf("cluster: peer %s: status %d", p.name, resp.StatusCode)
	}
	if err := consume(resp.Body); err != nil {
		c.errs.Add(1)
		p.recordFailure(time.Now(), c.opts.FailThreshold, c.opts.Cooldown)
		return fmt.Errorf("cluster: peer %s: %w", p.name, err)
	}
	p.recordSuccess()
	return nil
}

// decodePeerEval parses a peer-eval NDJSON response into n outcomes,
// requiring every index exactly once plus the final summary line — a
// short response (peer died mid-stream) is an exchange failure, so the
// caller recomputes locally instead of treating absence as data.
func decodePeerEval(r io.Reader, n int) ([]PeerOutcome, error) {
	outs := make([]PeerOutcome, n)
	filled := make([]bool, n)
	got := 0
	sawSummary := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if sawSummary {
			return nil, fmt.Errorf("cluster: data after peer-eval summary line")
		}
		if bytes.Contains(line, []byte(`"done"`)) {
			var sum PeerEvalSummary
			if err := json.Unmarshal(line, &sum); err != nil {
				return nil, fmt.Errorf("cluster: peer-eval summary: %w", err)
			}
			sawSummary = sum.Done
			continue
		}
		var res PeerEvalResult
		if err := json.Unmarshal(line, &res); err != nil {
			return nil, fmt.Errorf("cluster: peer-eval line: %w", err)
		}
		if res.Index < 0 || res.Index >= n {
			return nil, fmt.Errorf("cluster: peer-eval index %d outside batch of %d", res.Index, n)
		}
		if filled[res.Index] {
			return nil, fmt.Errorf("cluster: duplicate peer-eval index %d", res.Index)
		}
		filled[res.Index] = true
		got++
		if res.Error != "" {
			outs[res.Index] = PeerOutcome{Value: math.NaN(), Err: fmt.Errorf("cluster: peer evaluation: %s", res.Error)}
			continue
		}
		v, err := ParseBits(res.Bits)
		if err != nil {
			return nil, err
		}
		outs[res.Index] = PeerOutcome{Value: v, CacheHit: res.CacheHit}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawSummary || got != n {
		return nil, fmt.Errorf("cluster: short peer-eval response (%d of %d points, summary=%v)", got, n, sawSummary)
	}
	return outs, nil
}

// CountLocal/CountRemote/CountFallback feed the remote-vs-local routing
// counters from the server's router, which owns the partition decision.
func (c *Cluster) CountLocal(n int)    { c.localPts.Add(uint64(n)) }
func (c *Cluster) CountRemote(n int)   { c.remotePts.Add(uint64(n)) }
func (c *Cluster) CountFallback(n int) { c.fallback.Add(uint64(n)) }
