package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Health probing is the slow membership loop beside the fast per-request
// circuit breakers: breakers decide whether to try a peer right now,
// probing decides whether the peer should own ring segments at all. An
// ejected peer's keys move to the next alive peer clockwise (counted in
// cluster_ring_moves_total) so steady-state traffic stops paying the
// breaker-probe tax for a peer that is down for minutes, and a single
// successful probe readmits it.

// StartProber launches the background health loop under ctx (the
// process's run context; cancelling it ends the loop too) and returns a
// stop function that blocks until the loop has exited. Idempotent stop.
func (c *Cluster) StartProber(ctx context.Context) (stop func()) {
	c.mu.Lock()
	if c.proberStop != nil {
		stopCh, doneCh := c.proberStop, c.proberDone
		c.mu.Unlock()
		return stopFunc(stopCh, doneCh)
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	c.proberStop, c.proberDone = stopCh, doneCh
	interval := c.opts.ProbeInterval
	c.mu.Unlock()

	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				c.ProbeOnce(ctx)
			}
		}
	}()
	return stopFunc(stopCh, doneCh)
}

// stopFunc closes stopCh once and waits for the loop to drain.
func stopFunc(stopCh chan struct{}, doneCh chan struct{}) func() {
	return func() {
		select {
		case <-stopCh:
		default:
			close(stopCh)
		}
		<-doneCh
	}
}

// ProbeOnce health-checks every remote peer once, ejecting peers whose
// consecutive probe failures reach the threshold and readmitting
// recovered ones. It returns the number of membership changes applied.
// The prober calls it on a ticker; tests call it directly.
func (c *Cluster) ProbeOnce(ctx context.Context) int {
	c.mu.Lock()
	peers := make([]*peerState, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	c.mu.Unlock()

	changes := 0
	for _, p := range peers {
		healthy := c.probe(ctx, p)
		p.mu.Lock()
		if healthy {
			p.probeFails = 0
			if p.ejected {
				p.ejected = false
				changes++
			}
		} else {
			p.probeFails++
			if !p.ejected && p.probeFails >= c.opts.EjectAfter {
				p.ejected = true
				changes++
			}
		}
		p.mu.Unlock()
	}
	if changes > 0 {
		c.mu.Lock()
		c.rebuildRingLocked()
		c.mu.Unlock()
	}
	return changes
}

// probe performs one GET /healthz against a peer under the probe
// timeout.
func (c *Cluster) probe(ctx context.Context, p *peerState) bool {
	ctx, cancel := context.WithTimeout(ctx, c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.baseURL()+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	return resp.StatusCode == http.StatusOK
}

// Ejected reports whether a peer is currently out of the ring (test and
// readyz hook).
func (c *Cluster) Ejected(name string) (bool, error) {
	p := c.peer(name)
	if p == nil {
		return false, fmt.Errorf("cluster: unknown peer %q", name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ejected, nil
}

// BreakerOpen reports whether a peer's circuit breaker currently
// rejects requests (test hook).
func (c *Cluster) BreakerOpen(name string) (bool, error) {
	p := c.peer(name)
	if p == nil {
		return false, fmt.Errorf("cluster: unknown peer %q", name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Now().Before(p.openUntil), nil
}
