package cluster

import (
	"context"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// newListener rebinds the host:port of a base URL (reviving a "dead"
// peer at its old address).
func newListener(baseURL string) (net.Listener, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, err
	}
	return net.Listen("tcp", u.Host)
}

func testConfig(self string, names ...string) Config {
	cfg := Config{Self: self}
	for _, n := range names {
		cfg.Peers = append(cfg.Peers, PeerConfig{Name: n, URL: "http://127.0.0.1:1/" + n})
	}
	return cfg
}

func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	a := buildRing([]string{"a", "b", "c"}, 64)
	b := buildRing([]string{"c", "a", "b"}, 64)
	for i := 0; i < 4096; i++ {
		key := engine.KeyHash("ring/det", []float64{float64(i)})
		if a.owner(key) != b.owner(key) {
			t.Fatalf("key %d owned by %q vs %q depending on input order", i, a.owner(key), b.owner(key))
		}
	}
}

func TestRingBalance(t *testing.T) {
	// The acceptance bound: ≤15% per-peer shard imbalance with ≥64
	// virtual nodes over a realistic keyset (a catalog sweep's points).
	for _, peers := range [][]string{{"a", "b"}, {"a", "b", "c"}, {"a", "b", "c", "d", "e"}} {
		r := buildRing(peers, DefaultVirtualNodes)
		counts := make(map[string]int)
		total := 8192
		for i := 0; i < total; i++ {
			counts[r.owner(engine.KeyHash("ring/balance", []float64{float64(i), float64(i % 7)}))]++
		}
		mean := float64(total) / float64(len(peers))
		for _, name := range peers {
			dev := math.Abs(float64(counts[name])-mean) / mean
			if dev > 0.15 {
				t.Errorf("%d peers: %q owns %d of %d keys (%.1f%% from even share, budget 15%%)",
					len(peers), name, counts[name], total, dev*100)
			}
		}
	}
}

func TestRingEjectionMovesOnlyEjectedShare(t *testing.T) {
	full := buildRing([]string{"a", "b", "c"}, DefaultVirtualNodes)
	without := buildRing([]string{"a", "c"}, DefaultVirtualNodes)
	moved, total := 0, 4096
	for i := 0; i < total; i++ {
		key := engine.KeyHash("ring/eject", []float64{float64(i)})
		before, after := full.owner(key), without.owner(key)
		if before != after {
			moved++
			if before != "b" {
				t.Fatalf("key moved from surviving peer %q to %q", before, after)
			}
		}
	}
	// Roughly one third of the keys belonged to b; consistent hashing
	// must not reshuffle the rest.
	if frac := float64(moved) / float64(total); frac < 0.2 || frac > 0.5 {
		t.Fatalf("ejecting 1 of 3 peers moved %.1f%% of keys, want roughly a third", frac*100)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"empty", Config{Self: "a"}, "empty"},
		{"no-self", testConfig("", "a", "b"), "no self"},
		{"self-missing", testConfig("z", "a", "b"), "not in the membership"},
		{"dup", Config{Self: "a", Peers: []PeerConfig{
			{Name: "a", URL: "http://h:1"}, {Name: "a", URL: "http://h:2"}}}, "duplicate"},
		{"bad-url", Config{Self: "a", Peers: []PeerConfig{{Name: "a", URL: "ftp://h"}}}, "invalid URL"},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg, Options{}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadPeersFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "peers.json")
	body := `{"self":"a","vnodes":32,"peers":[{"name":"a","url":"http://127.0.0.1:9001"},{"name":"b","url":"http://127.0.0.1:9002"}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadPeersFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Self != "a" || cfg.VirtualNodes != 32 || len(cfg.Peers) != 2 {
		t.Fatalf("parsed %+v", cfg)
	}
	if _, err := LoadPeersFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestOwnerRoutesAndSetPeersPreservesState(t *testing.T) {
	c, err := New(testConfig("a", "a", "b", "c"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := engine.KeyHash("cluster/route", []float64{7})
	owner1, _ := c.Owner(key)

	// Trip b's breaker by hand, then reload membership with a new URL
	// for b: the breaker state must survive the swap.
	p := c.peer("b")
	p.recordFailure(time.Now(), 1, time.Minute)
	cfg := testConfig("a", "a", "b", "c")
	cfg.Peers[1].URL = "http://127.0.0.1:2/b"
	if err := c.SetPeers(cfg); err != nil {
		t.Fatal(err)
	}
	if open, _ := c.BreakerOpen("b"); !open {
		t.Fatal("breaker state lost across SetPeers")
	}
	if got := c.peer("b").baseURL(); got != "http://127.0.0.1:2/b" {
		t.Fatalf("URL not updated: %s", got)
	}
	owner2, _ := c.Owner(key)
	if owner1 != owner2 {
		t.Fatalf("same membership, owner moved %q → %q", owner1, owner2)
	}
	if err := c.SetPeers(testConfig("b", "a", "b", "c")); err == nil {
		t.Fatal("changing self at runtime: want error")
	}
	// Removing a peer changes ownership of (roughly) its share only.
	if err := c.SetPeers(testConfig("a", "a", "c")); err != nil {
		t.Fatal(err)
	}
	if name, _ := c.Owner(key); name == "b" {
		t.Fatal("removed peer still owns keys")
	}
}

func TestBreakerOpensAndHalfOpens(t *testing.T) {
	p := &peerState{name: "x", url: "http://h:1"}
	now := time.Now()
	if !p.allow(now) {
		t.Fatal("fresh breaker must admit")
	}
	p.recordFailure(now, 2, 50*time.Millisecond)
	if !p.allow(now) {
		t.Fatal("one failure below threshold must admit")
	}
	p.recordFailure(now, 2, 50*time.Millisecond)
	if p.allow(now) {
		t.Fatal("breaker at threshold must reject")
	}
	later := now.Add(60 * time.Millisecond)
	if !p.allow(later) {
		t.Fatal("cooled-down breaker must admit one half-open trial")
	}
	if p.allow(later) {
		t.Fatal("second concurrent half-open trial must be rejected")
	}
	p.recordSuccess()
	if !p.allow(later) {
		t.Fatal("successful trial must close the breaker")
	}
}

func TestProbeEjectsAndReadmits(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer up.Close()
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))

	cfg := Config{Self: "self", Peers: []PeerConfig{
		{Name: "self", URL: "http://127.0.0.1:1"},
		{Name: "up", URL: up.URL},
		{Name: "down", URL: down.URL},
	}}
	reg := obs.NewRegistry()
	c, err := New(cfg, Options{Metrics: reg, EjectAfter: 2, ProbeTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	down.Close()

	ctx := context.Background()
	c.ProbeOnce(ctx)
	if ej, _ := c.Ejected("down"); ej {
		t.Fatal("one failed probe must not eject (threshold 2)")
	}
	c.ProbeOnce(ctx)
	if ej, _ := c.Ejected("down"); !ej {
		t.Fatal("two failed probes must eject")
	}
	if ej, _ := c.Ejected("up"); ej {
		t.Fatal("healthy peer ejected")
	}
	sum := c.Summary()
	if sum.Peers != 3 || sum.Alive != 2 || sum.Ejected != 1 {
		t.Fatalf("summary %+v, want 3 peers / 2 alive / 1 ejected", sum)
	}
	// No key may resolve to the ejected peer.
	for i := 0; i < 2048; i++ {
		if name, _ := c.Owner(engine.KeyHash("probe", []float64{float64(i)})); name == "down" {
			t.Fatal("ejected peer still owns ring segments")
		}
	}
	if reg.Counter("cluster_ring_moves_total").Value() == 0 {
		t.Fatal("ejection moved no ring ownership")
	}

	// Revive "down" at the same address: one good probe readmits.
	revived := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	revived.Listener.Close()
	l, err := newListener(down.URL)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", down.URL, err)
	}
	revived.Listener = l
	revived.Start()
	defer revived.Close()
	c.ProbeOnce(ctx)
	if ej, _ := c.Ejected("down"); ej {
		t.Fatal("healthy probe must readmit")
	}
}

func TestPeerWireBits(t *testing.T) {
	for _, v := range []float64{0, math.Copysign(0, -1), 1.5, math.Inf(1), math.Inf(-1), math.NaN(), math.Pi} {
		got, err := ParseBits(FormatBits(v))
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("bits round trip lost %v", v)
		}
	}
	if _, err := ParseBits("nope"); err == nil {
		t.Fatal("garbage bits: want error")
	}
}

func TestDecodePeerEvalRejectsShortResponses(t *testing.T) {
	full := `{"index":0,"bits":"3ff0000000000000"}` + "\n" +
		`{"index":1,"bits":"4000000000000000","cache_hit":true}` + "\n" +
		`{"done":true,"points":2,"errors":0}` + "\n"
	outs, err := decodePeerEval(strings.NewReader(full), 2)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Value != 1 || outs[1].Value != 2 || !outs[1].CacheHit {
		t.Fatalf("decoded %+v", outs)
	}
	cases := map[string]string{
		"no-summary": `{"index":0,"bits":"3ff0000000000000"}` + "\n" + `{"index":1,"bits":"4000000000000000"}` + "\n",
		"missing":    `{"index":0,"bits":"3ff0000000000000"}` + "\n" + `{"done":true}` + "\n",
		"dup":        `{"index":0,"bits":"3ff0000000000000"}` + "\n" + `{"index":0,"bits":"3ff0000000000000"}` + "\n" + `{"done":true}` + "\n",
		"range":      `{"index":9,"bits":"3ff0000000000000"}` + "\n" + `{"done":true}` + "\n",
	}
	for name, body := range cases {
		if _, err := decodePeerEval(strings.NewReader(body), 2); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
