// Package cluster turns N c2bound-server processes into one logical
// memo cache: a consistent-hash ring with virtual nodes routes each
// (fingerprint, point) key — hashed by engine.KeyHash, the exact memo
// key the cache uses internally — to an owner peer, an internal
// peer-eval exchange forwards remote-owned points to their owner, and
// per-peer circuit breakers plus health probing keep degradation
// graceful: any peer failure falls back to local computation, which is
// bit-identical because every family kernel is deterministic, so the
// cluster can only ever lose cache locality, never correctness.
//
// Membership is a static peers.json table (hot-reloaded on SIGHUP by
// the CLI, mirroring the tenant-table machinery); health probing ejects
// unresponsive peers from the ring and readmits them when they return.
// DESIGN.md §15 carries the full architecture.
package cluster

import (
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-peer vnode count when the membership
// file names none. 128 vnodes keep the worst-case shard imbalance well
// under the 15% budget for small clusters (see TestRingBalance).
const DefaultVirtualNodes = 128

// fnvOffset/fnvPrime are the FNV-1a constants; identical to the
// engine's, so vnode placement is deterministic across processes and
// architectures.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvString hashes a vnode label: FNV-1a with a splitmix64 finalizer.
// Raw FNV-1a avalanches poorly on short labels ("a#0" … "a#127"), which
// clumps vnode positions and wrecks shard balance; the finalizer — the
// same mix the engine's point hash uses — spreads them uniformly while
// keeping placement fully deterministic.
func fnvString(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ring is an immutable consistent-hash ring: vnode positions sorted
// clockwise with their owning peer names. Lookups are a binary search;
// membership changes build a new ring (the Cluster swaps it atomically).
type ring struct {
	hashes []uint64
	owners []string
}

// buildRing places vnodes-per-peer positions for each peer. Peer names
// are sorted first and position ties broken by name, so every process
// with the same membership view builds the identical ring regardless of
// input order.
func buildRing(peers []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	names := append([]string(nil), peers...)
	sort.Strings(names)
	r := &ring{
		hashes: make([]uint64, 0, len(names)*vnodes),
		owners: make([]string, 0, len(names)*vnodes),
	}
	for _, name := range names {
		for v := 0; v < vnodes; v++ {
			r.hashes = append(r.hashes, fnvString(name+"#"+strconv.Itoa(v)))
			r.owners = append(r.owners, name)
		}
	}
	idx := make([]int, len(r.hashes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if r.hashes[idx[a]] != r.hashes[idx[b]] {
			return r.hashes[idx[a]] < r.hashes[idx[b]]
		}
		return r.owners[idx[a]] < r.owners[idx[b]]
	})
	hashes := make([]uint64, len(idx))
	owners := make([]string, len(idx))
	for i, j := range idx {
		hashes[i] = r.hashes[j]
		owners[i] = r.owners[j]
	}
	return &ring{hashes: hashes, owners: owners}
}

// owner returns the peer owning key: the first vnode clockwise from the
// key's position, wrapping at the top. An empty ring owns nothing.
func (r *ring) owner(key uint64) string {
	if r == nil || len(r.hashes) == 0 {
		return ""
	}
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= key })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

// ringProbeKeys is the fixed probe-set size used to estimate how much
// ownership moved between two ring generations (cluster_ring_moves_total
// counts moved probe keys, ≈ moved fraction × 1024).
const ringProbeKeys = 1024

// movedKeys counts probe keys whose owner differs between two rings.
func movedKeys(oldR, newR *ring) int {
	if oldR == nil || newR == nil {
		return 0
	}
	moved := 0
	for i := 0; i < ringProbeKeys; i++ {
		k := fnvString("probe#" + strconv.Itoa(i))
		if oldR.owner(k) != newR.owner(k) {
			moved++
		}
	}
	return moved
}
