package chip

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPollackRule(t *testing.T) {
	p := Pollack{K0: 2, Phi0: 0.5}
	if got := p.CPIExe(4); got != 1.5 {
		t.Fatalf("CPIExe(4) = %v, want 1.5", got)
	}
	// Quadrupling the area halves the Pollack term.
	small, large := p.CPIExe(1)-p.Phi0, p.CPIExe(4)-p.Phi0
	if math.Abs(small-2*large) > 1e-12 {
		t.Fatalf("Pollack scaling broken: %v vs %v", small, large)
	}
	// Monotone decreasing in area.
	if p.CPIExe(2) <= p.CPIExe(8) {
		t.Fatal("CPI_exe not decreasing in area")
	}
}

func TestAreaConstraint(t *testing.T) {
	c := DefaultConfig()
	d := Design{N: 16, CoreArea: 10, L1Area: 5, L2Area: 7}
	want := 16.0*22 + c.FixedArea
	if got := c.AreaUsed(d); got != want {
		t.Fatalf("AreaUsed = %v, want %v", got, want)
	}
	if d.PerCore() != 22 {
		t.Fatalf("PerCore = %v", d.PerCore())
	}
}

func TestCheckFeasible(t *testing.T) {
	c := DefaultConfig() // 400 mm² total, 40 fixed
	ok := Design{N: 10, CoreArea: 20, L1Area: 8, L2Area: 8}
	if err := c.CheckFeasible(ok); err != nil {
		t.Fatalf("feasible design rejected: %v", err)
	}
	cases := []Design{
		{N: 0, CoreArea: 1, L1Area: 1, L2Area: 1},       // no cores
		{N: 4, CoreArea: -1, L1Area: 1, L2Area: 1},      // negative area
		{N: 4, CoreArea: 1, L1Area: 0, L2Area: 1},       // zero L1
		{N: 100, CoreArea: 20, L1Area: 8, L2Area: 8},    // over budget
		{N: 1, CoreArea: 500, L1Area: 10, L2Area: 10},   // single huge core
		{N: 1000, CoreArea: 1, L1Area: 0.5, L2Area: 10}, // over budget many-core
	}
	for _, d := range cases {
		if err := c.CheckFeasible(d); err == nil {
			t.Errorf("infeasible design accepted: %v (used %v)", d, c.AreaUsed(d))
		}
	}
}

func TestCapacityConversion(t *testing.T) {
	c := DefaultConfig()
	d := Design{N: 8, CoreArea: 4, L1Area: 1, L2Area: 2}
	if got := c.L1SizeKB(d); got != c.L1DensityKB {
		t.Fatalf("L1SizeKB = %v", got)
	}
	if got := c.L2SizeKB(d); got != 2*c.L2DensityKB {
		t.Fatalf("L2SizeKB = %v", got)
	}
	want := 8 * (c.L1DensityKB + 2*c.L2DensityKB)
	if got := c.OnChipCapacityKB(d); got != want {
		t.Fatalf("OnChipCapacityKB = %v, want %v", got, want)
	}
}

func TestLoadedMemLatency(t *testing.T) {
	c := DefaultConfig()
	if got := c.LoadedMemLatency(0); got != c.MemLatency {
		t.Fatalf("unloaded latency = %v, want %v", got, c.MemLatency)
	}
	// Monotone nondecreasing in demand, even across the saturation knee.
	prev := 0.0
	for demand := 0.0; demand < 3*c.MemBandwidth; demand += 0.05 {
		lat := c.LoadedMemLatency(demand)
		if lat < prev-1e-9 {
			t.Fatalf("latency decreased at demand %v: %v < %v", demand, lat, prev)
		}
		prev = lat
	}
	// Contention disabled when QueueSensitivity is zero.
	c2 := c
	c2.QueueSensitivity = 0
	if got := c2.LoadedMemLatency(3.9); got != c2.MemLatency {
		t.Fatalf("contention-free latency = %v", got)
	}
	// Heavily loaded latency is well above unloaded latency: with
	// ρ = 2 the linear model gives 1 + 2·QueueSensitivity.
	if got, want := c.LoadedMemLatency(2*c.MemBandwidth), (1+2*c.QueueSensitivity)*c.MemLatency; math.Abs(got-want) > 1e-9*want {
		t.Fatalf("loaded latency = %v, want %v", got, want)
	}
}

func TestMissRateCurve(t *testing.T) {
	m := MissRateCurve{Base: 0.1, RefKB: 32, Alpha: 0.5, Floor: 0.005}
	if got := m.At(32); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("At(ref) = %v, want 0.1", got)
	}
	// √2 rule: 4× capacity halves the miss rate.
	if got := m.At(128); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("At(4×ref) = %v, want 0.05", got)
	}
	// Floor clamps.
	if got := m.At(1e9); got != 0.005 {
		t.Fatalf("At(huge) = %v, want floor", got)
	}
	// Cap clamps (default 1).
	if got := m.At(1e-9); got != 1 {
		t.Fatalf("At(tiny) = %v, want 1", got)
	}
	// Zero capacity yields the cap.
	if got := m.At(0); got != 1 {
		t.Fatalf("At(0) = %v, want 1", got)
	}
	// Explicit cap.
	m.Cap = 0.6
	if got := m.At(1e-9); got != 0.6 {
		t.Fatalf("At with cap = %v, want 0.6", got)
	}
}

func TestMissRateMonotone(t *testing.T) {
	m := MissRateCurve{Base: 0.2, RefKB: 64, Alpha: 0.7, Floor: 0.001}
	f := func(aRaw, bRaw uint16) bool {
		a := 1 + float64(aRaw)
		b := 1 + float64(bRaw)
		if a > b {
			a, b = b, a
		}
		return m.At(a) >= m.At(b)-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFitMissRate(t *testing.T) {
	m, err := FitMissRate(32, 0.1, 128, 0.05)
	if err != nil {
		t.Fatalf("FitMissRate: %v", err)
	}
	if math.Abs(m.Alpha-0.5) > 1e-12 {
		t.Fatalf("fitted alpha = %v, want 0.5", m.Alpha)
	}
	if got := m.At(512); math.Abs(got-0.025) > 1e-9 {
		t.Fatalf("extrapolated At(512) = %v, want 0.025", got)
	}
	if _, err := FitMissRate(32, 0.1, 32, 0.05); err == nil {
		t.Error("degenerate sizes accepted")
	}
	if _, err := FitMissRate(32, 0.05, 128, 0.1); err == nil {
		t.Error("increasing miss rate accepted")
	}
	if _, err := FitMissRate(-1, 0.1, 128, 0.05); err == nil {
		t.Error("negative size accepted")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	c := DefaultConfig()
	if c.TotalArea <= c.FixedArea {
		t.Fatal("no usable area")
	}
	// A mid-size design must be feasible and produce a plausible CPI.
	d := Design{N: 16, CoreArea: 4, L1Area: 1, L2Area: 4}
	if err := c.CheckFeasible(d); err != nil {
		t.Fatalf("default mid design infeasible: %v", err)
	}
	cpi := c.CPIExe(d)
	if cpi < 0.1 || cpi > 5 {
		t.Fatalf("CPI_exe = %v out of plausible range", cpi)
	}
}

func TestDesignString(t *testing.T) {
	if s := (Design{N: 4, CoreArea: 1, L1Area: 2, L2Area: 3}).String(); s == "" {
		t.Fatal("empty String")
	}
}
