// Package chip models the physical side of the C²-Bound design space:
// Pollack's rule for core performance versus core area (Eq. 11), the
// silicon area constraint of Eq. 12, the conversion from cache area to
// cache capacity, the classic power-law dependence of miss rate on cache
// capacity (the "√2 rule"), and a load-dependent off-chip latency model
// that captures memory-bandwidth contention as the core count grows.
package chip

import (
	"fmt"
	"math"
)

// Pollack models core performance by Pollack's rule: performance grows
// with the square root of core complexity (area), so the execution CPI is
//
//	CPI_exe(A0) = K0·A0^(−1/2) + Phi0    (Eq. 11)
//
// Phi0 is the asymptotic CPI floor of an arbitrarily large core.
type Pollack struct {
	K0   float64 // CPI×√area scale constant
	Phi0 float64 // CPI floor
}

// CPIExe evaluates Eq. 11 at core area a0 (must be positive).
func (p Pollack) CPIExe(a0 float64) float64 {
	return p.K0/math.Sqrt(a0) + p.Phi0
}

// Design is one point of the fundamental C²-Bound design space: the core
// count and the per-core silicon split of Eq. 12. Areas are in mm².
type Design struct {
	N        int     // number of cores
	CoreArea float64 // A0: core logic, excluding caches
	L1Area   float64 // A1: private L1 per core
	L2Area   float64 // A2: L2 slice per core
}

// PerCore returns A0+A1+A2.
func (d Design) PerCore() float64 { return d.CoreArea + d.L1Area + d.L2Area }

// String renders the design compactly.
func (d Design) String() string {
	return fmt.Sprintf("N=%d A0=%.3g A1=%.3g A2=%.3g", d.N, d.CoreArea, d.L1Area, d.L2Area)
}

// Config describes a chip family: total silicon budget, geometry and the
// uncontended latencies of the memory hierarchy.
type Config struct {
	TotalArea float64 // A: full die budget (mm²)
	FixedArea float64 // Ac: shared functions (NoC, MCs, test/debug)

	Pollack Pollack

	L1DensityKB float64 // cache capacity per mm² of L1 area
	L2DensityKB float64 // cache capacity per mm² of L2 area

	L1HitCycles  float64 // H1: L1 hit time
	L2HitCycles  float64 // H2: L2 hit time (on a L1 miss)
	MemLatency   float64 // unloaded DRAM access latency in cycles
	MemBandwidth float64 // chip-wide DRAM throughput, accesses per cycle

	// QueueSensitivity scales the contention term of the loaded memory
	// latency: lat = MemLatency × (1 + QueueSensitivity·ρ/(1−ρ)). Zero
	// disables contention.
	QueueSensitivity float64
}

// DefaultConfig returns a configuration resembling the paper's simulated
// testbed (Intel Core-i7-like two-level hierarchy, Eq. 11 constants
// calibrated so a 4-wide OoO core of area ~4 mm² has CPI_exe ≈ 0.55).
func DefaultConfig() Config {
	return Config{
		TotalArea:        400,
		FixedArea:        40,
		Pollack:          Pollack{K0: 0.9, Phi0: 0.1},
		L1DensityKB:      64,  // 64 KB per mm²
		L2DensityKB:      512, // denser SRAM arrays for L2
		L1HitCycles:      3,
		L2HitCycles:      12,
		MemLatency:       200,
		MemBandwidth:     4,
		QueueSensitivity: 2,
	}
}

// AreaUsed returns N(A0+A1+A2)+Ac, the left side of Eq. 12.
func (c Config) AreaUsed(d Design) float64 {
	return float64(d.N)*d.PerCore() + c.FixedArea
}

// CheckFeasible verifies the design fits the area budget of Eq. 12 and has
// strictly positive components.
func (c Config) CheckFeasible(d Design) error {
	switch {
	case d.N < 1:
		return fmt.Errorf("chip: core count %d below 1", d.N)
	case d.CoreArea <= 0 || d.L1Area <= 0 || d.L2Area < 0:
		return fmt.Errorf("chip: non-positive area split %v", d)
	}
	if used := c.AreaUsed(d); used > c.TotalArea*(1+1e-9) {
		return fmt.Errorf("chip: design %v uses %.4g mm², budget %.4g", d, used, c.TotalArea)
	}
	return nil
}

// L1SizeKB and L2SizeKB convert the per-core cache areas to capacities.
func (c Config) L1SizeKB(d Design) float64 { return c.L1DensityKB * d.L1Area }

// L2SizeKB returns the per-core L2 slice capacity in KB.
func (c Config) L2SizeKB(d Design) float64 { return c.L2DensityKB * d.L2Area }

// OnChipCapacityKB returns the total on-chip cache capacity — the quantity
// that bounds the problem size in §V of the paper.
func (c Config) OnChipCapacityKB(d Design) float64 {
	return float64(d.N) * (c.L1SizeKB(d) + c.L2SizeKB(d))
}

// CPIExe returns the Pollack-rule execution CPI of the design's core.
func (c Config) CPIExe(d Design) float64 { return c.Pollack.CPIExe(d.CoreArea) }

// LoadedMemLatency returns the effective DRAM latency when the chip issues
// `demand` memory accesses per cycle in aggregate, using the linear
// load-latency model standard in analytical DSE work:
//
//	lat(ρ) = MemLatency × (1 + QueueSensitivity·ρ),  ρ = demand/MemBandwidth
//
// Linear growth (rather than an M/M/1 pole) matches the gentle
// flattening the paper's throughput curves exhibit past the bandwidth
// knee and keeps the objective smooth for the optimizer; the trace-driven
// simulator models queueing exactly.
func (c Config) LoadedMemLatency(demand float64) float64 {
	if c.MemBandwidth <= 0 || c.QueueSensitivity == 0 || demand <= 0 { //lint:allow floatguard exact zero is the unset-field sentinel
		return c.MemLatency
	}
	rho := demand / c.MemBandwidth
	return c.MemLatency * (1 + c.QueueSensitivity*rho)
}

// MissRateCurve is the power-law capacity model of cache miss rate: at
// capacity S (KB) the miss rate is Base·(S/RefKB)^(−Alpha), clamped to
// [Floor, Cap]. Alpha = 0.5 is the classical √2 rule. It is the standard
// closed-form used by analytical CMP models (Cassidy & Andreou; Hill &
// Marty follow-ons) and calibrates well against the simulator in this
// repository.
type MissRateCurve struct {
	Base  float64 // miss rate at RefKB
	RefKB float64 // reference capacity
	Alpha float64 // locality exponent
	Floor float64 // compulsory/coherence floor
	Cap   float64 // maximum (defaults to 1)
}

// At evaluates the curve at capacity sizeKB.
func (m MissRateCurve) At(sizeKB float64) float64 {
	capRate := m.Cap
	if capRate <= 0 || capRate > 1 {
		capRate = 1
	}
	if sizeKB <= 0 {
		return capRate
	}
	r := m.Base
	if m.RefKB > 0 && m.Alpha != 0 { //lint:allow floatguard exact zero is the unset-field sentinel
		r = m.Base * math.Pow(sizeKB/m.RefKB, -m.Alpha)
	}
	if r < m.Floor {
		r = m.Floor
	}
	if r > capRate {
		r = capRate
	}
	return r
}

// FitMissRate calibrates a power-law curve from two measured
// (capacityKB, missRate) points, holding Floor and Cap at their defaults.
// It returns an error when the points cannot determine a nonincreasing
// power law.
func FitMissRate(size1, mr1, size2, mr2 float64) (MissRateCurve, error) {
	if size1 <= 0 || size2 <= 0 || size1 == size2 || mr1 <= 0 || mr2 <= 0 { //lint:allow floatguard identical sizes make the log-ratio fit singular
		return MissRateCurve{}, fmt.Errorf("chip: cannot fit miss-rate curve from (%v,%v),(%v,%v)", size1, mr1, size2, mr2)
	}
	alpha := -math.Log(mr2/mr1) / math.Log(size2/size1)
	if alpha < 0 {
		return MissRateCurve{}, fmt.Errorf("chip: miss rate increases with capacity ((%v,%v),(%v,%v))", size1, mr1, size2, mr2)
	}
	return MissRateCurve{Base: mr1, RefKB: size1, Alpha: alpha}, nil
}
