package trace

import "fmt"

// Stream walks the working set sequentially, line by line — the classic
// bandwidth-bound streaming kernel (STREAM triad shape: two reads and one
// write per element group).
type Stream struct {
	ws      uint64
	meanGap float64
	seed    uint64

	pos uint64
	cnt int
	g   gapper
}

// NewStream builds a streaming generator over a working set of wsBytes.
func NewStream(wsBytes uint64, meanGap float64, seed uint64) (*Stream, error) {
	if err := validateWS("stream", wsBytes); err != nil {
		return nil, err
	}
	s := &Stream{ws: wsBytes, meanGap: meanGap, seed: seed}
	s.Reset()
	return s, nil
}

// Name implements Generator.
func (s *Stream) Name() string { return "stream" }

// Next implements Generator.
func (s *Stream) Next(ref *Ref) {
	ref.Addr = s.pos % s.ws
	ref.Write = s.cnt%3 == 2 // triad: read, read, write
	ref.Gap = s.g.gap()
	s.pos += 8
	s.cnt++
}

// Reset implements Generator.
func (s *Stream) Reset() {
	s.pos, s.cnt = 0, 0
	s.g = gapper{mean: s.meanGap, r: newRNG(s.seed)}
}

// Random issues uniformly random references over the working set: the
// worst-case locality stressor (pointer-heavy database-like behaviour).
type Random struct {
	ws       uint64
	meanGap  float64
	writePct float64
	seed     uint64
	g        gapper
	r        *rng
}

// NewRandom builds a uniform-random generator; writePct in [0,1] sets the
// store fraction.
func NewRandom(wsBytes uint64, meanGap, writePct float64, seed uint64) (*Random, error) {
	if err := validateWS("random", wsBytes); err != nil {
		return nil, err
	}
	if writePct < 0 || writePct > 1 {
		return nil, fmt.Errorf("trace: write fraction %v outside [0,1]", writePct)
	}
	r := &Random{ws: wsBytes, meanGap: meanGap, writePct: writePct, seed: seed}
	r.Reset()
	return r, nil
}

// Name implements Generator.
func (r *Random) Name() string { return "random" }

// Next implements Generator.
func (r *Random) Next(ref *Ref) {
	ref.Addr = r.r.intn(r.ws) &^ 7
	ref.Write = r.r.float() < r.writePct
	ref.Gap = r.g.gap()
}

// Reset implements Generator.
func (r *Random) Reset() {
	r.r = newRNG(r.seed)
	r.g = gapper{mean: r.meanGap, r: newRNG(r.seed ^ 0xabcdef)}
}

// PointerChase models a dependent linked-list walk through a shuffled
// permutation of the working set: minimal spatial locality and no
// memory-level parallelism (each address depends on the previous load).
type PointerChase struct {
	perm    []uint32
	meanGap float64
	seed    uint64
	cur     uint32
	g       gapper
}

// NewPointerChase builds a chase over wsBytes/64 nodes (one per line).
func NewPointerChase(wsBytes uint64, meanGap float64, seed uint64) (*PointerChase, error) {
	if err := validateWS("pchase", wsBytes); err != nil {
		return nil, err
	}
	nodes := wsBytes / 64
	if nodes > 1<<26 {
		nodes = 1 << 26 // cap the permutation table at 256 MiB of trace state
	}
	p := &PointerChase{perm: make([]uint32, nodes), meanGap: meanGap, seed: seed}
	r := newRNG(seed)
	// Sattolo's algorithm: a single cycle through all nodes.
	for i := range p.perm {
		p.perm[i] = uint32(i)
	}
	for i := len(p.perm) - 1; i > 0; i-- {
		j := int(r.intn(uint64(i)))
		p.perm[i], p.perm[j] = p.perm[j], p.perm[i]
	}
	p.Reset()
	return p, nil
}

// Name implements Generator.
func (p *PointerChase) Name() string { return "pchase" }

// Next implements Generator.
func (p *PointerChase) Next(ref *Ref) {
	ref.Addr = uint64(p.cur) * 64
	ref.Write = false
	ref.Gap = p.g.gap()
	ref.Dep = true
	p.cur = p.perm[p.cur]
}

// Reset implements Generator.
func (p *PointerChase) Reset() {
	p.cur = 0
	p.g = gapper{mean: p.meanGap, r: newRNG(p.seed ^ 0x5ca1ab1e)}
}

// TiledMM emits the access pattern of a tiled dense matrix multiplication
// C = A×B with n×n float64 matrices and t×t tiles: for each tile triple,
// the kernel re-reads the A and B tiles while accumulating into C. Reuse
// within a tile is high (g(N) = N^{3/2} workloads of Table I).
type TiledMM struct {
	n, t    int
	meanGap float64
	seed    uint64

	// loop state: tile indices (ti,tj,tk) and intra-tile (i,j,k), phase
	// cycles A,B,C accesses.
	ti, tj, tk int
	i, j, k    int
	phase      int
	g          gapper
}

// NewTiledMM builds the generator for an n×n matmul with tile size t.
func NewTiledMM(n, t int, meanGap float64, seed uint64) (*TiledMM, error) {
	if n < 2 || t < 1 || t > n {
		return nil, fmt.Errorf("trace: tiled MM needs 1 ≤ t ≤ n, n ≥ 2 (got n=%d t=%d)", n, t)
	}
	m := &TiledMM{n: n, t: t, meanGap: meanGap, seed: seed}
	m.Reset()
	return m, nil
}

// Name implements Generator.
func (m *TiledMM) Name() string { return "tiledmm" }

// Next implements Generator.
func (m *TiledMM) Next(ref *Ref) {
	n := uint64(m.n)
	base := func(matrix int, row, col int) uint64 {
		return (uint64(matrix)*n*n + uint64(row)*n + uint64(col)) * 8
	}
	row := m.ti*m.t + m.i
	col := m.tj*m.t + m.j
	kk := m.tk*m.t + m.k
	switch m.phase {
	case 0: // load A[row][kk]
		ref.Addr, ref.Write = base(0, row, kk), false
	case 1: // load B[kk][col]
		ref.Addr, ref.Write = base(1, kk, col), false
	default: // update C[row][col]
		ref.Addr, ref.Write = base(2, row, col), true
	}
	ref.Gap = m.g.gap()
	m.phase++
	if m.phase < 3 {
		return
	}
	m.phase = 0
	// Advance the six nested loops: k, j, i within tiles; tk, tj, ti over
	// tiles. Bounds clip at matrix edges.
	lim := func(tile int) int {
		r := m.n - tile*m.t
		if r > m.t {
			r = m.t
		}
		return r
	}
	m.k++
	if m.k < lim(m.tk) {
		return
	}
	m.k = 0
	m.j++
	if m.j < lim(m.tj) {
		return
	}
	m.j = 0
	m.i++
	if m.i < lim(m.ti) {
		return
	}
	m.i = 0
	m.tk++
	tiles := (m.n + m.t - 1) / m.t
	if m.tk < tiles {
		return
	}
	m.tk = 0
	m.tj++
	if m.tj < tiles {
		return
	}
	m.tj = 0
	m.ti = (m.ti + 1) % tiles
}

// Reset implements Generator.
func (m *TiledMM) Reset() {
	m.ti, m.tj, m.tk, m.i, m.j, m.k, m.phase = 0, 0, 0, 0, 0, 0, 0
	m.g = gapper{mean: m.meanGap, r: newRNG(m.seed ^ 0x7ead)}
}

// Stencil sweeps a 2-D grid applying a 5-point stencil: for each cell it
// reads the four neighbours and writes the cell. Spatially local with
// streaming reuse one row apart (g(N) = N workloads of Table I).
type Stencil struct {
	rows, cols int
	meanGap    float64
	seed       uint64

	r, c, phase int
	g           gapper
}

// NewStencil builds a 5-point stencil sweep over a rows×cols float64 grid.
func NewStencil(rows, cols int, meanGap float64, seed uint64) (*Stencil, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("trace: stencil grid %dx%d too small", rows, cols)
	}
	s := &Stencil{rows: rows, cols: cols, meanGap: meanGap, seed: seed}
	s.Reset()
	return s, nil
}

// Name implements Generator.
func (s *Stencil) Name() string { return "stencil" }

// Next implements Generator.
func (s *Stencil) Next(ref *Ref) {
	at := func(r, c int) uint64 { return (uint64(r)*uint64(s.cols) + uint64(c)) * 8 }
	// Interior sweep; offsets N,S,W,E then the write.
	switch s.phase {
	case 0:
		ref.Addr, ref.Write = at(s.r-1, s.c), false
	case 1:
		ref.Addr, ref.Write = at(s.r+1, s.c), false
	case 2:
		ref.Addr, ref.Write = at(s.r, s.c-1), false
	case 3:
		ref.Addr, ref.Write = at(s.r, s.c+1), false
	default:
		ref.Addr, ref.Write = at(s.r, s.c)+uint64(s.rows)*uint64(s.cols)*8, true // output grid
	}
	ref.Gap = s.g.gap()
	s.phase++
	if s.phase < 5 {
		return
	}
	s.phase = 0
	s.c++
	if s.c < s.cols-1 {
		return
	}
	s.c = 1
	s.r++
	if s.r >= s.rows-1 {
		s.r = 1
	}
}

// Reset implements Generator.
func (s *Stencil) Reset() {
	s.r, s.c, s.phase = 1, 1, 0
	s.g = gapper{mean: s.meanGap, r: newRNG(s.seed ^ 0x57e)}
}

// FFT emits the butterfly access pattern of an in-place radix-2 FFT over
// 2^logN complex points: per stage, pairs at stride 2^stage are read and
// written, so the stride doubles every stage — excellent locality early,
// cache-hostile late.
type FFT struct {
	logN    int
	meanGap float64
	seed    uint64

	stage, idx, phase int
	g                 gapper
}

// NewFFT builds the generator for a 2^logN-point FFT.
func NewFFT(logN int, meanGap float64, seed uint64) (*FFT, error) {
	if logN < 2 || logN > 30 {
		return nil, fmt.Errorf("trace: FFT log2 size %d outside [2,30]", logN)
	}
	f := &FFT{logN: logN, meanGap: meanGap, seed: seed}
	f.Reset()
	return f, nil
}

// Name implements Generator.
func (f *FFT) Name() string { return "fft" }

// Next implements Generator.
func (f *FFT) Next(ref *Ref) {
	n := 1 << f.logN
	half := 1 << f.stage
	span := half << 1
	group := f.idx / half
	within := f.idx % half
	a := group*span + within
	b := a + half
	// Phases: read a, read b, write a, write b (complex128 = 16 bytes).
	switch f.phase {
	case 0:
		ref.Addr, ref.Write = uint64(a)*16, false
	case 1:
		ref.Addr, ref.Write = uint64(b)*16, false
	case 2:
		ref.Addr, ref.Write = uint64(a)*16, true
	default:
		ref.Addr, ref.Write = uint64(b)*16, true
	}
	ref.Gap = f.g.gap()
	f.phase++
	if f.phase < 4 {
		return
	}
	f.phase = 0
	f.idx++
	if f.idx < n/2 {
		return
	}
	f.idx = 0
	f.stage++
	if f.stage >= f.logN {
		f.stage = 0
	}
}

// Reset implements Generator.
func (f *FFT) Reset() {
	f.stage, f.idx, f.phase = 0, 0, 0
	f.g = gapper{mean: f.meanGap, r: newRNG(f.seed ^ 0xff7)}
}

// Fluidanimate mimics the PARSEC fluidanimate particle/grid kernel: the
// simulation streams over particles (good spatial locality), looks up the
// 3×3×3 neighbour cells of each particle's grid cell (medium locality,
// scattered), and updates the particle (write). Working sets are large,
// matching the paper's choice of fluidanimate for the APS validation.
type Fluidanimate struct {
	particles int
	cells     int
	meanGap   float64
	seed      uint64

	p, phase int
	cell     int
	g        gapper
	r        *rng
}

// NewFluidanimate builds the generator; particles sets the particle array
// length, cells the number of grid cells per dimension (cells³ total).
func NewFluidanimate(particles, cells int, meanGap float64, seed uint64) (*Fluidanimate, error) {
	if particles < 1 || cells < 2 {
		return nil, fmt.Errorf("trace: fluidanimate needs ≥1 particle and ≥2 cells (got %d, %d)", particles, cells)
	}
	f := &Fluidanimate{particles: particles, cells: cells, meanGap: meanGap, seed: seed}
	f.Reset()
	return f, nil
}

// Name implements Generator.
func (f *Fluidanimate) Name() string { return "fluidanimate" }

const fluidParticleBytes = 64 // position+velocity+density record

// Next implements Generator.
func (f *Fluidanimate) Next(ref *Ref) {
	cellBase := uint64(f.particles) * fluidParticleBytes
	switch {
	case f.phase == 0: // read own particle record
		ref.Addr, ref.Write = uint64(f.p)*fluidParticleBytes, false
		f.cell = int(f.r.intn(uint64(f.cells * f.cells * f.cells)))
	case f.phase <= 9: // probe 9 of the 27 neighbour cells (sampled)
		neighbor := (f.cell + int(f.r.intn(27)) - 13 + f.cells*f.cells*f.cells) % (f.cells * f.cells * f.cells)
		ref.Addr, ref.Write = cellBase+uint64(neighbor)*64, false
	default: // write back own particle
		ref.Addr, ref.Write = uint64(f.p)*fluidParticleBytes, true
	}
	ref.Gap = f.g.gap()
	f.phase++
	if f.phase > 10 {
		f.phase = 0
		f.p = (f.p + 1) % f.particles
	}
}

// Reset implements Generator.
func (f *Fluidanimate) Reset() {
	f.p, f.phase, f.cell = 0, 0, 0
	f.r = newRNG(f.seed ^ 0xf1d)
	f.g = gapper{mean: f.meanGap, r: newRNG(f.seed ^ 0x90a)}
}

// ByName constructs a generator for a named workload with a given working
// set (bytes), mean compute gap and seed. Recognized names: stream,
// random, pchase, tiledmm, stencil, fft, fluidanimate.
func ByName(name string, wsBytes uint64, meanGap float64, seed uint64) (Generator, error) {
	switch name {
	case "stream":
		return NewStream(wsBytes, meanGap, seed)
	case "random":
		return NewRandom(wsBytes, meanGap, 0.3, seed)
	case "pchase":
		return NewPointerChase(wsBytes, meanGap, seed)
	case "tiledmm":
		// n² elements × 8 bytes × 3 matrices = wsBytes.
		n := 2
		for uint64(n+1)*uint64(n+1)*24 <= wsBytes {
			n++
		}
		return NewTiledMM(n, 16, meanGap, seed)
	case "stencil":
		side := 3
		for uint64(side+1)*uint64(side+1)*16 <= wsBytes {
			side++
		}
		return NewStencil(side, side, meanGap, seed)
	case "fft":
		logN := 2
		for uint64(16)<<(logN+1) <= wsBytes && logN < 30 {
			logN++
		}
		return NewFFT(logN, meanGap, seed)
	case "fluidanimate":
		particles := int(wsBytes / (2 * fluidParticleBytes))
		if particles < 1 {
			particles = 1
		}
		cells := 2
		for uint64(cells+1)*uint64(cells+1)*uint64(cells+1)*64 <= wsBytes/2 {
			cells++
		}
		return NewFluidanimate(particles, cells, meanGap, seed)
	}
	return nil, fmt.Errorf("trace: unknown workload %q", name)
}

// Workloads lists the names accepted by ByName.
func Workloads() []string {
	return []string{"stream", "random", "pchase", "tiledmm", "stencil", "fft", "fluidanimate"}
}
