package trace

import (
	"math"
	"testing"
)

// genHelper lets constructor calls expand their (Generator, error) return
// directly into must.
type genHelper struct{ t *testing.T }

func (h genHelper) must(g Generator, err error) Generator {
	h.t.Helper()
	if err != nil {
		h.t.Fatalf("generator construction: %v", err)
	}
	return g
}

func allGenerators(t *testing.T) []Generator {
	t.Helper()
	h := genHelper{t}
	return []Generator{
		h.must(NewStream(1<<20, 2, 1)),
		h.must(NewRandom(1<<20, 2, 0.3, 1)),
		h.must(NewPointerChase(1<<18, 2, 1)),
		h.must(NewTiledMM(64, 8, 2, 1)),
		h.must(NewStencil(64, 64, 2, 1)),
		h.must(NewFFT(10, 2, 1)),
		h.must(NewFluidanimate(4096, 8, 2, 1)),
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range allGenerators(t) {
		a := Take(g, 2000)
		g.Reset()
		b := Take(g, 2000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at ref %d: %+v vs %+v", g.Name(), i, a[i], b[i])
			}
		}
	}
}

func TestGeneratorsNamed(t *testing.T) {
	for _, g := range allGenerators(t) {
		if g.Name() == "" {
			t.Error("generator with empty name")
		}
	}
}

func TestMeanGapControlsFmem(t *testing.T) {
	for _, meanGap := range []float64{0, 1, 4, 9} {
		g := genHelper{t}.must(NewRandom(1<<20, meanGap, 0.3, 7))
		refs := Take(g, 20000)
		var sum float64
		for _, r := range refs {
			sum += float64(r.Gap)
		}
		got := sum / float64(len(refs))
		if math.Abs(got-meanGap) > 0.15*(1+meanGap) {
			t.Errorf("mean gap %v measured %v", meanGap, got)
		}
		wantFmem := 1 / (1 + meanGap)
		gotFmem := float64(len(refs)) / (float64(len(refs)) + sum)
		if math.Abs(gotFmem-wantFmem) > 0.1*wantFmem {
			t.Errorf("fmem: want %v got %v", wantFmem, gotFmem)
		}
	}
}

func TestWorkingSetBounds(t *testing.T) {
	cases := []struct {
		g  Generator
		ws uint64
	}{
		{genHelper{t}.must(NewStream(1<<16, 0, 1)), 1 << 16},
		{genHelper{t}.must(NewRandom(1<<16, 0, 0.3, 1)), 1 << 16},
		{genHelper{t}.must(NewPointerChase(1<<16, 0, 1)), 1 << 16},
	}
	for _, c := range cases {
		for _, r := range Take(c.g, 50000) {
			if r.Addr >= c.ws {
				t.Fatalf("%s: address %#x outside working set %#x", c.g.Name(), r.Addr, c.ws)
			}
		}
	}
}

func TestStreamIsSequential(t *testing.T) {
	g := genHelper{t}.must(NewStream(1<<20, 0, 1))
	refs := Take(g, 1000)
	for i := 1; i < len(refs); i++ {
		if refs[i].Addr != refs[i-1].Addr+8 {
			t.Fatalf("stream not sequential at %d: %#x → %#x", i, refs[i-1].Addr, refs[i].Addr)
		}
	}
	// Triad write mix: one write in three (±1 for trace length rounding).
	writes := 0
	for _, r := range refs {
		if r.Write {
			writes++
		}
	}
	if writes < len(refs)/3-1 || writes > len(refs)/3+1 {
		t.Fatalf("stream writes = %d of %d, want one third", writes, len(refs))
	}
}

func TestPointerChaseVisitsAllNodes(t *testing.T) {
	ws := uint64(64 * 256) // 256 nodes
	g := genHelper{t}.must(NewPointerChase(ws, 0, 42))
	seen := map[uint64]bool{}
	for _, r := range Take(g, 256) {
		if r.Addr%64 != 0 {
			t.Fatalf("pchase address %#x not line-aligned", r.Addr)
		}
		if seen[r.Addr] {
			t.Fatalf("pchase revisited %#x before covering the cycle", r.Addr)
		}
		seen[r.Addr] = true
	}
	if len(seen) != 256 {
		t.Fatalf("pchase visited %d nodes, want 256 (Sattolo single cycle)", len(seen))
	}
}

func TestTiledMMTouchesThreeMatrices(t *testing.T) {
	n := 32
	g := genHelper{t}.must(NewTiledMM(n, 8, 0, 1))
	refs := Take(g, 3*n*n*n) // one full multiplication
	bound := uint64(3*n*n) * 8
	matrices := map[int]bool{}
	writes := 0
	for _, r := range refs {
		if r.Addr >= bound {
			t.Fatalf("tiledmm address %#x beyond 3 matrices (%#x)", r.Addr, bound)
		}
		matrices[int(r.Addr/uint64(n*n*8))] = true
		if r.Write {
			writes++
		}
	}
	if len(matrices) != 3 {
		t.Fatalf("tiledmm touched %d matrices, want 3", len(matrices))
	}
	if writes*3 != len(refs) {
		t.Fatalf("tiledmm writes = %d of %d, want one third (C updates)", writes, len(refs))
	}
}

func TestStencilStaysInterior(t *testing.T) {
	rows, cols := 16, 16
	g := genHelper{t}.must(NewStencil(rows, cols, 0, 1))
	gridBytes := uint64(rows*cols) * 8
	for _, r := range Take(g, 5000) {
		if r.Write {
			if r.Addr < gridBytes || r.Addr >= 2*gridBytes {
				t.Fatalf("stencil write %#x outside output grid", r.Addr)
			}
		} else if r.Addr >= gridBytes {
			t.Fatalf("stencil read %#x outside input grid", r.Addr)
		}
	}
}

func TestFFTStrideDoublesPerStage(t *testing.T) {
	logN := 6
	n := 1 << logN
	g := genHelper{t}.must(NewFFT(logN, 0, 1))
	// Stage s emits n/2 butterflies × 4 refs; partner distance is 16·2^s bytes.
	for s := 0; s < logN; s++ {
		refs := Take(g, 4*n/2)
		wantDelta := uint64(16) << s
		for b := 0; b < n/2; b++ {
			a, bb := refs[4*b], refs[4*b+1]
			if bb.Addr-a.Addr != wantDelta {
				t.Fatalf("stage %d butterfly %d: partner delta %d, want %d", s, b, bb.Addr-a.Addr, wantDelta)
			}
			if refs[4*b+2].Addr != a.Addr || !refs[4*b+2].Write {
				t.Fatalf("stage %d: third ref is not write-back of a", s)
			}
		}
	}
}

func TestFluidanimatePhases(t *testing.T) {
	g := genHelper{t}.must(NewFluidanimate(100, 4, 0, 3))
	refs := Take(g, 11*100)
	particleBytes := uint64(100 * fluidParticleBytes)
	for i := 0; i < len(refs); i += 11 {
		if refs[i].Write || refs[i].Addr >= particleBytes {
			t.Fatalf("phase 0 ref %d invalid: %+v", i, refs[i])
		}
		if !refs[i+10].Write || refs[i+10].Addr != refs[i].Addr {
			t.Fatalf("write-back mismatch at particle %d", i/11)
		}
		for j := 1; j <= 9; j++ {
			if refs[i+j].Addr < particleBytes {
				t.Fatalf("neighbour probe %d hit particle array", j)
			}
		}
	}
}

func TestInterleaveTagsStreams(t *testing.T) {
	g1 := genHelper{t}.must(NewStream(1<<16, 0, 1))
	g2 := genHelper{t}.must(NewRandom(1<<16, 0, 0, 2))
	iv, err := NewInterleave(g1, g2)
	if err != nil {
		t.Fatalf("NewInterleave: %v", err)
	}
	refs := Take(iv, 100)
	for i, r := range refs {
		wantTag := uint64(i%2+1) << 56
		if r.Addr>>56 != wantTag>>56 {
			t.Fatalf("ref %d tag %#x, want %#x", i, r.Addr>>56, wantTag>>56)
		}
	}
	iv.Reset()
	again := Take(iv, 100)
	for i := range refs {
		if refs[i] != again[i] {
			t.Fatalf("interleave not deterministic after reset")
		}
	}
	if iv.Name() == "" {
		t.Error("empty interleave name")
	}
}

func TestInterleaveRejectsBadArgs(t *testing.T) {
	if _, err := NewInterleave(); err == nil {
		t.Fatal("NewInterleave() with no generators accepted")
	}
	g := genHelper{t}.must(NewStream(1<<16, 0, 1))
	if _, err := NewInterleave(g, nil); err == nil {
		t.Fatal("NewInterleave with a nil generator accepted")
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewStream(8, 0, 1); err == nil {
		t.Error("tiny stream accepted")
	}
	if _, err := NewRandom(1<<16, 0, 1.5, 1); err == nil {
		t.Error("bad write fraction accepted")
	}
	if _, err := NewTiledMM(4, 8, 0, 1); err == nil {
		t.Error("tile larger than matrix accepted")
	}
	if _, err := NewStencil(2, 2, 0, 1); err == nil {
		t.Error("tiny stencil accepted")
	}
	if _, err := NewFFT(1, 0, 1); err == nil {
		t.Error("tiny FFT accepted")
	}
	if _, err := NewFFT(31, 0, 1); err == nil {
		t.Error("huge FFT accepted")
	}
	if _, err := NewFluidanimate(0, 4, 0, 1); err == nil {
		t.Error("zero particles accepted")
	}
	if _, err := NewPointerChase(8, 0, 1); err == nil {
		t.Error("tiny pchase accepted")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Workloads() {
		g, err := ByName(name, 1<<20, 2, 7)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		refs := Take(g, 1000)
		if len(refs) != 1000 {
			t.Fatalf("ByName(%q) produced %d refs", name, len(refs))
		}
	}
	if _, err := ByName("nope", 1<<20, 2, 7); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestByNameWorkingSetsReasonable(t *testing.T) {
	// Each named workload should keep its footprint within ~2× the request
	// and use at least a quarter of it.
	for _, name := range Workloads() {
		ws := uint64(1 << 19)
		g, err := ByName(name, ws, 0, 7)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		var maxAddr uint64
		for _, r := range Take(g, 300000) {
			if r.Addr > maxAddr {
				maxAddr = r.Addr
			}
		}
		if maxAddr > 2*ws {
			t.Errorf("%s: footprint %#x far beyond request %#x", name, maxAddr, ws)
		}
		if maxAddr < ws/4 {
			t.Errorf("%s: footprint %#x far below request %#x", name, maxAddr, ws)
		}
	}
}

func TestRNGQuality(t *testing.T) {
	r := newRNG(0) // zero seed must still work
	buckets := make([]int, 16)
	for i := 0; i < 16000; i++ {
		buckets[r.intn(16)]++
	}
	for b, c := range buckets {
		if c < 700 || c > 1300 {
			t.Fatalf("bucket %d badly skewed: %d of 16000", b, c)
		}
	}
	if r.intn(0) != 0 {
		t.Fatal("intn(0) must return 0")
	}
	// float in [0,1).
	for i := 0; i < 1000; i++ {
		if f := r.float(); f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
	}
}

func TestPhaseSwitchAlternates(t *testing.T) {
	h := genHelper{t}
	a := h.must(NewStream(1<<16, 0, 1))
	b := h.must(NewRandom(1<<16, 0, 0, 2))
	ps, err := NewPhaseSwitch(100, a, b)
	if err != nil {
		t.Fatalf("NewPhaseSwitch: %v", err)
	}
	refs := Take(ps, 400)
	// First 100 refs from phase 0, next 100 from phase 1, etc., with the
	// phase tag in the top bits.
	for i, r := range refs {
		wantPhase := (i / 100) % 2
		if got := int(r.Addr>>56) - 1; got != wantPhase {
			t.Fatalf("ref %d tagged phase %d, want %d", i, got, wantPhase)
		}
	}
	if ps.Phase() != 0 {
		t.Fatalf("after 400 refs phase = %d, want 0", ps.Phase())
	}
	if ps.Name() == "" {
		t.Fatal("empty name")
	}
	// Reset restores determinism.
	ps.Reset()
	again := Take(ps, 400)
	for i := range refs {
		if refs[i] != again[i] {
			t.Fatal("phase switch not deterministic after reset")
		}
	}
}

func TestPhaseSwitchRejectsBadArgs(t *testing.T) {
	if _, err := NewPhaseSwitch(10); err == nil {
		t.Fatal("NewPhaseSwitch with no generators accepted")
	}
	g := genHelper{t}.must(NewStream(1<<16, 0, 1))
	if _, err := NewPhaseSwitch(0, g); err == nil {
		t.Fatal("NewPhaseSwitch with non-positive period accepted")
	}
	if _, err := NewPhaseSwitch(10, nil); err == nil {
		t.Fatal("NewPhaseSwitch with a nil generator accepted")
	}
}

func TestPhaseSwitchSingleGenerator(t *testing.T) {
	g := genHelper{t}.must(NewStream(1<<16, 0, 1))
	ps, err := NewPhaseSwitch(50, g)
	if err != nil {
		t.Fatalf("NewPhaseSwitch: %v", err)
	}
	refs := Take(ps, 200)
	for i, r := range refs {
		if r.Addr>>56 != 1 {
			t.Fatalf("ref %d wrong tag", i)
		}
	}
}

func TestPhaseSwitchInSimulator(t *testing.T) {
	// A phase-switching trace is a valid simulator input end to end.
	h := genHelper{t}
	ps, err := NewPhaseSwitch(500,
		h.must(NewTiledMM(32, 8, 2, 1)),
		h.must(NewRandom(8<<20, 2, 0.3, 2)))
	if err != nil {
		t.Fatalf("NewPhaseSwitch: %v", err)
	}
	refs := Take(ps, 3000)
	if len(refs) != 3000 {
		t.Fatal("short trace")
	}
}
