// Package trace generates synthetic memory-reference traces with
// controllable locality, working-set size and compute/memory mix. The
// generators stand in for the paper's SPLASH-2/PARSEC + SimPoint traces:
// every experiment in this repository consumes traces only through their
// statistical properties (reuse distance, access frequency, stride
// structure, bank spread), which these generators control directly.
package trace

import "fmt"

// Ref is one memory reference. Gap is the number of non-memory
// instructions the core executes immediately before this reference, which
// sets the trace's memory access frequency fmem = 1/(1+E[Gap]).
type Ref struct {
	Addr  uint64
	Write bool
	Gap   uint16
	// Dep marks a reference whose address depends on the previous
	// reference's data (pointer chasing): the core cannot issue it until
	// the previous access completes, destroying memory-level parallelism.
	Dep bool
}

// Generator produces an unbounded deterministic reference stream.
type Generator interface {
	// Name identifies the workload family.
	Name() string
	// Next writes the next reference into ref. It always succeeds;
	// generators are unbounded and callers take as many references as the
	// experiment needs.
	Next(ref *Ref)
	// Reset rewinds the generator to its initial state.
	Reset()
}

// rng is a splitmix64 deterministic generator: tiny, fast, and
// reproducible across platforms.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0,n).
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// float returns a uniform value in [0,1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Take drains n references from g into a slice.
func Take(g Generator, n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

// Interleave round-robins the given generators into one stream, modelling
// a multiprogrammed reference mix. Each sub-stream keeps its own address
// space by tagging the top bits with the stream index.
type Interleave struct {
	gens []Generator
	next int
}

// NewInterleave builds an interleaving generator. It returns an error on
// an empty generator list.
func NewInterleave(gens ...Generator) (*Interleave, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("trace: NewInterleave needs at least one generator")
	}
	for i, g := range gens {
		if g == nil {
			return nil, fmt.Errorf("trace: NewInterleave generator %d is nil", i)
		}
	}
	return &Interleave{gens: gens}, nil
}

// Name implements Generator.
func (iv *Interleave) Name() string { return "interleave" }

// Next implements Generator.
func (iv *Interleave) Next(ref *Ref) {
	i := iv.next
	iv.gens[i].Next(ref)
	ref.Addr = (ref.Addr & 0x00ffffffffffffff) | uint64(i+1)<<56
	iv.next = (iv.next + 1) % len(iv.gens)
}

// Reset implements Generator.
func (iv *Interleave) Reset() {
	iv.next = 0
	for _, g := range iv.gens {
		g.Reset()
	}
}

// PhaseSwitch alternates between sub-generators every period references,
// modelling the phase behaviour the paper's online adaptation targets
// (§IV: "the behavior of an application changes phase by phase").
type PhaseSwitch struct {
	gens   []Generator
	period int
	count  int
	idx    int
}

// NewPhaseSwitch builds a phase-alternating generator. It returns an
// error on an empty generator list or non-positive period.
func NewPhaseSwitch(period int, gens ...Generator) (*PhaseSwitch, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("trace: NewPhaseSwitch needs at least one generator")
	}
	if period < 1 {
		return nil, fmt.Errorf("trace: NewPhaseSwitch period %d below 1", period)
	}
	for i, g := range gens {
		if g == nil {
			return nil, fmt.Errorf("trace: NewPhaseSwitch generator %d is nil", i)
		}
	}
	return &PhaseSwitch{gens: gens, period: period}, nil
}

// Name implements Generator.
func (ps *PhaseSwitch) Name() string { return "phaseswitch" }

// Phase returns the index of the currently active sub-generator.
func (ps *PhaseSwitch) Phase() int { return ps.idx }

// Next implements Generator.
func (ps *PhaseSwitch) Next(ref *Ref) {
	ps.gens[ps.idx].Next(ref)
	// Tag the address space per phase so phases do not share lines.
	ref.Addr = (ref.Addr & 0x00ffffffffffffff) | uint64(ps.idx+1)<<56
	ps.count++
	if ps.count%ps.period == 0 {
		ps.idx = (ps.idx + 1) % len(ps.gens)
	}
}

// Reset implements Generator.
func (ps *PhaseSwitch) Reset() {
	ps.count, ps.idx = 0, 0
	for _, g := range ps.gens {
		g.Reset()
	}
}

// gapper draws compute gaps with the configured mean using a bounded
// geometric-ish distribution, keeping fmem = 1/(1+mean) on average.
type gapper struct {
	mean float64
	r    *rng
}

func (g gapper) gap() uint16 {
	if g.mean <= 0 {
		return 0
	}
	// Uniform over [0, 2·mean] keeps the mean exact with bounded variance.
	hi := uint64(2*g.mean + 0.5)
	if hi == 0 {
		return 0
	}
	v := g.r.intn(hi + 1)
	if v > 0xffff {
		v = 0xffff
	}
	return uint16(v)
}

// validateWS checks a working-set byte size.
func validateWS(name string, bytes uint64) error {
	if bytes < 64 {
		return fmt.Errorf("trace: %s working set %d bytes below one cache line", name, bytes)
	}
	return nil
}
