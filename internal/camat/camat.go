// Package camat implements the C-AMAT (Concurrent Average Memory Access
// Time) model of Sun & Wang and its classic AMAT counterpart, together
// with exact trace-level measurement of every model parameter.
//
// C-AMAT (Eq. 2 of the C²-Bound paper) extends AMAT with data-access
// concurrency:
//
//	AMAT   = H + MR × AMP
//	C-AMAT = H/C_H + pMR × pAMP/C_M
//
// where C_H is the average hit concurrency, C_M the average pure-miss
// concurrency, pMR the pure miss rate (fraction of accesses that contain
// at least one miss cycle with no concurrent hit activity) and pAMP the
// average number of pure-miss cycles per pure miss. The ratio
// C = AMAT/C-AMAT is the data-access concurrency of Eq. 3; C = 1 means the
// access stream is effectively sequential and C-AMAT degenerates to AMAT.
package camat

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the parameters of both the AMAT and C-AMAT formulations for
// one cache level. All times are in cycles. The zero value is not useful;
// populate every field or obtain one from Analyze or a detector.
type Params struct {
	// H is the hit time in cycles (identical in AMAT and C-AMAT).
	H float64
	// MR is the conventional miss rate: misses / accesses.
	MR float64
	// AMP is the conventional average miss penalty: total miss-penalty
	// cycles summed per access, divided by the number of misses.
	AMP float64
	// CH is the average hit concurrency: total hit-cycle activity
	// (sum over wall-clock hit cycles of the number of concurrently
	// hit-active accesses) divided by the number of wall-clock hit cycles.
	CH float64
	// CM is the average pure-miss concurrency: total pure-miss activity
	// divided by the number of wall-clock pure-miss cycles.
	CM float64
	// PMR is the pure miss rate: pure misses / accesses. A pure miss is a
	// miss access at least one of whose miss cycles has no concurrent hit
	// activity anywhere in the memory system.
	PMR float64
	// PAMP is the average number of per-access pure-miss cycles per pure
	// miss.
	PAMP float64
}

// AMAT returns the conventional average memory access time H + MR×AMP.
func (p Params) AMAT() float64 { return p.H + p.MR*p.AMP }

// CAMAT returns the concurrent average memory access time
// H/C_H + pMR×pAMP/C_M. It panics if CH or CM is zero while the
// corresponding term is needed; use Validate to check a Params first.
func (p Params) CAMAT() float64 {
	hit := 0.0
	if p.H != 0 { //lint:allow floatguard exact zero guards the division by CH
		hit = p.H / p.CH
	}
	miss := 0.0
	if p.PMR != 0 && p.PAMP != 0 { //lint:allow floatguard exact zeros guard the division by CM
		miss = p.PMR * p.PAMP / p.CM
	}
	return hit + miss
}

// Concurrency returns C = AMAT / C-AMAT (Eq. 3), the overall data-access
// concurrency. It is ≥ 1 for any physically realizable access stream and
// equals 1 exactly when accesses are serialized.
func (p Params) Concurrency() float64 {
	c := p.CAMAT()
	if c == 0 { //lint:allow floatguard exact zero guards the division below
		return 1
	}
	return p.AMAT() / c
}

// APC returns the Access-Per-memory-active-Cycle metric, the reciprocal of
// C-AMAT (Wang & Sun, IEEE ToC 2014; §V of the C²-Bound paper).
func (p Params) APC() float64 {
	c := p.CAMAT()
	if c == 0 { //lint:allow floatguard exact zero guards the division below
		return 0
	}
	return 1 / c
}

// ErrBadParams is the sentinel wrapped by every Validate failure, so
// callers can classify invalid-parameter errors with errors.Is without
// matching message text.
var ErrBadParams = errors.New("camat: invalid parameters")

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate reports whether the parameter set is internally consistent:
// finite (no NaN/Inf) non-negative fields, rates within [0,1],
// concurrency values ≥ 1 when the corresponding activity exists, and
// pure-miss quantities bounded by their conventional counterparts. A
// Params that passes Validate cannot propagate NaN through Eq. 2.
func (p Params) Validate() error {
	switch {
	case p.H < 0 || !finite(p.H):
		return fmt.Errorf("%w: hit time H=%v out of range", ErrBadParams, p.H)
	case p.MR < 0 || p.MR > 1 || math.IsNaN(p.MR):
		return fmt.Errorf("%w: miss rate MR=%v outside [0,1]", ErrBadParams, p.MR)
	case p.PMR < 0 || p.PMR > 1 || math.IsNaN(p.PMR):
		return fmt.Errorf("%w: pure miss rate pMR=%v outside [0,1]", ErrBadParams, p.PMR)
	case p.PMR > p.MR+1e-12:
		return fmt.Errorf("%w: pMR=%v exceeds MR=%v", ErrBadParams, p.PMR, p.MR)
	case p.AMP < 0 || !finite(p.AMP):
		return fmt.Errorf("%w: AMP=%v out of range", ErrBadParams, p.AMP)
	case p.PAMP < 0 || !finite(p.PAMP):
		return fmt.Errorf("%w: pAMP=%v out of range", ErrBadParams, p.PAMP)
	case p.H > 0 && (p.CH < 1 || !finite(p.CH)):
		return fmt.Errorf("%w: hit concurrency C_H=%v below 1 or not finite", ErrBadParams, p.CH)
	case p.PMR > 0 && (p.CM < 1 || !finite(p.CM)):
		return fmt.Errorf("%w: pure-miss concurrency C_M=%v below 1 or not finite", ErrBadParams, p.CM)
	case math.IsNaN(p.CH) || math.IsNaN(p.CM):
		return fmt.Errorf("%w: concurrency C_H=%v, C_M=%v not a number", ErrBadParams, p.CH, p.CM)
	}
	return nil
}

// String renders the parameters in a compact single-line form.
func (p Params) String() string {
	return fmt.Sprintf("H=%.3g MR=%.4g AMP=%.4g C_H=%.4g C_M=%.4g pMR=%.4g pAMP=%.4g (AMAT=%.4g C-AMAT=%.4g C=%.4g)",
		p.H, p.MR, p.AMP, p.CH, p.CM, p.PMR, p.PAMP, p.AMAT(), p.CAMAT(), p.Concurrency())
}

// Sequential returns the parameter set describing the same locality
// behaviour with all concurrency removed: C_H = C_M = 1, pMR = MR and
// pAMP = AMP. Under Sequential, CAMAT() equals AMAT() exactly (the paper's
// "AMAT is a special case of C-AMAT").
func (p Params) Sequential() Params {
	return Params{H: p.H, MR: p.MR, AMP: p.AMP, CH: 1, CM: 1, PMR: p.MR, PAMP: p.AMP}
}

// WithConcurrency returns a copy of p rescaled so that the overall
// data-access concurrency AMAT/C-AMAT equals c, keeping the locality
// parameters (H, MR, AMP) and the hit/miss split fixed. It is the
// modelling device used throughout §IV of the paper, where designs are
// compared at C ∈ {1, 4, 8}: both the hit and the pure-miss terms are
// scaled uniformly by c.
func (p Params) WithConcurrency(c float64) (Params, error) {
	if c < 1 || math.IsNaN(c) || math.IsInf(c, 0) {
		return Params{}, fmt.Errorf("camat: target concurrency %v must be ≥ 1", c)
	}
	q := p.Sequential()
	q.CH = c
	q.CM = c
	return q, nil
}

// ErrNoAccesses is returned by Analyze when the trace contains no accesses.
var ErrNoAccesses = errors.New("camat: trace contains no accesses")
