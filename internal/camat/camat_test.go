package camat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestParamsAMAT(t *testing.T) {
	p := Params{H: 3, MR: 0.4, AMP: 2}
	if got := p.AMAT(); got != 3.8 {
		t.Fatalf("AMAT = %v, want 3.8", got)
	}
}

func TestParamsCAMATWorkedExample(t *testing.T) {
	// §II-A worked numbers: C-AMAT = 3/(5/2) + (1/5)×(2/1) = 1.6.
	p := Params{H: 3, MR: 0.4, AMP: 2, CH: 2.5, CM: 1, PMR: 0.2, PAMP: 2}
	if got := p.CAMAT(); !almostEq(got, 1.6, 1e-12) {
		t.Fatalf("C-AMAT = %v, want 1.6", got)
	}
	if got := p.Concurrency(); !almostEq(got, 3.8/1.6, 1e-12) {
		t.Fatalf("C = %v, want %v", got, 3.8/1.6)
	}
	if got := p.APC(); !almostEq(got, 1/1.6, 1e-12) {
		t.Fatalf("APC = %v, want %v", got, 1/1.6)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSequentialCollapsesToAMAT(t *testing.T) {
	p := Params{H: 2, MR: 0.3, AMP: 10, CH: 3, CM: 2, PMR: 0.1, PAMP: 4}
	s := p.Sequential()
	if !almostEq(s.CAMAT(), s.AMAT(), 1e-12) {
		t.Fatalf("sequential C-AMAT %v != AMAT %v", s.CAMAT(), s.AMAT())
	}
	if got := s.Concurrency(); !almostEq(got, 1, 1e-12) {
		t.Fatalf("sequential concurrency = %v, want 1", got)
	}
}

func TestWithConcurrency(t *testing.T) {
	p := Params{H: 2, MR: 0.3, AMP: 10, CH: 1, CM: 1, PMR: 0.3, PAMP: 10}
	for _, c := range []float64{1, 2, 4, 8, 16.5} {
		q, err := p.WithConcurrency(c)
		if err != nil {
			t.Fatalf("WithConcurrency(%v): %v", c, err)
		}
		if got := q.Concurrency(); !almostEq(got, c, 1e-12) {
			t.Fatalf("WithConcurrency(%v) yields C = %v", c, got)
		}
		if !almostEq(q.AMAT(), p.AMAT(), 1e-12) {
			t.Fatalf("WithConcurrency(%v) changed AMAT: %v != %v", c, q.AMAT(), p.AMAT())
		}
	}
	if _, err := p.WithConcurrency(0.5); err == nil {
		t.Fatal("WithConcurrency(0.5) should fail")
	}
	if _, err := p.WithConcurrency(math.NaN()); err == nil {
		t.Fatal("WithConcurrency(NaN) should fail")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	good := Params{H: 3, MR: 0.4, AMP: 2, CH: 2.5, CM: 1, PMR: 0.2, PAMP: 2}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"negative H", func(p *Params) { p.H = -1 }},
		{"MR above 1", func(p *Params) { p.MR = 1.5 }},
		{"negative MR", func(p *Params) { p.MR = -0.1 }},
		{"pMR above MR", func(p *Params) { p.PMR = 0.9 }},
		{"negative AMP", func(p *Params) { p.AMP = -2 }},
		{"negative pAMP", func(p *Params) { p.PAMP = -2 }},
		{"CH below 1", func(p *Params) { p.CH = 0.4 }},
		{"CM below 1", func(p *Params) { p.CM = 0 }},
		{"NaN H", func(p *Params) { p.H = math.NaN() }},
		{"Inf H", func(p *Params) { p.H = math.Inf(1) }},
		{"NaN MR", func(p *Params) { p.MR = math.NaN() }},
		{"Inf AMP", func(p *Params) { p.AMP = math.Inf(1) }},
		{"Inf pAMP", func(p *Params) { p.PAMP = math.Inf(1) }},
		{"NaN CH", func(p *Params) { p.CH = math.NaN() }},
		{"Inf CH", func(p *Params) { p.CH = math.Inf(1) }},
		{"NaN CM", func(p *Params) { p.CM = math.NaN() }},
		{"Inf CM", func(p *Params) { p.CM = math.Inf(1) }},
		{"NaN pMR", func(p *Params) { p.PMR = math.NaN() }},
	}
	for _, tc := range cases {
		p := good
		tc.mutate(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, p)
			continue
		}
		if !errors.Is(err, ErrBadParams) {
			t.Errorf("%s: error %v does not wrap ErrBadParams", tc.name, err)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
}

func TestFig1Trace(t *testing.T) {
	an, err := Analyze(Fig1Trace())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	p := an.Params()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"AMAT", p.AMAT(), 3.8},
		{"C-AMAT", p.CAMAT(), 1.6},
		{"H", p.H, 3},
		{"MR", p.MR, 0.4},
		{"AMP", p.AMP, 2},
		{"C_H", p.CH, 2.5},
		{"C_M", p.CM, 1},
		{"pMR", p.PMR, 0.2},
		{"pAMP", p.PAMP, 2},
		{"direct C-AMAT", an.CAMATDirect(), 1.6},
		{"concurrency", p.Concurrency(), 3.8 / 1.6},
	}
	for _, c := range checks {
		if !almostEq(c.got, c.want, 1e-12) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if an.ActiveCycles != 8 {
		t.Errorf("ActiveCycles = %d, want 8", an.ActiveCycles)
	}
	if an.PureMisses != 1 {
		t.Errorf("PureMisses = %d, want 1", an.PureMisses)
	}
}

func TestFig1Phases(t *testing.T) {
	an, err := Analyze(Fig1Trace())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// Paper: 4 hit phases with concurrency 2,4,3,1 lasting 2,1,2,1 cycles.
	wantHit := []Phase{
		{Start: 1, Cycles: 2, Activity: 2},
		{Start: 3, Cycles: 1, Activity: 4},
		{Start: 4, Cycles: 2, Activity: 3},
		{Start: 6, Cycles: 1, Activity: 1},
	}
	if len(an.HitPhases) != len(wantHit) {
		t.Fatalf("hit phases = %+v, want %+v", an.HitPhases, wantHit)
	}
	for i, w := range wantHit {
		g := an.HitPhases[i]
		if g.Start != w.Start || g.Cycles != w.Cycles || g.Activity != w.Activity {
			t.Errorf("hit phase %d = %+v, want %+v", i+1, g, w)
		}
	}
	// One pure-miss phase: concurrency 1, 2 cycles.
	if len(an.PureMissPhases) != 1 {
		t.Fatalf("pure miss phases = %+v, want one", an.PureMissPhases)
	}
	pm := an.PureMissPhases[0]
	if pm.Cycles != 2 || pm.Activity != 1 {
		t.Errorf("pure miss phase = %+v, want 2 cycles at concurrency 1", pm)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil); err != ErrNoAccesses {
		t.Errorf("empty trace: err = %v, want ErrNoAccesses", err)
	}
	if _, err := Analyze([]Access{{Start: 0, HitCycles: 0}}); err == nil {
		t.Error("zero hit cycles accepted")
	}
	if _, err := Analyze([]Access{{Start: 0, HitCycles: 1, MissPenalty: -1}}); err == nil {
		t.Error("negative penalty accepted")
	}
}

func TestAnalyzeSingleHit(t *testing.T) {
	an, err := Analyze([]Access{{Start: 100, HitCycles: 2}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	p := an.Params()
	if p.MR != 0 || p.PMR != 0 || p.CH != 1 {
		t.Fatalf("single hit params: %v", p)
	}
	if got := p.CAMAT(); got != 2 {
		t.Fatalf("C-AMAT = %v, want 2", got)
	}
}

func TestAnalyzeSingleMissIsPure(t *testing.T) {
	an, err := Analyze([]Access{{Start: 0, HitCycles: 1, MissPenalty: 9}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if an.PureMisses != 1 || an.PerAccessPureMissCycles != 9 {
		t.Fatalf("lone miss not fully pure: %+v", an)
	}
	p := an.Params()
	if !almostEq(p.CAMAT(), p.AMAT(), 1e-12) {
		t.Fatalf("lone access C-AMAT %v != AMAT %v", p.CAMAT(), p.AMAT())
	}
}

func TestFullyHiddenMiss(t *testing.T) {
	// A miss whose penalty is entirely covered by another access's hits is
	// not a pure miss: C-AMAT sees only hit time.
	trace := []Access{
		{Start: 0, HitCycles: 2, MissPenalty: 3}, // miss cycles 2-4
		{Start: 0, HitCycles: 8},                 // hits cover 0-7
	}
	an, err := Analyze(trace)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if an.PureMisses != 0 {
		t.Fatalf("hidden miss counted as pure: %+v", an)
	}
	p := an.Params()
	if p.MR != 0.5 || p.PMR != 0 {
		t.Fatalf("params = %v", p)
	}
	if got := an.CAMATDirect(); got != 4 { // 8 active cycles / 2 accesses
		t.Fatalf("C-AMAT = %v, want 4", got)
	}
}

// randomTrace builds an arbitrary well-formed trace from fuzz bytes.
func randomTrace(seed []byte) []Access {
	if len(seed) == 0 {
		return nil
	}
	trace := make([]Access, 0, len(seed)/3+1)
	var start int64
	for i := 0; i+2 < len(seed); i += 3 {
		start += int64(seed[i] % 7)
		hit := 1 + int(seed[i+1]%4)
		pen := int(seed[i+2] % 12)
		trace = append(trace, Access{Start: start, HitCycles: hit, MissPenalty: pen})
	}
	return trace
}

// TestDecompositionIdentity checks the exact identity
// C-AMAT = ActiveCycles/Accesses = H/C_H + pMR×pAMP/C_M on random traces.
func TestDecompositionIdentity(t *testing.T) {
	f := func(seed []byte) bool {
		trace := randomTrace(seed)
		if len(trace) == 0 {
			return true
		}
		an, err := Analyze(trace)
		if err != nil {
			return false
		}
		p := an.Params()
		direct := an.CAMATDirect()
		if !almostEq(p.CAMAT(), direct, 1e-9) {
			t.Logf("decomposition %v != direct %v for %d accesses", p.CAMAT(), direct, len(trace))
			return false
		}
		// AMAT identity and C ≥ 1.
		wantAMAT := an.HitTime + p.MR*p.AMP
		if !almostEq(p.AMAT(), wantAMAT, 1e-9) {
			return false
		}
		return p.Concurrency() >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSerializeRemovesConcurrency: a serialized trace always yields C = 1
// and the degenerate parameter equalities of the paper.
func TestSerializeRemovesConcurrency(t *testing.T) {
	f := func(seed []byte) bool {
		trace := randomTrace(seed)
		if len(trace) == 0 {
			return true
		}
		// Uniform hit time so C_H of a serialized trace is exactly 1.
		for i := range trace {
			trace[i].HitCycles = 3
		}
		an, err := Analyze(Serialize(trace))
		if err != nil {
			return false
		}
		p := an.Params()
		return almostEq(p.Concurrency(), 1, 1e-9) &&
			almostEq(p.PMR, p.MR, 1e-12) &&
			almostEq(p.PAMP, p.AMP, 1e-12) &&
			almostEq(p.CH, 1, 1e-12) &&
			(an.PureMissCycles == 0 || almostEq(p.CM, 1, 1e-12))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrencySpeedsUp: overlapping the same accesses can only reduce
// wall-clock C-AMAT relative to the serialized schedule.
func TestConcurrencySpeedsUp(t *testing.T) {
	f := func(seed []byte) bool {
		trace := randomTrace(seed)
		if len(trace) == 0 {
			return true
		}
		anC, err := Analyze(trace)
		if err != nil {
			return false
		}
		anS, err := Analyze(Serialize(trace))
		if err != nil {
			return false
		}
		return anC.CAMATDirect() <= anS.CAMATDirect()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPureMissBounds: pure-miss accounting never exceeds conventional miss
// accounting.
func TestPureMissBounds(t *testing.T) {
	f := func(seed []byte) bool {
		trace := randomTrace(seed)
		if len(trace) == 0 {
			return true
		}
		an, err := Analyze(trace)
		if err != nil {
			return false
		}
		return an.PureMisses <= an.Misses &&
			an.PerAccessPureMissCycles <= an.PerAccessMissCycles &&
			an.PureMissCycles <= an.MissActiveCycles &&
			an.ActiveCycles == an.HitActiveCycles+an.PureMissCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPhasesCoverActiveCycles(t *testing.T) {
	f := func(seed []byte) bool {
		trace := randomTrace(seed)
		if len(trace) == 0 {
			return true
		}
		an, err := Analyze(trace)
		if err != nil {
			return false
		}
		var hitCycles, pureCycles int64
		var hitActivity, pureActivity float64
		for _, ph := range an.HitPhases {
			hitCycles += ph.Cycles
			hitActivity += ph.Activity * float64(ph.Cycles)
		}
		for _, ph := range an.PureMissPhases {
			pureCycles += ph.Cycles
			pureActivity += ph.Activity * float64(ph.Cycles)
		}
		return hitCycles == an.HitActiveCycles &&
			pureCycles == an.PureMissCycles &&
			almostEq(hitActivity, float64(an.HitActivity), 1e-9) &&
			almostEq(pureActivity, float64(an.PureMissActivity), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParamsString(t *testing.T) {
	p := Params{H: 3, MR: 0.4, AMP: 2, CH: 2.5, CM: 1, PMR: 0.2, PAMP: 2}
	s := p.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestMergeAnalyses(t *testing.T) {
	an1, err := Analyze(Fig1Trace())
	if err != nil {
		t.Fatal(err)
	}
	an2, err := Analyze(Serialize(Fig1Trace()))
	if err != nil {
		t.Fatal(err)
	}
	merged := Merge(an1, an2)
	if merged.Accesses != an1.Accesses+an2.Accesses {
		t.Fatalf("merged accesses = %d", merged.Accesses)
	}
	if merged.ActiveCycles != an1.ActiveCycles+an2.ActiveCycles {
		t.Fatalf("merged active cycles = %d", merged.ActiveCycles)
	}
	// Access-weighted hit time: both traces have H=3.
	if merged.HitTime != 3 {
		t.Fatalf("merged hit time = %v", merged.HitTime)
	}
	// Aggregate C-AMAT between the two parts' values.
	c1, c2 := an1.CAMATDirect(), an2.CAMATDirect()
	lo, hi := math.Min(c1, c2), math.Max(c1, c2)
	if got := merged.CAMATDirect(); got < lo || got > hi {
		t.Fatalf("merged C-AMAT %v outside [%v, %v]", got, lo, hi)
	}
	// Identity survives merging.
	p := merged.Params()
	if math.Abs(p.CAMAT()-merged.CAMATDirect()) > 1e-9 {
		t.Fatalf("merged decomposition broken: %v vs %v", p.CAMAT(), merged.CAMATDirect())
	}
	// Merging nothing yields a zero analysis.
	if z := Merge(); z.Accesses != 0 || z.HitTime != 0 {
		t.Fatalf("empty merge = %+v", z)
	}
}

func TestAnalysisParamsEmptyAndEdge(t *testing.T) {
	var an Analysis
	p := an.Params()
	if p.CH != 1 || p.CM != 1 || p.MR != 0 {
		t.Fatalf("empty params = %+v", p)
	}
	if an.CAMATDirect() != 0 {
		t.Fatal("empty direct C-AMAT")
	}
}

func TestAccessHelpers(t *testing.T) {
	a := Access{Start: 10, HitCycles: 3, MissPenalty: 5}
	if a.End() != 18 {
		t.Fatalf("End = %d", a.End())
	}
	if !a.IsMiss() {
		t.Fatal("miss not detected")
	}
	h := Access{Start: 0, HitCycles: 2}
	if h.IsMiss() || h.End() != 2 {
		t.Fatalf("hit helpers wrong: %+v", h)
	}
}
