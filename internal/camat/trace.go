package camat

import (
	"fmt"
	"sort"
)

// Access is one memory access in a timing trace. The access performs hit
// processing during cycles [Start, Start+HitCycles) and, when MissPenalty
// is nonzero, miss processing during the immediately following cycles
// [Start+HitCycles, Start+HitCycles+MissPenalty). Cycle numbering is
// arbitrary (any int64 origin); only relative overlap matters.
type Access struct {
	Start       int64 // first cycle of hit processing
	HitCycles   int   // duration of the hit phase (the cache hit time)
	MissPenalty int   // extra miss cycles; 0 for a hit access
}

// End returns the first cycle after the access completes.
func (a Access) End() int64 { return a.Start + int64(a.HitCycles) + int64(a.MissPenalty) }

// IsMiss reports whether the access missed (carries a miss penalty).
func (a Access) IsMiss() bool { return a.MissPenalty > 0 }

// Phase is a maximal wall-clock interval with homogeneous activity, used
// by Analysis to report hit phases and pure-miss phases as in Fig. 1 of
// the paper.
type Phase struct {
	Start    int64   // first cycle of the phase
	Cycles   int64   // duration
	Activity float64 // average concurrent accesses during the phase
}

// Analysis is the exact cycle-level accounting of a trace. It carries both
// the wall-clock view (cycles during which the memory system is active)
// and the per-access view (per-access hit and miss cycle totals), from
// which every AMAT and C-AMAT parameter is derived.
type Analysis struct {
	Accesses   int // total accesses
	Misses     int // accesses with MissPenalty > 0
	PureMisses int // misses owning ≥1 pure-miss cycle

	HitTime float64 // per-access hit cycles (uniform H), averaged if mixed

	// Wall-clock cycle classes. A cycle is hit-active when ≥1 access is in
	// its hit window; miss-active when ≥1 access is in its miss window;
	// pure-miss when miss-active and not hit-active. ActiveCycles is the
	// count of cycles that are hit-active or miss-active.
	HitActiveCycles  int64
	MissActiveCycles int64
	PureMissCycles   int64
	ActiveCycles     int64

	// Activity integrals: Σ over cycles of the number of concurrently
	// active accesses of each kind.
	HitActivity      int64 // equals Σ_a HitCycles(a)
	PureMissActivity int64 // pure-miss access-cycles, counted per access

	// PerAccessMissCycles is Σ_a MissPenalty(a); PerAccessPureMissCycles
	// is Σ_a |miss window of a ∩ pure-miss cycles|.
	PerAccessMissCycles     int64
	PerAccessPureMissCycles int64

	HitPhases      []Phase // maximal hit-active intervals
	PureMissPhases []Phase // maximal pure-miss intervals
}

// Params converts the accounting into the AMAT/C-AMAT parameter set.
// All definitions follow §II-A of the paper exactly:
//
//	MR   = Misses/Accesses
//	AMP  = Σ per-access miss cycles / Misses
//	pMR  = PureMisses/Accesses
//	pAMP = Σ per-access pure-miss cycles / PureMisses
//	C_H  = HitActivity / HitActiveCycles
//	C_M  = PureMissActivity / PureMissCycles
func (an Analysis) Params() Params {
	p := Params{H: an.HitTime, CH: 1, CM: 1}
	if an.Accesses == 0 {
		return p
	}
	n := float64(an.Accesses)
	p.MR = float64(an.Misses) / n
	p.PMR = float64(an.PureMisses) / n
	if an.Misses > 0 {
		p.AMP = float64(an.PerAccessMissCycles) / float64(an.Misses)
	}
	if an.PureMisses > 0 {
		p.PAMP = float64(an.PerAccessPureMissCycles) / float64(an.PureMisses)
	}
	if an.HitActiveCycles > 0 {
		p.CH = float64(an.HitActivity) / float64(an.HitActiveCycles)
	}
	if an.PureMissCycles > 0 {
		p.CM = float64(an.PureMissActivity) / float64(an.PureMissCycles)
	}
	return p
}

// CAMATDirect returns the wall-clock C-AMAT, ActiveCycles/Accesses. The
// decomposition identity guarantees Params().CAMAT() equals this value
// exactly (up to floating-point rounding); tests rely on it.
func (an Analysis) CAMATDirect() float64 {
	if an.Accesses == 0 {
		return 0
	}
	return float64(an.ActiveCycles) / float64(an.Accesses)
}

// event marks a change in the number of hit-active or miss-active accesses
// at a cycle boundary.
type event struct {
	cycle int64
	dHit  int
	dMiss int
}

// Analyze performs an exact cycle-accurate sweep over the trace and
// returns the full accounting. The sweep is O(n log n) in the number of
// accesses and independent of the cycle span, so sparse traces are cheap.
// Analyze returns ErrNoAccesses for an empty trace and an error for any
// access with non-positive hit cycles or negative penalty.
func Analyze(trace []Access) (Analysis, error) {
	if len(trace) == 0 {
		return Analysis{}, ErrNoAccesses
	}
	events := make([]event, 0, 4*len(trace))
	var an Analysis
	an.Accesses = len(trace)
	var hitCycleSum int64
	for i, a := range trace {
		if a.HitCycles <= 0 {
			return Analysis{}, fmt.Errorf("camat: access %d has non-positive hit cycles %d", i, a.HitCycles)
		}
		if a.MissPenalty < 0 {
			return Analysis{}, fmt.Errorf("camat: access %d has negative miss penalty %d", i, a.MissPenalty)
		}
		hitCycleSum += int64(a.HitCycles)
		hitEnd := a.Start + int64(a.HitCycles)
		events = append(events,
			event{cycle: a.Start, dHit: 1},
			event{cycle: hitEnd, dHit: -1})
		if a.IsMiss() {
			an.Misses++
			an.PerAccessMissCycles += int64(a.MissPenalty)
			events = append(events,
				event{cycle: hitEnd, dMiss: 1},
				event{cycle: hitEnd + int64(a.MissPenalty), dMiss: -1})
		}
	}
	an.HitTime = float64(hitCycleSum) / float64(an.Accesses)
	an.HitActivity = hitCycleSum

	sort.Slice(events, func(i, j int) bool { return events[i].cycle < events[j].cycle })

	// Sweep maximal intervals of constant (hitCount, missCount) state and
	// accumulate wall-clock cycle classes, activity integrals and phases.
	// pureZero collects the maximal intervals with zero hit activity, used
	// afterwards to attribute pure-miss cycles to individual accesses.
	type span struct{ start, end int64 }
	var pureZero []span

	// A phase in the paper's sense (Fig. 1) is a maximal interval of
	// constant concurrency, so a new phase begins whenever the concurrent
	// access count changes, not only when activity resumes after a gap.
	var hitCount, missCount int
	prevHit, prevPure := -1, -1 // concurrency of the phase being extended
	i := 0
	for i < len(events) {
		cycle := events[i].cycle
		for i < len(events) && events[i].cycle == cycle {
			hitCount += events[i].dHit
			missCount += events[i].dMiss
			i++
		}
		if i == len(events) {
			break
		}
		dur := events[i].cycle - cycle
		if dur == 0 {
			continue
		}
		hitActive := hitCount > 0
		missActive := missCount > 0
		if hitActive || missActive {
			an.ActiveCycles += dur
		}
		if hitActive {
			an.HitActiveCycles += dur
			if hitCount != prevHit {
				an.HitPhases = append(an.HitPhases, Phase{Start: cycle, Activity: float64(hitCount)})
			}
			an.HitPhases[len(an.HitPhases)-1].Cycles += dur
			prevHit = hitCount
		} else {
			prevHit = -1
		}
		if missActive {
			an.MissActiveCycles += dur
		}
		if missActive && !hitActive {
			an.PureMissCycles += dur
			an.PureMissActivity += dur * int64(missCount)
			if missCount != prevPure {
				an.PureMissPhases = append(an.PureMissPhases, Phase{Start: cycle, Activity: float64(missCount)})
			}
			an.PureMissPhases[len(an.PureMissPhases)-1].Cycles += dur
			prevPure = missCount
		} else {
			prevPure = -1
		}
		if !hitActive {
			// Extend or start a zero-hit span (regardless of miss state;
			// intersection with miss windows happens per access below).
			if n := len(pureZero); n > 0 && pureZero[n-1].end == cycle {
				pureZero[n-1].end = events[i].cycle
			} else {
				pureZero = append(pureZero, span{start: cycle, end: events[i].cycle})
			}
		}
	}

	// Attribute pure-miss cycles to accesses: for each miss window,
	// its overlap with the zero-hit spans.
	starts := make([]int64, len(pureZero))
	for k, s := range pureZero {
		starts[k] = s.start
	}
	for _, a := range trace {
		if !a.IsMiss() {
			continue
		}
		mStart := a.Start + int64(a.HitCycles)
		mEnd := mStart + int64(a.MissPenalty)
		var overlap int64
		// First span that could intersect: the last with start < mEnd.
		k := sort.Search(len(pureZero), func(j int) bool { return starts[j] >= mEnd })
		for k--; k >= 0 && pureZero[k].end > mStart; k-- {
			lo, hi := pureZero[k].start, pureZero[k].end
			if lo < mStart {
				lo = mStart
			}
			if hi > mEnd {
				hi = mEnd
			}
			if hi > lo {
				overlap += hi - lo
			}
		}
		if overlap > 0 {
			an.PureMisses++
			an.PerAccessPureMissCycles += overlap
		}
	}
	return an, nil
}

// Merge combines per-core analyses into an aggregate view: accesses,
// misses and cycle classes add, and the hit time becomes the
// access-weighted mean. Phases are not merged (cores have independent
// timelines) and are left empty.
func Merge(parts ...Analysis) Analysis {
	var out Analysis
	var hitWeighted float64
	for _, a := range parts {
		out.Accesses += a.Accesses
		out.Misses += a.Misses
		out.PureMisses += a.PureMisses
		out.HitActiveCycles += a.HitActiveCycles
		out.MissActiveCycles += a.MissActiveCycles
		out.PureMissCycles += a.PureMissCycles
		out.ActiveCycles += a.ActiveCycles
		out.HitActivity += a.HitActivity
		out.PureMissActivity += a.PureMissActivity
		out.PerAccessMissCycles += a.PerAccessMissCycles
		out.PerAccessPureMissCycles += a.PerAccessPureMissCycles
		hitWeighted += a.HitTime * float64(a.Accesses)
	}
	if out.Accesses > 0 {
		out.HitTime = hitWeighted / float64(out.Accesses)
	}
	return out
}

// Serialize rewrites the trace so that every access begins only after the
// previous one fully completes, preserving per-access hit cycles and miss
// penalties. The result has no concurrency: analyzing it yields C = 1,
// pMR = MR, pAMP = AMP and C_H = C_M = 1 (when all accesses share a
// uniform hit time). It is the constructive form of the paper's claim
// that AMAT is the sequential special case of C-AMAT.
func Serialize(trace []Access) []Access {
	out := make([]Access, len(trace))
	var clock int64
	for i, a := range trace {
		a.Start = clock
		clock = a.End()
		out[i] = a
	}
	return out
}

// Fig1Trace returns the five-access demonstration trace of Fig. 1 in the
// paper: hit time 3 for every access; accesses 3 and 4 miss with penalties
// of 3 and 1 cycles; access 4's single miss cycle is hidden by access 5's
// hits, so only access 3 is a pure miss (2 pure-miss cycles). Analyzing it
// reproduces the worked numbers of §II-A: AMAT = 3.8, C-AMAT = 1.6,
// C_H = 5/2, C_M = 1, pMR = 1/5, pAMP = 2.
func Fig1Trace() []Access {
	return []Access{
		{Start: 1, HitCycles: 3},                 // access 1: hit, cycles 1-3
		{Start: 1, HitCycles: 3},                 // access 2: hit, cycles 1-3
		{Start: 3, HitCycles: 3, MissPenalty: 3}, // access 3: miss, penalty 6-8
		{Start: 3, HitCycles: 3, MissPenalty: 1}, // access 4: miss, penalty 6
		{Start: 4, HitCycles: 3},                 // access 5: hit, cycles 4-6
	}
}
