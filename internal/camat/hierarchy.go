package camat

import "fmt"

// LevelParams describes one cache level of a multi-level C-AMAT
// evaluation (the recursive formulation of Liu & Sun, JCST'15, which the
// C²-Bound paper builds on via reference [20]): the level's hit time and
// concurrencies, its pure miss rate, and the overlap factor κ linking its
// miss penalty to the next level's C-AMAT.
type LevelParams struct {
	H   float64 // hit time at this level (cycles)
	CH  float64 // hit concurrency
	CM  float64 // pure-miss concurrency
	PMR float64 // pure miss rate of accesses arriving at this level
	// Kappa scales the next level's C-AMAT into this level's pure average
	// miss penalty: pAMP_i = κ_i × C-AMAT_{i+1} × AccessAmplification.
	// κ < 1 models penalty cycles hidden behind this level's hits;
	// κ = 1 is the conservative no-extra-overlap case.
	Kappa float64
	// Amplification is the number of next-level accesses one miss at this
	// level generates (≥ 1; >1 models victim writebacks or split
	// transactions).
	Amplification float64
}

// Hierarchy is a full memory hierarchy for recursive C-AMAT evaluation.
// The final level's misses go to main memory with a flat (already
// concurrency-adjusted) latency.
type Hierarchy struct {
	Levels     []LevelParams
	MemLatency float64 // effective DRAM C-AMAT seen below the last level
}

// Validate checks all levels.
func (h Hierarchy) Validate() error {
	if len(h.Levels) == 0 {
		return fmt.Errorf("camat: hierarchy needs at least one level")
	}
	if h.MemLatency < 0 {
		return fmt.Errorf("camat: negative memory latency %v", h.MemLatency)
	}
	for i, l := range h.Levels {
		switch {
		case l.H < 0:
			return fmt.Errorf("camat: level %d hit time %v negative", i+1, l.H)
		case l.CH < 1 || l.CM < 1:
			return fmt.Errorf("camat: level %d concurrencies C_H=%v C_M=%v below 1", i+1, l.CH, l.CM)
		case l.PMR < 0 || l.PMR > 1:
			return fmt.Errorf("camat: level %d pure miss rate %v outside [0,1]", i+1, l.PMR)
		case l.Kappa < 0 || l.Kappa > 1:
			return fmt.Errorf("camat: level %d kappa %v outside [0,1]", i+1, l.Kappa)
		case l.Amplification < 1:
			return fmt.Errorf("camat: level %d amplification %v below 1", i+1, l.Amplification)
		}
	}
	return nil
}

// CAMAT evaluates the recursive multi-level C-AMAT:
//
//	C-AMAT_{L+1} = MemLatency
//	C-AMAT_i     = H_i/C_{H,i} + pMR_i · (κ_i · a_i · C-AMAT_{i+1}) / C_{M,i}
//
// and returns the top-level (processor-visible) value.
func (h Hierarchy) CAMAT() (float64, error) {
	if err := h.Validate(); err != nil {
		return 0, err
	}
	camat := h.MemLatency
	for i := len(h.Levels) - 1; i >= 0; i-- {
		l := h.Levels[i]
		camat = l.H/l.CH + l.PMR*(l.Kappa*l.Amplification*camat)/l.CM
	}
	return camat, nil
}

// PerLevel returns the C-AMAT value seen at each level, top first (the
// layered view of Fig. 13: APC_i = 1/C-AMAT_i).
func (h Hierarchy) PerLevel() ([]float64, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, len(h.Levels))
	camat := h.MemLatency
	for i := len(h.Levels) - 1; i >= 0; i-- {
		l := h.Levels[i]
		camat = l.H/l.CH + l.PMR*(l.Kappa*l.Amplification*camat)/l.CM
		out[i] = camat
	}
	return out, nil
}

// FlatEquivalent collapses a single-level hierarchy into Params for
// cross-checking against the trace analyzer: valid only when the
// hierarchy has exactly one level.
func (h Hierarchy) FlatEquivalent() (Params, error) {
	if len(h.Levels) != 1 {
		return Params{}, fmt.Errorf("camat: FlatEquivalent needs exactly one level, have %d", len(h.Levels))
	}
	if err := h.Validate(); err != nil {
		return Params{}, err
	}
	l := h.Levels[0]
	return Params{
		H:    l.H,
		CH:   l.CH,
		CM:   l.CM,
		PMR:  l.PMR,
		PAMP: l.Kappa * l.Amplification * h.MemLatency,
		MR:   l.PMR, // flat view: conventional = pure for the cross-check
		AMP:  l.Kappa * l.Amplification * h.MemLatency,
	}, nil
}
