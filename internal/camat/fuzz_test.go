package camat

import (
	"math"
	"testing"
)

// decodeTrace builds a well-formed trace from arbitrary fuzz bytes.
func decodeTrace(data []byte) []Access {
	var tr []Access
	var start int64
	for i := 0; i+3 < len(data); i += 4 {
		start += int64(data[i] % 9)
		tr = append(tr, Access{
			Start:       start - int64(data[i+1]%5), // bounded out-of-order
			HitCycles:   1 + int(data[i+2]%6),
			MissPenalty: int(data[i+3] % 20),
		})
	}
	return tr
}

// FuzzAnalyze drives the exact sweep with arbitrary traces and checks its
// core invariants: the decomposition identity, pure ≤ conventional
// accounting, and C ≥ 1.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{1, 0, 3, 0, 2, 0, 3, 3, 0, 1, 3, 1})
	f.Add([]byte{0, 0, 1, 19, 7, 4, 5, 0})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := decodeTrace(data)
		if len(tr) == 0 {
			return
		}
		an, err := Analyze(tr)
		if err != nil {
			t.Fatalf("Analyze rejected well-formed trace: %v", err)
		}
		p := an.Params()
		direct := an.CAMATDirect()
		if math.Abs(p.CAMAT()-direct) > 1e-9*(1+direct) {
			t.Fatalf("decomposition %v != direct %v", p.CAMAT(), direct)
		}
		if an.PureMisses > an.Misses || an.PerAccessPureMissCycles > an.PerAccessMissCycles {
			t.Fatalf("pure accounting exceeds conventional: %+v", an)
		}
		if an.ActiveCycles != an.HitActiveCycles+an.PureMissCycles {
			t.Fatalf("cycle classes do not partition active cycles: %+v", an)
		}
		if c := p.Concurrency(); c < 1-1e-9 || math.IsNaN(c) {
			t.Fatalf("concurrency %v below 1", c)
		}
	})
}

// FuzzSerializeIdempotent checks that serializing twice equals serializing
// once and that serialization always yields C = 1 traces.
func FuzzSerializeIdempotent(f *testing.F) {
	f.Add([]byte{3, 0, 2, 7, 9, 0, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := decodeTrace(data)
		if len(tr) == 0 {
			return
		}
		once := Serialize(tr)
		twice := Serialize(once)
		for i := range once {
			if once[i] != twice[i] {
				t.Fatal("Serialize not idempotent")
			}
		}
		an, err := Analyze(once)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		// No two accesses overlap in a serialized trace.
		if an.HitActivity != an.HitActiveCycles {
			t.Fatalf("serialized trace still concurrent: activity %d over %d cycles",
				an.HitActivity, an.HitActiveCycles)
		}
	})
}
