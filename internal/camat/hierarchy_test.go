package camat

import (
	"math"
	"testing"
	"testing/quick"
)

func level(h, ch, cm, pmr, kappa float64) LevelParams {
	return LevelParams{H: h, CH: ch, CM: cm, PMR: pmr, Kappa: kappa, Amplification: 1}
}

func TestHierarchyValidate(t *testing.T) {
	good := Hierarchy{Levels: []LevelParams{level(3, 2, 1.5, 0.1, 1)}, MemLatency: 200}
	if err := good.Validate(); err != nil {
		t.Fatalf("good hierarchy rejected: %v", err)
	}
	bad := []Hierarchy{
		{Levels: nil, MemLatency: 100},
		{Levels: []LevelParams{level(-1, 2, 2, 0.1, 1)}, MemLatency: 100},
		{Levels: []LevelParams{level(3, 0.5, 2, 0.1, 1)}, MemLatency: 100},
		{Levels: []LevelParams{level(3, 2, 2, 1.5, 1)}, MemLatency: 100},
		{Levels: []LevelParams{level(3, 2, 2, 0.1, 2)}, MemLatency: 100},
		{Levels: []LevelParams{{H: 3, CH: 2, CM: 2, PMR: 0.1, Kappa: 1, Amplification: 0.5}}, MemLatency: 100},
		{Levels: []LevelParams{level(3, 2, 2, 0.1, 1)}, MemLatency: -1},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad hierarchy %d accepted", i)
		}
		if _, err := h.CAMAT(); err == nil {
			t.Errorf("CAMAT accepted bad hierarchy %d", i)
		}
		if _, err := h.PerLevel(); err == nil {
			t.Errorf("PerLevel accepted bad hierarchy %d", i)
		}
	}
}

func TestSingleLevelMatchesFlatFormula(t *testing.T) {
	h := Hierarchy{Levels: []LevelParams{level(3, 2.5, 1, 0.2, 1)}, MemLatency: 10}
	got, err := h.CAMAT()
	if err != nil {
		t.Fatalf("CAMAT: %v", err)
	}
	// H/C_H + pMR×pAMP/C_M with pAMP = MemLatency.
	want := 3/2.5 + 0.2*10/1.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("C-AMAT = %v, want %v", got, want)
	}
	flat, err := h.FlatEquivalent()
	if err != nil {
		t.Fatalf("FlatEquivalent: %v", err)
	}
	if math.Abs(flat.CAMAT()-want) > 1e-12 {
		t.Fatalf("flat equivalent = %v, want %v", flat.CAMAT(), want)
	}
}

func TestTwoLevelRecursion(t *testing.T) {
	h := Hierarchy{
		Levels: []LevelParams{
			level(3, 2, 2, 0.1, 0.8),  // L1
			level(12, 1.5, 3, 0.3, 1), // L2
		},
		MemLatency: 200,
	}
	got, err := h.CAMAT()
	if err != nil {
		t.Fatalf("CAMAT: %v", err)
	}
	l2 := 12/1.5 + 0.3*200/3
	want := 3.0/2 + 0.1*(0.8*l2)/2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("two-level C-AMAT = %v, want %v", got, want)
	}
	per, err := h.PerLevel()
	if err != nil {
		t.Fatalf("PerLevel: %v", err)
	}
	if len(per) != 2 || math.Abs(per[0]-want) > 1e-12 || math.Abs(per[1]-l2) > 1e-12 {
		t.Fatalf("PerLevel = %v, want [%v %v]", per, want, l2)
	}
}

func TestPerLevelDecreasesUpward(t *testing.T) {
	// Fig. 13's layered picture: C-AMAT shrinks toward the processor
	// (APC grows) whenever miss rates are fractional.
	h := Hierarchy{
		Levels: []LevelParams{
			level(3, 2, 4, 0.05, 1),
			level(12, 1.5, 4, 0.3, 1),
			level(30, 1.2, 2, 0.5, 1),
		},
		MemLatency: 300,
	}
	per, err := h.PerLevel()
	if err != nil {
		t.Fatalf("PerLevel: %v", err)
	}
	for i := 1; i < len(per); i++ {
		if per[i-1] >= per[i] {
			t.Fatalf("C-AMAT not decreasing toward the processor: %v", per)
		}
	}
}

func TestHierarchyMonotoneInParameters(t *testing.T) {
	base := Hierarchy{
		Levels:     []LevelParams{level(3, 2, 2, 0.2, 0.9), level(12, 1.5, 3, 0.4, 1)},
		MemLatency: 200,
	}
	baseVal, err := base.CAMAT()
	if err != nil {
		t.Fatalf("CAMAT: %v", err)
	}
	// Raising any concurrency lowers C-AMAT; raising any pMR, κ,
	// amplification or latency raises it.
	up := base
	up.Levels = append([]LevelParams(nil), base.Levels...)
	up.Levels[0].CH *= 2
	if v, _ := up.CAMAT(); v >= baseVal {
		t.Fatalf("doubling C_H did not lower C-AMAT: %v vs %v", v, baseVal)
	}
	up.Levels = append([]LevelParams(nil), base.Levels...)
	up.Levels[1].CM *= 2
	if v, _ := up.CAMAT(); v >= baseVal {
		t.Fatalf("doubling L2 C_M did not lower C-AMAT: %v vs %v", v, baseVal)
	}
	up.Levels = append([]LevelParams(nil), base.Levels...)
	up.Levels[0].PMR = 0.4
	if v, _ := up.CAMAT(); v <= baseVal {
		t.Fatalf("doubling pMR did not raise C-AMAT: %v vs %v", v, baseVal)
	}
	up.Levels = append([]LevelParams(nil), base.Levels...)
	up.Levels[0].Amplification = 2
	if v, _ := up.CAMAT(); v <= baseVal {
		t.Fatalf("amplification did not raise C-AMAT: %v vs %v", v, baseVal)
	}
	up.Levels = append([]LevelParams(nil), base.Levels...)
	up.MemLatency = 400
	if v, _ := up.CAMAT(); v <= baseVal {
		t.Fatalf("memory latency did not raise C-AMAT: %v vs %v", v, baseVal)
	}
}

func TestHierarchyPropertyNonNegative(t *testing.T) {
	f := func(raw [8]uint8) bool {
		h := Hierarchy{
			Levels: []LevelParams{
				{
					H:             float64(raw[0] % 16),
					CH:            1 + float64(raw[1]%8),
					CM:            1 + float64(raw[2]%8),
					PMR:           float64(raw[3]%101) / 100,
					Kappa:         float64(raw[4]%101) / 100,
					Amplification: 1 + float64(raw[5]%3),
				},
			},
			MemLatency: float64(raw[6]) + float64(raw[7])/256,
		}
		v, err := h.CAMAT()
		return err == nil && v >= 0 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlatEquivalentRequiresSingleLevel(t *testing.T) {
	h := Hierarchy{
		Levels:     []LevelParams{level(3, 2, 2, 0.1, 1), level(12, 2, 2, 0.1, 1)},
		MemLatency: 100,
	}
	if _, err := h.FlatEquivalent(); err == nil {
		t.Fatal("two-level flat equivalent accepted")
	}
}
