package speedup

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSunNiReducesToAmdahl(t *testing.T) {
	g := FixedSize()
	for _, fseq := range []float64{0, 0.05, 0.3, 0.9, 1} {
		for _, n := range []float64{1, 2, 16, 1000} {
			want := Amdahl(fseq, n)
			got := SunNi(fseq, g, n)
			if !almostEq(got, want, 1e-12) {
				t.Fatalf("SunNi(f=%v,g=1,N=%v) = %v, want Amdahl %v", fseq, n, got, want)
			}
		}
	}
}

func TestSunNiReducesToGustafson(t *testing.T) {
	g := Linear()
	for _, fseq := range []float64{0, 0.05, 0.3, 0.9, 1} {
		for _, n := range []float64{1, 2, 16, 1000} {
			want := Gustafson(fseq, n)
			got := SunNi(fseq, g, n)
			if !almostEq(got, want, 1e-12) {
				t.Fatalf("SunNi(f=%v,g=N,N=%v) = %v, want Gustafson %v", fseq, n, got, want)
			}
		}
	}
}

func TestSunNiPaperExample(t *testing.T) {
	// §II-B: g(N) = N^{3/2} gives S = (f + (1−f)N^{3/2})/(f + (1−f)N^{1/2})
	// which is O(N): S/N → 1 as N grows, for any 0 < f < 1.
	g := PowerLaw(1.5)
	fseq := 0.2
	for _, n := range []float64{4, 100, 10000} {
		want := (fseq + (1-fseq)*math.Pow(n, 1.5)) / (fseq + (1-fseq)*math.Sqrt(n))
		got := SunNi(fseq, g, n)
		if !almostEq(got, want, 1e-12) {
			t.Fatalf("SunNi = %v, want %v", got, want)
		}
	}
	// Asymptotically linear.
	ratio := SunNi(fseq, g, 1e8) / 1e8
	if math.Abs(ratio-1) > 1e-3 {
		t.Fatalf("S(N)/N = %v at N=1e8, want →1", ratio)
	}
}

func TestSpeedupBounds(t *testing.T) {
	// For any g ≥ 1: 1 ≤ S(N) ≤ N.
	f := func(fseqRaw, bRaw, nRaw uint16) bool {
		fseq := float64(fseqRaw) / 65535
		b := 2 * float64(bRaw) / 65535 // g exponent in [0,2]
		n := 1 + float64(nRaw%4096)
		s := SunNi(fseq, PowerLaw(b), n)
		return s >= 1-1e-9 && s <= n+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleFuncsAtOne(t *testing.T) {
	for name, g := range map[string]ScaleFunc{
		"fixed":  FixedSize(),
		"linear": Linear(),
		"pow0.5": PowerLaw(0.5),
		"pow1.5": PowerLaw(1.5),
	} {
		if got := g(1); !almostEq(got, 1, 1e-12) {
			t.Errorf("%s: g(1) = %v, want 1", name, got)
		}
	}
}

func TestFromComplexityDenseMM(t *testing.T) {
	// §II-B worked example: W = 2n³, M = 3n² ⇒ g(N) = N^{3/2}.
	comp, mem := DenseMM()
	g, err := FromComplexity(comp, mem, 64)
	if err != nil {
		t.Fatalf("FromComplexity: %v", err)
	}
	for _, n := range []float64{1, 2, 4, 9, 100, 1024} {
		want := math.Pow(n, 1.5)
		got := g(n)
		if !almostEq(got, want, 1e-6) {
			t.Fatalf("g(%v) = %v, want %v", n, got, want)
		}
	}
}

func TestFromComplexityLinear(t *testing.T) {
	// Stencil-like: W = 5n, M = 2n ⇒ g(N) = N.
	g, err := FromComplexity(
		func(n float64) float64 { return 5 * n },
		func(n float64) float64 { return 2 * n }, 1000)
	if err != nil {
		t.Fatalf("FromComplexity: %v", err)
	}
	for _, n := range []float64{1, 3, 10, 333} {
		if got := g(n); !almostEq(got, n, 1e-6) {
			t.Fatalf("g(%v) = %v, want %v", n, got, n)
		}
	}
}

func TestFromComplexityFFT(t *testing.T) {
	// W = n·log2 n, M = n. At N = n0 the derived g equals 2N — the value
	// printed in Table I.
	n0 := 4096.0
	g, err := FromComplexity(
		func(n float64) float64 { return n * math.Log2(n) },
		func(n float64) float64 { return n }, n0)
	if err != nil {
		t.Fatalf("FromComplexity: %v", err)
	}
	if got, want := g(n0), 2*n0; !almostEq(got, want, 1e-6) {
		t.Fatalf("g(n0) = %v, want 2·n0 = %v", got, want)
	}
	if got := g(1); !almostEq(got, 1, 1e-9) {
		t.Fatalf("g(1) = %v, want 1", got)
	}
}

func TestFromComplexityErrors(t *testing.T) {
	lin := func(n float64) float64 { return n }
	if _, err := FromComplexity(lin, lin, -1); err == nil {
		t.Error("negative n0 accepted")
	}
	if _, err := FromComplexity(lin, func(n float64) float64 { return -n }, 10); err == nil {
		t.Error("negative memory complexity accepted")
	}
	if _, err := FromComplexity(lin, func(n float64) float64 { return 5 }, 10); err == nil {
		t.Error("constant (non-increasing) memory complexity accepted")
	}
}

func TestGrowthOrder(t *testing.T) {
	cases := []struct {
		g    ScaleFunc
		want float64
	}{
		{FixedSize(), 0},
		{Linear(), 1},
		{PowerLaw(0.5), 0.5},
		{PowerLaw(1.5), 1.5},
		{PowerLaw(2), 2},
	}
	for _, c := range cases {
		got := GrowthOrder(c.g, 64)
		if !almostEq(got, c.want, 1e-6) {
			t.Errorf("GrowthOrder = %v, want %v", got, c.want)
		}
	}
	if Superlinear(PowerLaw(0.5), 64) {
		t.Error("N^0.5 classified as ≥ O(N)")
	}
	if !Superlinear(Linear(), 64) {
		t.Error("N classified as < O(N)")
	}
	if !Superlinear(PowerLaw(1.5), 64) {
		t.Error("N^1.5 classified as < O(N)")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(1 << 12)
	if len(rows) != 4 {
		t.Fatalf("Table I has %d rows, want 4", len(rows))
	}
	// TMM row: g(4) = 8.
	if got := rows[0].Scale(4); !almostEq(got, 8, 1e-9) {
		t.Errorf("TMM g(4) = %v, want 8", got)
	}
	// Band sparse and stencil: g(N) = N.
	for _, i := range []int{1, 2} {
		if got := rows[i].Scale(7); !almostEq(got, 7, 1e-9) {
			t.Errorf("%s g(7) = %v, want 7", rows[i].Application, got)
		}
	}
	// FFT: g(n0) = 2·n0 per the printed 2N convention.
	if got := rows[3].Scale(1 << 12); !almostEq(got, 2*float64(1<<12), 1e-9) {
		t.Errorf("FFT g(n0) = %v, want %v", got, 2*float64(1<<12))
	}
	// Every row's scale obeys g(1) = 1 and is nondecreasing.
	for _, r := range rows {
		if !almostEq(r.Scale(1), 1, 1e-9) {
			t.Errorf("%s: g(1) = %v", r.Application, r.Scale(1))
		}
		if r.Scale(16) < r.Scale(8) {
			t.Errorf("%s: g not monotone", r.Application)
		}
	}
	// Default base dimension kicks in for invalid input.
	rowsDefault := Table1(0)
	if got := rowsDefault[3].Scale(1 << 20); !almostEq(got, 2*float64(1<<20), 1e-9) {
		t.Errorf("FFT default base: g(2^20) = %v, want %v", got, 2*float64(1<<20))
	}
}

func TestAmdahlGustafsonSanity(t *testing.T) {
	if got := Amdahl(0.5, 1e12); !almostEq(got, 2, 1e-6) {
		t.Errorf("Amdahl limit = %v, want 2", got)
	}
	if got := Gustafson(0.5, 100); !almostEq(got, 50.5, 1e-12) {
		t.Errorf("Gustafson = %v, want 50.5", got)
	}
	if got := Amdahl(0, 64); !almostEq(got, 64, 1e-12) {
		t.Errorf("Amdahl(f=0) = %v, want N", got)
	}
}

func TestCheckedLawsRejectBadArgs(t *testing.T) {
	bad := []struct {
		fseq, n float64
	}{
		{math.NaN(), 4}, {-0.1, 4}, {1.1, 4},
		{0.1, 0}, {0.1, -3}, {0.1, math.NaN()}, {0.1, math.Inf(1)},
	}
	for _, tc := range bad {
		if _, err := AmdahlChecked(tc.fseq, tc.n); !errors.Is(err, ErrBadParam) {
			t.Errorf("AmdahlChecked(%v, %v): err = %v, want ErrBadParam", tc.fseq, tc.n, err)
		}
		if _, err := GustafsonChecked(tc.fseq, tc.n); !errors.Is(err, ErrBadParam) {
			t.Errorf("GustafsonChecked(%v, %v): err = %v", tc.fseq, tc.n, err)
		}
		if _, err := SunNiChecked(tc.fseq, Linear(), tc.n); !errors.Is(err, ErrBadParam) {
			t.Errorf("SunNiChecked(%v, %v): err = %v", tc.fseq, tc.n, err)
		}
	}
	if _, err := SunNiChecked(0.1, nil, 4); !errors.Is(err, ErrBadParam) {
		t.Errorf("nil g accepted: %v", err)
	}
	if _, err := SunNiChecked(0.1, func(float64) float64 { return math.NaN() }, 4); !errors.Is(err, ErrBadParam) {
		t.Error("NaN-returning g accepted")
	}
	// Checked variants agree with the unchecked laws on valid input.
	v, err := AmdahlChecked(0.25, 8)
	if err != nil || v != Amdahl(0.25, 8) {
		t.Fatalf("AmdahlChecked diverged: %v, %v", v, err)
	}
	v, err = SunNiChecked(0.25, PowerLaw(1.5), 8)
	if err != nil || v != SunNi(0.25, PowerLaw(1.5), 8) {
		t.Fatalf("SunNiChecked diverged: %v, %v", v, err)
	}
}
